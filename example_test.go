package softstate_test

import (
	"fmt"
	"log"

	"softstate"
)

// ExampleAnalyze solves the paper's single-hop model for pure soft state
// at the Kazaa defaults.
func ExampleAnalyze() {
	m, err := softstate.Analyze(softstate.SS, softstate.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("I = %.4f, Λ = %.3f msg/s\n", m.Inconsistency, m.NormalizedRate)
	// Output:
	// I = 0.0138, Λ = 0.251 msg/s
}

// ExampleCompare ranks all five protocols by integrated cost.
func ExampleCompare() {
	cmp, err := softstate.Compare(softstate.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cmp {
		fmt.Printf("%-7v C = %.3f\n", c.Protocol, softstate.IntegratedCost(10, c.Metrics))
	}
	// Output:
	// SS      C = 0.389
	// SS+ER   C = 0.309
	// SS+RT   C = 0.401
	// SS+RTR  C = 0.320
	// HS      C = 0.120
}

// ExampleAnalyzeMultihop reports how consistency decays along an
// RSVP-style 20-hop reservation path.
func ExampleAnalyzeMultihop() {
	m, err := softstate.AnalyzeMultihop(softstate.SSRT, softstate.DefaultMultihopParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("end-to-end I = %.4f, first hop %.4f, last hop %.4f\n",
		m.Inconsistency, m.PerHop[0], m.PerHop[len(m.PerHop)-1])
	// Output:
	// end-to-end I = 0.0114, first hop 0.0005, last hop 0.0114
}

// ExampleBestProtocol answers the design question directly.
func ExampleBestProtocol() {
	best, _, err := softstate.BestProtocol(10, softstate.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("winner:", best)
	// Output:
	// winner: HS
}
