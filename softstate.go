// Package softstate is a Go implementation of the signaling-protocol
// analysis from Ji, Ge, Kurose, and Towsley, "A Comparison of Hard-state
// and Soft-state Signaling Protocols" (SIGCOMM 2003).
//
// The package models five generic signaling protocols spanning the
// hard-state/soft-state spectrum — pure soft state (SS), soft state with
// explicit removal (SS+ER), with reliable triggers (SS+RT), with reliable
// triggers and removal (SS+RTR), and pure hard state (HS) — and evaluates
// them three ways:
//
//   - analytically, via the paper's continuous-time Markov chains for
//     single-hop (Analyze) and multi-hop (AnalyzeMultihop) systems;
//   - by event-level simulation of the actual protocol state machines
//     over a lossy, delaying, FIFO channel (Simulate, SimulateMultihop);
//   - and as a runnable real-time signaling runtime over net.PacketConn
//     (internal/signal), for use as an actual protocol library, backed by
//     a sharded state table with hierarchical timing wheels
//     (internal/statetable) that scales to millions of concurrent keys.
//
// The metrics follow the paper: the inconsistency ratio I (fraction of
// time sender and receiver state disagree), the normalized signaling
// message rate Λ = μr·E[messages per session], and the integrated cost
// C = α·I + Λ.
//
// # Quickstart
//
//	p := softstate.DefaultParams()
//	for _, proto := range softstate.Protocols() {
//		m, err := softstate.Analyze(proto, p)
//		if err != nil {
//			log.Fatal(err)
//		}
//		fmt.Printf("%-7v I=%.4f Λ=%.3f msg/s\n", proto, m.Inconsistency, m.NormalizedRate)
//	}
//
// Every table and figure of the paper's evaluation can be regenerated
// with cmd/sigbench or the benchmarks in bench_test.go; see DESIGN.md for
// the package map, the statetable architecture, and measured numbers.
package softstate

import "softstate/internal/core"

// Protocol identifies one of the five generic signaling protocols.
type Protocol = core.Protocol

// The five protocols, ordered from pure soft state to pure hard state.
const (
	SS    = core.SS
	SSER  = core.SSER
	SSRT  = core.SSRT
	SSRTR = core.SSRTR
	HS    = core.HS
)

// Params are the single-hop system parameters (paper §III-A): update and
// removal rates, channel delay and loss, and the refresh/timeout/
// retransmission timers.
type Params = core.Params

// MultihopParams are the path parameters (paper §III-B).
type MultihopParams = core.MultihopParams

// Metrics are the single-hop analytic outputs: inconsistency ratio,
// lifetime, message rates.
type Metrics = core.Metrics

// MultihopMetrics are the multi-hop analytic outputs, including per-hop
// inconsistency.
type MultihopMetrics = core.MultihopMetrics

// SimConfig configures the event-level single-hop simulator.
type SimConfig = core.SimConfig

// SimResult is the single-hop simulation output with confidence intervals.
type SimResult = core.SimResult

// MultihopSimConfig configures the event-level path simulator.
type MultihopSimConfig = core.MultihopSimConfig

// MultihopSimResult is the path simulation output.
type MultihopSimResult = core.MultihopSimResult

// TimerKind selects a timer distribution for simulations.
type TimerKind = core.TimerKind

// Timer distribution families.
const (
	Exponential   = core.Exponential
	Deterministic = core.Deterministic
	UniformJitter = core.UniformJitter
)

// Comparison pairs a protocol with its analytic metrics.
type Comparison = core.Comparison

// Protocols returns all five protocols in the paper's order.
func Protocols() []Protocol { return core.Protocols() }

// MultihopProtocols returns the protocols covered by the multi-hop study.
func MultihopProtocols() []Protocol { return core.MultihopProtocols() }

// DefaultParams returns the paper's Kazaa-scenario single-hop defaults.
func DefaultParams() Params { return core.DefaultParams() }

// DefaultMultihopParams returns the paper's path-reservation defaults.
func DefaultMultihopParams() MultihopParams { return core.DefaultMultihopParams() }

// Analyze solves the single-hop CTMC for proto at p.
func Analyze(proto Protocol, p Params) (Metrics, error) { return core.Analyze(proto, p) }

// AnalyzeMultihop solves the multi-hop CTMC for proto at p.
func AnalyzeMultihop(proto Protocol, p MultihopParams) (MultihopMetrics, error) {
	return core.AnalyzeMultihop(proto, p)
}

// Simulate runs the event-level single-hop simulator.
func Simulate(cfg SimConfig) (SimResult, error) { return core.Simulate(cfg) }

// SimulateMultihop runs the event-level path simulator.
func SimulateMultihop(cfg MultihopSimConfig) (MultihopSimResult, error) {
	return core.SimulateMultihop(cfg)
}

// IntegratedCost is C = α·I + Λ (paper eq. 8).
func IntegratedCost(alpha float64, m Metrics) float64 { return core.IntegratedCost(alpha, m) }

// Compare solves every protocol at one parameter point.
func Compare(p Params) ([]Comparison, error) { return core.Compare(p) }

// BestProtocol returns the protocol minimizing C = α·I + Λ at p.
func BestProtocol(alpha float64, p Params) (Protocol, float64, error) {
	return core.BestProtocol(alpha, p)
}
