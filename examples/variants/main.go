// Command variants runs the paper's headline five-way comparison — SS,
// SS+ER, SS+RT, SS+RTR, HS — on the real wire stack: actual
// signal.Sender/Receiver endpoints (or an N-hop relay chain) exchanging
// checksummed datagrams over a lossy link, every protocol facing the
// same churned workload and external false-removal signal under one
// deterministic virtual clock.
//
//	go run ./examples/variants                 # single hop, 15% loss
//	go run ./examples/variants -loss 0.3 -hops 3
//
// Same seed → byte-identical table. Expect the paper's ordering: the
// reliable-removal variants (SS+RTR, HS) at the bottom of the
// inconsistency column, pure SS at the top with an empty machinery
// column; and watch HS's inconsistency climb with loss as its liveness
// probes start declaring live senders dead — the failure-detection
// dependence the paper warns about.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"softstate/internal/sim"
	"softstate/internal/variant"
)

func main() {
	var (
		loss = flag.Float64("loss", 0.15, "per-datagram loss probability on every link")
		hops = flag.Int("hops", 1, "state-holding links (≥2 runs a live relay chain)")
		keys = flag.Int("keys", 24, "concurrently signaled keys")
		dur  = flag.Duration("duration", 60*time.Second, "virtual experiment length")
		seed = flag.Uint64("seed", 42, "workload seed (same seed → identical table)")
	)
	flag.Parse()

	base := sim.LiveConfig{
		Hops:            *hops,
		Keys:            *keys,
		Loss:            *loss,
		Delay:           2 * time.Millisecond,
		RefreshInterval: 100 * time.Millisecond,
		MeanLifetime:    3 * time.Second,
		MeanGap:         time.Second,
		MeanFalseSignal: 2 * time.Second,
		Duration:        *dur,
		Seed:            *seed,
	}
	fmt.Printf("five protocol variants, live stack, virtual time: %d keys, %d hop(s), %.0f%% loss, %v\n\n",
		base.Keys, base.Hops, base.Loss*100, base.Duration)

	results, err := sim.RunLiveVariants(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "variants:", err)
		os.Exit(1)
	}
	fmt.Printf("%-8s %10s %14s %11s   %s\n", "proto", "I", "dgrams/key/s", "machinery", "mechanisms")
	for i, prof := range variant.All() {
		r := results[i]
		fmt.Printf("%-8s %10.5f %14.2f %11d   %s\n",
			prof.Name, r.Inconsistency, r.Rate, r.Machinery(), prof.Mechanisms())
	}
	fmt.Printf("\nmachinery = acks + removals + removal-acks + probes (datagrams beyond triggers/refreshes)\n")
}
