// Quickstart: compare the five generic signaling protocols at the paper's
// Kazaa operating point, then ask the library the paper's bottom-line
// question — which mechanism bundle minimizes the integrated cost
// C = α·I + Λ as the application's inconsistency penalty α varies.
package main

import (
	"fmt"
	"log"

	"softstate"
)

func main() {
	p := softstate.DefaultParams()
	fmt.Println("Signaling protocol comparison (Kazaa defaults: 30-minute sessions,")
	fmt.Println("updates every 20 s, 2% loss, 30 ms delay, R = 5 s, T = 3R):")
	fmt.Println()
	fmt.Printf("%-8s %14s %14s %14s\n", "proto", "inconsistency", "msg rate Λ", "E[msgs/session]")
	for _, proto := range softstate.Protocols() {
		m, err := softstate.Analyze(proto, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %14.5f %14.4f %14.1f\n",
			proto, m.Inconsistency, m.NormalizedRate, m.MessagesPerSession)
	}

	fmt.Println("\nWhich protocol wins as inconsistency gets more expensive?")
	fmt.Printf("%10s  %-8s %10s\n", "α (msg/s)", "winner", "cost C")
	for _, alpha := range []float64{0.1, 1, 10, 100, 1000} {
		best, cost, err := softstate.BestProtocol(alpha, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.4g  %-8v %10.4f\n", alpha, best, cost)
	}

	fmt.Println("\nCross-check by event simulation (deterministic timers, as deployed):")
	res, err := softstate.Simulate(softstate.SimConfig{
		Protocol: softstate.SSER,
		Params:   p.WithSessionLength(600),
		Sessions: 1500,
		Seed:     7,
		Timers:   softstate.Deterministic,
	})
	if err != nil {
		log.Fatal(err)
	}
	ana, err := softstate.Analyze(softstate.SSER, p.WithSessionLength(600))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SS+ER at 10-minute sessions: simulated I = %v, analytic I = %.5f\n",
		res.Inconsistency, ana.Inconsistency)
}
