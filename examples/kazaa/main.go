// Kazaa: the paper's motivating single-hop scenario (§III-A). A peer
// registers its shared files with a supernode; while the registration is
// stale the supernode directs other peers to a host that is gone, and
// every such redirect is a fruitless connection attempt — the
// application-specific cost of inconsistency.
//
// This example studies peer churn: how does each protocol behave as the
// population shifts from flash visitors (5-minute sessions) to long-lived
// peers (2-hour sessions), and what does that mean in fruitless lookups?
package main

import (
	"fmt"
	"log"

	"softstate"
)

// lookupRate is how often other peers ask the supernode for this peer's
// files (requests per second); each request served from stale state is a
// fruitless connection attempt.
const lookupRate = 0.5

func main() {
	fmt.Println("P2P registration under churn: fruitless lookups caused by stale")
	fmt.Println("supernode state, per peer session, by protocol and session length.")
	fmt.Println()
	sessions := []struct {
		name string
		secs float64
	}{
		{"flash visitor (5 min)", 300},
		{"casual peer (30 min)", 1800},
		{"resident peer (2 h)", 7200},
	}
	fmt.Printf("%-22s %-8s %14s %16s %16s\n",
		"population", "proto", "inconsistency", "fruitless/sess", "msgs/session")
	for _, s := range sessions {
		p := softstate.DefaultParams().WithSessionLength(s.secs)
		for _, proto := range softstate.Protocols() {
			m, err := softstate.Analyze(proto, p)
			if err != nil {
				log.Fatal(err)
			}
			// Stale time per session ≈ I × lifetime; fruitless lookups are
			// the lookups that land inside it.
			fruitless := m.Inconsistency * m.Lifetime * lookupRate
			fmt.Printf("%-22s %-8v %14.5f %16.2f %16.1f\n",
				s.name, proto, m.Inconsistency, fruitless, m.MessagesPerSession)
		}
		fmt.Println()
	}

	fmt.Println("The paper's headline, measured: adding explicit removal to SS cuts")
	fmt.Println("stale-state cost several-fold at nearly zero message overhead —")

	p := softstate.DefaultParams().WithSessionLength(1800)
	ss, err := softstate.Analyze(softstate.SS, p)
	if err != nil {
		log.Fatal(err)
	}
	sser, err := softstate.Analyze(softstate.SSER, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  I improves %.1fx; message rate grows %.2f%%.\n",
		ss.Inconsistency/sser.Inconsistency,
		100*(sser.NormalizedRate-ss.NormalizedRate)/ss.NormalizedRate)

	// Validate the claim with the event simulator rather than trusting the
	// chain: deterministic timers, 2000 sessions.
	simSS, err := softstate.Simulate(softstate.SimConfig{
		Protocol: softstate.SS, Params: p, Sessions: 2000, Seed: 17,
		Timers: softstate.Deterministic,
	})
	if err != nil {
		log.Fatal(err)
	}
	simER, err := softstate.Simulate(softstate.SimConfig{
		Protocol: softstate.SSER, Params: p, Sessions: 2000, Seed: 17,
		Timers: softstate.Deterministic,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated: I(SS) = %v, I(SS+ER) = %v (%.1fx)\n",
		simSS.Inconsistency, simER.Inconsistency,
		simSS.Inconsistency.Mean/simER.Inconsistency.Mean)
}
