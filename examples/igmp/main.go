// IGMP: the paper's opening example of protocol evolution. IGMPv1 managed
// group membership with pure soft state — a router learned of a host's
// departure only when its membership timed out, and multicast traffic kept
// flowing to nobody in the meantime. IGMPv2 added an explicit Leave
// message: the SS → SS+ER transition, made years before the paper
// formalized why it matters.
//
// This example recreates both versions with the signaling runtime: hosts
// join groups at a router, one leaves politely, one crashes, and we
// measure how long the router kept forwarding to departed hosts under
// each protocol.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"softstate/internal/lossy"
	sig "softstate/internal/signal"
)

// router aggregates membership learned on every host-facing port.
type router struct {
	mu      sync.Mutex
	members map[string]bool
	ports   []*sig.Receiver
}

func (r *router) set(key string, present bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if present {
		r.members[key] = true
	} else {
		delete(r.members, key)
	}
}

func (r *router) has(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[key]
}

func (r *router) waitGone(key string, max time.Duration) time.Duration {
	start := time.Now()
	for r.has(key) {
		if time.Since(start) > max {
			return max
		}
		time.Sleep(time.Millisecond)
	}
	return time.Since(start)
}

// attach adds one host-facing port to the router and mirrors its receiver
// events into the membership table.
func (r *router) attach(conn net.PacketConn, cfg sig.Config) {
	rcv, err := sig.NewReceiver(conn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	r.ports = append(r.ports, rcv)
	go func() {
		for ev := range rcv.Events() {
			switch ev.Kind {
			case sig.EventInstalled, sig.EventUpdated:
				r.set(ev.Key, true)
			case sig.EventRemoved, sig.EventExpired, sig.EventFalseRemoval:
				r.set(ev.Key, false)
			}
		}
	}()
}

func (r *router) close() {
	for _, p := range r.ports {
		p.Close()
	}
}

func main() {
	for _, proto := range []sig.Protocol{sig.SS, sig.SSER} {
		version := "IGMPv1 (pure soft state)"
		if proto == sig.SSER {
			version = "IGMPv2 (soft state + explicit Leave)"
		}
		fmt.Printf("=== %s\n", version)
		run(proto)
		fmt.Println()
	}
}

func run(proto sig.Protocol) {
	cfg := sig.Config{
		Protocol:        proto,
		RefreshInterval: 100 * time.Millisecond, // membership report interval
		Timeout:         300 * time.Millisecond, // router's membership timeout
		Retransmit:      25 * time.Millisecond,
	}
	rt := &router{members: make(map[string]bool)}
	defer rt.close()

	// Each host gets its own slightly lossy LAN segment to the router.
	newHost := func() *sig.Sender {
		hc, rc, err := lossy.Pipe(lossy.Config{Loss: 0.05, Delay: 2 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		rt.attach(rc, cfg)
		snd, err := sig.NewSender(hc, rc.LocalAddr(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return snd
	}
	alice, bob, carol := newHost(), newHost(), newHost()

	join := func(s *sig.Sender, key string) {
		if err := s.Install(key, []byte("member")); err != nil {
			log.Fatal(err)
		}
	}
	join(alice, "224.0.1.1/alice")
	join(bob, "224.0.1.1/bob")
	join(carol, "224.0.9.9/carol")

	// Wait until all three memberships are visible.
	for _, k := range []string{"224.0.1.1/alice", "224.0.1.1/bob", "224.0.9.9/carol"} {
		for !rt.has(k) {
			time.Sleep(time.Millisecond)
		}
	}
	fmt.Println("joined: alice, bob → 224.0.1.1; carol → 224.0.9.9")

	// Alice leaves politely; Carol crashes (refreshes just stop).
	if err := alice.Remove("224.0.1.1/alice"); err != nil {
		log.Fatal(err)
	}
	politeGone := rt.waitGone("224.0.1.1/alice", 5*time.Second)
	carol.Close()
	crashGone := rt.waitGone("224.0.9.9/carol", 5*time.Second)

	how := "had to wait for the membership timeout"
	if proto.ExplicitRemoval() {
		how = "explicit Leave message"
	}
	fmt.Printf("polite leave visible after  %6.0f ms  (%s)\n", ms(politeGone), how)
	fmt.Printf("crash detected after        %6.0f ms  (timeout is the only signal)\n", ms(crashGone))
	fmt.Printf("bob's membership persists:  %v\n", rt.has("224.0.1.1/bob"))

	bob.Close()
	alice.Close()
}

func ms(d time.Duration) float64 { return d.Seconds() * 1000 }
