// Livewire: two real protocol endpoints exchanging datagrams in real time
// over an impaired channel, exercising every mechanism the paper analyzes:
// best-effort install, refresh-driven survival, reliable triggers under
// heavy loss, false removal with notification repair, and reliable
// teardown. Run it to watch the hard-state machinery work.
package main

import (
	"fmt"
	"log"
	"time"

	"softstate/internal/lossy"
	sig "softstate/internal/signal"
)

func main() {
	cfg := sig.Config{
		Protocol:        sig.SSRTR, // reliable triggers + reliable removal
		RefreshInterval: 250 * time.Millisecond,
		Timeout:         750 * time.Millisecond,
		Retransmit:      50 * time.Millisecond,
	}
	// A nasty channel: 30% loss, 15 ms ± 10 ms delay.
	a, b, err := lossy.Pipe(lossy.Config{
		Loss:   0.30,
		Delay:  15 * time.Millisecond,
		Jitter: 10 * time.Millisecond,
		Seed:   2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	snd, err := sig.NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	rcv, err := sig.NewReceiver(b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rcv.Close()
	defer snd.Close()

	start := time.Now()
	logEv := func(who string, ev sig.Event) {
		fmt.Printf("%7.0fms  %-9s %-13s %-12q %q\n",
			float64(time.Since(start).Microseconds())/1000, who, ev.Kind, ev.Key, ev.Value)
	}
	go func() {
		for ev := range snd.Events() {
			logEv("sender", ev)
		}
	}()
	go func() {
		for ev := range rcv.Events() {
			logEv("receiver", ev)
		}
	}()

	fmt.Println("SS+RTR over a 30%-loss channel — watch reliability do its job:")
	fmt.Println()

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(snd.Install("mcast/group-9", []byte("member")))
	time.Sleep(400 * time.Millisecond)

	must(snd.Update("mcast/group-9", []byte("member,source")))
	time.Sleep(400 * time.Millisecond)

	fmt.Println("\n-- injecting a false removal; the notification mechanism repairs it:")
	rcv.InjectFalseRemoval("mcast/group-9")
	time.Sleep(400 * time.Millisecond)

	fmt.Println("\n-- reliable teardown:")
	must(snd.Remove("mcast/group-9"))
	time.Sleep(600 * time.Millisecond)

	ss, rs := snd.Stats(), rcv.Stats()
	fmt.Printf("\nfinal: receiver holds %d keys (want 0)\n", rcv.Len())
	fmt.Printf("sender sent:   %v\n", ss.Sent)
	fmt.Printf("receiver sent: %v\n", rs.Sent)
	fmt.Printf("triggers retransmitted until ACKed; %d datagrams survived a 30%% loss channel\n",
		rs.Received["trigger"]+rs.Received["refresh"]+rs.Received["removal"])
}
