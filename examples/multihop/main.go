// Multihop: an RSVP-style bandwidth reservation must be installed at every
// router on a path (paper §III-B). This example walks the paper's
// multi-hop findings: how consistency decays hop by hop, how path length
// punishes pure soft state, and how hop-by-hop reliable triggers buy back
// almost all of hard state's consistency at a fraction of its complexity —
// then runs the same protocols *live* on a 5-hop relay chain built from
// internal/node: real goroutine endpoints, real datagrams, lossy links.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"softstate"
	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/node"
	"softstate/internal/signal"
	"softstate/internal/telemetry"
)

func main() {
	virtual := flag.Bool("virtual", false,
		"run the 5-hop chain in deterministic virtual time (same -seed → byte-identical output)")
	trace := flag.Bool("trace", false,
		"with -virtual, attach the lifecycle tracer to every chain endpoint and print a deterministic trace digest")
	seed := flag.Uint64("seed", 5, "link impairment seed for the chain run")
	flag.Parse()

	p := softstate.DefaultMultihopParams() // 20 hops, 2% loss/hop, updates every 60 s

	fmt.Println("Reserving bandwidth along a 20-router path (2% loss and 30 ms per hop):")
	fmt.Println()
	fmt.Println("Per-hop staleness — the fraction of time router i holds the wrong")
	fmt.Println("reservation (paper Fig 17):")
	metrics := map[softstate.Protocol]softstate.MultihopMetrics{}
	for _, proto := range softstate.MultihopProtocols() {
		m, err := softstate.AnalyzeMultihop(proto, p)
		if err != nil {
			log.Fatal(err)
		}
		metrics[proto] = m
	}
	fmt.Printf("%6s %10s %10s %10s\n", "router", "SS", "SS+RT", "HS")
	for _, hop := range []int{1, 5, 10, 15, 20} {
		fmt.Printf("%6d %10.4f %10.4f %10.4f\n", hop,
			metrics[softstate.SS].PerHop[hop-1],
			metrics[softstate.SSRT].PerHop[hop-1],
			metrics[softstate.HS].PerHop[hop-1])
	}

	fmt.Println("\nSparkline of SS staleness across the path:")
	fmt.Printf("  %s\n", spark(metrics[softstate.SS].PerHop))

	fmt.Println("\nPath length sensitivity (paper Fig 18): end-to-end inconsistency and")
	fmt.Println("total signaling load as the path grows:")
	fmt.Printf("%6s %26s %26s\n", "hops", "inconsistency (SS/SS+RT/HS)", "msgs per sec (SS/SS+RT/HS)")
	for _, n := range []int{2, 5, 10, 20} {
		pn := p.WithHops(n)
		var is, rates []string
		for _, proto := range softstate.MultihopProtocols() {
			m, err := softstate.AnalyzeMultihop(proto, pn)
			if err != nil {
				log.Fatal(err)
			}
			is = append(is, fmt.Sprintf("%.4f", m.Inconsistency))
			rates = append(rates, fmt.Sprintf("%.2f", m.MsgRate))
		}
		fmt.Printf("%6d %26s %26s\n", n, strings.Join(is, "/"), strings.Join(rates, "/"))
	}

	fmt.Println("\nCross-check at N=5 with the event-level path simulator:")
	p5 := p.WithHops(5)
	for _, proto := range softstate.MultihopProtocols() {
		ana, err := softstate.AnalyzeMultihop(proto, p5)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := softstate.SimulateMultihop(softstate.MultihopSimConfig{
			Protocol: proto, Params: p5,
			Horizon: 20000, Runs: 2, Seed: 5,
			Timers: softstate.Deterministic,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6v analytic I = %.5f   simulated I = %v\n",
			proto, ana.Inconsistency, sim.Inconsistency)
	}

	if *virtual {
		virtualChain(*seed, *trace)
	} else {
		liveChain(*seed)
	}
}

// chainConfig is the shared 5-hop demo configuration: R = 100 ms with the
// paper's T = 3R ratio, 2% loss and 3 ms delay per link.
func chainConfig(proto softstate.Protocol, seed uint64) (signal.Config, lossy.Config) {
	cfg := signal.Config{
		Protocol:        proto,
		RefreshInterval: 100 * time.Millisecond,
		Timeout:         300 * time.Millisecond,
		Retransmit:      25 * time.Millisecond,
		Shards:          4,
	}
	link := lossy.Config{Loss: 0.02, Delay: 3 * time.Millisecond, Seed: seed}
	return cfg, link
}

// virtualChain is the deterministic replay mode: the same real 5-hop
// relay chain as liveChain — identical endpoints, wire protocol, and
// impairments — but driven by a virtual clock. Nothing sleeps, latencies
// are exact virtual times rather than wall measurements, and a fixed seed
// reproduces the run byte for byte.
func virtualChain(seed uint64, trace bool) {
	fmt.Println("\nVirtual run: the same reservation on a real 5-hop relay chain in")
	fmt.Printf("deterministic virtual time (seed %d; same seed → identical output):\n", seed)
	fmt.Printf("%8s %18s %14s %16s %10s\n",
		"proto", "install latency", "holds @ 3R", "removal clears", "datagrams")
	digests := make([]string, 0, 3)
	for _, proto := range softstate.MultihopProtocols() {
		v := clock.NewVirtual()
		cfg, link := chainConfig(proto, seed)
		cfg.Clock = v
		link.Clock = v
		var tr *telemetry.Tracer
		if trace {
			tr = telemetry.NewTracer(telemetry.TracerConfig{Capacity: 1 << 14, Clock: v})
			cfg.Trace = tr // every endpoint on the chain records into one ring
		}
		c, err := node.NewChain(6, cfg, link)
		if err != nil {
			log.Fatal(err)
		}

		const key = "reservation/video-1"
		start := v.Elapsed()
		if err := c.Install(key, []byte("10Mbps")); err != nil {
			log.Fatal(err)
		}
		install := "timeout"
		if v.RunUntil(func() bool { _, ok := c.Tail.Get(key); return ok },
			time.Millisecond, 5*time.Second) {
			install = (v.Elapsed() - start).Round(time.Millisecond).String()
		}

		v.Run(3 * cfg.RefreshInterval)
		holds := c.Holds(key)

		start = v.Elapsed()
		if err := c.Remove(key); err != nil {
			log.Fatal(err)
		}
		cleared := "timeout"
		if v.RunUntil(func() bool { return c.Holds(key) == 0 },
			time.Millisecond, 5*time.Second) {
			cleared = (v.Elapsed() - start).Round(time.Millisecond).String()
		}

		sent := c.Origin.Stats().TotalSent()
		for _, r := range c.Relays {
			sent += r.Downstream().Stats().TotalSent()
			sent += r.Receiver().Stats().TotalSent()
		}
		sent += c.Tail.Stats().TotalSent()
		fmt.Printf("%8v %18s %10d/5 %16s %10d\n",
			proto, install, holds, cleared, sent)
		c.Close()
		if tr != nil {
			digests = append(digests, traceDigest(proto, tr))
		}
	}
	if trace {
		fmt.Println("\nLifecycle trace digest (chain-wide event multiset — itself a pure")
		fmt.Println("function of the seed, so these lines replay byte for byte):")
		for _, d := range digests {
			fmt.Println(d)
		}
	}
	fmt.Println("\nEvery number above is a pure function of the seed: the chain ran the")
	fmt.Println("production endpoints with all timers and link delays in virtual time.")
}

// traceDigest summarizes one protocol run's chain-wide trace: total
// volume, the virtual-time span, and per-kind counts. Endpoints record
// concurrently, so the digest reports the (deterministic) event multiset
// rather than an interleaving order.
func traceDigest(proto softstate.Protocol, tr *telemetry.Tracer) string {
	events := tr.Events()
	var last time.Duration
	for _, ev := range events {
		if ev.At > last {
			last = ev.At
		}
	}
	counts := tr.KindCounts()
	kinds := make([]telemetry.TraceKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%v %d", k, counts[k]))
	}
	return fmt.Sprintf("  %-6v %4d events over %8v: %s",
		proto, len(events)+int(tr.Overwritten()), last.Round(time.Millisecond), strings.Join(parts, ", "))
}

// liveChain runs the protocols on a real 5-hop relay chain: an origin
// node, four relays, and a tail receiver, each link dropping 2% of
// datagrams. Timers are scaled down (R = 100 ms) so the demo finishes in
// seconds; the R:T ratio matches the paper's deployed defaults (T = 3R).
func liveChain(seed uint64) {
	fmt.Println("\nLive run: the same reservation on a real 5-hop relay chain")
	fmt.Println("(internal/node: one relay per router, 2% loss and 3 ms per link):")
	fmt.Printf("%8s %18s %14s %16s %10s\n",
		"proto", "install latency", "holds @ 3R", "removal clears", "datagrams")
	for _, proto := range softstate.MultihopProtocols() {
		cfg, link := chainConfig(proto, seed)
		c, err := node.NewChain(6, cfg, link)
		if err != nil {
			log.Fatal(err)
		}
		tailEvents := c.Tail.Events()

		if err := c.Install("reservation/video-1", []byte("10Mbps")); err != nil {
			log.Fatal(err)
		}
		installLatency, reached := awaitTail(tailEvents, signal.EventInstalled, 5*time.Second)
		install := "timeout"
		if reached {
			install = installLatency.Round(time.Millisecond).String()
		}

		// Let refreshes (or hard state's absence of them) carry the
		// reservation through three refresh intervals.
		time.Sleep(3 * cfg.RefreshInterval)
		holds := c.Holds("reservation/video-1")

		start := time.Now()
		if err := c.Remove("reservation/video-1"); err != nil {
			log.Fatal(err)
		}
		cleared := "timeout"
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.Holds("reservation/video-1") == 0 {
				cleared = time.Since(start).Round(time.Millisecond).String()
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		// Count both directions: installs/refreshes/removals downstream
		// and acks/notifies/NACKs back — the reliable protocols' reply
		// cost is exactly what the closing comparison is about.
		sent := c.Origin.Stats().TotalSent()
		for _, r := range c.Relays {
			sent += r.Downstream().Stats().TotalSent()
			sent += r.Receiver().Stats().TotalSent()
		}
		sent += c.Tail.Stats().TotalSent()
		fmt.Printf("%8v %18s %10d/5 %16s %10d\n",
			proto, install, holds, cleared, sent)
		c.Close()
	}
	fmt.Println("\nNote how explicit removal (HS) clears the path in one round trip per")
	fmt.Println("hop while pure soft state waits out a timeout chain — and how the")
	fmt.Println("refreshing protocols pay for that patience with steady datagrams.")
}

// awaitTail waits for the first tail event of the given kind, reporting
// the elapsed time and whether the event arrived before the timeout.
func awaitTail(events <-chan signal.Event, kind signal.EventKind, timeout time.Duration) (time.Duration, bool) {
	start := time.Now()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return timeout, false
			}
			if ev.Kind == kind {
				return time.Since(start), true
			}
		case <-deadline:
			return timeout, false
		}
	}
}

// spark renders values as a unicode sparkline.
func spark(xs []float64) string {
	marks := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return strings.Repeat(string(marks[0]), len(xs))
	}
	var b strings.Builder
	for _, x := range xs {
		i := int(x / max * float64(len(marks)-1))
		b.WriteRune(marks[i])
	}
	return b.String()
}
