// Multihop: an RSVP-style bandwidth reservation must be installed at every
// router on a path (paper §III-B). This example walks the paper's
// multi-hop findings: how consistency decays hop by hop, how path length
// punishes pure soft state, and how hop-by-hop reliable triggers buy back
// almost all of hard state's consistency at a fraction of its complexity —
// then cross-checks one point against the event-level path simulator.
package main

import (
	"fmt"
	"log"
	"strings"

	"softstate"
)

func main() {
	p := softstate.DefaultMultihopParams() // 20 hops, 2% loss/hop, updates every 60 s

	fmt.Println("Reserving bandwidth along a 20-router path (2% loss and 30 ms per hop):")
	fmt.Println()
	fmt.Println("Per-hop staleness — the fraction of time router i holds the wrong")
	fmt.Println("reservation (paper Fig 17):")
	metrics := map[softstate.Protocol]softstate.MultihopMetrics{}
	for _, proto := range softstate.MultihopProtocols() {
		m, err := softstate.AnalyzeMultihop(proto, p)
		if err != nil {
			log.Fatal(err)
		}
		metrics[proto] = m
	}
	fmt.Printf("%6s %10s %10s %10s\n", "router", "SS", "SS+RT", "HS")
	for _, hop := range []int{1, 5, 10, 15, 20} {
		fmt.Printf("%6d %10.4f %10.4f %10.4f\n", hop,
			metrics[softstate.SS].PerHop[hop-1],
			metrics[softstate.SSRT].PerHop[hop-1],
			metrics[softstate.HS].PerHop[hop-1])
	}

	fmt.Println("\nSparkline of SS staleness across the path:")
	fmt.Printf("  %s\n", spark(metrics[softstate.SS].PerHop))

	fmt.Println("\nPath length sensitivity (paper Fig 18): end-to-end inconsistency and")
	fmt.Println("total signaling load as the path grows:")
	fmt.Printf("%6s %26s %26s\n", "hops", "inconsistency (SS/SS+RT/HS)", "msgs per sec (SS/SS+RT/HS)")
	for _, n := range []int{2, 5, 10, 20} {
		pn := p.WithHops(n)
		var is, rates []string
		for _, proto := range softstate.MultihopProtocols() {
			m, err := softstate.AnalyzeMultihop(proto, pn)
			if err != nil {
				log.Fatal(err)
			}
			is = append(is, fmt.Sprintf("%.4f", m.Inconsistency))
			rates = append(rates, fmt.Sprintf("%.2f", m.MsgRate))
		}
		fmt.Printf("%6d %26s %26s\n", n, strings.Join(is, "/"), strings.Join(rates, "/"))
	}

	fmt.Println("\nCross-check at N=5 with the event-level path simulator:")
	p5 := p.WithHops(5)
	for _, proto := range softstate.MultihopProtocols() {
		ana, err := softstate.AnalyzeMultihop(proto, p5)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := softstate.SimulateMultihop(softstate.MultihopSimConfig{
			Protocol: proto, Params: p5,
			Horizon: 20000, Runs: 2, Seed: 5,
			Timers: softstate.Deterministic,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6v analytic I = %.5f   simulated I = %v\n",
			proto, ana.Inconsistency, sim.Inconsistency)
	}
}

// spark renders values as a unicode sparkline.
func spark(xs []float64) string {
	marks := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return strings.Repeat(string(marks[0]), len(xs))
	}
	var b strings.Builder
	for _, x := range xs {
		i := int(x / max * float64(len(marks)-1))
		b.WriteRune(marks[i])
	}
	return b.String()
}
