// Benchmarks regenerating every table and figure of the paper's
// evaluation (one testing.B per artifact, wrapping internal/exp), plus
// engine microbenchmarks for the substrates the experiments run on.
// Quick mode keeps `go test -bench=.` tractable; run cmd/sigbench with
// -full for publication-resolution sweeps.
package softstate_test

import (
	"testing"

	"softstate"
	"softstate/internal/exp"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := e.Run(exp.Options{Quick: true, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if table.Len() == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Table I ---

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// --- single-hop analytic figures ---

func BenchmarkFig4aInconsistencyVsLifetime(b *testing.B) { benchExperiment(b, "fig4a") }
func BenchmarkFig4bMessageRateVsLifetime(b *testing.B)   { benchExperiment(b, "fig4b") }
func BenchmarkFig5aInconsistencyVsLoss(b *testing.B)     { benchExperiment(b, "fig5a") }
func BenchmarkFig5bInconsistencyVsDelay(b *testing.B)    { benchExperiment(b, "fig5b") }
func BenchmarkFig6aInconsistencyVsRefresh(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6bMessageRateVsRefresh(b *testing.B)    { benchExperiment(b, "fig6b") }
func BenchmarkFig7IntegratedCost(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8aInconsistencyVsTimeout(b *testing.B)  { benchExperiment(b, "fig8a") }
func BenchmarkFig8bInconsistencyVsRetransmit(b *testing.B) {
	benchExperiment(b, "fig8b")
}

// --- tradeoff figures ---

func BenchmarkFig9TradeoffViaRefresh(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10aTradeoffViaUpdates(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFig10bTradeoffViaDelay(b *testing.B)   { benchExperiment(b, "fig10b") }

// --- analytic-vs-simulation validation figures ---

func BenchmarkFig11aValidationInconsistency(b *testing.B) { benchExperiment(b, "fig11a") }
func BenchmarkFig11bValidationMessageRate(b *testing.B)   { benchExperiment(b, "fig11b") }
func BenchmarkFig12aValidationInconsistency(b *testing.B) { benchExperiment(b, "fig12a") }
func BenchmarkFig12bValidationMessageRate(b *testing.B)   { benchExperiment(b, "fig12b") }

// --- multi-hop figures ---

func BenchmarkFig17PerHopInconsistency(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18aInconsistencyVsHops(b *testing.B) { benchExperiment(b, "fig18a") }
func BenchmarkFig18bMessageRateVsHops(b *testing.B)   { benchExperiment(b, "fig18b") }
func BenchmarkFig19aInconsistencyVsRefresh(b *testing.B) {
	benchExperiment(b, "fig19a")
}
func BenchmarkFig19bMessageRateVsRefresh(b *testing.B) { benchExperiment(b, "fig19b") }

// --- ablations (design-choice benches from DESIGN.md §7) ---

func BenchmarkAblationTimerDistribution(b *testing.B) { benchExperiment(b, "ablation-timerdist") }
func BenchmarkAblationFIFO(b *testing.B)              { benchExperiment(b, "ablation-fifo") }
func BenchmarkAblationNotification(b *testing.B)      { benchExperiment(b, "ablation-notification") }
func BenchmarkAblationMultihopSim(b *testing.B)       { benchExperiment(b, "ablation-multihop-sim") }
func BenchmarkAblationCostWeight(b *testing.B)        { benchExperiment(b, "ablation-cost-weight") }

// --- extensions (related-work mechanisms and transient analysis) ---

func BenchmarkExtConvergenceCDF(b *testing.B)   { benchExperiment(b, "ext-convergence") }
func BenchmarkExtRepairMechanisms(b *testing.B) { benchExperiment(b, "ext-repair") }
func BenchmarkExtSensitivity(b *testing.B)      { benchExperiment(b, "ext-sensitivity") }

// --- substrate microbenchmarks ---

// BenchmarkAnalyzeSingleProtocol measures one CTMC build+solve, the unit
// of work behind every analytic sweep point.
func BenchmarkAnalyzeSingleProtocol(b *testing.B) {
	p := softstate.DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := softstate.Analyze(softstate.SSRTR, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeMultihop20 measures the 20-hop chain solve (≈42 states).
func BenchmarkAnalyzeMultihop20(b *testing.B) {
	p := softstate.DefaultMultihopParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := softstate.AnalyzeMultihop(softstate.SSRT, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSession measures event-simulator throughput in sessions
// per second at the Kazaa operating point (shortened sessions).
func BenchmarkSimulateSession(b *testing.B) {
	p := softstate.DefaultParams().WithSessionLength(300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := softstate.Simulate(softstate.SimConfig{
			Protocol: softstate.SSER,
			Params:   p,
			Sessions: 10,
			Seed:     uint64(i) + 1,
			Timers:   softstate.Deterministic,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
