// Command bench runs the repo's headline performance benchmarks — the
// virtual-time live fan-out (plain and telemetry-instrumented), the
// churned single-hop experiment, the raw state-table renew path, one
// live fan-out row per protocol variant (SS → HS), and one real-wire
// loopback row per kernel-socket transport (udp, udp-batch, tcp) — and
// writes the results as a JSON trajectory file (BENCH_8.json and
// successors), so every future PR can show its perf delta against a
// recorded baseline instead of a number in a commit message. Since issue
// 6 the rows carry the telemetry snapshot too (install→ack latency
// quantiles, lifecycle-trace volume); since issue 7 the real-wire rows
// record datagrams-per-syscall, the batching factor of the transport
// layer, over a key population that crosses one million keys at a single
// node in the full-size run; since issue 10 a live-fanout-traced row runs
// the headline fan-out with hop-propagation tracing sampling 1-in-1024
// keys, beside the untraced row, so the trace stamping's overhead on the
// refresh hot path stays a recorded number (expected: a few percent at
// most).
//
// Usage:
//
//	go run ./cmd/bench                # full-size benchmarks (the README numbers)
//	go run ./cmd/bench -short         # scaled-down smoke run for CI
//	go run ./cmd/bench -out BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"softstate/internal/signal"
	"softstate/internal/sim"
	"softstate/internal/statetable"
	"softstate/internal/telemetry"
	"softstate/internal/variant"
)

// entry is one benchmark's recorded numbers.
type entry struct {
	Name        string  `json:"name"`
	Config      string  `json:"config"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	// KeysRefreshedPerSec is the headline throughput metric: simulated
	// key renewals processed per wall-clock second.
	KeysRefreshedPerSec float64 `json:"keys_refreshed_per_s,omitempty"`
	// VirtualPerWallSec is how many simulated seconds one wall second
	// buys on this workload.
	VirtualPerWallSec float64 `json:"virtual_s_per_wall_s,omitempty"`
	// Protocol labels per-variant rows (SS … HS).
	Protocol string `json:"protocol,omitempty"`
	// HeldKeys is the state still installed at the end of a variant
	// fan-out run (all of it, when the lifetime mechanism worked).
	HeldKeys int `json:"held_keys,omitempty"`
	// DatagramsPerKeySec is the steady-state wire cost of holding one key
	// for one simulated second under this variant.
	DatagramsPerKeySec float64 `json:"datagrams_per_key_per_virtual_s,omitempty"`
	// InstallAckP50Ns/P99Ns are the install→ack latency quantiles from the
	// run's telemetry histogram (ack-bearing variants only).
	InstallAckP50Ns float64 `json:"install_ack_p50_ns,omitempty"`
	InstallAckP99Ns float64 `json:"install_ack_p99_ns,omitempty"`
	// TraceEvents is the lifecycle-trace volume (ring retained + dropped)
	// on rows that ran with the tracer attached.
	TraceEvents uint64 `json:"trace_events,omitempty"`
	// Transport labels real-wire rows with their kernel-socket backend
	// (udp, udp-batch, tcp).
	Transport string `json:"transport,omitempty"`
	// DatagramsPerSyscall is the real-wire row's write-side batching
	// factor: datagrams moved per kernel crossing (1.0 for unbatched UDP,
	// up to the ring size for sendmmsg).
	DatagramsPerSyscall float64 `json:"datagrams_per_syscall,omitempty"`
}

// trajectory is the whole output file.
type trajectory struct {
	Issue      int     `json:"issue"`
	Generated  string  `json:"generated"`
	Go         string  `json:"go"`
	CPUs       int     `json:"cpus"`
	Short      bool    `json:"short"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	short := flag.Bool("short", false, "run scaled-down benchmarks (CI smoke mode)")
	out := flag.String("out", "BENCH_8.json", "output file")
	flag.Parse()

	tr := trajectory{
		Issue:     8,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Short:     *short,
	}
	tr.Benchmarks = append(tr.Benchmarks, liveFanout(*short))
	tr.Benchmarks = append(tr.Benchmarks, tracedFanout(*short))
	tr.Benchmarks = append(tr.Benchmarks, telemetryFanout(*short))
	tr.Benchmarks = append(tr.Benchmarks, singleHop(*short))
	tr.Benchmarks = append(tr.Benchmarks, statetableRenew(*short))
	tr.Benchmarks = append(tr.Benchmarks, variantFanout(*short)...)
	tr.Benchmarks = append(tr.Benchmarks, realwire(*short)...)

	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, b := range tr.Benchmarks {
		fmt.Printf("  %-18s %s\n", b.Name, b.summary())
	}
}

func (e entry) summary() string {
	s := fmt.Sprintf("%.0f ns/op, %d allocs/op", e.NsPerOp, e.AllocsPerOp)
	if e.KeysRefreshedPerSec > 0 {
		s += fmt.Sprintf(", %.0f keys-refreshed/s", e.KeysRefreshedPerSec)
	}
	if e.VirtualPerWallSec > 0 {
		s += fmt.Sprintf(", %.3f virtual-s/wall-s", e.VirtualPerWallSec)
	}
	if e.Protocol != "" {
		s += fmt.Sprintf(", %d held, %.2f dgrams/key/s", e.HeldKeys, e.DatagramsPerKeySec)
	}
	if e.InstallAckP99Ns > 0 {
		s += fmt.Sprintf(", install-ack p50=%v p99=%v",
			time.Duration(e.InstallAckP50Ns), time.Duration(e.InstallAckP99Ns))
	}
	if e.TraceEvents > 0 {
		s += fmt.Sprintf(", %d trace events", e.TraceEvents)
	}
	if e.Transport != "" {
		s += fmt.Sprintf(", %s: %.1f dgrams/syscall, %d held", e.Transport, e.DatagramsPerSyscall, e.HeldKeys)
	}
	return s
}

// installAckQuantiles pulls the install→ack latency distribution out of a
// run's registry.
func installAckQuantiles(reg *telemetry.Registry) (p50, p99 float64) {
	qs, ok := reg.Quantiles("softstate_install_ack_seconds", 0.50, 0.99)
	if !ok {
		return 0, 0
	}
	return float64(qs[0]), float64(qs[1])
}

// liveFanout is the headline benchmark: one node renews Peers×Keys keys
// per refresh interval through the full virtual-time stack (summary
// sweep, wire codec, lossy switch, quiesce gate, receiver state tables).
func liveFanout(short bool) entry {
	cfg := sim.FanoutConfig{
		Peers:           64,
		Keys:            16384,
		RefreshInterval: 100 * time.Millisecond,
		Timeout:         time.Hour, // isolate refresh throughput from expiry
	}
	if short {
		cfg.Peers, cfg.Keys = 8, 1024
	}
	h, err := sim.NewFanoutBench(cfg)
	if err != nil {
		fatal(err)
	}
	defer h.Close()
	r := cfg.RefreshInterval
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Run(r) // one summary sweep of every peer
		}
	})
	keys := float64(h.KeysPerInterval())
	secPerOp := float64(res.NsPerOp()) / float64(time.Second)
	return entry{
		Name:                "live-fanout",
		Config:              fmt.Sprintf("%d peers x %d keys, R=%s", cfg.Peers, cfg.Keys, r),
		NsPerOp:             float64(res.NsPerOp()),
		AllocsPerOp:         uint64(res.AllocsPerOp()),
		BytesPerOp:          uint64(res.AllocedBytesPerOp()),
		KeysRefreshedPerSec: keys / secPerOp,
		VirtualPerWallSec:   r.Seconds() / secPerOp,
	}
}

// tracedFanout is the headline benchmark re-run with only the causal
// tracer attached at the deployment sampling rate (1-in-1024 keys): the
// delta against live-fanout is the cost of hop-stamp checks and trace
// TLVs on the refresh hot path, which must stay within a few percent.
func tracedFanout(short bool) entry {
	cfg := sim.FanoutConfig{
		Peers:           64,
		Keys:            16384,
		RefreshInterval: 100 * time.Millisecond,
		Timeout:         time.Hour,
		Trace:           telemetry.NewTracer(telemetry.TracerConfig{SampleEvery: 1024}),
	}
	if short {
		cfg.Peers, cfg.Keys = 8, 1024
	}
	h, err := sim.NewFanoutBench(cfg)
	if err != nil {
		fatal(err)
	}
	defer h.Close()
	r := cfg.RefreshInterval
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Run(r)
		}
	})
	keys := float64(h.KeysPerInterval())
	secPerOp := float64(res.NsPerOp()) / float64(time.Second)
	return entry{
		Name:                "live-fanout-traced",
		Config:              fmt.Sprintf("%d peers x %d keys, R=%s, trace 1/1024", cfg.Peers, cfg.Keys, r),
		NsPerOp:             float64(res.NsPerOp()),
		AllocsPerOp:         uint64(res.AllocsPerOp()),
		BytesPerOp:          uint64(res.AllocedBytesPerOp()),
		KeysRefreshedPerSec: keys / secPerOp,
		VirtualPerWallSec:   r.Seconds() / secPerOp,
		TraceEvents:         uint64(cfg.Trace.Len()) + cfg.Trace.Overwritten(),
	}
}

// telemetryFanout is the headline benchmark re-run with the full
// observability layer attached — registry instruments on the node side
// and the lifecycle tracer recording — so the trajectory tracks what
// turning telemetry on costs against the plain live-fanout row above.
func telemetryFanout(short bool) entry {
	cfg := sim.FanoutConfig{
		Peers:           64,
		Keys:            16384,
		RefreshInterval: 100 * time.Millisecond,
		Timeout:         time.Hour,
		Metrics:         telemetry.NewRegistry(),
		Trace:           telemetry.NewTracer(telemetry.TracerConfig{Capacity: 1 << 14}),
	}
	if short {
		cfg.Peers, cfg.Keys = 8, 1024
	}
	h, err := sim.NewFanoutBench(cfg)
	if err != nil {
		fatal(err)
	}
	defer h.Close()
	r := cfg.RefreshInterval
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Run(r)
		}
	})
	keys := float64(h.KeysPerInterval())
	secPerOp := float64(res.NsPerOp()) / float64(time.Second)
	e := entry{
		Name:                "live-fanout-telemetry",
		Config:              fmt.Sprintf("%d peers x %d keys, R=%s, metrics+trace on", cfg.Peers, cfg.Keys, r),
		NsPerOp:             float64(res.NsPerOp()),
		AllocsPerOp:         uint64(res.AllocsPerOp()),
		BytesPerOp:          uint64(res.AllocedBytesPerOp()),
		KeysRefreshedPerSec: keys / secPerOp,
		VirtualPerWallSec:   r.Seconds() / secPerOp,
		TraceEvents:         uint64(cfg.Trace.Len()) + cfg.Trace.Overwritten(),
	}
	e.InstallAckP50Ns, e.InstallAckP99Ns = installAckQuantiles(cfg.Metrics)
	return e
}

// singleHop runs one virtual second of the churned single-hop consistency
// experiment per op — loss, jitter, churn, false signals, acks.
func singleHop(short bool) entry {
	base := sim.LiveConfig{
		Protocol:        signal.SSRT,
		Hops:            1,
		Keys:            64,
		Loss:            0.1,
		Delay:           2 * time.Millisecond,
		RefreshInterval: 100 * time.Millisecond,
		MeanLifetime:    3 * time.Second,
		MeanGap:         time.Second,
		Seed:            9,
	}
	if short {
		base.Keys = 16
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cfg := base
		cfg.Duration = time.Duration(b.N) * time.Second
		if _, err := sim.RunLive(cfg); err != nil {
			b.Fatal(err)
		}
	})
	secPerOp := float64(res.NsPerOp()) / float64(time.Second)
	return entry{
		Name:              "single-hop-events",
		Config:            fmt.Sprintf("%d keys, loss=%.2f, churned", base.Keys, base.Loss),
		NsPerOp:           float64(res.NsPerOp()),
		AllocsPerOp:       uint64(res.AllocsPerOp()),
		BytesPerOp:        uint64(res.AllocedBytesPerOp()),
		VirtualPerWallSec: 1 / secPerOp,
	}
}

// statetableRenew measures the raw table renew path every summary key
// rides: byte-key lookup plus timer reschedule on the shard wheel.
func statetableRenew(short bool) entry {
	n := 1 << 20
	if short {
		n = 1 << 14
	}
	tbl := statetable.New(statetable.Config[int]{Shards: 16, OnExpire: func(string, statetable.TimerKind, *int, statetable.TimerControl[int]) {}})
	defer tbl.Close()
	keys := make([][]byte, n)
	for i := range keys {
		key := fmt.Sprintf("peer\x00flow/%07d", i)
		keys[i] = []byte(key)
		tbl.Upsert(key, nil)
	}
	renew := func(_ *int, tc statetable.TimerControl[int]) { tc.Schedule(0, time.Hour) }
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tbl.UpdateBytes(keys[i%n], renew)
		}
	})
	return entry{
		Name:        "statetable-renew",
		Config:      fmt.Sprintf("%d keys, 16 shards, byte-key renew", n),
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: uint64(res.AllocsPerOp()),
		BytesPerOp:  uint64(res.AllocedBytesPerOp()),
	}
}

// variantFanout runs the live fan-out once per protocol variant: the same
// node/receiver topology, switched between the five paper protocols by
// the variant layer. The rows record what each variant's lifetime
// mechanism costs on the wire (refresh or probe traffic per key) and
// prove every variant holds the full key population.
func variantFanout(short bool) []entry {
	base := sim.FanoutConfig{
		Peers:           16,
		Keys:            1024,
		RefreshInterval: 100 * time.Millisecond,
		Duration:        time.Second,
	}
	if short {
		base.Peers, base.Keys = 4, 256
	}
	out := make([]entry, 0, 5)
	for _, prof := range variant.All() {
		cfg := base
		cfg.Protocol = prof.Proto
		// Each variant run carries its own registry so the row can be
		// stamped with the install→ack distribution its acks produced.
		cfg.Metrics = telemetry.NewRegistry()
		start := time.Now()
		res, err := sim.RunLiveFanout(cfg)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(start)
		vsec := cfg.Duration.Seconds()
		e := entry{
			Name:               "variant-fanout",
			Protocol:           prof.Name,
			Config:             fmt.Sprintf("%s: %d peers x %d keys, R=%s", prof.Name, cfg.Peers, cfg.Keys, cfg.RefreshInterval),
			NsPerOp:            float64(wall.Nanoseconds()),
			VirtualPerWallSec:  vsec / wall.Seconds(),
			HeldKeys:           res.Held,
			DatagramsPerKeySec: float64(res.Datagrams) / float64(cfg.Peers*cfg.Keys) / vsec,
		}
		if res.KeysRenewed > 0 {
			e.KeysRefreshedPerSec = float64(res.KeysRenewed) / wall.Seconds()
		}
		e.InstallAckP50Ns, e.InstallAckP99Ns = installAckQuantiles(cfg.Metrics)
		out = append(out, e)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
