package main

import (
	"fmt"
	"net"
	"testing"
	"time"

	"softstate/internal/node"
	"softstate/internal/signal"
	"softstate/internal/transport"
)

// realwireBackends are the kernel-socket transports the real-wire rows
// compare: plain UDP (one datagram per syscall), batched mmsg UDP, and
// the framed TCP stream.
var realwireBackends = []string{"udp", "udp-batch", "tcp"}

// realwire runs the live fan-out over real kernel sockets on loopback —
// no virtual clock, no in-memory pipes — once per transport backend. One
// node maintains Peers×Keys keys (the full-size run crosses 1M) across
// Peers receiver endpoints; after convergence the row times a full
// summary sweep of the whole key population and records the transport's
// datagrams-per-syscall, the number the batching tentpole exists to move.
func realwire(short bool) []entry {
	peers, keys := 64, 16384
	if short {
		peers, keys = 8, 256
	}
	out := make([]entry, 0, len(realwireBackends))
	for _, kind := range realwireBackends {
		out = append(out, realwireRow(kind, peers, keys))
	}
	return out
}

// realwireListen opens one receiver-side conn of the given backend.
func realwireListen(kind string) (transport.Conn, error) {
	switch kind {
	case "udp":
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		// Same receive buffer as the batch backend's default, so the rows
		// differ only in syscall batching, not in drop rate under the
		// install burst.
		pc.(*net.UDPConn).SetReadBuffer(4 << 20)
		return transport.Wrap(pc), nil
	case "udp-batch":
		return transport.ListenUDPBatch("127.0.0.1:0", transport.Options{})
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		return transport.NewStream("", ln, transport.Options{}), nil
	}
	return nil, fmt.Errorf("unknown backend %q", kind)
}

func realwireRow(kind string, peers, keys int) entry {
	// Long protocol timers: the row measures transport cost, so state must
	// neither expire nor be re-swept by the background sweeper mid-run.
	cfg := signal.Config{
		Protocol:        signal.SSER,
		RefreshInterval: time.Hour,
		Timeout:         time.Hour,
		SummaryRefresh:  true,
		SummaryMaxKeys:  512,
	}

	rcvs := make([]*signal.Receiver, peers)
	addrs := make([]net.Addr, peers)
	for i := range rcvs {
		c, err := realwireListen(kind)
		if err != nil {
			fatal(err)
		}
		if kind == "tcp" {
			addrs[i], err = net.ResolveTCPAddr("tcp", c.LocalAddr().String())
		} else {
			addrs[i], err = net.ResolveUDPAddr("udp", c.LocalAddr().String())
		}
		if err != nil {
			fatal(err)
		}
		if rcvs[i], err = signal.NewReceiver(c, cfg); err != nil {
			fatal(err)
		}
	}

	var nodeConn transport.Conn
	var err error
	switch kind {
	case "udp":
		pc, perr := net.ListenPacket("udp", "127.0.0.1:0")
		if perr != nil {
			fatal(perr)
		}
		pc.(*net.UDPConn).SetReadBuffer(4 << 20)
		nodeConn = transport.Wrap(pc)
	case "udp-batch":
		nodeConn, err = transport.ListenUDPBatch("127.0.0.1:0", transport.Options{})
	case "tcp":
		nodeConn = transport.NewStream("bench-node", nil, transport.Options{})
	}
	if err != nil {
		fatal(err)
	}
	n, err := node.New(nodeConn, cfg)
	if err != nil {
		fatal(err)
	}

	total := peers * keys
	for _, a := range addrs {
		for i := 0; i < keys; i++ {
			if err := n.Install(a, fmt.Sprintf("flow/%07d", i), []byte("v")); err != nil {
				fatal(err)
			}
		}
	}
	// Converge: loopback UDP can overflow a receive buffer during the
	// install burst; each sweep NACKs the missing keys and the node
	// re-triggers them.
	held := 0
	for deadline := time.Now().Add(5 * time.Minute); ; {
		held = 0
		for _, r := range rcvs {
			held += r.Len()
		}
		if held == total {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("realwire %s: %d/%d keys held after 5m", kind, held, total))
		}
		n.SummarySweep()
		time.Sleep(50 * time.Millisecond)
	}

	// Datagrams-per-syscall over the measured sweep phase only: the
	// cumulative ratio would be swamped by the one-datagram-per-key
	// install burst, which is trigger traffic, not the steady-state
	// refresh path the batching exists for.
	st := nodeConn.Stats()
	calls0, dgrams0 := st.WriteCalls.Value(), st.WriteDatagrams.Value()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.SummarySweep() // renews every key at every peer
		}
	})
	dps := 0.0
	if dc := st.WriteCalls.Value() - calls0; dc > 0 {
		dps = float64(st.WriteDatagrams.Value()-dgrams0) / float64(dc)
	}

	n.Close()
	for _, r := range rcvs {
		r.Close()
	}

	secPerOp := float64(res.NsPerOp()) / float64(time.Second)
	return entry{
		Name:                "realwire-fanout",
		Transport:           kind,
		Config:              fmt.Sprintf("%s: %d peers x %d keys over loopback kernel sockets", kind, peers, keys),
		NsPerOp:             float64(res.NsPerOp()),
		AllocsPerOp:         uint64(res.AllocsPerOp()),
		BytesPerOp:          uint64(res.AllocedBytesPerOp()),
		KeysRefreshedPerSec: float64(total) / secPerOp,
		HeldKeys:            held,
		DatagramsPerSyscall: dps,
	}
}
