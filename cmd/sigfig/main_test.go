package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"softstate/internal/exp"
)

func mustResolve(t *testing.T, ids ...string) []exp.Experiment {
	t.Helper()
	targets, err := resolve(ids)
	if err != nil {
		t.Fatal(err)
	}
	return targets
}

// genInto regenerates the given experiments into a fresh temp dir and
// returns it.
func genInto(t *testing.T, o exp.Options, version string, ids ...string) string {
	t.Helper()
	dir := t.TempDir()
	if err := generate(mustResolve(t, ids...), o, dir, version, nil); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestResolve(t *testing.T) {
	all, err := resolve([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(exp.All()) {
		t.Fatalf("resolve(all) returned %d of %d experiments", len(all), len(exp.All()))
	}
	two := mustResolve(t, "fig5a", "table1")
	if len(two) != 2 || two[0].ID != "fig5a" || two[1].ID != "table1" {
		t.Fatalf("explicit resolve wrong: %+v", two)
	}
	if _, err := resolve([]string{"fig9000"}); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

// TestGenerateDeterministic: two same-seed generations are byte-identical,
// and both file forms exist for every target.
func TestGenerateDeterministic(t *testing.T) {
	o := exp.Options{Quick: true, Seed: 42}
	a := genInto(t, o, "v-test", "fig5a", "table1")
	b := genInto(t, o, "v-test", "fig5a", "table1")
	for _, name := range []string{"fig5a.json", "fig5a.md", "table1.json", "table1.md"} {
		ba, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("%s differs between same-seed generations", name)
		}
	}
}

// TestDiffDirsCleanAndVersionIgnored: a regenerated set diffs clean
// against itself even when the recorded version differs.
func TestDiffDirsClean(t *testing.T) {
	o := exp.Options{Quick: true, Seed: 42}
	old := genInto(t, o, "v-old", "fig5a", "table1")
	new_ := genInto(t, o, "v-new", "fig5a", "table1")
	msgs, err := diffDirs(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("clean regeneration reported violations: %v", msgs)
	}
}

// TestDiffDirsDetectsDrift: perturbing one numeric cell beyond the
// default tolerance produces a violation naming the cell.
func TestDiffDirsDetectsDrift(t *testing.T) {
	o := exp.Options{Quick: true, Seed: 42}
	old := genInto(t, o, "v", "fig5a")
	drifted := genInto(t, o, "v", "fig5a")
	path := filepath.Join(drifted, "fig5a.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Swap one numeric cell for a clearly different value.
	mutated := bytes.Replace(raw, []byte(`"0.`), []byte(`"9.`), 1)
	if bytes.Equal(mutated, raw) {
		t.Fatal("mutation did not apply — fixture assumption broken")
	}
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	msgs, err := diffDirs(old, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 {
		t.Fatal("drifted artifact diffed clean")
	}
	if !strings.Contains(strings.Join(msgs, "\n"), "fig5a") {
		t.Fatalf("violation does not name the artifact: %v", msgs)
	}
}

// TestDiffDirsMissingAndExtra: artifacts on only one side are reported.
func TestDiffDirsMissingAndExtra(t *testing.T) {
	o := exp.Options{Quick: true, Seed: 42}
	old := genInto(t, o, "v", "fig5a", "table1")
	new_ := genInto(t, o, "v", "fig5a", "fig5b")
	msgs, err := diffDirs(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "table1: missing") {
		t.Fatalf("missing artifact not reported: %v", msgs)
	}
	if !strings.Contains(joined, "fig5b: not in baseline") {
		t.Fatalf("extra artifact not reported: %v", msgs)
	}
}

func TestDiffDirsEmptyDir(t *testing.T) {
	if _, err := diffDirs(t.TempDir(), t.TempDir()); err == nil {
		t.Fatal("empty artifact dirs accepted")
	}
}
