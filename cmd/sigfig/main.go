// Command sigfig regenerates the paper's figures and tables as versioned,
// machine-diffable artifacts, and diffs two artifact directories under
// the per-artifact tolerance and ordering policy — the repo's standing
// figure-regression gate.
//
// Usage:
//
//	sigfig list                     # show every experiment
//	sigfig all [flags]              # regenerate every artifact into -out
//	sigfig live5 ext-loss50 [flags] # regenerate specific artifacts
//	sigfig diff old/ new/           # compare two artifact directories
//
// Flags (generation):
//
//	-quick          quick sweep resolution (the committed figures/ baseline)
//	-seed N         simulation seed (default 42, the baseline's)
//	-out DIR        output directory (default figures)
//	-version V      version string recorded in artifacts (default: git
//	                describe; metadata only — diff ignores it)
//
// Every artifact is written twice: <id>.json (schema-versioned, byte-
// deterministic per seed) and <id>.md (rendered tables). Generation also
// evaluates each artifact's embedded ordering checks and fails if the
// paper's qualitative claims do not hold in the fresh data.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"softstate/internal/exp"
	"softstate/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, rest := os.Args[1], os.Args[2:]
	switch cmd {
	case "list":
		listExperiments()
	case "diff":
		if len(rest) != 2 {
			fmt.Fprintln(os.Stderr, "usage: sigfig diff <old-dir> <new-dir>")
			os.Exit(2)
		}
		msgs, err := diffDirs(rest[0], rest[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigfig: %v\n", err)
			os.Exit(1)
		}
		if len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, m)
			}
			fmt.Fprintf(os.Stderr, "sigfig: %d violation(s)\n", len(msgs))
			os.Exit(1)
		}
		fmt.Println("sigfig: artifacts match within tolerance")
	case "help", "-h", "--help":
		usage()
	default:
		// Everything else is generation: "all" or explicit experiment IDs,
		// then flags.
		ids := []string{cmd}
		for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			ids = append(ids, rest[0])
			rest = rest[1:]
		}
		fs := flag.NewFlagSet("sigfig", flag.ExitOnError)
		quick := fs.Bool("quick", false, "quick sweep resolution")
		seed := fs.Uint64("seed", 42, "simulation seed")
		out := fs.String("out", "figures", "output directory")
		version := fs.String("version", "", "version string recorded in artifacts (default: git describe)")
		fs.Parse(rest)

		targets, err := resolve(ids)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigfig: %v\n", err)
			os.Exit(2)
		}
		v := *version
		if v == "" {
			v = gitDescribe()
		}
		if err := generate(targets, exp.Options{Quick: *quick, Seed: *seed}, *out, v, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sigfig: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sigfig list
  sigfig all [-quick] [-seed N] [-out dir] [-version v]
  sigfig <id> [<id>...] [flags]
  sigfig diff <old-dir> <new-dir>`)
}

func listExperiments() {
	for _, e := range exp.All() {
		kind := "analytic"
		switch {
		case e.Artifact != nil:
			kind = "live+analytic"
		case e.Simulated:
			kind = "simulated"
		}
		fmt.Printf("%-22s %-14s %s\n", e.ID, kind, e.Title)
	}
}

// resolve maps CLI experiment selectors to experiments.
func resolve(ids []string) ([]exp.Experiment, error) {
	if len(ids) == 1 && ids[0] == "all" {
		return exp.All(), nil
	}
	out := make([]exp.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := exp.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (try: sigfig list)", id)
		}
		out = append(out, e)
	}
	return out, nil
}

// gitDescribe returns the repo's current version string, or "unversioned"
// outside a git checkout. It is artifact metadata only — diff ignores it.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--tags", "--always", "--dirty").Output()
	if err != nil {
		return "unversioned"
	}
	return strings.TrimSpace(string(out))
}

// generate builds and writes every target's artifact pair (<id>.json,
// <id>.md) into outDir, evaluating each artifact's embedded ordering
// checks along the way. It fails on the first build, check, or write
// error.
func generate(targets []exp.Experiment, o exp.Options, outDir, version string, log *os.File) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, e := range targets {
		a, err := exp.BuildArtifact(e, o)
		if err != nil {
			return err
		}
		a.Version = version
		if msgs := report.CheckOrderings(a); len(msgs) > 0 {
			return fmt.Errorf("%s: generated data violates its own ordering checks:\n  %s",
				e.ID, strings.Join(msgs, "\n  "))
		}
		var buf bytes.Buffer
		if err := report.EncodeArtifact(&buf, a); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, e.ID+".json"), buf.Bytes(), 0o644); err != nil {
			return err
		}
		buf.Reset()
		if err := report.WriteArtifactMarkdown(&buf, a); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, e.ID+".md"), buf.Bytes(), 0o644); err != nil {
			return err
		}
		if log != nil {
			frames := make([]string, 0, len(a.Frames))
			for _, f := range a.Frames {
				frames = append(frames, f.Name)
			}
			fmt.Fprintf(log, "%-22s %s [%s]\n", e.ID, a.Mode, strings.Join(frames, "+"))
		}
	}
	return nil
}

// diffDirs compares every artifact in oldDir against its regenerated
// counterpart in newDir under the new artifact's embedded checks, and
// reports artifacts present on only one side. The returned messages are
// the violations; an error means the comparison itself could not run.
func diffDirs(oldDir, newDir string) ([]string, error) {
	oldSet, err := artifactSet(oldDir)
	if err != nil {
		return nil, err
	}
	newSet, err := artifactSet(newDir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(oldSet))
	for name := range oldSet {
		names = append(names, name)
	}
	sort.Strings(names)
	var msgs []string
	for _, name := range names {
		na, ok := newSet[name]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("%s: missing from %s", name, newDir))
			continue
		}
		msgs = append(msgs, report.DiffArtifacts(oldSet[name], na)...)
	}
	extras := make([]string, 0)
	for name := range newSet {
		if _, ok := oldSet[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		msgs = append(msgs, fmt.Sprintf("%s: not in baseline %s — regenerate the baseline to adopt it", name, oldDir))
	}
	return msgs, nil
}

// artifactSet loads every *.json artifact in dir, keyed by artifact ID.
func artifactSet(dir string) (map[string]*report.Artifact, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no artifacts (*.json) in %s", dir)
	}
	out := make(map[string]*report.Artifact, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		a, derr := report.DecodeArtifact(f)
		f.Close()
		if derr != nil {
			return nil, fmt.Errorf("%s: %w", p, derr)
		}
		out[a.ID] = a
	}
	return out, nil
}
