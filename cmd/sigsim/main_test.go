package main

import (
	"testing"

	"softstate/internal/core"
)

func TestParseProtocols(t *testing.T) {
	ps, err := parseProtocols("ss+er", false)
	if err != nil || len(ps) != 1 || ps[0] != core.SSER {
		t.Fatalf("ps=%v err=%v", ps, err)
	}
	ps, err = parseProtocols("all", false)
	if err != nil || len(ps) != 5 {
		t.Fatalf("all: ps=%v err=%v", ps, err)
	}
	ps, err = parseProtocols("all", true)
	if err != nil || len(ps) != 3 {
		t.Fatalf("multihop all: ps=%v err=%v", ps, err)
	}
	if _, err := parseProtocols("SS+ER", true); err == nil {
		t.Fatal("SS+ER should be rejected for multihop")
	}
	if _, err := parseProtocols("bogus", false); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestParseTimers(t *testing.T) {
	cases := map[string]core.TimerKind{
		"deterministic": core.Deterministic,
		"det":           core.Deterministic,
		"exponential":   core.Exponential,
		"EXP":           core.Exponential,
		"jitter":        core.UniformJitter,
		"uniform":       core.UniformJitter,
	}
	for in, want := range cases {
		got, err := parseTimers(in)
		if err != nil || got != want {
			t.Fatalf("parseTimers(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseTimers("gaussian"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}
