// Command sigsim runs ad-hoc signaling simulations and analytic solutions
// at user-chosen parameter points — the interactive counterpart to
// sigbench's fixed paper sweeps.
//
// Examples:
//
//	sigsim -proto SS+ER -lifetime 600 -loss 0.05
//	sigsim -proto HS -analytic-only
//	sigsim -multihop -proto SS+RT -hops 12 -horizon 20000
//	sigsim -live -proto all -loss 0.15
//	sigsim -chaos -proto all -seed 42 -episodes 4
//
// The -live mode leaves the abstract state machines behind entirely: it
// runs the requested protocols on the real wire stack (signal.Sender /
// signal.Receiver over a lossy pipe, retransmission backoff, hard-state
// orphan probes) under a virtual clock — the paper's five-way comparison
// on production code, deterministic per seed.
//
// The -chaos mode expands -seed into a failure campaign (crash/restart
// episodes, partition-and-heal windows, loss bursts) and replays it
// against the live multi-hop runtime, printing the generated timeline,
// time-to-reconverge, inconsistency under partition, and any invariant
// violations. The seed is the whole reproduction recipe: re-running with
// the same seed replays the campaign byte-identically.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"softstate/internal/chaos"
	"softstate/internal/core"
	"softstate/internal/sim"
	"softstate/internal/variant"
)

func main() {
	var (
		protoName = flag.String("proto", "SS", "protocol: SS, SS+ER, SS+RT, SS+RTR, HS, or all")
		lifetime  = flag.Float64("lifetime", 1800, "mean session length 1/μr in seconds (single-hop)")
		update    = flag.Float64("update-interval", 20, "mean update interval 1/λu in seconds")
		loss      = flag.Float64("loss", 0.02, "per-message loss probability pl")
		delay     = flag.Float64("delay", 0.030, "one-way channel delay D in seconds")
		refresh   = flag.Float64("refresh", 5, "refresh timer R in seconds")
		timeout   = flag.Float64("timeout", 0, "state-timeout timer T in seconds (0 = 3R)")
		retx      = flag.Float64("retransmit", 0, "retransmission timer Γ in seconds (0 = 4D)")
		sessions  = flag.Int("sessions", 2000, "sessions to simulate")
		seed      = flag.Uint64("seed", 1, "random seed")
		timers    = flag.String("timers", "deterministic", "timer distribution: deterministic, exponential, jitter")
		anaOnly   = flag.Bool("analytic-only", false, "skip simulation")
		multihop  = flag.Bool("multihop", false, "run the multi-hop study instead of single-hop")
		live      = flag.Bool("live", false, "run the real wire stack in virtual time instead of the abstract simulator")
		chaosRun  = flag.Bool("chaos", false, "expand -seed into a failure campaign and replay it on the live stack")
		episodes  = flag.Int("episodes", 4, "failure episodes to generate (chaos)")
		coldRst   = flag.Bool("cold-restarts", false, "admit receiver/relay cold-restart episodes (chaos; hard state cannot recover from these)")
		liveKeys  = flag.Int("live-keys", 24, "concurrently signaled keys (live)")
		liveDur   = flag.Duration("live-duration", 60*time.Second, "virtual experiment length (live)")
		hops      = flag.Int("hops", 20, "path length N (multi-hop)")
		horizon   = flag.Float64("horizon", 50000, "simulated seconds per run (multi-hop)")
		runs      = flag.Int("runs", 3, "independent replications (multi-hop)")
		alpha     = flag.Float64("alpha", 10, "inconsistency cost weight α for C = α·I + Λ")
	)
	flag.Parse()

	if *chaosRun {
		if err := runChaos(*protoName, *seed, *episodes, *loss, *coldRst); err != nil {
			fmt.Fprintln(os.Stderr, "sigsim:", err)
			os.Exit(1)
		}
		return
	}

	if *live {
		if err := runLive(*protoName, *liveKeys, *loss, *delay, *hops, *liveDur, *seed, *multihop); err != nil {
			fmt.Fprintln(os.Stderr, "sigsim:", err)
			os.Exit(1)
		}
		return
	}

	protos, err := parseProtocols(*protoName, *multihop)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigsim:", err)
		os.Exit(2)
	}
	kind, err := parseTimers(*timers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigsim:", err)
		os.Exit(2)
	}

	if *multihop {
		mp := core.DefaultMultihopParams().WithHops(*hops).WithRefresh(*refresh)
		if *timeout > 0 {
			mp.Timeout = *timeout
		}
		mp.Loss = *loss
		mp.Delay = *delay
		if *retx > 0 {
			mp.Retransmit = *retx
		} else {
			mp.Retransmit = 4 * *delay
		}
		mp.UpdateRate = 1 / *update
		runMultihop(protos, mp, *anaOnly, *horizon, *runs, *seed, kind)
		return
	}

	p := core.DefaultParams().WithSessionLength(*lifetime).WithRefresh(*refresh).WithDelay(*delay)
	p.UpdateRate = 1 / *update
	p.Loss = *loss
	if *timeout > 0 {
		p.Timeout = *timeout
	}
	if *retx > 0 {
		p.Retransmit = *retx
	}
	runSinglehop(protos, p, *anaOnly, *sessions, *seed, kind, *alpha)
}

// runChaos expands the seed into a fault timeline and replays it against
// every requested protocol on the live multi-hop runtime. The printed
// schedule plus the seed fully reproduce the run.
func runChaos(protoName string, seed uint64, episodes int, loss float64, coldRestarts bool) error {
	var profiles []variant.Profile
	if strings.EqualFold(protoName, "all") {
		profiles = variant.All()
	} else {
		prof, err := variant.Parse(protoName)
		if err != nil {
			return err
		}
		profiles = []variant.Profile{prof}
	}
	opts := chaos.CampaignOpts{Seed: seed, Episodes: episodes, Loss: loss, ColdRestarts: coldRestarts}
	cfg := opts.Config()
	fmt.Printf("chaos campaign: seed %d, %d episodes, baseline loss %.3g, duration %v\n",
		seed, episodes, loss, cfg.Duration)
	for _, line := range chaos.Describe(cfg) {
		fmt.Println(" ", line)
	}
	fmt.Println()
	fmt.Printf("%-8s %10s %13s %12s %12s %12s\n",
		"proto", "ttr", "partition I", "audits", "violations", "reconverged")
	for _, prof := range profiles {
		opts.Protocol = prof.Proto
		res, err := chaos.Run(opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %10v %13.4f %12d %12d %12v\n",
			prof.Name, res.TimeToReconverge.Round(time.Millisecond),
			res.InconsistencyUnderPartition, res.Audits, len(res.Violations), res.Reconverged)
		for _, v := range res.Violations {
			fmt.Println("    violation:", v)
		}
	}
	return nil
}

// runLive executes the requested protocols on the real runtime in virtual
// time: R = 100 ms with the paper's R:T:Γ ratios, churned keys, and the
// external false-removal signal, single hop unless -multihop gives a
// chain length. Timers are scaled (not the wall-clock paper values) so a
// minute of virtual time spans many session lifetimes.
func runLive(protoName string, keys int, loss, delay float64, hops int, dur time.Duration, seed uint64, multihop bool) error {
	base := sim.LiveConfig{
		Hops:            1,
		Keys:            keys,
		Loss:            loss,
		Delay:           time.Duration(delay * float64(time.Second)),
		RefreshInterval: 100 * time.Millisecond,
		MeanLifetime:    3 * time.Second,
		MeanGap:         time.Second,
		MeanFalseSignal: 2 * time.Second,
		Duration:        dur,
		Seed:            seed,
	}
	if multihop {
		base.Hops = hops
	}
	var profiles []variant.Profile
	if strings.EqualFold(protoName, "all") {
		profiles = variant.All()
	} else {
		prof, err := variant.Parse(protoName)
		if err != nil {
			return err
		}
		profiles = []variant.Profile{prof}
	}
	fmt.Printf("live stack (virtual time): %d keys, %d hop(s), pl=%.3g, D=%v, R=%v, %v per run\n\n",
		base.Keys, base.Hops, base.Loss, base.Delay, base.RefreshInterval, base.Duration)
	fmt.Printf("%-8s %10s %14s %12s   %s\n", "proto", "live I", "dgrams/key/s", "machinery", "mechanisms")
	for _, prof := range profiles {
		cfg := base
		cfg.Protocol = prof.Proto
		r, err := sim.RunLive(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %10.5f %14.2f %12d   %s\n",
			prof.Name, r.Inconsistency, r.Rate, r.Machinery(), prof.Mechanisms())
	}
	return nil
}

func parseProtocols(name string, multihop bool) ([]core.Protocol, error) {
	all := core.Protocols()
	if multihop {
		all = core.MultihopProtocols()
	}
	if strings.EqualFold(name, "all") {
		return all, nil
	}
	for _, p := range all {
		if strings.EqualFold(p.String(), name) {
			return []core.Protocol{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown protocol %q (multihop=%v)", name, multihop)
}

func parseTimers(name string) (core.TimerKind, error) {
	switch strings.ToLower(name) {
	case "deterministic", "det":
		return core.Deterministic, nil
	case "exponential", "exp":
		return core.Exponential, nil
	case "jitter", "uniform":
		return core.UniformJitter, nil
	default:
		return 0, fmt.Errorf("unknown timer distribution %q", name)
	}
}

func runSinglehop(protos []core.Protocol, p core.Params, anaOnly bool, sessions int, seed uint64, kind core.TimerKind, alpha float64) {
	fmt.Printf("single-hop: 1/μr=%.4gs 1/λu=%.4gs pl=%.3g D=%.3gs R=%.3gs T=%.3gs Γ=%.3gs\n\n",
		1/p.RemovalRate, 1/p.UpdateRate, p.Loss, p.Delay, p.Refresh, p.Timeout, p.Retransmit)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "proto", "analytic I", "analytic Λ", "cost C", "lifetime")
	for _, proto := range protos {
		m, err := core.Analyze(proto, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8v %12.5f %12.4f %12.4f %12.1f\n",
			proto, m.Inconsistency, m.NormalizedRate, core.IntegratedCost(alpha, m), m.Lifetime)
	}
	if anaOnly {
		return
	}
	fmt.Printf("\nsimulation (%d sessions, %v timers):\n", sessions, kind)
	fmt.Printf("%-8s %22s %22s\n", "proto", "sim I (±95%)", "sim Λ (±95%)")
	for _, proto := range protos {
		res, err := core.Simulate(core.SimConfig{
			Protocol: proto, Params: p, Sessions: sessions, Seed: seed, Timers: kind,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8v %22s %22s\n", proto, res.Inconsistency, res.NormalizedRate)
	}
}

func runMultihop(protos []core.Protocol, mp core.MultihopParams, anaOnly bool, horizon float64, runs int, seed uint64, kind core.TimerKind) {
	fmt.Printf("multi-hop: N=%d 1/λu=%.4gs pl=%.3g D=%.3gs R=%.3gs T=%.3gs Γ=%.3gs\n\n",
		mp.Hops, 1/mp.UpdateRate, mp.Loss, mp.Delay, mp.Refresh, mp.Timeout, mp.Retransmit)
	fmt.Printf("%-8s %12s %14s\n", "proto", "analytic I", "analytic rate")
	for _, proto := range protos {
		m, err := core.AnalyzeMultihop(proto, mp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8v %12.5f %14.4f\n", proto, m.Inconsistency, m.MsgRate)
	}
	if anaOnly {
		return
	}
	fmt.Printf("\nsimulation (%d runs × %.0fs, %v timers):\n", runs, horizon, kind)
	fmt.Printf("%-8s %22s %22s\n", "proto", "sim I (±95%)", "sim rate (±95%)")
	for _, proto := range protos {
		res, err := core.SimulateMultihop(core.MultihopSimConfig{
			Protocol: proto, Params: mp, Horizon: horizon, Runs: runs, Seed: seed, Timers: kind,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8v %22s %22s\n", proto, res.Inconsistency, res.MsgRate)
	}
}
