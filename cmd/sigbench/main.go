// Command sigbench regenerates the tables and figures of Ji, Ge, Kurose,
// and Towsley, "A Comparison of Hard-state and Soft-state Signaling
// Protocols" (SIGCOMM 2003), plus this repository's ablation studies.
//
// Usage:
//
//	sigbench -list                 # show every experiment
//	sigbench -run fig4a            # one experiment, aligned table
//	sigbench -run all -format tsv  # everything, tab-separated
//	sigbench -run fig11a -full     # full resolution (slower simulations)
package main

import (
	"flag"
	"fmt"
	"os"

	"softstate/internal/exp"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		run    = flag.String("run", "", "experiment ID to run, or \"all\"")
		format = flag.String("format", "pretty", "output format: pretty or tsv")
		full   = flag.Bool("full", false, "full sweep resolution and simulation depth (slower)")
		seed   = flag.Uint64("seed", 1, "random seed for simulation-backed experiments")
	)
	flag.Parse()

	if *list || *run == "" {
		listExperiments()
		if *run == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -run <id> to execute an experiment")
			os.Exit(2)
		}
		return
	}

	opts := exp.Options{Quick: !*full, Seed: *seed}
	var targets []exp.Experiment
	if *run == "all" {
		targets = exp.All()
	} else {
		e, ok := exp.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "sigbench: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		targets = []exp.Experiment{e}
	}

	for i, e := range targets {
		if i > 0 {
			fmt.Println()
		}
		table, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "tsv":
			fmt.Printf("## %s — %s\n", e.ID, e.Title)
			if err := table.WriteTSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "sigbench: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Printf("%s — %s\n%s\n", e.ID, e.Title, e.Description)
			if err := table.WritePretty(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "sigbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func listExperiments() {
	fmt.Println("Available experiments (paper artifact → generator):")
	for _, e := range exp.All() {
		tag := " "
		if e.Simulated {
			tag = "*"
		}
		fmt.Printf("  %-22s %s %s\n", e.ID, tag, e.Title)
	}
	fmt.Println("\n  * = runs the event simulator (slower; -full raises fidelity)")
}
