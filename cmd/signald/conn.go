package main

import (
	"fmt"
	"net"

	"softstate/internal/telemetry"
	"softstate/internal/transport"
)

// Transport selection, shared by every live mode. tKind is -transport,
// tOpts carries -sockets (and the batch/buffer defaults), bindAddr is
// -bind for sockets that used to grab ":0" on every interface.
var (
	tKind    string
	tOpts    transport.Options
	bindAddr string
)

// listenConn opens a serving-side conn on addr for the selected
// transport: plain UDP, batched mmsg UDP (optionally SO_REUSEPORT
// sharded), or a TCP listener speaking the framed stream protocol.
func listenConn(addr string) (transport.Conn, error) {
	switch tKind {
	case "udp":
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, err
		}
		return transport.Wrap(pc), nil
	case "udp-batch":
		return transport.ListenUDPBatch(addr, tOpts)
	case "tcp":
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return transport.NewStream("", ln, tOpts), nil
	}
	return nil, fmt.Errorf("unknown -transport %q (want udp, udp-batch, or tcp)", tKind)
}

// clientConn opens an ephemeral-port conn for the sending side (send,
// fan-out, relay downstream). These sockets historically bound ":0" —
// every interface — even for loopback experiments; unless -bind names an
// address explicitly they now stay on loopback.
func clientConn() (transport.Conn, error) {
	bind := bindAddr
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	switch tKind {
	case "udp":
		pc, err := net.ListenPacket("udp", bind)
		if err != nil {
			return nil, err
		}
		return transport.Wrap(pc), nil
	case "udp-batch":
		return transport.ListenUDPBatch(bind, tOpts)
	case "tcp":
		// Dial-only stream; connections are dialed per peer on first send
		// and announce a fresh random identity.
		return transport.NewStream("", nil, tOpts), nil
	}
	return nil, fmt.Errorf("unknown -transport %q (want udp, udp-batch, or tcp)", tKind)
}

// resolvePeer resolves a remote address for the selected transport.
func resolvePeer(addr string) (net.Addr, error) {
	if tKind == "tcp" {
		return net.ResolveTCPAddr("tcp", addr)
	}
	return net.ResolveUDPAddr("udp", addr)
}

// registerConn exposes the conn's syscall/datagram counters on the
// metrics registry (no-op without -metrics-addr). lane distinguishes the
// relay's two sockets.
func registerConn(c transport.Conn, reg *telemetry.Registry, lane string) {
	c.Stats().Register(reg, telemetry.Labels{"transport": tKind, "lane": lane})
}
