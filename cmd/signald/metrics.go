package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	sig "softstate/internal/signal"
	"softstate/internal/telemetry"
	"softstate/internal/variant"
)

// telem is signald's live-introspection state: the shared metrics
// registry, the HTTP listener serving it (Prometheus text, expvar JSON,
// pprof), the paper-metric collector, and the SIGUSR1 snapshot dumper.
// A nil *telem (metrics disabled) makes every method a no-op, so mode
// functions call it unconditionally.
type telem struct {
	reg     *telemetry.Registry
	ln      net.Listener
	srv     *http.Server
	sent    atomic.Pointer[func() int64] // endpoint datagram-total supplier
	pm      *telemetry.PaperMetrics
	auditor atomic.Pointer[telemetry.Auditor] // set once the endpoint exists
}

// startTelemetry opens the metrics listener and the SIGUSR1 dump handler.
// tracer (nil when -trace-sample is off) backs /debug/trace.json; the
// convergence auditor behind /debug/census arrives late via setAuditor,
// once the mode function has an endpoint to audit.
func startTelemetry(addr string, tracer *telemetry.Tracer) (*telem, error) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterProcessMetrics(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	t := &telem{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.Handle("/", telemetry.NewMux(reg))
	mux.HandleFunc("/debug/invariants", debugInvariantsHandler)
	if tracer != nil {
		mux.HandleFunc("/debug/trace.json", telemetry.TraceHandler(tracer))
	}
	mux.HandleFunc("/debug/census", func(w http.ResponseWriter, r *http.Request) {
		aud := t.auditor.Load()
		if aud == nil {
			http.Error(w, "census not enabled (-census on an auditing endpoint)",
				http.StatusServiceUnavailable)
			return
		}
		aud.ServeHTTP(w, r)
	})
	t.srv = &http.Server{Handler: mux}
	go t.srv.Serve(ln)

	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			fmt.Fprintln(os.Stderr, "signald: SIGUSR1 metrics snapshot")
			t.dump(os.Stderr)
		}
	}()
	fmt.Printf("signald: metrics on http://%v/metrics (JSON at /metrics.json, profiles at /debug/pprof/)\n",
		ln.Addr())
	return t, nil
}

// registry returns the shared registry (nil when telemetry is off), the
// value mode functions put in sig.Config.Metrics.
func (t *telem) registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// paper creates and registers the paper-metric collector and returns the
// event hook feeding it (nil when telemetry is off). ackExpected should
// be true for sender-side endpoints of reliable-trigger variants, where
// a key is provably inconsistent from each trigger until its ack.
func (t *telem) paper(prof variant.Profile, role string, ackExpected bool) func(sig.Event) {
	if t == nil {
		return nil
	}
	t.pm = telemetry.NewPaperMetrics(telemetry.PaperConfig{
		AckExpected: ackExpected,
		Sent: func() int64 {
			if f := t.sent.Load(); f != nil {
				return (*f)()
			}
			return 0
		},
	})
	t.pm.Register(t.reg, telemetry.Labels{"protocol": prof.Name, "role": role})
	return paperHook(t.pm)
}

// setSent installs the endpoint's cumulative datagram supplier once the
// endpoint exists (the collector is registered before it, so the supplier
// arrives late through an atomic pointer).
func (t *telem) setSent(fn func() int64) {
	if t != nil && fn != nil {
		t.sent.Store(&fn)
	}
}

// setAuditor publishes the convergence auditor behind /debug/census,
// registers its gauges, and starts a background census every interval so
// softstate_divergent_keys moves without anyone scraping /debug/census.
// The runner lives for the process — signald endpoints do too.
func (t *telem) setAuditor(aud *telemetry.Auditor, role string, interval time.Duration) {
	if t == nil || aud == nil {
		return
	}
	aud.Register(t.reg, telemetry.Labels{"role": role})
	t.auditor.Store(aud)
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for range tick.C {
			aud.Run()
		}
	}()
}

// dump writes a Prometheus-text snapshot — the SIGUSR1 and shutdown view.
func (t *telem) dump(w io.Writer) {
	if t == nil {
		return
	}
	t.reg.WritePrometheus(w)
}

// close stops the listener and prints the final snapshot to stderr.
func (t *telem) close() {
	if t == nil {
		return
	}
	t.srv.Close()
	fmt.Fprintln(os.Stderr, "signald: final metrics snapshot")
	t.dump(os.Stderr)
}

// paperHook adapts the signal event stream to the paper-metric
// collector's key-lifecycle view. Keys are qualified by peer address so a
// fan-out node's identical keys at different receivers do not alias.
func paperHook(pm *telemetry.PaperMetrics) func(sig.Event) {
	return func(ev sig.Event) {
		key := ev.Key
		if ev.Peer != nil {
			key = ev.Peer.String() + "\x00" + key
		}
		switch ev.Kind {
		case sig.EventInstalled, sig.EventUpdated, sig.EventRepaired:
			pm.OnInstall(key)
		case sig.EventAcked:
			pm.OnAck(key)
		case sig.EventRemoved, sig.EventGaveUp:
			pm.OnRemove(key)
		case sig.EventExpired, sig.EventOrphaned, sig.EventFalseRemoval:
			pm.OnLost(key)
		}
	}
}
