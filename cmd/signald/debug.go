package main

// The -debug surface: a live invariant audit over the running endpoint.
// Each mode installs its endpoint's CheckInvariants closure; SIGUSR2 runs
// an audit and prints the verdict to stderr, and — when -metrics-addr is
// also set — GET /debug/invariants serves the same audit over HTTP (one
// violation per line, 500 on violations so probes can alert on status
// alone). The checks are the same ones the chaos engine runs after every
// fuzzed mutation, so a production endpoint can be audited with the
// exact predicate the adversarial tests enforce.

import (
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// debugOn records whether -debug was given; without it installAudit is a
// no-op and /debug/invariants reports the surface as uninstalled.
var debugOn bool

// audit holds the active endpoint's invariant checker; nil until a mode
// installs one (only under -debug).
var audit atomic.Pointer[func() []string]

// installAudit publishes the endpoint's invariant checker. Mode functions
// call it once the endpoint exists; combined endpoints (relay, demo) pass
// a closure concatenating each component's violations.
func installAudit(fn func() []string) {
	if debugOn && fn != nil {
		audit.Store(&fn)
	}
}

// runAudit executes the installed checker. ok is false when no endpoint
// has published one yet.
func runAudit() (violations []string, ok bool) {
	f := audit.Load()
	if f == nil {
		return nil, false
	}
	return (*f)(), true
}

// startDebug arms the SIGUSR2 audit trigger.
func startDebug() {
	usr2 := make(chan os.Signal, 1)
	signal.Notify(usr2, syscall.SIGUSR2)
	go func() {
		for range usr2 {
			v, ok := runAudit()
			switch {
			case !ok:
				fmt.Fprintln(os.Stderr, "signald: invariant audit: no endpoint installed yet")
			case len(v) == 0:
				fmt.Fprintln(os.Stderr, "signald: invariant audit: all invariants hold")
			default:
				fmt.Fprintf(os.Stderr, "signald: invariant audit: %d violation(s)\n", len(v))
				for _, s := range v {
					fmt.Fprintln(os.Stderr, "  ", s)
				}
			}
		}
	}()
}

// debugInvariantsHandler serves the audit at /debug/invariants on the
// metrics mux.
func debugInvariantsHandler(w http.ResponseWriter, _ *http.Request) {
	v, ok := runAudit()
	switch {
	case !ok:
		http.Error(w, "no invariant surface installed (run signald with -debug)", http.StatusServiceUnavailable)
	case len(v) == 0:
		fmt.Fprintln(w, "ok: all invariants hold")
	default:
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "%d violation(s)\n", len(v))
		for _, s := range v {
			fmt.Fprintln(w, s)
		}
	}
}

// auditPart names one component's checker inside a combined audit.
type auditPart struct {
	name  string
	check func() []string
}

// combineAudits merges several endpoints' checkers into one, prefixing
// each violation with its component name. Parts run in the given order so
// audit output is stable.
func combineAudits(parts ...auditPart) func() []string {
	return func() []string {
		var out []string
		for _, p := range parts {
			for _, v := range p.check() {
				out = append(out, p.name+": "+v)
			}
		}
		return out
	}
}
