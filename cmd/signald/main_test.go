package main

import (
	"testing"

	"softstate/internal/singlehop"
)

func TestParseProto(t *testing.T) {
	cases := map[string]singlehop.Protocol{
		"SS":     singlehop.SS,
		"ss+er":  singlehop.SSER,
		"Ss+Rt":  singlehop.SSRT,
		"SS+RTR": singlehop.SSRTR,
		"hs":     singlehop.HS,
	}
	for in, want := range cases {
		got, err := parseProto(in)
		if err != nil || got != want {
			t.Fatalf("parseProto(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseProto("tcp"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
