package main

import (
	"testing"

	"softstate/internal/singlehop"
)

func TestParseProto(t *testing.T) {
	cases := map[string]singlehop.Protocol{
		"SS":     singlehop.SS,
		"ss+er":  singlehop.SSER,
		"Ss+Rt":  singlehop.SSRT,
		"SS+RTR": singlehop.SSRTR,
		"hs":     singlehop.HS,
	}
	for in, want := range cases {
		got, err := parseProto(in)
		if err != nil || got != want {
			t.Fatalf("parseProto(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseProto("tcp"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" 10.0.0.1:7413, 10.0.0.2:7413 ,,10.0.0.3:7413")
	want := []string{"10.0.0.1:7413", "10.0.0.2:7413", "10.0.0.3:7413"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitPeers = %v, want %v", got, want)
		}
	}
	if out := splitPeers(""); out != nil {
		t.Fatalf("splitPeers(\"\") = %v, want nil", out)
	}
}
