package main

import (
	"testing"

	"softstate/internal/singlehop"
	"softstate/internal/variant"
)

// TestProtoFlagSpellings: both -proto and -protocol resolve through
// variant.Parse, so the paper spellings keep working.
func TestProtoFlagSpellings(t *testing.T) {
	cases := map[string]singlehop.Protocol{
		"SS":     singlehop.SS,
		"ss+er":  singlehop.SSER,
		"Ss+Rt":  singlehop.SSRT,
		"SS+RTR": singlehop.SSRTR,
		"hs":     singlehop.HS,
	}
	for in, want := range cases {
		prof, err := variant.Parse(in)
		if err != nil || prof.Proto != want {
			t.Fatalf("variant.Parse(%q) = %v, %v", in, prof.Proto, err)
		}
	}
	if _, err := variant.Parse("tcp"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" 10.0.0.1:7413, 10.0.0.2:7413 ,,10.0.0.3:7413")
	want := []string{"10.0.0.1:7413", "10.0.0.2:7413", "10.0.0.3:7413"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitPeers = %v, want %v", got, want)
		}
	}
	if out := splitPeers(""); out != nil {
		t.Fatalf("splitPeers(\"\") = %v, want nil", out)
	}
}
