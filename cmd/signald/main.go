// Command signald runs live soft/hard-state signaling endpoints over UDP
// using the internal/signal runtime — the deployable counterpart to the
// models and simulators.
//
// Modes:
//
//	signald -mode serve -addr 127.0.0.1:7413 -proto SS+ER
//	    Run a receiver (state holder); prints state changes as they happen.
//
//	signald -mode send -peer 127.0.0.1:7413 -proto SS+ER -key flow/1 -value 10Mbps -hold 30s
//	    Install a key at the receiver, hold it (refreshing), then remove it
//	    and exit.
//
//	signald -mode demo -proto HS -loss 0.3
//	    Self-contained two-endpoint demonstration over an in-memory lossy
//	    channel: install, update, false removal + repair, explicit removal.
//
//	signald -mode relay -addr 127.0.0.1:7414 -peer 127.0.0.1:7413
//	    Run a relay hop: state installed at -addr is re-signaled to the
//	    next hop at -peer, so chains of relays run the protocols live
//	    across N hops (start the serve endpoint last in the chain).
//
//	signald -mode send -peers 10.0.0.1:7413,10.0.0.2:7413 -count 100
//	    Multi-peer fan-out: one node maintains -count keys at every peer
//	    over a single socket (per-destination sessions, one summary
//	    stream per peer with -summary-refresh).
//
// The protocol is selected with -protocol (any spelling variant.Parse
// accepts, e.g. -protocol ss+rtr) or the legacy -proto; both resolve to
// a variant.Profile, the one knob that switches every mechanism (refresh,
// explicit removal, reliable trigger/removal, hard-state orphan probes).
//
// Scaling knobs: -shards sets the state-table shard count (one lock and
// one timing-wheel goroutine per shard), -summary-refresh batches up to
// -summary-keys key renewals into each refresh datagram (RFC 2961-style
// refresh reduction), -coalesce-acks batches a receiver's replies into
// one ack-batch datagram per peer per flush tick, and -peer-idle bounds
// the fan-out peer table by evicting idle empty sessions.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"softstate/internal/lossy"
	"softstate/internal/node"
	sig "softstate/internal/signal"
	"softstate/internal/telemetry"
	"softstate/internal/transport"
	"softstate/internal/variant"
)

func main() {
	var (
		mode     = flag.String("mode", "demo", "serve, send, relay, or demo")
		proto    = flag.String("proto", "SS+ER", "protocol: SS, SS+ER, SS+RT, SS+RTR, HS")
		protocol = flag.String("protocol", "",
			"protocol variant (ss, ss+er, ss+rt, ss+rtr, hs; any spelling variant.Parse accepts); overrides -proto")
		addr     = flag.String("addr", "127.0.0.1:7413", "listen address (serve, relay)")
		peer     = flag.String("peer", "127.0.0.1:7413", "receiver address (send); next hop (relay)")
		peers    = flag.String("peers", "", "comma-separated receiver addresses for multi-peer fan-out (send)")
		key      = flag.String("key", "demo/key", "state key (send)")
		value    = flag.String("value", "hello", "state value (send)")
		count    = flag.Int("count", 1, "keys installed per peer in fan-out mode (send with -peers)")
		hold     = flag.Duration("hold", 20*time.Second, "how long to maintain state (send)")
		refresh  = flag.Duration("refresh", 2*time.Second, "refresh interval R")
		loss     = flag.Float64("loss", 0.2, "channel loss probability (demo)")
		shards   = flag.Int("shards", 0, "state-table shard count (power of two; 0 = default)")
		peerIdle = flag.Duration("peer-idle", 0,
			"evict sender sessions idle (no keys, no traffic) this long; 0 keeps them forever")
		summary = flag.Bool("summary-refresh", false,
			"batch refreshes into summary datagrams (RFC 2961-style refresh reduction)")
		summaryKeys = flag.Int("summary-keys", 64, "max keys per summary datagram")
		coalesce    = flag.Bool("coalesce-acks", false,
			"batch receiver replies into one ack-batch datagram per peer per flush tick")
		transp = flag.String("transport", "udp",
			"wire transport: udp (one datagram per syscall), udp-batch (sendmmsg/recvmmsg batching), "+
				"or tcp (framed stream with reconnect-and-resume, for reliable variants)")
		sockets = flag.Int("sockets", 1,
			"SO_REUSEPORT socket count for -transport udp-batch (each is an independent read lane)")
		bind = flag.String("bind", "",
			"local bind address for ephemeral sockets (send, fan-out, relay downstream); "+
				"default loopback 127.0.0.1:0")
		metricsAddr = flag.String("metrics-addr", "",
			"serve live metrics on this address: /metrics (Prometheus text, including the paper's "+
				"inconsistency and datagrams/key/s gauges), /metrics.json, /debug/vars, /debug/pprof/; "+
				"SIGUSR1 dumps a snapshot to stderr")
		census = flag.Bool("census", false,
			"maintain incremental state digests and answer wire digest queries; sender-side endpoints "+
				"(send, relay, fan-out) also audit their peers' held state and serve the live report at "+
				"/debug/census on -metrics-addr (softstate_divergent_keys gauges the latest census)")
		traceSample = flag.Int("trace-sample", 0,
			"sample 1-in-N keys for hop-propagation tracing (1 = every key, 0 = off); traced datagrams "+
				"carry origin+hop stamps feeding the hop/e2e latency histograms, and the retained event "+
				"ring is served at /debug/trace.json on -metrics-addr")
		debugFlag = flag.Bool("debug", false,
			"expose the live invariant audit: SIGUSR2 prints a CheckInvariants verdict to stderr, "+
				"and with -metrics-addr the same audit is served at /debug/invariants")
	)
	flag.Parse()

	name := *proto
	if *protocol != "" {
		name = *protocol
	}
	prof, err := variant.Parse(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "signald:", err)
		os.Exit(2)
	}
	tKind = *transp
	tOpts = transport.Options{Sockets: *sockets}
	bindAddr = *bind
	cfg := sig.Config{
		Protocol:        prof.Proto,
		Variant:         &prof,
		RefreshInterval: *refresh,
		Timeout:         3 * *refresh,
		Retransmit:      200 * time.Millisecond,
		Shards:          *shards,
		SummaryRefresh:  *summary,
		SummaryMaxKeys:  *summaryKeys,
		CoalesceAcks:    *coalesce,
		PeerIdleTimeout: *peerIdle,
		Census:          *census,
	}
	if *traceSample > 0 {
		cfg.Trace = telemetry.NewTracer(telemetry.TracerConfig{
			SampleEvery: uint32(*traceSample),
		})
	}
	if *debugFlag {
		debugOn = true
		startDebug()
	}
	if *metricsAddr != "" {
		t, terr := startTelemetry(*metricsAddr, cfg.Trace)
		if terr != nil {
			fmt.Fprintln(os.Stderr, "signald:", terr)
			os.Exit(1)
		}
		tele = t
		cfg.Metrics = t.registry()
		defer t.close()
	}

	switch *mode {
	case "serve":
		if err := serve(*addr, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "signald:", err)
			os.Exit(1)
		}
	case "send":
		if *peers != "" {
			err = fanout(splitPeers(*peers), cfg, *key, []byte(*value), *count, *hold)
		} else {
			err = send(*peer, cfg, *key, []byte(*value), *hold)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "signald:", err)
			os.Exit(1)
		}
	case "relay":
		if err := relay(*addr, *peer, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "signald:", err)
			os.Exit(1)
		}
	case "demo":
		if err := demo(cfg, *loss); err != nil {
			fmt.Fprintln(os.Stderr, "signald:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "signald: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// tele is the process's live-introspection state; nil (all methods
// no-ops) unless -metrics-addr was given.
var tele *telem

// splitPeers parses the -peers list.
func splitPeers(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func serve(addr string, cfg sig.Config) error {
	conn, err := listenConn(addr)
	if err != nil {
		return err
	}
	cfg.OnEvent = tele.paper(*cfg.Variant, "receiver", false)
	registerConn(conn, cfg.Metrics, "serve")
	rcv, err := sig.NewReceiver(conn, cfg)
	if err != nil {
		return err
	}
	defer rcv.Close()
	installAudit(rcv.CheckInvariants)
	tele.setSent(func() int64 { return rcv.SentDatagrams() + rcv.ReceivedDatagrams() })
	fmt.Printf("signald: %v receiver on %v (T=%v); Ctrl-C to stop\n",
		cfg.Protocol, conn.LocalAddr(), cfg.Timeout)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case ev, ok := <-rcv.Events():
			if !ok {
				return nil
			}
			fmt.Printf("%s  %-14s key=%q value=%q (%d keys held)\n",
				time.Now().Format("15:04:05.000"), ev.Kind, ev.Key, ev.Value, rcv.Len())
		case <-stop:
			fmt.Println("\nsignald: shutting down")
			return nil
		}
	}
}

func send(peerAddr string, cfg sig.Config, key string, value []byte, hold time.Duration) error {
	raddr, err := resolvePeer(peerAddr)
	if err != nil {
		return err
	}
	conn, err := clientConn()
	if err != nil {
		return err
	}
	cfg.OnEvent = tele.paper(*cfg.Variant, "sender", cfg.Variant.ReliableTrigger)
	registerConn(conn, cfg.Metrics, "send")
	snd, err := sig.NewSender(conn, raddr, cfg)
	if err != nil {
		return err
	}
	defer snd.Close()
	installAudit(snd.CheckInvariants)
	tele.setSent(func() int64 { return snd.SentDatagrams() + snd.ReceivedDatagrams() })
	if cfg.Census {
		aud := telemetry.NewAuditor()
		aud.AddLink(telemetry.CensusLink{
			Name:   raddr.String(),
			Intent: snd.CensusSource("local/intent"),
			Held:   snd.CensusPeer("peer/held", 2*time.Second),
		})
		tele.setAuditor(aud, "sender", cfg.RefreshInterval)
	}
	go logEvents("sender", snd.Events())

	fmt.Printf("signald: installing %q at %v via %v, holding %v\n", key, raddr, cfg.Protocol, hold)
	if err := snd.Install(key, value); err != nil {
		return err
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-time.After(hold):
	case <-stop:
		fmt.Println("\nsignald: interrupted")
	}
	if cfg.Protocol.ExplicitRemoval() {
		fmt.Println("signald: removing state explicitly")
	} else {
		fmt.Println("signald: departing silently (receiver must time the state out)")
	}
	if err := snd.Remove(key); err != nil {
		return err
	}
	time.Sleep(500 * time.Millisecond) // let reliable removal finish
	st := snd.Stats()
	fmt.Printf("signald: sent %d messages (%v)\n", st.TotalSent(), st.Sent)
	return nil
}

// relay runs one interior hop: upstream state held at addr is re-signaled
// to the next hop at nextHop.
func relay(addr, nextHop string, cfg sig.Config) error {
	next, err := resolvePeer(nextHop)
	if err != nil {
		return err
	}
	up, err := listenConn(addr)
	if err != nil {
		return err
	}
	// The downstream socket used to bind ":0" — every interface — for what
	// is almost always a loopback or single-host experiment; clientConn
	// keeps it on loopback unless -bind says otherwise.
	down, err := clientConn()
	if err != nil {
		up.Close()
		return err
	}
	cfg.OnEvent = tele.paper(*cfg.Variant, "relay", false)
	registerConn(up, cfg.Metrics, "upstream")
	registerConn(down, cfg.Metrics, "downstream")
	rly, err := node.NewRelay(up, down, next, cfg)
	if err != nil {
		up.Close()
		down.Close()
		return err
	}
	defer rly.Close()
	installAudit(rly.CheckInvariants)
	tele.setSent(func() int64 {
		rc := rly.Receiver()
		dn := rly.Downstream()
		return rc.SentDatagrams() + rc.ReceivedDatagrams() +
			dn.SentDatagrams() + dn.ReceivedDatagrams()
	})
	if cfg.Census {
		aud := telemetry.NewAuditor()
		aud.AddLink(telemetry.CensusLink{
			Name:   next.String(),
			Intent: rly.Downstream().CensusSource("downstream/intent"),
			Held:   rly.Downstream().CensusPeer("next/held", next, 2*time.Second),
		})
		tele.setAuditor(aud, "relay", cfg.RefreshInterval)
	}
	fmt.Printf("signald: %v relay on %v → %v (T=%v); Ctrl-C to stop\n",
		cfg.Protocol, up.LocalAddr(), next, cfg.Timeout)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case ev, ok := <-rly.Receiver().Events():
			if !ok {
				return nil
			}
			fmt.Printf("%s  %-14s key=%q value=%q (%d keys held, %d relayed)\n",
				time.Now().Format("15:04:05.000"), ev.Kind, ev.Key, ev.Value,
				rly.Receiver().Len(), rly.Relayed())
		case <-stop:
			fmt.Println("\nsignald: relay shutting down")
			return nil
		}
	}
}

// fanout installs count keys at every peer from one node socket.
func fanout(peerList []string, cfg sig.Config, key string, value []byte, count int, hold time.Duration) error {
	addrs := make([]net.Addr, len(peerList))
	for i, p := range peerList {
		a, err := resolvePeer(p)
		if err != nil {
			return err
		}
		addrs[i] = a
	}
	// Fan-out's socket also used to bind ":0" on every interface.
	conn, err := clientConn()
	if err != nil {
		return err
	}
	cfg.OnEvent = tele.paper(*cfg.Variant, "node", cfg.Variant.ReliableTrigger)
	registerConn(conn, cfg.Metrics, "fanout")
	n, err := node.New(conn, cfg)
	if err != nil {
		conn.Close()
		return err
	}
	defer n.Close()
	installAudit(n.CheckInvariants)
	tele.setSent(func() int64 { return n.SentDatagrams() + n.ReceivedDatagrams() })
	go logEvents("node", n.Events())

	fmt.Printf("signald: installing %d keys at each of %d peers via %v, holding %v\n",
		count, len(addrs), cfg.Protocol, hold)
	for _, a := range addrs {
		for i := 0; i < count; i++ {
			k := key
			if count > 1 {
				k = fmt.Sprintf("%s/%d", key, i)
			}
			if err := n.Install(a, k, value); err != nil {
				return err
			}
		}
	}
	if cfg.Census {
		// One audited link per peer: the installs above created the
		// sessions, so each peer's intent slice is addressable now.
		aud := telemetry.NewAuditor()
		for _, a := range addrs {
			if s := n.Peer(a); s != nil {
				aud.AddLink(telemetry.CensusLink{
					Name:   a.String(),
					Intent: s.CensusSource("local/intent/" + a.String()),
					Held:   n.CensusPeer("held/"+a.String(), a, 2*time.Second),
				})
			}
		}
		tele.setAuditor(aud, "node", cfg.RefreshInterval)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-time.After(hold):
	case <-stop:
		fmt.Println("\nsignald: interrupted")
	}
	for _, a := range addrs {
		for i := 0; i < count; i++ {
			k := key
			if count > 1 {
				k = fmt.Sprintf("%s/%d", key, i)
			}
			if err := n.Remove(a, k); err != nil {
				return err
			}
		}
	}
	time.Sleep(500 * time.Millisecond) // let reliable removal finish
	st := n.Stats()
	fmt.Printf("signald: sent %d datagrams across %d peers (%v)\n",
		st.TotalSent(), len(addrs), st.Sent)
	return nil
}

func demo(cfg sig.Config, loss float64) error {
	// Faster timers make the demo snappy.
	cfg.RefreshInterval = 300 * time.Millisecond
	cfg.Timeout = 900 * time.Millisecond
	cfg.Retransmit = 60 * time.Millisecond

	a, b, err := lossy.Pipe(lossy.Config{Loss: loss, Delay: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	scfg := cfg
	scfg.OnEvent = tele.paper(*cfg.Variant, "sender", cfg.Variant.ReliableTrigger)
	snd, err := sig.NewSender(a, b.LocalAddr(), scfg)
	if err != nil {
		return err
	}
	rcv, err := sig.NewReceiver(b, cfg)
	if err != nil {
		return err
	}
	defer rcv.Close()
	defer snd.Close()
	installAudit(combineAudits(
		auditPart{"sender", snd.CheckInvariants},
		auditPart{"receiver", rcv.CheckInvariants},
	))
	tele.setSent(func() int64 { return snd.SentDatagrams() + snd.ReceivedDatagrams() })
	go logEvents("sender  ", snd.Events())
	go logEvents("receiver", rcv.Events())

	fmt.Printf("demo: %v over a %.0f%%-loss channel\n", cfg.Protocol, loss*100)
	step := func(what string, f func() error) error {
		fmt.Printf("\n--- %s\n", what)
		if err := f(); err != nil {
			return err
		}
		time.Sleep(600 * time.Millisecond)
		return nil
	}
	if err := step("install flow/1 = 10Mbps", func() error {
		return snd.Install("flow/1", []byte("10Mbps"))
	}); err != nil {
		return err
	}
	if err := step("update flow/1 = 20Mbps", func() error {
		return snd.Update("flow/1", []byte("20Mbps"))
	}); err != nil {
		return err
	}
	if err := step("inject false removal (external signal misfires)", func() error {
		rcv.InjectFalseRemoval("flow/1")
		return nil
	}); err != nil {
		return err
	}
	if err := step("remove flow/1", func() error {
		return snd.Remove("flow/1")
	}); err != nil {
		return err
	}
	time.Sleep(2 * cfg.Timeout) // let silent departures expire
	ss, rs := snd.Stats(), rcv.Stats()
	fmt.Printf("\ndemo: sender sent %v; receiver sent %v; receiver holds %d keys\n",
		ss.Sent, rs.Sent, rcv.Len())
	return nil
}

func logEvents(who string, ch <-chan sig.Event) {
	for ev := range ch {
		fmt.Printf("%s  [%s] %-14s key=%q value=%q\n",
			time.Now().Format("15:04:05.000"), who, ev.Kind, ev.Key, ev.Value)
	}
}
