// Package rand provides deterministic, splittable random streams and the
// distributions used by the signaling simulator: uniform, Bernoulli,
// exponential, and a generic timer-distribution abstraction that lets the
// simulator switch between the analytic model's exponential timers and the
// deterministic timers real protocols deploy (paper §III-A.3, Figs 11–12).
//
// The generator is SplitMix64 (Steele et al.), chosen over math/rand for
// two properties the experiment harness needs: cheap value-type streams
// that can be stored inside simulation entities, and stable cross-version
// output so recorded experiment series remain reproducible.
package rand

import "math"

// Source is a deterministic 64-bit random stream. The zero value is a
// valid stream seeded with 0; prefer NewSource for explicit seeding.
type Source struct {
	state uint64
}

// NewSource returns a stream seeded with seed.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent stream from s. The derivation consumes one
// value from s, so sibling splits differ. Used to give each simulated
// entity (channel, timer, workload) its own stream so that changing one
// entity's draw count does not perturb the others.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits (SplitMix64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p. Probabilities outside [0,1]
// are clamped, which lets callers pass computed loss rates directly.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// A non-positive mean returns 0, which callers use to encode "immediate".
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := s.Float64()
	// 1-u is in (0,1], keeping Log finite.
	return -mean * math.Log(1-u)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + (hi-lo)*s.Float64()
}
