package rand

import "fmt"

// TimerKind selects the distribution family for protocol timers and the
// channel delay in the simulator.
type TimerKind int

const (
	// Exponential timers match the analytic model's assumptions.
	Exponential TimerKind = iota
	// Deterministic timers fire exactly at their mean, as deployed
	// protocols do; used to reproduce the paper's Figs 11–12.
	Deterministic
	// UniformJitter fires uniformly in [0.5·mean, 1.5·mean]; used by the
	// timer-distribution ablation, which extends the paper's comparison.
	UniformJitter
)

// String implements fmt.Stringer.
func (k TimerKind) String() string {
	switch k {
	case Exponential:
		return "exponential"
	case Deterministic:
		return "deterministic"
	case UniformJitter:
		return "uniform-jitter"
	default:
		return fmt.Sprintf("TimerKind(%d)", int(k))
	}
}

// Timer draws durations with the given mean from the selected family.
type Timer struct {
	Kind TimerKind
	Mean float64
}

// Sample draws one duration using stream s. Deterministic timers ignore s.
func (t Timer) Sample(s *Source) float64 {
	switch t.Kind {
	case Deterministic:
		return t.Mean
	case UniformJitter:
		if t.Mean <= 0 {
			return 0
		}
		return s.Uniform(0.5*t.Mean, 1.5*t.Mean)
	default:
		return s.Exp(t.Mean)
	}
}
