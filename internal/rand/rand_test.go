package rand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := NewSource(99), NewSource(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := NewSource(1), NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	s := NewSource(7)
	c1 := s.Split()
	c2 := s.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSource(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSource(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	s := NewSource(2)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := NewSource(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / n
	if math.Abs(f-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", f)
	}
}

func TestExpMoments(t *testing.T) {
	s := NewSource(17)
	const n = 200000
	const mean = 2.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("Exp mean = %v, want %v", m, mean)
	}
	if math.Abs(variance-mean*mean) > 0.3 {
		t.Fatalf("Exp variance = %v, want %v", variance, mean*mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := NewSource(1)
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(23)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v", v)
		}
	}
	// Swapped bounds are tolerated.
	v := s.Uniform(5, 2)
	if v < 2 || v >= 5 {
		t.Fatalf("Uniform(5,2) = %v", v)
	}
}

func TestTimerDeterministic(t *testing.T) {
	s := NewSource(1)
	tm := Timer{Kind: Deterministic, Mean: 3.5}
	for i := 0; i < 10; i++ {
		if got := tm.Sample(s); got != 3.5 {
			t.Fatalf("deterministic timer = %v, want 3.5", got)
		}
	}
}

func TestTimerExponentialMean(t *testing.T) {
	s := NewSource(29)
	tm := Timer{Kind: Exponential, Mean: 4}
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += tm.Sample(s)
	}
	if m := sum / n; math.Abs(m-4) > 0.1 {
		t.Fatalf("exponential timer mean = %v, want 4", m)
	}
}

func TestTimerUniformJitterRange(t *testing.T) {
	s := NewSource(31)
	tm := Timer{Kind: UniformJitter, Mean: 10}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := tm.Sample(s)
		if v < 5 || v >= 15 {
			t.Fatalf("jitter timer = %v out of [5,15)", v)
		}
		sum += v
	}
	if m := sum / n; math.Abs(m-10) > 0.1 {
		t.Fatalf("jitter timer mean = %v, want 10", m)
	}
	if z := (Timer{Kind: UniformJitter, Mean: 0}).Sample(s); z != 0 {
		t.Fatalf("zero-mean jitter timer = %v, want 0", z)
	}
}

func TestTimerKindString(t *testing.T) {
	cases := map[TimerKind]string{
		Exponential:   "exponential",
		Deterministic: "deterministic",
		UniformJitter: "uniform-jitter",
		TimerKind(42): "TimerKind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestFloat64PropertyNoRepeats(t *testing.T) {
	// Weak property: consecutive values from one stream are rarely equal.
	prop := func(seed uint64) bool {
		s := NewSource(seed)
		prev := s.Float64()
		for i := 0; i < 50; i++ {
			v := s.Float64()
			if v == prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
