package chaos

import (
	"fmt"
	"time"

	"softstate/internal/rand"
	"softstate/internal/signal"
	"softstate/internal/sim"
)

// Seeded failure campaigns: one integer expands deterministically into a
// full fault timeline — crash/restart episodes, partition-and-heal
// windows, relay flaps, asymmetric loss bursts — which sim.RunCampaign
// then executes on the real multi-hop runtime in virtual time. The seed
// is the whole reproduction recipe: same seed, byte-identical schedule,
// byte-identical CampaignResult.

// CampaignOpts parameterizes one seeded campaign.
type CampaignOpts struct {
	// Protocol selects the variant under test.
	Protocol signal.Protocol
	// Seed expands into the fault schedule and drives link impairments.
	Seed uint64
	// Episodes is the number of generated failure episodes (default 4).
	Episodes int
	// Nodes is the chain length (default 3).
	Nodes int
	// Loss is the baseline per-link loss under which the faults land.
	Loss float64
	// ColdRestarts admits receiver and relay cold-restart episodes. Off by
	// default: hard state cannot resynchronize a cold downstream hop — no
	// refresh ever re-announces the lost state, and the probes guarding it
	// eventually orphan everything downstream (the paper's robustness
	// contrast) — so schedules meant to compare reconvergence times across
	// all five variants must not include them. Origin restarts stay in the
	// default set: the restarted application re-installs its own state,
	// which every variant can propagate.
	ColdRestarts bool
}

// Campaign episode layout. Episodes start after the workload converges
// and are spaced widely enough that time-to-reconverge is attributable to
// one episode; partition windows stay inside the hard-state orphan
// horizon (MaxProbeMisses × ProbeInterval = 3 × 300 ms at the campaign
// defaults) so a cut never masquerades as sender death.
const (
	episodeStart   = 800 * time.Millisecond
	episodeSpacing = 1200 * time.Millisecond
	episodeJitter  = 200 * time.Millisecond
	partitionHold  = 600 * time.Millisecond
	lossBurstHold  = 400 * time.Millisecond
	campaignTail   = 3 * time.Second
)

func (o *CampaignOpts) applyDefaults() {
	if o.Episodes <= 0 {
		o.Episodes = 4
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Seed == 0 {
		o.Seed = 0xc405
	}
}

// Config expands the options into the concrete sim.CampaignConfig — the
// deterministic seed-to-schedule step, exposed so callers can inspect or
// log the timeline a seed produced.
func (o CampaignOpts) Config() sim.CampaignConfig {
	o.applyDefaults()
	rng := rand.NewSource(o.Seed ^ 0x5eedca3a)
	var schedule []sim.Fault
	at := episodeStart
	last := at
	for i := 0; i < o.Episodes; i++ {
		at += time.Duration(rng.Uniform(0, float64(episodeJitter)))
		kinds := 3
		if o.ColdRestarts {
			kinds = 5
		}
		switch rng.Intn(kinds) {
		case 0:
			schedule = append(schedule, sim.Fault{At: at, Kind: sim.FaultSenderRestart})
		case 1:
			cut := rng.Intn(o.Nodes - 1)
			schedule = append(schedule,
				sim.Fault{At: at, Kind: sim.FaultPartition, Hop: cut},
				sim.Fault{At: at + partitionHold, Kind: sim.FaultHeal})
		case 2:
			link := rng.Intn(o.Nodes - 1)
			kind := sim.FaultForwardLoss
			if rng.Bernoulli(0.5) {
				kind = sim.FaultReverseLoss
			}
			p := rng.Uniform(0.3, 0.7)
			schedule = append(schedule,
				sim.Fault{At: at, Kind: kind, Hop: link, Loss: p},
				sim.Fault{At: at + lossBurstHold, Kind: kind, Hop: link, Loss: -1})
		case 3:
			schedule = append(schedule, sim.Fault{At: at, Kind: sim.FaultReceiverRestart})
		case 4:
			if o.Nodes < 3 {
				// A two-node chain has no relay to flap; cold-restart the
				// receiver instead so the episode count stays seed-stable.
				schedule = append(schedule, sim.Fault{At: at, Kind: sim.FaultReceiverRestart})
				break
			}
			schedule = append(schedule, sim.Fault{At: at, Kind: sim.FaultRelayRestart, Hop: rng.Intn(o.Nodes - 2)})
		}
		last = at
		at += episodeSpacing
	}
	return sim.CampaignConfig{
		Protocol: o.Protocol,
		Nodes:    o.Nodes,
		Loss:     o.Loss,
		Seed:     o.Seed,
		Schedule: schedule,
		Duration: last + campaignTail,
	}
}

// Run expands the seed and executes the campaign.
func Run(o CampaignOpts) (sim.CampaignResult, error) {
	return sim.RunCampaign(o.Config())
}

// Describe renders a generated schedule for logs and replay records.
func Describe(cfg sim.CampaignConfig) []string {
	out := make([]string, 0, len(cfg.Schedule))
	for _, f := range cfg.Schedule {
		out = append(out, fmt.Sprintf("t=%v %s hop=%d loss=%g", f.At, f.Kind, f.Hop, f.Loss))
	}
	return out
}
