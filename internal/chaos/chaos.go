// Package chaos is the adversarial scenario engine: it turns arbitrary
// byte strings into stateful adversarial sequences against a live
// sender/receiver pair (the sequence fuzzer below), and single seeds into
// full failure campaigns against a multi-hop chain (campaign.go). Both
// halves run the real runtime under the virtual clock, so every
// adversarial interleaving is deterministic and byte-replayable from its
// input alone — a fuzzer crash reproduces from its corpus entry, a
// campaign anomaly from its seed.
//
// The sequence fuzzer decodes fuzz bytes into a mutation grammar (two
// bytes per op: opcode, argument) mixing legitimate API calls with the
// man-in-the-middle mutations a hostile or broken network can produce:
//
//	advance    run the virtual clock 1–32 ms
//	install    install a pool key with a fresh generation value
//	update     update a pool key
//	remove     withdraw a pool key
//	duplicate  re-deliver the most recent captured datagram verbatim
//	replay     re-deliver an arbitrary historical datagram (stale seq)
//	hold       buffer outbound datagrams instead of forwarding them
//	release    flush the buffer in reverse order (reordering)
//	splice     deliver a second session's datagram as if the first sent it
//	truncate   deliver a prefix of the last datagram (framing damage)
//	typeflip   re-encode the last key/value datagram with trigger↔refresh
//	           swapped (re-checksummed, so it decodes cleanly)
//	garbage    deliver bytes that never were a datagram
//
// After every op the engine audits the structural invariants both
// endpoints export (signal.CheckInvariants), that no source's accepted
// sequence number moved backward, and that the receiver's lifecycle
// events balance its table occupancy. After the trace it releases any
// held traffic, quiesces well past every repair horizon, and captures the
// surviving state for differential comparison across variants.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/signal"
	"softstate/internal/variant"
	"softstate/internal/wire"
)

// OpKind is one opcode of the mutation grammar.
type OpKind byte

// The mutation grammar. Order is part of the corpus format: appending new
// ops keeps old corpus entries meaningful, reordering does not.
const (
	OpAdvance OpKind = iota
	OpInstall
	OpUpdate
	OpRemove
	OpDuplicate
	OpReplay
	OpHold
	OpRelease
	OpSplice
	OpTruncate
	OpTypeFlip
	OpGarbage
	numOps
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	names := [...]string{"advance", "install", "update", "remove", "duplicate",
		"replay", "hold", "release", "splice", "truncate", "typeflip", "garbage"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("OpKind(%d)", byte(k))
}

// Op is one decoded step: an opcode and its argument byte (key selector,
// history index, clock step — opcode-dependent).
type Op struct {
	Kind OpKind
	Arg  byte
}

// Engine limits: the trace length bound keeps one fuzz execution cheap,
// the hold budget models a bounded reordering buffer (an unbounded one
// could silence probe replies long enough to orphan healthy hard state,
// which is a network that died, not one that reorders), and the history
// cap bounds replay memory.
const (
	maxOps         = 96
	poolSize       = 8
	holdBudget     = 60 * time.Millisecond
	maxHistory     = 512
	chaosRefresh   = 30 * time.Millisecond
	chaosTimeout   = 90 * time.Millisecond
	chaosRetx      = 10 * time.Millisecond
	chaosLinkDelay = time.Millisecond
)

// Protocols lists the five variants in canonical order; a fuzz input's
// first byte mod 5 selects one.
var Protocols = []signal.Protocol{signal.SS, signal.SSER, signal.SSRT, signal.SSRTR, signal.HS}

// DecodeTrace maps fuzz bytes onto the op grammar: two bytes per op,
// opcode mod numOps, capped at maxOps. Every byte string is a valid
// trace, so the fuzzer wastes no executions on parse rejects.
func DecodeTrace(data []byte) []Op {
	ops := make([]Op, 0, len(data)/2)
	for i := 0; i+1 < len(data) && len(ops) < maxOps; i += 2 {
		ops = append(ops, Op{Kind: OpKind(data[i] % byte(numOps)), Arg: data[i+1]})
	}
	return ops
}

// PoolKey names workload key i of the fuzzer's fixed key pool.
func PoolKey(i int) string { return fmt.Sprintf("k%d", i%poolSize) }

// frame is one captured outbound datagram with enough decoded metadata to
// target mutations.
type frame struct {
	raw []byte
	typ wire.Type
	key string
}

// captureConn wraps a sender's packet conn: every outbound datagram is
// recorded (the replay/mutation history) and, while holding, buffered
// instead of forwarded. Mutations inject through the inner conn directly,
// so injected traffic is not re-captured.
type captureConn struct {
	net.PacketConn

	mu      sync.Mutex
	frames  []frame
	held    [][]byte
	holdDst net.Addr
	holding bool
}

func (c *captureConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	cp := append([]byte(nil), p...)
	f := frame{raw: cp}
	var m wire.Message
	if err := m.UnmarshalBinary(cp); err == nil {
		f.typ, f.key = m.Type, m.Key
	}
	c.mu.Lock()
	if len(c.frames) < maxHistory {
		c.frames = append(c.frames, f)
	}
	if c.holding {
		c.held = append(c.held, cp)
		c.holdDst = addr
		c.mu.Unlock()
		return len(p), nil
	}
	c.mu.Unlock()
	return c.PacketConn.WriteTo(p, addr)
}

// hold starts buffering; release forwards the buffer in reverse order —
// a full reordering of everything the sender said in the window.
func (c *captureConn) hold() {
	c.mu.Lock()
	c.holding = true
	c.mu.Unlock()
}

func (c *captureConn) release() {
	c.mu.Lock()
	held, dst := c.held, c.holdDst
	c.held, c.holding = nil, false
	c.mu.Unlock()
	for i := len(held) - 1; i >= 0; i-- {
		c.PacketConn.WriteTo(held[i], dst) //nolint:errcheck // lossy network semantics
	}
}

func (c *captureConn) history() []frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]frame(nil), c.frames...)
}

// Result is one engine run's full record.
type Result struct {
	// Protocol is the variant the run exercised.
	Protocol string
	// Steps is the number of ops applied.
	Steps int
	// Violations collects every invariant violation any per-step or final
	// audit found, prefixed with the step that found it.
	Violations []string
	// Intent is the primary sender's live keys and values at trace end —
	// what the application believes is installed.
	Intent map[string][]byte
	// Survivor is the receiver's post-quiesce state attributed to the
	// primary sender, pool keys only.
	Survivor map[string][]byte
	// Spliced marks pool keys touched by cross-session splice injections
	// — the keys on which a hard-state receiver may permanently diverge,
	// since nothing ever expires or overwrites the forged install.
	Spliced map[string]bool
	// DecodeErrors is the receiver's rejected-datagram count — evidence
	// the truncation/garbage ops actually exercised the codec.
	DecodeErrors int
}

// engine is one live adversarial run: a primary sender, a second sender
// (the splice source), and one receiver on a clean virtual-time network
// where the grammar's mutations are the only adversary.
type engine struct {
	v    *clock.Virtual
	snd  *signal.Sender
	snd2 *signal.Sender
	rcv  *signal.Receiver
	cap  *captureConn
	cap2 *captureConn

	sndAddr net.Addr
	rcvAddr net.Addr
	prof    variant.Profile

	mu        sync.Mutex
	installs  int
	drops     int
	touched   map[string]bool
	anonEvent bool

	prevSeq   map[string]uint64
	heldSince time.Duration
	gen       int
	res       *Result
}

// RunTrace executes one decoded trace against variant profileIdx (index into
// Protocols) and returns the full record. Same inputs, same Result.
func RunTrace(profileIdx int, ops []Op) (*Result, error) {
	proto := Protocols[profileIdx%len(Protocols)]
	v := clock.NewVirtual()
	nw, err := lossy.NewNetwork(lossy.Config{Delay: chaosLinkDelay, Seed: 1, Clock: v})
	if err != nil {
		return nil, err
	}
	cfg := signal.Config{
		Protocol:        proto,
		RefreshInterval: chaosRefresh,
		Timeout:         chaosTimeout,
		Retransmit:      chaosRetx,
		Clock:           v,
	}
	e := &engine{
		v:       v,
		prof:    variant.For(proto),
		touched: make(map[string]bool),
		prevSeq: make(map[string]uint64),
		res: &Result{
			Protocol: proto.String(),
			Intent:   make(map[string][]byte),
			Survivor: make(map[string][]byte),
			Spliced:  make(map[string]bool),
		},
	}
	rcfg := cfg
	rcfg.OnEvent = e.onReceiverEvent

	e.cap = &captureConn{PacketConn: nw.Endpoint("snd")}
	e.cap2 = &captureConn{PacketConn: nw.Endpoint("snd2")}
	rconn := nw.Endpoint("rcv")
	e.sndAddr = e.cap.LocalAddr()
	e.rcvAddr = rconn.LocalAddr()

	e.rcv, err = signal.NewReceiver(rconn, rcfg)
	if err != nil {
		return nil, err
	}
	defer e.rcv.Close()
	e.snd, err = signal.NewSender(e.cap, e.rcvAddr, cfg)
	if err != nil {
		return nil, err
	}
	defer e.snd.Close()
	e.snd2, err = signal.NewSender(e.cap2, e.rcvAddr, cfg)
	if err != nil {
		return nil, err
	}
	defer e.snd2.Close()

	// Scripted second session: installs the whole pool (distinct values),
	// withdraws half. Its capture history is the splice arsenal — live
	// installs, refreshes, and removals under foreign sequence numbers.
	for k := 0; k < poolSize; k++ {
		e.snd2.Install(PoolKey(k), []byte(fmt.Sprintf("w%d", k))) //nolint:errcheck
	}
	v.Run(20 * time.Millisecond)
	for k := poolSize / 2; k < poolSize; k++ {
		e.snd2.Remove(PoolKey(k)) //nolint:errcheck
	}
	v.Run(20 * time.Millisecond)

	for i, op := range ops {
		e.apply(op)
		e.settle()
		e.audit(fmt.Sprintf("step %d (%s)", i, op.Kind))
		e.res.Steps++
	}
	e.finish()
	return e.res, nil
}

// onReceiverEvent tallies the receiver's lifecycle stream synchronously
// (never dropped, unlike the channel): installs against drops for the
// balance invariant, and which (source, key) pairs changed lifecycle so
// the sequence-regression check can exempt re-created entries.
func (e *engine) onReceiverEvent(ev signal.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch ev.Kind {
	case signal.EventInstalled:
		e.installs++
	case signal.EventRemoved, signal.EventExpired, signal.EventFalseRemoval, signal.EventOrphaned:
		e.drops++
	default:
		return
	}
	if ev.Peer == nil {
		e.anonEvent = true
		return
	}
	e.touched[signal.RKey(ev.Peer, ev.Key)] = true
}

// apply executes one op.
func (e *engine) apply(op Op) {
	switch op.Kind {
	case OpAdvance:
		e.v.Run(time.Duration(1+int(op.Arg)%32) * time.Millisecond)
	case OpInstall:
		key := PoolKey(int(op.Arg))
		e.gen++
		val := []byte(fmt.Sprintf("g%d", e.gen))
		if e.snd.Install(key, val) == nil {
			e.res.Intent[key] = val
		}
	case OpUpdate:
		key := PoolKey(int(op.Arg))
		e.gen++
		val := []byte(fmt.Sprintf("g%d", e.gen))
		if e.snd.Update(key, val) == nil {
			e.res.Intent[key] = val
		}
	case OpRemove:
		key := PoolKey(int(op.Arg))
		if e.snd.Remove(key) == nil {
			delete(e.res.Intent, key)
		}
	case OpDuplicate:
		if h := e.cap.history(); len(h) > 0 {
			e.inject(h[len(h)-1].raw)
		}
	case OpReplay:
		if h := e.cap.history(); len(h) > 0 {
			e.inject(h[int(op.Arg)%len(h)].raw)
		}
	case OpHold:
		e.cap.mu.Lock()
		holding := e.cap.holding
		e.cap.mu.Unlock()
		if !holding {
			e.cap.hold()
			e.heldSince = e.v.Elapsed()
		}
	case OpRelease:
		e.cap.release()
	case OpSplice:
		if h := e.cap2.history(); len(h) > 0 {
			f := h[int(op.Arg)%len(h)]
			e.inject(f.raw)
			if f.key != "" {
				e.res.Spliced[f.key] = true
			}
		}
	case OpTruncate:
		if h := e.cap.history(); len(h) > 0 {
			raw := h[len(h)-1].raw
			if len(raw) > 1 {
				e.inject(raw[:1+int(op.Arg)%(len(raw)-1)])
			}
		}
	case OpTypeFlip:
		e.typeFlip()
	case OpGarbage:
		junk := make([]byte, 8+int(op.Arg)%24)
		for i := range junk {
			junk[i] = op.Arg ^ byte(i*7)
		}
		e.inject(junk)
	}
}

// inject delivers raw bytes to the receiver as the primary sender: the
// injection path writes through the sender's own endpoint, so the
// receiver attributes the datagram to the genuine source address.
func (e *engine) inject(raw []byte) {
	e.cap.PacketConn.WriteTo(raw, e.rcvAddr) //nolint:errcheck // lossy network semantics
}

// typeFlip re-encodes the most recent trigger or refresh with the other
// type — a checksummed-but-wrong datagram, the kind a confused sender (or
// a bit-flip the CRC happens to miss) would produce.
func (e *engine) typeFlip() {
	h := e.cap.history()
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].typ != wire.TypeTrigger && h[i].typ != wire.TypeRefresh {
			continue
		}
		var m wire.Message
		if err := m.UnmarshalBinary(h[i].raw); err != nil {
			return
		}
		if m.Type == wire.TypeTrigger {
			m.Type = wire.TypeRefresh
		} else {
			m.Type = wire.TypeTrigger
		}
		if raw, err := m.MarshalBinary(); err == nil {
			e.inject(raw)
		}
		return
	}
}

// settle runs the clock past the link delay so every datagram the op
// produced is delivered and processed, then enforces the reorder buffer's
// hold budget.
func (e *engine) settle() {
	e.v.Run(2 * chaosLinkDelay)
	e.cap.mu.Lock()
	holding := e.cap.holding
	e.cap.mu.Unlock()
	if holding && e.v.Elapsed()-e.heldSince >= holdBudget {
		e.cap.release()
		e.v.Run(2 * chaosLinkDelay)
	}
}

// audit checks every invariant the engine maintains, tagging violations
// with the step that exposed them.
func (e *engine) audit(at string) {
	var bad []string
	bad = append(bad, e.rcv.CheckInvariants()...)
	bad = append(bad, e.snd.CheckInvariants()...)
	bad = append(bad, e.snd2.CheckInvariants()...)

	// No accepted message may move a source's sequence space backward.
	// Entries that went through a lifecycle transition since the last
	// audit (expire/remove + re-create legitimately restart the sequence
	// space) are exempt, as is everything after an event with no peer
	// attribution.
	snap := e.rcv.SeqSnapshot()
	e.mu.Lock()
	touched, anon := e.touched, e.anonEvent
	e.touched = make(map[string]bool)
	e.anonEvent = false
	installs, drops := e.installs, e.drops
	e.mu.Unlock()
	if !anon {
		for ck, prev := range e.prevSeq {
			if now, ok := snap[ck]; ok && now < prev && !touched[ck] {
				bad = append(bad, fmt.Sprintf("chaos: sequence regressed %d → %d for %q", prev, now, ck))
			}
		}
	}
	e.prevSeq = snap

	// Lifecycle events must balance table occupancy: every entry was
	// announced installed, every departure announced exactly once.
	if got := e.rcv.Len(); installs-drops != got {
		bad = append(bad, fmt.Sprintf("chaos: %d installs - %d drops ≠ %d table entries", installs, drops, got))
	}

	for _, b := range bad {
		e.res.Violations = append(e.res.Violations, at+": "+b)
	}
}

// finish releases anything still held, quiesces past every repair
// horizon — refresh recreation, state timeout, retransmission, and the
// hard-state orphan sweep (3 probe misses × 90 ms plus cadence) — then
// takes the final audit and the survivor snapshot.
func (e *engine) finish() {
	e.cap.release()
	e.v.Run(8 * chaosTimeout)
	e.audit("final")
	for k := 0; k < poolSize; k++ {
		key := PoolKey(k)
		if val, ok := e.rcv.GetFrom(e.sndAddr, key); ok {
			e.res.Survivor[key] = val
		}
	}
	e.res.DecodeErrors = e.rcv.Stats().DecodeErrors
}

// DivergenceViolations applies a variant's allowed-divergence rule to a
// finished run: every refresh-bearing profile must reconverge the
// receiver to the sender's exact intent (refreshes recreate, timeouts
// collect, nothing forged survives a full quiescent horizon), while hard
// state — which never expires and never re-announces — is allowed to
// disagree exactly on the keys a splice injection forged, and nowhere
// else. The empty slice is the pass verdict.
func DivergenceViolations(r *Result) []string {
	prof, err := variant.Parse(r.Protocol)
	if err != nil {
		return []string{fmt.Sprintf("chaos: unknown protocol %q", r.Protocol)}
	}
	var bad []string
	for k := 0; k < poolSize; k++ {
		key := PoolKey(k)
		want, wantOK := r.Intent[key]
		got, gotOK := r.Survivor[key]
		if prof.HardState && r.Spliced[key] {
			continue
		}
		switch {
		case wantOK && !gotOK:
			bad = append(bad, fmt.Sprintf("%s: installed key %q missing after quiesce", r.Protocol, key))
		case !wantOK && gotOK:
			bad = append(bad, fmt.Sprintf("%s: removed key %q still held after quiesce (value %q)", r.Protocol, key, got))
		case wantOK && string(want) != string(got):
			bad = append(bad, fmt.Sprintf("%s: key %q holds %q, intent %q", r.Protocol, key, got, want))
		}
	}
	return bad
}
