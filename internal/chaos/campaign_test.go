package chaos

import (
	"reflect"
	"testing"

	"softstate/internal/signal"
	"softstate/internal/sim"
	"softstate/internal/variant"
)

// TestSeededScheduleDeterministic: the seed fully determines the
// generated schedule.
func TestSeededScheduleDeterministic(t *testing.T) {
	a := CampaignOpts{Protocol: signal.SSRTR, Seed: 1234, Episodes: 6}.Config()
	b := CampaignOpts{Protocol: signal.SSRTR, Seed: 1234, Episodes: 6}.Config()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", Describe(a), Describe(b))
	}
	c := CampaignOpts{Protocol: signal.SSRTR, Seed: 1235, Episodes: 6}.Config()
	if reflect.DeepEqual(a.Schedule, c.Schedule) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Schedule) == 0 {
		t.Fatal("empty generated schedule")
	}
}

// TestSeededCampaignReplays: a generated campaign's full result — fault
// log, audit log, invariant record — is byte-identical across runs of the
// same seed.
func TestSeededCampaignReplays(t *testing.T) {
	opts := CampaignOpts{Protocol: signal.SSRT, Seed: 99, Episodes: 3, Loss: 0.05}
	r1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed, different campaigns:\nrun1: %+v\nrun2: %+v", r1, r2)
	}
}

// TestSeededCampaignAllVariantsSurvive: a generated (cold-restart-free)
// schedule leaves every variant reconverged with zero invariant
// violations.
func TestSeededCampaignAllVariantsSurvive(t *testing.T) {
	for _, proto := range []signal.Protocol{signal.SS, signal.SSER, signal.SSRT, signal.SSRTR, signal.HS} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			res, err := Run(CampaignOpts{Protocol: proto, Seed: 7, Episodes: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("invariant violations: %v", res.Violations)
			}
			if !res.Reconverged {
				t.Fatalf("never reconverged: %+v", res)
			}
		})
	}
}

// TestColdRestartGate: receiver cold-restarts only appear when opted in,
// since hard state cannot recover from them.
func TestColdRestartGate(t *testing.T) {
	hasCold := func(cfg sim.CampaignConfig) bool {
		for _, f := range cfg.Schedule {
			if f.Kind == sim.FaultReceiverRestart || f.Kind == sim.FaultRelayRestart {
				return true
			}
		}
		return false
	}
	for seed := uint64(1); seed <= 40; seed++ {
		if hasCold(CampaignOpts{Protocol: signal.HS, Seed: seed, Episodes: 6}.Config()) {
			t.Fatalf("seed %d generated a cold restart without opting in", seed)
		}
	}
	any := false
	for seed := uint64(1); seed <= 40; seed++ {
		if hasCold(CampaignOpts{Protocol: signal.SS, Seed: seed, Episodes: 6, ColdRestarts: true}.Config()) {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("40 opted-in seeds never generated a cold restart")
	}
}

// TestVariantProfilesCoverEngine: the fuzzer's protocol list and the
// variant layer's canonical order agree, so corpus selector bytes mean
// the same profile everywhere.
func TestVariantProfilesCoverEngine(t *testing.T) {
	all := variant.All()
	if len(all) != len(Protocols) {
		t.Fatalf("engine knows %d protocols, variant layer %d", len(Protocols), len(all))
	}
	for i, p := range Protocols {
		if all[i].Proto != p {
			t.Fatalf("order mismatch at %d: engine %v, variant %v", i, p, all[i].Proto)
		}
	}
}
