package chaos

import (
	"testing"
)

// seedTrace builds a corpus entry: variant selector byte followed by
// two-byte ops.
func seedTrace(variant byte, ops ...Op) []byte {
	data := []byte{variant}
	for _, op := range ops {
		data = append(data, byte(op.Kind), op.Arg)
	}
	return data
}

// corpusSeeds are the scenarios the fuzzer should mutate outward from:
// each one aims a specific mutation class at live protocol state.
func corpusSeeds() [][]byte {
	install := func(k byte) Op { return Op{OpInstall, k} }
	tick := func(ms byte) Op { return Op{OpAdvance, ms} }
	seeds := [][]byte{
		// Plain workload churn, no mutations.
		seedTrace(0, install(0), tick(10), Op{OpUpdate, 0}, tick(10), Op{OpRemove, 0}, tick(40)),
		// Duplicate and stale-replay against a renewed key.
		seedTrace(1, install(1), tick(5), Op{OpDuplicate, 0}, Op{OpUpdate, 1}, Op{OpReplay, 0}, tick(20)),
		// Reordering window across an update burst.
		seedTrace(2, install(2), Op{OpHold, 0}, Op{OpUpdate, 2}, Op{OpUpdate, 2}, Op{OpRelease, 0}, tick(10)),
		// Hold that overruns the budget (auto-release path).
		seedTrace(3, install(3), Op{OpHold, 0}, tick(31), tick(31), tick(31), Op{OpUpdate, 3}, tick(10)),
		// Cross-session splice onto an owned and an unowned key.
		seedTrace(4, install(0), tick(5), Op{OpSplice, 3}, Op{OpSplice, 11}, tick(30)),
		// Framing damage and garbage against live state.
		seedTrace(0, install(4), Op{OpTruncate, 7}, Op{OpGarbage, 99}, tick(10)),
		// Type confusion: refresh↔trigger flips around a removal.
		seedTrace(4, install(5), tick(5), Op{OpTypeFlip, 0}, Op{OpRemove, 5}, Op{OpTypeFlip, 0}, tick(40)),
		// Stale replay resurrecting a removed key (zombie cleanup path).
		seedTrace(1, install(6), tick(5), Op{OpRemove, 6}, tick(10), Op{OpReplay, 2}, tick(40)),
	}
	return seeds
}

// FuzzSession drives decoded mutation traces into one live
// sender/receiver pair (first input byte selects the variant) and fails
// on any structural invariant violation at any step. Every failure
// reproduces from its corpus entry alone: the engine runs entirely in
// virtual time over a seeded network.
func FuzzSession(f *testing.F) {
	for _, s := range corpusSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		res, err := RunTrace(int(data[0])%len(Protocols), DecodeTrace(data[1:]))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%s: invariant violations under trace:\n%v", res.Protocol, res.Violations)
		}
	})
}

// FuzzDifferential drives the same adversarial trace into all five
// variant profiles and applies each profile's allowed-divergence rule:
// refresh-bearing variants must reconverge the receiver to the sender's
// exact intent, hard state may diverge only on keys a splice forged.
func FuzzDifferential(f *testing.F) {
	for _, s := range corpusSeeds() {
		f.Add(s[1:]) // differential runs every variant; no selector byte
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := DecodeTrace(data)
		for i := range Protocols {
			res, err := RunTrace(i, ops)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%s: invariant violations: %v", res.Protocol, res.Violations)
			}
			if bad := DivergenceViolations(res); len(bad) != 0 {
				t.Fatalf("%s: divergence beyond the variant's allowance: %v\nintent=%q survivor=%q spliced=%v",
					res.Protocol, bad, res.Intent, res.Survivor, res.Spliced)
			}
		}
	})
}

// TestCorpusSeeds replays every corpus seed through both fuzz bodies as a
// plain test, so `go test` (and CI's short mode) exercises the whole
// mutation grammar deterministically even when no fuzz engine runs.
func TestCorpusSeeds(t *testing.T) {
	for i, s := range corpusSeeds() {
		res, err := RunTrace(int(s[0])%len(Protocols), DecodeTrace(s[1:]))
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d (%s): %v", i, res.Protocol, res.Violations)
		}
	}
}

// TestDifferentialSeeds applies the differential divergence rule to every
// corpus seed across all five variants.
func TestDifferentialSeeds(t *testing.T) {
	for i, s := range corpusSeeds() {
		ops := DecodeTrace(s[1:])
		for pi := range Protocols {
			res, err := RunTrace(pi, ops)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("seed %d (%s): %v", i, res.Protocol, res.Violations)
			}
			if bad := DivergenceViolations(res); len(bad) != 0 {
				t.Fatalf("seed %d (%s): %v\nintent=%q survivor=%q spliced=%v",
					i, res.Protocol, bad, res.Intent, res.Survivor, res.Spliced)
			}
		}
	}
}

// TestEngineExercisesCodec proves the damage ops reach the codec: a
// truncation plus garbage trace must leave decode-error evidence.
func TestEngineExercisesCodec(t *testing.T) {
	ops := []Op{{OpInstall, 0}, {OpAdvance, 5}, {OpTruncate, 200}, {OpGarbage, 42}, {OpAdvance, 5}}
	res, err := RunTrace(0, ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeErrors == 0 {
		t.Fatal("truncate+garbage trace produced no decode errors — mutations are not reaching the receiver")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}
