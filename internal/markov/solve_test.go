package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoState builds the classic birth-death chain a ⇄ b with rates λ, μ.
func twoState(lambda, mu float64) (*Chain, StateID, StateID) {
	c := NewChain()
	a, b := c.State("a"), c.State("b")
	c.AddTransition(a, b, lambda)
	c.AddTransition(b, a, mu)
	return c, a, b
}

func TestStationaryTwoState(t *testing.T) {
	c, a, b := twoState(2, 3)
	pi, err := c.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	// π_a = μ/(λ+μ) = 0.6, π_b = 0.4.
	if math.Abs(pi[a]-0.6) > 1e-12 || math.Abs(pi[b]-0.4) > 1e-12 {
		t.Fatalf("pi = %v, want [0.6 0.4]", pi)
	}
}

func TestStationarySingleState(t *testing.T) {
	c := NewChain()
	c.State("only")
	pi, err := c.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 1 {
		t.Fatalf("pi = %v, want [1]", pi)
	}
}

func TestStationaryEmptyChain(t *testing.T) {
	if _, err := NewChain().StationaryDistribution(); err == nil {
		t.Fatal("expected error for empty chain")
	}
}

func TestStationaryCycle(t *testing.T) {
	// Three-state unidirectional cycle with equal rates: uniform stationary.
	c := NewChain()
	s := []StateID{c.State("0"), c.State("1"), c.State("2")}
	for i := range s {
		c.AddTransition(s[i], s[(i+1)%3], 5)
	}
	pi, err := c.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pi {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Fatalf("pi[%d] = %v, want 1/3", i, p)
		}
	}
}

func TestStationaryCycleUnequalRates(t *testing.T) {
	// Cycle with different rates: π_i ∝ 1/rate_i (sojourn proportional to
	// inverse exit rate; flow around the cycle is constant).
	c := NewChain()
	s := []StateID{c.State("0"), c.State("1"), c.State("2")}
	rates := []float64{1, 2, 4}
	for i := range s {
		c.AddTransition(s[i], s[(i+1)%3], rates[i])
	}
	pi, err := c.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	total := 1.0 + 0.5 + 0.25
	want := []float64{1 / total, 0.5 / total, 0.25 / total}
	for i := range want {
		if math.Abs(pi[i]-want[i]) > 1e-12 {
			t.Fatalf("pi = %v, want %v", pi, want)
		}
	}
}

func TestStationaryDisconnectedFails(t *testing.T) {
	c := NewChain()
	a, b := c.State("a"), c.State("b")
	d, e := c.State("d"), c.State("e")
	c.AddTransition(a, b, 1)
	c.AddTransition(b, a, 1)
	c.AddTransition(d, e, 1)
	c.AddTransition(e, d, 1)
	// Two disconnected recurrent classes: stationary distribution is not
	// unique, the solver must refuse rather than pick silently.
	if _, err := c.StationaryDistribution(); err == nil {
		t.Fatal("expected failure for reducible chain")
	}
}

func TestStationaryPropertyRandomChains(t *testing.T) {
	// Property: for random strongly connected chains (a cycle plus random
	// extra edges), π has unit mass, is nonnegative, and satisfies balance.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		c := NewChain()
		ids := make([]StateID, n)
		for i := range ids {
			ids[i] = c.State(string(rune('A' + i)))
		}
		for i := range ids {
			c.AddTransition(ids[i], ids[(i+1)%n], 0.1+rng.Float64()*10)
		}
		extra := rng.Intn(3 * n)
		for k := 0; k < extra; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			c.AddTransition(ids[i], ids[j], 0.1+rng.Float64()*10)
		}
		pi, err := c.StationaryDistribution()
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < 0 {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		return c.BalanceResidual(pi) < 1e-7*(1+10)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorptionSingleTransient(t *testing.T) {
	// a → abs at rate λ: mean time to absorption is 1/λ.
	c := NewChain()
	a, abs := c.State("a"), c.State("abs")
	c.AddTransition(a, abs, 4)
	res, err := c.Absorption(a, abs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanTime-0.25) > 1e-12 {
		t.Fatalf("MeanTime = %v, want 0.25", res.MeanTime)
	}
	if math.Abs(res.Occupancy[a]-0.25) > 1e-12 {
		t.Fatalf("Occupancy = %v", res.Occupancy)
	}
	if res.Occupancy[abs] != 0 {
		t.Fatal("absorbing state has nonzero occupancy")
	}
}

func TestAbsorptionChainOfStates(t *testing.T) {
	// a → b → abs, each at rate 1: mean time 2, occupancy 1 in each.
	c := NewChain()
	a, b, abs := c.State("a"), c.State("b"), c.State("abs")
	c.AddTransition(a, b, 1)
	c.AddTransition(b, abs, 1)
	res, err := c.Absorption(a, abs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanTime-2) > 1e-12 {
		t.Fatalf("MeanTime = %v, want 2", res.MeanTime)
	}
	for _, s := range []StateID{a, b} {
		if math.Abs(res.Occupancy[s]-1) > 1e-12 {
			t.Fatalf("Occupancy[%s] = %v, want 1", c.Name(s), res.Occupancy[s])
		}
	}
}

func TestAbsorptionWithLoop(t *testing.T) {
	// a → b (rate 1), b → a (rate 1), b → abs (rate 1).
	// Expected visits: from a the process bounces; standard result:
	// occupancy(a) = 2, occupancy(b) = 2, mean time = 4... verified by
	// first-step analysis: E_a = 1 + E_b; E_b = 1/2 + (1/2)E_a ⇒
	// sojourn times: state a mean 1 per visit, b mean 1/2 per visit.
	// E_a = 1 + E_b, E_b = 1/2 + 0.5·E_a ⇒ E_a = 3, E_b = 2.
	c := NewChain()
	a, b, abs := c.State("a"), c.State("b"), c.State("abs")
	c.AddTransition(a, b, 1)
	c.AddTransition(b, a, 1)
	c.AddTransition(b, abs, 1)
	res, err := c.Absorption(a, abs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanTime-3) > 1e-12 {
		t.Fatalf("MeanTime = %v, want 3", res.MeanTime)
	}
}

func TestAbsorptionFromAbsorbingState(t *testing.T) {
	c := NewChain()
	a, abs := c.State("a"), c.State("abs")
	c.AddTransition(a, abs, 1)
	res, err := c.Absorption(abs, abs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanTime != 0 {
		t.Fatalf("MeanTime = %v, want 0", res.MeanTime)
	}
}

func TestAbsorptionUnreachableAbsorbing(t *testing.T) {
	// a ⇄ b with no path to abs: the transient system is recurrent and the
	// expected absorption time is infinite; the solver must error out.
	c := NewChain()
	a, b := c.State("a"), c.State("b")
	abs := c.State("abs")
	c.AddTransition(a, b, 1)
	c.AddTransition(b, a, 1)
	if _, err := c.Absorption(a, abs); err == nil {
		t.Fatal("expected error when absorption is impossible")
	}
}

func TestAbsorptionIgnoresAbsorbingOutEdges(t *testing.T) {
	c := NewChain()
	a, abs := c.State("a"), c.State("abs")
	c.AddTransition(a, abs, 2)
	c.AddTransition(abs, a, 100) // must be ignored
	res, err := c.Absorption(a, abs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanTime-0.5) > 1e-12 {
		t.Fatalf("MeanTime = %v, want 0.5", res.MeanTime)
	}
}

func TestAbsorptionPropertyExponentialRace(t *testing.T) {
	// Property: a single state with k competing absorbing exits at rates
	// r_1..r_k has mean absorption time 1/Σr.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(5) + 1
		c := NewChain()
		start := c.State("start")
		var total float64
		var absorbing []StateID
		for i := 0; i < k; i++ {
			r := 0.1 + rng.Float64()*5
			abs := c.State(string(rune('a' + i)))
			c.AddTransition(start, abs, r)
			absorbing = append(absorbing, abs)
			total += r
		}
		res, err := c.Absorption(start, absorbing...)
		if err != nil {
			return false
		}
		return math.Abs(res.MeanTime-1/total) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHitProbabilitySplit(t *testing.T) {
	// start → a at 1, start → b at 3: P(hit b) = 0.75.
	c := NewChain()
	start, a, b := c.State("start"), c.State("a"), c.State("b")
	c.AddTransition(start, a, 1)
	c.AddTransition(start, b, 3)
	p, err := c.HitProbability(start, b, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("p = %v, want 0.75", p)
	}
}

func TestHitProbabilityTargetNotAbsorbing(t *testing.T) {
	c := NewChain()
	start, a := c.State("start"), c.State("a")
	c.AddTransition(start, a, 1)
	if _, err := c.HitProbability(start, start, a); err == nil {
		t.Fatal("expected error when target is not absorbing")
	}
}

func TestRedirectStationaryMatchesAbsorptionRatio(t *testing.T) {
	// Regeneration argument used throughout the paper: for a transient
	// chain with absorbing state z, merging z into the start state yields a
	// recurrent chain whose stationary probability of state s equals
	// occupancy(s)/meanTime of the absorption analysis.
	c := NewChain()
	s0, s1, s2, z := c.State("s0"), c.State("s1"), c.State("s2"), c.State("z")
	c.AddTransition(s0, s1, 1.3)
	c.AddTransition(s1, s0, 0.4)
	c.AddTransition(s1, s2, 2.0)
	c.AddTransition(s2, s1, 0.7)
	c.AddTransition(s2, z, 0.9)
	c.AddTransition(s0, z, 0.1)

	abs, err := c.Absorption(s0, z)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.Redirect(z, s0)
	pi, err := rec.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []StateID{s0, s1, s2} {
		want := abs.Occupancy[s] / abs.MeanTime
		if math.Abs(pi[s]-want) > 1e-9 {
			t.Fatalf("pi[%s] = %v, want occupancy ratio %v", c.Name(s), pi[s], want)
		}
	}
	if pi[z] > 1e-12 {
		t.Fatalf("merged state has stationary mass %v, want ≈0", pi[z])
	}
}
