// Package markov implements the continuous-time Markov chain (CTMC)
// machinery behind the paper's analytic models: chain construction from
// named states and rates, stationary analysis of recurrent chains, and
// absorption analysis (expected sojourn times and mean time to absorption)
// of transient chains.
//
// Two solver entry points cover everything the signaling models need:
//
//   - StationaryDistribution solves πQ = 0, Σπ = 1 for a recurrent chain.
//     The paper's inconsistency ratio is 1 − π(consistent) on the chain
//     obtained by merging the absorbing state back into the start state.
//
//   - Absorption computes, for a chain with absorbing states, the expected
//     total time spent in every transient state before absorption and the
//     mean time to absorption. The paper's session lifetime L is the mean
//     time to absorption from the initial state.
package markov

import (
	"fmt"
	"math"
	"sort"

	"softstate/internal/linalg"
)

// StateID identifies a state within a Chain. IDs are dense and start at 0
// in order of first registration.
type StateID int

// Transition is one directed rate edge of the chain.
type Transition struct {
	From, To StateID
	Rate     float64
}

// Chain is a finite CTMC under construction. Create one with NewChain,
// register states with State, and add rate edges with AddTransition.
// Parallel edges accumulate. A Chain is not safe for concurrent mutation.
type Chain struct {
	names []string
	index map[string]StateID
	// rates[from][to] = accumulated rate.
	rates []map[StateID]float64
}

// NewChain returns an empty chain.
func NewChain() *Chain {
	return &Chain{index: make(map[string]StateID)}
}

// State returns the ID for name, registering the state if new.
func (c *Chain) State(name string) StateID {
	if id, ok := c.index[name]; ok {
		return id
	}
	id := StateID(len(c.names))
	c.names = append(c.names, name)
	c.index[name] = id
	c.rates = append(c.rates, make(map[StateID]float64))
	return id
}

// Lookup returns the ID for a previously registered state name.
func (c *Chain) Lookup(name string) (StateID, bool) {
	id, ok := c.index[name]
	return id, ok
}

// Name returns the registered name for id.
func (c *Chain) Name(id StateID) string {
	return c.names[id]
}

// Len returns the number of states.
func (c *Chain) Len() int { return len(c.names) }

// AddTransition adds a rate edge from → to. A zero rate is ignored so model
// builders can pass conditional expressions without branching. Negative,
// NaN, or infinite rates and self-loops panic: they are programming errors
// in the model definition, never data-dependent conditions.
func (c *Chain) AddTransition(from, to StateID, rate float64) {
	if rate == 0 {
		return
	}
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
		panic(fmt.Sprintf("markov: invalid rate %v on %s→%s", rate, c.names[from], c.names[to]))
	}
	if from == to {
		panic(fmt.Sprintf("markov: self-loop on state %s", c.names[from]))
	}
	c.checkID(from)
	c.checkID(to)
	c.rates[from][to] += rate
}

func (c *Chain) checkID(id StateID) {
	if id < 0 || int(id) >= len(c.names) {
		panic(fmt.Sprintf("markov: state id %d out of range (%d states)", id, len(c.names)))
	}
}

// Rate returns the accumulated rate from → to (zero when absent).
func (c *Chain) Rate(from, to StateID) float64 {
	c.checkID(from)
	c.checkID(to)
	return c.rates[from][to]
}

// ExitRate returns the total outgoing rate of a state.
func (c *Chain) ExitRate(from StateID) float64 {
	c.checkID(from)
	var sum float64
	for _, r := range c.rates[from] {
		sum += r
	}
	return sum
}

// Transitions returns all edges, ordered by (From, To), for reporting.
func (c *Chain) Transitions() []Transition {
	var out []Transition
	for from, row := range c.rates {
		for to, r := range row {
			out = append(out, Transition{From: StateID(from), To: to, Rate: r})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Generator returns the infinitesimal generator Q: off-diagonal entries are
// transition rates, diagonals make each row sum to zero.
func (c *Chain) Generator() *linalg.Matrix {
	n := c.Len()
	q := linalg.NewMatrix(n, n)
	for from, row := range c.rates {
		var exit float64
		for to, r := range row {
			q.Set(from, int(to), r)
			exit += r
		}
		q.Set(from, from, -exit)
	}
	return q
}

// Clone returns a deep copy of the chain.
func (c *Chain) Clone() *Chain {
	n := NewChain()
	for _, name := range c.names {
		n.State(name)
	}
	for from, row := range c.rates {
		for to, r := range row {
			n.rates[from][to] = r
		}
	}
	return n
}

// Redirect returns a copy of the chain in which every transition that
// enters state `from` enters state `into` instead, and `from` keeps its
// (now unreachable) outgoing edges. The paper uses this to convert the
// transient single-hop chain into a recurrent one: merging the absorbing
// state (-,-) into the start state (1,-)₁ turns each session lifecycle
// into one regeneration cycle of a recurrent process.
func (c *Chain) Redirect(from, into StateID) *Chain {
	c.checkID(from)
	c.checkID(into)
	if from == into {
		return c.Clone()
	}
	n := c.Clone()
	for src, row := range n.rates {
		r, ok := row[from]
		if !ok {
			continue
		}
		delete(row, from)
		if StateID(src) == into {
			// A transition into → from would become a self-loop after the
			// merge; in a regeneration structure it means "restart
			// immediately", which contributes no sojourn time, so drop it.
			continue
		}
		row[into] += r
	}
	if len(n.rates[from]) == 0 {
		// The merged state is now unreachable; give it a drain edge so the
		// stationary system stays nonsingular and assigns it zero mass.
		n.rates[from][into] = 1
	}
	return n
}

// Freeze returns a copy of the chain in which each listed state has its
// outgoing edges removed, making it absorbing. Used for first-passage
// analysis: freezing the target state turns "probability of being in s at
// time t" into "probability of having reached s by time t".
func (c *Chain) Freeze(states ...StateID) *Chain {
	n := c.Clone()
	for _, s := range states {
		n.checkID(s)
		n.rates[s] = make(map[StateID]float64)
	}
	return n
}
