package markov

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTransientTwoStateClosedForm checks uniformization against the exact
// solution of the two-state chain a ⇄ b with rates λ, μ:
//
//	P(in b at t | start a) = λ/(λ+μ)·(1 − e^{−(λ+μ)t}).
func TestTransientTwoStateClosedForm(t *testing.T) {
	lambda, mu := 2.0, 3.0
	c, a, b := twoState(lambda, mu)
	for _, tt := range []float64{0, 0.01, 0.1, 0.5, 1, 5} {
		p, err := c.TransientAt(c.UnitDistribution(a), tt)
		if err != nil {
			t.Fatal(err)
		}
		want := lambda / (lambda + mu) * (1 - math.Exp(-(lambda+mu)*tt))
		if math.Abs(p[b]-want) > 1e-9 {
			t.Fatalf("t=%v: P(b) = %v, want %v", tt, p[b], want)
		}
	}
}

func TestTransientPureDecay(t *testing.T) {
	// a → z at rate r: P(still in a at t) = e^{−rt}.
	c := NewChain()
	a, z := c.State("a"), c.State("z")
	r := 1.7
	c.AddTransition(a, z, r)
	p, err := c.TransientAt(c.UnitDistribution(a), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Exp(-r * 2); math.Abs(p[a]-want) > 1e-9 {
		t.Fatalf("P(a) = %v, want %v", p[a], want)
	}
}

func TestTransientZeroTime(t *testing.T) {
	c, a, b := twoState(1, 1)
	p, err := c.TransientAt(c.UnitDistribution(a), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p[a] != 1 || p[b] != 0 {
		t.Fatalf("p(0) = %v", p)
	}
}

func TestTransientConvergesToStationary(t *testing.T) {
	c := NewChain()
	s := []StateID{c.State("0"), c.State("1"), c.State("2")}
	c.AddTransition(s[0], s[1], 1.2)
	c.AddTransition(s[1], s[0], 0.3)
	c.AddTransition(s[1], s[2], 2.5)
	c.AddTransition(s[2], s[0], 0.8)
	pi, err := c.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.TransientAt(c.UnitDistribution(s[0]), 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(p[i]-pi[i]) > 1e-8 {
			t.Fatalf("p(∞)[%d] = %v, stationary %v", i, p[i], pi[i])
		}
	}
}

func TestTransientAbsorbingChain(t *testing.T) {
	// a → b → z, rates 1; P(absorbed by t) follows the Erlang-2 CDF.
	c := NewChain()
	a, b, z := c.State("a"), c.State("b"), c.State("z")
	c.AddTransition(a, b, 1)
	c.AddTransition(b, z, 1)
	for _, tt := range []float64{0.5, 1, 2, 4} {
		p, err := c.TransientAt(c.UnitDistribution(a), tt)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-tt)*(1+tt) // Erlang-2 CDF
		if math.Abs(p[z]-want) > 1e-9 {
			t.Fatalf("t=%v: P(z) = %v, want %v", tt, p[z], want)
		}
	}
}

func TestTransientInputValidation(t *testing.T) {
	c, a, _ := twoState(1, 1)
	if _, err := c.TransientAt([]float64{1}, 1); err == nil {
		t.Fatal("wrong-length p0 accepted")
	}
	if _, err := c.TransientAt(c.UnitDistribution(a), -1); err == nil {
		t.Fatal("negative time accepted")
	}
	if _, err := c.TransientAt([]float64{0.5, 0.4}, 1); err == nil {
		t.Fatal("non-normalized p0 accepted")
	}
	if _, err := c.TransientAt([]float64{1.5, -0.5}, 1); err == nil {
		t.Fatal("negative p0 entry accepted")
	}
}

func TestTransientNoTransitions(t *testing.T) {
	c := NewChain()
	a := c.State("a")
	c.State("b")
	p, err := c.TransientAt(c.UnitDistribution(a), 5)
	if err != nil {
		t.Fatal(err)
	}
	if p[a] != 1 {
		t.Fatalf("rateless chain moved: %v", p)
	}
}

func TestTransientPropertyProbabilityVector(t *testing.T) {
	// Property: for random chains and times, the result is a probability
	// vector and mass in any absorbing state is non-decreasing in t.
	prop := func(seed int64) bool {
		rng := newTestRng(seed)
		n := int(rng()*8) + 2
		c := NewChain()
		ids := make([]StateID, n)
		for i := range ids {
			ids[i] = c.State(string(rune('A' + i)))
		}
		for i := 0; i < n-1; i++ {
			c.AddTransition(ids[i], ids[i+1], 0.2+rng()*5)
			if rng() > 0.5 && i > 0 {
				c.AddTransition(ids[i], ids[i-1], 0.2+rng()*5)
			}
		}
		// ids[n-1] is absorbing.
		prevAbs := -1.0
		for _, tt := range []float64{0.1, 1, 10} {
			p, err := c.TransientAt(c.UnitDistribution(ids[0]), tt)
			if err != nil {
				return false
			}
			var sum float64
			for _, v := range p {
				if v < -1e-12 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			if p[ids[n-1]] < prevAbs-1e-9 {
				return false
			}
			prevAbs = p[ids[n-1]]
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// newTestRng returns a tiny deterministic float stream in [0,1).
func newTestRng(seed int64) func() float64 {
	s := uint64(seed)*2862933555777941757 + 3037000493
	return func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / (1 << 53)
	}
}
