package markov

import (
	"fmt"
	"math"
)

// TransientAt computes the state-probability vector at time t, starting
// from the distribution p0, by uniformization (Jensen's method):
//
//	p(t) = Σ_k Poisson(qt; k) · p0·P̂ᵏ,  P̂ = I + Q/q,  q ≥ max exit rate.
//
// Uniformization is numerically robust (all terms nonnegative) and lets
// the experiment harness answer questions the paper's steady-state
// analysis cannot, such as "how quickly is a fresh update installed?"
// (the time-to-consistency study in internal/exp).
//
// The truncation error is bounded by the Poisson tail mass, kept below
// 1e-12.
func (c *Chain) TransientAt(p0 []float64, t float64) ([]float64, error) {
	n := c.Len()
	if len(p0) != n {
		return nil, fmt.Errorf("markov: initial distribution has %d entries, chain has %d states", len(p0), n)
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov: invalid time %v", t)
	}
	var sum float64
	for i, v := range p0 {
		if v < 0 {
			return nil, fmt.Errorf("markov: negative initial probability %v in state %s", v, c.names[i])
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("markov: initial distribution sums to %v", sum)
	}
	if t == 0 || n == 0 {
		out := make([]float64, n)
		copy(out, p0)
		return out, nil
	}

	// Uniformization rate: a hair above the largest exit rate so P̂ keeps
	// strictly positive diagonals (better conditioning).
	q := 0.0
	for s := 0; s < n; s++ {
		if r := c.ExitRate(StateID(s)); r > q {
			q = r
		}
	}
	if q == 0 {
		out := make([]float64, n)
		copy(out, p0)
		return out, nil
	}
	q *= 1.02

	// step applies v·P̂ = v + (v·Q)/q without materializing P̂.
	step := func(v []float64) []float64 {
		out := make([]float64, n)
		copy(out, v)
		for s := 0; s < n; s++ {
			vs := v[s]
			if vs == 0 {
				continue
			}
			exit := 0.0
			for to, r := range c.rates[s] {
				out[to] += vs * r / q
				exit += r
			}
			out[s] -= vs * exit / q
		}
		return out
	}

	// Accumulate Σ_k w_k·(p0·P̂^k) with Poisson weights computed
	// iteratively; stop when the remaining tail mass is negligible.
	const tailEps = 1e-12
	qt := q * t
	result := make([]float64, n)
	term := make([]float64, n)
	copy(term, p0)
	logW := -qt // log of Poisson(qt; 0)
	accumulated := 0.0
	for k := 0; ; k++ {
		if k > 0 {
			term = step(term)
			logW += math.Log(qt) - math.Log(float64(k))
		}
		w := math.Exp(logW)
		if w > 0 {
			for i := range result {
				result[i] += w * term[i]
			}
			accumulated += w
		}
		// Beyond the Poisson mean, the weights decay geometrically; stop
		// once the accumulated mass is within tailEps of 1.
		if float64(k) > qt && 1-accumulated < tailEps {
			break
		}
		if k > int(qt)+200+int(20*math.Sqrt(qt)) {
			break // hard cap; tail bound met in practice far earlier
		}
	}
	// Renormalize away the truncated tail and roundoff.
	var rs float64
	for _, v := range result {
		rs += v
	}
	if rs > 0 {
		for i := range result {
			result[i] /= rs
		}
	}
	return result, nil
}

// UnitDistribution returns the distribution concentrated on state s.
func (c *Chain) UnitDistribution(s StateID) []float64 {
	c.checkID(s)
	p := make([]float64, c.Len())
	p[s] = 1
	return p
}
