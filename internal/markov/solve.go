package markov

import (
	"errors"
	"fmt"
	"math"

	"softstate/internal/linalg"
)

// ErrNotSolvable is returned when the chain's linear system is singular,
// typically because the chain is reducible (unreachable or dead-end states)
// in a way that makes the requested analysis ill-posed.
var ErrNotSolvable = errors.New("markov: chain analysis is ill-posed (reducible or empty chain)")

// balanceTolerance bounds the acceptable global-balance residual
// max|πQ| relative to the largest rate in the chain.
const balanceTolerance = 1e-8

// StationaryDistribution solves the global balance equations πQ = 0 with
// Σπ = 1 for a recurrent chain and returns π indexed by StateID.
//
// The linear system replaces one balance equation with the normalization
// constraint (the balance equations are linearly dependent: rows of Q sum
// to zero). After solving, tiny negative entries from roundoff are clamped
// and the vector is renormalized; a residual check guards against silently
// returning nonsense for reducible chains.
func (c *Chain) StationaryDistribution() ([]float64, error) {
	n := c.Len()
	if n == 0 {
		return nil, ErrNotSolvable
	}
	if n == 1 {
		return []float64{1}, nil
	}
	q := c.Generator()
	// The balance equations Qᵀπ = 0 are rank-deficient by exactly one for
	// an irreducible chain (rows of Q sum to zero), and which equation is
	// redundant is not known in general once the chain also contains
	// zero-mass transient states (e.g. the drain state Redirect leaves
	// behind). Rather than guessing an equation to replace, append the
	// normalization Σπ = 1 as an extra row and solve the (n+1)×n system by
	// normal equations: AᵀA π = Aᵀb. The chains here are tiny and well
	// scaled, so the squared condition number is harmless.
	at := q.Transpose()
	ata := linalg.NewMatrix(n, n)
	atb := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += at.At(k, i) * at.At(k, j)
			}
			// Normalization row contributes 1·1 to every entry and 1 to b.
			ata.Set(i, j, s+1)
		}
		atb[i] = 1
	}
	pi, err := linalg.SolveSystem(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSolvable, err)
	}
	// Clamp roundoff negatives and renormalize.
	var sum float64
	for i, v := range pi {
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("%w: stationary probability %v for state %s", ErrNotSolvable, v, c.names[i])
			}
			pi[i] = 0
			v = 0
		}
		sum += v
	}
	if sum <= 0 {
		return nil, ErrNotSolvable
	}
	for i := range pi {
		pi[i] /= sum
	}
	if res := c.BalanceResidual(pi); res > balanceTolerance*(1+c.maxRate()) {
		return nil, fmt.Errorf("%w: balance residual %v", ErrNotSolvable, res)
	}
	return pi, nil
}

// BalanceResidual returns max |(πQ)_j|, a measure of how well π satisfies
// global balance. Exact stationary distributions give ≈0.
func (c *Chain) BalanceResidual(pi []float64) float64 {
	q := c.Generator()
	// πQ = (Qᵀ π)ᵀ
	v := q.Transpose().MulVec(pi)
	var max float64
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

func (c *Chain) maxRate() float64 {
	var max float64
	for _, row := range c.rates {
		for _, r := range row {
			if r > max {
				max = r
			}
		}
	}
	return max
}

// AbsorptionResult reports the absorption analysis of a transient chain.
type AbsorptionResult struct {
	// Occupancy[s] is the expected total time spent in transient state s
	// before absorption, starting from the requested start state. Entries
	// for absorbing states are zero.
	Occupancy []float64
	// MeanTime is the expected time to absorption (the sum of Occupancy).
	MeanTime float64
}

// Absorption computes expected sojourn times before absorption starting
// from `start`. Every state listed in `absorbing` is treated as absorbing
// regardless of any outgoing edges it may have (they are ignored).
//
// Mathematically: with Q_TT the generator restricted to transient states,
// the occupancy row vector τ satisfies τ·Q_TT = −e_start, i.e.
// Q_TTᵀ·τ = −e_start, and MeanTime = Σ τ.
func (c *Chain) Absorption(start StateID, absorbing ...StateID) (*AbsorptionResult, error) {
	n := c.Len()
	if n == 0 {
		return nil, ErrNotSolvable
	}
	c.checkID(start)
	isAbs := make([]bool, n)
	for _, a := range absorbing {
		c.checkID(a)
		isAbs[a] = true
	}
	if isAbs[start] {
		return &AbsorptionResult{Occupancy: make([]float64, n)}, nil
	}
	// Index map transient state → row in the reduced system.
	tIndex := make([]int, n)
	var transient []StateID
	for s := 0; s < n; s++ {
		if isAbs[s] {
			tIndex[s] = -1
			continue
		}
		tIndex[s] = len(transient)
		transient = append(transient, StateID(s))
	}
	m := len(transient)
	if m == 0 {
		return nil, ErrNotSolvable
	}
	// Build A = Q_TTᵀ and b = −e_start.
	a := linalg.NewMatrix(m, m)
	for _, s := range transient {
		row := c.rates[s]
		var exit float64
		for to, r := range row {
			exit += r
			if !isAbs[to] {
				// Qᵀ entry: column s, row to.
				a.Add(tIndex[to], tIndex[s], r)
			}
		}
		a.Add(tIndex[s], tIndex[s], -exit)
	}
	b := make([]float64, m)
	b[tIndex[start]] = -1
	tau, err := linalg.SolveSystem(a, b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSolvable, err)
	}
	occ := make([]float64, n)
	var total float64
	for i, s := range transient {
		v := tau[i]
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("%w: negative occupancy %v in state %s", ErrNotSolvable, v, c.names[s])
			}
			v = 0
		}
		occ[s] = v
		total += v
	}
	return &AbsorptionResult{Occupancy: occ, MeanTime: total}, nil
}

// HitProbability returns, for a transient chain, the probability that the
// chain starting at `start` is eventually absorbed in `target`, where
// `absorbing` lists all absorbing states (target must be among them).
// This is used by ablation studies; the paper's models have a single
// absorbing state so the probability is 1 there.
func (c *Chain) HitProbability(start, target StateID, absorbing ...StateID) (float64, error) {
	n := c.Len()
	c.checkID(start)
	c.checkID(target)
	isAbs := make([]bool, n)
	found := false
	for _, a := range absorbing {
		c.checkID(a)
		isAbs[a] = true
		if a == target {
			found = true
		}
	}
	if !found {
		return 0, fmt.Errorf("markov: target %s is not absorbing", c.names[target])
	}
	if start == target {
		return 1, nil
	}
	if isAbs[start] {
		return 0, nil
	}
	tIndex := make([]int, n)
	var transient []StateID
	for s := 0; s < n; s++ {
		if isAbs[s] {
			tIndex[s] = -1
			continue
		}
		tIndex[s] = len(transient)
		transient = append(transient, StateID(s))
	}
	m := len(transient)
	// Solve Q_TT·h = −R_target where R_target[s] = rate(s→target).
	a := linalg.NewMatrix(m, m)
	b := make([]float64, m)
	for _, s := range transient {
		row := c.rates[s]
		var exit float64
		for to, r := range row {
			exit += r
			if to == target {
				b[tIndex[s]] -= r
			} else if !isAbs[to] {
				a.Add(tIndex[s], tIndex[to], r)
			}
		}
		a.Add(tIndex[s], tIndex[s], -exit)
	}
	h, err := linalg.SolveSystem(a, b)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNotSolvable, err)
	}
	p := h[tIndex[start]]
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}
