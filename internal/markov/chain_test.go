package markov

import (
	"math"
	"testing"
)

func TestStateRegistration(t *testing.T) {
	c := NewChain()
	a := c.State("a")
	b := c.State("b")
	if a == b {
		t.Fatal("distinct names got same ID")
	}
	if got := c.State("a"); got != a {
		t.Fatal("re-registering returned a different ID")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Name(a) != "a" || c.Name(b) != "b" {
		t.Fatal("Name mismatch")
	}
	if id, ok := c.Lookup("b"); !ok || id != b {
		t.Fatal("Lookup failed for existing state")
	}
	if _, ok := c.Lookup("zzz"); ok {
		t.Fatal("Lookup found a nonexistent state")
	}
}

func TestAddTransitionAccumulates(t *testing.T) {
	c := NewChain()
	a, b := c.State("a"), c.State("b")
	c.AddTransition(a, b, 1.5)
	c.AddTransition(a, b, 2.5)
	if got := c.Rate(a, b); got != 4 {
		t.Fatalf("Rate = %v, want 4", got)
	}
	if got := c.ExitRate(a); got != 4 {
		t.Fatalf("ExitRate = %v, want 4", got)
	}
}

func TestAddTransitionZeroIgnored(t *testing.T) {
	c := NewChain()
	a, b := c.State("a"), c.State("b")
	c.AddTransition(a, b, 0)
	if got := c.Rate(a, b); got != 0 {
		t.Fatalf("Rate = %v, want 0", got)
	}
	if len(c.Transitions()) != 0 {
		t.Fatal("zero-rate edge was recorded")
	}
}

func TestAddTransitionRejectsBadRates(t *testing.T) {
	c := NewChain()
	a, b := c.State("a"), c.State("b")
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v did not panic", bad)
				}
			}()
			c.AddTransition(a, b, bad)
		}()
	}
}

func TestAddTransitionRejectsSelfLoop(t *testing.T) {
	c := NewChain()
	a := c.State("a")
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	c.AddTransition(a, a, 1)
}

func TestGeneratorRowsSumToZero(t *testing.T) {
	c := NewChain()
	a, b, d := c.State("a"), c.State("b"), c.State("d")
	c.AddTransition(a, b, 2)
	c.AddTransition(a, d, 3)
	c.AddTransition(b, a, 1)
	q := c.Generator()
	for i := 0; i < c.Len(); i++ {
		var sum float64
		for j := 0; j < c.Len(); j++ {
			sum += q.At(i, j)
		}
		if math.Abs(sum) > 1e-15 {
			t.Fatalf("row %d sums to %v, want 0", i, sum)
		}
	}
	if q.At(0, 0) != -5 {
		t.Fatalf("diagonal = %v, want -5", q.At(0, 0))
	}
}

func TestTransitionsSorted(t *testing.T) {
	c := NewChain()
	a, b, d := c.State("a"), c.State("b"), c.State("d")
	c.AddTransition(b, a, 1)
	c.AddTransition(a, d, 1)
	c.AddTransition(a, b, 1)
	tr := c.Transitions()
	if len(tr) != 3 {
		t.Fatalf("got %d transitions, want 3", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i-1].From > tr[i].From ||
			(tr[i-1].From == tr[i].From && tr[i-1].To >= tr[i].To) {
			t.Fatal("transitions not sorted")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	c := NewChain()
	a, b := c.State("a"), c.State("b")
	c.AddTransition(a, b, 1)
	cl := c.Clone()
	cl.AddTransition(a, b, 1)
	if c.Rate(a, b) != 1 {
		t.Fatal("Clone shares rate storage")
	}
}

func TestRedirect(t *testing.T) {
	// a → absorbing, b → absorbing; redirect absorbing into a.
	c := NewChain()
	a, b, abs := c.State("a"), c.State("b"), c.State("abs")
	c.AddTransition(a, b, 1)
	c.AddTransition(b, abs, 2)
	c.AddTransition(a, abs, 3)
	r := c.Redirect(abs, a)
	if got := r.Rate(b, a); got != 2 {
		t.Fatalf("redirected rate b→a = %v, want 2", got)
	}
	if got := r.Rate(b, abs); got != 0 {
		t.Fatalf("rate b→abs = %v, want 0 after redirect", got)
	}
	// a → abs would become a self-loop; it must be dropped.
	if got := r.Rate(a, abs); got != 0 {
		t.Fatalf("rate a→abs = %v, want 0 after redirect", got)
	}
	// Original chain untouched.
	if c.Rate(b, abs) != 2 {
		t.Fatal("Redirect modified the original chain")
	}
}

func TestRedirectIdentity(t *testing.T) {
	c := NewChain()
	a, b := c.State("a"), c.State("b")
	c.AddTransition(a, b, 1)
	r := c.Redirect(a, a)
	if r.Rate(a, b) != 1 {
		t.Fatal("identity redirect lost an edge")
	}
}
