// Package variant is the protocol-variant layer of the live signaling
// runtime: it names the mechanism bundle of each of the paper's five
// generic protocols (SS, SS+ER, SS+RT, SS+RTR, HS) as an explicit
// Profile, so the real Sender/Receiver/Session/Node stack can be switched
// between them with one knob instead of scattering protocol predicates
// through the runtime.
//
// A Profile is pure data — five mechanism switches — and deliberately
// knows nothing about timers or transports; signal.Config carries the
// timer values (refresh interval, timeout, retransmit/backoff, probe
// period) and the endpoints consult the profile for *which* mechanisms to
// run. The five canonical profiles mirror internal/singlehop's analytic
// protocol definitions exactly, which is what lets internal/exp
// cross-validate the live stack against the paper's models variant by
// variant.
package variant

import (
	"fmt"
	"strings"

	"softstate/internal/singlehop"
)

// Profile is one protocol's mechanism bundle.
type Profile struct {
	// Name is the paper's protocol name ("SS" … "HS") for canonical
	// profiles, or any label for a custom mix.
	Name string
	// Proto is the matching analytic protocol identifier, used for
	// model cross-validation and display.
	Proto singlehop.Protocol
	// Refresh enables soft-state lifetime semantics: the sender refreshes
	// every key each refresh interval (per key or via summary datagrams)
	// and the receiver removes state whose refreshes stop arriving
	// (state-timeout T).
	Refresh bool
	// ExplicitRemoval sends a removal message when the sender withdraws
	// state instead of letting it time out.
	ExplicitRemoval bool
	// ReliableTrigger acknowledges triggers and retransmits unacked ones
	// (with exponential backoff in this runtime).
	ReliableTrigger bool
	// ReliableRemoval acknowledges and retransmits removal messages.
	ReliableRemoval bool
	// HardState enables hard-state lifetime semantics at the receiver: no
	// state-timeout ever fires; orphaned state (a dead sender that can no
	// longer remove it) is detected by liveness probes and removed
	// explicitly — the paper's "external removal signal", made concrete.
	HardState bool
}

// canonical is the paper's five profiles in presentation order (Fig 1).
var canonical = [5]Profile{
	{Name: "SS", Proto: singlehop.SS, Refresh: true},
	{Name: "SS+ER", Proto: singlehop.SSER, Refresh: true, ExplicitRemoval: true},
	{Name: "SS+RT", Proto: singlehop.SSRT, Refresh: true, ReliableTrigger: true},
	{Name: "SS+RTR", Proto: singlehop.SSRTR, Refresh: true, ExplicitRemoval: true,
		ReliableTrigger: true, ReliableRemoval: true},
	{Name: "HS", Proto: singlehop.HS, ExplicitRemoval: true,
		ReliableTrigger: true, ReliableRemoval: true, HardState: true},
}

// For returns the canonical profile of a paper protocol.
func For(p singlehop.Protocol) Profile {
	for _, prof := range canonical {
		if prof.Proto == p {
			return prof
		}
	}
	// Unknown protocol values fall back to pure soft state, the paper's
	// baseline; Validate on a hand-built profile is the strict path.
	prof := canonical[0]
	prof.Proto = p
	return prof
}

// All returns the five canonical profiles in the paper's order, SS → HS.
func All() []Profile {
	out := make([]Profile, len(canonical))
	copy(out, canonical[:])
	return out
}

// Parse resolves a protocol name to its canonical profile. It accepts the
// paper spellings case-insensitively with "+", "-", "_", or nothing
// between mechanism tags: "SS+RTR", "ss-rtr", "ssrtr" all select SS+RTR;
// "hs" and "hardstate" select HS.
func Parse(name string) (Profile, error) {
	norm := strings.ToLower(name)
	for _, cut := range []string{"+", "-", "_", " "} {
		norm = strings.ReplaceAll(norm, cut, "")
	}
	switch norm {
	case "ss", "softstate":
		return canonical[0], nil
	case "sser":
		return canonical[1], nil
	case "ssrt":
		return canonical[2], nil
	case "ssrtr":
		return canonical[3], nil
	case "hs", "hardstate":
		return canonical[4], nil
	}
	return Profile{}, fmt.Errorf("variant: unknown protocol %q (want SS, SS+ER, SS+RT, SS+RTR, or HS)", name)
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	if p.Name != "" {
		return p.Name
	}
	return p.Mechanisms()
}

// Validate reports the first structural contradiction in a profile.
func (p Profile) Validate() error {
	if p.HardState && p.Refresh {
		return fmt.Errorf("variant: %s mixes hard-state lifetime with soft-state refresh", p)
	}
	if !p.HardState && !p.Refresh {
		return fmt.Errorf("variant: %s has no lifetime mechanism (neither refresh/timeout nor hard state)", p)
	}
	if p.ReliableRemoval && !p.ExplicitRemoval {
		return fmt.Errorf("variant: %s retransmits removals it never sends", p)
	}
	return nil
}

// Mechanisms renders the enabled mechanism set, e.g.
// "refresh+timeout, explicit-removal, reliable-trigger".
func (p Profile) Mechanisms() string {
	var parts []string
	if p.Refresh {
		parts = append(parts, "refresh+timeout")
	}
	if p.HardState {
		parts = append(parts, "hard-state+probe")
	}
	if p.ExplicitRemoval {
		parts = append(parts, "explicit-removal")
	}
	if p.ReliableTrigger {
		parts = append(parts, "reliable-trigger")
	}
	if p.ReliableRemoval {
		parts = append(parts, "reliable-removal")
	}
	if parts == nil {
		return "none"
	}
	return strings.Join(parts, ", ")
}
