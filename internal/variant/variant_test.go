package variant

import (
	"testing"

	"softstate/internal/singlehop"
)

// TestCanonicalProfilesMatchAnalyticPredicates: the live mechanism
// switches must agree with the analytic model's protocol predicates for
// every paper protocol — that equivalence is what the exp
// cross-validation experiments rest on.
func TestCanonicalProfilesMatchAnalyticPredicates(t *testing.T) {
	if got := len(All()); got != 5 {
		t.Fatalf("All() returned %d profiles, want 5", got)
	}
	for i, prof := range All() {
		proto := singlehop.Protocols()[i]
		if prof.Proto != proto {
			t.Fatalf("profile %d = %v, want %v (paper order)", i, prof.Proto, proto)
		}
		if prof.Refresh != proto.Refreshes() {
			t.Errorf("%s Refresh = %v, model says %v", prof, prof.Refresh, proto.Refreshes())
		}
		if prof.ExplicitRemoval != proto.ExplicitRemoval() {
			t.Errorf("%s ExplicitRemoval = %v, model says %v", prof, prof.ExplicitRemoval, proto.ExplicitRemoval())
		}
		if prof.ReliableTrigger != proto.ReliableTrigger() {
			t.Errorf("%s ReliableTrigger = %v, model says %v", prof, prof.ReliableTrigger, proto.ReliableTrigger())
		}
		if prof.ReliableRemoval != proto.ReliableRemoval() {
			t.Errorf("%s ReliableRemoval = %v, model says %v", prof, prof.ReliableRemoval, proto.ReliableRemoval())
		}
		if prof.HardState != (proto == singlehop.HS) {
			t.Errorf("%s HardState = %v", prof, prof.HardState)
		}
		if err := prof.Validate(); err != nil {
			t.Errorf("canonical profile %s invalid: %v", prof, err)
		}
		if For(proto) != prof {
			t.Errorf("For(%v) != canonical profile", proto)
		}
	}
}

func TestParseSpellings(t *testing.T) {
	cases := map[string]string{
		"SS": "SS", "ss": "SS", "softstate": "SS",
		"SS+ER": "SS+ER", "ss-er": "SS+ER", "sser": "SS+ER",
		"ss+rt": "SS+RT", "SS_RT": "SS+RT",
		"ss+rtr": "SS+RTR", "SSRTR": "SS+RTR",
		"hs": "HS", "HardState": "HS", "hard-state": "HS",
	}
	for in, want := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if p.Name != want {
			t.Errorf("Parse(%q) = %s, want %s", in, p.Name, want)
		}
	}
	if _, err := Parse("tcp"); err == nil {
		t.Error("Parse accepted an unknown protocol")
	}
}

func TestValidateRejectsContradictions(t *testing.T) {
	bad := []Profile{
		{Name: "both", Refresh: true, HardState: true},
		{Name: "neither"},
		{Name: "rel-removal-sans-removal", Refresh: true, ReliableRemoval: true},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a contradictory profile", p)
		}
	}
}
