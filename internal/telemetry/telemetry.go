// Package telemetry is the observability layer of the signaling runtime:
// a metrics registry of typed, atomic instruments (counters, gauges,
// log-bucketed latency histograms), a per-key lifecycle tracer, and the
// live paper-metric collectors (inconsistency ratio, datagrams/key/s)
// that turn the source paper's figure axes into continuously-computed
// properties of a running node.
//
// Design constraints, in order:
//
//  1. Zero-alloc, zero-lock hot path. Counter.Add and Histogram.Observe
//     are single atomic ops on pre-registered instruments; the registry
//     lock is taken only at registration and scrape time. Instruments are
//     value-embeddable (a struct field, not a heap object behind an
//     interface), so internal/signal's per-wire-type counters cost
//     exactly what its old bare atomic.Int64 array cost.
//  2. Optional everywhere. Every exported method is safe on a nil
//     receiver: a nil *Registry hands out working unregistered
//     instruments and a nil *Tracer records nothing, so the protocol
//     layers thread telemetry without branching on configuration.
//  3. Deterministic under the virtual clock. Scrapes sort, trace stamps
//     come from clock.Clock, and nothing reads the wall clock behind the
//     caller's back — a virtual-time run produces byte-identical
//     telemetry on every replay.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimension values (protocol variant, endpoint role,
// shard index) to an instrument.
type Labels map[string]string

// Opts names an instrument at registration.
type Opts struct {
	// Name is the metric name (Prometheus conventions: snake_case,
	// _total suffix on counters, _seconds unit suffix on histograms).
	Name string
	// Help is the one-line instrument description.
	Help string
	// Labels are the instrument's constant label values.
	Labels Labels
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, registered or not, and all methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// all methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates the registry's instrument slots.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels []labelPair // sorted by key
	id     string      // name + rendered labels, the registry identity
	kind   metricKind

	c *Counter
	g *Gauge
	f func() float64
	h *Histogram
}

type labelPair struct{ k, v string }

// Registry holds named instruments for scraping. All methods are safe for
// concurrent use and safe on a nil receiver (instruments are handed out
// unregistered, registration is a no-op), so components can be written
// against a Registry unconditionally.
type Registry struct {
	mu   sync.Mutex
	ms   []*metric
	byID map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*metric)}
}

// NewCounter creates and registers a counter.
func (r *Registry) NewCounter(o Opts) *Counter {
	c := &Counter{}
	r.RegisterCounter(o, c)
	return c
}

// RegisterCounter registers an existing counter — the path for counters
// embedded by value in another struct (internal/signal's per-wire-type
// array), which stay exactly as cheap as bare atomics.
func (r *Registry) RegisterCounter(o Opts, c *Counter) {
	r.register(&metric{kind: kindCounter, c: c}, o)
}

// NewGauge creates and registers a gauge.
func (r *Registry) NewGauge(o Opts) *Gauge {
	g := &Gauge{}
	r.register(&metric{kind: kindGauge, g: g}, o)
	return g
}

// GaugeFunc registers a gauge computed at scrape time — the zero-cost way
// to expose a value the component already maintains (table occupancy,
// live-key count, wheel depth). fn must be safe to call from any
// goroutine.
func (r *Registry) GaugeFunc(o Opts, fn func() float64) {
	if fn == nil {
		return
	}
	r.register(&metric{kind: kindGaugeFunc, f: fn}, o)
}

// NewHistogram creates and registers a log-bucketed duration histogram.
func (r *Registry) NewHistogram(o Opts) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(o, h)
	return h
}

// RegisterHistogram registers an existing histogram.
func (r *Registry) RegisterHistogram(o Opts, h *Histogram) {
	r.register(&metric{kind: kindHistogram, h: h}, o)
}

// register files m under o's identity. A second registration with an
// identical (name, labels) identity gains an automatic instance label so
// multi-endpoint processes (a relay's receiver and sender side, a chain
// of nodes sharing one registry) never collide or silently merge.
func (r *Registry) register(m *metric, o Opts) {
	if r == nil {
		return
	}
	m.name = o.Name
	m.help = o.Help
	m.labels = sortLabels(o.Labels)
	m.id = renderID(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.byID[m.id]; taken {
		for n := 2; ; n++ {
			labels := append(append([]labelPair(nil), m.labels...),
				labelPair{k: "instance", v: strconv.Itoa(n)})
			sort.Slice(labels, func(i, j int) bool { return labels[i].k < labels[j].k })
			id := renderID(m.name, labels)
			if _, taken := r.byID[id]; !taken {
				m.labels, m.id = labels, id
				break
			}
		}
	}
	r.byID[m.id] = m
	r.ms = append(r.ms, m)
}

func sortLabels(ls Labels) []labelPair {
	out := make([]labelPair, 0, len(ls))
	for k, v := range ls {
		out = append(out, labelPair{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

// renderID renders name{k="v",...} — the Prometheus series identity.
func renderID(name string, labels []labelPair) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, lp := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(lp.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(lp.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Sample is one instrument's scrape-time snapshot.
type Sample struct {
	// Name is the metric name; ID is the full series identity including
	// labels.
	Name, ID string
	Help     string
	// Kind is "counter", "gauge", or "histogram".
	Kind string
	// Value carries counter and gauge readings.
	Value float64
	// Hist carries histogram readings (nil otherwise).
	Hist *HistogramSnapshot
}

// Gather snapshots every instrument, sorted by series identity — the
// deterministic scrape order every exporter shares.
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.ms))
	copy(ms, r.ms)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].id < ms[j].id
	})
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, ID: m.id, Help: m.help}
		switch m.kind {
		case kindCounter:
			s.Kind, s.Value = "counter", float64(m.c.Value())
		case kindGauge:
			s.Kind, s.Value = "gauge", float64(m.g.Value())
		case kindGaugeFunc:
			s.Kind, s.Value = "gauge", m.f()
		case kindHistogram:
			snap := m.h.Snapshot()
			s.Kind, s.Hist = "histogram", &snap
		}
		out = append(out, s)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (durations in seconds, histograms as cumulative le buckets).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastName := ""
	for _, s := range r.Gather() {
		if s.Name != lastName {
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, s.Help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
			lastName = s.Name
		}
		if s.Hist == nil {
			fmt.Fprintf(&b, "%s %s\n", s.ID, formatFloat(s.Value))
			continue
		}
		bucketID := renameSeries(s.ID, s.Name, s.Name+"_bucket")
		cum := int64(0)
		for _, bk := range s.Hist.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s %d\n",
				withLabel(s.Name+"_bucket", bucketID, "le", formatFloat(float64(bk.UpperNs)/1e9)), cum)
		}
		// A scrape racing Observe can see a bucket increment before the
		// matching count increment; clamp +Inf so the series stays
		// cumulative-monotonic (a Prometheus format requirement).
		inf := s.Hist.Count
		if cum > inf {
			inf = cum
		}
		fmt.Fprintf(&b, "%s %d\n", withLabel(s.Name+"_bucket", bucketID, "le", "+Inf"), inf)
		fmt.Fprintf(&b, "%s %s\n", renameSeries(s.ID, s.Name, s.Name+"_sum"),
			formatFloat(float64(s.Hist.SumNs)/1e9))
		fmt.Fprintf(&b, "%s %d\n", renameSeries(s.ID, s.Name, s.Name+"_count"), s.Hist.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLabel injects one more label into a rendered series identity.
func withLabel(name, id, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if id == name { // no labels yet
		return name + "{" + extra + "}"
	}
	return strings.TrimSuffix(id, "}") + "," + extra + "}"
}

// renameSeries swaps the metric name inside a rendered identity (for the
// _bucket/_count/_sum suffixed histogram series).
func renameSeries(id, name, newName string) string {
	return newName + strings.TrimPrefix(id, name)
}

// WriteJSON renders the registry as one flat JSON object keyed by series
// identity — the expvar-style view. Histograms expose count, sum, and the
// p50/p90/p99 quantile estimates.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{")
	for i, s := range r.Gather() {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%q:", s.ID)
		if s.Hist == nil {
			b.WriteString(formatFloat(s.Value))
			continue
		}
		fmt.Fprintf(&b, `{"count":%d,"sum_ns":%d,"p50_ns":%d,"p90_ns":%d,"p99_ns":%d}`,
			s.Hist.Count, s.Hist.SumNs,
			s.Hist.Quantile(0.50), s.Hist.Quantile(0.90), s.Hist.Quantile(0.99))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders floats the way Prometheus expects: integral values
// without an exponent, everything else in shortest-roundtrip form.
func formatFloat(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
