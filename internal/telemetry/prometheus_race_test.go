package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusRacesRegistration hammers the exporter while other
// goroutines register new instruments and observe into a shared
// histogram. Under -race this is the data-race check; the assertions
// verify every scrape stays parseable.
func TestWritePrometheusRacesRegistration(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram(Opts{Name: "softstate_race_seconds", Help: "race test"})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.NewCounter(Opts{
				Name:   "softstate_race_total",
				Labels: Labels{"i": strconv.Itoa(i)},
			}).Inc()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	}()
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if !strings.Contains(sb.String(), "# TYPE softstate_race_seconds histogram") {
			t.Fatalf("scrape %d lost the histogram TYPE line", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPrometheusBucketMonotonicity scrapes a histogram under concurrent
// Observe load and asserts the _bucket series is cumulative-monotonic
// with +Inf as the maximum — the format invariant scrapers depend on.
func TestPrometheusBucketMonotonicity(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram(Opts{Name: "softstate_mono_seconds", Help: "monotonicity test"})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(time.Duration((i+w)%100000) * time.Microsecond)
			}
		}(w)
	}
	for scrape := 0; scrape < 100; scrape++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		assertMonotonicBuckets(t, sb.String(), "softstate_mono_seconds_bucket")
	}
	close(stop)
	wg.Wait()

	// Quiescent spot check: +Inf equals _count equals total observations.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	inf, count := int64(-1), int64(-1)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "softstate_mono_seconds_bucket{le=\"+Inf\"}") {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &inf)
		}
		if strings.HasPrefix(line, "softstate_mono_seconds_count ") {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count)
		}
	}
	if inf < 0 || inf != count || inf != h.Count() {
		t.Fatalf("quiescent +Inf=%d _count=%d Count()=%d", inf, count, h.Count())
	}
}

// assertMonotonicBuckets parses one exposition and checks each _bucket
// series value is >= its predecessor, ending at +Inf.
func assertMonotonicBuckets(t *testing.T, text, prefix string) {
	t.Helper()
	prev := int64(-1)
	sawInf := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix+"{") {
			continue
		}
		if sawInf {
			t.Fatalf("bucket line after +Inf: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("non-monotonic buckets: %q after %d\n%s", line, prev, text)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatalf("no +Inf bucket in exposition:\n%s", text)
	}
}
