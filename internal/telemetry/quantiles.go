package telemetry

import "time"

// HistogramQuantiles extracts quantile estimates for the named histogram
// from a gathered sample set. When several series share the name (e.g.
// instance-labeled copies), their snapshots are merged bucket-wise
// before estimating, so the result reflects the whole population. The
// second return is false when no non-empty histogram with that name
// exists.
func HistogramQuantiles(samples []Sample, name string, qs ...float64) ([]time.Duration, bool) {
	var merged HistogramSnapshot
	byUpper := map[int64]int{}
	for _, s := range samples {
		if s.Name != name || s.Hist == nil || s.Hist.Count == 0 {
			continue
		}
		merged.Count += s.Hist.Count
		merged.SumNs += s.Hist.SumNs
		for _, b := range s.Hist.Buckets {
			if i, ok := byUpper[b.UpperNs]; ok {
				merged.Buckets[i].Count += b.Count
			} else {
				byUpper[b.UpperNs] = len(merged.Buckets)
				merged.Buckets = append(merged.Buckets, b)
			}
		}
	}
	if merged.Count == 0 {
		return nil, false
	}
	// Bucket upper bounds must be ascending for Quantile's cumulative
	// walk; merging preserves each snapshot's order but not the global
	// one, so restore it.
	for i := 1; i < len(merged.Buckets); i++ {
		for j := i; j > 0 && merged.Buckets[j].UpperNs < merged.Buckets[j-1].UpperNs; j-- {
			merged.Buckets[j], merged.Buckets[j-1] = merged.Buckets[j-1], merged.Buckets[j]
		}
	}
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = merged.Quantile(q)
	}
	return out, true
}

// Quantiles is the Registry-level convenience: gather, then estimate the
// named histogram's quantiles. Nil-safe like every Registry method.
func (r *Registry) Quantiles(name string, qs ...float64) ([]time.Duration, bool) {
	if r == nil {
		return nil, false
	}
	return HistogramQuantiles(r.Gather(), name, qs...)
}
