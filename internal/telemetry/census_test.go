package telemetry

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
)

// mapSource builds a CensusSource over a key→sum map with a fixed
// bucket function, mirroring how statetable-backed sources behave.
func mapSource(name string, buckets int, keys map[string]uint64) CensusSource {
	bucketOf := func(key string) int {
		h := keyHash(key)
		return int(h % uint32(buckets))
	}
	return CensusSource{
		Name: name,
		Sums: func() ([]uint64, error) {
			out := make([]uint64, buckets)
			for k, s := range keys {
				out[bucketOf(k)] ^= s
			}
			return out, nil
		},
		Bucket: func(b int) ([]KeyDigest, error) {
			var out []KeyDigest
			for k, s := range keys {
				if bucketOf(k) == b {
					out = append(out, KeyDigest{Key: k, Sum: s})
				}
			}
			return out, nil
		},
	}
}

func TestRunCensusResolvesDivergence(t *testing.T) {
	intent := map[string]uint64{"a": 1, "b": 2, "c": 3, "only/intent": 9}
	held := map[string]uint64{"a": 1, "b": 2, "c": 33, "only/held": 7}
	rep := RunCensus([]CensusLink{{
		Name:   "hop1",
		Intent: mapSource("s", 8, intent),
		Held:   mapSource("r", 8, held),
	}})
	if rep.Failed != 0 {
		t.Fatalf("failed links: %+v", rep.Links)
	}
	want := []string{"c", "only/held", "only/intent"}
	if !reflect.DeepEqual(rep.Links[0].Divergent, want) {
		t.Fatalf("divergent = %v, want %v", rep.Links[0].Divergent, want)
	}
	if rep.Divergent != 3 || rep.Converged() {
		t.Fatalf("report totals: %+v", rep)
	}
	if rep.Links[0].MismatchedBuckets == 0 || rep.Links[0].Buckets != 8 {
		t.Fatalf("bucket accounting: %+v", rep.Links[0])
	}

	// Identical tables converge with zero detail-round work.
	rep = RunCensus([]CensusLink{{
		Intent: mapSource("s", 8, intent),
		Held:   mapSource("r", 8, intent),
	}})
	if !rep.Converged() || rep.Links[0].IntentKeys != 0 || rep.Links[0].HeldKeys != 0 {
		t.Fatalf("identical tables: %+v", rep.Links[0])
	}
}

func TestRunCensusXORCollision(t *testing.T) {
	// Two keys in the same bucket whose sums XOR to the same total on
	// both sides but differ individually: the summary round alone cannot
	// see it, and that is the documented resolution (a census detects
	// per-bucket digest differences, not XOR-colliding swaps). Assert
	// the behavior so a future strengthening shows up as a test change.
	intent := map[string]uint64{"x": 5, "y": 6}
	held := map[string]uint64{"x": 6, "y": 5}
	rep := RunCensus([]CensusLink{{
		Intent: mapSource("s", 1, intent),
		Held:   mapSource("r", 1, held),
	}})
	if rep.Links[0].MismatchedBuckets != 0 {
		t.Fatalf("XOR-colliding bucket reported mismatched: %+v", rep.Links[0])
	}
}

func TestRunCensusErrors(t *testing.T) {
	bad := CensusSource{
		Name:   "down",
		Sums:   func() ([]uint64, error) { return nil, errors.New("peer timeout") },
		Bucket: func(int) ([]KeyDigest, error) { return nil, errors.New("peer timeout") },
	}
	ok := mapSource("up", 4, map[string]uint64{"k": 1})
	rep := RunCensus([]CensusLink{{Name: "l", Intent: ok, Held: bad}})
	if rep.Failed != 1 || rep.Links[0].Err == "" || rep.Converged() {
		t.Fatalf("failed exchange: %+v", rep)
	}
	// Bucket-count mismatch is an error, not a diff.
	other := mapSource("r", 8, map[string]uint64{"k": 1})
	rep = RunCensus([]CensusLink{{Intent: ok, Held: other}})
	if rep.Failed != 1 {
		t.Fatalf("bucket mismatch not failed: %+v", rep.Links[0])
	}
}

func TestAuditorGaugeAndHTTP(t *testing.T) {
	reg := NewRegistry()
	a := NewAuditor()
	a.Register(reg, Labels{"role": "test"})
	gauge := func() float64 {
		for _, s := range reg.Gather() {
			if s.Name == "softstate_divergent_keys" {
				return s.Value
			}
		}
		t.Fatal("gauge not registered")
		return 0
	}
	if g := gauge(); g != -1 {
		t.Fatalf("pre-census gauge = %v, want -1", g)
	}
	a.AddLink(CensusLink{
		Name:   "hop1",
		Intent: mapSource("s", 4, map[string]uint64{"a": 1, "b": 2}),
		Held:   mapSource("r", 4, map[string]uint64{"a": 1}),
	})
	rr := httptest.NewRecorder()
	a.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/census", nil))
	var rep CensusReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("census body: %v\n%s", err, rr.Body.String())
	}
	if rep.Divergent != 1 || len(rep.Links) != 1 || rep.Links[0].Divergent[0] != "b" {
		t.Fatalf("served report: %+v", rep)
	}
	if g := gauge(); g != 1 {
		t.Fatalf("post-census gauge = %v, want 1", g)
	}
	if last := a.Last(); last == nil || last.Seq != 1 {
		t.Fatalf("last report: %+v", last)
	}
}

func TestTracerSampled(t *testing.T) {
	var nilT *Tracer
	if nilT.Sampled("k") {
		t.Fatal("nil tracer samples")
	}
	all := NewTracer(TracerConfig{SampleEvery: 1})
	if !all.Sampled("anything") || !all.Sampled("") {
		t.Fatal("SampleEvery=1 must sample every key")
	}
	some := NewTracer(TracerConfig{SampleEvery: 64})
	hit, miss := false, false
	for i := 0; i < 10000 && (!hit || !miss); i++ {
		if some.Sampled(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i))) {
			hit = true
		} else {
			miss = true
		}
	}
	if !hit || !miss {
		t.Fatalf("SampleEvery=64: hit=%v miss=%v", hit, miss)
	}
	// Sampled and Record agree: a sampled key's events are retained.
	some2 := NewTracer(TracerConfig{SampleEvery: 64})
	for i := 0; i < 1000; i++ {
		key := "flow/" + string(rune('a'+i%26)) + string(rune(i))
		some2.Record(TraceTrigger, key, uint64(i), nil)
		want := 0
		if some2.Sampled(key) {
			want = 1
		}
		got := 0
		for _, ev := range some2.Events() {
			if ev.Key == key {
				got++
			}
		}
		if got != want {
			t.Fatalf("key %q: recorded %d events, Sampled=%v", key, got, want)
		}
	}
}

func TestTraceHandlerNewestFirst(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8})
	for i := 0; i < 12; i++ { // wraps the ring
		tr.Record(TraceTrigger, "k", uint64(i), nil)
	}
	h := TraceHandler(tr)
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/debug/trace.json?n=3", nil))
	var out struct {
		Retained    int    `json:"retained"`
		Overwritten uint64 `json:"overwritten"`
		Events      []struct {
			Kind string `json:"kind"`
			Seq  uint64 `json:"seq"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("trace body: %v\n%s", err, rr.Body.String())
	}
	if out.Retained != 8 || out.Overwritten != 4 {
		t.Fatalf("ring accounting: %+v", out)
	}
	if len(out.Events) != 3 {
		t.Fatalf("n=3 returned %d events", len(out.Events))
	}
	for i, want := range []uint64{11, 10, 9} { // newest first
		if out.Events[i].Seq != want || out.Events[i].Kind != "trigger" {
			t.Fatalf("event %d = %+v, want seq %d", i, out.Events[i], want)
		}
	}
}
