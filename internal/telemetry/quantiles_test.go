package telemetry

import (
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram(Opts{Name: "softstate_install_ack_seconds"})
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}

	qs, ok := reg.Quantiles("softstate_install_ack_seconds", 0.50, 0.99)
	if !ok {
		t.Fatal("histogram exists and is non-empty")
	}
	if len(qs) != 2 {
		t.Fatalf("want 2 quantiles, got %d", len(qs))
	}
	if qs[0] <= 0 || qs[0] > 10*time.Millisecond {
		t.Fatalf("p50 should sit near 1ms, got %v", qs[0])
	}
	if qs[1] < 100*time.Millisecond {
		t.Fatalf("p99 should reach the 100ms tail, got %v", qs[1])
	}
	if qs[1] <= qs[0] {
		t.Fatalf("p99 (%v) must exceed p50 (%v)", qs[1], qs[0])
	}
}

func TestHistogramQuantilesMergesInstances(t *testing.T) {
	reg := NewRegistry()
	// Same Opts twice → instance-label bump, two series, one name.
	h1 := reg.NewHistogram(Opts{Name: "dup_seconds"})
	h2 := reg.NewHistogram(Opts{Name: "dup_seconds"})
	h1.Observe(1 * time.Millisecond)
	h2.Observe(1 * time.Second)

	qs, ok := HistogramQuantiles(reg.Gather(), "dup_seconds", 1.0)
	if !ok {
		t.Fatal("merged histogram should be non-empty")
	}
	if qs[0] < time.Second {
		t.Fatalf("max quantile must see the second series' tail, got %v", qs[0])
	}
}

func TestHistogramQuantilesMissing(t *testing.T) {
	reg := NewRegistry()
	reg.NewHistogram(Opts{Name: "empty_seconds"}) // registered but never observed
	if _, ok := reg.Quantiles("empty_seconds", 0.5); ok {
		t.Fatal("empty histogram must report !ok")
	}
	if _, ok := reg.Quantiles("absent_seconds", 0.5); ok {
		t.Fatal("absent histogram must report !ok")
	}
	var nilReg *Registry
	if _, ok := nilReg.Quantiles("x", 0.5); ok {
		t.Fatal("nil registry must report !ok")
	}
}
