package telemetry

import (
	"runtime"
	"time"
)

// RegisterProcessMetrics adds process self-metrics to a registry:
//
//	process_uptime_seconds         seconds since registration
//	process_goroutines             live goroutine count
//	process_heap_inuse_bytes       runtime.MemStats.HeapInuse
//	process_heap_objects           runtime.MemStats.HeapObjects
//	process_gc_cycles_total        completed GC cycles
//
// Everything is computed at scrape time (runtime.ReadMemStats per
// scrape), so an idle process pays nothing between scrapes. These read
// the real runtime regardless of any virtual clock — they describe the
// process, not the simulation — so they are excluded from deterministic
// artifact comparisons.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	r.GaugeFunc(Opts{
		Name: "process_uptime_seconds",
		Help: "Seconds since process metrics were registered.",
	}, func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc(Opts{
		Name: "process_goroutines",
		Help: "Live goroutine count.",
	}, func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(Opts{
		Name: "process_heap_inuse_bytes",
		Help: "Bytes in in-use heap spans (runtime.MemStats.HeapInuse).",
	}, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapInuse)
	})
	r.GaugeFunc(Opts{
		Name: "process_heap_objects",
		Help: "Live heap objects (runtime.MemStats.HeapObjects).",
	}, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapObjects)
	})
	r.GaugeFunc(Opts{
		Name: "process_gc_cycles_total",
		Help: "Completed garbage collection cycles.",
	}, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
}
