package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// The convergence auditor. A census compares the state a sender intends
// a peer to hold against the state the peer actually holds, using the
// incremental per-bucket digests internal/statetable maintains: one
// O(buckets) summary comparison finds the mismatched buckets, then a
// per-bucket key listing resolves each mismatch down to the exact
// divergent keys. Both sides of a link expose the same two-round surface
// (CensusSource), whether the table is in-process or behind the wire's
// TypeDigest exchange, so the auditor is indifferent to topology: a
// five-hop chain is just four links. Per-link agreement composes — if
// every adjacent link agrees, the chain has converged end to end.

// KeyDigest is one key's individual digest contribution.
type KeyDigest struct {
	Key string `json:"key"`
	Sum uint64 `json:"sum"`
}

// CensusSource is one table's digest read surface. Sums returns the
// per-bucket XOR sums (O(buckets): the table maintains them on every
// mutation); Bucket lists the keys contributing to one bucket with their
// individual digests. Remote tables answer both via the wire digest
// exchange; either call may fail (peer down, census timeout).
type CensusSource struct {
	// Name identifies the table in reports ("sender@addr", "receiver").
	Name string
	// Sums returns the current per-bucket digest sums.
	Sums func() ([]uint64, error)
	// Bucket returns the keys contributing to bucket b.
	Bucket func(b int) ([]KeyDigest, error)
}

// CensusLink pairs a sender's intended state with the downstream state
// it signals into.
type CensusLink struct {
	// Name identifies the link in reports ("hop1", "a->b").
	Name string
	// Intent is the upstream sender's table, Held the downstream
	// receiver's.
	Intent, Held CensusSource
}

// LinkReport is one link's census outcome.
type LinkReport struct {
	Name string `json:"name"`
	// Buckets is the compared bucket count, MismatchedBuckets how many
	// disagreed on the summary round.
	Buckets           int `json:"buckets"`
	MismatchedBuckets int `json:"mismatched_buckets"`
	// IntentKeys/HeldKeys count the keys listed while resolving
	// mismatched buckets (0 when the summaries already agreed).
	IntentKeys int `json:"intent_keys"`
	HeldKeys   int `json:"held_keys"`
	// Divergent lists the resolved divergent keys, sorted: keys present
	// on exactly one side, or present on both with different digests.
	Divergent []string `json:"divergent"`
	// Err records a failed exchange; the link's divergence is then
	// unknown and excluded from the report totals.
	Err string `json:"err,omitempty"`
}

// CensusReport is one complete census over every registered link.
type CensusReport struct {
	// Seq numbers censuses from the same auditor.
	Seq   uint64       `json:"seq"`
	Links []LinkReport `json:"links"`
	// Divergent is the total divergent-key count across links.
	Divergent int `json:"divergent_keys"`
	// Failed counts links whose exchange errored.
	Failed int `json:"failed_links"`
}

// Converged reports whether every link completed its exchange and
// resolved zero divergent keys.
func (r *CensusReport) Converged() bool {
	return r != nil && r.Failed == 0 && r.Divergent == 0
}

// censusLink runs the two-round exchange for one link.
func censusLink(l CensusLink) LinkReport {
	rep := LinkReport{Name: l.Name, Divergent: []string{}}
	is, err := l.Intent.Sums()
	if err != nil {
		rep.Err = fmt.Sprintf("%s: %v", l.Intent.Name, err)
		return rep
	}
	hs, err := l.Held.Sums()
	if err != nil {
		rep.Err = fmt.Sprintf("%s: %v", l.Held.Name, err)
		return rep
	}
	if len(is) != len(hs) {
		rep.Err = fmt.Sprintf("bucket count mismatch: %s has %d, %s has %d",
			l.Intent.Name, len(is), l.Held.Name, len(hs))
		return rep
	}
	rep.Buckets = len(is)
	for b := range is {
		if is[b] == hs[b] {
			continue
		}
		rep.MismatchedBuckets++
		ik, err := l.Intent.Bucket(b)
		if err != nil {
			rep.Err = fmt.Sprintf("%s bucket %d: %v", l.Intent.Name, b, err)
			return rep
		}
		hk, err := l.Held.Bucket(b)
		if err != nil {
			rep.Err = fmt.Sprintf("%s bucket %d: %v", l.Held.Name, b, err)
			return rep
		}
		rep.IntentKeys += len(ik)
		rep.HeldKeys += len(hk)
		intent := make(map[string]uint64, len(ik))
		for _, kd := range ik {
			intent[kd.Key] = kd.Sum
		}
		for _, kd := range hk {
			sum, ok := intent[kd.Key]
			if ok && sum == kd.Sum {
				delete(intent, kd.Key) // converged
				continue
			}
			if ok {
				delete(intent, kd.Key)
			}
			rep.Divergent = append(rep.Divergent, kd.Key) // held-only or sum mismatch
		}
		for key := range intent { // intent-only
			rep.Divergent = append(rep.Divergent, key)
		}
	}
	sort.Strings(rep.Divergent)
	return rep
}

// RunCensus runs one census over the given links.
func RunCensus(links []CensusLink) *CensusReport {
	rep := &CensusReport{Links: make([]LinkReport, 0, len(links))}
	for _, l := range links {
		lr := censusLink(l)
		if lr.Err != "" {
			rep.Failed++
		}
		rep.Divergent += len(lr.Divergent)
		rep.Links = append(rep.Links, lr)
	}
	return rep
}

// Auditor owns a set of links and runs censuses over them, retaining the
// latest report for scraping. All methods are safe for concurrent use
// and safe on a nil receiver, matching the package convention.
type Auditor struct {
	mu    sync.Mutex
	links []CensusLink
	seq   atomic.Uint64
	last  atomic.Pointer[CensusReport]
	runs  Counter
}

// NewAuditor returns an auditor with no links.
func NewAuditor() *Auditor { return &Auditor{} }

// AddLink registers a link for subsequent censuses.
func (a *Auditor) AddLink(l CensusLink) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.links = append(a.links, l)
	a.mu.Unlock()
}

// Run executes one census over the registered links and retains the
// report.
func (a *Auditor) Run() *CensusReport {
	if a == nil {
		return &CensusReport{Links: []LinkReport{}}
	}
	a.mu.Lock()
	links := make([]CensusLink, len(a.links))
	copy(links, a.links)
	a.mu.Unlock()
	rep := RunCensus(links)
	rep.Seq = a.seq.Add(1)
	a.last.Store(rep)
	a.runs.Inc()
	return rep
}

// Last returns the most recent report (nil before the first Run).
func (a *Auditor) Last() *CensusReport {
	if a == nil {
		return nil
	}
	return a.last.Load()
}

// Register exposes the auditor on a registry:
//
//	softstate_divergent_keys   divergent keys in the latest census
//	                           (-1 until a census has run)
//	softstate_census_failed_links  links whose latest exchange errored
//	softstate_census_runs_total    censuses executed
func (a *Auditor) Register(r *Registry, labels Labels) {
	if a == nil || r == nil {
		return
	}
	r.GaugeFunc(Opts{
		Name:   "softstate_divergent_keys",
		Help:   "Divergent keys found by the latest convergence census (-1 before the first census).",
		Labels: labels,
	}, func() float64 {
		rep := a.Last()
		if rep == nil {
			return -1
		}
		return float64(rep.Divergent)
	})
	r.GaugeFunc(Opts{
		Name:   "softstate_census_failed_links",
		Help:   "Links whose digest exchange failed in the latest census.",
		Labels: labels,
	}, func() float64 {
		return float64(a.Last().failedOrZero())
	})
	r.RegisterCounter(Opts{
		Name:   "softstate_census_runs_total",
		Help:   "Convergence censuses executed.",
		Labels: labels,
	}, &a.runs)
}

func (r *CensusReport) failedOrZero() int {
	if r == nil {
		return 0
	}
	return r.Failed
}

// ServeHTTP implements the /debug/census endpoint: each GET runs a fresh
// census (the live view) and returns the JSON report.
func (a *Auditor) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	rep := a.Run()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}
