package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket i holds observations whose duration in
// nanoseconds has bit length i+histMinBits+1, i.e. power-of-two bucket
// boundaries from 2^histMinBits ns (≈1 µs — below one statetable wheel
// tick, finer than any latency this runtime distinguishes) up to
// 2^histMaxBits ns (≈9.5 h). Everything below the first boundary lands in
// bucket 0, everything above the last in the overflow bucket.
const (
	histMinBits = 10 // 2^10 ns ≈ 1.02 µs
	histMaxBits = 45 // 2^45 ns ≈ 9.77 h
	histBuckets = histMaxBits - histMinBits + 2
)

// Histogram is a log-bucketed duration histogram: Observe is two atomic
// increments and a bit-length computation — no locks, no allocation, no
// floating point — so it can sit on per-datagram paths. Bucket boundaries
// are powers of two from ≈1 µs to ≈9.8 h, giving better-than-2× relative
// error everywhere, which is all a latency distribution needs. The zero
// value is ready to use; all methods are nil-safe.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d)) // 2^(b-1) <= d < 2^b for d > 0
	switch {
	case b <= histMinBits:
		return 0
	case b > histMaxBits:
		return histBuckets - 1
	default:
		return b - histMinBits
	}
}

// bucketUpperNs returns bucket i's inclusive upper bound in nanoseconds.
func bucketUpperNs(i int) int64 {
	return int64(1) << (histMinBits + i)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the recorded
// distribution, as the upper bound of the bucket holding the q-th
// observation — an overestimate by at most 2×, matching the bucket
// resolution. It returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Bucket is one histogram bucket's snapshot: the count of observations at
// or below UpperNs and above the previous bucket's bound.
type Bucket struct {
	UpperNs int64
	Count   int64
}

// HistogramSnapshot is a consistent-enough point-in-time copy (buckets
// are read individually; a scrape racing observations may be off by the
// in-flight ones, never corrupt).
type HistogramSnapshot struct {
	Count   int64
	SumNs   int64
	Buckets []Bucket // only buckets up to the last non-empty one
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{Count: h.count.Load(), SumNs: h.sumNs.Load()}
	last := -1
	var counts [histBuckets]int64
	for i := range h.buckets {
		if counts[i] = h.buckets[i].Load(); counts[i] > 0 {
			last = i
		}
	}
	snap.Buckets = make([]Bucket, 0, last+1)
	for i := 0; i <= last; i++ {
		snap.Buckets = append(snap.Buckets, Bucket{UpperNs: bucketUpperNs(i), Count: counts[i]})
	}
	return snap
}

// Quantile estimates the q-quantile from a snapshot; see
// Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return time.Duration(b.UpperNs)
		}
	}
	return time.Duration(s.Buckets[len(s.Buckets)-1].UpperNs)
}
