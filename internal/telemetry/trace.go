package telemetry

import (
	"fmt"
	"net"
	"sync"
	"time"

	"softstate/internal/clock"
)

// TraceKind classifies one lifecycle trace event. The kinds cover a key's
// whole life at both endpoint roles: the sender's datagram-level actions
// (trigger, retransmit, refresh, summary, removal, the terminal ack) and
// the receiver's state transitions (install, expiry, orphan, removal).
type TraceKind uint8

// Lifecycle trace kinds.
const (
	// TraceInstall: the receiver created state for the key.
	TraceInstall TraceKind = iota
	// TraceTrigger: the sender transmitted a trigger (install/update).
	TraceTrigger
	// TraceRetransmit: the sender retransmitted an unacked trigger or
	// removal.
	TraceRetransmit
	// TraceAck: the sender saw the ack completing its latest trigger.
	TraceAck
	// TraceRefresh: the sender transmitted a per-key refresh.
	TraceRefresh
	// TraceSummary: the sender transmitted one summary-refresh datagram
	// (Seq carries the key count, Key is empty).
	TraceSummary
	// TraceExpiry: receiver state timed out.
	TraceExpiry
	// TraceOrphan: the hard-state receiver removed probe-dead state.
	TraceOrphan
	// TraceRemoval: state was removed by explicit signaling (either role).
	TraceRemoval
	// TraceHop: a datagram carrying a hop-propagated trace context
	// arrived (Seq carries the hop count).
	TraceHop
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceInstall:
		return "install"
	case TraceTrigger:
		return "trigger"
	case TraceRetransmit:
		return "retransmit"
	case TraceAck:
		return "ack"
	case TraceRefresh:
		return "refresh"
	case TraceSummary:
		return "summary"
	case TraceExpiry:
		return "expiry"
	case TraceOrphan:
		return "orphan"
	case TraceRemoval:
		return "removal"
	case TraceHop:
		return "hop"
	default:
		return "unknown"
	}
}

// TraceEvent is one recorded lifecycle step. All fields are plain values,
// so reflect.DeepEqual across two same-seed virtual runs is the
// determinism check.
type TraceEvent struct {
	// At is the clock offset from the tracer's creation — under a virtual
	// clock, an exact simulated timestamp identical across replays.
	At   time.Duration
	Kind TraceKind
	Key  string
	Seq  uint64
	// Peer is the remote address the event concerns ("" when unknown).
	Peer string
}

// String implements fmt.Stringer.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("%12s %-10s key=%q seq=%d peer=%s",
		ev.At, ev.Kind, ev.Key, ev.Seq, ev.Peer)
}

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Capacity is the ring size (default 4096). Once full, new events
	// overwrite the oldest; Overwritten counts the loss.
	Capacity int
	// SampleEvery keeps only keys whose hash is ≡ 0 mod SampleEvery
	// (0 and 1 keep every key). Keyless events (summary datagrams) are
	// always kept. Sampling is by key, not by event, so a sampled key's
	// lifecycle stays complete — the property per-step invariant checking
	// needs.
	SampleEvery uint32
	// Sink, when set, receives every recorded event synchronously (after
	// sampling, before the ring). It must not block and must not call
	// back into the endpoint that emitted it.
	Sink func(TraceEvent)
	// Clock stamps events (clock.System when nil); pass the run's
	// *clock.Virtual for deterministic traces.
	Clock clock.Clock
}

// Tracer records per-key lifecycle events into a fixed-size ring buffer.
// A nil *Tracer records nothing, so the protocol layers call Record
// unconditionally; when tracing is off the cost is one predictable
// branch. Recording allocates nothing beyond the peer-address string.
type Tracer struct {
	clk    clock.Clock
	born   time.Time
	sample uint32
	sink   func(TraceEvent)

	mu      sync.Mutex
	ring    []TraceEvent
	next    int // write cursor
	wrapped bool
	dropped uint64
}

// NewTracer creates a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	clk := clock.Or(cfg.Clock)
	return &Tracer{
		clk:    clk,
		born:   clk.Now(),
		sample: cfg.SampleEvery,
		sink:   cfg.Sink,
		ring:   make([]TraceEvent, cfg.Capacity),
	}
}

// Sampled reports whether events for key would be recorded — the
// predicate the signaling layer uses to decide whether to stamp an
// outgoing datagram with a trace context, so wire-level trace sampling
// follows the tracer's own by-key sampling. Nil-safe: a nil tracer
// samples nothing.
func (t *Tracer) Sampled(key string) bool {
	if t == nil {
		return false
	}
	return t.sample <= 1 || key == "" || keyHash(key)%t.sample == 0
}

// keyHash is FNV-1a, inlined so the tracer needs no other runtime
// package.
func keyHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Record captures one lifecycle event. Safe on a nil receiver and from
// any goroutine (including under state-table shard locks: the tracer
// mutex is a leaf).
func (t *Tracer) Record(kind TraceKind, key string, seq uint64, peer net.Addr) {
	if t == nil {
		return
	}
	if t.sample > 1 && key != "" && keyHash(key)%t.sample != 0 {
		return
	}
	ev := TraceEvent{At: t.clk.Since(t.born), Kind: kind, Key: key, Seq: seq}
	if peer != nil {
		ev.Peer = peer.String()
	}
	if t.sink != nil {
		t.sink(ev)
	}
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]TraceEvent, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]TraceEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.ring)
	}
	return t.next
}

// Overwritten reports how many events the ring has dropped to make room.
func (t *Tracer) Overwritten() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// KindCounts tallies the retained events per kind — the digest demos and
// replay checks print.
func (t *Tracer) KindCounts() map[TraceKind]int {
	out := make(map[TraceKind]int)
	for _, ev := range t.Events() {
		out[ev.Kind]++
	}
	return out
}
