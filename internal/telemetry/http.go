package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewMux builds the introspection handler signald serves on -metrics-addr:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  the same snapshot as a flat JSON object
//	/debug/vars    standard expvar (cmdline, memstats, plus the registry
//	               under the "softstate" key)
//	/debug/pprof/  standard runtime profiles
//
// Handlers gather on demand; nothing is cached between scrapes.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	// expvar's default handler is bound to DefaultServeMux; rebuild the
	// same output here so the metrics listener stays self-contained.
	mux.HandleFunc("/debug/vars", expvarHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// traceJSONEvent is the /debug/trace.json wire shape for one event.
type traceJSONEvent struct {
	AtNs int64  `json:"at_ns"`
	Kind string `json:"kind"`
	Key  string `json:"key"`
	Seq  uint64 `json:"seq"`
	Peer string `json:"peer,omitempty"`
}

// TraceHandler serves a tracer's retained ring as JSON, newest first:
//
//	/debug/trace.json?n=100
//
// n bounds the event count (default and maximum: the full ring). The
// response carries the ring occupancy and overwrite count so scrapers
// can tell how much history survived.
func TraceHandler(t *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		evs := t.Events()
		// Newest first: the tail of the ring is the most recent.
		for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
			evs[i], evs[j] = evs[j], evs[i]
		}
		if s := req.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(evs) {
				evs = evs[:n]
			}
		}
		out := struct {
			Retained    int              `json:"retained"`
			Overwritten uint64           `json:"overwritten"`
			Events      []traceJSONEvent `json:"events"`
		}{Retained: t.Len(), Overwritten: t.Overwritten(), Events: make([]traceJSONEvent, 0, len(evs))}
		for _, ev := range evs {
			out.Events = append(out.Events, traceJSONEvent{
				AtNs: int64(ev.At), Kind: ev.Kind.String(),
				Key: ev.Key, Seq: ev.Seq, Peer: ev.Peer,
			})
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	}
}

// PublishExpvar exposes the registry under the given expvar name
// (typically "softstate"), so /debug/vars carries the full snapshot next
// to memstats. Publishing twice with one name panics in expvar, so call
// it once per process.
func PublishExpvar(name string, r *Registry) {
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]any)
		for _, s := range r.Gather() {
			if s.Hist != nil {
				out[s.ID] = map[string]any{
					"count":  s.Hist.Count,
					"sum_ns": s.Hist.SumNs,
					"p50_ns": int64(s.Hist.Quantile(0.50)),
					"p99_ns": int64(s.Hist.Quantile(0.99)),
				}
				continue
			}
			out[s.ID] = s.Value
		}
		return out
	}))
}

// expvarHandler mirrors expvar.Handler() output (that handler is
// unexported state bound to the default mux).
func expvarHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write([]byte("{\n"))
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			w.Write([]byte(",\n"))
		}
		first = false
		w.Write([]byte("\"" + kv.Key + "\": " + kv.Value.String()))
	})
	w.Write([]byte("\n}\n"))
}
