package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the introspection handler signald serves on -metrics-addr:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  the same snapshot as a flat JSON object
//	/debug/vars    standard expvar (cmdline, memstats, plus the registry
//	               under the "softstate" key)
//	/debug/pprof/  standard runtime profiles
//
// Handlers gather on demand; nothing is cached between scrapes.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	// expvar's default handler is bound to DefaultServeMux; rebuild the
	// same output here so the metrics listener stays self-contained.
	mux.HandleFunc("/debug/vars", expvarHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// PublishExpvar exposes the registry under the given expvar name
// (typically "softstate"), so /debug/vars carries the full snapshot next
// to memstats. Publishing twice with one name panics in expvar, so call
// it once per process.
func PublishExpvar(name string, r *Registry) {
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]any)
		for _, s := range r.Gather() {
			if s.Hist != nil {
				out[s.ID] = map[string]any{
					"count":  s.Hist.Count,
					"sum_ns": s.Hist.SumNs,
					"p50_ns": int64(s.Hist.Quantile(0.50)),
					"p99_ns": int64(s.Hist.Quantile(0.99)),
				}
				continue
			}
			out[s.ID] = s.Value
		}
		return out
	}))
}

// expvarHandler mirrors expvar.Handler() output (that handler is
// unexported state bound to the default mux).
func expvarHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write([]byte("{\n"))
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			w.Write([]byte(",\n"))
		}
		first = false
		w.Write([]byte("\"" + kv.Key + "\": " + kv.Value.String()))
	})
	w.Write([]byte("\n}\n"))
}
