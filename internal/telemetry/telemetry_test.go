package telemetry

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"softstate/internal/clock"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.NewCounter(Opts{Name: "c_total"})
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("unregistered counter = %d, want 3", got)
	}
	g := r.NewGauge(Opts{Name: "g"})
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("unregistered gauge = %d, want 5", got)
	}
	h := r.NewHistogram(Opts{Name: "h_seconds"})
	h.Observe(time.Millisecond)
	if got := h.Count(); got != 1 {
		t.Fatalf("unregistered histogram count = %d, want 1", got)
	}
	r.GaugeFunc(Opts{Name: "f"}, func() float64 { return 1 })
	if got := r.Gather(); got != nil {
		t.Fatalf("nil registry Gather = %v, want nil", got)
	}

	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(time.Second)
	if nh.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
	var nt *Tracer
	nt.Record(TraceInstall, "k", 1, nil)
	if nt.Len() != 0 || nt.Events() != nil || nt.Overwritten() != 0 {
		t.Fatal("nil tracer not inert")
	}
	var np *PaperMetrics
	np.OnInstall("k")
	np.OnAck("k")
	np.OnRemove("k")
	np.OnLost("k")
	if np.Inconsistency() != 0 || np.Rate() != 0 || np.LiveKeys() != 0 {
		t.Fatal("nil paper metrics not inert")
	}
	np.Register(NewRegistry(), nil)
}

func TestRegistryCollisionGetsInstanceLabel(t *testing.T) {
	r := NewRegistry()
	r.NewCounter(Opts{Name: "dup_total", Labels: Labels{"role": "sender"}})
	r.NewCounter(Opts{Name: "dup_total", Labels: Labels{"role": "sender"}})
	r.NewCounter(Opts{Name: "dup_total", Labels: Labels{"role": "sender"}})
	ids := make(map[string]bool)
	for _, s := range r.Gather() {
		if ids[s.ID] {
			t.Fatalf("duplicate series identity %q", s.ID)
		}
		ids[s.ID] = true
	}
	if len(ids) != 3 {
		t.Fatalf("got %d series, want 3", len(ids))
	}
	if !ids[`dup_total{instance="2",role="sender"}`] {
		t.Fatalf("expected instance label bump, got %v", ids)
	}
}

func TestGatherSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.NewGauge(Opts{Name: "zz"}).Set(1)
	r.NewCounter(Opts{Name: "aa_total"}).Add(4)
	r.GaugeFunc(Opts{Name: "mm"}, func() float64 { return 2.5 })
	samples := r.Gather()
	var order []string
	for _, s := range samples {
		order = append(order, s.Name)
	}
	if strings.Join(order, ",") != "aa_total,mm,zz" {
		t.Fatalf("scrape order = %v", order)
	}
	if samples[0].Kind != "counter" || samples[0].Value != 4 {
		t.Fatalf("counter sample = %+v", samples[0])
	}
	if samples[1].Kind != "gauge" || samples[1].Value != 2.5 {
		t.Fatalf("gauge-func sample = %+v", samples[1])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.NewCounter(Opts{Name: "sent_total", Help: "Datagrams sent.",
		Labels: Labels{"type": "trigger"}}).Add(9)
	h := r.NewHistogram(Opts{Name: "lat_seconds", Labels: Labels{"role": "sender"}})
	h.Observe(500 * time.Nanosecond) // bucket 0 (≤ ~1µs)
	h.Observe(3 * time.Microsecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP sent_total Datagrams sent.\n",
		"# TYPE sent_total counter\n",
		`sent_total{type="trigger"} 9` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{role="sender",le="+Inf"} 2` + "\n",
		`lat_seconds_count{role="sender"} 2` + "\n",
		`lat_seconds_sum{role="sender"} 3.5e-06` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the last pre-Inf bucket equals the count.
	if !strings.Contains(out, `le="1.024e-06"} 1`) {
		t.Errorf("first bucket not cumulative-1:\n%s", out)
	}
}

func TestWriteJSONIsValid(t *testing.T) {
	r := NewRegistry()
	r.NewCounter(Opts{Name: "c_total", Labels: Labels{"a": `q"uo\te`}}).Inc()
	r.NewHistogram(Opts{Name: "h_seconds"}).Observe(2 * time.Microsecond)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("WriteJSON output not JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d keys, want 2: %v", len(got), got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 90 fast observations and 10 slow ones: p50 stays in the fast
	// bucket's bound, p99 lands in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(800 * time.Nanosecond) // bucket 0, bound 1.024µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond) // bound 2^20ns ≈ 1.049ms
	}
	if got := h.Quantile(0.50); got != 1024*time.Nanosecond {
		t.Fatalf("p50 = %v, want 1.024µs", got)
	}
	if got := h.Quantile(0.99); got != time.Duration(1)<<20 {
		t.Fatalf("p99 = %v, want %v", got, time.Duration(1)<<20)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	// Extremes land in the edge buckets rather than panicking.
	h.Observe(-time.Second)
	h.Observe(200 * time.Hour)
	snap := h.Snapshot()
	if snap.Count != 102 {
		t.Fatalf("count after extremes = %d", snap.Count)
	}
	if last := snap.Buckets[len(snap.Buckets)-1]; last.UpperNs != bucketUpperNs(histBuckets-1) {
		t.Fatalf("overflow bucket bound = %d", last.UpperNs)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

// TestTraceRingOverflow is the satellite-required wraparound test: a full
// ring drops oldest-first, counts what it dropped, and Events still
// returns chronological order.
func TestTraceRingOverflow(t *testing.T) {
	v := clock.NewVirtual()
	tr := NewTracer(TracerConfig{Capacity: 8, Clock: v})
	for i := 0; i < 20; i++ {
		tr.Record(TraceTrigger, "k", uint64(i), nil)
		v.Run(time.Millisecond)
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := tr.Overwritten(); got != 12 {
		t.Fatalf("Overwritten = %d, want 12", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(12 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest-first after wrap)", i, ev.Seq, want)
		}
		if i > 0 && evs[i].At < evs[i-1].At {
			t.Fatalf("events out of time order at %d: %v then %v", i, evs[i-1].At, evs[i].At)
		}
	}
	if got := tr.KindCounts()[TraceTrigger]; got != 8 {
		t.Fatalf("KindCounts[trigger] = %d", got)
	}
}

func TestTraceSamplingKeepsWholeLifecyclesAndSummaries(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4096, SampleEvery: 4})
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for _, k := range keys {
		tr.Record(TraceInstall, k, 1, nil)
		tr.Record(TraceAck, k, 1, nil)
	}
	tr.Record(TraceSummary, "", 10, nil) // keyless: always kept
	perKey := make(map[string]int)
	summaries := 0
	for _, ev := range tr.Events() {
		if ev.Kind == TraceSummary {
			summaries++
			continue
		}
		perKey[ev.Key]++
	}
	if summaries != 1 {
		t.Fatalf("summary events = %d, want 1", summaries)
	}
	if len(perKey) == 0 || len(perKey) == len(keys) {
		t.Fatalf("sampling kept %d/%d keys, want a strict subset", len(perKey), len(keys))
	}
	for k, n := range perKey {
		if n != 2 {
			t.Fatalf("sampled key %q has %d events, want its whole lifecycle (2)", k, n)
		}
	}
}

func TestTraceRecordsPeerAndSink(t *testing.T) {
	var sunk []TraceEvent
	tr := NewTracer(TracerConfig{Capacity: 4, Sink: func(ev TraceEvent) { sunk = append(sunk, ev) }})
	addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9999}
	tr.Record(TraceRemoval, "k", 3, addr)
	if len(sunk) != 1 || sunk[0].Peer != "127.0.0.1:9999" {
		t.Fatalf("sink got %+v", sunk)
	}
	if s := sunk[0].String(); !strings.Contains(s, "removal") || !strings.Contains(s, `key="k"`) {
		t.Fatalf("event string = %q", s)
	}
}

func TestPaperMetricsAckWindows(t *testing.T) {
	v := clock.NewVirtual()
	var sent int64
	pm := NewPaperMetrics(PaperConfig{Clock: v, AckExpected: true,
		Sent: func() int64 { return sent }})
	pm.OnInstall("k") // t=0: live, ack window opens
	v.Run(1 * time.Second)
	pm.OnAck("k") // 1 key-second inconsistent
	v.Run(9 * time.Second)
	sent = 20
	if got, want := pm.Inconsistency(), 0.1; !close1e9(got, want) {
		t.Fatalf("I = %v, want %v", got, want)
	}
	if got, want := pm.Rate(), 2.0; !close1e9(got, want) { // 20 dg / 10 key-s
		t.Fatalf("rate = %v, want %v", got, want)
	}
	if got := pm.LiveKeys(); got != 1 {
		t.Fatalf("live = %d", got)
	}
	pm.OnRemove("k")
	v.Run(10 * time.Second)
	// Removed keys accrue nothing more on either integral.
	if got, want := pm.Inconsistency(), 0.1; !close1e9(got, want) {
		t.Fatalf("I after removal = %v, want %v", got, want)
	}
}

func TestPaperMetricsRepairWindows(t *testing.T) {
	v := clock.NewVirtual()
	pm := NewPaperMetrics(PaperConfig{Clock: v, RepairWindow: 30 * time.Second})
	pm.OnInstall("k")
	v.Run(10 * time.Second)
	pm.OnLost("k") // expiry observed at t=10
	v.Run(2 * time.Second)
	pm.OnInstall("k") // repaired at t=12: the 2s gap counts
	v.Run(0)
	if got, want := pm.Inconsistency(), 2.0/12.0; !close1e9(got, want) {
		t.Fatalf("I = %v, want %v", got, want)
	}

	// A loss never repaired within the window is presumed an intended
	// removal: the key leaves the base, the gap contributes no bad time,
	// and the key-time accrued since the loss is backed out — so I is
	// exactly what it was when the loss happened.
	pm.OnLost("k")
	v.Run(40 * time.Second)
	if got := pm.LiveKeys(); got != 0 {
		t.Fatalf("live after stale loss = %d, want 0", got)
	}
	if got, want := pm.Inconsistency(), 2.0/12.0; !close1e9(got, want) {
		t.Fatalf("I after prune = %v, want %v", got, want)
	}
}

func TestPaperMetricsRegister(t *testing.T) {
	v := clock.NewVirtual()
	pm := NewPaperMetrics(PaperConfig{Clock: v})
	r := NewRegistry()
	pm.Register(r, Labels{"protocol": "ss"})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`softstate_inconsistency_ratio{protocol="ss"} 0`,
		`softstate_datagrams_per_key_per_s{protocol="ss"} 0`,
		`softstate_paper_live_keys{protocol="ss"} 0`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q in:\n%s", want, sb.String())
		}
	}
}

// close1e9 compares floats to a part-per-billion — virtual-clock integrals
// are exact, this only absorbs float64 division.
func close1e9(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	return d <= 1e-9*(b+1)
}
