package telemetry

import (
	"sync"
	"time"

	"softstate/internal/clock"
)

// PaperMetrics computes the source paper's two figure axes as live,
// continuously-updated properties of a running endpoint:
//
//   - Inconsistency — the fraction of (key, time) the remote end's view
//     is known or presumed wrong, the live counterpart of the paper's I
//     metric (eq. 1). It is assembled from what an endpoint can actually
//     observe: on ack-bearing variants (SS+RT, SS+RTR, HS), a key is
//     inconsistent from each trigger until its ack; on every variant, the
//     gap between a state loss the protocol noticed (expiry, orphan
//     detection, false removal) and the repair that re-installed it
//     counts in full once the repair is observed. Windows no variant can
//     observe (a lost refresh on pure SS) do not count, so on ack-less
//     variants the estimate is a lower bound — exactly the visibility the
//     paper says those protocols give up.
//   - Rate — signaling datagrams per key per second, the live Λ: the
//     endpoint's cumulative datagram count over its cumulative key-time.
//
// Feed it from a signal endpoint's event stream (Config.OnEvent) via the
// On* methods; keys from different peers should be qualified by the
// caller (peer + key) so fan-out nodes do not alias. All methods are safe
// for concurrent use and on a nil receiver.
type PaperMetrics struct {
	clk  clock.Clock
	born time.Time
	ack  bool          // triggers stay inconsistent until acked
	rw   time.Duration // repair window: max loss→repair gap that counts
	sent func() int64  // cumulative datagram supplier for Rate

	mu      sync.Mutex
	live    map[string]struct{}
	pending map[string]window
	ackOpen int           // open ack windows (accrue continuously)
	lastAt  time.Duration // last integral update
	keyTime float64       // ∫ live keys dt, in key-seconds
	badTime float64       // ∫ inconsistent keys dt, in key-seconds
}

// window is one open inconsistency interval.
type window struct {
	openedAt time.Duration
	// repair windows (state loss awaiting re-install) contribute only
	// when closed by a repair; ack windows accrue while open.
	repair bool
}

// PaperConfig parameterizes a PaperMetrics collector.
type PaperConfig struct {
	// Clock is the endpoint's time source (clock.System when nil).
	Clock clock.Clock
	// AckExpected marks variants with reliable triggers: an installed key
	// counts as inconsistent until its ack arrives. Leave false on
	// ack-less variants and on receiver-side collectors (where an install
	// event means the state is already consistent).
	AckExpected bool
	// RepairWindow caps how long after a state loss a re-install still
	// counts the gap as inconsistency (default 30 s). Losses never
	// repaired are presumed intended removals and contribute nothing.
	RepairWindow time.Duration
	// Sent supplies the endpoint's cumulative signaling datagram count
	// (sent + received is the usual choice) for the Rate gauge.
	Sent func() int64
}

// NewPaperMetrics creates a collector.
func NewPaperMetrics(cfg PaperConfig) *PaperMetrics {
	clk := clock.Or(cfg.Clock)
	if cfg.RepairWindow <= 0 {
		cfg.RepairWindow = 30 * time.Second
	}
	return &PaperMetrics{
		clk:     clk,
		born:    clk.Now(),
		ack:     cfg.AckExpected,
		rw:      cfg.RepairWindow,
		sent:    cfg.Sent,
		live:    make(map[string]struct{}),
		pending: make(map[string]window),
	}
}

// advance accrues the integrals up to now; callers hold p.mu.
func (p *PaperMetrics) advance(now time.Duration) {
	if dt := (now - p.lastAt).Seconds(); dt > 0 {
		p.keyTime += float64(len(p.live)) * dt
		p.badTime += float64(p.ackOpen) * dt
		p.lastAt = now
	}
}

// OnInstall records that the key was installed, updated, or repaired. If
// a loss window was open for it, the repair gap is banked; on
// ack-expecting variants a fresh ack window opens.
func (p *PaperMetrics) OnInstall(key string) {
	if p == nil {
		return
	}
	now := p.clk.Since(p.born)
	p.mu.Lock()
	p.advance(now)
	if w, ok := p.pending[key]; ok {
		if w.repair {
			if gap := now - w.openedAt; gap <= p.rw {
				p.badTime += gap.Seconds()
			}
			delete(p.pending, key)
		}
		// An open ack window stays open: a re-trigger before the ack is
		// still the same inconsistent interval.
	}
	p.live[key] = struct{}{}
	if p.ack {
		if w, open := p.pending[key]; !open || w.repair {
			p.pending[key] = window{openedAt: now}
			p.ackOpen++
		}
	}
	p.mu.Unlock()
}

// OnAck records that the key's latest trigger was acknowledged.
func (p *PaperMetrics) OnAck(key string) {
	if p == nil {
		return
	}
	now := p.clk.Since(p.born)
	p.mu.Lock()
	p.advance(now)
	if w, ok := p.pending[key]; ok && !w.repair {
		delete(p.pending, key)
		p.ackOpen--
	}
	p.mu.Unlock()
}

// OnRemove records that the key was deliberately removed (or given up
// on): it stops accruing key-time and any open window closes unbanked.
func (p *PaperMetrics) OnRemove(key string) {
	if p == nil {
		return
	}
	now := p.clk.Since(p.born)
	p.mu.Lock()
	p.advance(now)
	delete(p.live, key)
	if w, ok := p.pending[key]; ok {
		if !w.repair {
			p.ackOpen--
		}
		delete(p.pending, key)
	}
	p.mu.Unlock()
}

// OnLost records a state loss the protocol noticed — expiry, orphan
// detection, a false removal signal. The key stays in the key-time base
// (its owner still intends it) and a repair window opens: if a re-install
// follows within RepairWindow, the whole gap counts as inconsistency.
func (p *PaperMetrics) OnLost(key string) {
	if p == nil {
		return
	}
	now := p.clk.Since(p.born)
	p.mu.Lock()
	p.advance(now)
	if w, ok := p.pending[key]; ok && !w.repair {
		p.ackOpen--
	}
	p.pending[key] = window{openedAt: now, repair: true}
	p.mu.Unlock()
}

// read advances the integrals and prunes repair windows too old to ever
// count, then returns the current readings.
func (p *PaperMetrics) read() (inconsistency, keyTime float64, live int) {
	now := p.clk.Since(p.born)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advance(now)
	for k, w := range p.pending {
		if w.repair && now-w.openedAt > p.rw {
			// Presumed intended removal: the gap never counts as
			// inconsistency, and the key-time accrued since the loss is
			// backed out of the base (the key was not really live).
			p.keyTime -= (now - w.openedAt).Seconds()
			delete(p.pending, k)
			delete(p.live, k)
		}
	}
	if p.keyTime <= 0 {
		return 0, 0, len(p.live)
	}
	return p.badTime / p.keyTime, p.keyTime, len(p.live)
}

// Inconsistency returns the live estimate of the paper's I metric.
func (p *PaperMetrics) Inconsistency() float64 {
	if p == nil {
		return 0
	}
	i, _, _ := p.read()
	return i
}

// Rate returns the live estimate of the paper's Λ metric: cumulative
// signaling datagrams over cumulative key-seconds.
func (p *PaperMetrics) Rate() float64 {
	if p == nil || p.sent == nil {
		return 0
	}
	_, keyTime, _ := p.read()
	if keyTime <= 0 {
		return 0
	}
	return float64(p.sent()) / keyTime
}

// LiveKeys returns the number of keys currently accruing key-time.
func (p *PaperMetrics) LiveKeys() int {
	if p == nil {
		return 0
	}
	_, _, live := p.read()
	return live
}

// Register exposes the collector's gauges on r under the given labels —
// the paper's figure metrics as scrapeable series.
func (p *PaperMetrics) Register(r *Registry, labels Labels) {
	if p == nil {
		return
	}
	r.GaugeFunc(Opts{
		Name:   "softstate_inconsistency_ratio",
		Help:   "Live estimate of the paper's I metric: observed inconsistent key-time over total key-time.",
		Labels: labels,
	}, p.Inconsistency)
	r.GaugeFunc(Opts{
		Name:   "softstate_datagrams_per_key_per_s",
		Help:   "Live estimate of the paper's signaling overhead: datagrams per key per second.",
		Labels: labels,
	}, p.Rate)
	r.GaugeFunc(Opts{
		Name:   "softstate_paper_live_keys",
		Help:   "Keys currently accruing key-time in the paper-metric integrals.",
		Labels: labels,
	}, func() float64 { return float64(p.LiveKeys()) })
}
