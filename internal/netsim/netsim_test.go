package netsim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"softstate/internal/des"
	"softstate/internal/rand"
)

func detLink(k *des.Kernel, loss float64, delay float64, seed uint64) *Link {
	return NewLink(k, rand.NewSource(seed), Config{
		Loss:  loss,
		Delay: rand.Timer{Kind: rand.Deterministic, Mean: delay},
	})
}

func TestLosslessDelivery(t *testing.T) {
	k := des.New()
	l := detLink(k, 0, 2, 1)
	delivered := 0
	l.Send(func() { delivered++ })
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if k.Now() != 2 {
		t.Fatalf("delivery at %v, want 2", k.Now())
	}
	c := l.Counters()
	if c.Transmissions != 1 || c.Delivered != 1 || c.Lost != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestTotalLoss(t *testing.T) {
	k := des.New()
	l := detLink(k, 1, 2, 1)
	delivered := 0
	for i := 0; i < 10; i++ {
		if lost := l.Send(func() { delivered++ }); !lost {
			t.Fatal("Send with loss=1 reported delivery")
		}
	}
	k.Run()
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0", delivered)
	}
	c := l.Counters()
	if c.Lost != 10 || c.Transmissions != 10 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLossFrequency(t *testing.T) {
	k := des.New()
	l := detLink(k, 0.3, 0.001, 42)
	const n = 50000
	for i := 0; i < n; i++ {
		l.Send(func() {})
	}
	k.Run()
	got := float64(l.Counters().Lost) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("loss frequency = %v, want ≈0.3", got)
	}
}

func TestFIFOUnderRandomDelays(t *testing.T) {
	k := des.New()
	l := NewLink(k, rand.NewSource(7), Config{
		Delay: rand.Timer{Kind: rand.Exponential, Mean: 1},
	})
	var order []int
	for i := 0; i < 500; i++ {
		i := i
		// Stagger sends slightly so exponential delays would reorder
		// without the clamp.
		k.Schedule(float64(i)*0.01, func() {
			l.Send(func() { order = append(order, i) })
		})
	}
	k.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatal("FIFO link delivered out of order")
	}
	if len(order) != 500 {
		t.Fatalf("delivered %d, want 500", len(order))
	}
}

func TestReorderingAllowedWhenConfigured(t *testing.T) {
	k := des.New()
	l := NewLink(k, rand.NewSource(7), Config{
		Delay:        rand.Timer{Kind: rand.Exponential, Mean: 1},
		AllowReorder: true,
	})
	var order []int
	for i := 0; i < 500; i++ {
		i := i
		k.Schedule(float64(i)*0.01, func() {
			l.Send(func() { order = append(order, i) })
		})
	}
	k.Run()
	if sort.IntsAreSorted(order) {
		t.Fatal("expected at least one reordering with exponential delays")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	k := des.New()
	cases := []func(){
		func() { NewLink(nil, rand.NewSource(1), Config{}) },
		func() { NewLink(k, nil, Config{}) },
		func() { NewLink(k, rand.NewSource(1), Config{Loss: -0.1}) },
		func() { NewLink(k, rand.NewSource(1), Config{Loss: 1.1}) },
		func() { detLink(k, 0, 1, 1).Send(nil) },
		func() { NewPath(k, rand.NewSource(1), 0, Config{}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPairDirectionsIndependent(t *testing.T) {
	k := des.New()
	p := NewPair(k, rand.NewSource(3), Config{
		Loss:  0.5,
		Delay: rand.Timer{Kind: rand.Deterministic, Mean: 1},
	})
	for i := 0; i < 1000; i++ {
		p.Forward.Send(func() {})
		p.Reverse.Send(func() {})
	}
	k.Run()
	tot := p.Totals()
	if tot.Transmissions != 2000 {
		t.Fatalf("Transmissions = %d, want 2000", tot.Transmissions)
	}
	if tot.Delivered+tot.Lost != tot.Transmissions {
		t.Fatalf("counters inconsistent: %+v", tot)
	}
	f, r := p.Forward.Counters(), p.Reverse.Counters()
	if f.Lost == 0 || r.Lost == 0 || f.Lost == r.Lost {
		// Equal loss counts would suggest shared streams; with 1000 trials
		// at p=0.5 a tie is vanishingly unlikely (and indicates coupling).
		t.Fatalf("suspicious loss counts: forward=%d reverse=%d", f.Lost, r.Lost)
	}
}

func TestPathConstruction(t *testing.T) {
	k := des.New()
	p := NewPath(k, rand.NewSource(9), 5, Config{
		Delay: rand.Timer{Kind: rand.Deterministic, Mean: 1},
	})
	if len(p.Hops) != 5 {
		t.Fatalf("hops = %d, want 5", len(p.Hops))
	}
	// Relay a message across all hops; with no loss it must arrive after
	// the sum of per-hop delays.
	arrived := false
	var forward func(hop int)
	forward = func(hop int) {
		if hop == len(p.Hops) {
			arrived = true
			return
		}
		p.Hops[hop].Forward.Send(func() { forward(hop + 1) })
	}
	forward(0)
	k.Run()
	if !arrived {
		t.Fatal("message did not traverse the path")
	}
	if k.Now() != 5 {
		t.Fatalf("end-to-end delay = %v, want 5", k.Now())
	}
	if p.Totals().Delivered != 5 {
		t.Fatalf("totals = %+v, want 5 deliveries", p.Totals())
	}
}

func TestFIFOPropertyRandomTraffic(t *testing.T) {
	prop := func(seed uint64) bool {
		k := des.New()
		l := NewLink(k, rand.NewSource(seed), Config{
			Loss:  0.2,
			Delay: rand.Timer{Kind: rand.Exponential, Mean: 0.5},
		})
		src := rand.NewSource(seed ^ 0xabcdef)
		var order []int
		next := 0
		var tick func()
		tick = func() {
			if next >= 100 {
				return
			}
			id := next
			next++
			l.Send(func() { order = append(order, id) })
			k.Schedule(src.Exp(0.1), tick)
		}
		tick()
		k.Run()
		return sort.IntsAreSorted(order)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
