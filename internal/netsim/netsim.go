// Package netsim models the paper's signaling channel on top of the des
// kernel: a unidirectional link that "can delay and lose, but not reorder,
// messages" (paper §III). Losses are independent Bernoulli trials with
// parameter pl; delays are drawn from a configurable distribution
// (exponential with mean D in the analytic model); FIFO order is enforced
// by clamping each delivery to occur no earlier than the previously
// scheduled one.
package netsim

import (
	"fmt"

	"softstate/internal/des"
	"softstate/internal/rand"
)

// Counters aggregates link activity. Transmissions = Delivered + Lost.
type Counters struct {
	Transmissions int
	Delivered     int
	Lost          int
}

// Link is a unidirectional lossy channel. Create with NewLink.
type Link struct {
	kernel *des.Kernel
	rng    *rand.Source

	loss  float64
	delay rand.Timer
	fifo  bool

	lastDelivery float64
	counters     Counters
}

// Config parameterizes a link.
type Config struct {
	// Loss is the per-message loss probability pl ∈ [0,1].
	Loss float64
	// Delay is the one-way delay distribution (mean D).
	Delay rand.Timer
	// AllowReorder disables the FIFO clamp; the paper's model forbids
	// reordering, so this exists only for the reordering ablation.
	AllowReorder bool
}

// NewLink creates a link bound to kernel k using random stream rng.
func NewLink(k *des.Kernel, rng *rand.Source, cfg Config) *Link {
	if k == nil || rng == nil {
		panic("netsim: nil kernel or rng")
	}
	if cfg.Loss < 0 || cfg.Loss > 1 {
		panic(fmt.Sprintf("netsim: loss probability %v out of [0,1]", cfg.Loss))
	}
	return &Link{
		kernel: k,
		rng:    rng,
		loss:   cfg.Loss,
		delay:  cfg.Delay,
		fifo:   !cfg.AllowReorder,
	}
}

// Send transmits one message. If the message survives the loss trial,
// deliver runs after the sampled channel delay (never before any earlier
// delivery when FIFO). Send reports whether the message was lost, which
// the simulator's loss-ablation instrumentation inspects; protocol logic
// must not look at it (a real sender cannot observe loss).
func (l *Link) Send(deliver func()) (lost bool) {
	if deliver == nil {
		panic("netsim: nil deliver callback")
	}
	l.counters.Transmissions++
	if l.rng.Bernoulli(l.loss) {
		l.counters.Lost++
		return true
	}
	at := l.kernel.Now() + l.delay.Sample(l.rng)
	if l.fifo && at < l.lastDelivery {
		at = l.lastDelivery
	}
	l.lastDelivery = at
	l.kernel.At(at, func() {
		l.counters.Delivered++
		deliver()
	})
	return false
}

// Counters returns a snapshot of the link statistics.
func (l *Link) Counters() Counters { return l.counters }

// Pair is a bidirectional channel between two endpoints, built from two
// independent links that share loss/delay parameters (the paper treats the
// sender→receiver and receiver→sender directions symmetrically for ACK and
// notification traffic).
type Pair struct {
	Forward *Link // sender → receiver
	Reverse *Link // receiver → sender
}

// NewPair creates a bidirectional channel; each direction gets its own
// split of rng so forward traffic does not perturb reverse draws.
func NewPair(k *des.Kernel, rng *rand.Source, cfg Config) *Pair {
	return &Pair{
		Forward: NewLink(k, rng.Split(), cfg),
		Reverse: NewLink(k, rng.Split(), cfg),
	}
}

// Totals sums the counters of both directions.
func (p *Pair) Totals() Counters {
	f, r := p.Forward.Counters(), p.Reverse.Counters()
	return Counters{
		Transmissions: f.Transmissions + r.Transmissions,
		Delivered:     f.Delivered + r.Delivered,
		Lost:          f.Lost + r.Lost,
	}
}

// Path is a chain of bidirectional hops used by the multi-hop simulator
// (paper §III-B, Fig 13): Hops[i] connects node i to node i+1.
type Path struct {
	Hops []*Pair
}

// NewPath builds an n-hop path with homogeneous hop parameters, matching
// the paper's assumption of identical per-hop loss and delay.
func NewPath(k *des.Kernel, rng *rand.Source, n int, cfg Config) *Path {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: path length %d must be positive", n))
	}
	hops := make([]*Pair, n)
	for i := range hops {
		hops[i] = NewPair(k, rng, cfg)
	}
	return &Path{Hops: hops}
}

// Totals sums counters over every hop and direction.
func (p *Path) Totals() Counters {
	var c Counters
	for _, h := range p.Hops {
		t := h.Totals()
		c.Transmissions += t.Transmissions
		c.Delivered += t.Delivered
		c.Lost += t.Lost
	}
	return c
}
