package node

import (
	"errors"
	"net"
	"sync/atomic"

	"softstate/internal/signal"
)

// Relay is one interior hop of a signaling chain: a Receiver facing
// upstream and a one-peer Node facing downstream. Every state change the
// upstream side observes — install, update, explicit removal, timeout
// expiry, false removal — is re-signaled to the next hop with the relay's
// own timers and sequence space, exactly the paper's multi-hop model where
// each hop runs the protocol pairwise.
//
// Keys pass through unchanged, so a relay assumes upstream senders use
// distinct keys (origin-scoped names like "flow/<id>"); two senders
// installing the same key at a relay merge last-writer-wins downstream.
type Relay struct {
	rcv   *signal.Receiver
	down  *Node
	nexts []net.Addr

	relayed atomic.Int64 // downstream operations attempted
	errs    atomic.Int64 // downstream operations rejected (e.g. closing)
}

// NewRelay creates a relay speaking cfg.Protocol on both sides: upstream
// state is held on the upstream conn, and propagated to next over the
// downstream conn. The two conns must be distinct sockets.
func NewRelay(upstream, downstream net.PacketConn, next net.Addr, cfg signal.Config) (*Relay, error) {
	if next == nil {
		return nil, errors.New("node: nil relay next hop")
	}
	return NewFanRelay(upstream, downstream, []net.Addr{next}, cfg)
}

// NewFanRelay creates a relay that re-signals every upstream state change
// to *each* of the nexts — the interior node of a distribution tree. The
// downstream node keeps one session per next hop on the single downstream
// socket, so the fan-out cost is per-peer sessions, not per-peer sockets.
func NewFanRelay(upstream, downstream net.PacketConn, nexts []net.Addr, cfg signal.Config) (*Relay, error) {
	if upstream == nil || downstream == nil {
		return nil, errors.New("node: nil relay conn")
	}
	if len(nexts) == 0 {
		return nil, errors.New("node: relay needs ≥ 1 next hop")
	}
	for _, n := range nexts {
		if n == nil {
			return nil, errors.New("node: nil relay next hop")
		}
	}
	r := &Relay{nexts: append([]net.Addr(nil), nexts...)}
	dcfg := cfg
	dcfg.OnEvent = nil // the user hook observes the upstream side only
	down, err := New(downstream, dcfg)
	if err != nil {
		return nil, err
	}
	r.down = down
	rcfg := cfg
	user := cfg.OnEvent
	rcfg.OnEvent = func(ev signal.Event) {
		r.onUpstream(ev)
		if user != nil {
			user(ev)
		}
	}
	rcv, err := signal.NewReceiver(upstream, rcfg)
	if err != nil {
		down.Close()
		return nil, err
	}
	r.rcv = rcv
	return r, nil
}

// onUpstream propagates one upstream state change downstream. It runs
// synchronously on the receiver's protocol goroutines (the OnEvent hook
// never drops, unlike the Events channel), and only touches the
// downstream node, so it cannot deadlock against the upstream table.
func (r *Relay) onUpstream(ev signal.Event) {
	switch ev.Kind {
	case signal.EventInstalled, signal.EventUpdated:
		for _, next := range r.nexts {
			r.relayed.Add(1)
			// Forward the upstream trace context: the origin stamp passes
			// through and the hop count grows, so the chain's tail measures
			// install latency across every hop (zero contexts forward as
			// plain installs).
			if err := r.down.InstallCtx(next, ev.Key, ev.Value, ev.Trace); err != nil {
				r.errs.Add(1)
			}
		}
	case signal.EventRemoved, signal.EventExpired, signal.EventFalseRemoval, signal.EventOrphaned:
		for _, next := range r.nexts {
			r.relayed.Add(1)
			if err := r.down.Remove(next, ev.Key); err != nil {
				// Unknown keys are expected: a removal can outrun an install
				// that never propagated (e.g. relayed while shutting down).
				r.errs.Add(1)
			}
		}
	}
}

// CheckInvariants audits both faces of the relay — the upstream receiver
// and the downstream sender core — and returns every violation found.
func (r *Relay) CheckInvariants() []string {
	return append(r.rcv.CheckInvariants(), r.down.CheckInvariants()...)
}

// Receiver returns the upstream side, for state inspection and events.
func (r *Relay) Receiver() *signal.Receiver { return r.rcv }

// Downstream returns the downstream node, for stats and events.
func (r *Relay) Downstream() *Node { return r.down }

// Relayed returns how many upstream changes were re-signaled downstream.
func (r *Relay) Relayed() int { return int(r.relayed.Load()) }

// Errs returns how many downstream re-signals were rejected (normally
// only while shutting down, or removals whose install never propagated).
func (r *Relay) Errs() int { return int(r.errs.Load()) }

// Close shuts the upstream receiver first (stopping propagation), then
// the downstream node. State already propagated is left to downstream
// timers — soft state cleans itself up.
func (r *Relay) Close() error {
	err := r.rcv.Close()
	if derr := r.down.Close(); err == nil {
		err = derr
	}
	return err
}
