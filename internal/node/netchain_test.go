package node

import (
	"bytes"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/signal"
)

// vnetchain builds an N-node switch-backed chain in virtual time.
func vnetchain(t *testing.T, nodes int, cfg signal.Config, link lossy.Config) (*clock.Virtual, *NetChain) {
	t.Helper()
	v := clock.NewVirtual()
	cfg.Clock = v
	link.Clock = v
	c, err := NewNetChain(nodes, cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return v, c
}

// TestNetChainPropagates: the switch-backed chain behaves like the
// pipe-backed one end to end.
func TestNetChainPropagates(t *testing.T) {
	v, c := vnetchain(t, 4, fastConfig(signal.SSRTR), cleanLink)
	if err := c.Install("flow/1", []byte("10Mbps")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "install reaches all hops", func() bool { return c.Holds("flow/1") == 3 })
	got, ok := c.Tail.Get("flow/1")
	if !ok || !bytes.Equal(got, []byte("10Mbps")) {
		t.Fatalf("tail holds %q, %v", got, ok)
	}
	if err := c.Remove("flow/1"); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "removal cascades", func() bool { return c.Holds("flow/1") == 0 })
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants: %v", bad)
	}
}

// TestNetChainRelayRestartReconverges: an interior relay crashes with all
// its state and comes back cold on the same addresses; upstream refreshes
// repopulate it and it re-signals downstream from a newer incarnation, so
// the whole path reconverges without any end-to-end restart.
func TestNetChainRelayRestartReconverges(t *testing.T) {
	v, c := vnetchain(t, 4, fastConfig(signal.SSRTR), cleanLink)
	if err := c.Install("flow/1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "initial convergence", func() bool { return c.Holds("flow/1") == 3 })

	if err := c.RestartRelay(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Holds("flow/1"); got == 3 {
		t.Fatal("restarted relay still holds state")
	}
	within(t, v, 2*time.Second, "post-restart reconvergence", func() bool { return c.Holds("flow/1") == 3 })
	if got, ok := c.Tail.Get("flow/1"); !ok || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("tail holds %q, %v after relay restart", got, ok)
	}
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants after relay restart: %v", bad)
	}
}

// TestNetChainPartitionHealsAndReconverges: a partition cut mid-chain
// stops propagation; after healing, refresh/retransmission carries the
// blocked install through.
func TestNetChainPartitionHealsAndReconverges(t *testing.T) {
	v, c := vnetchain(t, 4, fastConfig(signal.SSRTR), cleanLink)
	if err := c.Install("flow/pre", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "pre-partition convergence", func() bool { return c.Holds("flow/pre") == 3 })

	c.PartitionAt(1) // cut between relay 0 (node 1) and relay 1 (node 2)
	if err := c.Install("flow/during", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "install reaches the near side", func() bool { return c.Holds("flow/during") >= 1 })
	v.Run(200 * time.Millisecond)
	if _, ok := c.Tail.Get("flow/during"); ok {
		t.Fatal("install crossed an active partition")
	}

	c.Heal()
	within(t, v, 2*time.Second, "post-heal reconvergence", func() bool { return c.Holds("flow/during") == 3 })
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants after heal: %v", bad)
	}
}

// TestNetChainTailColdRestart: the tail crashes with all state; under a
// refresh protocol the upstream relay's refreshes rebuild it from
// nothing — the soft-state resynchronization story.
func TestNetChainTailColdRestart(t *testing.T) {
	v, c := vnetchain(t, 3, fastConfig(signal.SS), cleanLink)
	if err := c.Install("flow/1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "initial convergence", func() bool { return c.Holds("flow/1") == 2 })

	if err := c.RestartTail(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Tail.Get("flow/1"); ok {
		t.Fatal("cold-restarted tail holds state")
	}
	within(t, v, 2*time.Second, "tail rebuilt from refreshes", func() bool {
		_, ok := c.Tail.Get("flow/1")
		return ok
	})
	if bad := c.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants after tail restart: %v", bad)
	}
}
