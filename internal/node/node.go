// Package node scales the signaling runtime from one-connection/one-peer
// endpoints to multi-peer signaling nodes and multi-hop relay chains —
// the live counterpart of the paper's multi-hop analysis (§III-B) and of
// RSVP-style refresh-reduction deployments.
//
// A Node is the many-peer form of internal/signal.Sender: it
// demultiplexes a single net.PacketConn across a sharded per-destination
// peer table, each peer owning its own sender session (sequence space,
// refresh/retransmit timers, summary-refresh batches) while all per-key
// state shares one internal/statetable keyed by (peer, key). One Node
// therefore maintains state at hundreds of downstream receivers over one
// socket, with per-peer summary refresh keeping the datagram reduction of
// RFC 2961.
//
// A Relay composes a Receiver (upstream side) with a one-peer Node
// (downstream side): state installed at the relay propagates to the next
// hop, removals and expirations propagate likewise, so chains of relays
// run the paper's SS / SS+ER / SS+RT / SS+RTR / HS protocols live across
// N hops. Chain wires such a pipeline over lossy in-memory links for
// tests, benchmarks, and demos.
package node

import (
	"errors"
	"net"
	"sync"
	"time"

	"softstate/internal/signal"
	"softstate/internal/telemetry"
	"softstate/internal/transport"
	"softstate/internal/wire"
)

// Node is a multi-peer signaling sender: one net.PacketConn, many
// per-destination sessions. All methods are safe for concurrent use.
type Node struct {
	ss      *signal.Sessions
	wg      sync.WaitGroup
	unknown telemetry.Counter // datagrams from addresses with no session
}

// New creates a node speaking cfg.Protocol over conn and starts its
// receive loop, which routes each inbound datagram to the session for its
// source address.
func New(conn net.PacketConn, cfg signal.Config) (*Node, error) {
	if conn == nil {
		return nil, errors.New("node: nil conn")
	}
	n := &Node{ss: signal.NewSessions(conn, cfg)}
	if cfg.Metrics != nil {
		labels := telemetry.Labels{"role": "node"}
		for k, v := range cfg.MetricsLabels {
			labels[k] = v
		}
		cfg.Metrics.RegisterCounter(telemetry.Opts{
			Name:   "softstate_unknown_datagrams_total",
			Help:   "Inbound datagrams from addresses with no session (strays, late replies from dropped peers).",
			Labels: labels,
		}, &n.unknown)
	}
	// One read loop per transport lane (SO_REUSEPORT shards on batching
	// kernel-socket backends, one lane otherwise).
	lanes := n.ss.Conns()
	n.wg.Add(len(lanes))
	for _, lane := range lanes {
		go n.readLoop(lane)
	}
	return n, nil
}

// Peer returns the sender session for peer, creating it on first use.
func (n *Node) Peer(peer net.Addr) *signal.Session { return n.ss.Session(peer) }

// Peers returns all sessions in no particular order.
func (n *Node) Peers() []*signal.Session { return n.ss.Peers() }

// Install installs (or reinstalls) state for key at peer.
func (n *Node) Install(peer net.Addr, key string, value []byte) error {
	return n.ss.Session(peer).Install(key, value)
}

// InstallCtx installs state for key at peer while forwarding an
// upstream trace context — the relay path of hop-propagated tracing
// (see signal.Session.InstallCtx). A zero fwd is equivalent to Install.
func (n *Node) InstallCtx(peer net.Addr, key string, value []byte, fwd wire.TraceContext) error {
	return n.ss.Session(peer).InstallCtx(key, value, fwd)
}

// Update changes the state value for key at peer.
func (n *Node) Update(peer net.Addr, key string, value []byte) error {
	return n.ss.Session(peer).Update(key, value)
}

// Remove withdraws the state for key at peer.
func (n *Node) Remove(peer net.Addr, key string) error {
	return n.ss.Session(peer).Remove(key)
}

// Live returns the number of live keys across all peers.
func (n *Node) Live() int { return n.ss.Live() }

// CheckInvariants audits the sender core's internal consistency; see
// signal.Sessions.CheckInvariants.
func (n *Node) CheckInvariants() []string { return n.ss.CheckInvariants() }

// Events exposes the observability stream shared by all sessions; closed
// on Close. Event.Peer identifies the session.
func (n *Node) Events() <-chan signal.Event { return n.ss.Events() }

// Stats returns a snapshot of message counters across all sessions.
func (n *Node) Stats() signal.Stats { return n.ss.Stats() }

// SentDatagrams returns the cumulative signaling datagrams written.
func (n *Node) SentDatagrams() int64 { return n.ss.SentDatagrams() }

// ReceivedDatagrams returns the cumulative signaling datagrams accepted.
func (n *Node) ReceivedDatagrams() int64 { return n.ss.ReceivedDatagrams() }

// Unknown reports how many inbound datagrams carried a source address
// with no session (late replies from dropped peers, or strays).
func (n *Node) Unknown() int { return int(n.unknown.Value()) }

// Evictions reports how many idle peer sessions have been dropped from
// the per-destination table (Config.PeerIdleTimeout); evicted peers are
// re-admitted — with their sequence space resumed — on their next use.
func (n *Node) Evictions() int { return n.ss.Evictions() }

// SummarySweep sends one summary-refresh round for every peer now and
// returns the datagram count; see signal.Sessions.SummarySweep.
func (n *Node) SummarySweep() int { return n.ss.SummarySweep() }

// CensusSource exposes the node's whole intent digest as a convergence
// auditor source (requires signal.Config.Census). Sums are O(1) reads
// of the incremental table digest; on a node with several peers the
// per-key contributions of all sessions XOR together, so use this on
// single-downstream nodes (chain hops) and Peer(addr).CensusSource for
// per-link audits on fan-out nodes.
func (n *Node) CensusSource(name string) telemetry.CensusSource {
	return n.ss.CensusSource(name)
}

// CensusPeer builds an auditor source auditing the receiver at peer over
// the wire digest protocol; see signal.Sessions.CensusPeer.
func (n *Node) CensusPeer(name string, peer net.Addr, timeout time.Duration) telemetry.CensusSource {
	return n.ss.CensusPeer(name, peer, timeout)
}

// Close stops all timers, closes the transport, and waits for the receive
// loop to drain. The events channel is closed afterwards. Idempotent.
func (n *Node) Close() error {
	err := n.ss.Shutdown()
	n.wg.Wait()
	n.ss.CloseEvents()
	return err
}

// readLoop drains one transport lane in ReadBatch strides and
// demultiplexes each datagram by source address.
func (n *Node) readLoop(c transport.Conn) {
	defer n.wg.Done()
	ms := transport.NewBatch(transport.DefaultBatchSize)
	for {
		cnt, err := c.ReadBatch(ms)
		if err != nil {
			return
		}
		for i := 0; i < cnt; i++ {
			if !n.ss.HandleDatagram(ms[i].Data, ms[i].Addr) {
				n.unknown.Add(1)
			}
		}
	}
}
