package node

import (
	"bytes"
	"testing"
	"time"

	"softstate/internal/signal"
)

// drainEvents empties the node's observability channel.
func drainEvents(n *Node) []signal.Event {
	var out []signal.Event
	for {
		select {
		case ev := <-n.Events():
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestNodeEvictsIdlePeers: with PeerIdleTimeout set, a peer whose keys
// are all withdrawn falls out of the per-destination table after the
// quiet period — bounding the table under churn — while peers still
// holding state are untouched. A returning peer is re-admitted with its
// sequence space resumed, so its fresh triggers are not mistaken for
// stale retransmissions.
func TestNodeEvictsIdlePeers(t *testing.T) {
	cfg := fastConfig(signal.SSER)
	cfg.PeerIdleTimeout = 500 * time.Millisecond
	v, n, rcvs, addrs := fanout(t, cfg, 3)

	for i, a := range addrs {
		if err := n.Install(a, "k", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	v.Run(50 * time.Millisecond)
	for i, r := range rcvs {
		if r.Len() != 1 {
			t.Fatalf("peer %d holds %d keys, want 1", i, r.Len())
		}
	}
	if err := n.Remove(addrs[2], "k"); err != nil {
		t.Fatal(err)
	}
	v.Run(50 * time.Millisecond)
	if rcvs[2].Len() != 0 {
		t.Fatal("explicit removal did not reach peer 2")
	}
	var lastSeq uint64
	for _, ev := range drainEvents(n) {
		if ev.Peer != nil && ev.Peer.String() == addrs[2].String() && ev.Seq > lastSeq {
			lastSeq = ev.Seq
		}
	}

	// Quiet period passes: only the empty session is evicted.
	v.Run(2 * time.Second)
	if got := len(n.Peers()); got != 2 {
		t.Fatalf("peer table holds %d sessions after idle period, want 2", got)
	}
	if got := n.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if rcvs[0].Len() != 1 || rcvs[1].Len() != 1 {
		t.Fatal("active peers lost state across the eviction scan")
	}

	// The evicted peer returns: a new session is created transparently
	// and its sequence space resumes past the retired one.
	if err := n.Install(addrs[2], "k", []byte("back")); err != nil {
		t.Fatal(err)
	}
	v.Run(100 * time.Millisecond)
	if got, ok := rcvs[2].Get("k"); !ok || !bytes.Equal(got, []byte("back")) {
		t.Fatalf("returning peer state = %q, %v", got, ok)
	}
	if got := len(n.Peers()); got != 3 {
		t.Fatalf("peer table holds %d sessions after return, want 3", got)
	}
	resumed := false
	for _, ev := range drainEvents(n) {
		if ev.Kind == signal.EventInstalled && ev.Peer != nil &&
			ev.Peer.String() == addrs[2].String() {
			if ev.Seq <= lastSeq {
				t.Fatalf("returning peer restarted its sequence space: seq %d after %d", ev.Seq, lastSeq)
			}
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("no install event for the returning peer")
	}

	// The returning peer holds a live key again, so further idle scans
	// must leave it (and everyone else) alone.
	v.Run(time.Second)
	if got := n.Evictions(); got != 1 {
		t.Fatalf("evictions = %d after return, want still 1", got)
	}
	if got := len(n.Peers()); got != 3 {
		t.Fatalf("peer table shrank to %d with live keys held", got)
	}
}
