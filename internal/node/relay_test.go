package node

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/signal"
)

// cleanLink is an unimpaired in-memory link.
var cleanLink = lossy.Config{}

// vchain builds an N-node chain in virtual time and registers cleanup.
// The same clock drives every hop's timers and every link's delays, so the
// whole multi-hop run is deterministic and sleeps nothing.
func vchain(t *testing.T, nodes int, cfg signal.Config, link lossy.Config) (*clock.Virtual, *Chain) {
	t.Helper()
	v := clock.NewVirtual()
	cfg.Clock = v
	link.Clock = v
	c, err := NewChain(nodes, cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return v, c
}

// within advances virtual time until cond holds or the test fails.
func within(t *testing.T, v *clock.Virtual, budget time.Duration, what string, cond func() bool) {
	t.Helper()
	if !v.RunUntil(cond, time.Millisecond, budget) {
		t.Fatalf("virtual time ran out waiting for %s", what)
	}
}

// TestChainPropagatesInstallAndUpdate: a 3-node chain (origin, relay,
// tail) carries installs and updates hop by hop to the tail.
func TestChainPropagatesInstallAndUpdate(t *testing.T) {
	v, c := vchain(t, 3, fastConfig(signal.SS), cleanLink)
	if err := c.Install("flow/1", []byte("10Mbps")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "install reaches all hops", func() bool { return c.Holds("flow/1") == 2 })
	got, ok := c.Tail.Get("flow/1")
	if !ok || !bytes.Equal(got, []byte("10Mbps")) {
		t.Fatalf("tail holds %q, %v", got, ok)
	}
	if err := c.Update("flow/1", []byte("20Mbps")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "update reaches the tail", func() bool {
		got, _ := c.Tail.Get("flow/1")
		return bytes.Equal(got, []byte("20Mbps"))
	})
}

// TestChainExplicitRemovalCascades: with SS+ER the removal signal chases
// the install down the chain, clearing every hop well before timeout.
func TestChainExplicitRemovalCascades(t *testing.T) {
	v, c := vchain(t, 3, fastConfig(signal.SSER), cleanLink)
	if err := c.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "install", func() bool { return c.Holds("k") == 2 })
	before := v.Elapsed()
	if err := c.Remove("k"); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "removal cascades", func() bool { return c.Holds("k") == 0 })
	if elapsed := v.Elapsed() - before; elapsed > fastConfig(signal.SSER).Timeout {
		t.Fatalf("explicit removal took %v, should beat the timeout chain", elapsed)
	}
}

// TestChainSilentDeathDecaysHopByHop: killing the origin without removal
// lets soft state clean itself up at every hop (paper §II: the soft-state
// safety net needs no signaling at all).
func TestChainSilentDeathDecaysHopByHop(t *testing.T) {
	v, c := vchain(t, 3, fastConfig(signal.SS), cleanLink)
	if err := c.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "install", func() bool { return c.Holds("k") == 2 })
	c.Origin.Close()
	within(t, v, time.Second, "decay to nothing", func() bool { return c.Holds("k") == 0 })
}

// TestChainEventualConsistencyUnderLoss is the core convergence scenario:
// a 3-node relay chain over 20%-loss links must still converge — every
// installed key reaches every hop (reliable triggers repair the losses),
// and reliable removal eventually clears every hop (true removal).
func TestChainEventualConsistencyUnderLoss(t *testing.T) {
	link := lossy.Config{Loss: 0.2, Delay: time.Millisecond, Seed: 42}
	v, c := vchain(t, 3, fastConfig(signal.SSRTR), link)
	const keys = 20
	for i := 0; i < keys; i++ {
		if err := c.Install(fmt.Sprintf("flow/%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	within(t, v, 10*time.Second, "all keys on all hops despite 20% loss", func() bool {
		for i := 0; i < keys; i++ {
			if c.Holds(fmt.Sprintf("flow/%02d", i)) != 2 {
				return false
			}
		}
		return true
	})
	// True removal: explicit reliable removals propagate to every hop.
	for i := 0; i < keys; i++ {
		if err := c.Remove(fmt.Sprintf("flow/%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	within(t, v, 10*time.Second, "removals clear all hops despite 20% loss", func() bool {
		for _, r := range c.Receivers() {
			if r.Len() != 0 {
				return false
			}
		}
		return true
	})
}

// TestChainPureSoftStateUnderLoss: even with no reliability mechanisms at
// all (pure SS), refresh repetition converges the chain through 20% loss,
// and silent removal decays it — the paper's baseline protocol running
// live end to end.
func TestChainPureSoftStateUnderLoss(t *testing.T) {
	link := lossy.Config{Loss: 0.2, Delay: time.Millisecond, Seed: 7}
	v, c := vchain(t, 3, fastConfig(signal.SS), link)
	if err := c.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, 10*time.Second, "refresh repetition converges the chain", func() bool { return c.Holds("k") == 2 })
	if err := c.Remove("k"); err != nil {
		t.Fatal(err)
	}
	within(t, v, 10*time.Second, "silent removal decays the chain", func() bool { return c.Holds("k") == 0 })
}

// TestChainFalseRemovalRepairedEndToEnd: false removal injected at the
// middle relay propagates the removal downstream, the notification
// upstream, and the origin's repair re-installs the state everywhere
// (paper §IV false-removal scenario).
func TestChainFalseRemovalRepairedEndToEnd(t *testing.T) {
	v, c := vchain(t, 3, fastConfig(signal.SSRT), cleanLink)
	if err := c.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "install", func() bool { return c.Holds("k") == 2 })
	if !c.Relays[0].Receiver().InjectFalseRemoval("k") {
		t.Fatal("InjectFalseRemoval found no state at the relay")
	}
	// The false removal must first propagate downstream (tail loses the
	// key via the relayed removal or its own timeout), then the origin's
	// repair must re-install the full chain.
	within(t, v, time.Second, "repair restores every hop", func() bool {
		if c.Holds("k") != 2 {
			return false
		}
		got, ok := c.Tail.Get("k")
		return ok && bytes.Equal(got, []byte("v"))
	})
	if c.Relays[0].Relayed() < 3 { // install + removal + re-install
		t.Fatalf("relay forwarded only %d operations", c.Relays[0].Relayed())
	}
}

// TestFiveHopChain is the acceptance scenario: a 6-node (5-hop) chain
// over lossy links propagates install, refresh, and removal end to end.
func TestFiveHopChain(t *testing.T) {
	link := lossy.Config{Loss: 0.1, Delay: time.Millisecond, Seed: 99}
	cfg := fastConfig(signal.SSRTR)
	cfg.SummaryRefresh = true // refresh path: per-peer summaries hop by hop
	v, c := vchain(t, 6, cfg, link)
	const keys = 10
	for i := 0; i < keys; i++ {
		if err := c.Install(fmt.Sprintf("flow/%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	hops := len(c.Receivers()) // 5 state-holding hops
	within(t, v, 10*time.Second, "installs reach all 5 hops", func() bool {
		for i := 0; i < keys; i++ {
			if c.Holds(fmt.Sprintf("flow/%d", i)) != hops {
				return false
			}
		}
		return true
	})
	// Refresh: state must survive several timeout windows on every hop.
	v.Run(3 * cfg.Timeout)
	for i := 0; i < keys; i++ {
		if got := c.Holds(fmt.Sprintf("flow/%d", i)); got != hops {
			t.Fatalf("key %d decayed to %d of %d hops despite refreshes", i, got, hops)
		}
	}
	// Removal: reliable removals clear the whole chain.
	for i := 0; i < keys; i++ {
		if err := c.Remove(fmt.Sprintf("flow/%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	within(t, v, 10*time.Second, "removals clear all 5 hops", func() bool {
		for _, r := range c.Receivers() {
			if r.Len() != 0 {
				return false
			}
		}
		return true
	})
}
