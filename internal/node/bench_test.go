package node

import (
	"fmt"
	"net"
	"testing"
	"time"

	"softstate/internal/lossy"
	"softstate/internal/signal"
)

// discardConn swallows writes and blocks reads, so benchmarks measure the
// node, not a transport.
type discardConn struct {
	done chan struct{}
}

func newDiscardConn() *discardConn { return &discardConn{done: make(chan struct{})} }

func (c *discardConn) WriteTo(p []byte, _ net.Addr) (int, error) { return len(p), nil }

func (c *discardConn) ReadFrom(p []byte) (int, net.Addr, error) {
	<-c.done
	return 0, nil, net.ErrClosed
}

func (c *discardConn) Close() error {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	return nil
}

func (c *discardConn) LocalAddr() net.Addr              { return peerAddr("discard") }
func (c *discardConn) SetDeadline(time.Time) error      { return nil }
func (c *discardConn) SetReadDeadline(time.Time) error  { return nil }
func (c *discardConn) SetWriteDeadline(time.Time) error { return nil }

// peerAddr is a synthetic destination address for fan-out benchmarks.
type peerAddr string

func (a peerAddr) Network() string { return "bench" }
func (a peerAddr) String() string  { return string(a) }

// benchNode builds a node over a discarding transport with peers × keys
// state installed and background refreshing parked (hour-long interval),
// so the benchmark drives sweeps explicitly.
func benchNode(b *testing.B, peers, keys int) *Node {
	b.Helper()
	cfg := signal.Config{
		Protocol:        signal.SS,
		RefreshInterval: time.Hour, // sweeps driven by hand below
		Timeout:         3 * time.Hour,
		SummaryRefresh:  true,
		SummaryMaxKeys:  64,
		Shards:          64,
	}
	n, err := New(newDiscardConn(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })
	for p := 0; p < peers; p++ {
		addr := peerAddr(fmt.Sprintf("peer/%03d", p))
		for k := 0; k < keys; k++ {
			if err := n.Install(addr, fmt.Sprintf("flow/%06d", k), []byte("10Mbps")); err != nil {
				b.Fatal(err)
			}
		}
	}
	return n
}

// BenchmarkNodeFanoutSummarySweep is the acceptance benchmark: one node
// holding 64 peers × 256 keys (16k keys total) renews everything in one
// sweep of per-peer summary datagrams — 64 keys per datagram, a 64×
// reduction against per-key refreshes for the identical key set.
func BenchmarkNodeFanoutSummarySweep(b *testing.B) {
	const peers, keys = 64, 256
	n := benchNode(b, peers, keys)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += n.SummarySweep()
	}
	datagrams := float64(total) / float64(b.N)
	b.ReportMetric(datagrams, "datagrams/round")
	b.ReportMetric(float64(peers*keys)/datagrams, "keys/datagram")
	b.ReportMetric(float64(b.N)*peers*keys/b.Elapsed().Seconds(), "keys-refreshed/s")
	if want := float64(peers * keys / 64); datagrams != want {
		b.Fatalf("sweep took %.0f datagrams, want %.0f (64 keys each)", datagrams, want)
	}
}

// BenchmarkNodeFanoutInstall measures trigger throughput across many
// peer sessions into the shared sharded table.
func BenchmarkNodeFanoutInstall(b *testing.B) {
	n := benchNode(b, 64, 0)
	addrs := make([]net.Addr, 64)
	for p := range addrs {
		addrs[p] = peerAddr(fmt.Sprintf("peer/%03d", p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_ = n.Install(addrs[i%64], fmt.Sprintf("k/%d", i), []byte("v"))
			i++
		}
	})
}

// BenchmarkChainInstallLatency measures end-to-end install latency across
// a live 5-hop (6-node) relay chain: the time from Origin.Install to the
// tail receiver holding the key, including every per-hop re-signal.
func BenchmarkChainInstallLatency(b *testing.B) {
	cfg := signal.Config{
		Protocol:        signal.SSRT,
		RefreshInterval: time.Hour, // isolate trigger propagation
		Timeout:         3 * time.Hour,
		Retransmit:      50 * time.Millisecond,
		Shards:          4,
	}
	c, err := NewChain(6, cfg, lossy.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	tail := c.Tail.Events()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("flow/%d", i)
		if err := c.Install(key, []byte("v")); err != nil {
			b.Fatal(err)
		}
		for ev := range tail {
			if ev.Kind == signal.EventInstalled && ev.Key == key {
				break
			}
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)*1e6, "µs/end-to-end-install")
}
