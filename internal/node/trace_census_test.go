package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"softstate/internal/lossy"
	"softstate/internal/signal"
	"softstate/internal/telemetry"
)

// delayLink is a clean link with a 1 ms one-way delay, so hop and
// end-to-end trace latencies are exact multiples of a millisecond.
var delayLink = lossy.Config{Delay: time.Millisecond}

// TestChainTracePropagation: on a 4-node chain (3 links) a traced
// install keeps its origin stamp across every relay while the hop count
// grows, so the tail sees hops = 2 and an end-to-end latency of three
// link delays.
func TestChainTracePropagation(t *testing.T) {
	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var tailTrace []signal.Event
	cfg := fastConfig(signal.SSRT)
	cfg.Trace = telemetry.NewTracer(telemetry.TracerConfig{SampleEvery: 1})
	cfg.Metrics = reg
	cfg.OnEvent = func(ev signal.Event) {
		// Only the tail's upstream frames carry two prior hops on a
		// 4-node chain, so hop count identifies the tail's events.
		if ev.Kind == signal.EventInstalled && ev.Trace.Hops == 2 {
			mu.Lock()
			tailTrace = append(tailTrace, ev)
			mu.Unlock()
		}
	}
	v, c := vchain(t, 4, cfg, delayLink)
	if err := c.Install("flow/1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "install reaches the tail", func() bool {
		_, ok := c.Tail.Get("flow/1")
		return ok
	})
	mu.Lock()
	defer mu.Unlock()
	if len(tailTrace) != 1 {
		t.Fatalf("tail saw %d traced installs, want 1", len(tailTrace))
	}
	ev := tailTrace[0]
	if !ev.Trace.Sampled() || ev.Trace.Hops != 2 {
		t.Fatalf("tail trace context = %+v", ev.Trace)
	}
	// Virtual clock origin is the trace epoch: the origin stamp (biased
	// +1) is the virtual install time, and the tail received it three
	// 1 ms links later.
	if ev.Trace.OriginNs != 1 {
		t.Fatalf("origin stamp = %d, want 1 (install at virtual zero)", ev.Trace.OriginNs)
	}
	sawE2E := false
	for _, s := range reg.Gather() {
		if s.Name != "softstate_e2e_install_seconds" || s.Hist == nil || s.Hist.Count == 0 {
			continue
		}
		if s.Hist.SumNs/s.Hist.Count == int64(3*time.Millisecond) {
			sawE2E = true
		}
	}
	if !sawE2E {
		t.Fatal("no receiver observed the 3 ms end-to-end install latency")
	}
}

// TestChainCensusLinks: the chain's census links read converged once
// state propagates, flag a silently removed key (SS has no explicit
// removal) on the first hop, and read converged again after timeouts
// cascade the removal down the chain.
func TestChainCensusLinks(t *testing.T) {
	cfg := fastConfig(signal.SS)
	cfg.Census = true
	v, c := vchain(t, 5, cfg, delayLink)
	for i := 0; i < 30; i++ {
		if err := c.Install(fmt.Sprintf("flow/%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	links := c.CensusLinks()
	if len(links) != 4 {
		t.Fatalf("5-node chain has %d census links, want 4", len(links))
	}
	within(t, v, 2*time.Second, "census convergence", func() bool {
		rep := telemetry.RunCensus(links)
		if rep.Failed != 0 {
			t.Fatalf("census failed: %+v", rep.Links)
		}
		return rep.Converged()
	})

	if err := c.Remove("flow/07"); err != nil {
		t.Fatal(err)
	}
	rep := telemetry.RunCensus(links)
	if rep.Divergent == 0 {
		t.Fatalf("silent removal invisible to the census: %+v", rep)
	}
	if d := rep.Links[0].Divergent; len(d) != 1 || d[0] != "flow/07" {
		t.Fatalf("hop1 divergence = %+v", rep.Links[0])
	}
	within(t, v, 5*time.Second, "divergence resolves via timeouts", func() bool {
		return telemetry.RunCensus(links).Converged()
	})
}
