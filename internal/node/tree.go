package node

import (
	"fmt"
	"net"

	"softstate/internal/lossy"
	"softstate/internal/signal"
)

// Tree is a live k-ary signaling distribution tree over one in-memory
// switch: an origin Node at the root, fan relays at every interior
// level, and a Receiver at every leaf. Each edge is an independent
// pairwise protocol run (the relay holds upstream state with its own
// timers and re-signals it to each child), so a Depth-d tree gives every
// leaf a d-hop path from the root — the paper's multi-hop model
// generalized from a line to a fan-out topology.
type Tree struct {
	// Root is the origin; Install/Remove on the Tree go through it.
	Root *Node
	// Relays are the interior nodes in breadth-first order (level 1
	// first). Empty when Depth == 1 (a star).
	Relays []*Relay
	// Leaves are the edge receivers, left to right.
	Leaves []*signal.Receiver

	children []net.Addr // the root's direct children
	network  *lossy.Network
}

// NewTree builds a complete k-ary tree: Fanout children per node, Depth
// levels below the root, so Fanout^Depth leaves. Every edge shares the
// link impairment config (the switch applies it per datagram). cfg
// applies to every node.
func NewTree(fanout, depth int, cfg signal.Config, link lossy.Config) (*Tree, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("node: tree needs fanout ≥ 1, got %d", fanout)
	}
	if depth < 1 {
		return nil, fmt.Errorf("node: tree needs depth ≥ 1, got %d", depth)
	}
	leaves := 1
	for i := 0; i < depth; i++ {
		leaves *= fanout
		if leaves > 1<<20 {
			return nil, fmt.Errorf("node: tree fanout^depth = %d^%d too large", fanout, depth)
		}
	}
	nw, err := lossy.NewNetwork(link)
	if err != nil {
		return nil, err
	}
	t := &Tree{network: nw}

	// Every node's upstream endpoint is named by its (level, index)
	// position; the switch routes datagrams to endpoints by that name.
	upName := func(level, i int) string { return fmt.Sprintf("n%d.%d", level, i) }
	width := func(level int) int {
		w := 1
		for l := 0; l < level; l++ {
			w *= fanout
		}
		return w
	}
	childAddrs := func(level, i int) []net.Addr {
		out := make([]net.Addr, fanout)
		for c := 0; c < fanout; c++ {
			out[c] = nw.Endpoint(upName(level+1, i*fanout+c)).LocalAddr()
		}
		return out
	}

	fail := func(err error) (*Tree, error) {
		t.Close()
		return nil, err
	}

	// Leaves first (a receiver must be listening before its parent relay
	// starts re-signaling), then interior levels bottom-up, then the root.
	for i := 0; i < width(depth); i++ {
		rcv, err := signal.NewReceiver(nw.Endpoint(upName(depth, i)), cfg)
		if err != nil {
			return fail(err)
		}
		t.Leaves = append(t.Leaves, rcv)
	}
	interior := make([][]*Relay, depth) // [level] → relays, levels 1..depth-1
	for level := depth - 1; level >= 1; level-- {
		interior[level] = make([]*Relay, width(level))
		for i := 0; i < width(level); i++ {
			up := nw.Endpoint(upName(level, i))
			down := nw.Endpoint(upName(level, i) + ".down")
			relay, err := NewFanRelay(up, down, childAddrs(level, i), cfg)
			if err != nil {
				return fail(err)
			}
			interior[level][i] = relay
			t.Relays = append(t.Relays, relay)
		}
	}
	// t.Relays was appended bottom-up; flip to breadth-first order.
	t.Relays = t.Relays[:0]
	for level := 1; level < depth; level++ {
		t.Relays = append(t.Relays, interior[level]...)
	}

	root, err := New(nw.Endpoint("root"), cfg)
	if err != nil {
		return fail(err)
	}
	t.Root = root
	t.children = childAddrs(0, 0)
	return t, nil
}

// Install installs key at every direct child; relays fan it out to the
// leaves.
func (t *Tree) Install(key string, value []byte) error {
	var err error
	for _, c := range t.children {
		if e := t.Root.Install(c, key, value); err == nil {
			err = e
		}
	}
	return err
}

// Update changes key's value tree-wide.
func (t *Tree) Update(key string, value []byte) error {
	var err error
	for _, c := range t.children {
		if e := t.Root.Update(c, key, value); err == nil {
			err = e
		}
	}
	return err
}

// Remove withdraws key tree-wide.
func (t *Tree) Remove(key string) error {
	var err error
	for _, c := range t.children {
		if e := t.Root.Remove(c, key); err == nil {
			err = e
		}
	}
	return err
}

// Receivers returns every state-holding node, breadth-first: interior
// relays' upstream receivers, then the leaves.
func (t *Tree) Receivers() []*signal.Receiver {
	out := make([]*signal.Receiver, 0, len(t.Relays)+len(t.Leaves))
	for _, r := range t.Relays {
		out = append(out, r.Receiver())
	}
	return append(out, t.Leaves...)
}

// Holds reports how many nodes currently hold state for key (full-table
// scan per node; test/demo use).
func (t *Tree) Holds(key string) int {
	n := 0
	for _, r := range t.Receivers() {
		if _, ok := r.Get(key); ok {
			n++
		}
	}
	return n
}

// Close shuts the tree down root-first, so nothing re-signals into
// closing children. Safe on a partially constructed tree.
func (t *Tree) Close() error {
	var err error
	if t.Root != nil {
		err = t.Root.Close()
	}
	for _, r := range t.Relays {
		if cerr := r.Close(); err == nil {
			err = cerr
		}
	}
	for _, l := range t.Leaves {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
