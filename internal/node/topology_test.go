package node

import (
	"bytes"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/signal"
)

// vtree builds a fanout^depth tree in virtual time and registers cleanup.
func vtree(t *testing.T, fanout, depth int, cfg signal.Config, link lossy.Config) (*clock.Virtual, *Tree) {
	t.Helper()
	v := clock.NewVirtual()
	cfg.Clock = v
	link.Clock = v
	tr, err := NewTree(fanout, depth, cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return v, tr
}

// TestTreeShape: a 3-ary depth-2 tree has 3 interior relays and 9 leaves.
func TestTreeShape(t *testing.T) {
	_, tr := vtree(t, 3, 2, fastConfig(signal.SS), cleanLink)
	if len(tr.Relays) != 3 {
		t.Fatalf("want 3 relays, got %d", len(tr.Relays))
	}
	if len(tr.Leaves) != 9 {
		t.Fatalf("want 9 leaves, got %d", len(tr.Leaves))
	}
	if got := len(tr.Receivers()); got != 12 {
		t.Fatalf("want 12 state-holding nodes, got %d", got)
	}
}

// TestTreeStar: depth 1 degenerates to a star — no relays, direct
// fan-out from the root to every leaf.
func TestTreeStar(t *testing.T) {
	v, tr := vtree(t, 4, 1, fastConfig(signal.SS), cleanLink)
	if len(tr.Relays) != 0 || len(tr.Leaves) != 4 {
		t.Fatalf("want 0 relays + 4 leaves, got %d + %d", len(tr.Relays), len(tr.Leaves))
	}
	if err := tr.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "star install", func() bool { return tr.Holds("k") == 4 })
}

// TestTreePropagatesToAllLeaves: one install at the root reaches every
// node of a 2-ary depth-3 tree (2 + 4 interior, 8 leaves).
func TestTreePropagatesToAllLeaves(t *testing.T) {
	v, tr := vtree(t, 2, 3, fastConfig(signal.SSER), cleanLink)
	if err := tr.Install("flow/1", []byte("10Mbps")); err != nil {
		t.Fatal(err)
	}
	total := len(tr.Receivers()) // 14
	within(t, v, time.Second, "install reaches all nodes", func() bool { return tr.Holds("flow/1") == total })
	for i, l := range tr.Leaves {
		got, ok := l.Get("flow/1")
		if !ok || !bytes.Equal(got, []byte("10Mbps")) {
			t.Fatalf("leaf %d holds %q, %v", i, got, ok)
		}
	}
	// Explicit removal cascades down every branch.
	if err := tr.Remove("flow/1"); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "removal clears the tree", func() bool { return tr.Holds("flow/1") == 0 })
}

// TestTreeConvergesUnderLoss: reliable triggers repair per-edge losses
// independently on every branch.
func TestTreeConvergesUnderLoss(t *testing.T) {
	link := lossy.Config{Loss: 0.2, Delay: time.Millisecond, Seed: 17}
	v, tr := vtree(t, 2, 2, fastConfig(signal.SSRTR), link)
	if err := tr.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	total := len(tr.Receivers())
	within(t, v, 10*time.Second, "tree converges through 20% loss", func() bool { return tr.Holds("k") == total })
}

// vring builds an n-node ring in virtual time and registers cleanup.
func vring(t *testing.T, nodes int, cfg signal.Config, link lossy.Config) (*clock.Virtual, *Ring) {
	t.Helper()
	v := clock.NewVirtual()
	cfg.Clock = v
	link.Clock = v
	r, err := NewRing(nodes, cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return v, r
}

// TestRingFullCircle: an install travels the whole cycle and arrives at
// the receiver co-located with the origin.
func TestRingFullCircle(t *testing.T) {
	v, r := vring(t, 4, fastConfig(signal.SSER), cleanLink)
	if len(r.Receivers()) != 4 { // 3 interior relays + home
		t.Fatalf("4-node ring should hold state at 4 points, got %d", len(r.Receivers()))
	}
	if err := r.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "install circles back home", func() bool {
		got, ok := r.Home().Get("k")
		return ok && bytes.Equal(got, []byte("v"))
	})
	if r.Holds("k") != 4 {
		t.Fatalf("every ring node should hold the key, got %d", r.Holds("k"))
	}
	if err := r.Remove("k"); err != nil {
		t.Fatal(err)
	}
	within(t, v, time.Second, "removal circles the ring", func() bool { return r.Holds("k") == 0 })
}

// TestRingConvergesUnderLoss: the full-circumference path still
// converges over lossy links with reliable triggers.
func TestRingConvergesUnderLoss(t *testing.T) {
	link := lossy.Config{Loss: 0.15, Delay: time.Millisecond, Seed: 23}
	v, r := vring(t, 5, fastConfig(signal.SSRTR), link)
	if err := r.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	within(t, v, 10*time.Second, "ring converges through 15% loss", func() bool {
		return r.Holds("k") == len(r.Receivers())
	})
}

// TestFanRelayValidation: constructor guards.
func TestFanRelayValidation(t *testing.T) {
	if _, err := NewFanRelay(nil, nil, nil, signal.Config{}); err == nil {
		t.Fatal("nil conns must be rejected")
	}
	v := clock.NewVirtual()
	link := lossy.Config{Clock: v}
	a, b, err := lossy.Pipe(link)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if _, err := NewFanRelay(a, b, nil, signal.Config{Clock: v}); err == nil {
		t.Fatal("empty next list must be rejected")
	}
	if _, err := NewRelay(a, b, nil, signal.Config{Clock: v}); err == nil {
		t.Fatal("nil next must be rejected")
	}
}

// TestTreeValidation: constructor guards.
func TestTreeValidation(t *testing.T) {
	if _, err := NewTree(0, 2, signal.Config{}, lossy.Config{}); err == nil {
		t.Fatal("fanout 0 must be rejected")
	}
	if _, err := NewTree(2, 0, signal.Config{}, lossy.Config{}); err == nil {
		t.Fatal("depth 0 must be rejected")
	}
	if _, err := NewTree(1<<11, 2, signal.Config{}, lossy.Config{}); err == nil {
		t.Fatal("oversized tree must be rejected")
	}
	if _, err := NewRing(1, signal.Config{}, lossy.Config{}); err == nil {
		t.Fatal("1-node ring must be rejected")
	}
}
