package node

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/signal"
	"softstate/internal/wire"
)

// fastConfig uses millisecond timers so tests complete quickly while
// preserving the paper's R:T:Γ proportions.
func fastConfig(proto signal.Protocol) signal.Config {
	return signal.Config{
		Protocol:        proto,
		RefreshInterval: 30 * time.Millisecond,
		Timeout:         90 * time.Millisecond,
		Retransmit:      10 * time.Millisecond,
		Shards:          4,
	}
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// udpConn opens a loopback UDP socket or skips the test.
func udpConn(t *testing.T) net.PacketConn {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	return c
}

// fanout builds one Node and count receivers over a virtual-time lossy
// switch: the whole 64-receiver topology shares one clock, so the tests
// advance simulated timeout windows instead of sleeping through them.
func fanout(t *testing.T, cfg signal.Config, count int) (*clock.Virtual, *Node, []*signal.Receiver, []net.Addr) {
	t.Helper()
	v := clock.NewVirtual()
	cfg.Clock = v
	nw, err := lossy.NewNetwork(lossy.Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(nw.Endpoint("node"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	rcvs := make([]*signal.Receiver, count)
	addrs := make([]net.Addr, count)
	for i := range rcvs {
		rc := nw.Endpoint(fmt.Sprintf("peer%03d", i))
		addrs[i] = rc.LocalAddr()
		rcv, err := signal.NewReceiver(rc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rcvs[i] = rcv
	}
	t.Cleanup(func() {
		for _, r := range rcvs {
			r.Close()
		}
	})
	return v, n, rcvs, addrs
}

// TestNodeFanoutInstallAndDemux: one node maintains distinct state at many
// receivers over a single socket, and inbound ACKs demultiplex back to the
// right per-peer session.
func TestNodeFanoutInstallAndDemux(t *testing.T) {
	const peers, keys = 8, 16
	cfg := fastConfig(signal.SSRT)
	v, n, rcvs, addrs := fanout(t, cfg, peers)
	for p := 0; p < peers; p++ {
		for k := 0; k < keys; k++ {
			if err := n.Install(addrs[p], fmt.Sprintf("flow/%d", k), []byte(fmt.Sprintf("peer%d", p))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for p := 0; p < peers; p++ {
		p := p
		within(t, v, time.Second, fmt.Sprintf("peer %d installs", p), func() bool { return rcvs[p].Len() == keys })
		val, ok := rcvs[p].Get("flow/0")
		if !ok || !bytes.Equal(val, []byte(fmt.Sprintf("peer%d", p))) {
			t.Fatalf("peer %d holds %q", p, val)
		}
	}
	// Reliable triggers: every session must see its ACKs and quiesce.
	within(t, v, time.Second, "all triggers acked", func() bool {
		acked := true
		for _, s := range n.Peers() {
			if s.Live() != keys {
				acked = false
			}
		}
		return acked && n.Stats().Received["ack"] >= peers*keys
	})
	if got := len(n.Peers()); got != peers {
		t.Fatalf("node tracks %d peers, want %d", got, peers)
	}
	if n.Live() != peers*keys {
		t.Fatalf("node live = %d, want %d", n.Live(), peers*keys)
	}
}

// TestNodeFanoutSummaryRefresh is the acceptance bar live: 64 peers kept
// alive from one socket, refreshed exclusively by per-peer summary
// datagrams — no per-key refreshes — through several timeout windows.
func TestNodeFanoutSummaryRefresh(t *testing.T) {
	const peers, keys = 64, 8
	cfg := fastConfig(signal.SS)
	cfg.RefreshInterval = 40 * time.Millisecond
	cfg.Timeout = 160 * time.Millisecond
	cfg.SummaryRefresh = true
	cfg.Shards = 2 // 64 receivers also run in this test; bound goroutines
	v, n, rcvs, addrs := fanout(t, cfg, peers)
	for p := 0; p < peers; p++ {
		for k := 0; k < keys; k++ {
			if err := n.Install(addrs[p], fmt.Sprintf("flow/%d", k), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for p := 0; p < peers; p++ {
		p := p
		within(t, v, time.Second, fmt.Sprintf("peer %d installs", p), func() bool { return rcvs[p].Len() == keys })
	}
	v.Run(4 * cfg.Timeout)
	for p := 0; p < peers; p++ {
		if got := rcvs[p].Len(); got != keys {
			t.Fatalf("peer %d decayed to %d of %d keys despite summary refresh", p, got, keys)
		}
	}
	st := n.Stats()
	if st.Sent["refresh"] != 0 {
		t.Fatalf("summary mode sent %d per-key refreshes", st.Sent["refresh"])
	}
	if st.Sent["summary-refresh"] == 0 {
		t.Fatal("no summary refreshes sent")
	}
	// Each peer's 8 keys fit one datagram, so each sweep costs exactly
	// one datagram per peer: the renewal rate per datagram is the per-peer
	// key count, not 1.
	sweeps := st.Sent["summary-refresh"] / peers
	if sweeps < 2 {
		t.Fatalf("only %d sweeps in 4 timeout windows (%d summaries)", sweeps, st.Sent["summary-refresh"])
	}
}

// TestNodeSelectiveRemove: removing one peer's keys leaves the other
// sessions untouched.
func TestNodeSelectiveRemove(t *testing.T) {
	const peers, keys = 4, 8
	cfg := fastConfig(signal.SSER)
	v, n, rcvs, addrs := fanout(t, cfg, peers)
	for p := 0; p < peers; p++ {
		for k := 0; k < keys; k++ {
			if err := n.Install(addrs[p], fmt.Sprintf("flow/%d", k), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for p := 0; p < peers; p++ {
		p := p
		within(t, v, time.Second, "installs", func() bool { return rcvs[p].Len() == keys })
	}
	for k := 0; k < keys; k++ {
		if err := n.Remove(addrs[0], fmt.Sprintf("flow/%d", k)); err != nil {
			t.Fatal(err)
		}
	}
	within(t, v, time.Second, "peer 0 emptied", func() bool { return rcvs[0].Len() == 0 })
	for p := 1; p < peers; p++ {
		if rcvs[p].Len() != keys {
			t.Fatalf("peer %d lost state on peer 0's removal", p)
		}
	}
	if n.Live() != (peers-1)*keys {
		t.Fatalf("node live = %d, want %d", n.Live(), (peers-1)*keys)
	}
}

// TestNodeUnknownPeerCounted: datagrams from an address with no session
// are dropped and counted, not misrouted.
func TestNodeUnknownPeerCounted(t *testing.T) {
	nconn := udpConn(t)
	n, err := New(nconn, fastConfig(signal.SS))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	stray := udpConn(t)
	defer stray.Close()
	m := wireAck(7, "k")
	if _, err := stray.WriteTo(m, nconn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	eventually(t, "stray counted", func() bool { return n.Unknown() == 1 })
}

// TestNodeCloseIdempotent mirrors the sender contract.
func TestNodeCloseIdempotent(t *testing.T) {
	n, err := New(udpConn(t), fastConfig(signal.SS))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := n.Install(&net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}, "k", nil); err != signal.ErrClosed {
		t.Fatalf("Install after close: %v", err)
	}
}

// wireAck builds a raw ack datagram.
func wireAck(seq uint64, key string) []byte {
	m := wire.Message{Type: wire.TypeAck, Seq: seq, Key: key}
	data, err := m.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return data
}
