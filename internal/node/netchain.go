package node

import (
	"fmt"
	"net"

	"softstate/internal/lossy"
	"softstate/internal/signal"
)

// NetChain is Chain's switch-backed sibling: the same origin → relays →
// tail signaling path, but every hop's sockets are named endpoints of one
// shared lossy.Network instead of private pipes. That single switch is
// what the failure-campaign layer needs — partitions can cut the path
// between any two hops, links can degrade asymmetrically, and any hop can
// crash and restart on its own address mid-run (RestartOrigin,
// RestartRelay, RestartTail), with the protocol left to resynchronize
// state through its own mechanisms.
//
// Node i's upstream socket is endpoint "n<i>.up", its downstream socket
// "n<i>.down"; the origin has only a downstream socket and the tail only
// an upstream one.
type NetChain struct {
	// Net is the shared switch; campaign layers drive faults through it.
	Net *lossy.Network
	// Origin is the head node; Install/Remove go through it.
	Origin *Node
	// Relays are the interior hops, upstream to downstream; Relays[j] is
	// chain node j+1.
	Relays []*Relay
	// Tail is the final receiver.
	Tail *signal.Receiver

	cfg   signal.Config
	nodes int
	first net.Addr
}

func chainUpName(i int) string   { return fmt.Sprintf("n%d.up", i) }
func chainDownName(i int) string { return fmt.Sprintf("n%d.down", i) }

// NewNetChain builds a chain of nodes ≥ 2 over one switch configured by
// link; cfg applies to every hop.
func NewNetChain(nodes int, cfg signal.Config, link lossy.Config) (*NetChain, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("node: chain needs ≥ 2 nodes, got %d", nodes)
	}
	nw, err := lossy.NewNetwork(link)
	if err != nil {
		return nil, err
	}
	c := &NetChain{Net: nw, cfg: cfg, nodes: nodes}
	origin, err := New(nw.Endpoint(chainDownName(0)), cfg)
	if err != nil {
		return nil, err
	}
	c.Origin = origin
	c.first = nw.Endpoint(chainUpName(1)).LocalAddr()
	for i := 1; i < nodes-1; i++ {
		relay, err := NewRelay(
			nw.Endpoint(chainUpName(i)),
			nw.Endpoint(chainDownName(i)),
			nw.Endpoint(chainUpName(i+1)).LocalAddr(),
			cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Relays = append(c.Relays, relay)
	}
	tail, err := signal.NewReceiver(nw.Endpoint(chainUpName(nodes-1)), cfg)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Tail = tail
	return c, nil
}

// Install installs key at the first hop; relays propagate it to the tail.
func (c *NetChain) Install(key string, value []byte) error {
	return c.Origin.Install(c.first, key, value)
}

// Update changes key's value end to end.
func (c *NetChain) Update(key string, value []byte) error {
	return c.Origin.Update(c.first, key, value)
}

// Remove withdraws key end to end.
func (c *NetChain) Remove(key string) error {
	return c.Origin.Remove(c.first, key)
}

// Receivers returns every state-holding hop, upstream to downstream.
func (c *NetChain) Receivers() []*signal.Receiver {
	out := make([]*signal.Receiver, 0, len(c.Relays)+1)
	for _, r := range c.Relays {
		out = append(out, r.Receiver())
	}
	if c.Tail != nil {
		out = append(out, c.Tail)
	}
	return out
}

// Holds reports how many hops currently hold state for key.
func (c *NetChain) Holds(key string) int {
	n := 0
	for _, r := range c.Receivers() {
		if _, ok := r.Get(key); ok {
			n++
		}
	}
	return n
}

// CheckInvariants audits every hop — the origin's sender core, each
// relay's two faces, and the tail — returning all violations found.
func (c *NetChain) CheckInvariants() []string {
	var bad []string
	if c.Origin != nil {
		bad = append(bad, c.Origin.CheckInvariants()...)
	}
	for _, r := range c.Relays {
		bad = append(bad, r.CheckInvariants()...)
	}
	if c.Tail != nil {
		bad = append(bad, c.Tail.CheckInvariants()...)
	}
	return bad
}

// PartitionAt cuts the chain between node i and node i+1: nodes ≤ i land
// on one side of the switch partition, nodes > i on the other. Heal
// reverses it.
func (c *NetChain) PartitionAt(i int) {
	var left []string
	for n := 0; n <= i && n < c.nodes; n++ {
		if n > 0 {
			left = append(left, chainUpName(n))
		}
		if n < c.nodes-1 {
			left = append(left, chainDownName(n))
		}
	}
	c.Net.Partition(left)
}

// Heal removes any partition.
func (c *NetChain) Heal() { c.Net.Heal() }

// SetForwardLoss overrides the loss probability of the directed link from
// node i to node i+1 — the trigger/refresh direction. A negative p clears
// the override. Paired with SetReverseLoss it models asymmetric loss,
// where data flows but acknowledgements die (or vice versa).
func (c *NetChain) SetForwardLoss(i int, p float64) {
	c.Net.SetLinkLoss(chainDownName(i), chainUpName(i+1), p)
}

// SetReverseLoss overrides the loss probability of the directed link from
// node i+1 back to node i — the ack/nack/notify direction.
func (c *NetChain) SetReverseLoss(i int, p float64) {
	c.Net.SetLinkLoss(chainUpName(i+1), chainDownName(i), p)
}

// RestartOrigin crashes and restarts the head node: its socket dies and a
// fresh node comes back on the same address with no installed state — the
// caller decides what the second life re-installs.
func (c *NetChain) RestartOrigin() error {
	c.Origin.Close()
	origin, err := New(c.Net.Restart(chainDownName(0)), c.cfg)
	if err != nil {
		return err
	}
	c.Origin = origin
	return nil
}

// RestartRelay crashes and restarts interior hop j (chain node j+1): both
// its sockets die and a fresh relay takes over the same addresses with
// empty tables. Upstream refresh/retransmission repopulates it, and its
// new downstream incarnation re-signals from a later sequence space.
func (c *NetChain) RestartRelay(j int) error {
	if j < 0 || j >= len(c.Relays) {
		return fmt.Errorf("node: no relay %d", j)
	}
	node := j + 1
	c.Relays[j].Close()
	relay, err := NewRelay(
		c.Net.Restart(chainUpName(node)),
		c.Net.Restart(chainDownName(node)),
		c.Net.Endpoint(chainUpName(node+1)).LocalAddr(),
		c.cfg)
	if err != nil {
		return err
	}
	c.Relays[j] = relay
	return nil
}

// RestartTail crashes and restarts the tail receiver: a cold restart with
// an empty table, left to re-converge (or not — hard state cannot) from
// upstream refreshes.
func (c *NetChain) RestartTail() error {
	c.Tail.Close()
	tail, err := signal.NewReceiver(c.Net.Restart(chainUpName(c.nodes-1)), c.cfg)
	if err != nil {
		return err
	}
	c.Tail = tail
	return nil
}

// Close shuts every element down, head to tail. Safe on a partially
// constructed chain.
func (c *NetChain) Close() error {
	var err error
	if c.Origin != nil {
		err = c.Origin.Close()
	}
	for _, r := range c.Relays {
		if cerr := r.Close(); err == nil {
			err = cerr
		}
	}
	if c.Tail != nil {
		if cerr := c.Tail.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
