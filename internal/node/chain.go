package node

import (
	"fmt"
	"net"

	"softstate/internal/lossy"
	"softstate/internal/signal"
	"softstate/internal/telemetry"
)

// Chain is a live N-node signaling path: an origin Node, N-2 interior
// Relays, and a tail Receiver, each hop joined by its own independently
// impaired in-memory link. It is the runtime counterpart of the paper's
// multi-hop topology (source → routers → sink).
type Chain struct {
	// Origin is the head node; Install/Remove on the Chain go through it.
	Origin *Node
	// Relays are the interior hops, upstream to downstream.
	Relays []*Relay
	// Tail is the final receiver.
	Tail *signal.Receiver

	first net.Addr // origin's peer: the first hop's upstream address
}

// NewChain builds a chain of nodes ≥ 2 nodes (nodes-1 links), every link
// subject to link impairments. cfg applies to every hop.
func NewChain(nodes int, cfg signal.Config, link lossy.Config) (*Chain, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("node: chain needs ≥ 2 nodes, got %d", nodes)
	}
	c := &Chain{}
	// Link i connects node i to node i+1: a[i] is node i's downstream
	// socket, b[i] is node i+1's upstream socket.
	a := make([]net.PacketConn, nodes-1)
	b := make([]net.PacketConn, nodes-1)
	fail := func(err error) (*Chain, error) {
		c.Close()
		for i := range a { // conn Close is idempotent, so double-closing
			if a[i] != nil { // endpoint-owned sockets is harmless
				a[i].Close()
			}
			if b[i] != nil {
				b[i].Close()
			}
		}
		return nil, err
	}
	for i := 0; i < nodes-1; i++ {
		la, lb, err := lossy.Pipe(link)
		if err != nil {
			return fail(err)
		}
		a[i], b[i] = la, lb
	}
	origin, err := New(a[0], cfg)
	if err != nil {
		return fail(err)
	}
	c.Origin = origin
	c.first = b[0].LocalAddr()
	for i := 1; i < nodes-1; i++ {
		relay, err := NewRelay(b[i-1], a[i], b[i].LocalAddr(), cfg)
		if err != nil {
			return fail(err)
		}
		c.Relays = append(c.Relays, relay)
	}
	tail, err := signal.NewReceiver(b[nodes-2], cfg)
	if err != nil {
		return fail(err)
	}
	c.Tail = tail
	return c, nil
}

// FirstHop returns the first hop's upstream address — the peer Install
// and Remove target at the origin, and the Event.Peer the origin's
// sender events carry.
func (c *Chain) FirstHop() net.Addr { return c.first }

// Install installs key at the first hop; relays propagate it to the tail.
func (c *Chain) Install(key string, value []byte) error {
	return c.Origin.Install(c.first, key, value)
}

// Update changes key's value end to end.
func (c *Chain) Update(key string, value []byte) error {
	return c.Origin.Update(c.first, key, value)
}

// Remove withdraws key; with explicit-removal protocols the removal
// signal cascades hop by hop, otherwise each hop times out in turn.
func (c *Chain) Remove(key string) error {
	return c.Origin.Remove(c.first, key)
}

// Receivers returns every state-holding hop, upstream to downstream: the
// relays' upstream receivers, then the tail.
func (c *Chain) Receivers() []*signal.Receiver {
	out := make([]*signal.Receiver, 0, len(c.Relays)+1)
	for _, r := range c.Relays {
		out = append(out, r.Receiver())
	}
	if c.Tail != nil {
		out = append(out, c.Tail)
	}
	return out
}

// CensusLinks pairs every adjacent (sender intent, receiver held) digest
// source along the chain, upstream to downstream — the auditor wiring
// for a live convergence census (requires signal.Config.Census on cfg).
// Each chain hop has exactly one downstream peer, so the O(1) global
// table sources are exact per-link digests here.
func (c *Chain) CensusLinks() []telemetry.CensusLink {
	senders := []*Node{c.Origin}
	for _, r := range c.Relays {
		senders = append(senders, r.Downstream())
	}
	rcvs := c.Receivers()
	out := make([]telemetry.CensusLink, 0, len(rcvs))
	for i, rcv := range rcvs {
		out = append(out, telemetry.CensusLink{
			Name:   fmt.Sprintf("hop%d", i+1),
			Intent: senders[i].CensusSource(fmt.Sprintf("node%d/intent", i)),
			Held:   rcv.CensusSource(fmt.Sprintf("node%d/held", i+1)),
		})
	}
	return out
}

// Holds reports how many hops currently hold state for key. It uses the
// receivers' any-sender Get, a full-table scan per hop — fine for tests
// and demos, not for hot paths at scale (use GetFrom with a known peer).
func (c *Chain) Holds(key string) int {
	n := 0
	for _, r := range c.Receivers() {
		if _, ok := r.Get(key); ok {
			n++
		}
	}
	return n
}

// Close shuts every element down, head to tail. Safe on a partially
// constructed chain.
func (c *Chain) Close() error {
	var err error
	if c.Origin != nil {
		err = c.Origin.Close()
	}
	for _, r := range c.Relays {
		if cerr := r.Close(); err == nil {
			err = cerr
		}
	}
	if c.Tail != nil {
		if cerr := c.Tail.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
