package node

import (
	"fmt"

	"softstate/internal/lossy"
	"softstate/internal/signal"
)

// Ring is a unidirectional signaling ring of n nodes: the origin signals
// its successor, every interior node relays to the next, and the last
// hop closes the cycle by delivering back to a receiver co-located with
// the origin. Structurally it is a chain of n+1 endpoints whose tail
// lives at node 0, so installed state travels the full circumference —
// the worst-case propagation path for an n-node cycle — and the origin
// can observe its own install arriving after n hops.
type Ring struct {
	chain *Chain
}

// NewRing builds an n-node ring (n ≥ 2): n links, each independently
// impaired, closed back to the origin. cfg applies to every hop.
func NewRing(nodes int, cfg signal.Config, link lossy.Config) (*Ring, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("node: ring needs ≥ 2 nodes, got %d", nodes)
	}
	c, err := NewChain(nodes+1, cfg, link)
	if err != nil {
		return nil, err
	}
	return &Ring{chain: c}, nil
}

// Install starts key around the ring.
func (r *Ring) Install(key string, value []byte) error { return r.chain.Install(key, value) }

// Update changes key's value around the ring.
func (r *Ring) Update(key string, value []byte) error { return r.chain.Update(key, value) }

// Remove withdraws key around the ring.
func (r *Ring) Remove(key string) error { return r.chain.Remove(key) }

// Origin returns the node that originates signals.
func (r *Ring) Origin() *Node { return r.chain.Origin }

// Relays returns the interior nodes in propagation order.
func (r *Ring) Relays() []*Relay { return r.chain.Relays }

// Home returns the receiver co-located with the origin — the point where
// a signal has survived the whole cycle.
func (r *Ring) Home() *signal.Receiver { return r.chain.Tail }

// Receivers returns every state-holding node in propagation order,
// ending at Home.
func (r *Ring) Receivers() []*signal.Receiver { return r.chain.Receivers() }

// Holds reports how many nodes currently hold state for key.
func (r *Ring) Holds(key string) int { return r.chain.Holds(key) }

// Close shuts every node down.
func (r *Ring) Close() error { return r.chain.Close() }
