package sim

import (
	"reflect"
	"testing"
	"time"

	"softstate/internal/signal"
	"softstate/internal/telemetry"
)

// TestLiveRingTopology: the same churned workload runs on a ring — the
// signal's sampling point is the receiver back at the origin after the
// full cycle — deterministically per seed.
func TestLiveRingTopology(t *testing.T) {
	cfg := fastLive(signal.SSRTR, 4, 0.1)
	cfg.Topology = "ring"
	cfg.Keys = 12
	a, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology != "ring" || a.Leaves != 1 {
		t.Fatalf("ring run mislabeled: %+v", a)
	}
	if a.Samples == 0 || a.Datagrams == 0 || a.KeyEvents == 0 {
		t.Fatalf("degenerate ring run: %+v", a)
	}
	if a.Inconsistency >= 1 {
		t.Fatalf("ring never converged: I = %v", a.Inconsistency)
	}
	b, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed ring runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestLiveTreeTopology: a binary tree of depth 2 samples consistency at
// every leaf, so Samples scales with the leaf count.
func TestLiveTreeTopology(t *testing.T) {
	cfg := fastLive(signal.SSER, 2, 0.1)
	cfg.Topology = "tree"
	cfg.TreeFanout = 2
	cfg.Keys = 12
	a, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology != "tree" || a.Leaves != 4 {
		t.Fatalf("tree run mislabeled: %+v", a)
	}
	chain := fastLive(signal.SSER, 2, 0.1)
	chain.Keys = 12
	c, err := RunLive(chain)
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples != 4*c.Samples {
		t.Fatalf("tree should sample 4 leaves per chain sample: %d vs %d", a.Samples, c.Samples)
	}
	b, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed tree runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestLiveTopologyValidation: bad topology configs are rejected.
func TestLiveTopologyValidation(t *testing.T) {
	cfg := fastLive(signal.SS, 1, 0)
	cfg.Topology = "torus"
	if _, err := RunLive(cfg); err == nil {
		t.Fatal("unknown topology must be rejected")
	}
	cfg = fastLive(signal.SS, 1, 0)
	cfg.Topology = "ring"
	if _, err := RunLive(cfg); err == nil {
		t.Fatal("1-node ring must be rejected")
	}
}

// TestLiveMetricsObserverOnly: instrumenting a run must not change its
// result (metrics are pure observers), and the registry must hold the
// paper gauges after a 1-hop run.
func TestLiveMetricsObserverOnly(t *testing.T) {
	cfg := fastLive(signal.SSRT, 1, 0.15)
	bare, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = telemetry.NewRegistry()
	instrumented, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatalf("metrics changed the run:\n%+v\n%+v", bare, instrumented)
	}

	found := map[string]bool{}
	for _, s := range cfg.Metrics.Gather() {
		found[s.Name] = true
	}
	for _, want := range []string{
		"softstate_inconsistency_ratio",
		"softstate_datagrams_per_key_per_s",
		"softstate_install_ack_seconds",
	} {
		if !found[want] {
			t.Fatalf("registry missing %s after instrumented run; have %v", want, found)
		}
	}
	if qs, ok := cfg.Metrics.Quantiles("softstate_install_ack_seconds", 0.5); !ok || qs[0] <= 0 {
		t.Fatalf("install→ack histogram should be populated, got %v %v", qs, ok)
	}
}

// TestLiveMetricsMultiHop: instrumentation also attaches (without the
// paper collector) on chain runs, and stays observer-only.
func TestLiveMetricsMultiHop(t *testing.T) {
	cfg := fastLive(signal.SSER, 3, 0.1)
	cfg.Duration = 10 * time.Second
	bare, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = telemetry.NewRegistry()
	instrumented, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatalf("metrics changed the chain run:\n%+v\n%+v", bare, instrumented)
	}
	if len(cfg.Metrics.Gather()) == 0 {
		t.Fatal("chain endpoints should register instruments")
	}
}
