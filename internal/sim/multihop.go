package sim

import (
	"fmt"

	"softstate/internal/des"
	"softstate/internal/multihop"
	"softstate/internal/netsim"
	"softstate/internal/rand"
	"softstate/internal/singlehop"
	"softstate/internal/stats"
)

// MultiConfig parameterizes a multi-hop simulation (paper §III-B setting:
// infinite state lifetime, a sender updating state that must propagate to
// every node on the path).
type MultiConfig struct {
	// Protocol is SS, SS+RT, or HS (the paper's multi-hop protocols).
	Protocol singlehop.Protocol
	// Params are the multi-hop system parameters.
	Params multihop.Params
	// Horizon is the simulated time per replication, in seconds.
	Horizon float64
	// Runs is the number of independent replications (for CIs).
	Runs int
	// Seed makes the run reproducible.
	Seed uint64
	// Timers selects the protocol-timer distribution.
	Timers rand.TimerKind
	// DelayKind selects the per-hop channel delay distribution.
	DelayKind rand.TimerKind
}

// MultiResult aggregates a multi-hop simulation.
type MultiResult struct {
	// Inconsistency estimates the end-to-end ratio I (any hop mismatched).
	Inconsistency Estimate
	// PerHop estimates the per-hop inconsistency of Figure 17.
	PerHop []Estimate
	// MsgRate estimates signaling messages per second over all links.
	MsgRate Estimate
	// Runs is the number of replications.
	Runs int
}

// RunMultiHop simulates cfg.Runs independent replications.
func RunMultiHop(cfg MultiConfig) (MultiResult, error) {
	if !multihop.Supported(cfg.Protocol) {
		return MultiResult{}, fmt.Errorf("sim: protocol %v is not part of the multi-hop study", cfg.Protocol)
	}
	if err := cfg.Params.Validate(); err != nil {
		return MultiResult{}, err
	}
	if cfg.Runs <= 0 || cfg.Horizon <= 0 {
		return MultiResult{}, fmt.Errorf("sim: Runs (%d) and Horizon (%v) must be positive", cfg.Runs, cfg.Horizon)
	}
	root := rand.NewSource(cfg.Seed)
	n := cfg.Params.Hops
	var e2e, rate stats.Mean
	perHop := make([]stats.Mean, n)
	for r := 0; r < cfg.Runs; r++ {
		rep := runPathReplication(cfg, root.Split())
		e2e.Add(rep.endToEnd)
		rate.Add(rep.msgRate)
		for i := 0; i < n; i++ {
			perHop[i].Add(rep.perHop[i])
		}
	}
	res := MultiResult{
		Inconsistency: Estimate{e2e.Mean(), e2e.CI95()},
		MsgRate:       Estimate{rate.Mean(), rate.CI95()},
		PerHop:        make([]Estimate, n),
		Runs:          cfg.Runs,
	}
	for i := range perHop {
		res.PerHop[i] = Estimate{perHop[i].Mean(), perHop[i].CI95()}
	}
	return res, nil
}

type pathOutcome struct {
	endToEnd float64
	perHop   []float64
	msgRate  float64
}

// node is one receiver on the path (index 1..N); index 0 is the sender,
// which shares the struct for the relay machinery.
type node struct {
	idx   int
	value int // 0 = no state

	// Downstream reliable-relay state (SS+RT, HS).
	sentSeq  int
	ackedSeq int
	retx     *des.Timer

	timeout *des.Timer
	frac    stats.Fraction
}

// path drives one replication.
type path struct {
	cfg   MultiConfig
	k     *des.Kernel
	net   *netsim.Path
	rng   *rand.Source
	nodes []*node // nodes[0] = sender, nodes[1..N] = receivers

	seq          int
	refreshTimer *des.Timer
	faultMsgs    int
	e2e          stats.Fraction
}

func runPathReplication(cfg MultiConfig, rng *rand.Source) pathOutcome {
	k := des.New()
	n := cfg.Params.Hops
	pt := &path{
		cfg: cfg,
		k:   k,
		net: netsim.NewPath(k, rng.Split(), n, netsim.Config{
			Loss:  cfg.Params.Loss,
			Delay: rand.Timer{Kind: cfg.DelayKind, Mean: cfg.Params.Delay},
		}),
		rng:   rng.Split(),
		nodes: make([]*node, n+1),
	}
	for i := range pt.nodes {
		pt.nodes[i] = &node{idx: i}
	}
	pt.start()
	k.RunUntil(cfg.Horizon)
	out := pathOutcome{perHop: make([]float64, n)}
	for j := 1; j <= n; j++ {
		pt.nodes[j].frac.Finish(cfg.Horizon)
		out.perHop[j-1] = pt.nodes[j].frac.Value()
	}
	pt.e2e.Finish(cfg.Horizon)
	out.endToEnd = pt.e2e.Value()
	out.msgRate = (float64(pt.net.Totals().Transmissions) + float64(pt.faultMsgs)) / cfg.Horizon
	return out
}

func (p *path) timer(mean float64) rand.Timer {
	return rand.Timer{Kind: p.cfg.Timers, Mean: mean}
}

func (p *path) reliable() bool { return p.cfg.Protocol != singlehop.SS }

func (p *path) soft() bool { return p.cfg.Protocol != singlehop.HS }

// observe re-records every node's consistency with the sender, and the
// end-to-end predicate (all nodes consistent at once).
func (p *path) observe() {
	sv := p.nodes[0].value
	all := true
	for j := 1; j < len(p.nodes); j++ {
		n := p.nodes[j]
		mismatch := n.value != sv
		n.frac.Observe(p.k.Now(), mismatch)
		if mismatch {
			all = false
		}
	}
	p.e2e.Observe(p.k.Now(), !all)
}

func (p *path) start() {
	p.nodes[0].value = 1
	p.observe()
	p.seq++
	p.forward(0)
	if p.soft() {
		p.refreshTimer = p.k.NewTimer(p.onRefresh)
		p.refreshTimer.Reset(p.timer(p.cfg.Params.Refresh).Sample(p.rng))
	}
	if p.cfg.Params.UpdateRate > 0 {
		p.k.Schedule(p.rng.Exp(1/p.cfg.Params.UpdateRate), p.onUpdate)
	}
	if p.cfg.Protocol == singlehop.HS && p.cfg.Params.FalseRemoval > 0 {
		for j := 1; j < len(p.nodes); j++ {
			p.armFalseSignal(j)
		}
	}
}

func (p *path) onUpdate() {
	p.nodes[0].value++
	p.seq++
	p.observe()
	p.forward(0)
	p.k.Schedule(p.rng.Exp(1/p.cfg.Params.UpdateRate), p.onUpdate)
}

func (p *path) onRefresh() {
	p.relayRefresh(0)
	p.refreshTimer.Reset(p.timer(p.cfg.Params.Refresh).Sample(p.rng))
}

// relayRefresh sends the node's current value downstream best-effort and
// continues the relay on delivery.
func (p *path) relayRefresh(from int) {
	if from >= p.cfg.Params.Hops {
		return
	}
	m := message{Type: msgRefresh, Value: p.nodes[from].value}
	p.net.Hops[from].Forward.Send(func() { p.onMessage(from+1, m) })
}

// forward pushes node `from`'s current value to from+1, reliably when the
// protocol retransmits triggers hop-by-hop.
func (p *path) forward(from int) {
	if from >= p.cfg.Params.Hops {
		return
	}
	n := p.nodes[from]
	var seq int
	if from == 0 {
		seq = p.seq
	} else {
		seq = n.sentSeq
	}
	n.sentSeq = seq
	m := message{Type: msgTrigger, Seq: seq, Value: n.value}
	p.net.Hops[from].Forward.Send(func() { p.onMessage(from+1, m) })
	if p.reliable() {
		if n.retx == nil {
			n.retx = p.k.NewTimer(func() { p.onRetx(from) })
		}
		n.retx.Reset(p.timer(p.cfg.Params.Retransmit).Sample(p.rng))
	}
}

func (p *path) onRetx(from int) {
	n := p.nodes[from]
	if n.ackedSeq >= n.sentSeq {
		return
	}
	if n.value == 0 && from != 0 {
		return // state flushed meanwhile; nothing to install downstream
	}
	p.forward(from)
}

func (p *path) onMessage(at int, m message) {
	n := p.nodes[at]
	switch m.Type {
	case msgTrigger:
		p.install(at, m.Value)
		if p.reliable() {
			ack := message{Type: msgAck, Seq: m.Seq}
			p.net.Hops[at-1].Reverse.Send(func() { p.onAck(at-1, ack) })
		}
		if at < p.cfg.Params.Hops {
			n.sentSeq = m.Seq
			p.forward(at)
		}
	case msgRefresh:
		p.install(at, m.Value)
		p.relayRefresh(at)
	case msgNotify:
		// SS+RT: downstream neighbor timed out; repair if we hold state.
		if n.value != 0 || at == 0 {
			p.forward(at)
		}
	}
}

func (p *path) onAck(at int, m message) {
	n := p.nodes[at]
	if m.Seq > n.ackedSeq {
		n.ackedSeq = m.Seq
	}
	if n.retx != nil && n.ackedSeq >= n.sentSeq {
		n.retx.Stop()
	}
}

func (p *path) install(at, value int) {
	n := p.nodes[at]
	n.value = value
	p.observe()
	if p.soft() {
		if n.timeout == nil {
			n.timeout = p.k.NewTimer(func() { p.onTimeout(at) })
		}
		n.timeout.Reset(p.timer(p.cfg.Params.Timeout).Sample(p.rng))
	}
}

func (p *path) onTimeout(at int) {
	n := p.nodes[at]
	if n.value == 0 {
		return
	}
	n.value = 0
	p.observe()
	// SS+RT's notification mechanism: tell the upstream neighbor so it can
	// re-install promptly rather than waiting for the next refresh.
	if p.cfg.Protocol == singlehop.SSRT {
		up := at - 1
		notify := message{Type: msgNotify}
		p.net.Hops[up].Reverse.Send(func() { p.onMessage(up, notify) })
	}
}

// armFalseSignal schedules the next false external failure signal at
// receiver j (hard state only).
func (p *path) armFalseSignal(j int) {
	p.k.Schedule(p.rng.Exp(1/p.cfg.Params.FalseRemoval), func() { p.onFalseSignal(j) })
}

// onFalseSignal models the HS recovery episode: receiver j's detector
// fires falsely, j flushes its state, the fault notice sweeps the path
// (upstream to the sender, downstream to the tail) flushing every
// receiver, and the sender re-installs. Fault sweep messages are modeled
// as reliable control traffic: they incur per-hop delay and are counted,
// but are not subject to loss — false signals are rare (λf ≪ 1) and the
// analytic model likewise abstracts recovery into a single latency (see
// DESIGN.md).
func (p *path) onFalseSignal(j int) {
	d := p.cfg.Params.Delay
	n := p.cfg.Params.Hops
	// Flush each receiver after its propagation distance from j.
	for t := 1; t <= n; t++ {
		dist := t - j
		if dist < 0 {
			dist = -dist
		}
		target := t
		p.k.Schedule(float64(dist)*d, func() { p.flush(target) })
	}
	// One message per link touched by the two sweeps.
	p.faultMsgs += (j) + (n - j)
	// The sender learns after j hops and re-triggers.
	p.k.Schedule(float64(j)*d, func() {
		p.seq++
		p.forward(0)
	})
	p.armFalseSignal(j)
}

func (p *path) flush(at int) {
	n := p.nodes[at]
	if n.value == 0 {
		return
	}
	n.value = 0
	p.observe()
}
