package sim

import (
	"fmt"

	"softstate/internal/des"
	"softstate/internal/netsim"
	"softstate/internal/rand"
	"softstate/internal/singlehop"
	"softstate/internal/stats"
)

// Config parameterizes a single-hop simulation run.
type Config struct {
	// Protocol selects one of the five generic protocols.
	Protocol singlehop.Protocol
	// Params are the paper's single-hop system parameters.
	Params singlehop.Params
	// Sessions is the number of independent signaling sessions to
	// simulate; each session runs from state creation to removal
	// everywhere.
	Sessions int
	// Seed makes the run reproducible.
	Seed uint64
	// Timers selects the distribution of the protocol timers (refresh,
	// state-timeout, retransmission): exponential matches the analytic
	// model, deterministic reproduces deployed behavior (Figs. 11–12).
	Timers rand.TimerKind
	// DelayKind selects the channel delay distribution; the analytic
	// model uses Exponential. (Deterministic delays are an ablation.)
	DelayKind rand.TimerKind
	// AllowReorder disables the channel's FIFO clamp (ablation).
	AllowReorder bool
	// DisableNotification suppresses the timeout-removal notification of
	// SS+RT and SS+RTR (ablation: the paper motivates the mechanism in the
	// Fig 8(a) discussion; this measures what it buys).
	DisableNotification bool
	// StagedRefresh implements Pan & Schulzrinne's staged refresh timers
	// (paper ref [12]): after each trigger the refresh interval starts at
	// Γ and doubles up to R, recovering lost triggers quickly without
	// ACKs. Applies to refresh-capable protocols.
	StagedRefresh bool
	// NackOracle implements the idealized loss detection of Raman &
	// McCanne's NACK scheme (paper ref [15] and §IV): when a sender→
	// receiver message is lost, the receiver learns of the loss
	// immediately and sends a NACK (itself lossy, one channel delay);
	// the sender retransmits on NACK. The paper's SS+RT is the
	// timer-driven realization of the same idea — this oracle variant
	// bounds what any loss-detection scheme could achieve.
	NackOracle bool
}

// Estimate is a simulation output with its sampling uncertainty.
type Estimate struct {
	Mean float64
	// CI95 is the half-width of the 95% confidence interval (batch means).
	CI95 float64
}

// String renders "mean ± ci".
func (e Estimate) String() string { return fmt.Sprintf("%.6g ± %.2g", e.Mean, e.CI95) }

// Result aggregates a single-hop simulation.
type Result struct {
	// Inconsistency estimates I: total inconsistent time over total
	// session time (the ratio estimator matching eq. 1's semantics).
	Inconsistency Estimate
	// NormalizedRate estimates Λ = μr·E[messages per session].
	NormalizedRate Estimate
	// MessagesPerSession estimates E[N].
	MessagesPerSession Estimate
	// Lifetime estimates the mean signaling-state lifetime.
	Lifetime Estimate
	// Sessions is the number of sessions simulated.
	Sessions int
}

// sessionOutcome captures one session's raw measurements.
type sessionOutcome struct {
	inconsistentTime float64
	length           float64
	messages         int
}

// RunSingleHop simulates cfg.Sessions independent sessions and aggregates
// the paper's metrics with batch-means confidence intervals.
func RunSingleHop(cfg Config) (Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Sessions <= 0 {
		return Result{}, fmt.Errorf("sim: Sessions = %d must be positive", cfg.Sessions)
	}
	if cfg.Params.RemovalRate <= 0 {
		return Result{}, fmt.Errorf("sim: single-hop sessions require RemovalRate (μr) > 0")
	}
	root := rand.NewSource(cfg.Seed)
	outcomes := make([]sessionOutcome, cfg.Sessions)
	for i := range outcomes {
		outcomes[i] = runSession(cfg, root.Split())
	}
	return aggregate(cfg, outcomes), nil
}

// aggregate folds raw sessions into ratio estimates. The inconsistency
// ratio is a ratio of sums, so its CI comes from batch means: sessions are
// grouped into up to 30 batches and the per-batch ratios treated as IID.
func aggregate(cfg Config, outcomes []sessionOutcome) Result {
	batches := len(outcomes)
	if batches > 30 {
		batches = 30
	}
	var incons, rate, msgs, life stats.Mean
	per := (len(outcomes) + batches - 1) / batches
	for b := 0; b < len(outcomes); b += per {
		end := b + per
		if end > len(outcomes) {
			end = len(outcomes)
		}
		var it, lt float64
		var nm int
		for _, o := range outcomes[b:end] {
			it += o.inconsistentTime
			lt += o.length
			nm += o.messages
		}
		n := float64(end - b)
		if lt > 0 {
			incons.Add(it / lt)
		} else {
			incons.Add(0)
		}
		msgs.Add(float64(nm) / n)
		rate.Add(cfg.Params.RemovalRate * float64(nm) / n)
		life.Add(lt / n)
	}
	est := func(m stats.Mean) Estimate { return Estimate{Mean: m.Mean(), CI95: m.CI95()} }
	return Result{
		Inconsistency:      est(incons),
		NormalizedRate:     est(rate),
		MessagesPerSession: est(msgs),
		Lifetime:           est(life),
		Sessions:           len(outcomes),
	}
}

// runSession simulates one complete session lifecycle.
func runSession(cfg Config, rng *rand.Source) sessionOutcome {
	k := des.New()
	pair := netsim.NewPair(k, rng.Split(), netsim.Config{
		Loss:         cfg.Params.Loss,
		Delay:        rand.Timer{Kind: cfg.DelayKind, Mean: cfg.Params.Delay},
		AllowReorder: cfg.AllowReorder,
	})
	s := &session{
		cfg:  cfg,
		k:    k,
		pair: pair,
		rng:  rng.Split(),
	}
	s.start()
	// A session drains in thousands of events at most; the cap converts a
	// would-be livelock (e.g. a zero-delay timer loop) into a loud failure.
	const maxEventsPerSession = 50_000_000
	for k.Step() {
		if k.Fired() > maxEventsPerSession {
			panic("sim: session event budget exceeded — livelocked timer loop?")
		}
	}
	s.frac.Finish(s.endTime)
	return sessionOutcome{
		inconsistentTime: s.frac.TrueTime(),
		length:           s.endTime,
		messages:         pair.Totals().Transmissions,
	}
}

// session holds both endpoints of one single-hop session.
type session struct {
	cfg  Config
	k    *des.Kernel
	pair *netsim.Pair
	rng  *rand.Source

	frac    stats.Fraction
	endTime float64

	// Sender state.
	senderValue   int // 0 = removed
	senderRemoved bool
	seq           int
	ackedSeq      int
	refreshTimer  *des.Timer
	retxTimer     *des.Timer
	remRetxTimer  *des.Timer
	removalAcked  bool
	updateEv      *des.Event
	lifetimeEv    *des.Event

	// Receiver state.
	receiverValue int // 0 = absent
	timeoutTimer  *des.Timer
	falseSigTimer *des.Timer

	// stagedInterval is the current staged refresh interval (StagedRefresh).
	stagedInterval float64
}

func (s *session) proto() singlehop.Protocol { return s.cfg.Protocol }

func (s *session) timer(mean float64) rand.Timer {
	return rand.Timer{Kind: s.cfg.Timers, Mean: mean}
}

// observe re-evaluates consistency after any state change. The sender and
// receiver are consistent when their values match, including the
// both-removed case (which also marks a candidate session end).
func (s *session) observe() {
	consistent := s.senderValue == s.receiverValue
	s.frac.Observe(s.k.Now(), !consistent)
	if s.senderRemoved && s.receiverValue == 0 {
		s.endTime = s.k.Now()
	}
}

func (s *session) start() {
	p := s.cfg.Params
	s.senderValue = 1
	s.observe()
	s.sendTrigger()

	if s.proto().Refreshes() {
		s.refreshTimer = s.k.NewTimer(s.onRefresh)
		interval := p.Refresh
		if s.cfg.StagedRefresh {
			// The staged schedule starts right behind the initial trigger.
			s.stagedInterval = p.Retransmit
			interval = s.stagedInterval
		}
		s.refreshTimer.Reset(s.timer(interval).Sample(s.rng))
	}
	if p.UpdateRate > 0 {
		s.updateEv = s.k.Schedule(s.rng.Exp(1/p.UpdateRate), s.onUpdate)
	}
	s.lifetimeEv = s.k.Schedule(s.rng.Exp(1/p.RemovalRate), s.onSenderRemoval)
}

// --- sender behavior ---

func (s *session) sendTrigger() {
	s.seq++
	m := message{Type: msgTrigger, Seq: s.seq, Value: s.senderValue}
	s.forwardWithOracle(m)
	if s.proto().ReliableTrigger() {
		if s.retxTimer == nil {
			s.retxTimer = s.k.NewTimer(s.onTriggerRetx)
		}
		s.retxTimer.Reset(s.timer(s.cfg.Params.Retransmit).Sample(s.rng))
	}
	// Sending fresh state doubles as a refresh. With staged refresh the
	// next refresh comes quickly (interval Γ) and backs off toward R.
	if s.refreshTimer != nil && !s.senderRemoved {
		interval := s.cfg.Params.Refresh
		if s.cfg.StagedRefresh {
			s.stagedInterval = s.cfg.Params.Retransmit
			interval = s.stagedInterval
		}
		s.refreshTimer.Reset(s.timer(interval).Sample(s.rng))
	}
}

// forwardWithOracle transmits a sender→receiver message; when the NACK
// oracle is active and the message is lost, the receiver immediately
// learns of the loss and sends a (lossy) NACK back.
func (s *session) forwardWithOracle(m message) {
	lost := s.pair.Forward.Send(func() { s.onReceiverMessage(m) })
	if lost && s.cfg.NackOracle {
		nack := message{Type: msgNack, Seq: m.Seq}
		s.pair.Reverse.Send(func() { s.onSenderMessage(nack) })
	}
}

func (s *session) onTriggerRetx() {
	if s.senderRemoved || s.ackedSeq >= s.seq {
		return
	}
	s.sendTrigger()
}

func (s *session) onRefresh() {
	if s.senderRemoved {
		return
	}
	m := message{Type: msgRefresh, Seq: s.seq, Value: s.senderValue}
	s.forwardWithOracle(m)
	interval := s.cfg.Params.Refresh
	if s.cfg.StagedRefresh {
		if s.stagedInterval <= 0 {
			s.stagedInterval = s.cfg.Params.Retransmit
		}
		s.stagedInterval *= 2
		if s.stagedInterval > s.cfg.Params.Refresh {
			s.stagedInterval = s.cfg.Params.Refresh
		}
		interval = s.stagedInterval
	}
	s.refreshTimer.Reset(s.timer(interval).Sample(s.rng))
}

func (s *session) onUpdate() {
	if s.senderRemoved {
		return
	}
	s.senderValue++
	s.observe()
	s.sendTrigger()
	s.updateEv = s.k.Schedule(s.rng.Exp(1/s.cfg.Params.UpdateRate), s.onUpdate)
}

func (s *session) onSenderRemoval() {
	s.senderRemoved = true
	s.senderValue = 0
	if s.updateEv != nil {
		s.updateEv.Cancel()
	}
	if s.refreshTimer != nil {
		s.refreshTimer.Stop()
	}
	if s.retxTimer != nil {
		s.retxTimer.Stop()
	}
	s.observe()
	if s.proto().ExplicitRemoval() {
		s.sendRemoval()
	}
}

func (s *session) sendRemoval() {
	m := message{Type: msgRemoval, Seq: s.seq}
	s.pair.Forward.Send(func() { s.onReceiverMessage(m) })
	if s.proto().ReliableRemoval() && !s.removalAcked {
		if s.remRetxTimer == nil {
			s.remRetxTimer = s.k.NewTimer(s.onRemovalRetx)
		}
		s.remRetxTimer.Reset(s.timer(s.cfg.Params.Retransmit).Sample(s.rng))
	}
}

func (s *session) onRemovalRetx() {
	if s.removalAcked {
		return
	}
	s.sendRemoval()
}

// onSenderMessage handles receiver → sender traffic.
func (s *session) onSenderMessage(m message) {
	switch m.Type {
	case msgAck:
		if m.Seq > s.ackedSeq {
			s.ackedSeq = m.Seq
		}
		if s.retxTimer != nil && s.ackedSeq >= s.seq {
			s.retxTimer.Stop()
		}
	case msgRemovalAck:
		s.removalAcked = true
		if s.remRetxTimer != nil {
			s.remRetxTimer.Stop()
		}
	case msgNotify:
		// The receiver removed our state (timeout or false external
		// signal); if we still hold state, repair with a fresh trigger.
		if !s.senderRemoved {
			s.sendTrigger()
		}
	case msgNack:
		// Oracle loss detection: retransmit the current state. Stale
		// NACKs for superseded messages are harmless — the retransmission
		// carries the latest value.
		if !s.senderRemoved {
			s.sendTrigger()
		}
	}
}

// --- receiver behavior ---

func (s *session) onReceiverMessage(m message) {
	p := s.cfg.Params
	switch m.Type {
	case msgTrigger, msgRefresh:
		s.receiverValue = m.Value
		s.observe()
		if s.proto().Refreshes() {
			if s.timeoutTimer == nil {
				s.timeoutTimer = s.k.NewTimer(s.onReceiverTimeout)
			}
			s.timeoutTimer.Reset(s.timer(p.Timeout).Sample(s.rng))
		}
		if s.proto() == singlehop.HS {
			s.armFalseSignal()
		}
		if m.Type == msgTrigger && s.proto().ReliableTrigger() {
			ack := message{Type: msgAck, Seq: m.Seq}
			s.pair.Reverse.Send(func() { s.onSenderMessage(ack) })
		}
	case msgRemoval:
		s.removeReceiverState()
		if s.proto().ReliableRemoval() {
			ack := message{Type: msgRemovalAck, Seq: m.Seq}
			s.pair.Reverse.Send(func() { s.onSenderMessage(ack) })
		}
	}
}

func (s *session) onReceiverTimeout() {
	if s.receiverValue == 0 {
		return
	}
	s.removeReceiverState()
	// SS+RT and SS+RTR notify the sender so it can repair false removals.
	if s.proto().ReliableTrigger() && s.proto() != singlehop.HS && !s.cfg.DisableNotification {
		n := message{Type: msgNotify}
		s.pair.Reverse.Send(func() { s.onSenderMessage(n) })
	}
}

// armFalseSignal schedules the hard-state external failure detector's next
// false firing while the receiver holds state.
func (s *session) armFalseSignal() {
	if s.cfg.Params.FalseSignal <= 0 {
		return
	}
	if s.falseSigTimer == nil {
		s.falseSigTimer = s.k.NewTimer(s.onFalseSignal)
	}
	if !s.falseSigTimer.Active() {
		s.falseSigTimer.Reset(s.rng.Exp(1 / s.cfg.Params.FalseSignal))
	}
}

func (s *session) onFalseSignal() {
	if s.receiverValue == 0 {
		return
	}
	s.removeReceiverState()
	n := message{Type: msgNotify}
	s.pair.Reverse.Send(func() { s.onSenderMessage(n) })
}

func (s *session) removeReceiverState() {
	if s.receiverValue == 0 {
		return
	}
	s.receiverValue = 0
	if s.timeoutTimer != nil {
		s.timeoutTimer.Stop()
	}
	if s.falseSigTimer != nil {
		s.falseSigTimer.Stop()
	}
	s.observe()
}
