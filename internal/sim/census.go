package sim

import (
	"bytes"
	"fmt"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	livenode "softstate/internal/node"
	"softstate/internal/rand"
	"softstate/internal/signal"
	"softstate/internal/telemetry"
	"softstate/internal/variant"
)

// This file runs the convergence auditor against the live chain in
// virtual time: a node.Chain under churn and loss, with a periodic
// census (telemetry.RunCensus over Chain.CensusLinks) comparing each
// hop's intended state against what the next hop actually holds. The
// run therefore measures divergence twice, independently: the auditor
// reads it from the state-table digests, and the paper-metric estimator
// infers it from the origin's event stream — the artifact's agreement
// check is that the two observers tell the same story per protocol.

// CensusConfig parameterizes one audited chain run.
type CensusConfig struct {
	// Protocol selects the mechanism bundle.
	Protocol signal.Protocol
	// Hops is the number of state-holding links (a chain of Hops+1
	// nodes, so Hops census links). Default 1.
	Hops int
	// Keys is the number of concurrently signaled keys.
	Keys int
	// Loss, Delay, Jitter impair every link.
	Loss   float64
	Delay  time.Duration
	Jitter time.Duration
	// RefreshInterval, Timeout, Retransmit are the protocol timers
	// (defaults as LiveConfig: R = 100 ms, T = 3R, Γ = 25 ms).
	RefreshInterval time.Duration
	Timeout         time.Duration
	Retransmit      time.Duration
	// MeanLifetime and MeanGap churn keys exactly as LiveConfig does.
	MeanLifetime time.Duration
	MeanGap      time.Duration
	// CensusInterval is the audit period (default RefreshInterval).
	CensusInterval time.Duration
	// Sample is the end-to-end intent sampling period (default R/2).
	Sample time.Duration
	// Duration is the churned, measured window (default 30 s).
	Duration time.Duration
	// Quiesce is the settle window after churn and measurement stop,
	// before the final census. Silent soft-state removals cascade one
	// state-timeout per hop, so the default is (Hops+2) × Timeout.
	Quiesce time.Duration
	// Shards is the per-endpoint state-table shard count (default 4).
	Shards int
	// Seed makes the run reproducible; equal seeds produce byte-identical
	// CensusResults.
	Seed uint64
	// Metrics optionally instruments every endpoint; pure observer.
	Metrics *telemetry.Registry
	// TraceSampleEvery, when > 0, installs a shared hop-propagation
	// tracer on every endpoint sampling 1-in-N keys (1 = every key), so
	// the run populates the softstate_hop_propagation_seconds and
	// softstate_e2e_install_seconds histograms on Metrics. Pure observer:
	// results are identical with tracing off.
	TraceSampleEvery int
}

func (cfg *CensusConfig) applyDefaults() error {
	if cfg.Hops <= 0 {
		cfg.Hops = 1
	}
	if cfg.Keys <= 0 {
		return fmt.Errorf("sim: census run needs Keys > 0")
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = 100 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * cfg.RefreshInterval
	}
	if cfg.Retransmit <= 0 {
		cfg.Retransmit = 25 * time.Millisecond
	}
	if cfg.CensusInterval <= 0 {
		cfg.CensusInterval = cfg.RefreshInterval
	}
	if cfg.Sample <= 0 {
		cfg.Sample = cfg.RefreshInterval / 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.Quiesce <= 0 {
		cfg.Quiesce = time.Duration(cfg.Hops+2) * cfg.Timeout
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5057a7e
	}
	return nil
}

// CensusResult aggregates one audited run. Every field is a pure
// function of the CensusConfig, so reflect.DeepEqual across same-seed
// runs is the determinism check.
type CensusResult struct {
	Protocol signal.Protocol
	Hops     int
	Keys     int
	Loss     float64

	// Censuses is the number of periodic audit rounds that ran during
	// the measured window (all of them over every link).
	Censuses int
	// DivergentKeySamples totals divergent keys across all rounds and
	// links; AuditedDivergence normalizes it by Censuses × Hops × Keys —
	// the auditor's estimate of the per-link, per-key probability of
	// divergence at a random instant.
	DivergentKeySamples int
	AuditedDivergence   float64
	// Hop1Divergence is the same normalization restricted to the first
	// link — the quantity the origin's paper-metric estimator also sees.
	Hop1DivergentSamples int
	Hop1Divergence       float64
	// MaxDivergent is the worst single round's total divergent keys.
	MaxDivergent int
	// EstimatedInconsistency is the origin link's paper-metric estimate
	// (event-stream derived, no table reads) at the end of the measured
	// window — the auditor-independent observer.
	EstimatedInconsistency float64
	// Drained reports whether any census during the churn-free quiesce
	// window read fully converged. Note this is deliberately not "the
	// last census was clean": under loss, pure soft state is only ever
	// eventually consistent — a refresh-loss streak can expire a live
	// key at any instant, census included, and that divergence is real,
	// not an auditor artifact. A protocol bug (leaked or immortal state)
	// shows up as a quiesce window that never once reads converged.
	Drained bool
	// QuiesceCensuses counts the audit rounds run during the quiesce
	// window; FinalDivergent is the last round's divergent-key total.
	QuiesceCensuses int
	FinalDivergent  int

	// Inconsistency is the tail-sampled end-to-end I (as LiveResult),
	// measured during the churned window only.
	Inconsistency       float64
	Samples             int
	InconsistentSamples int

	// KeyEvents counts installs + removals driven; Datagrams counts every
	// datagram sent by every endpoint during the whole run (quiesce
	// included).
	KeyEvents int
	Datagrams int
	// VirtualSeconds is the measured (pre-quiesce) duration.
	VirtualSeconds float64
}

// RunCensusAudit executes one audited chain experiment on the real
// runtime in virtual time.
func RunCensusAudit(cfg CensusConfig) (CensusResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return CensusResult{}, err
	}
	v := clock.NewVirtual()
	scfg := signal.Config{
		Protocol:        cfg.Protocol,
		RefreshInterval: cfg.RefreshInterval,
		Timeout:         cfg.Timeout,
		Retransmit:      cfg.Retransmit,
		Shards:          cfg.Shards,
		Clock:           v,
		Census:          true,
		Metrics:         cfg.Metrics,
	}
	if cfg.Metrics != nil {
		scfg.MetricsLabels = telemetry.Labels{
			"protocol": variant.For(cfg.Protocol).Name,
			"topology": "chain",
		}
	}
	if cfg.TraceSampleEvery > 0 {
		scfg.Trace = telemetry.NewTracer(telemetry.TracerConfig{
			SampleEvery: uint32(cfg.TraceSampleEvery),
			Clock:       v,
		})
	}

	// The origin link's independent observer: the paper-metric estimator
	// fed from the origin sender's events only. The chain's first-hop
	// address is only known after construction, so the filter closure
	// late-binds it; the hook must be in place before the endpoints start.
	var chainStats func() int64
	pm := telemetry.NewPaperMetrics(telemetry.PaperConfig{
		Clock:       v,
		AckExpected: variant.For(cfg.Protocol).ReliableTrigger,
		Sent: func() int64 {
			if chainStats != nil {
				return chainStats()
			}
			return 0
		},
	})
	var originPeer string
	hook := paperHook(pm)
	scfg.OnEvent = func(ev signal.Event) {
		if ev.Peer != nil && ev.Peer.String() == originPeer {
			hook(ev)
		}
	}

	link := lossy.Config{
		Loss:   cfg.Loss,
		Delay:  cfg.Delay,
		Jitter: cfg.Jitter,
		Seed:   cfg.Seed ^ 0x11ce,
		Clock:  v,
	}
	c, err := livenode.NewChain(cfg.Hops+1, scfg, link)
	if err != nil {
		return CensusResult{}, err
	}
	defer c.Close()
	// Identify the origin's (sole) downstream peer by installing nothing
	// yet: the first hop's upstream address is what Chain.Install targets,
	// and the origin's sender events carry it as Event.Peer.
	originPeer = c.FirstHop().String()
	links := c.CensusLinks()
	chainStats = func() int64 {
		var n int64
		for _, st := range chainAllStats(c) {
			n += int64(st.TotalSent())
		}
		return n
	}

	res := CensusResult{
		Protocol: cfg.Protocol, Hops: cfg.Hops, Keys: cfg.Keys, Loss: cfg.Loss,
	}
	rng := rand.NewSource(cfg.Seed)
	intent := make([][]byte, cfg.Keys)
	version := make([]int, cfg.Keys)
	keyName := func(k int) string { return fmt.Sprintf("flow/%05d", k) }
	expDelay := func(mean time.Duration) time.Duration {
		return time.Duration(rng.Exp(mean.Seconds()) * float64(time.Second))
	}

	// Workload: LiveConfig's staggered install + exponential churn, with
	// an `active` latch so the quiesce window runs churn-free (callbacks
	// scheduled before the latch flips simply return).
	active := true
	var churn func(k int)
	doInstall := func(k int) {
		if !active {
			return
		}
		val := []byte(fmt.Sprintf("v%d.%d", k, version[k]))
		version[k]++
		if c.Install(keyName(k), val) == nil {
			intent[k] = val
			res.KeyEvents++
		}
		churn(k)
	}
	churn = func(k int) {
		if cfg.MeanLifetime <= 0 {
			return
		}
		v.AfterFunc(expDelay(cfg.MeanLifetime), func() {
			if !active || intent[k] == nil {
				return
			}
			if c.Remove(keyName(k)) == nil {
				intent[k] = nil
				res.KeyEvents++
			}
			if cfg.MeanGap > 0 {
				v.AfterFunc(expDelay(cfg.MeanGap), func() { doInstall(k) })
			}
		})
	}
	for k := 0; k < cfg.Keys; k++ {
		k := k
		v.AfterFunc(time.Duration(k)*cfg.RefreshInterval/time.Duration(cfg.Keys),
			func() { doInstall(k) })
	}

	// The periodic census: every CensusInterval, audit all links and
	// accumulate the divergence counts. Census callbacks run with the
	// virtual clock held, so the digests they read are a consistent
	// snapshot of a single instant. During the quiesce window the rounds
	// keep running but only feed the drain check.
	var census func()
	census = func() {
		rep := telemetry.RunCensus(links)
		if !active {
			res.QuiesceCensuses++
			res.FinalDivergent = rep.Divergent
			if rep.Converged() {
				res.Drained = true
			}
		} else if rep.Failed == 0 {
			res.Censuses++
			res.DivergentKeySamples += rep.Divergent
			res.Hop1DivergentSamples += len(rep.Links[0].Divergent)
			if rep.Divergent > res.MaxDivergent {
				res.MaxDivergent = rep.Divergent
			}
		}
		v.AfterFunc(cfg.CensusInterval, census)
	}
	v.AfterFunc(cfg.CensusInterval, census)

	// End-to-end intent sampling at the tail, as RunLive.
	var sample func()
	sample = func() {
		if !active {
			return
		}
		for k := 0; k < cfg.Keys; k++ {
			want := intent[k]
			got, ok := c.Tail.Get(keyName(k))
			res.Samples++
			if ok != (want != nil) || (ok && !bytes.Equal(got, want)) {
				res.InconsistentSamples++
			}
		}
		v.AfterFunc(cfg.Sample, sample)
	}
	v.AfterFunc(cfg.Sample, sample)

	v.Run(cfg.Duration)
	// Close the measured window before the quiesce run: the estimator and
	// the sampled I both describe the churned interval only.
	res.EstimatedInconsistency = pm.Inconsistency()
	active = false
	v.Run(cfg.Quiesce)

	if res.Censuses > 0 {
		denom := float64(res.Censuses) * float64(cfg.Hops) * float64(cfg.Keys)
		res.AuditedDivergence = float64(res.DivergentKeySamples) / denom
		res.Hop1Divergence = float64(res.Hop1DivergentSamples) /
			(float64(res.Censuses) * float64(cfg.Keys))
	}
	if res.Samples > 0 {
		res.Inconsistency = float64(res.InconsistentSamples) / float64(res.Samples)
	}
	for _, st := range chainAllStats(c) {
		res.Datagrams += st.TotalSent()
	}
	res.VirtualSeconds = cfg.Duration.Seconds()
	return res, nil
}

// chainAllStats snapshots every endpoint's counters, origin to tail.
func chainAllStats(c *livenode.Chain) []signal.Stats {
	out := []signal.Stats{c.Origin.Stats()}
	for _, r := range c.Relays {
		out = append(out, r.Receiver().Stats(), r.Downstream().Stats())
	}
	out = append(out, c.Tail.Stats())
	return out
}

// RunCensusVariants audits the same chain workload once per paper
// protocol, in presentation order, sharing base's seed so all five face
// byte-identical churn.
func RunCensusVariants(base CensusConfig) ([]CensusResult, error) {
	profiles := variant.All()
	out := make([]CensusResult, 0, len(profiles))
	for _, prof := range profiles {
		cfg := base
		cfg.Protocol = prof.Proto
		r, err := RunCensusAudit(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: %s census run: %w", prof, err)
		}
		out = append(out, r)
	}
	return out, nil
}
