package sim

import (
	"math"
	"testing"

	"softstate/internal/multihop"
	"softstate/internal/rand"
	"softstate/internal/singlehop"
)

// fastMulti shrinks the path study for test speed: fewer hops, faster
// updates, so the install machinery is exercised constantly.
func fastMulti() multihop.Params {
	p := multihop.DefaultParams()
	p.Hops = 5
	p.UpdateRate = 1.0 / 20
	return p
}

func TestMultiHopValidation(t *testing.T) {
	good := MultiConfig{
		Protocol: singlehop.SS, Params: fastMulti(),
		Horizon: 100, Runs: 1, Seed: 1,
	}
	bad := good
	bad.Protocol = singlehop.SSER
	if _, err := RunMultiHop(bad); err == nil {
		t.Fatal("SS+ER accepted for multi-hop")
	}
	bad = good
	bad.Runs = 0
	if _, err := RunMultiHop(bad); err == nil {
		t.Fatal("Runs=0 accepted")
	}
	bad = good
	bad.Horizon = 0
	if _, err := RunMultiHop(bad); err == nil {
		t.Fatal("Horizon=0 accepted")
	}
	bad = good
	bad.Params.Hops = 0
	if _, err := RunMultiHop(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestMultiHopPerHopMonotone(t *testing.T) {
	for _, proto := range []singlehop.Protocol{singlehop.SS, singlehop.SSRT, singlehop.HS} {
		res, err := RunMultiHop(MultiConfig{
			Protocol: proto, Params: fastMulti(),
			Horizon: 20000, Runs: 3, Seed: 11, Timers: rand.Deterministic,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerHop) != 5 {
			t.Fatalf("PerHop = %d entries", len(res.PerHop))
		}
		// Allow small statistical wiggle between adjacent hops.
		for k := 1; k < len(res.PerHop); k++ {
			if res.PerHop[k].Mean < res.PerHop[k-1].Mean-0.01 {
				t.Fatalf("%v: per-hop inconsistency fell sharply at hop %d: %v -> %v",
					proto, k+1, res.PerHop[k-1].Mean, res.PerHop[k].Mean)
			}
		}
		// End-to-end at least as inconsistent as any single hop.
		if res.Inconsistency.Mean < res.PerHop[len(res.PerHop)-1].Mean-0.01 {
			t.Fatalf("%v: e2e %v below last hop %v", proto,
				res.Inconsistency.Mean, res.PerHop[len(res.PerHop)-1].Mean)
		}
	}
}

// TestMultiHopCrossValidation compares the path simulator against the
// multi-hop CTMC using deterministic protocol timers (the regime the
// model's λf approximation is faithful to; see the single-hop
// TestExponentialTimeoutBreaksSoftState). The two differ by documented
// modeling approximations — the chain collapses partial consistency into a
// prefix count, assumes exponential refresh spacing (mean residual R vs
// R/2 for deterministic refreshes), and abstracts HS recovery — so the
// tolerance is wider than single-hop: within 40% relative.
func TestMultiHopCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation needs a long horizon")
	}
	for _, proto := range []singlehop.Protocol{singlehop.SS, singlehop.SSRT, singlehop.HS} {
		p := fastMulti()
		res, err := RunMultiHop(MultiConfig{
			Protocol: proto, Params: p,
			Horizon: 60000, Runs: 4, Seed: 21, Timers: rand.Deterministic,
		})
		if err != nil {
			t.Fatal(err)
		}
		ana, err := multihop.Analyze(proto, p)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(res.Inconsistency.Mean-ana.Inconsistency) / ana.Inconsistency
		if rel > 0.40 {
			t.Errorf("%v: sim I=%v analytic I=%v (rel %.0f%%)",
				proto, res.Inconsistency.Mean, ana.Inconsistency, 100*rel)
		}
	}
}

func TestMultiHopMessageRateOrdering(t *testing.T) {
	// HS ≪ SS ≤ SS+RT in signaling volume (Fig 18(b)). Uses the paper's
	// slower update rate: with very frequent updates HS's per-hop ACK
	// traffic can rival refresh traffic, which is outside the figure's
	// regime.
	p := fastMulti()
	p.UpdateRate = 1.0 / 60
	get := func(proto singlehop.Protocol) MultiResult {
		res, err := RunMultiHop(MultiConfig{
			Protocol: proto, Params: p,
			Horizon: 20000, Runs: 2, Seed: 31, Timers: rand.Deterministic,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ss, ssrt, hs := get(singlehop.SS), get(singlehop.SSRT), get(singlehop.HS)
	if !(hs.MsgRate.Mean < ss.MsgRate.Mean) {
		t.Fatalf("HS rate %v should be below SS %v", hs.MsgRate.Mean, ss.MsgRate.Mean)
	}
	if !(ss.MsgRate.Mean <= ssrt.MsgRate.Mean) {
		t.Fatalf("SS rate %v should not exceed SS+RT %v", ss.MsgRate.Mean, ssrt.MsgRate.Mean)
	}
	// SS+RT's reliability is cheap (paper: "little additional overhead").
	if ssrt.MsgRate.Mean > 1.5*ss.MsgRate.Mean {
		t.Fatalf("SS+RT rate %v too far above SS %v", ssrt.MsgRate.Mean, ss.MsgRate.Mean)
	}
}

func TestMultiHopConsistencyOrdering(t *testing.T) {
	get := func(proto singlehop.Protocol) MultiResult {
		res, err := RunMultiHop(MultiConfig{
			Protocol: proto, Params: fastMulti(),
			Horizon: 30000, Runs: 3, Seed: 41, Timers: rand.Deterministic,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ss, ssrt := get(singlehop.SS), get(singlehop.SSRT)
	if !(ssrt.Inconsistency.Mean < ss.Inconsistency.Mean) {
		t.Fatalf("SS+RT (%v) should beat SS (%v) end to end",
			ssrt.Inconsistency.Mean, ss.Inconsistency.Mean)
	}
}

func TestMultiHopReproducible(t *testing.T) {
	cfg := MultiConfig{
		Protocol: singlehop.SSRT, Params: fastMulti(),
		Horizon: 2000, Runs: 2, Seed: 77, Timers: rand.Deterministic,
	}
	a, err := RunMultiHop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiHop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inconsistency.Mean != b.Inconsistency.Mean || a.MsgRate.Mean != b.MsgRate.Mean {
		t.Fatal("same seed produced different multi-hop results")
	}
}

func TestMultiHopHSRecovery(t *testing.T) {
	// Crank the false-signal rate and verify HS pays for recovery episodes
	// with inconsistency (state flushed path-wide until re-install).
	p := fastMulti()
	quiet := p
	quiet.FalseRemoval = 0
	noisy := p
	noisy.FalseRemoval = 0.01
	run := func(mp multihop.Params) MultiResult {
		res, err := RunMultiHop(MultiConfig{
			Protocol: singlehop.HS, Params: mp,
			Horizon: 20000, Runs: 2, Seed: 51, Timers: rand.Deterministic,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	q, n := run(quiet), run(noisy)
	if !(n.Inconsistency.Mean > q.Inconsistency.Mean) {
		t.Fatalf("false signals should raise HS inconsistency: quiet=%v noisy=%v",
			q.Inconsistency.Mean, n.Inconsistency.Mean)
	}
}
