package sim

import (
	"reflect"
	"testing"
	"time"

	"softstate/internal/signal"
)

// These tests are the regression net for the batched gate handoff: same
// seed must keep producing identical experiment results run over run, and
// — stronger — the batched delivery path must produce results identical
// to the pre-batching one-event-per-datagram semantics (Unbatched). The
// workloads deliberately mix loss, delay, churn, summary refresh, and ack
// coalescing so every coalescing-sensitive path is exercised.

func detLiveConfig() LiveConfig {
	return LiveConfig{
		Protocol:        signal.SSRT,
		Hops:            3,
		Keys:            24,
		Loss:            0.15,
		Delay:           2 * time.Millisecond,
		Jitter:          time.Millisecond,
		RefreshInterval: 50 * time.Millisecond,
		MeanLifetime:    400 * time.Millisecond,
		MeanGap:         150 * time.Millisecond,
		MeanFalseSignal: 300 * time.Millisecond,
		SummaryRefresh:  true,
		CoalesceAcks:    true,
		Duration:        4 * time.Second,
		Seed:            1055,
	}
}

func TestConsistencyVsLossDeterministicAcrossRuns(t *testing.T) {
	losses := []float64{0, 0.1, 0.3}
	a, err := ConsistencyVsLoss(detLiveConfig(), losses)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConsistencyVsLoss(detLiveConfig(), losses)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\nvs\n%+v", a, b)
	}
}

func TestBatchedMatchesUnbatchedLive(t *testing.T) {
	batched, err := RunLive(detLiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	ucfg := detLiveConfig()
	ucfg.Unbatched = true
	unbatched, err := RunLive(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, unbatched) {
		t.Fatalf("batched gate changed experiment results:\nbatched:   %+v\nunbatched: %+v", batched, unbatched)
	}
}

func TestBatchedMatchesUnbatchedFanout(t *testing.T) {
	cfg := FanoutConfig{
		Peers:           8,
		Keys:            512,
		Loss:            0.05,
		Delay:           time.Millisecond,
		RefreshInterval: 50 * time.Millisecond,
		Duration:        300 * time.Millisecond,
	}
	batched, err := RunLiveFanout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ucfg := cfg
	ucfg.Unbatched = true
	unbatched, err := RunLiveFanout(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, unbatched) {
		t.Fatalf("batched gate changed fan-out results:\nbatched:   %+v\nunbatched: %+v", batched, unbatched)
	}
	again, err := RunLiveFanout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, again) {
		t.Fatalf("same seed, different fan-out results:\n%+v\nvs\n%+v", batched, again)
	}
}
