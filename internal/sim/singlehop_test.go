package sim

import (
	"math"
	"testing"

	"softstate/internal/rand"
	"softstate/internal/singlehop"
)

// fastParams shrinks the Kazaa scenario so cross-validation runs quickly:
// shorter sessions mean more regeneration cycles per simulated second.
func fastParams() singlehop.Params {
	p := singlehop.DefaultParams()
	p = p.WithSessionLength(300)
	return p
}

func runBoth(t *testing.T, proto singlehop.Protocol, p singlehop.Params, sessions int, timers rand.TimerKind) (Result, singlehop.Metrics) {
	t.Helper()
	res, err := RunSingleHop(Config{
		Protocol: proto,
		Params:   p,
		Sessions: sessions,
		Seed:     0xfeed + uint64(proto),
		Timers:   timers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := singlehop.Analyze(proto, p)
	if err != nil {
		t.Fatal(err)
	}
	return res, ana
}

// TestDeterministicTimersMatchAnalytic is the repository's strongest
// correctness check, and it mirrors the paper's own validation (Figs. 11
// and 12): the event simulator runs the real protocols with deterministic
// timers, and its inconsistency ratio must land close to the CTMC's
// exponential-timer approximation — the paper reports <1% difference for I.
// We allow a wider band because the simulator includes second-order
// behavior the chain serializes away (updates during flight, spurious
// retransmissions under exponential channel delays).
func TestDeterministicTimersMatchAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation needs many sessions")
	}
	for _, proto := range singlehop.Protocols() {
		res, ana := runBoth(t, proto, fastParams(), 4000, rand.Deterministic)
		diff := math.Abs(res.Inconsistency.Mean - ana.Inconsistency)
		if diff/ana.Inconsistency > 0.15 && diff > 0.002 {
			t.Errorf("%v: sim I=%v analytic I=%v (rel %.1f%%)",
				proto, res.Inconsistency.Mean, ana.Inconsistency, 100*diff/ana.Inconsistency)
		}
	}
}

// TestDeterministicTimersMessageRates: message accounting must agree with
// eqs. 3–7 within the paper's reported 5–15% band (we allow 25% to keep
// the test robust at this session count).
func TestDeterministicTimersMessageRates(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation needs many sessions")
	}
	for _, proto := range singlehop.Protocols() {
		res, ana := runBoth(t, proto, fastParams(), 3000, rand.Deterministic)
		rel := math.Abs(res.NormalizedRate.Mean-ana.NormalizedRate) / ana.NormalizedRate
		if rel > 0.25 {
			t.Errorf("%v: sim Λ=%v analytic Λ=%v (rel %.1f%%)",
				proto, res.NormalizedRate.Mean, ana.NormalizedRate, 100*rel)
		}
	}
}

// TestExponentialTimeoutBreaksSoftState pins an insight the paper's model
// quietly encodes: the CTMC treats false removal as the rare loss of every
// refresh in a timeout window (λf = pl^(T/R)/T), which is only faithful to
// a protocol whose timers are deterministic. If the *implemented* timeout
// timer is exponential, it races the refresh stream memorylessly and fires
// constantly (P ≈ R/(R+T) per refresh), destroying consistency. This is
// why deployed soft-state protocols use deterministic timeouts ≈ 3R.
func TestExponentialTimeoutBreaksSoftState(t *testing.T) {
	res, err := RunSingleHop(Config{
		Protocol: singlehop.SS,
		Params:   fastParams(),
		Sessions: 500,
		Seed:     9,
		Timers:   rand.Exponential,
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := singlehop.Analyze(singlehop.SS, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Inconsistency.Mean < 3*ana.Inconsistency {
		t.Fatalf("exponential timeout should collapse SS consistency: sim %v vs analytic %v",
			res.Inconsistency.Mean, ana.Inconsistency)
	}
}

func TestLosslessSSMatchesClosedForm(t *testing.T) {
	p := fastParams()
	p.Loss = 0
	res, err := RunSingleHop(Config{
		Protocol: singlehop.SS,
		Params:   p,
		Sessions: 3000,
		Seed:     7,
		Timers:   rand.Deterministic,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Closed form for the deterministic-timer protocol. The orphan wait
	// differs from the analytic model's: the receiver's timeout runs from
	// the last refresh it received, and the sender's removal lands
	// uniformly inside a refresh gap, so the orphan lives ≈ T + D − R/2
	// past the sender (vs the chain's memoryless T). Inconsistent time per
	// session: install D, one D per update (λu/μr of them), plus the
	// orphan interval.
	lu, mr, D, T, R := p.UpdateRate, p.RemovalRate, p.Delay, p.Timeout, p.Refresh
	orphan := T + D - R/2
	wantL := 1/mr + orphan
	if math.Abs(res.Lifetime.Mean-wantL) > 0.05*wantL {
		t.Fatalf("sim lifetime %v, closed form %v", res.Lifetime.Mean, wantL)
	}
	wantI := (D*(1+lu/mr) + orphan) / wantL
	if math.Abs(res.Inconsistency.Mean-wantI) > 0.1*wantI {
		t.Fatalf("sim I %v, closed form %v", res.Inconsistency.Mean, wantI)
	}
}

func TestSimDeterministicReproducible(t *testing.T) {
	cfg := Config{
		Protocol: singlehop.SSER,
		Params:   fastParams(),
		Sessions: 50,
		Seed:     123,
		Timers:   rand.Deterministic,
	}
	a, err := RunSingleHop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSingleHop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inconsistency.Mean != b.Inconsistency.Mean ||
		a.MessagesPerSession.Mean != b.MessagesPerSession.Mean {
		t.Fatal("same seed produced different results")
	}
	cfg.Seed = 124
	c, err := RunSingleHop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Inconsistency.Mean == a.Inconsistency.Mean {
		t.Fatal("different seeds produced identical inconsistency (suspicious)")
	}
}

func TestSimConfigValidation(t *testing.T) {
	good := Config{Protocol: singlehop.SS, Params: fastParams(), Sessions: 1, Seed: 1}
	bad := good
	bad.Sessions = 0
	if _, err := RunSingleHop(bad); err == nil {
		t.Fatal("Sessions=0 accepted")
	}
	bad = good
	bad.Params.Delay = 0
	if _, err := RunSingleHop(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
	bad = good
	bad.Params.RemovalRate = 0
	if _, err := RunSingleHop(bad); err == nil {
		t.Fatal("μr=0 accepted for session simulation")
	}
}

func TestSimMetricsSane(t *testing.T) {
	for _, proto := range singlehop.Protocols() {
		res, err := RunSingleHop(Config{
			Protocol: proto,
			Params:   fastParams(),
			Sessions: 300,
			Seed:     99,
			Timers:   rand.Deterministic,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inconsistency.Mean < 0 || res.Inconsistency.Mean > 1 {
			t.Fatalf("%v: I = %v", proto, res.Inconsistency.Mean)
		}
		if res.Lifetime.Mean <= 0 {
			t.Fatalf("%v: lifetime = %v", proto, res.Lifetime.Mean)
		}
		if res.MessagesPerSession.Mean <= 0 {
			t.Fatalf("%v: msgs = %v", proto, res.MessagesPerSession.Mean)
		}
		if res.Sessions != 300 {
			t.Fatalf("%v: sessions = %d", proto, res.Sessions)
		}
	}
}

func TestSimOrderingsMatchPaper(t *testing.T) {
	// The qualitative conclusions must hold in simulation too.
	p := fastParams()
	get := func(proto singlehop.Protocol) Result {
		res, err := RunSingleHop(Config{
			Protocol: proto, Params: p, Sessions: 1500,
			Seed: 7, Timers: rand.Deterministic,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ss, sser, hs := get(singlehop.SS), get(singlehop.SSER), get(singlehop.HS)
	if !(sser.Inconsistency.Mean < ss.Inconsistency.Mean) {
		t.Fatalf("sim: SS+ER (%v) should beat SS (%v)", sser.Inconsistency.Mean, ss.Inconsistency.Mean)
	}
	if !(hs.Inconsistency.Mean < ss.Inconsistency.Mean) {
		t.Fatal("sim: HS should beat SS on consistency")
	}
	if !(hs.NormalizedRate.Mean < ss.NormalizedRate.Mean) {
		t.Fatal("sim: HS should use fewer messages than SS")
	}
}

func TestSSReceiverOutlivesSenderByTimeout(t *testing.T) {
	// Without explicit removal the orphaned state lives ≈T beyond the
	// sender's session on average.
	p := fastParams()
	res, err := RunSingleHop(Config{
		Protocol: singlehop.SS, Params: p, Sessions: 2000,
		Seed: 3, Timers: rand.Deterministic,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected session length ≈ 1/μr + T (deterministic timeout).
	want := 1/p.RemovalRate + p.Timeout
	if math.Abs(res.Lifetime.Mean-want) > 0.1*want {
		t.Fatalf("lifetime %v, want ≈%v", res.Lifetime.Mean, want)
	}
}

func TestReorderingAblationRuns(t *testing.T) {
	res, err := RunSingleHop(Config{
		Protocol: singlehop.SSER, Params: fastParams(), Sessions: 200,
		Seed: 5, Timers: rand.Deterministic, AllowReorder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inconsistency.Mean <= 0 {
		t.Fatal("reordering ablation produced empty measurement")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Mean: 0.1234, CI95: 0.001}
	if e.String() == "" {
		t.Fatal("empty estimate string")
	}
}
