package sim

import (
	"testing"

	"softstate/internal/rand"
	"softstate/internal/singlehop"
)

// lossyParams is a high-loss operating point where repair mechanisms
// separate clearly.
func lossyParams() singlehop.Params {
	p := fastParams()
	p.Loss = 0.2
	return p
}

func runVariant(t *testing.T, mutate func(*Config)) Result {
	t.Helper()
	cfg := Config{
		Protocol: singlehop.SS,
		Params:   lossyParams(),
		Sessions: 1200,
		Seed:     0xabc,
		Timers:   rand.Deterministic,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := RunSingleHop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStagedRefreshImprovesConsistency(t *testing.T) {
	plain := runVariant(t, nil)
	staged := runVariant(t, func(c *Config) { c.StagedRefresh = true })
	if !(staged.Inconsistency.Mean < plain.Inconsistency.Mean) {
		t.Fatalf("staged refresh should improve I: plain=%v staged=%v",
			plain.Inconsistency.Mean, staged.Inconsistency.Mean)
	}
	// Staged refresh costs extra messages (the early rapid refreshes).
	if !(staged.MessagesPerSession.Mean > plain.MessagesPerSession.Mean) {
		t.Fatalf("staged refresh should send more: plain=%v staged=%v",
			plain.MessagesPerSession.Mean, staged.MessagesPerSession.Mean)
	}
}

func TestNackOracleImprovesConsistency(t *testing.T) {
	plain := runVariant(t, nil)
	nack := runVariant(t, func(c *Config) { c.NackOracle = true })
	if !(nack.Inconsistency.Mean < plain.Inconsistency.Mean) {
		t.Fatalf("NACK oracle should improve I: plain=%v nack=%v",
			plain.Inconsistency.Mean, nack.Inconsistency.Mean)
	}
}

func TestNackOracleApproachesReliableTriggers(t *testing.T) {
	// The oracle bounds what loss detection can achieve; SS+RT's
	// timer-driven detection should land in the same regime (within ~3x)
	// rather than orders of magnitude apart.
	nack := runVariant(t, func(c *Config) { c.NackOracle = true })
	ssrt := runVariant(t, func(c *Config) { c.Protocol = singlehop.SSRT })
	hi, lo := nack.Inconsistency.Mean, ssrt.Inconsistency.Mean
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi > 3*lo {
		t.Fatalf("NACK oracle %v and SS+RT %v should be within 3x",
			nack.Inconsistency.Mean, ssrt.Inconsistency.Mean)
	}
}

func TestStagedRefreshBacksOff(t *testing.T) {
	// The staged schedule must back off instead of flooding: the ladder
	// Γ, 2Γ, … , R costs ⌈log₂(R/Γ)⌉ ≈ 6 extra refreshes per trigger at
	// the defaults (R/Γ = 42), i.e. ≈2× messages per session — not the
	// unbounded stream a broken backoff would produce.
	cfgBase := Config{
		Protocol: singlehop.SS,
		Params:   fastParams(), // 2% loss
		Sessions: 600,
		Seed:     5,
		Timers:   rand.Deterministic,
	}
	plain, err := RunSingleHop(cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	cfgStaged := cfgBase
	cfgStaged.StagedRefresh = true
	staged, err := RunSingleHop(cfgStaged)
	if err != nil {
		t.Fatal(err)
	}
	ratio := staged.MessagesPerSession.Mean / plain.MessagesPerSession.Mean
	if ratio > 2.5 {
		t.Fatalf("staged refresh flooded: plain=%v staged=%v (%.1fx)",
			plain.MessagesPerSession.Mean, staged.MessagesPerSession.Mean, ratio)
	}
	if ratio < 1 {
		t.Fatalf("staged refresh should not send fewer messages (%.2fx)", ratio)
	}
}

func TestMsgNackString(t *testing.T) {
	if msgNack.String() != "nack" {
		t.Fatalf("msgNack renders as %q", msgNack.String())
	}
}
