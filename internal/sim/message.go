// Package sim is the event-level protocol simulator: actual sender and
// receiver state machines for all five generic protocols exchanging
// messages over the lossy FIFO channel of internal/netsim, driven by the
// internal/des kernel.
//
// The simulator serves two purposes. With exponential timers it
// independently re-derives the analytic results of internal/singlehop and
// internal/multihop, which is the repository's strongest correctness
// check. With deterministic timers it reproduces the paper's simulation
// study (Figs. 11 and 12), quantifying how little the exponential-timer
// approximation matters.
package sim

import "fmt"

// msgType enumerates the signaling messages exchanged by the protocols.
type msgType int

const (
	msgTrigger    msgType = iota // state setup/update carrying a value
	msgRefresh                   // periodic soft-state refresh carrying a value
	msgAck                       // receiver ACK of a trigger (reliable trigger)
	msgRemoval                   // explicit state removal
	msgRemovalAck                // receiver ACK of a removal (reliable removal)
	msgNotify                    // receiver → sender: state was removed (timeout/false signal)
	msgFlush                     // multi-hop HS: flush orphaned state downstream
	msgNack                      // receiver → sender: loss detected (NACK-oracle extension)
)

func (t msgType) String() string {
	switch t {
	case msgTrigger:
		return "trigger"
	case msgRefresh:
		return "refresh"
	case msgAck:
		return "ack"
	case msgRemoval:
		return "removal"
	case msgRemovalAck:
		return "removal-ack"
	case msgNotify:
		return "notify"
	case msgFlush:
		return "flush"
	case msgNack:
		return "nack"
	default:
		return fmt.Sprintf("msgType(%d)", int(t))
	}
}

// message is one signaling message. Value carries the sender's state
// value; Seq orders triggers for ACK matching.
type message struct {
	Type  msgType
	Seq   int
	Value int
}
