package sim

import (
	"bytes"
	"fmt"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	livenode "softstate/internal/node"
	"softstate/internal/rand"
	"softstate/internal/signal"
	"softstate/internal/telemetry"
	"softstate/internal/variant"
)

// This file is the virtual-time harness for the *real* runtime: where the
// rest of internal/sim re-implements the protocols as abstract state
// machines, RunLive instantiates actual signal.Sender / signal.Receiver /
// node.Chain endpoints — goroutine read loops, sharded state tables,
// summary refresh, ack coalescing, the full wire codec — over lossy pipes,
// and drives everything from one clock.Virtual. The paper's experiments
// (signaling-state consistency vs. loss, delay, refresh interval) thus run
// on the production code path: deterministically (same seed → identical
// LiveResult), at simulated hours of protocol time in wall milliseconds,
// with no time.Sleep anywhere.

// LiveConfig parameterizes one virtual-time run of the real stack.
type LiveConfig struct {
	// Protocol selects the mechanism bundle.
	Protocol signal.Protocol
	// Hops is the number of state-holding links: 1 runs Sender→Receiver
	// over one lossy pipe; ≥2 runs a node.Chain of Hops+1 nodes (origin,
	// Hops-1 relays, tail receiver), every link independently impaired.
	// Under Topology "ring" it is the node count of the cycle; under
	// "tree" it is the tree depth (every leaf sits Hops hops from the
	// root).
	Hops int
	// Topology selects the multi-hop wiring: "chain" (default — the
	// paper's line of relays), "ring" (a unidirectional Hops-node cycle,
	// consistency sampled where the signal arrives back at the origin),
	// or "tree" (a TreeFanout-ary distribution tree of depth Hops,
	// consistency sampled at every leaf).
	Topology string
	// TreeFanout is the per-node fan-out of a "tree" run (default 2).
	TreeFanout int
	// Keys is the number of concurrently signaled keys.
	Keys int
	// Loss, Delay, Jitter impair every link.
	Loss   float64
	Delay  time.Duration
	Jitter time.Duration
	// RefreshInterval, Timeout, Retransmit are the protocol timers
	// (defaults R = 100 ms, T = 3R, Γ = 25 ms — the paper's deployed
	// ratios, scaled so a 30 s virtual run spans hundreds of refreshes).
	RefreshInterval time.Duration
	Timeout         time.Duration
	Retransmit      time.Duration
	// SummaryRefresh and CoalesceAcks enable the RFC 2961-style batching
	// paths on every endpoint.
	SummaryRefresh bool
	CoalesceAcks   bool
	// Shards is the per-endpoint state-table shard count (default 4).
	Shards int
	// MeanLifetime, when positive, removes each key after an exponential
	// installed lifetime; MeanGap, when positive, reinstalls it (with a
	// fresh version) an exponential gap later. Zero lifetimes make keys
	// immortal — the pure refresh-traffic regime.
	MeanLifetime time.Duration
	MeanGap      time.Duration
	// MeanFalseSignal, when positive, fires the paper's external false
	// removal signal at the tail for a random held key, exponentially
	// distributed with this mean — the failure HS must repair.
	MeanFalseSignal time.Duration
	// Duration is the virtual experiment length (default 30 s).
	Duration time.Duration
	// Sample is the consistency sampling period (default RefreshInterval/2).
	Sample time.Duration
	// Seed makes the run reproducible; runs with equal seeds produce
	// byte-identical LiveResults.
	Seed uint64
	// Metrics, when non-nil, instruments every endpoint with the runtime
	// counters and latency histograms, and on 1-hop runs additionally
	// attaches the live paper-metric collector (the I and Λ gauges) to
	// the sender — the snapshot sigfig embeds in artifacts. Metrics are
	// pure observers: a run's LiveResult is identical with or without
	// them.
	Metrics *telemetry.Registry
	// Unbatched disables same-tick delivery batching on the links (one
	// kernel event and one gate hold per datagram, the pre-batching
	// semantics). The determinism regression tests prove batched and
	// unbatched runs produce identical LiveResults.
	Unbatched bool
}

func (cfg *LiveConfig) applyDefaults() error {
	if cfg.Hops <= 0 {
		cfg.Hops = 1
	}
	if cfg.Keys <= 0 {
		return fmt.Errorf("sim: live run needs Keys > 0")
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = 100 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * cfg.RefreshInterval
	}
	if cfg.Retransmit <= 0 {
		cfg.Retransmit = 25 * time.Millisecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.Sample <= 0 {
		cfg.Sample = cfg.RefreshInterval / 2
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5057a7e
	}
	switch cfg.Topology {
	case "", "chain":
		cfg.Topology = "chain"
	case "ring":
		if cfg.Hops < 2 {
			return fmt.Errorf("sim: ring topology needs Hops ≥ 2 nodes, got %d", cfg.Hops)
		}
	case "tree":
		if cfg.TreeFanout <= 0 {
			cfg.TreeFanout = 2
		}
	default:
		return fmt.Errorf("sim: unknown topology %q (want chain, ring, or tree)", cfg.Topology)
	}
	return nil
}

// LiveResult aggregates one virtual-time run. Every field is a pure
// function of the LiveConfig, so reflect.DeepEqual across same-seed runs
// is the determinism check.
type LiveResult struct {
	Protocol signal.Protocol
	Hops     int
	Keys     int
	Loss     float64
	// Topology echoes the wiring; Leaves is the number of consistency
	// sampling points (1 for chain and ring, TreeFanout^Hops for tree).
	Topology string
	Leaves   int

	// Inconsistency is the sampled fraction of (key, leaf, time) in which
	// a sampled endpoint disagreed with the origin's intent — the live
	// counterpart of the paper's I metric (eq. 1), measured end to end
	// across all hops.
	Inconsistency       float64
	Samples             int
	InconsistentSamples int

	// Datagrams counts every datagram sent by every endpoint (both
	// directions, all hops); Rate normalizes it per key per virtual
	// second — the live counterpart of the paper's Λ.
	Datagrams int
	Rate      float64
	// Sent aggregates per-wire-type datagram counts across all endpoints.
	Sent map[string]int

	// KeyEvents counts workload transitions driven (installs + removals +
	// false-signal injections).
	KeyEvents int
	// VirtualSeconds is the simulated duration.
	VirtualSeconds float64
}

// Machinery counts the reliability/removal/probe datagrams the run sent —
// the per-message machinery pure SS does without. Notifies are excluded:
// the false-signal injector emits them for every protocol alike as part
// of the simulated external environment.
func (r LiveResult) Machinery() int {
	return r.Sent["ack"] + r.Sent["ack-batch"] + r.Sent["removal"] +
		r.Sent["removal-ack"] + r.Sent["probe"] + r.Sent["probe-ack"]
}

// liveStack abstracts the topologies under one workload driver.
type liveStack struct {
	install func(key string, value []byte) error
	remove  func(key string) error
	// tails are the consistency sampling points — every endpoint whose
	// view should match the origin's intent (one for chain/ring, every
	// leaf for tree).
	tails  []func(key string) ([]byte, bool)
	inject func(key string) bool
	stats  func() []signal.Stats
	close  func()
}

// RunLive executes one experiment on the real runtime in virtual time.
func RunLive(cfg LiveConfig) (LiveResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return LiveResult{}, err
	}
	v := clock.NewVirtual()
	scfg := signal.Config{
		Protocol:        cfg.Protocol,
		RefreshInterval: cfg.RefreshInterval,
		Timeout:         cfg.Timeout,
		Retransmit:      cfg.Retransmit,
		SummaryRefresh:  cfg.SummaryRefresh,
		CoalesceAcks:    cfg.CoalesceAcks,
		Shards:          cfg.Shards,
		Clock:           v,
		Metrics:         cfg.Metrics,
	}
	if cfg.Metrics != nil {
		scfg.MetricsLabels = telemetry.Labels{
			"protocol": variant.For(cfg.Protocol).Name,
			"topology": cfg.Topology,
		}
	}
	link := lossy.Config{
		Loss:      cfg.Loss,
		Delay:     cfg.Delay,
		Jitter:    cfg.Jitter,
		Seed:      cfg.Seed ^ 0x11ce, // distinct stream from the workload rng
		Clock:     v,
		Unbatched: cfg.Unbatched,
	}
	stack, err := buildLiveStack(cfg, scfg, link)
	if err != nil {
		return LiveResult{}, err
	}
	defer stack.close()

	res := LiveResult{
		Protocol: cfg.Protocol, Hops: cfg.Hops, Keys: cfg.Keys, Loss: cfg.Loss,
		Topology: cfg.Topology, Leaves: len(stack.tails),
	}
	rng := rand.NewSource(cfg.Seed)
	intent := make([][]byte, cfg.Keys) // nil = removed; the origin's truth
	version := make([]int, cfg.Keys)
	keyName := func(k int) string { return fmt.Sprintf("flow/%05d", k) }

	expDelay := func(mean time.Duration) time.Duration {
		return time.Duration(rng.Exp(mean.Seconds()) * float64(time.Second))
	}

	// Workload: install every key (staggered across one refresh interval
	// so wheel ticks don't all collide), then churn each through
	// exponential remove/reinstall cycles.
	var churn func(k int)
	doInstall := func(k int) {
		val := []byte(fmt.Sprintf("v%d.%d", k, version[k]))
		version[k]++
		if stack.install(keyName(k), val) == nil {
			intent[k] = val
			res.KeyEvents++
		}
		churn(k)
	}
	churn = func(k int) {
		if cfg.MeanLifetime <= 0 {
			return
		}
		v.AfterFunc(expDelay(cfg.MeanLifetime), func() {
			if intent[k] == nil {
				return
			}
			if stack.remove(keyName(k)) == nil {
				intent[k] = nil
				res.KeyEvents++
			}
			if cfg.MeanGap > 0 {
				v.AfterFunc(expDelay(cfg.MeanGap), func() { doInstall(k) })
			}
		})
	}
	for k := 0; k < cfg.Keys; k++ {
		k := k
		v.AfterFunc(time.Duration(k)*cfg.RefreshInterval/time.Duration(cfg.Keys),
			func() { doInstall(k) })
	}

	// False external removal signal (the hard-state failure mode): fire at
	// the tail against a random key, repeatedly.
	if cfg.MeanFalseSignal > 0 {
		var falseSig func()
		falseSig = func() {
			k := rng.Intn(cfg.Keys)
			if stack.inject(keyName(k)) {
				res.KeyEvents++
			}
			v.AfterFunc(expDelay(cfg.MeanFalseSignal), falseSig)
		}
		v.AfterFunc(expDelay(cfg.MeanFalseSignal), falseSig)
	}

	// Consistency sampling: every Sample, compare each sampling point's
	// view of each key against the origin's intent.
	var sample func()
	sample = func() {
		for k := 0; k < cfg.Keys; k++ {
			want := intent[k]
			for _, tail := range stack.tails {
				got, ok := tail(keyName(k))
				res.Samples++
				if ok != (want != nil) || (ok && !bytes.Equal(got, want)) {
					res.InconsistentSamples++
				}
			}
		}
		v.AfterFunc(cfg.Sample, sample)
	}
	v.AfterFunc(cfg.Sample, sample)

	v.Run(cfg.Duration)

	res.Sent = make(map[string]int)
	for _, st := range stack.stats() {
		for typ, n := range st.Sent {
			res.Sent[typ] += n
		}
		res.Datagrams += st.TotalSent()
	}
	res.VirtualSeconds = cfg.Duration.Seconds()
	res.Rate = float64(res.Datagrams) / float64(cfg.Keys) / res.VirtualSeconds
	if res.Samples > 0 {
		res.Inconsistency = float64(res.InconsistentSamples) / float64(res.Samples)
	}
	return res, nil
}

// buildLiveStack wires the endpoints for the configured topology and hop
// count.
func buildLiveStack(cfg LiveConfig, scfg signal.Config, link lossy.Config) (*liveStack, error) {
	switch cfg.Topology {
	case "ring":
		r, err := livenode.NewRing(cfg.Hops, scfg, link)
		if err != nil {
			return nil, err
		}
		return &liveStack{
			install: r.Install,
			remove:  r.Remove,
			tails:   []func(string) ([]byte, bool){r.Home().Get},
			inject:  r.Home().InjectFalseRemoval,
			stats: func() []signal.Stats {
				out := []signal.Stats{r.Origin().Stats()}
				for _, rel := range r.Relays() {
					out = append(out, rel.Receiver().Stats(), rel.Downstream().Stats())
				}
				out = append(out, r.Home().Stats())
				return out
			},
			close: func() { r.Close() },
		}, nil
	case "tree":
		t, err := livenode.NewTree(cfg.TreeFanout, cfg.Hops, scfg, link)
		if err != nil {
			return nil, err
		}
		tails := make([]func(string) ([]byte, bool), len(t.Leaves))
		for i, l := range t.Leaves {
			tails[i] = l.Get
		}
		return &liveStack{
			install: t.Install,
			remove:  t.Remove,
			tails:   tails,
			inject:  t.Leaves[0].InjectFalseRemoval,
			stats: func() []signal.Stats {
				out := []signal.Stats{t.Root.Stats()}
				for _, r := range t.Relays {
					out = append(out, r.Receiver().Stats(), r.Downstream().Stats())
				}
				for _, l := range t.Leaves {
					out = append(out, l.Stats())
				}
				return out
			},
			close: func() { t.Close() },
		}, nil
	}
	if cfg.Hops == 1 {
		a, b, err := lossy.Pipe(link)
		if err != nil {
			return nil, err
		}
		// On the instrumented single-hop run, attach the live paper-metric
		// collector to the sender: its I and Λ gauges are the snapshot
		// sigfig embeds next to the run's sampled inconsistency. The
		// datagram supplier is late-bound (the collector registers before
		// the endpoints exist), exactly signald's wiring.
		var sentSupplier func() int64
		if cfg.Metrics != nil {
			pm := telemetry.NewPaperMetrics(telemetry.PaperConfig{
				Clock:       scfg.Clock,
				AckExpected: variant.For(cfg.Protocol).ReliableTrigger,
				Sent: func() int64 {
					if sentSupplier != nil {
						return sentSupplier()
					}
					return 0
				},
			})
			pm.Register(cfg.Metrics, scfg.MetricsLabels)
			scfg.OnEvent = paperHook(pm)
		}
		snd, err := signal.NewSender(a, b.LocalAddr(), scfg)
		if err != nil {
			return nil, err
		}
		rcfg := scfg
		rcfg.OnEvent = nil // the collector observes the sender side only
		rcv, err := signal.NewReceiver(b, rcfg)
		if err != nil {
			snd.Close()
			return nil, err
		}
		sentSupplier = func() int64 {
			return int64(snd.Stats().TotalSent() + rcv.Stats().TotalSent())
		}
		from := a.LocalAddr()
		return &liveStack{
			install: snd.Install,
			remove:  snd.Remove,
			tails:   []func(string) ([]byte, bool){func(key string) ([]byte, bool) { return rcv.GetFrom(from, key) }},
			inject:  rcv.InjectFalseRemoval,
			stats:   func() []signal.Stats { return []signal.Stats{snd.Stats(), rcv.Stats()} },
			close: func() {
				snd.Close()
				rcv.Close()
			},
		}, nil
	}
	c, err := livenode.NewChain(cfg.Hops+1, scfg, link)
	if err != nil {
		return nil, err
	}
	return &liveStack{
		install: c.Install,
		remove:  c.Remove,
		tails:   []func(string) ([]byte, bool){c.Tail.Get},
		inject:  c.Tail.InjectFalseRemoval,
		stats: func() []signal.Stats {
			out := []signal.Stats{c.Origin.Stats()}
			for _, r := range c.Relays {
				out = append(out, r.Receiver().Stats(), r.Downstream().Stats())
			}
			out = append(out, c.Tail.Stats())
			return out
		},
		close: func() { c.Close() },
	}, nil
}

// paperHook adapts the signal event stream to the paper-metric
// collector's key-lifecycle view (the same mapping signald uses). Keys
// are qualified by peer address so identical keys at different receivers
// do not alias.
func paperHook(pm *telemetry.PaperMetrics) func(signal.Event) {
	return func(ev signal.Event) {
		key := ev.Key
		if ev.Peer != nil {
			key = ev.Peer.String() + "\x00" + key
		}
		switch ev.Kind {
		case signal.EventInstalled, signal.EventUpdated, signal.EventRepaired:
			pm.OnInstall(key)
		case signal.EventAcked:
			pm.OnAck(key)
		case signal.EventRemoved, signal.EventGaveUp:
			pm.OnRemove(key)
		case signal.EventExpired, signal.EventOrphaned, signal.EventFalseRemoval:
			pm.OnLost(key)
		}
	}
}

// ConsistencyVsLoss sweeps the loss rate, one RunLive per point — the
// live-stack version of the paper's consistency-versus-loss figures. All
// other parameters come from base.
func ConsistencyVsLoss(base LiveConfig, losses []float64) ([]LiveResult, error) {
	out := make([]LiveResult, 0, len(losses))
	for _, p := range losses {
		cfg := base
		cfg.Loss = p
		r, err := RunLive(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunLiveVariants runs the same live experiment once per paper protocol —
// SS, SS+ER, SS+RT, SS+RTR, HS — on the real wire stack and returns the
// five results in the paper's presentation order. Every run shares base's
// workload seed, so the five protocols face byte-identical churn and the
// comparison (and its same-seed determinism) is apples to apples.
func RunLiveVariants(base LiveConfig) ([]LiveResult, error) {
	profiles := variant.All()
	out := make([]LiveResult, 0, len(profiles))
	for _, prof := range profiles {
		cfg := base
		cfg.Protocol = prof.Proto
		r, err := RunLive(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: %s live run: %w", prof, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// VariantCurve is one protocol's consistency-versus-loss curve.
type VariantCurve struct {
	Protocol signal.Protocol
	Results  []LiveResult
}

// ConsistencyVsLossVariants sweeps the loss axis for all five paper
// protocols on the live stack — the paper's headline five-way comparison
// as a deterministic virtual-time experiment on real datagrams.
func ConsistencyVsLossVariants(base LiveConfig, losses []float64) ([]VariantCurve, error) {
	out := make([]VariantCurve, 0, 5)
	for _, prof := range variant.All() {
		cfg := base
		cfg.Protocol = prof.Proto
		curve, err := ConsistencyVsLoss(cfg, losses)
		if err != nil {
			return nil, fmt.Errorf("sim: %s loss sweep: %w", prof, err)
		}
		out = append(out, VariantCurve{Protocol: prof.Proto, Results: curve})
	}
	return out, nil
}
