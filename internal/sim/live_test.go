package sim

import (
	"reflect"
	"testing"
	"time"

	"softstate/internal/signal"
)

// fastLive is a small, quick experiment configuration: real endpoints,
// churned keys, 30 virtual seconds.
func fastLive(proto signal.Protocol, hops int, loss float64) LiveConfig {
	return LiveConfig{
		Protocol:        proto,
		Hops:            hops,
		Keys:            24,
		Loss:            loss,
		Delay:           2 * time.Millisecond,
		RefreshInterval: 100 * time.Millisecond,
		Timeout:         300 * time.Millisecond,
		Retransmit:      25 * time.Millisecond,
		MeanLifetime:    3 * time.Second,
		MeanGap:         time.Second,
		Duration:        30 * time.Second,
		Seed:            42,
	}
}

// TestLiveSingleHopDeterministic: the whole stack — Sender, Receiver,
// lossy pipe, sharded tables, goroutine read loops — produces
// byte-identical results for equal seeds, and the workload actually
// exercised the protocol.
func TestLiveSingleHopDeterministic(t *testing.T) {
	cfg := fastLive(signal.SSRT, 1, 0.1)
	a, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Datagrams == 0 || a.Samples == 0 || a.KeyEvents == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	if a.Sent["trigger"] == 0 || a.Sent["refresh"] == 0 || a.Sent["ack"] == 0 {
		t.Fatalf("expected trigger/refresh/ack traffic, got %v", a.Sent)
	}
	cfg.Seed = 43
	c, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical runs — rng not threaded")
	}
}

// TestLiveChainConsistencyVsLoss is the acceptance experiment: the
// paper's consistency-versus-loss curve measured end to end on a real
// 3-hop node.Chain (origin, two relays, tail receiver) in virtual time —
// deterministic across same-seed repetitions, zero wall sleeps.
func TestLiveChainConsistencyVsLoss(t *testing.T) {
	base := fastLive(signal.SSRTR, 3, 0)
	losses := []float64{0, 0.1, 0.3}
	curve, err := ConsistencyVsLoss(base, losses)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ConsistencyVsLoss(base, losses)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(curve, again) {
		t.Fatalf("same-seed loss sweep diverged:\n%+v\n%+v", curve, again)
	}
	for i, r := range curve {
		t.Logf("loss=%.2f  I=%.4f  Λ=%.2f dgrams/key/s  (%d datagrams, %d key events)",
			losses[i], r.Inconsistency, r.Rate, r.Datagrams, r.KeyEvents)
		if r.Samples == 0 || r.Datagrams == 0 {
			t.Fatalf("degenerate point at loss %.2f: %+v", losses[i], r)
		}
		if r.Hops != 3 {
			t.Fatalf("ran %d hops, want 3", r.Hops)
		}
	}
	// More loss cannot make the signaling path more consistent: the
	// lossiest point must be strictly worse than the lossless one, which
	// itself stays small (bounded by propagation plus removal windows).
	if curve[0].Inconsistency >= curve[len(curve)-1].Inconsistency {
		t.Fatalf("inconsistency did not grow with loss: %.4f → %.4f",
			curve[0].Inconsistency, curve[len(curve)-1].Inconsistency)
	}
	if curve[0].Inconsistency > 0.30 {
		t.Fatalf("lossless 3-hop inconsistency = %.4f, expected < 0.30", curve[0].Inconsistency)
	}
}

// TestLiveExplicitRemovalBeatsTimeout reproduces the paper's core
// soft-state-mechanism contrast on the real stack: with churned keys and
// no loss, SS pays a state-timeout of inconsistency after every removal
// while SS+ER clears it in one propagation delay, so SS+ER's measured
// inconsistency must be well below SS's.
func TestLiveExplicitRemovalBeatsTimeout(t *testing.T) {
	ss, err := RunLive(fastLive(signal.SS, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	sser, err := RunLive(fastLive(signal.SSER, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SS I=%.4f   SS+ER I=%.4f", ss.Inconsistency, sser.Inconsistency)
	if sser.Inconsistency*2 >= ss.Inconsistency {
		t.Fatalf("explicit removal did not beat timeout removal: SS %.4f vs SS+ER %.4f",
			ss.Inconsistency, sser.Inconsistency)
	}
	if sser.Sent["removal"] == 0 || ss.Sent["removal"] != 0 {
		t.Fatalf("removal traffic wrong: SS %v, SS+ER %v", ss.Sent, sser.Sent)
	}
}

// TestLiveHardStateFalseRemovalRepair: HS on the real stack holds state
// with zero refresh traffic, and repairs injected false removals via the
// notify → re-trigger path.
func TestLiveHardStateFalseRemovalRepair(t *testing.T) {
	cfg := fastLive(signal.HS, 1, 0)
	cfg.MeanLifetime = 0 // immortal keys; failures come from false signals
	cfg.MeanFalseSignal = 500 * time.Millisecond
	r, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sent["refresh"] != 0 {
		t.Fatalf("hard state sent %d refreshes", r.Sent["refresh"])
	}
	if r.Sent["notify"] == 0 {
		t.Fatal("false signals produced no notifications")
	}
	// Repairs keep inconsistency bounded despite ~60 false removals.
	if r.Inconsistency > 0.10 {
		t.Fatalf("HS inconsistency %.4f despite repair path", r.Inconsistency)
	}
}

// TestLiveFanoutSummaryRefresh: a real node.Node fans 8×128 keys out over
// the virtual switch; summary refresh keeps every key alive through
// several timeout windows at the expected keys-per-datagram reduction,
// deterministically.
func TestLiveFanoutSummaryRefresh(t *testing.T) {
	cfg := FanoutConfig{
		Peers:           8,
		Keys:            128,
		RefreshInterval: 40 * time.Millisecond,
		Timeout:         160 * time.Millisecond,
		Duration:        640 * time.Millisecond, // 4 timeout windows
		Seed:            7,
	}
	a, err := RunLiveFanout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLiveFanout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed fan-out runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Held != cfg.Peers*cfg.Keys {
		t.Fatalf("held %d of %d keys after 4 timeout windows", a.Held, cfg.Peers*cfg.Keys)
	}
	if a.KeysPerDatagram < 32 {
		t.Fatalf("summary reduction only %.1f keys/datagram", a.KeysPerDatagram)
	}
	t.Logf("fan-out: %d keys held, %.1f keys/datagram over %d summaries",
		a.Held, a.KeysPerDatagram, a.SummaryDatagrams)
}
