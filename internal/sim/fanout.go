package sim

import (
	"fmt"
	"net"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	livenode "softstate/internal/node"
	"softstate/internal/signal"
	"softstate/internal/telemetry"
)

// FanoutConfig parameterizes a virtual-time fan-out run: one real
// node.Node maintaining Keys keys at each of Peers receivers over an
// in-memory lossy switch, all inside one virtual clock — the 64-peer ×
// 16k-key regime of the node benchmarks, but deterministic and with the
// refresh windows simulated instead of slept.
type FanoutConfig struct {
	Peers int
	Keys  int // per peer
	// Protocol defaults to SS; summary refresh defaults on (that is the
	// scaling configuration the node subsystem exists for).
	Protocol        signal.Protocol
	RefreshInterval time.Duration // default 100 ms
	Timeout         time.Duration // default 3R
	SummaryMaxKeys  int           // default 64
	Shards          int           // default 16
	Loss            float64
	Delay           time.Duration
	Duration        time.Duration // virtual run length after install; default 3R
	Seed            uint64
	// Unbatched disables same-tick delivery batching on the switch; see
	// LiveConfig.Unbatched.
	Unbatched bool
	// Metrics, when non-nil, instruments the node side (not the Peers
	// receivers, whose per-endpoint series would swamp a scrape) and adds
	// the virtual clock's gate-park counter. Nil runs exactly the
	// pre-telemetry hot path.
	Metrics *telemetry.Registry
	// Trace, when non-nil, records the node side's lifecycle events.
	Trace *telemetry.Tracer
}

func (cfg *FanoutConfig) applyDefaults() error {
	if cfg.Peers <= 0 || cfg.Keys <= 0 {
		return fmt.Errorf("sim: fan-out needs Peers and Keys > 0")
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = 100 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * cfg.RefreshInterval
	}
	if cfg.SummaryMaxKeys <= 0 {
		cfg.SummaryMaxKeys = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * cfg.RefreshInterval
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xfa2007
	}
	return nil
}

// FanoutResult aggregates a fan-out run.
type FanoutResult struct {
	Peers, Keys int
	// Held is the total (peer, key) state held across receivers at the
	// end — Peers×Keys when refresh kept everything alive.
	Held int
	// SummaryDatagrams is how many summary refreshes the receivers took;
	// KeysRenewed is the key renewals they carried (sweep-average exact:
	// delivered datagrams × Keys / ⌈Keys/SummaryMaxKeys⌉).
	SummaryDatagrams int
	KeysRenewed      int
	// Datagrams is every datagram sent by the node (installs included).
	Datagrams int
	// KeysPerDatagram is the refresh-path reduction actually achieved:
	// key renewals delivered per summary datagram sent.
	KeysPerDatagram float64
}

// liveFanout is the live topology, shared by RunLiveFanout and the
// throughput benchmark.
type liveFanout struct {
	clk   *clock.Virtual
	cfg   FanoutConfig
	node  *livenode.Node
	rcvs  []*signal.Receiver
	addrs []net.Addr
}

// buildLiveFanout wires the node and its receivers and installs every key
// (running virtual time forward until all installs have landed).
func buildLiveFanout(cfg FanoutConfig) (*liveFanout, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	v := clock.NewVirtual()
	nw, err := lossy.NewNetwork(lossy.Config{
		Loss: cfg.Loss, Delay: cfg.Delay, Seed: cfg.Seed ^ 0x11ce, Clock: v,
		Unbatched: cfg.Unbatched,
	})
	if err != nil {
		return nil, err
	}
	scfg := signal.Config{
		Protocol:        cfg.Protocol,
		RefreshInterval: cfg.RefreshInterval,
		Timeout:         cfg.Timeout,
		SummaryRefresh:  true,
		SummaryMaxKeys:  cfg.SummaryMaxKeys,
		Shards:          cfg.Shards,
		Clock:           v,
	}
	f := &liveFanout{clk: v, cfg: cfg}
	// Only the node side carries instruments and the tracer: Peers copies
	// of every receiver series would bury the scrape, and the node is
	// where the throughput question lives.
	ncfg := scfg
	ncfg.Metrics = cfg.Metrics
	ncfg.Trace = cfg.Trace
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc(telemetry.Opts{
			Name: "softstate_gate_parks_total",
			Help: "Times the virtual-time driver parked waiting for the quiesce gate.",
		}, func() float64 { return float64(v.Parks()) })
	}
	n, err := livenode.New(nw.Endpoint("node"), ncfg)
	if err != nil {
		return nil, err
	}
	f.node = n
	for p := 0; p < cfg.Peers; p++ {
		conn := nw.Endpoint(fmt.Sprintf("peer%04d", p))
		f.addrs = append(f.addrs, conn.LocalAddr())
		rcv, err := signal.NewReceiver(conn, scfg)
		if err != nil {
			f.close()
			return nil, err
		}
		f.rcvs = append(f.rcvs, rcv)
	}
	for p := 0; p < cfg.Peers; p++ {
		for k := 0; k < cfg.Keys; k++ {
			if err := n.Install(f.addrs[p], fmt.Sprintf("flow/%05d", k), nil); err != nil {
				f.close()
				return nil, err
			}
		}
	}
	v.Run(2 * cfg.Delay) // drain the install burst
	return f, nil
}

func (f *liveFanout) close() {
	if f.node != nil {
		f.node.Close()
	}
	for _, r := range f.rcvs {
		r.Close()
	}
}

// held sums the (peer, key) entries across receivers.
func (f *liveFanout) held() int {
	total := 0
	for _, r := range f.rcvs {
		total += r.Len()
	}
	return total
}

// FanoutBench is a pre-built fan-out topology for throughput
// benchmarking: construction (install burst included) happens in
// NewFanoutBench, so Run measures only steady-state refresh traffic. It
// is the exported form of the harness behind
// BenchmarkLiveFanoutThroughput, reused by cmd/bench for the tracked
// benchmark trajectory.
type FanoutBench struct {
	f *liveFanout
}

// NewFanoutBench wires the topology and installs every key.
func NewFanoutBench(cfg FanoutConfig) (*FanoutBench, error) {
	f, err := buildLiveFanout(cfg)
	if err != nil {
		return nil, err
	}
	return &FanoutBench{f: f}, nil
}

// RefreshInterval returns the configured refresh interval R; each Run(R)
// performs one summary sweep of every peer.
func (b *FanoutBench) RefreshInterval() time.Duration { return b.f.cfg.RefreshInterval }

// KeysPerInterval returns the keys renewed per refresh interval
// (Peers × Keys).
func (b *FanoutBench) KeysPerInterval() int { return b.f.cfg.Peers * b.f.cfg.Keys }

// Run advances virtual time by d.
func (b *FanoutBench) Run(d time.Duration) { b.f.clk.Run(d) }

// Close tears the topology down.
func (b *FanoutBench) Close() { b.f.close() }

// RunLiveFanout builds the topology, runs Duration of virtual time, and
// reports how summary refresh carried the key population.
func RunLiveFanout(cfg FanoutConfig) (FanoutResult, error) {
	f, err := buildLiveFanout(cfg)
	if err != nil {
		return FanoutResult{}, err
	}
	defer f.close()
	f.clk.Run(f.cfg.Duration)
	res := FanoutResult{Peers: f.cfg.Peers, Keys: f.cfg.Keys, Held: f.held()}
	for _, r := range f.rcvs {
		res.SummaryDatagrams += r.Stats().Received["summary-refresh"]
	}
	// One sweep renews a peer's Keys keys in ⌈Keys/SummaryMaxKeys⌉
	// datagrams (the tail chunk is partial), so renewals per datagram is
	// the sweep average, not SummaryMaxKeys.
	chunks := (f.cfg.Keys + f.cfg.SummaryMaxKeys - 1) / f.cfg.SummaryMaxKeys
	res.KeysRenewed = res.SummaryDatagrams * f.cfg.Keys / chunks
	st := f.node.Stats()
	res.Datagrams = st.TotalSent()
	if sent := st.Sent["summary-refresh"]; sent > 0 {
		res.KeysPerDatagram = float64(res.KeysRenewed) / float64(sent)
	}
	return res, nil
}
