package sim

import (
	"reflect"
	"testing"
	"time"

	"softstate/internal/signal"
	"softstate/internal/variant"
)

// acceptanceSchedule is the canonical crash → partition → heal campaign
// (with an asymmetric-loss episode riding along): the origin dies and
// restarts cold at 1 s, the chain partitions mid-path at 2 s, heals at
// 2.6 s — short enough that hard state's orphan detector (3 probe misses
// × 300 ms) does not fire during the cut, so all five variants must
// reconverge afterward.
func acceptanceSchedule() []Fault {
	return []Fault{
		{At: 500 * time.Millisecond, Kind: FaultForwardLoss, Hop: 0, Loss: 0.5},
		{At: 900 * time.Millisecond, Kind: FaultForwardLoss, Hop: 0, Loss: -1},
		{At: 1 * time.Second, Kind: FaultSenderRestart},
		{At: 2 * time.Second, Kind: FaultPartition, Hop: 1},
		{At: 2600 * time.Millisecond, Kind: FaultHeal},
	}
}

// TestCampaignReplaysByteIdentically is the replayable-seed acceptance
// check: the same config produces the same full event/invariant log,
// compared with reflect.DeepEqual across two independent runs.
func TestCampaignReplaysByteIdentically(t *testing.T) {
	cfg := CampaignConfig{
		Protocol: signal.SSRTR,
		Loss:     0.1,
		Seed:     42,
		Schedule: acceptanceSchedule(),
		Duration: 6 * time.Second,
	}
	r1, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed, different campaigns:\nrun1: %+v\nrun2: %+v", r1, r2)
	}
	if len(r1.Log) == 0 || r1.Audits == 0 {
		t.Fatalf("empty campaign log: %+v", r1)
	}
}

// TestCampaignAllVariantsReconverge: after crash → partition → heal,
// every one of the five variants returns to full tail/origin agreement
// with zero invariant violations — the restart does not wedge sequence
// spaces (UDP incarnation fix) and the heal restores propagation.
func TestCampaignAllVariantsReconverge(t *testing.T) {
	for _, proto := range []signal.Protocol{signal.SS, signal.SSER, signal.SSRT, signal.SSRTR, signal.HS} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			res, err := RunCampaign(CampaignConfig{
				Protocol: proto,
				Seed:     7,
				Schedule: acceptanceSchedule(),
				Duration: 6 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("invariant violations: %v", res.Violations)
			}
			if !res.Reconverged {
				t.Fatalf("never reconverged after heal: final holds %d/%d\nlog tail: %v",
					res.FinalHolds, res.Keys, res.Log[len(res.Log)-5:])
			}
			if res.TimeToReconverge < 0 {
				t.Fatalf("reconverged without a time: %+v", res)
			}
			// The partition must actually have hurt: a soft-state tail
			// expires its entries during a 600 ms cut (timeout 300 ms), so
			// some partition audit saw disagreement.
			if !variant.For(proto).HardState && res.PartitionInconsistentKeys == 0 {
				t.Fatal("soft state lost nothing under a 2×timeout partition")
			}
		})
	}
}

// TestCampaignReceiverColdRestart: the paper's robustness contrast as a
// campaign — a cold-restarted receiver is rebuilt by soft-state
// refreshes, while hard state has no mechanism to resynchronize it and
// stays empty until some external signal (here: never).
func TestCampaignReceiverColdRestart(t *testing.T) {
	schedule := []Fault{{At: time.Second, Kind: FaultReceiverRestart}}
	soft, err := RunCampaign(CampaignConfig{
		Protocol: signal.SS, Seed: 9, Schedule: schedule, Duration: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !soft.Reconverged {
		t.Fatalf("soft state did not rebuild a cold receiver: %+v", soft)
	}
	hard, err := RunCampaign(CampaignConfig{
		Protocol: signal.HS, Seed: 9, Schedule: schedule, Duration: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hard.Reconverged {
		t.Fatal("hard state reconverged a cold receiver with no refresh mechanism — it should not be able to")
	}
	if len(hard.Violations) != 0 {
		t.Fatalf("hard state violated invariants while failing to reconverge: %v", hard.Violations)
	}
}

// TestCampaignRelayFlap: an interior relay flap heals by itself under
// every refresh-bearing variant.
func TestCampaignRelayFlap(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Protocol: signal.SSRTR,
		Nodes:    4,
		Seed:     11,
		Schedule: []Fault{{At: time.Second, Kind: FaultRelayRestart, Hop: 1}},
		Duration: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconverged || len(res.Violations) != 0 {
		t.Fatalf("relay flap did not heal: %+v", res)
	}
}
