package sim

import (
	"reflect"
	"testing"
	"time"

	"softstate/internal/signal"
)

// fastCensus is a small audited chain run: 3 links, churned keys, loss.
func fastCensus(proto signal.Protocol, loss float64) CensusConfig {
	return CensusConfig{
		Protocol:        proto,
		Hops:            3,
		Keys:            16,
		Loss:            loss,
		Delay:           2 * time.Millisecond,
		RefreshInterval: 100 * time.Millisecond,
		Timeout:         300 * time.Millisecond,
		Retransmit:      25 * time.Millisecond,
		MeanLifetime:    3 * time.Second,
		MeanGap:         time.Second,
		Duration:        20 * time.Second,
		Seed:            42,
	}
}

// TestCensusAuditDeterministic: the audited chain — real endpoints,
// digest maintenance, periodic RunCensus rounds — is byte-identical for
// equal seeds, and the auditor actually observed the run.
func TestCensusAuditDeterministic(t *testing.T) {
	cfg := fastCensus(signal.SS, 0.2)
	a, err := RunCensusAudit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCensusAudit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed audited runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Censuses == 0 || a.Samples == 0 || a.KeyEvents == 0 || a.Datagrams == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	cfg.Seed = 43
	c, err := RunCensusAudit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical audited runs")
	}
}

// TestCensusAuditObservesDivergence: under churn the SS chain is
// routinely divergent (silent removals leave each hop holding state for
// a timeout), the auditor must see it, and during the churn-free quiesce
// window the chain must read converged at least once — the auditor's
// false-positive check. On ack-less SS the paper-metric estimator is a
// deliberate lower bound (lost refreshes are invisible to the event
// stream), so the estimator agreement is asserted on SS+RT, where every
// trigger expects an ack and loss→repair windows are observable.
func TestCensusAuditObservesDivergence(t *testing.T) {
	res, err := RunCensusAudit(fastCensus(signal.SS, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SS    audited=%.4f hop1=%.4f estimated=%.4f sampled=%.4f (censuses=%d, max=%d, quiesce=%d)",
		res.AuditedDivergence, res.Hop1Divergence, res.EstimatedInconsistency,
		res.Inconsistency, res.Censuses, res.MaxDivergent, res.QuiesceCensuses)
	if res.AuditedDivergence == 0 {
		t.Fatal("churned lossy SS chain showed zero audited divergence")
	}
	if res.Hop1Divergence == 0 {
		t.Fatalf("origin-link auditor silent: %+v", res)
	}
	if !res.Drained {
		t.Fatalf("no quiesce census read converged across %d rounds (last: %d divergent keys)",
			res.QuiesceCensuses, res.FinalDivergent)
	}

	rt, err := RunCensusAudit(fastCensus(signal.SSRT, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SS+RT audited=%.4f hop1=%.4f estimated=%.4f sampled=%.4f",
		rt.AuditedDivergence, rt.Hop1Divergence, rt.EstimatedInconsistency, rt.Inconsistency)
	if rt.EstimatedInconsistency == 0 {
		t.Fatalf("ack-bearing SS+RT estimator silent: %+v", rt)
	}
	if !rt.Drained {
		t.Fatalf("SS+RT quiesce never converged (last: %d divergent keys)", rt.FinalDivergent)
	}
}

// TestCensusVariantsOrdering: the auditor's divergence measure must
// reproduce the paper's qualitative protocol ordering — reliable
// removal (SS+RTR, HS) beats silent-timeout SS — and every variant's
// chain must converge once churn stops.
func TestCensusVariantsOrdering(t *testing.T) {
	base := fastCensus(signal.SS, 0.15)
	results, err := RunCensusVariants(base)
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[signal.Protocol]CensusResult{}
	for _, r := range results {
		t.Logf("%-6v audited=%.4f sampled_I=%.4f final_divergent=%d",
			r.Protocol, r.AuditedDivergence, r.Inconsistency, r.FinalDivergent)
		byProto[r.Protocol] = r
		if !r.Drained {
			t.Errorf("%v: no quiesce census read converged (last: %d divergent keys)",
				r.Protocol, r.FinalDivergent)
		}
		if r.Censuses == 0 {
			t.Errorf("%v: no census rounds ran", r.Protocol)
		}
	}
	if byProto[signal.SSRTR].AuditedDivergence >= byProto[signal.SS].AuditedDivergence {
		t.Errorf("reliable removal did not reduce audited divergence: SS+RTR %.4f vs SS %.4f",
			byProto[signal.SSRTR].AuditedDivergence, byProto[signal.SS].AuditedDivergence)
	}
}
