package sim

import (
	"testing"
	"time"

	"softstate/internal/signal"
	"softstate/internal/telemetry"
)

// BenchmarkLiveFanoutThroughput is the virtual-time event-throughput
// benchmark on the real stack at the node subsystem's headline scale: one
// node.Node renews 64 peers × 16k keys (1,048,576 keys) per refresh
// interval via summary refresh, with every datagram individually
// scheduled, delivered, and processed through the clock's quiesce gate.
// The headline metric is simulated keys-refreshed per wall second — how
// fast the virtual-time backend chews through the paper's experiment load
// compared to the ~6M keys-refreshed/s the wall-clock runtime sustains.
func BenchmarkLiveFanoutThroughput(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-key topology; skipped in -short")
	}
	cfg := FanoutConfig{
		Peers:           64,
		Keys:            16384,
		RefreshInterval: 100 * time.Millisecond,
		Timeout:         time.Hour, // isolate refresh throughput from expiry
	}
	f, err := buildLiveFanout(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer f.close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.clk.Run(cfg.RefreshInterval) // one summary sweep of every peer
	}
	b.StopTimer()
	renewed := float64(b.N) * float64(cfg.Peers) * float64(cfg.Keys)
	b.ReportMetric(renewed/b.Elapsed().Seconds(), "keys-refreshed/s")
	b.ReportMetric(float64(b.N)*cfg.RefreshInterval.Seconds()/b.Elapsed().Seconds(), "virtual-s/wall-s")
}

// BenchmarkLiveFanoutThroughputTelemetry is the same workload with the
// full observability layer on — node-side registry instruments and the
// lifecycle tracer recording into its ring. Comparing against
// BenchmarkLiveFanoutThroughput bounds what telemetry costs when enabled;
// the disabled case is the plain benchmark itself, since nil
// Registry/Tracer run the identical pre-telemetry instruction stream plus
// one predictable branch per call site.
func BenchmarkLiveFanoutThroughputTelemetry(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-key topology; skipped in -short")
	}
	cfg := FanoutConfig{
		Peers:           64,
		Keys:            16384,
		RefreshInterval: 100 * time.Millisecond,
		Timeout:         time.Hour,
		Metrics:         telemetry.NewRegistry(),
		Trace:           telemetry.NewTracer(telemetry.TracerConfig{Capacity: 1 << 14}),
	}
	f, err := buildLiveFanout(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer f.close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.clk.Run(cfg.RefreshInterval)
	}
	b.StopTimer()
	renewed := float64(b.N) * float64(cfg.Peers) * float64(cfg.Keys)
	b.ReportMetric(renewed/b.Elapsed().Seconds(), "keys-refreshed/s")
	b.ReportMetric(float64(cfg.Trace.Len())+float64(cfg.Trace.Overwritten()), "trace-events")
}

// BenchmarkLiveSingleHopEvents measures raw harness event throughput on a
// churned single-hop experiment — the cost of one virtual second of the
// consistency experiment at its default scale.
func BenchmarkLiveSingleHopEvents(b *testing.B) {
	cfg := LiveConfig{
		Protocol:        signal.SSRT,
		Hops:            1,
		Keys:            64,
		Loss:            0.1,
		Delay:           2 * time.Millisecond,
		RefreshInterval: 100 * time.Millisecond,
		MeanLifetime:    3 * time.Second,
		MeanGap:         time.Second,
		Duration:        time.Duration(b.N) * time.Second,
		Seed:            9,
	}
	b.ResetTimer()
	if _, err := RunLive(cfg); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "virtual-s/wall-s")
}
