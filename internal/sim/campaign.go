package sim

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	livenode "softstate/internal/node"
	"softstate/internal/signal"
)

// Failure campaigns: seeded, replayable schedules of the faults the paper
// only gestures at — node crash/restart with state resynchronization,
// network partitions and healing, relay flaps mid-chain, asymmetric loss
// — executed against the real runtime (a switch-backed node.NetChain) in
// virtual time. Every run appends each fault and each periodic audit
// (state agreement + signal.CheckInvariants) to a deterministic log, so a
// campaign is byte-replayable from its configuration alone and two runs
// of the same config can be compared with reflect.DeepEqual.

// FaultKind names one failure primitive.
type FaultKind string

const (
	// FaultSenderRestart crashes the origin and restarts it cold on the
	// same address; the restarted process re-installs the workload — the
	// application-level resynchronization a real boot performs.
	FaultSenderRestart FaultKind = "sender-restart"
	// FaultReceiverRestart cold-restarts the tail receiver: all installed
	// state is lost and only the protocol's own mechanisms may rebuild it.
	FaultReceiverRestart FaultKind = "receiver-restart"
	// FaultRelayRestart flaps interior relay Hop (both sockets die, fresh
	// relay on the same addresses, empty tables).
	FaultRelayRestart FaultKind = "relay-restart"
	// FaultPartition cuts the chain between node Hop and node Hop+1.
	FaultPartition FaultKind = "partition"
	// FaultHeal removes any partition.
	FaultHeal FaultKind = "heal"
	// FaultForwardLoss overrides loss on the directed link node Hop →
	// node Hop+1 (the trigger/refresh direction) with Loss; negative
	// clears. FaultReverseLoss degrades the ack direction instead —
	// together they model asymmetric links.
	FaultForwardLoss FaultKind = "forward-loss"
	FaultReverseLoss FaultKind = "reverse-loss"
)

// Fault is one scheduled failure event.
type Fault struct {
	At   time.Duration // virtual offset from campaign start
	Kind FaultKind
	Hop  int     // relay index, cut position, or link index (kind-dependent)
	Loss float64 // loss override for the loss kinds
}

// CampaignConfig parameterizes one seeded failure campaign.
type CampaignConfig struct {
	Protocol signal.Protocol
	// Nodes is the chain length (default 3: origin, one relay, tail).
	Nodes int
	// Keys is the workload size installed at start (default 8).
	Keys int
	// Loss and Delay impair every link at baseline.
	Loss  float64
	Delay time.Duration
	// Protocol timers (defaults R = 100 ms, T = 3R, Γ = 25 ms).
	RefreshInterval time.Duration
	Timeout         time.Duration
	Retransmit      time.Duration
	// Duration is the virtual campaign length (default 5 s past the last
	// scheduled fault).
	Duration time.Duration
	// AuditEvery is the invariant/agreement audit period (default
	// RefreshInterval/2).
	AuditEvery time.Duration
	// Seed drives link impairments; equal seeds + equal schedules produce
	// byte-identical CampaignResults.
	Seed uint64
	// Schedule is the fault timeline; it is applied in At order.
	Schedule []Fault
}

func (cfg *CampaignConfig) applyDefaults() error {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Nodes < 2 {
		return fmt.Errorf("sim: campaign needs ≥ 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 8
	}
	if cfg.Delay <= 0 {
		cfg.Delay = time.Millisecond
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = 100 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * cfg.RefreshInterval
	}
	if cfg.Retransmit <= 0 {
		cfg.Retransmit = 25 * time.Millisecond
	}
	if cfg.AuditEvery <= 0 {
		cfg.AuditEvery = cfg.RefreshInterval / 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xca3a1
	}
	if cfg.Duration <= 0 {
		var last time.Duration
		for _, f := range cfg.Schedule {
			if f.At > last {
				last = f.At
			}
		}
		cfg.Duration = last + 5*time.Second
	}
	for _, f := range cfg.Schedule {
		switch f.Kind {
		case FaultSenderRestart, FaultReceiverRestart, FaultPartition,
			FaultHeal, FaultForwardLoss, FaultReverseLoss:
		case FaultRelayRestart:
			if f.Hop < 0 || f.Hop >= cfg.Nodes-2 {
				return fmt.Errorf("sim: relay-restart hop %d outside chain of %d nodes", f.Hop, cfg.Nodes)
			}
		default:
			return fmt.Errorf("sim: unknown fault kind %q", f.Kind)
		}
	}
	return nil
}

// CampaignResult is one campaign's full, deterministic record. Every
// field is a pure function of the CampaignConfig; reflect.DeepEqual
// across same-config runs is the replay check.
type CampaignResult struct {
	Protocol string
	Nodes    int
	Keys     int

	// Log records every fault applied and every audit taken, in virtual-
	// time order — the byte-replayable trace.
	Log []string
	// Violations collects every invariant violation any audit found.
	Violations []string

	// Audits counts audit points; PartitionAudits the ones taken while a
	// partition was active, and PartitionInconsistentKeys the (key, audit)
	// pairs in which the tail disagreed with the origin's intent during
	// one. InconsistencyUnderPartition is their ratio — the paper's I
	// metric confined to partition windows.
	Audits                      int
	PartitionAudits             int
	PartitionInconsistentKeys   int
	InconsistencyUnderPartition float64

	// Reconverged reports whether, after the last fault, some audit saw
	// the tail agree with the origin's intent on every key with zero
	// invariant violations; TimeToReconverge is the virtual time from the
	// last fault to that audit (-1 if it never happened).
	Reconverged      bool
	TimeToReconverge time.Duration
	// FinalHolds is the tail's agreeing key count at campaign end.
	FinalHolds int
}

// RunCampaign executes one seeded failure campaign on the real runtime in
// virtual time.
func RunCampaign(cfg CampaignConfig) (CampaignResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return CampaignResult{}, err
	}
	v := clock.NewVirtual()
	scfg := signal.Config{
		Protocol:        cfg.Protocol,
		RefreshInterval: cfg.RefreshInterval,
		Timeout:         cfg.Timeout,
		Retransmit:      cfg.Retransmit,
		Clock:           v,
	}
	link := lossy.Config{
		Loss:  cfg.Loss,
		Delay: cfg.Delay,
		Seed:  cfg.Seed ^ 0x11ce,
		Clock: v,
	}
	chain, err := livenode.NewNetChain(cfg.Nodes, scfg, link)
	if err != nil {
		return CampaignResult{}, err
	}
	defer chain.Close()

	res := CampaignResult{
		Protocol: scfg.Protocol.String(),
		Nodes:    cfg.Nodes,
		Keys:     cfg.Keys,
	}
	keyName := func(k int) string { return fmt.Sprintf("flow/%03d", k) }
	intent := make([][]byte, cfg.Keys)
	generation := 1
	installAll := func() {
		for k := 0; k < cfg.Keys; k++ {
			val := []byte(fmt.Sprintf("v%d", generation))
			if chain.Install(keyName(k), val) == nil {
				intent[k] = val
			}
		}
		generation++
	}
	installAll()

	// agreeing counts the workload keys on which the tail matches the
	// origin's intent. The tail is read through the chain, so a receiver
	// restart swaps the sampled endpoint as it would in production.
	agreeing := func() int {
		n := 0
		for k := 0; k < cfg.Keys; k++ {
			if got, ok := chain.Tail.Get(keyName(k)); ok && bytes.Equal(got, intent[k]) {
				n++
			}
		}
		return n
	}

	schedule := append([]Fault(nil), cfg.Schedule...)
	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].At < schedule[j].At })
	var lastFaultAt time.Duration = -1
	partitioned := false

	apply := func(f Fault) {
		switch f.Kind {
		case FaultSenderRestart:
			if err := chain.RestartOrigin(); err == nil {
				installAll() // the restarted process re-asserts its intent
			}
		case FaultReceiverRestart:
			chain.RestartTail()
		case FaultRelayRestart:
			chain.RestartRelay(f.Hop)
		case FaultPartition:
			chain.PartitionAt(f.Hop)
			partitioned = true
		case FaultHeal:
			chain.Heal()
			partitioned = false
		case FaultForwardLoss:
			chain.SetForwardLoss(f.Hop, f.Loss)
		case FaultReverseLoss:
			chain.SetReverseLoss(f.Hop, f.Loss)
		}
		lastFaultAt = v.Elapsed()
		res.Reconverged = false
		res.TimeToReconverge = -1
		res.Log = append(res.Log, fmt.Sprintf("t=%v fault=%s hop=%d loss=%g", v.Elapsed(), f.Kind, f.Hop, f.Loss))
	}

	audit := func() {
		holds := agreeing()
		bad := chain.CheckInvariants()
		res.Audits++
		if partitioned {
			res.PartitionAudits++
			res.PartitionInconsistentKeys += cfg.Keys - holds
		}
		if len(bad) != 0 {
			res.Violations = append(res.Violations, bad...)
		}
		if !res.Reconverged && holds == cfg.Keys && len(bad) == 0 {
			res.Reconverged = true
			if lastFaultAt >= 0 {
				res.TimeToReconverge = v.Elapsed() - lastFaultAt
			} else {
				res.TimeToReconverge = v.Elapsed()
			}
		}
		res.Log = append(res.Log, fmt.Sprintf("t=%v audit holds=%d/%d violations=%d", v.Elapsed(), holds, cfg.Keys, len(bad)))
	}

	// Timeline: advance the clock to the next fault or audit tick, apply
	// what is due, repeat. Everything is a pure function of the config.
	res.TimeToReconverge = -1
	fi := 0
	nextAudit := cfg.AuditEvery
	now := time.Duration(0)
	for now < cfg.Duration {
		next := nextAudit
		if fi < len(schedule) && schedule[fi].At < next {
			next = schedule[fi].At
		}
		if next > cfg.Duration {
			next = cfg.Duration
		}
		if next > now {
			v.Run(next - now)
			now = next
		}
		for fi < len(schedule) && schedule[fi].At <= now {
			apply(schedule[fi])
			fi++
		}
		for nextAudit <= now {
			audit()
			nextAudit += cfg.AuditEvery
		}
	}
	res.FinalHolds = agreeing()
	if res.PartitionAudits > 0 {
		res.InconsistencyUnderPartition =
			float64(res.PartitionInconsistentKeys) / float64(res.PartitionAudits*cfg.Keys)
	}
	return res, nil
}
