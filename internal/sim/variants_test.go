package sim

import (
	"reflect"
	"testing"
	"time"

	"softstate/internal/signal"
	"softstate/internal/singlehop"
)

// variantBase is the five-way comparison workload: churned keys, 15%
// loss, and the external false-removal signal firing (the failure mode HS
// must pay for), so every protocol's distinctive mechanism is exercised.
func variantBase() LiveConfig {
	base := fastLive(signal.SS, 1, 0.15)
	base.MeanFalseSignal = 2 * time.Second
	return base
}

// TestLiveFiveVariantSweep is the tentpole acceptance test: all five
// paper protocols run on the real wire stack under one virtual clock,
// same-seed deterministic, and the measured consistency ordering
// reproduces the paper's qualitative result — the reliable-removal
// variants achieve the lowest inconsistency while pure SS runs with the
// least per-message machinery.
func TestLiveFiveVariantSweep(t *testing.T) {
	base := variantBase()
	a, err := RunLiveVariants(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLiveVariants(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed five-variant sweeps diverged:\n%+v\n%+v", a, b)
	}

	I := map[signal.Protocol]float64{}
	for _, r := range a {
		I[r.Protocol] = r.Inconsistency
		if r.Samples == 0 || r.Datagrams == 0 || r.KeyEvents == 0 {
			t.Fatalf("degenerate %v run: %+v", r.Protocol, r)
		}
		t.Logf("%-7v I=%.4f Λ=%.2f dgrams/key/s sent=%v", r.Protocol, r.Inconsistency, r.Rate, r.Sent)
	}

	// Paper ordering, qualitatively: reliable removal wins the
	// consistency race; every reliability mechanism beats timeout-only
	// removal under loss.
	for _, rel := range []signal.Protocol{signal.SSRTR, signal.HS} {
		for _, weak := range []signal.Protocol{signal.SS, signal.SSRT} {
			if I[rel] >= I[weak] {
				t.Errorf("I(%v)=%.4f not below I(%v)=%.4f", rel, I[rel], weak, I[weak])
			}
		}
	}
	if I[signal.SSER] >= I[signal.SS] {
		t.Errorf("explicit removal did not help: I(SS+ER)=%.4f vs I(SS)=%.4f", I[signal.SSER], I[signal.SS])
	}
	min := signal.SS
	for p, v := range I {
		if v < I[min] {
			min = p
		}
	}
	if min != signal.SSRTR && min != signal.HS {
		t.Errorf("lowest inconsistency is %v, want a reliable-removal variant", min)
	}

	// Per-message machinery: pure SS runs none of it — no acks, no
	// removals, no probes. Every other variant runs its distinctive
	// mechanism on the wire.
	byProto := map[signal.Protocol]LiveResult{}
	for _, r := range a {
		byProto[r.Protocol] = r
	}
	if m := byProto[signal.SS].Machinery(); m != 0 {
		t.Errorf("SS sent %d machinery datagrams, want 0 (%v)", m, byProto[signal.SS].Sent)
	}
	checks := []struct {
		proto signal.Protocol
		typ   string
	}{
		{signal.SSER, "removal"},
		{signal.SSRT, "ack"},
		{signal.SSRTR, "removal-ack"},
		{signal.HS, "probe"},
		{signal.HS, "probe-ack"},
	}
	for _, c := range checks {
		if byProto[c.proto].Sent[c.typ] == 0 {
			t.Errorf("%v sent no %s datagrams: %v", c.proto, c.typ, byProto[c.proto].Sent)
		}
	}
	if byProto[signal.HS].Sent["refresh"] != 0 {
		t.Errorf("HS sent refreshes: %v", byProto[signal.HS].Sent)
	}
}

// TestLiveFiveVariantLossCurve: the five-way sweep extends across the
// loss axis deterministically, and more loss never helps any protocol.
func TestLiveFiveVariantLossCurve(t *testing.T) {
	base := variantBase()
	base.Duration = 20 * time.Second
	losses := []float64{0, 0.3}
	curves, err := ConsistencyVsLossVariants(base, losses)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ConsistencyVsLossVariants(base, losses)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(curves, again) {
		t.Fatal("same-seed five-variant loss sweep diverged")
	}
	if len(curves) != 5 {
		t.Fatalf("got %d curves, want 5", len(curves))
	}
	for i, c := range curves {
		if c.Protocol != singlehop.Protocols()[i] {
			t.Fatalf("curve %d is %v, want paper order", i, c.Protocol)
		}
		lossless, lossy := c.Results[0], c.Results[len(c.Results)-1]
		t.Logf("%-7v I(0)=%.4f I(0.3)=%.4f", c.Protocol, lossless.Inconsistency, lossy.Inconsistency)
		if lossless.Inconsistency > lossy.Inconsistency {
			t.Errorf("%v got more consistent under 30%% loss: %.4f → %.4f",
				c.Protocol, lossless.Inconsistency, lossy.Inconsistency)
		}
	}
}
