// Package wire defines the on-the-wire encoding for the signaling runtime
// (internal/signal): a compact, versioned, checksummed binary format for
// the message types the generic protocols exchange. The format is
// deliberately simple — fixed header, length-prefixed key and value, CRC32
// trailer — so a datagram is self-contained and corruption is detected
// before it can touch protocol state.
//
// Layout (big endian):
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     type
//	2       8     sequence number
//	10      2     key length K (≤ MaxKeyLen)
//	12      K     key bytes
//	12+K    4     value length V (≤ MaxValueLen)
//	16+K    V     value bytes
//	16+K+V  4     CRC32 (IEEE) of bytes [0, 16+K+V)
//
// The two summary types (TypeSummaryRefresh, TypeSummaryNack) carry a key
// *list* instead of a single key/value pair — RFC 2961-style refresh
// reduction, where one datagram renews (or NACKs) many keys at once. For
// them K is always 0 and the value region holds the list:
//
//	2     key count N (≤ MaxSummaryKeys)
//	N ×   { 2: key length, key bytes }
//
// TypeAckBatch mirrors that reduction on the reply path: one datagram
// carries many coalesced acknowledgements, each with its own kind (ack or
// removal-ack), sequence number, and key. K is 0 and the value region
// holds the item list:
//
//	2     item count N (≤ MaxAckItems)
//	N ×   { 1: ack kind, 8: sequence, 2: key length, key bytes }
//
// Version 2 frames carry an optional extension block between the fixed
// header and the key — today a single trace-context TLV stamped on
// sampled keys' datagrams for cross-node causal tracing:
//
//	offset  size  field
//	0       1     version (2)
//	1       1     type
//	2       8     sequence number
//	10      2     key length K
//	12      1     extension block length E
//	13      E     extension TLVs { 1: ext type, 1: ext length, payload }
//	13+E    K     key bytes
//	...           value length, value, CRC32 as in version 1
//
// A version-1 frame encodes byte-identically to before the extension
// existed; version 2 is emitted only when a message actually carries a
// trace context, so untraced traffic is wire-compatible with old
// decoders. Decoding is strict: a v2 frame must carry exactly the
// canonical trace TLV (unknown or duplicate TLVs are rejected rather
// than silently dropped, preserving the decode/re-encode round-trip the
// fuzzer enforces). Summary and ack-batch frames never carry extensions.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Version is the baseline wire format version.
const Version = 1

// VersionExt is the extended wire format version: identical to Version
// plus an extension block (currently the trace-context TLV) between the
// fixed header and the key. Encoders emit it only when a message carries
// a sampled trace context.
const VersionExt = 2

// Extension TLV types carried by VersionExt frames.
const (
	// ExtTrace is the trace-context TLV: 8-byte origin timestamp, 8-byte
	// hop timestamp, 1-byte hop count (all big endian).
	ExtTrace = 1

	extTraceLen  = 8 + 8 + 1       // TLV payload
	extTraceTLV  = 2 + extTraceLen // type byte, length byte, payload
	extRegionLen = 1 + extTraceTLV // block length byte + the one TLV
)

// TraceContext is the hop-propagated causal-tracing context carried by
// sampled keys' datagrams as a VersionExt extension. Timestamps are
// nanoseconds since the runtime's shared sequence epoch, so they are
// meaningful across virtual-clock replays and (modulo clock skew)
// across hosts.
type TraceContext struct {
	// OriginNs is the origin endpoint's stamp, propagated unchanged by
	// relays: receiver time minus OriginNs is the end-to-end install
	// latency across however many hops the context has crossed. A zero
	// OriginNs means "no trace context" (the sampled predicate).
	OriginNs int64
	// HopNs is the immediate sender's send stamp, re-stamped at every
	// hop: receiver time minus HopNs is the one-hop propagation latency.
	HopNs int64
	// Hops counts store-and-forward hops already traversed (0 on the
	// origin's own transmission; a relay re-propagates with Hops+1).
	Hops uint8
}

// Sampled reports whether the context is present (the key was sampled
// for tracing at the origin).
func (tc TraceContext) Sampled() bool { return tc.OriginNs != 0 }

// Size limits keep a message inside a single conventional UDP datagram.
const (
	// MaxKeyLen bounds the state key.
	MaxKeyLen = 512
	// MaxValueLen bounds the state value payload.
	MaxValueLen = 8192
	// MaxSummaryKeys bounds the key list of a summary message. The list
	// must also fit the MaxValueLen byte budget.
	MaxSummaryKeys = 1024
	// MaxAckItems bounds the item list of an ack batch. The list must
	// also fit the MaxValueLen byte budget (each item costs 11 bytes plus
	// its key, so 512 zero-length-key items still fit).
	MaxAckItems = 512
)

// Type enumerates signaling message types.
type Type uint8

// Message types of the generic protocols (paper Figure 1).
const (
	// TypeTrigger installs or updates state (best-effort or reliable).
	TypeTrigger Type = iota + 1
	// TypeRefresh is a periodic soft-state refresh.
	TypeRefresh
	// TypeAck acknowledges a trigger (reliable-trigger protocols).
	TypeAck
	// TypeRemoval explicitly removes state.
	TypeRemoval
	// TypeRemovalAck acknowledges a removal (reliable-removal protocols).
	TypeRemovalAck
	// TypeNotify informs the sender that its state was removed at the
	// receiver (timeout or external signal).
	TypeNotify
	// TypeSummaryRefresh renews many keys in one datagram (RFC 2961-style
	// refresh reduction). It carries a key list, no value.
	TypeSummaryRefresh
	// TypeSummaryNack lists keys from a summary refresh that the receiver
	// does not hold, telling the sender to fall back to full triggers.
	TypeSummaryNack
	// TypeAckBatch coalesces many acknowledgements (acks and removal-acks)
	// into one datagram — the reply-path counterpart of summary refresh.
	TypeAckBatch
	// TypeProbe asks a sender whether it still owns a key: the hard-state
	// receiver's orphan-detection liveness probe (the paper's "external
	// removal signal" made concrete). Seq echoes the receiver's latest
	// accepted sequence for the key; there is no value.
	TypeProbe
	// TypeProbeAck answers a probe for a key the sender still owns. A
	// sender that no longer owns the key stays silent, letting the
	// receiver's miss counter declare the state orphaned.
	TypeProbeAck
	// TypeDigest asks a peer for its state-table digest — the census
	// request of the convergence auditor. The value region carries a
	// DigestRequest (see digest.go); Seq is a requester-chosen nonce that
	// the reply echoes.
	TypeDigest
	// TypeDigestReply answers a digest request: either the per-bucket
	// digest sums, or the per-key digests of one bucket being resolved
	// down to divergent keys. The value region carries the reply payload
	// (see digest.go).
	TypeDigestReply
	maxType
)

// NumTypes is the number of defined message types plus one, so a valid
// Type can index a [NumTypes] counter array directly.
const NumTypes = int(maxType)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeTrigger:
		return "trigger"
	case TypeRefresh:
		return "refresh"
	case TypeAck:
		return "ack"
	case TypeRemoval:
		return "removal"
	case TypeRemovalAck:
		return "removal-ack"
	case TypeNotify:
		return "notify"
	case TypeSummaryRefresh:
		return "summary-refresh"
	case TypeSummaryNack:
		return "summary-nack"
	case TypeAckBatch:
		return "ack-batch"
	case TypeProbe:
		return "probe"
	case TypeProbeAck:
		return "probe-ack"
	case TypeDigest:
		return "digest"
	case TypeDigestReply:
		return "digest-reply"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Valid reports whether t is a known message type.
func (t Type) Valid() bool { return t >= TypeTrigger && t < maxType }

// Summary reports whether t carries a key list instead of a key/value pair.
func (t Type) Summary() bool { return t == TypeSummaryRefresh || t == TypeSummaryNack }

// Batch reports whether t carries a coalesced-ack list instead of a
// key/value pair.
func (t Type) Batch() bool { return t == TypeAckBatch }

// Decoding and encoding errors.
var (
	ErrShort    = errors.New("wire: message truncated")
	ErrVersion  = errors.New("wire: unsupported version")
	ErrType     = errors.New("wire: unknown message type")
	ErrChecksum = errors.New("wire: checksum mismatch")
	ErrTooLarge = errors.New("wire: key or value exceeds size limit")
	ErrSummary  = errors.New("wire: malformed summary message")
	ErrAckBatch = errors.New("wire: malformed ack batch")
	ErrExt      = errors.New("wire: malformed extension block")
	ErrDigest   = errors.New("wire: malformed digest payload")
)

// AckItem is one coalesced acknowledgement inside a TypeAckBatch message.
type AckItem struct {
	// Kind is the acknowledgement being carried: TypeAck or TypeRemovalAck.
	Kind Type
	// Seq echoes the sequence number being acknowledged.
	Seq uint64
	// Key names the acknowledged state.
	Key string
}

// Message is one signaling datagram.
type Message struct {
	// Type is the message type.
	Type Type
	// Seq orders triggers/removals and matches ACKs to them.
	Seq uint64
	// Key names the piece of signaling state. Empty for summary types.
	Key string
	// Value is the state payload (nil for ACKs, removals, notifies and
	// summary types).
	Value []byte
	// Keys is the key list of a summary message; nil for all other types.
	Keys []string
	// Acks is the item list of an ack batch; nil for all other types.
	Acks []AckItem
	// Trace is the optional causal-tracing context. When Sampled, the
	// message encodes as a VersionExt frame carrying the trace TLV;
	// otherwise the encoding is byte-identical to version 1. Summary and
	// ack-batch messages never carry a context (it is ignored on encode).
	Trace TraceContext
}

const headerLen = 1 + 1 + 8 + 2 // version, type, seq, key length
const trailerLen = 4            // CRC32

// EncodedLen returns the encoded size of m.
func (m *Message) EncodedLen() int {
	if m.Type.Summary() {
		return headerLen + 4 + summaryBlockLen(m.Keys) + trailerLen
	}
	if m.Type.Batch() {
		return headerLen + 4 + ackBlockLen(m.Acks) + trailerLen
	}
	n := headerLen + len(m.Key) + 4 + len(m.Value) + trailerLen
	if m.Trace.Sampled() {
		n += extRegionLen
	}
	return n
}

// summaryBlockLen is the encoded size of a summary key list.
func summaryBlockLen(keys []string) int {
	n := 2
	for _, k := range keys {
		n += 2 + len(k)
	}
	return n
}

// ackBlockLen is the encoded size of an ack-batch item list.
func ackBlockLen(items []AckItem) int {
	n := 2
	for i := range items {
		n += 1 + 8 + 2 + len(items[i].Key)
	}
	return n
}

// SummaryFits reports how many of keys fit one summary datagram: the
// largest prefix within both MaxSummaryKeys and the MaxValueLen byte
// budget. Senders use it to chunk large key sets.
func SummaryFits(keys []string) int {
	n, bytes := 0, 2
	for _, k := range keys {
		if n >= MaxSummaryKeys || bytes+2+len(k) > MaxValueLen {
			break
		}
		bytes += 2 + len(k)
		n++
	}
	return n
}

// AckBatchFits reports how many of items fit one ack-batch datagram: the
// largest prefix within both MaxAckItems and the MaxValueLen byte budget.
// Receivers use it to chunk large coalesced-reply sets.
func AckBatchFits(items []AckItem) int {
	n, bytes := 0, 2
	for i := range items {
		if n >= MaxAckItems || bytes+1+8+2+len(items[i].Key) > MaxValueLen {
			break
		}
		bytes += 1 + 8 + 2 + len(items[i].Key)
		n++
	}
	return n
}

// MarshalBinary encodes m.
func (m *Message) MarshalBinary() ([]byte, error) {
	return m.Append(make([]byte, 0, m.EncodedLen()))
}

// Append encodes m onto dst and returns the extended slice.
func (m *Message) Append(dst []byte) ([]byte, error) {
	if !m.Type.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrType, m.Type)
	}
	if m.Type.Summary() {
		return m.appendSummary(dst)
	}
	if m.Type.Batch() {
		return m.appendAckBatch(dst)
	}
	if len(m.Key) > MaxKeyLen || len(m.Value) > MaxValueLen {
		return nil, fmt.Errorf("%w: key %d bytes, value %d bytes", ErrTooLarge, len(m.Key), len(m.Value))
	}
	start := len(dst)
	version := byte(Version)
	if m.Trace.Sampled() {
		version = VersionExt
	}
	dst = append(dst, version, byte(m.Type))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Key)))
	if version == VersionExt {
		dst = append(dst, extTraceTLV, ExtTrace, extTraceLen)
		dst = binary.BigEndian.AppendUint64(dst, uint64(m.Trace.OriginNs))
		dst = binary.BigEndian.AppendUint64(dst, uint64(m.Trace.HopNs))
		dst = append(dst, m.Trace.Hops)
	}
	dst = append(dst, m.Key...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Value)))
	dst = append(dst, m.Value...)
	sum := crc32.ChecksumIEEE(dst[start:])
	dst = binary.BigEndian.AppendUint32(dst, sum)
	return dst, nil
}

// appendSummary encodes a summary message: zero key length, and the key
// list in the value region.
func (m *Message) appendSummary(dst []byte) ([]byte, error) {
	if m.Key != "" || m.Value != nil || m.Acks != nil {
		return nil, fmt.Errorf("%w: %s carries a key list, not key/value", ErrSummary, m.Type)
	}
	if len(m.Keys) > MaxSummaryKeys {
		return nil, fmt.Errorf("%w: %d keys", ErrTooLarge, len(m.Keys))
	}
	block := summaryBlockLen(m.Keys)
	if block > MaxValueLen {
		return nil, fmt.Errorf("%w: summary block %d bytes", ErrTooLarge, block)
	}
	for _, k := range m.Keys {
		if len(k) > MaxKeyLen {
			return nil, fmt.Errorf("%w: summary key %d bytes", ErrTooLarge, len(k))
		}
	}
	start := len(dst)
	dst = append(dst, Version, byte(m.Type))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint16(dst, 0) // no single key
	dst = binary.BigEndian.AppendUint32(dst, uint32(block))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Keys)))
	for _, k := range m.Keys {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
	}
	sum := crc32.ChecksumIEEE(dst[start:])
	dst = binary.BigEndian.AppendUint32(dst, sum)
	return dst, nil
}

// appendAckBatch encodes an ack batch: zero key length, and the item list
// in the value region.
func (m *Message) appendAckBatch(dst []byte) ([]byte, error) {
	if m.Key != "" || m.Value != nil || m.Keys != nil {
		return nil, fmt.Errorf("%w: %s carries an ack list, not key/value", ErrAckBatch, m.Type)
	}
	if len(m.Acks) > MaxAckItems {
		return nil, fmt.Errorf("%w: %d ack items", ErrTooLarge, len(m.Acks))
	}
	block := ackBlockLen(m.Acks)
	if block > MaxValueLen {
		return nil, fmt.Errorf("%w: ack block %d bytes", ErrTooLarge, block)
	}
	for i := range m.Acks {
		if k := m.Acks[i].Kind; k != TypeAck && k != TypeRemovalAck {
			return nil, fmt.Errorf("%w: item kind %v", ErrAckBatch, k)
		}
		if len(m.Acks[i].Key) > MaxKeyLen {
			return nil, fmt.Errorf("%w: ack key %d bytes", ErrTooLarge, len(m.Acks[i].Key))
		}
	}
	start := len(dst)
	dst = append(dst, Version, byte(m.Type))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint16(dst, 0) // no single key
	dst = binary.BigEndian.AppendUint32(dst, uint32(block))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Acks)))
	for i := range m.Acks {
		dst = append(dst, byte(m.Acks[i].Kind))
		dst = binary.BigEndian.AppendUint64(dst, m.Acks[i].Seq)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Acks[i].Key)))
		dst = append(dst, m.Acks[i].Key...)
	}
	sum := crc32.ChecksumIEEE(dst[start:])
	dst = binary.BigEndian.AppendUint32(dst, sum)
	return dst, nil
}

// PeekType returns the (unvalidated) message type of an encoded datagram,
// so read loops can route hot message kinds to allocation-free decoders
// before paying for a full decode. Callers must still validate the
// datagram with UnmarshalBinary or VisitSummaryKeys before acting on it.
func PeekType(data []byte) Type {
	if len(data) < 2 {
		return 0
	}
	return Type(data[1])
}

// VisitSummaryKeys decodes a summary-refresh datagram in place: it runs
// the full validation of UnmarshalBinary (checksum, version, structure),
// then calls visit once per key with the datagram's sequence number and a
// key slice aliasing data. No per-key strings or key slices are
// allocated, which is what keeps a receiver renewing millions of keys per
// second off the garbage collector. visit is only called if the whole
// datagram validated first, and must not retain the slice past its
// return.
func VisitSummaryKeys(data []byte, visit func(seq uint64, key []byte)) (seq uint64, err error) {
	if len(data) < headerLen+4+trailerLen {
		return 0, ErrShort
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(trailer); got != want {
		return 0, ErrChecksum
	}
	if body[0] != Version {
		return 0, fmt.Errorf("%w: %d", ErrVersion, body[0])
	}
	if Type(body[1]) != TypeSummaryRefresh {
		return 0, fmt.Errorf("%w: %d", ErrType, body[1])
	}
	seq = binary.BigEndian.Uint64(body[2:10])
	if binary.BigEndian.Uint16(body[10:12]) != 0 {
		return 0, fmt.Errorf("%w: nonzero key length", ErrSummary)
	}
	rest := body[12:]
	if len(rest) < 4 {
		return 0, ErrShort
	}
	valLen := int(binary.BigEndian.Uint32(rest[:4]))
	if valLen > MaxValueLen {
		return 0, ErrTooLarge
	}
	block := rest[4:]
	if len(block) != valLen || len(block) < 2 {
		return 0, ErrShort
	}
	n := int(binary.BigEndian.Uint16(block))
	if n > MaxSummaryKeys {
		return 0, fmt.Errorf("%w: %d summary keys", ErrTooLarge, n)
	}
	// Validate the whole key list before visiting any of it, so a
	// datagram truncated mid-list renews nothing (exactly like the
	// copying decoder).
	scan := block[2:]
	for i := 0; i < n; i++ {
		if len(scan) < 2 {
			return 0, ErrShort
		}
		kl := int(binary.BigEndian.Uint16(scan))
		if kl > MaxKeyLen {
			return 0, fmt.Errorf("%w: summary key %d bytes", ErrTooLarge, kl)
		}
		scan = scan[2:]
		if len(scan) < kl {
			return 0, ErrShort
		}
		scan = scan[kl:]
	}
	if len(scan) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrSummary, len(scan))
	}
	block = block[2:]
	for i := 0; i < n; i++ {
		kl := int(binary.BigEndian.Uint16(block))
		visit(seq, block[2:2+kl])
		block = block[2+kl:]
	}
	return seq, nil
}

// UnmarshalBinary decodes data into m. The key and value are copied, so m
// does not alias data after return.
func (m *Message) UnmarshalBinary(data []byte) error {
	if len(data) < headerLen+4+trailerLen {
		return ErrShort
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(trailer); got != want {
		return ErrChecksum
	}
	if body[0] != Version && body[0] != VersionExt {
		return fmt.Errorf("%w: %d", ErrVersion, body[0])
	}
	typ := Type(body[1])
	if !typ.Valid() {
		return fmt.Errorf("%w: %d", ErrType, body[1])
	}
	seq := binary.BigEndian.Uint64(body[2:10])
	keyLen := int(binary.BigEndian.Uint16(body[10:12]))
	if keyLen > MaxKeyLen {
		return ErrTooLarge
	}
	if typ.Summary() && keyLen != 0 {
		return fmt.Errorf("%w: nonzero key length", ErrSummary)
	}
	if typ.Batch() && keyLen != 0 {
		return fmt.Errorf("%w: nonzero key length", ErrAckBatch)
	}
	rest := body[12:]
	var trace TraceContext
	if body[0] == VersionExt {
		// Extensions ride point-to-point state messages only; the list
		// types never carry them.
		if typ.Summary() || typ.Batch() {
			return fmt.Errorf("%w: extension on %s frame", ErrExt, typ)
		}
		// Strict canonical form: exactly the one known TLV, so every
		// accepted frame re-encodes to the identical bytes.
		if len(rest) < extRegionLen {
			return ErrShort
		}
		if rest[0] != extTraceTLV {
			return fmt.Errorf("%w: block length %d", ErrExt, rest[0])
		}
		if rest[1] != ExtTrace || rest[2] != extTraceLen {
			return fmt.Errorf("%w: TLV %d/%d", ErrExt, rest[1], rest[2])
		}
		trace.OriginNs = int64(binary.BigEndian.Uint64(rest[3:11]))
		trace.HopNs = int64(binary.BigEndian.Uint64(rest[11:19]))
		trace.Hops = rest[19]
		if !trace.Sampled() {
			return fmt.Errorf("%w: zero origin stamp", ErrExt)
		}
		rest = rest[extRegionLen:]
	}
	if len(rest) < keyLen+4 {
		return ErrShort
	}
	key := string(rest[:keyLen])
	rest = rest[keyLen:]
	valLen := int(binary.BigEndian.Uint32(rest[:4]))
	if valLen > MaxValueLen {
		return ErrTooLarge
	}
	rest = rest[4:]
	if len(rest) != valLen {
		return ErrShort
	}
	if typ.Summary() {
		keys, err := decodeSummaryBlock(rest)
		if err != nil {
			return err
		}
		m.Type = typ
		m.Seq = seq
		m.Key = ""
		m.Value = nil
		m.Keys = keys
		m.Acks = nil
		m.Trace = TraceContext{}
		return nil
	}
	if typ.Batch() {
		acks, err := decodeAckBlock(rest)
		if err != nil {
			return err
		}
		m.Type = typ
		m.Seq = seq
		m.Key = ""
		m.Value = nil
		m.Keys = nil
		m.Acks = acks
		m.Trace = TraceContext{}
		return nil
	}
	var value []byte
	if valLen > 0 {
		value = make([]byte, valLen)
		copy(value, rest)
	}
	m.Type = typ
	m.Seq = seq
	m.Key = key
	m.Value = value
	m.Keys = nil
	m.Acks = nil
	m.Trace = trace
	return nil
}

// decodeSummaryBlock parses the key list of a summary message. Keys are
// copied, so the result does not alias block.
func decodeSummaryBlock(block []byte) ([]string, error) {
	if len(block) < 2 {
		return nil, ErrShort
	}
	n := int(binary.BigEndian.Uint16(block))
	if n > MaxSummaryKeys {
		return nil, fmt.Errorf("%w: %d summary keys", ErrTooLarge, n)
	}
	block = block[2:]
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(block) < 2 {
			return nil, ErrShort
		}
		kl := int(binary.BigEndian.Uint16(block))
		if kl > MaxKeyLen {
			return nil, fmt.Errorf("%w: summary key %d bytes", ErrTooLarge, kl)
		}
		block = block[2:]
		if len(block) < kl {
			return nil, ErrShort
		}
		keys = append(keys, string(block[:kl]))
		block = block[kl:]
	}
	if len(block) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSummary, len(block))
	}
	return keys, nil
}

// decodeAckBlock parses the item list of an ack batch. Keys are copied, so
// the result does not alias block.
func decodeAckBlock(block []byte) ([]AckItem, error) {
	if len(block) < 2 {
		return nil, ErrShort
	}
	n := int(binary.BigEndian.Uint16(block))
	if n > MaxAckItems {
		return nil, fmt.Errorf("%w: %d ack items", ErrTooLarge, n)
	}
	block = block[2:]
	items := make([]AckItem, 0, n)
	for i := 0; i < n; i++ {
		if len(block) < 1+8+2 {
			return nil, ErrShort
		}
		kind := Type(block[0])
		if kind != TypeAck && kind != TypeRemovalAck {
			return nil, fmt.Errorf("%w: item kind %d", ErrAckBatch, block[0])
		}
		seq := binary.BigEndian.Uint64(block[1:9])
		kl := int(binary.BigEndian.Uint16(block[9:11]))
		if kl > MaxKeyLen {
			return nil, fmt.Errorf("%w: ack key %d bytes", ErrTooLarge, kl)
		}
		block = block[11:]
		if len(block) < kl {
			return nil, ErrShort
		}
		items = append(items, AckItem{Kind: kind, Seq: seq, Key: string(block[:kl])})
		block = block[kl:]
	}
	if len(block) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrAckBatch, len(block))
	}
	return items, nil
}

// String renders the message for logging.
func (m *Message) String() string {
	if m.Type.Summary() {
		return fmt.Sprintf("%s seq=%d keys=%d", m.Type, m.Seq, len(m.Keys))
	}
	if m.Type.Batch() {
		return fmt.Sprintf("%s seq=%d acks=%d", m.Type, m.Seq, len(m.Acks))
	}
	return fmt.Sprintf("%s seq=%d key=%q (%d bytes)", m.Type, m.Seq, m.Key, len(m.Value))
}
