// Package wire defines the on-the-wire encoding for the signaling runtime
// (internal/signal): a compact, versioned, checksummed binary format for
// the six message types the generic protocols exchange. The format is
// deliberately simple — fixed header, length-prefixed key and value, CRC32
// trailer — so a datagram is self-contained and corruption is detected
// before it can touch protocol state.
//
// Layout (big endian):
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     type
//	2       8     sequence number
//	10      2     key length K (≤ MaxKeyLen)
//	12      K     key bytes
//	12+K    4     value length V (≤ MaxValueLen)
//	16+K    V     value bytes
//	16+K+V  4     CRC32 (IEEE) of bytes [0, 16+K+V)
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Version is the current wire format version.
const Version = 1

// Size limits keep a message inside a single conventional UDP datagram.
const (
	// MaxKeyLen bounds the state key.
	MaxKeyLen = 512
	// MaxValueLen bounds the state value payload.
	MaxValueLen = 8192
)

// Type enumerates signaling message types.
type Type uint8

// Message types of the generic protocols (paper Figure 1).
const (
	// TypeTrigger installs or updates state (best-effort or reliable).
	TypeTrigger Type = iota + 1
	// TypeRefresh is a periodic soft-state refresh.
	TypeRefresh
	// TypeAck acknowledges a trigger (reliable-trigger protocols).
	TypeAck
	// TypeRemoval explicitly removes state.
	TypeRemoval
	// TypeRemovalAck acknowledges a removal (reliable-removal protocols).
	TypeRemovalAck
	// TypeNotify informs the sender that its state was removed at the
	// receiver (timeout or external signal).
	TypeNotify
	maxType
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeTrigger:
		return "trigger"
	case TypeRefresh:
		return "refresh"
	case TypeAck:
		return "ack"
	case TypeRemoval:
		return "removal"
	case TypeRemovalAck:
		return "removal-ack"
	case TypeNotify:
		return "notify"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Valid reports whether t is a known message type.
func (t Type) Valid() bool { return t >= TypeTrigger && t < maxType }

// Decoding and encoding errors.
var (
	ErrShort    = errors.New("wire: message truncated")
	ErrVersion  = errors.New("wire: unsupported version")
	ErrType     = errors.New("wire: unknown message type")
	ErrChecksum = errors.New("wire: checksum mismatch")
	ErrTooLarge = errors.New("wire: key or value exceeds size limit")
)

// Message is one signaling datagram.
type Message struct {
	// Type is the message type.
	Type Type
	// Seq orders triggers/removals and matches ACKs to them.
	Seq uint64
	// Key names the piece of signaling state.
	Key string
	// Value is the state payload (nil for ACKs, removals, notifies).
	Value []byte
}

const headerLen = 1 + 1 + 8 + 2 // version, type, seq, key length
const trailerLen = 4            // CRC32

// EncodedLen returns the encoded size of m.
func (m *Message) EncodedLen() int {
	return headerLen + len(m.Key) + 4 + len(m.Value) + trailerLen
}

// MarshalBinary encodes m.
func (m *Message) MarshalBinary() ([]byte, error) {
	return m.Append(make([]byte, 0, m.EncodedLen()))
}

// Append encodes m onto dst and returns the extended slice.
func (m *Message) Append(dst []byte) ([]byte, error) {
	if !m.Type.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrType, m.Type)
	}
	if len(m.Key) > MaxKeyLen || len(m.Value) > MaxValueLen {
		return nil, fmt.Errorf("%w: key %d bytes, value %d bytes", ErrTooLarge, len(m.Key), len(m.Value))
	}
	start := len(dst)
	dst = append(dst, Version, byte(m.Type))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Key)))
	dst = append(dst, m.Key...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Value)))
	dst = append(dst, m.Value...)
	sum := crc32.ChecksumIEEE(dst[start:])
	dst = binary.BigEndian.AppendUint32(dst, sum)
	return dst, nil
}

// UnmarshalBinary decodes data into m. The key and value are copied, so m
// does not alias data after return.
func (m *Message) UnmarshalBinary(data []byte) error {
	if len(data) < headerLen+4+trailerLen {
		return ErrShort
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(trailer); got != want {
		return ErrChecksum
	}
	if body[0] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, body[0])
	}
	typ := Type(body[1])
	if !typ.Valid() {
		return fmt.Errorf("%w: %d", ErrType, body[1])
	}
	seq := binary.BigEndian.Uint64(body[2:10])
	keyLen := int(binary.BigEndian.Uint16(body[10:12]))
	if keyLen > MaxKeyLen {
		return ErrTooLarge
	}
	rest := body[12:]
	if len(rest) < keyLen+4 {
		return ErrShort
	}
	key := string(rest[:keyLen])
	rest = rest[keyLen:]
	valLen := int(binary.BigEndian.Uint32(rest[:4]))
	if valLen > MaxValueLen {
		return ErrTooLarge
	}
	rest = rest[4:]
	if len(rest) != valLen {
		return ErrShort
	}
	var value []byte
	if valLen > 0 {
		value = make([]byte, valLen)
		copy(value, rest)
	}
	m.Type = typ
	m.Seq = seq
	m.Key = key
	m.Value = value
	return nil
}

// String renders the message for logging.
func (m *Message) String() string {
	return fmt.Sprintf("%s seq=%d key=%q (%d bytes)", m.Type, m.Seq, m.Key, len(m.Value))
}
