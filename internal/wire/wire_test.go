package wire

import (
	"bytes"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	in := Message{Type: TypeTrigger, Seq: 42, Key: "flow/7", Value: []byte("bandwidth=10Mbps")}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != in.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(data), in.EncodedLen())
	}
	var out Message
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Seq != in.Seq || out.Key != in.Key || !bytes.Equal(out.Value, in.Value) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", out, in)
	}
}

func TestRoundTripEmptyValue(t *testing.T) {
	in := Message{Type: TypeAck, Seq: 1, Key: "k"}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if out.Value != nil {
		t.Fatalf("empty value decoded as %v", out.Value)
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(typRaw uint8, seq uint64, key string, value []byte) bool {
		typ := Type(typRaw%uint8(maxType-1)) + TypeTrigger
		if typ.Summary() || typ.Batch() {
			// Summary and batch types carry lists; covered by their own tests.
			typ = TypeTrigger
		}
		if len(key) > MaxKeyLen {
			key = key[:MaxKeyLen]
		}
		if len(value) > MaxValueLen {
			value = value[:MaxValueLen]
		}
		in := Message{Type: typ, Seq: seq, Key: key, Value: value}
		data, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out Message
		if err := out.UnmarshalBinary(data); err != nil {
			return false
		}
		return out.Type == in.Type && out.Seq == in.Seq && out.Key == in.Key &&
			bytes.Equal(out.Value, in.Value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionDetectedProperty(t *testing.T) {
	base := Message{Type: TypeRefresh, Seq: 7, Key: "session", Value: []byte("v1")}
	data, err := base.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(pos int, flip uint8) bool {
		if flip == 0 {
			return true // no-op flip
		}
		corrupted := make([]byte, len(data))
		copy(corrupted, data)
		corrupted[((pos%len(data))+len(data))%len(data)] ^= flip
		var out Message
		return out.UnmarshalBinary(corrupted) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationDetected(t *testing.T) {
	m := Message{Type: TypeTrigger, Seq: 9, Key: "key", Value: []byte("value")}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		var out Message
		if err := out.UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestVersionRejected(t *testing.T) {
	m := Message{Type: TypeTrigger, Seq: 1, Key: "k"}
	data, _ := m.MarshalBinary()
	data[0] = 99
	// Fix the checksum so the version check is what trips.
	fixed, _ := (&Message{Type: TypeTrigger, Seq: 1, Key: "k"}).MarshalBinary()
	_ = fixed
	var out Message
	err := out.UnmarshalBinary(data)
	if err == nil {
		t.Fatal("bad version accepted")
	}
	// With a corrupted version byte the checksum fails first; re-encode
	// with a valid trailer to exercise the version path directly.
	raw := append([]byte{}, data[:len(data)-4]...)
	sum := checksumOf(raw)
	raw = append(raw, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	err = out.UnmarshalBinary(raw)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	m := Message{Type: TypeTrigger, Seq: 1, Key: "k"}
	data, _ := m.MarshalBinary()
	data[1] = byte(maxType) + 5
	raw := append([]byte{}, data[:len(data)-4]...)
	sum := checksumOf(raw)
	raw = append(raw, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	var out Message
	if err := out.UnmarshalBinary(raw); !errors.Is(err, ErrType) {
		t.Fatalf("err = %v, want ErrType", err)
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	m := Message{Type: TypeTrigger, Key: strings.Repeat("k", MaxKeyLen+1)}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize key err = %v", err)
	}
	m = Message{Type: TypeTrigger, Key: "k", Value: make([]byte, MaxValueLen+1)}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize value err = %v", err)
	}
	m = Message{Type: 0, Key: "k"}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrType) {
		t.Fatalf("invalid type err = %v", err)
	}
}

func TestDecodeDoesNotAliasInput(t *testing.T) {
	m := Message{Type: TypeTrigger, Seq: 3, Key: "k", Value: []byte("abc")}
	data, _ := m.MarshalBinary()
	var out Message
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0
	}
	if string(out.Value) != "abc" || out.Key != "k" {
		t.Fatal("decoded message aliases input buffer")
	}
}

func TestTypeStrings(t *testing.T) {
	for typ := TypeTrigger; typ < maxType; typ++ {
		if s := typ.String(); s == "" || strings.HasPrefix(s, "Type(") {
			t.Fatalf("missing name for type %d", typ)
		}
	}
	if !strings.HasPrefix(Type(200).String(), "Type(") {
		t.Fatal("unknown type should render numerically")
	}
	if (Type(0)).Valid() || Type(maxType).Valid() {
		t.Fatal("Valid accepts out-of-range types")
	}
}

func TestMessageString(t *testing.T) {
	m := Message{Type: TypeNotify, Seq: 5, Key: "x"}
	if !strings.Contains(m.String(), "notify") {
		t.Fatalf("String = %q", m.String())
	}
}

// checksumOf recomputes the trailer checksum for hand-built frames.
func checksumOf(body []byte) uint32 {
	return crc32.ChecksumIEEE(body)
}

// reseal replaces the trailer of a hand-edited frame with a valid CRC so
// the targeted validation path, not the checksum, is what trips.
func reseal(data []byte) []byte {
	body := append([]byte{}, data[:len(data)-4]...)
	sum := checksumOf(body)
	return append(body, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
}

func TestSummaryRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeSummaryRefresh, TypeSummaryNack} {
		in := Message{Type: typ, Seq: 77, Keys: []string{"flow/1", "", "flow/2", "a/very/long/key"}}
		data, err := in.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != in.EncodedLen() {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", len(data), in.EncodedLen())
		}
		var out Message
		if err := out.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if out.Type != typ || out.Seq != 77 || out.Key != "" || out.Value != nil {
			t.Fatalf("roundtrip header mismatch: %+v", out)
		}
		if len(out.Keys) != len(in.Keys) {
			t.Fatalf("keys = %v, want %v", out.Keys, in.Keys)
		}
		for i := range in.Keys {
			if out.Keys[i] != in.Keys[i] {
				t.Fatalf("keys = %v, want %v", out.Keys, in.Keys)
			}
		}
	}
}

func TestSummaryEmptyList(t *testing.T) {
	in := Message{Type: TypeSummaryRefresh, Seq: 1}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(out.Keys) != 0 {
		t.Fatalf("keys = %v, want none", out.Keys)
	}
}

func TestSummaryRejectsKeyValue(t *testing.T) {
	m := Message{Type: TypeSummaryRefresh, Key: "k"}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrSummary) {
		t.Fatalf("summary with key err = %v", err)
	}
	m = Message{Type: TypeSummaryNack, Value: []byte("v")}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrSummary) {
		t.Fatalf("summary with value err = %v", err)
	}
}

func TestSummaryRejectsOversize(t *testing.T) {
	m := Message{Type: TypeSummaryRefresh, Keys: make([]string, MaxSummaryKeys+1)}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too many keys err = %v", err)
	}
	m = Message{Type: TypeSummaryRefresh, Keys: []string{strings.Repeat("k", MaxKeyLen+1)}}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize summary key err = %v", err)
	}
	// 40 keys of 400 bytes each exceed the MaxValueLen byte budget even
	// though each key and the count are individually legal.
	big := make([]string, 40)
	for i := range big {
		big[i] = strings.Repeat("x", 400)
	}
	m = Message{Type: TypeSummaryRefresh, Keys: big}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize summary block err = %v", err)
	}
}

func TestSummaryRejectsMalformedBlocks(t *testing.T) {
	good, err := (&Message{Type: TypeSummaryRefresh, Seq: 1, Keys: []string{"aa", "bb"}}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Nonzero single-key length on a summary type.
	bad := append([]byte{}, good...)
	bad[10], bad[11] = 0, 1
	if err := new(Message).UnmarshalBinary(reseal(bad)); !errors.Is(err, ErrSummary) {
		t.Fatalf("nonzero key length err = %v", err)
	}
	// Count claims more keys than the block holds.
	bad = append([]byte{}, good...)
	bad[16], bad[17] = 0, 9
	if err := new(Message).UnmarshalBinary(reseal(bad)); !errors.Is(err, ErrShort) {
		t.Fatalf("short key list err = %v", err)
	}
	// Count claims fewer keys, leaving trailing bytes.
	bad = append([]byte{}, good...)
	bad[16], bad[17] = 0, 1
	if err := new(Message).UnmarshalBinary(reseal(bad)); !errors.Is(err, ErrSummary) {
		t.Fatalf("trailing bytes err = %v", err)
	}
}

func TestSummaryDecodeDoesNotAliasInput(t *testing.T) {
	m := Message{Type: TypeSummaryNack, Keys: []string{"abc"}}
	data, _ := m.MarshalBinary()
	var out Message
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0
	}
	if out.Keys[0] != "abc" {
		t.Fatal("decoded summary aliases input buffer")
	}
}

func TestAckBatchRoundTrip(t *testing.T) {
	in := Message{Type: TypeAckBatch, Seq: 12, Acks: []AckItem{
		{Kind: TypeAck, Seq: 3, Key: "flow/1"},
		{Kind: TypeRemovalAck, Seq: 9, Key: ""},
		{Kind: TypeAck, Seq: 1 << 40, Key: "a/very/long/key"},
	}}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != in.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(data), in.EncodedLen())
	}
	var out Message
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if out.Type != TypeAckBatch || out.Seq != 12 || out.Key != "" || out.Value != nil || out.Keys != nil {
		t.Fatalf("roundtrip header mismatch: %+v", out)
	}
	if len(out.Acks) != len(in.Acks) {
		t.Fatalf("acks = %v, want %v", out.Acks, in.Acks)
	}
	for i := range in.Acks {
		if out.Acks[i] != in.Acks[i] {
			t.Fatalf("item %d = %+v, want %+v", i, out.Acks[i], in.Acks[i])
		}
	}
}

func TestAckBatchEmptyList(t *testing.T) {
	in := Message{Type: TypeAckBatch, Seq: 1}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(out.Acks) != 0 {
		t.Fatalf("acks = %v, want none", out.Acks)
	}
}

func TestAckBatchRejectsMalformed(t *testing.T) {
	m := Message{Type: TypeAckBatch, Key: "k"}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrAckBatch) {
		t.Fatalf("batch with key err = %v", err)
	}
	m = Message{Type: TypeAckBatch, Acks: []AckItem{{Kind: TypeTrigger, Key: "k"}}}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrAckBatch) {
		t.Fatalf("bad item kind err = %v", err)
	}
	m = Message{Type: TypeAckBatch, Acks: make([]AckItem, MaxAckItems+1)}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too many items err = %v", err)
	}
	m = Message{Type: TypeAckBatch, Acks: []AckItem{{Kind: TypeAck, Key: strings.Repeat("k", MaxKeyLen+1)}}}
	if _, err := m.MarshalBinary(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize item key err = %v", err)
	}

	good, err := (&Message{Type: TypeAckBatch, Seq: 1, Acks: []AckItem{
		{Kind: TypeAck, Seq: 2, Key: "aa"}, {Kind: TypeRemovalAck, Seq: 3, Key: "bb"},
	}}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Nonzero single-key length on a batch type.
	bad := append([]byte{}, good...)
	bad[10], bad[11] = 0, 1
	if err := new(Message).UnmarshalBinary(reseal(bad)); !errors.Is(err, ErrAckBatch) {
		t.Fatalf("nonzero key length err = %v", err)
	}
	// Count claims more items than the block holds.
	bad = append([]byte{}, good...)
	bad[16], bad[17] = 0, 9
	if err := new(Message).UnmarshalBinary(reseal(bad)); !errors.Is(err, ErrShort) {
		t.Fatalf("short item list err = %v", err)
	}
	// Count claims fewer items, leaving trailing bytes.
	bad = append([]byte{}, good...)
	bad[16], bad[17] = 0, 1
	if err := new(Message).UnmarshalBinary(reseal(bad)); !errors.Is(err, ErrAckBatch) {
		t.Fatalf("trailing bytes err = %v", err)
	}
	// Corrupt an item kind inside the block.
	bad = append([]byte{}, good...)
	bad[18] = byte(TypeNotify)
	if err := new(Message).UnmarshalBinary(reseal(bad)); !errors.Is(err, ErrAckBatch) {
		t.Fatalf("bad decoded kind err = %v", err)
	}
}

func TestAckBatchFits(t *testing.T) {
	if n := AckBatchFits(nil); n != 0 {
		t.Fatalf("AckBatchFits(nil) = %d", n)
	}
	small := make([]AckItem, 100)
	for i := range small {
		small[i] = AckItem{Kind: TypeAck, Seq: uint64(i), Key: "k/123"}
	}
	if n := AckBatchFits(small); n != 100 {
		t.Fatalf("AckBatchFits(small) = %d, want 100", n)
	}
	many := make([]AckItem, MaxAckItems+50)
	for i := range many {
		many[i] = AckItem{Kind: TypeAck}
	}
	if n := AckBatchFits(many); n != MaxAckItems {
		t.Fatalf("AckBatchFits(many) = %d, want %d", n, MaxAckItems)
	}
	// The byte budget caps before the count does for long keys.
	long := make([]AckItem, 100)
	for i := range long {
		long[i] = AckItem{Kind: TypeRemovalAck, Key: strings.Repeat("x", 400)}
	}
	n := AckBatchFits(long)
	if n >= 100 || n == 0 {
		t.Fatalf("AckBatchFits(long) = %d, want a partial prefix", n)
	}
	m := Message{Type: TypeAckBatch, Acks: long[:n]}
	if _, err := m.MarshalBinary(); err != nil {
		t.Fatalf("AckBatchFits prefix does not encode: %v", err)
	}
	m = Message{Type: TypeAckBatch, Acks: long[:n+1]}
	if _, err := m.MarshalBinary(); err == nil {
		t.Fatal("AckBatchFits prefix is not maximal")
	}
}

func TestSummaryFits(t *testing.T) {
	if n := SummaryFits(nil); n != 0 {
		t.Fatalf("SummaryFits(nil) = %d", n)
	}
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = strings.Repeat("k", 8)
	}
	if n := SummaryFits(keys); n != 100 {
		t.Fatalf("SummaryFits(small) = %d, want 100", n)
	}
	// MaxSummaryKeys caps the count.
	many := make([]string, MaxSummaryKeys+50)
	for i := range many {
		many[i] = "k"
	}
	if n := SummaryFits(many); n != MaxSummaryKeys {
		t.Fatalf("SummaryFits(many) = %d, want %d", n, MaxSummaryKeys)
	}
	// The byte budget caps before the count does for long keys.
	long := make([]string, 100)
	for i := range long {
		long[i] = strings.Repeat("x", 400)
	}
	n := SummaryFits(long)
	if n >= 100 || n == 0 {
		t.Fatalf("SummaryFits(long) = %d, want a partial prefix", n)
	}
	m := Message{Type: TypeSummaryRefresh, Keys: long[:n]}
	if _, err := m.MarshalBinary(); err != nil {
		t.Fatalf("SummaryFits prefix does not encode: %v", err)
	}
	m = Message{Type: TypeSummaryRefresh, Keys: long[:n+1]}
	if _, err := m.MarshalBinary(); err == nil {
		t.Fatal("SummaryFits prefix is not maximal")
	}
}
