package wire

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	in := Message{
		Type: TypeTrigger, Seq: 42, Key: "flow/1", Value: []byte("10Mbps"),
		Trace: TraceContext{OriginNs: 123456789, HopNs: 123456999, Hops: 3},
	}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != in.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(data), in.EncodedLen())
	}
	if data[0] != VersionExt {
		t.Fatalf("traced frame version = %d, want %d", data[0], VersionExt)
	}
	var out Message
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in  %+v\n out %+v", in, out)
	}
	// Re-encoding the decoded message must reproduce the bytes.
	again, err := out.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, again)
	}
}

func TestUntracedFramesStayVersion1(t *testing.T) {
	m := Message{Type: TypeRefresh, Seq: 7, Key: "k", Value: []byte("v")}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != Version {
		t.Fatalf("untraced frame version = %d, want %d", data[0], Version)
	}
	// A trace context on a summary or batch message is ignored: the list
	// types never carry extensions.
	s := Message{Type: TypeSummaryRefresh, Seq: 8, Keys: []string{"a", "b"},
		Trace: TraceContext{OriginNs: 1, HopNs: 1}}
	sdata, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if sdata[0] != Version {
		t.Fatalf("summary frame version = %d, want %d", sdata[0], Version)
	}
}

func TestTraceDecodeStrict(t *testing.T) {
	traced := Message{
		Type: TypeTrigger, Seq: 1, Key: "k", Value: []byte("v"),
		Trace: TraceContext{OriginNs: 1000, HopNs: 2000, Hops: 1},
	}
	valid, err := traced.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func(b []byte), wantErr error) {
		t.Run(name, func(t *testing.T) {
			b := append([]byte{}, valid...)
			f(b)
			b = reseal(b)
			var m Message
			err := m.UnmarshalBinary(b)
			if err == nil {
				t.Fatalf("decoded corrupted frame: %+v", m)
			}
			if wantErr != nil && !errors.Is(err, wantErr) {
				t.Fatalf("err = %v, want %v", err, wantErr)
			}
		})
	}
	// Zero origin stamp: the sampled predicate would be false, so the
	// frame could not re-encode as v2.
	mutate("zero-origin", func(b []byte) {
		for i := 15; i < 23; i++ {
			b[i] = 0
		}
	}, ErrExt)
	mutate("unknown-tlv-type", func(b []byte) { b[13] = 99 }, ErrExt)
	mutate("bad-tlv-len", func(b []byte) { b[14] = 5 }, ErrExt)
	mutate("bad-block-len", func(b []byte) { b[12] = 7 }, ErrExt)
	// A v2 summary frame is rejected outright.
	sum, _ := (&Message{Type: TypeSummaryRefresh, Seq: 2, Keys: []string{"a"}}).MarshalBinary()
	v2sum := append([]byte{}, sum...)
	v2sum[0] = VersionExt
	var m Message
	if err := m.UnmarshalBinary(reseal(v2sum)); !errors.Is(err, ErrExt) {
		t.Fatalf("v2 summary: err = %v, want %v", err, ErrExt)
	}
	// A v2 frame truncated inside the extension block is short, not panic.
	short := append([]byte{}, valid[:16]...)
	if err := m.UnmarshalBinary(reseal(append(short, 0, 0, 0, 0))); err == nil {
		t.Fatal("decoded truncated v2 frame")
	}
}

func TestDigestRequestRoundTrip(t *testing.T) {
	for _, req := range []DigestRequest{
		{Kind: DigestSummary},
		{Kind: DigestDetail, Bucket: 0},
		{Kind: DigestDetail, Bucket: 511},
	} {
		got, err := ParseDigestRequest(req.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if got != req {
			t.Fatalf("round trip: got %+v, want %+v", got, req)
		}
	}
	for _, bad := range [][]byte{
		nil,
		{9},
		{byte(DigestSummary), 0xFF},
		{byte(DigestDetail)},
		{byte(DigestDetail), 0, 1, 2},
	} {
		if _, err := ParseDigestRequest(bad); err == nil {
			t.Fatalf("parsed malformed request % x", bad)
		}
	}
}

func TestDigestReplyRoundTrip(t *testing.T) {
	sums := &DigestReply{Kind: DigestSummary, Sums: []uint64{0, 1, ^uint64(0), 0xdeadbeef}}
	detail := &DigestReply{
		Kind: DigestDetail, Bucket: 3, Part: 1, Parts: 2,
		Keys: []DigestKeySum{{Key: "flow/1", Sum: 17}, {Key: "", Sum: 0}},
	}
	for _, in := range []*DigestReply{sums, detail, {Kind: DigestSummary}, {Kind: DigestDetail, Parts: 1}} {
		val, err := in.Encode()
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		// The payload must survive a full frame round trip too.
		m := Message{Type: TypeDigestReply, Seq: 9, Value: val}
		frame, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var dm Message
		if err := dm.UnmarshalBinary(frame); err != nil {
			t.Fatal(err)
		}
		out, err := ParseDigestReply(dm.Value)
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out.Kind != in.Kind || out.Bucket != in.Bucket || out.Part != in.Part || out.Parts != in.Parts {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
		if len(out.Sums) != len(in.Sums) || len(out.Keys) != len(in.Keys) {
			t.Fatalf("round trip lengths: got %+v, want %+v", out, in)
		}
		for i := range in.Sums {
			if out.Sums[i] != in.Sums[i] {
				t.Fatalf("sum %d: got %d, want %d", i, out.Sums[i], in.Sums[i])
			}
		}
		for i := range in.Keys {
			if out.Keys[i] != in.Keys[i] {
				t.Fatalf("key %d: got %+v, want %+v", i, out.Keys[i], in.Keys[i])
			}
		}
	}
	// Oversize and malformed payloads are rejected.
	if _, err := (&DigestReply{Kind: DigestSummary, Sums: make([]uint64, MaxDigestBuckets+1)}).Encode(); err == nil {
		t.Fatal("encoded oversize sums block")
	}
	if _, err := (&DigestReply{Kind: DigestDetail}).Encode(); err == nil {
		t.Fatal("encoded detail reply with zero parts")
	}
	if _, err := (&DigestReply{Kind: DigestDetail, Parts: 1,
		Keys: []DigestKeySum{{Key: strings.Repeat("k", MaxKeyLen+1)}}}).Encode(); err == nil {
		t.Fatal("encoded oversize digest key")
	}
	if _, err := ParseDigestReply([]byte{byte(DigestSummary), 0, 2, 1}); err == nil {
		t.Fatal("parsed truncated sums block")
	}
	if _, err := ParseDigestReply([]byte{byte(DigestDetail), 0, 0, 0, 0, 0, 0, 0, 1, 9}); err == nil {
		t.Fatal("parsed truncated detail block")
	}
}

func TestDigestDetailFits(t *testing.T) {
	big := make([]DigestKeySum, 2000)
	for i := range big {
		big[i] = DigestKeySum{Key: strings.Repeat("x", 50), Sum: uint64(i)}
	}
	n := DigestDetailFits(big)
	if n <= 0 || n >= len(big) {
		t.Fatalf("fits = %d of %d", n, len(big))
	}
	chunk := &DigestReply{Kind: DigestDetail, Parts: 1, Keys: big[:n]}
	if _, err := chunk.Encode(); err != nil {
		t.Fatalf("DigestDetailFits-bounded chunk does not encode: %v", err)
	}
	over := &DigestReply{Kind: DigestDetail, Parts: 1, Keys: big[:n+1]}
	if _, err := over.Encode(); err == nil {
		t.Fatal("chunk one past the fit bound encoded")
	}
}
