package wire

import (
	"errors"
	"testing"
)

// TestVisitSummaryKeysMatchesDecoder proves the in-place summary walker
// sees exactly what the copying decoder sees.
func TestVisitSummaryKeysMatchesDecoder(t *testing.T) {
	m := Message{Type: TypeSummaryRefresh, Seq: 42, Keys: []string{"a", "flow/0001", "", "zz"}}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	seq, err := VisitSummaryKeys(data, func(seq uint64, key []byte) {
		if seq != 42 {
			t.Fatalf("visit seq = %d, want 42", seq)
		}
		got = append(got, string(key))
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq = %d, want 42", seq)
	}
	var dec Message
	if err := dec.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(dec.Keys) {
		t.Fatalf("visited %d keys, decoder saw %d", len(got), len(dec.Keys))
	}
	for i := range got {
		if got[i] != dec.Keys[i] {
			t.Fatalf("key %d: visited %q, decoded %q", i, got[i], dec.Keys[i])
		}
	}
}

// TestVisitSummaryKeysRejectsBeforeVisiting proves a malformed datagram
// renews nothing: validation is all-or-nothing, like the copying decoder.
func TestVisitSummaryKeysRejectsBeforeVisiting(t *testing.T) {
	m := Message{Type: TypeSummaryRefresh, Seq: 7, Keys: []string{"aaa", "bbb", "ccc"}}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":    data[:len(data)-6],
		"corrupt-body": flip(data, 20),
		"short":        {1, byte(TypeSummaryRefresh)},
	}
	for name, bad := range cases {
		visited := 0
		if _, err := VisitSummaryKeys(bad, func(uint64, []byte) { visited++ }); err == nil {
			t.Fatalf("%s: no error", name)
		}
		if visited != 0 {
			t.Fatalf("%s: visited %d keys of an invalid datagram", name, visited)
		}
	}
	// Non-summary types are rejected even when otherwise valid.
	tr := Message{Type: TypeTrigger, Seq: 1, Key: "k"}
	tdata, _ := tr.MarshalBinary()
	if _, err := VisitSummaryKeys(tdata, func(uint64, []byte) {}); !errors.Is(err, ErrType) {
		t.Fatalf("trigger datagram: err = %v, want ErrType", err)
	}
}

func flip(data []byte, i int) []byte {
	out := append([]byte{}, data...)
	out[i] ^= 0xff
	return out
}

func TestPeekType(t *testing.T) {
	m := Message{Type: TypeSummaryRefresh, Keys: []string{"k"}}
	data, _ := m.MarshalBinary()
	if got := PeekType(data); got != TypeSummaryRefresh {
		t.Fatalf("PeekType = %v", got)
	}
	if got := PeekType([]byte{1}); got != 0 {
		t.Fatalf("PeekType(short) = %v, want 0", got)
	}
}
