package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzDecode hardens the codec against hostile datagrams (ProFuzzBench-style
// stateful-protocol input fuzzing): any byte string must either decode into
// a message that re-encodes to the identical bytes, or be rejected with an
// error — never panic, never over-allocate from attacker-controlled length
// fields.
func FuzzDecode(f *testing.F) {
	// Valid frames of every type, including the summary encoding.
	seed := []Message{
		{Type: TypeTrigger, Seq: 1, Key: "flow/1", Value: []byte("10Mbps")},
		{Type: TypeRefresh, Seq: 2, Key: "k"},
		{Type: TypeAck, Seq: 3, Key: "k"},
		{Type: TypeRemoval, Seq: 4, Key: "k"},
		{Type: TypeRemovalAck, Seq: 5, Key: "k"},
		{Type: TypeNotify, Seq: 6, Key: "k"},
		{Type: TypeSummaryRefresh, Seq: 7, Keys: []string{"a", "bb", "ccc"}},
		{Type: TypeSummaryNack, Seq: 8, Keys: []string{"missing/1"}},
		{Type: TypeAckBatch, Seq: 9, Acks: []AckItem{
			{Kind: TypeAck, Seq: 1, Key: "flow/1"},
			{Kind: TypeRemovalAck, Seq: 2, Key: "flow/2"},
		}},
		{Type: TypeAckBatch, Seq: 10},
		{Type: TypeProbe, Seq: 11, Key: "flow/1"},
		{Type: TypeProbeAck, Seq: 12, Key: "flow/1"},
		{Type: TypeProbe, Seq: 13, Key: ""},
		// VersionExt frames carrying the trace-context TLV.
		{Type: TypeTrigger, Seq: 14, Key: "flow/1", Value: []byte("10Mbps"),
			Trace: TraceContext{OriginNs: 1234, HopNs: 5678, Hops: 2}},
		{Type: TypeRefresh, Seq: 15, Key: "k",
			Trace: TraceContext{OriginNs: 1, HopNs: 1}},
		// The convergence auditor's census exchange.
		{Type: TypeDigest, Seq: 16, Value: DigestRequest{Kind: DigestSummary}.Encode()},
		{Type: TypeDigest, Seq: 17, Value: DigestRequest{Kind: DigestDetail, Bucket: 3}.Encode()},
		{Type: TypeDigestReply, Seq: 18, Value: mustEncodeReply(f, &DigestReply{
			Kind: DigestSummary, Sums: []uint64{1, 2, 3, 4}})},
		{Type: TypeDigestReply, Seq: 19, Value: mustEncodeReply(f, &DigestReply{
			Kind: DigestDetail, Bucket: 1, Parts: 1,
			Keys: []DigestKeySum{{Key: "flow/1", Sum: 99}}})},
	}
	for i := range seed {
		data, err := seed[i].MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Truncated headers at every short length.
	valid, _ := (&Message{Type: TypeTrigger, Seq: 9, Key: "key", Value: []byte("v")}).MarshalBinary()
	for n := 0; n < len(valid); n += 3 {
		f.Add(valid[:n])
	}
	// Bad CRC.
	badCRC := append([]byte{}, valid...)
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(badCRC)
	// Oversized key length field with a resealed checksum.
	overKey := append([]byte{}, valid...)
	binary.BigEndian.PutUint16(overKey[10:], MaxKeyLen+1)
	f.Add(resealFrame(overKey))
	// Oversized value length field.
	overVal := append([]byte{}, valid...)
	binary.BigEndian.PutUint32(overVal[12+3:], MaxValueLen+1)
	f.Add(resealFrame(overVal))
	// Huge value length with a tiny frame: must not allocate MaxValueLen.
	tiny := []byte{Version, byte(TypeTrigger), 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	f.Add(resealFrame(append(tiny, 0, 0, 0, 0)))
	// Summary frames with corrupted counts and lengths.
	summary, _ := (&Message{Type: TypeSummaryRefresh, Seq: 10, Keys: []string{"aa", "bb"}}).MarshalBinary()
	overCount := append([]byte{}, summary...)
	binary.BigEndian.PutUint16(overCount[16:], MaxSummaryKeys+1)
	f.Add(resealFrame(overCount))
	shortList := append([]byte{}, summary...)
	binary.BigEndian.PutUint16(shortList[16:], 7)
	f.Add(resealFrame(shortList))
	longKey := append([]byte{}, summary...)
	binary.BigEndian.PutUint16(longKey[18:], MaxKeyLen+1)
	f.Add(resealFrame(longKey))
	// Ack batches with corrupted counts, kinds, and lengths.
	batch, _ := (&Message{Type: TypeAckBatch, Seq: 11, Acks: []AckItem{
		{Kind: TypeAck, Seq: 3, Key: "aa"}, {Kind: TypeRemovalAck, Seq: 4, Key: "bb"},
	}}).MarshalBinary()
	overItems := append([]byte{}, batch...)
	binary.BigEndian.PutUint16(overItems[16:], MaxAckItems+1)
	f.Add(resealFrame(overItems))
	badKind := append([]byte{}, batch...)
	badKind[18] = byte(TypeRefresh)
	f.Add(resealFrame(badKind))
	longAckKey := append([]byte{}, batch...)
	binary.BigEndian.PutUint16(longAckKey[27:], MaxKeyLen+1)
	f.Add(resealFrame(longAckKey))
	// Adversarial delivery shapes the chaos engine replays against live
	// endpoints: duplicated and self-contradictory ack items in one
	// batch, and a probe answer for a key no receiver holds (stray or
	// evicted-peer probe-ack) with a saturated sequence number.
	dupBatch, _ := (&Message{Type: TypeAckBatch, Seq: 14, Acks: []AckItem{
		{Kind: TypeAck, Seq: 5, Key: "k"},
		{Kind: TypeAck, Seq: 5, Key: "k"},
		{Kind: TypeRemovalAck, Seq: 5, Key: "k"},
	}}).MarshalBinary()
	f.Add(dupBatch)
	strayProbeAck, _ := (&Message{Type: TypeProbeAck, Seq: ^uint64(0), Key: "evicted/peer/key"}).MarshalBinary()
	f.Add(strayProbeAck)
	// Corrupted trace extensions: zero origin stamp, unknown TLV type,
	// inconsistent lengths, and a v2 summary frame.
	traced, _ := (&Message{Type: TypeTrigger, Seq: 20, Key: "k", Value: []byte("v"),
		Trace: TraceContext{OriginNs: 1000, HopNs: 2000, Hops: 1}}).MarshalBinary()
	zeroOrigin := append([]byte{}, traced...)
	for i := 15; i < 23; i++ {
		zeroOrigin[i] = 0
	}
	f.Add(resealFrame(zeroOrigin))
	badTLV := append([]byte{}, traced...)
	badTLV[13] = 99
	f.Add(resealFrame(badTLV))
	badExtLen := append([]byte{}, traced...)
	badExtLen[12] = 7
	f.Add(resealFrame(badExtLen))
	v2summary := append([]byte{}, summary...)
	v2summary[0] = VersionExt
	f.Add(resealFrame(v2summary))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		// Decoded fields must satisfy the documented invariants.
		if !m.Type.Valid() {
			t.Fatalf("decoded invalid type %d", m.Type)
		}
		if len(m.Key) > MaxKeyLen || len(m.Value) > MaxValueLen {
			t.Fatalf("decoded oversize key/value: %d/%d", len(m.Key), len(m.Value))
		}
		if m.Type.Summary() {
			if m.Key != "" || m.Value != nil {
				t.Fatalf("summary decoded with key/value: %+v", m)
			}
			if len(m.Keys) > MaxSummaryKeys {
				t.Fatalf("decoded %d summary keys", len(m.Keys))
			}
			for _, k := range m.Keys {
				if len(k) > MaxKeyLen {
					t.Fatalf("decoded oversize summary key: %d bytes", len(k))
				}
			}
		} else if m.Keys != nil {
			t.Fatalf("non-summary decoded with key list: %+v", m)
		}
		if m.Type.Batch() {
			if m.Key != "" || m.Value != nil || m.Keys != nil {
				t.Fatalf("ack batch decoded with key/value: %+v", m)
			}
			if len(m.Acks) > MaxAckItems {
				t.Fatalf("decoded %d ack items", len(m.Acks))
			}
			for _, it := range m.Acks {
				if it.Kind != TypeAck && it.Kind != TypeRemovalAck {
					t.Fatalf("decoded invalid ack kind %v", it.Kind)
				}
				if len(it.Key) > MaxKeyLen {
					t.Fatalf("decoded oversize ack key: %d bytes", len(it.Key))
				}
			}
		} else if m.Acks != nil {
			t.Fatalf("non-batch decoded with ack list: %+v", m)
		}
		if m.Trace.Sampled() && (m.Type.Summary() || m.Type.Batch()) {
			t.Fatalf("list frame decoded with trace context: %+v", m)
		}
		if m.Trace.Sampled() != (data[0] == VersionExt) {
			t.Fatalf("version %d decoded trace %+v", data[0], m.Trace)
		}
		// Round trip: an accepted frame re-encodes to the same bytes.
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, out)
		}
	})
}

// mustEncodeReply encodes a digest reply for the seed corpus.
func mustEncodeReply(f *testing.F, r *DigestReply) []byte {
	val, err := r.Encode()
	if err != nil {
		f.Fatal(err)
	}
	return val
}

// resealFrame recomputes the CRC trailer of a hand-edited frame.
func resealFrame(data []byte) []byte {
	if len(data) < 4 {
		return data
	}
	return reseal(data)
}

// FuzzDecodeKeys drives the summary list parser with structured inputs.
func FuzzDecodeKeys(f *testing.F) {
	f.Add(uint64(1), "a\x00bb\x00ccc")
	f.Add(uint64(2), "")
	f.Add(uint64(3), strings.Repeat("k\x00", 200))
	f.Fuzz(func(t *testing.T, seq uint64, packed string) {
		keys := strings.Split(packed, "\x00")
		for i := range keys {
			if len(keys[i]) > MaxKeyLen {
				keys[i] = keys[i][:MaxKeyLen]
			}
		}
		if n := SummaryFits(keys); n < len(keys) {
			keys = keys[:n]
		}
		in := Message{Type: TypeSummaryNack, Seq: seq, Keys: keys}
		data, err := in.MarshalBinary()
		if err != nil {
			t.Fatalf("SummaryFits-bounded list does not encode: %v", err)
		}
		var out Message
		if err := out.UnmarshalBinary(data); err != nil {
			t.Fatalf("roundtrip decode failed: %v", err)
		}
		if len(out.Keys) != len(keys) {
			t.Fatalf("keys = %d, want %d", len(out.Keys), len(keys))
		}
		for i := range keys {
			if out.Keys[i] != keys[i] {
				t.Fatalf("key %d = %q, want %q", i, out.Keys[i], keys[i])
			}
		}
	})
}
