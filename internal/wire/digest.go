package wire

import (
	"encoding/binary"
	"fmt"
)

// Digest exchange payloads — the convergence auditor's census protocol.
//
// A census has two rounds. The requester first asks for the responder's
// per-bucket digest sums (DigestSummary): one 8-byte XOR/FNV fold per
// bucket, O(1) for the responder to read because internal/statetable
// maintains them incrementally on every mutation. Buckets whose sums
// disagree with the requester's own are then resolved with a second
// round (DigestDetail): the responder lists every key in the bucket with
// its individual digest, and the requester diffs the two key sets down
// to the exact divergent keys. Both payloads ride the generic key/value
// frame encoding (empty key, payload in the value region) under
// TypeDigest / TypeDigestReply; Message.Seq carries a requester-chosen
// nonce that matches replies to requests.
//
// DigestRequest value layout:
//
//	1     kind (0 summary, 1 detail)
//	2     bucket index (detail only)
//
// DigestReply value layout:
//
//	1     kind
//	summary: { 2: bucket count N ≤ MaxDigestBuckets, N × 8: sums }
//	detail:  { 2: bucket, 2: part, 2: parts, 2: key count n,
//	           n × { 8: sum, 2: key length, key bytes } }
//
// A detail reply whose key list exceeds the MaxValueLen budget is split
// into parts (DigestDetailFits bounds each chunk); part/parts let the
// requester reassemble without ordering assumptions.

// DigestKind discriminates the census rounds.
type DigestKind uint8

const (
	// DigestSummary is the per-bucket sums round.
	DigestSummary DigestKind = 0
	// DigestDetail is the per-key resolution round for one bucket.
	DigestDetail DigestKind = 1
)

// MaxDigestBuckets bounds a digest's bucket count on the wire. The sums
// block must also fit the MaxValueLen budget (512 × 8 + 3 bytes does).
const MaxDigestBuckets = 512

// DigestRequest is a census request payload.
type DigestRequest struct {
	Kind DigestKind
	// Bucket is the bucket being resolved (DigestDetail only).
	Bucket uint16
}

// Encode renders the request payload for a TypeDigest message value.
func (r DigestRequest) Encode() []byte {
	if r.Kind == DigestDetail {
		return []byte{byte(DigestDetail), byte(r.Bucket >> 8), byte(r.Bucket)}
	}
	return []byte{byte(DigestSummary)}
}

// ParseDigestRequest decodes a TypeDigest message value.
func ParseDigestRequest(value []byte) (DigestRequest, error) {
	if len(value) < 1 {
		return DigestRequest{}, fmt.Errorf("%w: empty request", ErrDigest)
	}
	switch DigestKind(value[0]) {
	case DigestSummary:
		if len(value) != 1 {
			return DigestRequest{}, fmt.Errorf("%w: %d trailing bytes", ErrDigest, len(value)-1)
		}
		return DigestRequest{Kind: DigestSummary}, nil
	case DigestDetail:
		if len(value) != 3 {
			return DigestRequest{}, fmt.Errorf("%w: detail request %d bytes", ErrDigest, len(value))
		}
		return DigestRequest{Kind: DigestDetail, Bucket: binary.BigEndian.Uint16(value[1:3])}, nil
	default:
		return DigestRequest{}, fmt.Errorf("%w: kind %d", ErrDigest, value[0])
	}
}

// DigestKeySum is one key's individual digest contribution inside a
// detail reply.
type DigestKeySum struct {
	Key string
	Sum uint64
}

// DigestReply is a census reply payload: Sums for the summary round,
// Bucket/Part/Parts/Keys for the detail round.
type DigestReply struct {
	Kind DigestKind
	// Sums are the per-bucket digest sums (DigestSummary).
	Sums []uint64
	// Bucket is the bucket being listed; Part/Parts chunk oversized
	// listings (DigestDetail).
	Bucket, Part, Parts uint16
	// Keys are the bucket's per-key digests (DigestDetail).
	Keys []DigestKeySum
}

// digestDetailLen is the encoded size of a detail reply's key list plus
// its fixed fields (excluding the kind byte).
func digestDetailLen(keys []DigestKeySum) int {
	n := 2 + 2 + 2 + 2
	for i := range keys {
		n += 8 + 2 + len(keys[i].Key)
	}
	return n
}

// DigestDetailFits reports how many of keys fit one detail reply: the
// largest prefix within the MaxValueLen byte budget. Responders use it
// to chunk large buckets into parts.
func DigestDetailFits(keys []DigestKeySum) int {
	n, bytes := 0, 1+2+2+2+2
	for i := range keys {
		if bytes+8+2+len(keys[i].Key) > MaxValueLen {
			break
		}
		bytes += 8 + 2 + len(keys[i].Key)
		n++
	}
	return n
}

// Encode renders the reply payload for a TypeDigestReply message value.
func (r *DigestReply) Encode() ([]byte, error) {
	switch r.Kind {
	case DigestSummary:
		if len(r.Sums) > MaxDigestBuckets {
			return nil, fmt.Errorf("%w: %d buckets", ErrTooLarge, len(r.Sums))
		}
		out := make([]byte, 0, 1+2+8*len(r.Sums))
		out = append(out, byte(DigestSummary))
		out = binary.BigEndian.AppendUint16(out, uint16(len(r.Sums)))
		for _, s := range r.Sums {
			out = binary.BigEndian.AppendUint64(out, s)
		}
		return out, nil
	case DigestDetail:
		if r.Parts == 0 || r.Part >= r.Parts {
			return nil, fmt.Errorf("%w: part %d of %d", ErrDigest, r.Part, r.Parts)
		}
		if 1+digestDetailLen(r.Keys) > MaxValueLen {
			return nil, fmt.Errorf("%w: detail reply %d bytes", ErrTooLarge, 1+digestDetailLen(r.Keys))
		}
		out := make([]byte, 0, 1+digestDetailLen(r.Keys))
		out = append(out, byte(DigestDetail))
		out = binary.BigEndian.AppendUint16(out, r.Bucket)
		out = binary.BigEndian.AppendUint16(out, r.Part)
		out = binary.BigEndian.AppendUint16(out, r.Parts)
		out = binary.BigEndian.AppendUint16(out, uint16(len(r.Keys)))
		for i := range r.Keys {
			if len(r.Keys[i].Key) > MaxKeyLen {
				return nil, fmt.Errorf("%w: digest key %d bytes", ErrTooLarge, len(r.Keys[i].Key))
			}
			out = binary.BigEndian.AppendUint64(out, r.Keys[i].Sum)
			out = binary.BigEndian.AppendUint16(out, uint16(len(r.Keys[i].Key)))
			out = append(out, r.Keys[i].Key...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrDigest, r.Kind)
	}
}

// ParseDigestReply decodes a TypeDigestReply message value. Keys are
// copied, so the result does not alias value.
func ParseDigestReply(value []byte) (*DigestReply, error) {
	if len(value) < 1 {
		return nil, fmt.Errorf("%w: empty reply", ErrDigest)
	}
	switch DigestKind(value[0]) {
	case DigestSummary:
		rest := value[1:]
		if len(rest) < 2 {
			return nil, ErrShort
		}
		n := int(binary.BigEndian.Uint16(rest))
		if n > MaxDigestBuckets {
			return nil, fmt.Errorf("%w: %d buckets", ErrTooLarge, n)
		}
		rest = rest[2:]
		if len(rest) != 8*n {
			return nil, fmt.Errorf("%w: sums block %d bytes, want %d", ErrDigest, len(rest), 8*n)
		}
		r := &DigestReply{Kind: DigestSummary, Sums: make([]uint64, n)}
		for i := 0; i < n; i++ {
			r.Sums[i] = binary.BigEndian.Uint64(rest[8*i:])
		}
		return r, nil
	case DigestDetail:
		rest := value[1:]
		if len(rest) < 8 {
			return nil, ErrShort
		}
		r := &DigestReply{
			Kind:   DigestDetail,
			Bucket: binary.BigEndian.Uint16(rest[0:2]),
			Part:   binary.BigEndian.Uint16(rest[2:4]),
			Parts:  binary.BigEndian.Uint16(rest[4:6]),
		}
		n := int(binary.BigEndian.Uint16(rest[6:8]))
		rest = rest[8:]
		if r.Parts == 0 || r.Part >= r.Parts {
			return nil, fmt.Errorf("%w: part %d of %d", ErrDigest, r.Part, r.Parts)
		}
		r.Keys = make([]DigestKeySum, 0, n)
		for i := 0; i < n; i++ {
			if len(rest) < 8+2 {
				return nil, ErrShort
			}
			sum := binary.BigEndian.Uint64(rest[0:8])
			kl := int(binary.BigEndian.Uint16(rest[8:10]))
			if kl > MaxKeyLen {
				return nil, fmt.Errorf("%w: digest key %d bytes", ErrTooLarge, kl)
			}
			rest = rest[10:]
			if len(rest) < kl {
				return nil, ErrShort
			}
			r.Keys = append(r.Keys, DigestKeySum{Key: string(rest[:kl]), Sum: sum})
			rest = rest[kl:]
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrDigest, len(rest))
		}
		return r, nil
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrDigest, value[0])
	}
}
