// Package singlehop implements the paper's single-hop analytic models
// (§III-A): the continuous-time Markov chain of Figure 3 with the
// protocol-specific transition rates of Table I, solved for the
// inconsistency ratio (eq. 1), session lifetime, per-class signaling
// message rates (eqs. 3–7), and the normalized message rate Λ = μr·E[N]
// (eq. 2) for each of the five generic protocols.
package singlehop

import (
	"fmt"
	"math"
)

// Protocol identifies one of the paper's five generic signaling protocols,
// ordered from pure soft state to pure hard state.
type Protocol int

const (
	// SS is pure soft state: best-effort triggers and refreshes, removal
	// only by state-timeout.
	SS Protocol = iota
	// SSER adds a best-effort explicit removal message to SS.
	SSER
	// SSRT adds reliable (ACKed, retransmitted) trigger messages and a
	// timeout-removal notification mechanism to SS.
	SSRT
	// SSRTR adds reliable removal on top of SSRT.
	SSRTR
	// HS is pure hard state: reliable setup/update/removal, no refreshes,
	// no state timeout; orphan detection by an external signal that can
	// fire falsely at rate FalseSignal.
	HS
)

// Protocols returns all five protocols in the paper's presentation order.
func Protocols() []Protocol { return []Protocol{SS, SSER, SSRT, SSRTR, HS} }

// String implements fmt.Stringer using the paper's protocol names.
func (p Protocol) String() string {
	switch p {
	case SS:
		return "SS"
	case SSER:
		return "SS+ER"
	case SSRT:
		return "SS+RT"
	case SSRTR:
		return "SS+RTR"
	case HS:
		return "HS"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Refreshes reports whether the protocol sends soft-state refreshes.
func (p Protocol) Refreshes() bool { return p != HS }

// ExplicitRemoval reports whether the protocol sends an explicit
// state-removal message.
func (p Protocol) ExplicitRemoval() bool { return p == SSER || p == SSRTR || p == HS }

// ReliableTrigger reports whether trigger messages are ACKed and
// retransmitted.
func (p Protocol) ReliableTrigger() bool { return p == SSRT || p == SSRTR || p == HS }

// ReliableRemoval reports whether removal messages are ACKed and
// retransmitted.
func (p Protocol) ReliableRemoval() bool { return p == SSRTR || p == HS }

// Params holds the single-hop system and protocol parameters of §III-A.1.
type Params struct {
	// UpdateRate is λu, the rate of signaling state updates at the sender.
	UpdateRate float64
	// RemovalRate is μr; 1/μr is the mean signaling session lifetime.
	RemovalRate float64
	// Delay is D, the mean one-way signaling channel delay in seconds.
	Delay float64
	// Loss is pl, the per-message loss probability.
	Loss float64
	// Refresh is R, the soft-state refresh timer value.
	Refresh float64
	// Timeout is T, the soft-state state-timeout timer value.
	Timeout float64
	// Retransmit is Γ, the retransmission timer for reliable messages.
	Retransmit float64
	// FalseSignal is λ, the rate at which the hard-state protocol's
	// external failure detector fires falsely.
	FalseSignal float64
}

// DefaultParams returns the paper's Kazaa-scenario defaults (§III-A.3):
// pl = 0.02, D = 30 ms, 1/λu = 20 s, 1/μr = 1800 s, R = 5 s, T = 3R,
// Γ = 4D, λ = 0.0001.
func DefaultParams() Params {
	const d = 0.030
	return Params{
		UpdateRate:  1.0 / 20,
		RemovalRate: 1.0 / 1800,
		Delay:       d,
		Loss:        0.02,
		Refresh:     5,
		Timeout:     15,
		Retransmit:  4 * d,
		FalseSignal: 0.0001,
	}
}

// WithSessionLength returns a copy with the mean session length 1/μr set
// to seconds.
func (p Params) WithSessionLength(seconds float64) Params {
	p.RemovalRate = 1 / seconds
	return p
}

// WithRefresh returns a copy with R set and T scaled to keep the paper's
// T = 3R coupling used whenever R is swept (§III-A.3, Fig 6).
func (p Params) WithRefresh(r float64) Params {
	p.Refresh = r
	p.Timeout = 3 * r
	return p
}

// WithDelay returns a copy with D set and Γ scaled to keep Γ = 4D ("the
// value of the retransmission timer is generally proportional to the
// channel delay", §III-A.3).
func (p Params) WithDelay(d float64) Params {
	p.Delay = d
	p.Retransmit = 4 * d
	return p
}

// Validate reports the first structural problem with the parameters.
func (p Params) Validate() error {
	check := func(name string, v float64, allowZero bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || (!allowZero && v == 0) {
			return fmt.Errorf("singlehop: invalid %s = %v", name, v)
		}
		return nil
	}
	if err := check("UpdateRate (λu)", p.UpdateRate, true); err != nil {
		return err
	}
	if err := check("RemovalRate (μr)", p.RemovalRate, true); err != nil {
		return err
	}
	if err := check("Delay (D)", p.Delay, false); err != nil {
		return err
	}
	if p.Loss < 0 || p.Loss >= 1 || math.IsNaN(p.Loss) {
		return fmt.Errorf("singlehop: loss probability pl = %v outside [0,1)", p.Loss)
	}
	if err := check("Refresh (R)", p.Refresh, false); err != nil {
		return err
	}
	if err := check("Timeout (T)", p.Timeout, false); err != nil {
		return err
	}
	if err := check("Retransmit (Γ)", p.Retransmit, false); err != nil {
		return err
	}
	if err := check("FalseSignal (λ)", p.FalseSignal, true); err != nil {
		return err
	}
	return nil
}

// FalseRemovalRate returns λf for the given protocol: soft-state protocols
// lose state when every refresh within a timeout window is lost, which the
// paper approximates as λf = pl^(T/R)/T; the hard-state protocol's false
// removals come from its external signal at rate λ.
func (p Params) FalseRemovalRate(proto Protocol) float64 {
	if proto == HS {
		return p.FalseSignal
	}
	if p.Loss == 0 {
		return 0
	}
	return math.Pow(p.Loss, p.Timeout/p.Refresh) / p.Timeout
}
