package singlehop

import "fmt"

// TableRow is one row of the paper's Table I: a Figure 3 transition and
// its rate under each protocol. Symbolic carries the closed-form
// expression; the Rates map carries the numeric value extracted from the
// built chain at the given parameters, so the regenerated table is
// guaranteed to agree with the models the experiments solve.
type TableRow struct {
	Transition string
	Symbolic   map[Protocol]string
	Rates      map[Protocol]float64
}

// TableI regenerates the paper's Table I at parameter point p. Rows appear
// in the paper's order. A rate of zero with symbolic "-" means the
// transition (or state) does not exist for that protocol.
func TableI(p Params) ([]TableRow, error) {
	type rowSpec struct {
		label    string
		from, to state
		symbolic map[Protocol]string
	}
	specs := []rowSpec{
		{
			label: "(1,-)1→(1,-)2 and C~1→C~2 (trigger lost)",
			from:  stInit1, to: stInit2,
			symbolic: uniform("pl/D"),
		},
		{
			label: "(1,-)1→C and C~1→C (trigger delivered)",
			from:  stInit1, to: stC,
			symbolic: uniform("(1-pl)/D"),
		},
		{
			label: "(1,-)2→C and C~2→C (slow-path repair)",
			from:  stInit2, to: stC,
			symbolic: map[Protocol]string{
				SS:    "(1-pl)/R",
				SSER:  "(1-pl)/R",
				SSRT:  "(1/R+1/Γ)·(1-pl)",
				SSRTR: "(1/R+1/Γ)·(1-pl)",
				HS:    "(1-pl)/Γ",
			},
		},
		{
			label: "(-,1)1→(-,1)2 (removal lost)",
			from:  stRem1, to: stRem2,
			symbolic: map[Protocol]string{
				SS:    "-",
				SSER:  "pl/D",
				SSRT:  "-",
				SSRTR: "pl/D",
				HS:    "pl/D",
			},
		},
		{
			label: "(-,1)1→(-,-) (orphan cleanup)",
			from:  stRem1, to: stAbs,
			symbolic: map[Protocol]string{
				SS:    "1/T",
				SSER:  "(1-pl)/D",
				SSRT:  "1/T",
				SSRTR: "(1-pl)/D",
				HS:    "(1-pl)/D",
			},
		},
		{
			label: "(-,1)2→(-,-) (lost-removal cleanup)",
			from:  stRem2, to: stAbs,
			symbolic: map[Protocol]string{
				SS:    "-",
				SSER:  "1/T",
				SSRT:  "-",
				SSRTR: "1/T+(1-pl)/Γ",
				HS:    "(1-pl)/Γ",
			},
		},
		{
			label: "C→(1,-)2 and C~2→(1,-)2 (false removal λf)",
			from:  stC, to: stInit2,
			symbolic: map[Protocol]string{
				SS:    "pl^(T/R)/T",
				SSER:  "pl^(T/R)/T",
				SSRT:  "pl^(T/R)/T",
				SSRTR: "pl^(T/R)/T",
				HS:    "λ",
			},
		},
	}

	models := make(map[Protocol]*Model, 5)
	for _, proto := range Protocols() {
		m, err := Build(proto, p)
		if err != nil {
			return nil, fmt.Errorf("singlehop: building %v for Table I: %w", proto, err)
		}
		models[proto] = m
	}
	rows := make([]TableRow, 0, len(specs))
	for _, s := range specs {
		row := TableRow{
			Transition: s.label,
			Symbolic:   s.symbolic,
			Rates:      make(map[Protocol]float64, 5),
		}
		for _, proto := range Protocols() {
			row.Rates[proto] = models[proto].rate(s.from, s.to)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func uniform(expr string) map[Protocol]string {
	m := make(map[Protocol]string, 5)
	for _, proto := range Protocols() {
		m[proto] = expr
	}
	return m
}
