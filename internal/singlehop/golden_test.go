package singlehop

import (
	"math"
	"testing"
)

// TestGoldenMetricsAtDefaults freezes the analytic outputs at the paper's
// default operating point. These values were cross-validated against the
// event simulator (internal/sim) and against the paper's Figure 4; any
// drift means the model changed, which must be a deliberate act.
func TestGoldenMetricsAtDefaults(t *testing.T) {
	golden := map[Protocol]struct{ i, rate float64 }{
		SS:    {0.013816617, 0.250555556},
		SSER:  {0.005793243, 0.251111085},
		SSRT:  {0.009872984, 0.302108137},
		SSRTR: {0.001652392, 0.303230492},
		HS:    {0.001667350, 0.103553492},
	}
	const tol = 1e-6 // relative
	for proto, want := range golden {
		m, err := Analyze(proto, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(m.Inconsistency-want.i) / want.i; rel > tol {
			t.Errorf("%v: I = %.6f, golden %.6f (drift %.2g)", proto, m.Inconsistency, want.i, rel)
		}
		if rel := math.Abs(m.NormalizedRate-want.rate) / want.rate; rel > tol {
			t.Errorf("%v: Λ = %.6f, golden %.6f (drift %.2g)", proto, m.NormalizedRate, want.rate, rel)
		}
	}
}

// TestGoldenLifetimes freezes the mean state lifetimes at the defaults:
// ≈1/μr plus the orphan wait (T-scale without explicit removal, D-scale
// with it).
func TestGoldenLifetimes(t *testing.T) {
	golden := map[Protocol]float64{
		SS:    1817.7293,
		SSER:  1803.0600,
		SSRT:  1817.7300,
		SSRTR: 1802.7624,
		HS:    1802.7624,
	}
	for proto, want := range golden {
		m, err := Analyze(proto, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Lifetime-want) > 0.001 {
			t.Errorf("%v: lifetime = %.4f, golden %.4f", proto, m.Lifetime, want)
		}
	}
}
