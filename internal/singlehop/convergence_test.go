package singlehop

import (
	"math"
	"testing"
)

func TestUpdateConvergenceMonotone(t *testing.T) {
	times := []float64{0, 0.01, 0.05, 0.1, 0.5, 1, 5, 20}
	for _, proto := range Protocols() {
		m, err := Build(proto, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		cdf, err := m.UpdateConvergence(times)
		if err != nil {
			t.Fatal(err)
		}
		if cdf[0] != 0 {
			t.Fatalf("%v: CDF(0) = %v, want 0", proto, cdf[0])
		}
		prev := -1.0
		for i, v := range cdf {
			if v < prev-1e-12 || v < 0 || v > 1 {
				t.Fatalf("%v: CDF not a CDF at %v: %v", proto, times[i], v)
			}
			prev = v
		}
		if last := cdf[len(cdf)-1]; last < 0.99 {
			t.Fatalf("%v: CDF(20s) = %v, update should be installed", proto, last)
		}
	}
}

func TestUpdateConvergenceLossless(t *testing.T) {
	// With pl = 0 and negligible competing events, the install time is the
	// channel delay: CDF(t) ≈ 1 − e^{−t/D}.
	p := DefaultParams()
	p.Loss = 0
	p.UpdateRate = 0
	p.RemovalRate = 1e-9
	m, err := Build(SS, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.01, 0.03, 0.1} {
		cdf, err := m.UpdateConvergence([]float64{tt})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-tt/p.Delay)
		if math.Abs(cdf[0]-want) > 1e-6 {
			t.Fatalf("t=%v: CDF = %v, want %v", tt, cdf[0], want)
		}
	}
}

func TestUpdateConvergenceReliableBeatsSS(t *testing.T) {
	// At high loss, reliable triggers install updates much sooner at the
	// refresh-timescale horizon.
	p := DefaultParams()
	p.Loss = 0.2
	ss, err := Build(SS, p)
	if err != nil {
		t.Fatal(err)
	}
	ssrt, err := Build(SSRT, p)
	if err != nil {
		t.Fatal(err)
	}
	at := []float64{0.5}
	cdfSS, err := ss.UpdateConvergence(at)
	if err != nil {
		t.Fatal(err)
	}
	cdfRT, err := ssrt.UpdateConvergence(at)
	if err != nil {
		t.Fatal(err)
	}
	if !(cdfRT[0] > cdfSS[0]) {
		t.Fatalf("P(installed by 0.5s): SS+RT %v should beat SS %v", cdfRT[0], cdfSS[0])
	}
	// The 99th-percentile install latency contracts accordingly.
	qSS, err := ss.ConvergenceQuantile(0.99, 60)
	if err != nil {
		t.Fatal(err)
	}
	qRT, err := ssrt.ConvergenceQuantile(0.99, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !(qRT < qSS/2) {
		t.Fatalf("p99 install: SS+RT %v vs SS %v, want at least 2x better", qRT, qSS)
	}
}

func TestUpdateConvergenceValidation(t *testing.T) {
	m, err := Build(SS, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.UpdateConvergence([]float64{-1}); err == nil {
		t.Fatal("negative time accepted")
	}
	if _, err := m.UpdateConvergence([]float64{2, 1}); err == nil {
		t.Fatal("unsorted times accepted")
	}
	if _, err := m.ConvergenceQuantile(0, 10); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := m.ConvergenceQuantile(1.5, 10); err == nil {
		t.Fatal("q>1 accepted")
	}
}

func TestConvergenceQuantileUnreachable(t *testing.T) {
	// With a tiny horizon the quantile is clamped to maxT.
	m, err := Build(SS, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.ConvergenceQuantile(0.999, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0.001 {
		t.Fatalf("quantile = %v, want clamp at maxT", q)
	}
}
