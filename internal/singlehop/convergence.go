package singlehop

import (
	"fmt"
	"sort"
)

// UpdateConvergence returns, for each time in times, the probability that
// a state update issued at time 0 has been installed at the receiver —
// the first-passage CDF from C̄₁ (update trigger in flight) to C.
//
// This transient view extends the paper's steady-state analysis: the
// inconsistency ratio tells you the *fraction* of time spent waiting on
// updates; this curve tells you the *distribution* of each wait, which is
// what an application with a deadline actually cares about (§II lists
// "the smaller the refresh timer, the sooner consistent state will be
// installed" as a qualitative factor — here it is quantified).
//
// Times must be nonnegative; the result is nondecreasing in t.
func (m *Model) UpdateConvergence(times []float64) ([]float64, error) {
	for _, t := range times {
		if t < 0 {
			return nil, fmt.Errorf("singlehop: negative time %v", t)
		}
	}
	if !sort.Float64sAreSorted(times) {
		return nil, fmt.Errorf("singlehop: times must be sorted")
	}
	// Make C absorbing so mass that reaches consistency stays there.
	frozen := m.chain.Freeze(m.ids[stC])
	p0 := frozen.UnitDistribution(m.ids[stCbar1])
	out := make([]float64, len(times))
	for i, t := range times {
		p, err := frozen.TransientAt(p0, t)
		if err != nil {
			return nil, fmt.Errorf("singlehop: %v convergence at t=%v: %w", m.Proto, t, err)
		}
		out[i] = p[m.ids[stC]]
	}
	return out, nil
}

// ConvergenceQuantile returns the approximate time by which the update is
// installed with probability q (bisection over UpdateConvergence; returns
// +Inf substitute maxT if q is not reached by maxT).
func (m *Model) ConvergenceQuantile(q, maxT float64) (float64, error) {
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("singlehop: quantile %v outside (0,1)", q)
	}
	lo, hi := 0.0, maxT
	probAt := func(t float64) (float64, error) {
		p, err := m.UpdateConvergence([]float64{t})
		if err != nil {
			return 0, err
		}
		return p[0], nil
	}
	pHi, err := probAt(hi)
	if err != nil {
		return 0, err
	}
	if pHi < q {
		return maxT, nil
	}
	for i := 0; i < 40 && hi-lo > 1e-6*maxT; i++ {
		mid := (lo + hi) / 2
		p, err := probAt(mid)
		if err != nil {
			return 0, err
		}
		if p < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
