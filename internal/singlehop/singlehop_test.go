package singlehop

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProtocolString(t *testing.T) {
	want := map[Protocol]string{
		SS: "SS", SSER: "SS+ER", SSRT: "SS+RT", SSRTR: "SS+RTR", HS: "HS",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("String(%d) = %q, want %q", int(p), p.String(), s)
		}
	}
	if Protocol(99).String() != "Protocol(99)" {
		t.Fatal("unknown protocol string")
	}
}

func TestProtocolMechanisms(t *testing.T) {
	cases := []struct {
		p                   Protocol
		refresh, er, rt, rr bool
	}{
		{SS, true, false, false, false},
		{SSER, true, true, false, false},
		{SSRT, true, false, true, false},
		{SSRTR, true, true, true, true},
		{HS, false, true, true, true},
	}
	for _, c := range cases {
		if c.p.Refreshes() != c.refresh || c.p.ExplicitRemoval() != c.er ||
			c.p.ReliableTrigger() != c.rt || c.p.ReliableRemoval() != c.rr {
			t.Fatalf("%v mechanism flags wrong", c.p)
		}
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.Loss != 0.02 || p.Delay != 0.030 || p.Refresh != 5 || p.Timeout != 15 {
		t.Fatalf("defaults = %+v", p)
	}
	if math.Abs(1/p.UpdateRate-20) > 1e-9 || math.Abs(1/p.RemovalRate-1800) > 1e-9 {
		t.Fatalf("rate defaults = %+v", p)
	}
	if math.Abs(p.Retransmit-4*p.Delay) > 1e-12 {
		t.Fatalf("Γ = %v, want 4D", p.Retransmit)
	}
	if p.FalseSignal != 0.0001 {
		t.Fatalf("λ = %v", p.FalseSignal)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamHelpers(t *testing.T) {
	p := DefaultParams().WithSessionLength(100)
	if math.Abs(1/p.RemovalRate-100) > 1e-9 {
		t.Fatal("WithSessionLength failed")
	}
	p = p.WithRefresh(2)
	if p.Refresh != 2 || p.Timeout != 6 {
		t.Fatal("WithRefresh did not keep T = 3R")
	}
	p = p.WithDelay(0.1)
	if p.Delay != 0.1 || math.Abs(p.Retransmit-0.4) > 1e-12 {
		t.Fatal("WithDelay did not keep Γ = 4D")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Params{
		func() Params { p := DefaultParams(); p.Delay = 0; return p }(),
		func() Params { p := DefaultParams(); p.Delay = -1; return p }(),
		func() Params { p := DefaultParams(); p.Loss = 1; return p }(),
		func() Params { p := DefaultParams(); p.Loss = -0.1; return p }(),
		func() Params { p := DefaultParams(); p.Refresh = 0; return p }(),
		func() Params { p := DefaultParams(); p.Timeout = 0; return p }(),
		func() Params { p := DefaultParams(); p.Retransmit = 0; return p }(),
		func() Params { p := DefaultParams(); p.UpdateRate = math.NaN(); return p }(),
		func() Params { p := DefaultParams(); p.FalseSignal = -1; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestFalseRemovalRate(t *testing.T) {
	p := DefaultParams()
	want := math.Pow(0.02, 3) / 15
	for _, proto := range []Protocol{SS, SSER, SSRT, SSRTR} {
		if got := p.FalseRemovalRate(proto); math.Abs(got-want) > 1e-18 {
			t.Fatalf("%v λf = %v, want %v", proto, got, want)
		}
	}
	if got := p.FalseRemovalRate(HS); got != p.FalseSignal {
		t.Fatalf("HS λf = %v, want λ", got)
	}
	p.Loss = 0
	if p.FalseRemovalRate(SS) != 0 {
		t.Fatal("λf should be 0 for lossless channel")
	}
}

func TestRem2StateOnlyWithExplicitRemoval(t *testing.T) {
	for _, proto := range Protocols() {
		m, err := Build(proto, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		_, has := m.StateID(stRem2)
		if has != proto.ExplicitRemoval() {
			t.Fatalf("%v: (-,1)2 present=%v, want %v", proto, has, proto.ExplicitRemoval())
		}
	}
}

// TestSSLosslessClosedForm checks the solver against a hand-derived result.
// With pl = 0 and λf = 0 the SS chain is a simple cycle:
//
//	occupancy((1,-)₁) = D, occupancy(C) = 1/μr,
//	occupancy(C̄₁)    = (λu/μr)·D, occupancy((-,1)₁) = T,
//
// so L = D(1 + λu/μr) + 1/μr + T and I = 1 − (1/μr)/L.
func TestSSLosslessClosedForm(t *testing.T) {
	p := DefaultParams()
	p.Loss = 0
	met, err := Analyze(SS, p)
	if err != nil {
		t.Fatal(err)
	}
	lu, mr, D, T := p.UpdateRate, p.RemovalRate, p.Delay, p.Timeout
	wantL := D*(1+lu/mr) + 1/mr + T
	if math.Abs(met.Lifetime-wantL) > 1e-6*wantL {
		t.Fatalf("Lifetime = %v, want %v", met.Lifetime, wantL)
	}
	wantI := 1 - (1/mr)/wantL
	if math.Abs(met.Inconsistency-wantI) > 1e-9 {
		t.Fatalf("I = %v, want %v", met.Inconsistency, wantI)
	}
}

// TestHSLosslessClosedForm: with pl = 0 and λ = 0 the HS chain is the same
// cycle with the orphan wait T replaced by a removal delivery delay D.
func TestHSLosslessClosedForm(t *testing.T) {
	p := DefaultParams()
	p.Loss = 0
	p.FalseSignal = 0
	met, err := Analyze(HS, p)
	if err != nil {
		t.Fatal(err)
	}
	lu, mr, D := p.UpdateRate, p.RemovalRate, p.Delay
	wantL := D*(1+lu/mr) + 1/mr + D
	if math.Abs(met.Lifetime-wantL) > 1e-6*wantL {
		t.Fatalf("Lifetime = %v, want %v", met.Lifetime, wantL)
	}
	wantI := 1 - (1/mr)/wantL
	if math.Abs(met.Inconsistency-wantI) > 1e-9 {
		t.Fatalf("I = %v, want %v", met.Inconsistency, wantI)
	}
}

// TestSSLosslessMessageRate pins the message accounting on the lossless
// cycle: per session the sender emits 1 setup trigger, λu/μr update
// triggers on average, and refreshes at rate 1/R while in (1,-)₂ ∪ C ∪ C̄₂
// (occupancy 1/μr here).
func TestSSLosslessMessageRate(t *testing.T) {
	p := DefaultParams()
	p.Loss = 0
	met, err := Analyze(SS, p)
	if err != nil {
		t.Fatal(err)
	}
	lu, mr, R := p.UpdateRate, p.RemovalRate, p.Refresh
	wantN := 1 + lu/mr + (1/mr)/R
	if math.Abs(met.MessagesPerSession-wantN) > 1e-6*wantN {
		t.Fatalf("E[N] = %v, want %v", met.MessagesPerSession, wantN)
	}
}

func TestMetricsAtPaperDefaults(t *testing.T) {
	// Magnitude checks against Figure 4 at 1/μr = 1800 s. Bounds are loose
	// on purpose: the paper's exact values are not recoverable from the
	// scanned figures, but the magnitudes and orderings are.
	p := DefaultParams()
	met := map[Protocol]Metrics{}
	for _, proto := range Protocols() {
		m, err := Analyze(proto, p)
		if err != nil {
			t.Fatal(err)
		}
		met[proto] = m
	}
	if i := met[SS].Inconsistency; i < 0.005 || i > 0.03 {
		t.Fatalf("I(SS) = %v, want ≈0.015", i)
	}
	if i := met[SSER].Inconsistency; i < 0.003 || i > 0.015 {
		t.Fatalf("I(SS+ER) = %v, want ≈0.007", i)
	}
	if i := met[HS].Inconsistency; i < 0.0005 || i > 0.005 {
		t.Fatalf("I(HS) = %v, want ≈0.0016", i)
	}
	if r := met[SS].NormalizedRate; r < 0.15 || r > 0.4 {
		t.Fatalf("Λ(SS) = %v, want ≈0.25", r)
	}
	if r := met[HS].NormalizedRate; r < 0.05 || r > 0.2 {
		t.Fatalf("Λ(HS) = %v, want ≈0.1", r)
	}
}

func TestPaperOrderingsAtDefaults(t *testing.T) {
	p := DefaultParams()
	get := func(proto Protocol) Metrics {
		m, err := Analyze(proto, p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ss, sser, ssrt, ssrtr, hs := get(SS), get(SSER), get(SSRT), get(SSRTR), get(HS)

	// Explicit removal substantially improves consistency (paper abstract).
	if !(sser.Inconsistency < ss.Inconsistency) {
		t.Fatal("SS+ER should beat SS on consistency")
	}
	// Reliable triggers help too.
	if !(ssrt.Inconsistency < ss.Inconsistency) {
		t.Fatal("SS+RT should beat SS on consistency")
	}
	// SS+RTR achieves comparable (sometimes better) consistency than HS.
	ratio := ssrtr.Inconsistency / hs.Inconsistency
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("I(SS+RTR)/I(HS) = %v, want ≈1", ratio)
	}
	// Explicit removal adds negligible overhead to SS (paper: "little
	// additional signaling message overhead").
	if over := sser.NormalizedRate - ss.NormalizedRate; over < 0 || over > 0.05*ss.NormalizedRate {
		t.Fatalf("SS+ER overhead over SS = %v", over)
	}
	// HS has the lowest signaling rate; SS+RTR the highest.
	for _, m := range []Metrics{ss, sser, ssrt, ssrtr} {
		if hs.NormalizedRate >= m.NormalizedRate {
			t.Fatal("HS should have the lowest message rate at defaults")
		}
	}
	for _, m := range []Metrics{ss, sser, ssrt, hs} {
		if ssrtr.NormalizedRate <= m.NormalizedRate {
			t.Fatal("SS+RTR should have the highest message rate at defaults")
		}
	}
}

func TestInconsistencyDecreasesWithSessionLength(t *testing.T) {
	for _, proto := range Protocols() {
		prev := math.Inf(1)
		for _, life := range []float64{10, 100, 1000, 10000} {
			met, err := Analyze(proto, DefaultParams().WithSessionLength(life))
			if err != nil {
				t.Fatal(err)
			}
			if met.Inconsistency >= prev {
				t.Fatalf("%v: I not decreasing at 1/μr=%v", proto, life)
			}
			prev = met.Inconsistency
		}
	}
}

func TestMessageRateDecreasesWithSessionLength(t *testing.T) {
	for _, proto := range Protocols() {
		prev := math.Inf(1)
		for _, life := range []float64{10, 100, 1000, 10000} {
			met, err := Analyze(proto, DefaultParams().WithSessionLength(life))
			if err != nil {
				t.Fatal(err)
			}
			if met.NormalizedRate >= prev {
				t.Fatalf("%v: Λ not decreasing at 1/μr=%v", proto, life)
			}
			prev = met.NormalizedRate
		}
	}
}

func TestInconsistencyGrowsWithLoss(t *testing.T) {
	for _, proto := range Protocols() {
		prev := -1.0
		for _, pl := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
			p := DefaultParams()
			p.Loss = pl
			met, err := Analyze(proto, p)
			if err != nil {
				t.Fatal(err)
			}
			if met.Inconsistency <= prev {
				t.Fatalf("%v: I not increasing at pl=%v", proto, pl)
			}
			prev = met.Inconsistency
		}
	}
}

func TestReliableTriggerResistsLoss(t *testing.T) {
	// Figure 5(a): at pl = 0.15 the reliable-trigger protocols should be
	// far more consistent than pure SS.
	p := DefaultParams()
	p.Loss = 0.15
	ss, err := Analyze(SS, p)
	if err != nil {
		t.Fatal(err)
	}
	ssrt, err := Analyze(SSRT, p)
	if err != nil {
		t.Fatal(err)
	}
	if ssrt.Inconsistency > 0.5*ss.Inconsistency {
		t.Fatalf("I(SS+RT)=%v vs I(SS)=%v: reliable triggers should dominate at high loss",
			ssrt.Inconsistency, ss.Inconsistency)
	}
}

func TestHSInsensitiveToRefreshTimer(t *testing.T) {
	base, err := Analyze(HS, DefaultParams().WithRefresh(0.5))
	if err != nil {
		t.Fatal(err)
	}
	other, err := Analyze(HS, DefaultParams().WithRefresh(50))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.Inconsistency-other.Inconsistency) > 1e-12 {
		t.Fatal("HS inconsistency should not depend on R")
	}
	if math.Abs(base.NormalizedRate-other.NormalizedRate) > 1e-9 {
		t.Fatal("HS message rate should not depend on R")
	}
}

func TestShortTimeoutHurtsSoftState(t *testing.T) {
	// Figure 8(a): T < R causes mass false removal for soft protocols.
	p := DefaultParams() // R = 5
	p.Timeout = 1
	bad, err := Analyze(SS, p)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Analyze(SS, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if bad.Inconsistency < 5*good.Inconsistency {
		t.Fatalf("I(T=1)=%v vs I(T=15)=%v: short timeout should be disastrous",
			bad.Inconsistency, good.Inconsistency)
	}
}

func TestBreakdownClassesMatchMechanisms(t *testing.T) {
	for _, proto := range Protocols() {
		met, err := Analyze(proto, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		b := met.Breakdown
		if (b.Refresh > 0) != proto.Refreshes() {
			t.Fatalf("%v refresh rate = %v", proto, b.Refresh)
		}
		if (b.Removal > 0) != proto.ExplicitRemoval() {
			t.Fatalf("%v removal rate = %v", proto, b.Removal)
		}
		if (b.ReliableTrigger > 0) != proto.ReliableTrigger() {
			t.Fatalf("%v reliable-trigger rate = %v", proto, b.ReliableTrigger)
		}
		if (b.ReliableRemoval > 0) != proto.ReliableRemoval() {
			t.Fatalf("%v reliable-removal rate = %v", proto, b.ReliableRemoval)
		}
		if b.Trigger <= 0 {
			t.Fatalf("%v trigger rate = %v, want positive", proto, b.Trigger)
		}
		sum := b.Trigger + b.Removal + b.Refresh + b.ReliableTrigger + b.ReliableRemoval
		if math.Abs(sum-met.MsgRate) > 1e-12 {
			t.Fatalf("%v breakdown does not sum to MsgRate", proto)
		}
	}
}

func TestIntegratedCost(t *testing.T) {
	met := Metrics{Inconsistency: 0.01, NormalizedRate: 0.2}
	if got := IntegratedCost(10, met); math.Abs(got-0.3) > 1e-15 {
		t.Fatalf("IntegratedCost = %v, want 0.3", got)
	}
}

func TestTableIRegeneration(t *testing.T) {
	p := DefaultParams()
	rows, err := TableI(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table I has %d rows, want 7", len(rows))
	}
	byLabelPrefix := func(prefix string) TableRow {
		for _, r := range rows {
			if len(r.Transition) >= len(prefix) && r.Transition[:len(prefix)] == prefix {
				return r
			}
		}
		t.Fatalf("no row with prefix %q", prefix)
		return TableRow{}
	}
	// Row 1: pl/D for every protocol.
	r1 := byLabelPrefix("(1,-)1→(1,-)2")
	for _, proto := range Protocols() {
		if math.Abs(r1.Rates[proto]-p.Loss/p.Delay) > 1e-9 {
			t.Fatalf("row1 %v rate = %v", proto, r1.Rates[proto])
		}
	}
	// Row 5: cleanup is 1/T for SS and SS+RT, (1-pl)/D otherwise.
	r5 := byLabelPrefix("(-,1)1→(-,-)")
	if math.Abs(r5.Rates[SS]-1/p.Timeout) > 1e-9 || math.Abs(r5.Rates[SSRT]-1/p.Timeout) > 1e-9 {
		t.Fatalf("row5 SS/SS+RT = %v/%v", r5.Rates[SS], r5.Rates[SSRT])
	}
	want := (1 - p.Loss) / p.Delay
	for _, proto := range []Protocol{SSER, SSRTR, HS} {
		if math.Abs(r5.Rates[proto]-want) > 1e-9 {
			t.Fatalf("row5 %v = %v, want %v", proto, r5.Rates[proto], want)
		}
	}
	// Row 4 absent for SS/SS+RT.
	r4 := byLabelPrefix("(-,1)1→(-,1)2")
	if r4.Rates[SS] != 0 || r4.Rates[SSRT] != 0 {
		t.Fatal("row4 should be empty for SS and SS+RT")
	}
	if r4.Symbolic[SS] != "-" {
		t.Fatal("row4 symbolic for SS should be '-'")
	}
	// Row 7 false removal: λ for HS, pl^(T/R)/T otherwise.
	r7 := byLabelPrefix("C→(1,-)2")
	if math.Abs(r7.Rates[HS]-p.FalseSignal) > 1e-18 {
		t.Fatalf("row7 HS = %v", r7.Rates[HS])
	}
	if math.Abs(r7.Rates[SS]-p.FalseRemovalRate(SS)) > 1e-18 {
		t.Fatalf("row7 SS = %v", r7.Rates[SS])
	}
}

func TestSolveInvariantsProperty(t *testing.T) {
	// Property: for random valid parameters, every protocol solves and the
	// metrics satisfy 0 ≤ I ≤ 1, L > 0, and nonnegative rates.
	prop := func(seed uint64) bool {
		s := seed
		next := func() float64 {
			// Cheap deterministic stream in (0,1).
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		p := Params{
			UpdateRate:  0.001 + next()*0.5,
			RemovalRate: 0.0001 + next()*0.1,
			Delay:       0.001 + next()*0.5,
			Loss:        next() * 0.5,
			Refresh:     0.1 + next()*30,
			FalseSignal: next() * 0.01,
		}
		p.Timeout = p.Refresh * (0.5 + next()*5)
		p.Retransmit = p.Delay * (1 + next()*8)
		for _, proto := range Protocols() {
			met, err := Analyze(proto, p)
			if err != nil {
				return false
			}
			if met.Inconsistency < -1e-9 || met.Inconsistency > 1+1e-9 {
				return false
			}
			if met.Lifetime <= 0 || met.MsgRate < 0 || met.NormalizedRate < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLifetimeExceedsSessionLength(t *testing.T) {
	// The state lives at the receiver at least as long as at the sender.
	for _, proto := range Protocols() {
		met, err := Analyze(proto, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if met.Lifetime < 1800 {
			t.Fatalf("%v lifetime %v < sender session length", proto, met.Lifetime)
		}
	}
}
