package singlehop

import (
	"fmt"

	"softstate/internal/markov"
)

// state enumerates the Markov states of Figure 3. The pair notation
// (sender, receiver) uses "1" for installed state and "-" for absent;
// C/C̄ mark matching/mismatching installed values. Subscripts 1 and 2
// separate the "message in flight" and "message lost, awaiting repair"
// phases of each inconsistent condition.
type state int

const (
	stInit1 state = iota // (1,-)₁: setup trigger in flight
	stInit2              // (1,-)₂: setup trigger lost, awaiting repair
	stC                  // C: consistent
	stCbar1              // C̄₁: update trigger in flight
	stCbar2              // C̄₂: update trigger lost, awaiting repair
	stRem1               // (-,1)₁: sender gone; removal in flight / timeout pending
	stRem2               // (-,1)₂: removal message lost
	stAbs                // (-,-): state removed everywhere (absorbing)
	numStates
)

var stateNames = [numStates]string{
	"(1,-)1", "(1,-)2", "C", "C~1", "C~2", "(-,1)1", "(-,1)2", "(-,-)",
}

func (s state) String() string { return stateNames[s] }

// Model is the solved-ready CTMC of one protocol at one parameter point.
type Model struct {
	Proto  Protocol
	Params Params

	chain *markov.Chain
	ids   [numStates]markov.StateID
	has   [numStates]bool
}

// Build constructs the Figure 3 chain with the Table I rates for proto.
// States that do not exist for a protocol — (-,1)₂ exists only with
// explicit removal — are omitted entirely so the absorption analysis stays
// well-posed.
func Build(proto Protocol, p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Proto: proto, Params: p, chain: markov.NewChain()}
	add := func(s state) {
		m.ids[s] = m.chain.State(stateNames[s])
		m.has[s] = true
	}
	add(stInit1)
	add(stInit2)
	add(stC)
	add(stCbar1)
	add(stCbar2)
	add(stRem1)
	if proto.ExplicitRemoval() {
		add(stRem2)
	}
	add(stAbs)

	D, pl, T := p.Delay, p.Loss, p.Timeout
	lu, mr := p.UpdateRate, p.RemovalRate
	lf := p.FalseRemovalRate(proto)

	tr := func(from, to state, rate float64) {
		m.chain.AddTransition(m.ids[from], m.ids[to], rate)
	}

	// Trigger transmission outcomes (common to every protocol): after a
	// channel delay the in-flight trigger is either delivered or lost.
	tr(stInit1, stC, (1-pl)/D)
	tr(stInit1, stInit2, pl/D)
	tr(stCbar1, stC, (1-pl)/D)
	tr(stCbar1, stCbar2, pl/D)

	// Repair of a lost trigger (Table I row 3): refresh, retransmission,
	// or both, depending on the protocol.
	repair := m.repairRate()
	tr(stInit2, stC, repair)
	tr(stCbar2, stC, repair)

	// State updates at rate λu. The model serializes signaling: updates
	// are not accepted while a message is in flight, so there is no
	// transition out of (1,-)₁ or C̄₁ on update.
	tr(stC, stCbar1, lu)
	tr(stInit2, stInit1, lu)
	tr(stCbar2, stCbar1, lu)

	// Sender removal at rate μr: before the receiver ever installed state
	// the system absorbs directly; once the receiver holds state the
	// system must clean it up via (-,1)₁.
	tr(stInit2, stAbs, mr)
	tr(stC, stRem1, mr)
	tr(stCbar2, stRem1, mr)

	// Receiver-side cleanup (Table I rows 4–6).
	if proto.ExplicitRemoval() {
		tr(stRem1, stRem2, pl/D)        // removal message lost
		tr(stRem1, stAbs, (1-pl)/D)     // removal message delivered
		tr(stRem2, stAbs, m.rem2Rate()) // timeout and/or removal retransmission
	} else {
		tr(stRem1, stAbs, 1/T) // orphan removed only by state timeout
	}

	// False removal: the receiver drops live state (all refreshes in a
	// timeout window lost, or a false external signal for HS), leaving the
	// sender to repair via the slow path.
	tr(stC, stInit2, lf)
	tr(stCbar2, stInit2, lf)

	return m, nil
}

// repairRate is Table I row 3: the rate at which a lost setup/update is
// repaired in the slow-path states (1,-)₂ and C̄₂.
func (m *Model) repairRate() float64 {
	p := m.Params
	switch {
	case m.Proto == HS:
		return (1 - p.Loss) / p.Retransmit
	case m.Proto.ReliableTrigger():
		return (1/p.Refresh + 1/p.Retransmit) * (1 - p.Loss)
	default:
		return (1 - p.Loss) / p.Refresh
	}
}

// rem2Rate is Table I row 6: how state (-,1)₂ resolves for protocols with
// explicit removal.
func (m *Model) rem2Rate() float64 {
	p := m.Params
	switch m.Proto {
	case SSER:
		return 1 / p.Timeout
	case SSRTR:
		return 1/p.Timeout + (1-p.Loss)/p.Retransmit
	case HS:
		return (1 - p.Loss) / p.Retransmit
	default:
		panic(fmt.Sprintf("singlehop: protocol %v has no (-,1)2 state", m.Proto))
	}
}

// Chain exposes the underlying CTMC (for reporting and tests).
func (m *Model) Chain() *markov.Chain { return m.chain }

// StateID returns the chain ID for a Figure 3 state and whether the state
// exists in this protocol's model.
func (m *Model) StateID(s state) (markov.StateID, bool) {
	return m.ids[s], m.has[s]
}

// rate returns the model's transition rate between two Figure 3 states,
// zero when either state does not exist for the protocol.
func (m *Model) rate(from, to state) float64 {
	if !m.has[from] || !m.has[to] {
		return 0
	}
	return m.chain.Rate(m.ids[from], m.ids[to])
}
