package singlehop

import "fmt"

// Breakdown itemizes the steady-state signaling message rate by message
// class, following eqs. 3–7. Classes a protocol does not use are zero.
type Breakdown struct {
	// Trigger is m_tr: explicit setup/update trigger transmissions (eq. 3).
	Trigger float64
	// Removal is m_rm: explicit removal transmissions (eq. 4).
	Removal float64
	// Refresh is m_r: soft-state refresh transmissions (eq. 5).
	Refresh float64
	// ReliableTrigger is m_rt: trigger retransmissions, trigger ACKs, and
	// false-removal notifications (eq. 6).
	ReliableTrigger float64
	// ReliableRemoval is m_rr: removal retransmissions and ACKs (eq. 7).
	ReliableRemoval float64
}

// Metrics are the paper's evaluation outputs for one protocol/parameter
// point.
type Metrics struct {
	// Inconsistency is I: the fraction of a session during which sender
	// and receiver state disagree (eq. 1).
	Inconsistency float64
	// Lifetime is the mean signaling-state lifetime Υ: expected time from
	// state creation at the sender until removal everywhere.
	Lifetime float64
	// MsgRate is m: the mean steady-state signaling message rate.
	MsgRate float64
	// MessagesPerSession is E[N] = Υ·m (eq. 2).
	MessagesPerSession float64
	// NormalizedRate is Λ = μr·E[N], the paper's "average signaling
	// message rate" axis, comparable across protocols because it divides
	// by the invariant mean sender session length.
	NormalizedRate float64
	// Breakdown itemizes MsgRate by message class.
	Breakdown Breakdown
}

// Solve computes the Metrics for the model: session lifetime from the
// absorption analysis, the inconsistency ratio from the stationary
// distribution of the regenerative (absorbing-state-merged) chain, and
// message rates from eqs. 3–7.
func (m *Model) Solve() (Metrics, error) {
	abs, err := m.chain.Absorption(m.ids[stInit1], m.ids[stAbs])
	if err != nil {
		return Metrics{}, fmt.Errorf("singlehop: %v lifetime analysis: %w", m.Proto, err)
	}
	recurrent := m.chain.Redirect(m.ids[stAbs], m.ids[stInit1])
	pi, err := recurrent.StationaryDistribution()
	if err != nil {
		return Metrics{}, fmt.Errorf("singlehop: %v stationary analysis: %w", m.Proto, err)
	}
	get := func(s state) float64 {
		if !m.has[s] {
			return 0
		}
		return pi[m.ids[s]]
	}

	p := m.Params
	lf := p.FalseRemovalRate(m.Proto)

	var b Breakdown
	// eq. 3: every trigger transmission, successful or lost, from the two
	// in-flight states.
	b.Trigger = get(stInit1)*(m.rate(stInit1, stC)+m.rate(stInit1, stInit2)) +
		get(stCbar1)*(m.rate(stCbar1, stC)+m.rate(stCbar1, stCbar2))

	// eq. 4: explicit removal transmissions (delivered or lost).
	if m.Proto.ExplicitRemoval() {
		b.Removal = get(stRem1) * (m.rate(stRem1, stAbs) + m.rate(stRem1, stRem2))
	}

	// eq. 5: refreshes are generated at rate 1/R while the sender holds
	// state outside the in-flight phases.
	if m.Proto.Refreshes() {
		b.Refresh = (get(stInit2) + get(stC) + get(stCbar2)) / p.Refresh
	}

	// eq. 6: retransmissions in the slow-path states, one ACK per
	// transition into C, and one notification per false removal.
	if m.Proto.ReliableTrigger() {
		retx := (get(stInit2) + get(stCbar2)) / p.Retransmit
		acks := get(stInit1)*m.rate(stInit1, stC) +
			get(stCbar1)*m.rate(stCbar1, stC) +
			get(stInit2)*m.rate(stInit2, stC) +
			get(stCbar2)*m.rate(stCbar2, stC)
		notify := lf * (get(stC) + get(stCbar2))
		b.ReliableTrigger = retx + acks + notify
	}

	// eq. 7: removal retransmissions in (-,1)₂ plus ACKs for resolved
	// removals.
	if m.Proto.ReliableRemoval() {
		b.ReliableRemoval = get(stRem2)/p.Retransmit +
			get(stRem1)*m.rate(stRem1, stAbs) +
			get(stRem2)*m.rate(stRem2, stAbs)
	}

	rate := b.Trigger + b.Removal + b.Refresh + b.ReliableTrigger + b.ReliableRemoval

	met := Metrics{
		Inconsistency:      1 - get(stC),
		Lifetime:           abs.MeanTime,
		MsgRate:            rate,
		MessagesPerSession: abs.MeanTime * rate,
		Breakdown:          b,
	}
	met.NormalizedRate = p.RemovalRate * met.MessagesPerSession
	return met, nil
}

// Analyze is the one-call convenience: build the model for proto at p and
// solve it.
func Analyze(proto Protocol, p Params) (Metrics, error) {
	m, err := Build(proto, p)
	if err != nil {
		return Metrics{}, err
	}
	return m.Solve()
}

// IntegratedCost returns C = α·I + Λ (eq. 8), the weighted sum of
// application inconsistency cost and signaling overhead; the paper uses
// α = 10 msg/s for the Kazaa scenario.
func IntegratedCost(alpha float64, met Metrics) float64 {
	return alpha*met.Inconsistency + met.NormalizedRate
}
