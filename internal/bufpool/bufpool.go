// Package bufpool is a tiny size-capped buffer pool shared by the
// datagram hot paths: wire-message encode buffers in internal/signal and
// in-flight datagram copies in internal/lossy. Steady-state refresh
// traffic recycles the same few buffers instead of allocating one per
// datagram, which is most of what kept the virtual-time experiment
// harness GC-bound.
//
// The pool hands out *Buf wrappers rather than raw slices so that
// returning a buffer never allocates a slice header: the wrapper is the
// pooled object, and the byte slice it carries grows to the workload's
// datagram size and then stays.
package bufpool

import "sync"

// maxPooled caps the capacity of recycled buffers. Anything larger (no
// signaling datagram is) is dropped on Free so one giant buffer cannot
// pin memory in the pool.
const maxPooled = 64 << 10

// Buf is one pooled buffer. Use B freely (typically via append onto
// B[:0]), store the result back into B, and call Free when done.
type Buf struct{ B []byte }

var pool = sync.Pool{New: func() any { return new(Buf) }}

// Get returns a buffer wrapper; its B has unspecified length and
// contents.
func Get() *Buf { return pool.Get().(*Buf) }

// Free recycles b. Callers must not touch b or b.B afterwards.
func (b *Buf) Free() {
	if cap(b.B) > maxPooled {
		b.B = nil
	}
	pool.Put(b)
}
