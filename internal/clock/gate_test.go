package clock

import (
	"sync"
	"testing"
	"time"
)

// TestVirtualTimerResetNoHeapBloat pins the in-place reschedule: a timer
// reset on every poke (the statetable pattern) must not leave cancelled
// events accumulating in the kernel.
func TestVirtualTimerResetNoHeapBloat(t *testing.T) {
	v := NewVirtual()
	fired := 0
	tm := v.NewTimer(func() { fired++ })
	for i := 0; i < 100000; i++ {
		tm.Reset(time.Millisecond)
	}
	if pending := v.k.Pending(); pending != 1 {
		t.Fatalf("100k resets left %d kernel events, want 1", pending)
	}
	v.Run(2 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
}

// TestGateFastPathBalance hammers Enter/Exit from many goroutines while a
// driver repeatedly quiesces, proving the atomic gate neither loses
// wakeups nor miscounts.
func TestGateFastPathBalance(t *testing.T) {
	v := NewVirtual()
	const workers, rounds = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v.Enter()
				v.Exit()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			v.Run(time.Microsecond)
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("driver stalled: lost gate wakeup")
	}
	if busy := v.Busy(); busy != 0 {
		t.Fatalf("gate unbalanced: busy=%d", busy)
	}
}

// TestRunWaitsForGate proves Run still quiesces before firing each event:
// work induced by one event (tracked by Enter/Exit from another
// goroutine) completes before the next event fires.
func TestRunWaitsForGate(t *testing.T) {
	v := NewVirtual()
	release := make(chan struct{})
	var order []string
	var mu sync.Mutex
	v.AfterFunc(time.Millisecond, func() {
		v.Enter()
		go func() {
			<-release
			mu.Lock()
			order = append(order, "worker")
			mu.Unlock()
			v.Exit()
		}()
	})
	v.AfterFunc(2*time.Millisecond, func() {
		mu.Lock()
		order = append(order, "second-event")
		mu.Unlock()
	})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	v.Run(5 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "worker" || order[1] != "second-event" {
		t.Fatalf("order = %v: clock advanced past an un-quiesced gate", order)
	}
}
