package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSystemBasics(t *testing.T) {
	if System.Virtual() {
		t.Fatal("System claims to be virtual")
	}
	if Or(nil) != System {
		t.Fatal("Or(nil) != System")
	}
	v := NewVirtual()
	if Or(v) != Clock(v) {
		t.Fatal("Or(v) != v")
	}
	fired := make(chan struct{})
	tm := System.AfterFunc(time.Millisecond, func() { close(fired) })
	defer tm.Stop()
	select {
	case <-fired:
	case <-time.After(3 * time.Second):
		t.Fatal("system timer never fired")
	}
}

func TestSystemNewTimerUnarmed(t *testing.T) {
	var fired atomic.Bool
	tm := System.NewTimer(func() { fired.Store(true) })
	time.Sleep(5 * time.Millisecond)
	if fired.Load() {
		t.Fatal("unarmed system timer fired")
	}
	tm.Reset(time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("reset system timer never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestVirtualTimeOnlyAdvancesWhenRun(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	if v.Since(start) != 0 {
		t.Fatal("virtual time moved on its own")
	}
	v.Run(42 * time.Second)
	if got := v.Since(start); got != 42*time.Second {
		t.Fatalf("elapsed = %v, want 42s", got)
	}
	if v.Elapsed() != 42*time.Second {
		t.Fatalf("Elapsed = %v", v.Elapsed())
	}
}

func TestVirtualTimerOrderAndReset(t *testing.T) {
	v := NewVirtual()
	var order []int
	v.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	second := v.AfterFunc(15*time.Millisecond, func() { order = append(order, 2) })
	second.Reset(20 * time.Millisecond) // still between 1 and 3
	stopped := v.AfterFunc(25*time.Millisecond, func() { order = append(order, 99) })
	stopped.Stop()
	v.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v", order)
	}
}

func TestVirtualSameTimeFIFO(t *testing.T) {
	v := NewVirtual()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Millisecond, func() { order = append(order, i) })
	}
	v.Run(time.Millisecond)
	for i, got := range order {
		if got != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestVirtualRearmFromCallback(t *testing.T) {
	v := NewVirtual()
	count := 0
	var tick Timer
	tick = v.AfterFunc(time.Second, func() {
		count++
		if count < 5 {
			tick.Reset(time.Second)
		}
	})
	v.Run(10 * time.Second)
	if count != 5 {
		t.Fatalf("periodic rearm fired %d times, want 5", count)
	}
}

// TestVirtualGateBlocksAdvance: an event handing work to another goroutine
// must hold the clock until the goroutine retires it, so induced work
// always completes at the virtual time that caused it.
func TestVirtualGateBlocksAdvance(t *testing.T) {
	v := NewVirtual()
	worker := make(chan time.Time, 1)
	var sawAt atomic.Int64
	go func() {
		for range worker {
			sawAt.Store(int64(v.Since(epoch))) // time when the work ran
			v.Exit()
		}
	}()
	v.AfterFunc(time.Second, func() {
		v.Enter()
		worker <- v.Now()
	})
	v.AfterFunc(2*time.Second, func() {})
	v.Run(time.Hour)
	if got := time.Duration(sawAt.Load()); got != time.Second {
		t.Fatalf("induced work observed virtual time %v, want 1s", got)
	}
}

func TestVirtualDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		v := NewVirtual()
		var fires []time.Duration
		var rearm Timer
		rearm = v.AfterFunc(7*time.Millisecond, func() {
			fires = append(fires, v.Elapsed())
			if len(fires) < 20 {
				rearm.Reset(time.Duration(len(fires)) * time.Millisecond)
			}
		})
		v.AfterFunc(13*time.Millisecond, func() { fires = append(fires, -v.Elapsed()) })
		v.Run(5 * time.Second)
		return fires
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunUntil(t *testing.T) {
	v := NewVirtual()
	done := false
	v.AfterFunc(300*time.Millisecond, func() { done = true })
	if !v.RunUntil(func() bool { return done }, 10*time.Millisecond, time.Second) {
		t.Fatal("RunUntil missed the condition")
	}
	if v.RunUntil(func() bool { return false }, 10*time.Millisecond, 50*time.Millisecond) {
		t.Fatal("RunUntil invented a condition")
	}
}
