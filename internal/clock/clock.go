// Package clock abstracts time for the signaling runtime so the same
// protocol code runs in two modes: live, against the wall clock
// (clock.System), and simulated, against a virtual clock driven by the
// discrete-event kernel of internal/des (clock.NewVirtual).
//
// Every time-dependent layer — internal/statetable's timing wheels,
// internal/lossy's delayed datagram delivery, internal/signal's summary
// sweeper and ack flusher — takes a Clock in its config and schedules all
// deadlines through it. Under clock.System the implementations are thin
// wrappers over package time and behavior is exactly the pre-Clock
// runtime. Under a *Virtual clock no wall time passes at all: deadlines
// become kernel events, the experiment driver pumps them with Run, and a
// simulated hour of 64-peer refresh traffic executes in however long the
// event processing takes — deterministically, which is what lets the
// paper's experiments run on the production code path (internal/sim) and
// lets protocol tests replace sleep/poll loops with virtual waits.
package clock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/des"
)

// Timer is a restartable one-shot timer bound to a callback, mirroring
// time.AfterFunc. Reset replaces any pending expiry; Stop disarms. Like
// time.Timer, stopping does not guarantee a callback that already began
// is not running — callers guard with their own closed flags.
type Timer interface {
	Reset(d time.Duration)
	Stop()
}

// Clock is the time source and timer factory shared by live and virtual
// modes.
type Clock interface {
	// Now returns the current (wall or virtual) time.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// NewTimer returns an unarmed timer that runs fn on expiry.
	NewTimer(fn func()) Timer
	// AfterFunc returns a timer armed to run fn after d.
	AfterFunc(d time.Duration, fn func()) Timer
	// Virtual reports whether this clock is simulated. Virtual callbacks
	// run serialized on the goroutine driving Run, so components may pick
	// an event-driven strategy instead of goroutine sleep loops.
	Virtual() bool
}

// Or returns c, or System when c is nil — the config-default helper used
// by every layer that takes an optional Clock.
func Or(c Clock) Clock {
	if c == nil {
		return System
	}
	return c
}

// System is the wall clock: package time, unchanged semantics.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time                  { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (systemClock) Virtual() bool                   { return false }

func (systemClock) NewTimer(fn func()) Timer {
	t := time.AfterFunc(time.Hour, fn)
	t.Stop() // time has no unarmed AfterFunc constructor; disarm immediately
	return sysTimer{t}
}

func (systemClock) AfterFunc(d time.Duration, fn func()) Timer {
	return sysTimer{time.AfterFunc(d, fn)}
}

type sysTimer struct{ t *time.Timer }

func (t sysTimer) Reset(d time.Duration) { t.t.Reset(d) }
func (t sysTimer) Stop()                 { t.t.Stop() }

// epoch is the fixed origin of every virtual clock: runs are reproducible,
// so virtual time must not depend on when the process started.
var epoch = time.Date(2003, 8, 25, 0, 0, 0, 0, time.UTC) // SIGCOMM '03

// Virtual is a deterministic simulated clock. Timers are events on an
// internal des.Kernel whose time unit is nanoseconds (held exactly by
// float64 for ~104 days of simulated time); nothing fires until a driver
// goroutine calls Run.
//
// Determinism contract: exactly one goroutine drives Run, and all other
// goroutines touching the clocked system (protocol read loops, state-table
// users) only run as a consequence of events the driver fires. The gate
// (Enter/Exit) tracks that induced work — a lossy pipe Enters when it
// hands a datagram to a reader goroutine and Exits when the reader has
// fully processed it — and Run waits for the gate to drain before firing
// the next event, so virtual time never advances while a protocol
// goroutine is mid-message. API calls on endpoints (Install, Remove,
// Close) must happen on the driver goroutine between Run calls.
type Virtual struct {
	mu sync.Mutex // guards the kernel (scheduling vs the driver's pops)
	k  *des.Kernel

	// The gate is deliberately outside mu: Enter and Exit are single
	// atomic ops on the hot path (one pair per delivered datagram batch),
	// blocking only when the driver is actually waiting for quiescence.
	busy    atomic.Int64
	waiting atomic.Bool   // the driver is parked in quiesce
	idle    chan struct{} // buffered wakeup token for the parked driver
	parks   atomic.Int64  // times the driver actually parked (slow path)
}

// NewVirtual returns a virtual clock at the epoch.
func NewVirtual() *Virtual {
	return &Virtual{k: des.New(), idle: make(chan struct{}, 1)}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return epoch.Add(time.Duration(v.k.Now()))
}

// Since returns Now().Sub(t).
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Elapsed returns the virtual time advanced since creation.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return time.Duration(v.k.Now())
}

// Virtual reports true.
func (v *Virtual) Virtual() bool { return true }

// NewTimer returns an unarmed virtual timer running fn on expiry.
func (v *Virtual) NewTimer(fn func()) Timer {
	if fn == nil {
		panic("clock: nil timer callback")
	}
	return &vTimer{v: v, t: v.k.NewTimer(fn)}
}

// AfterFunc returns a virtual timer armed to run fn after d.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) Timer {
	t := v.NewTimer(fn)
	t.Reset(d)
	return t
}

// vTimer owns one kernel event for its whole lifetime: Reset rearms it in
// place (resifting the pending heap node, or pushing the fired one back)
// and Stop detaches it from the heap. A timer that is reset millions of
// times — a state-table shard poke, an ack-flush window — therefore
// allocates nothing after creation and leaves no cancelled tombstones to
// bloat the kernel heap.
type vTimer struct {
	v *Virtual
	t *des.Timer
}

func (t *vTimer) Reset(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.v.mu.Lock()
	t.t.Reset(float64(d))
	t.v.mu.Unlock()
}

func (t *vTimer) Stop() {
	t.v.mu.Lock()
	t.t.Stop()
	t.v.mu.Unlock()
}

// Enter marks one unit of induced work outstanding: a datagram or wakeup
// has been handed to a goroutine that has not finished reacting to it.
// Run will not fire further events until a matching Exit. Enter is a
// single atomic increment.
func (v *Virtual) Enter() {
	v.busy.Add(1)
}

// Exit retires one unit of induced work, waking the driver if it emptied
// the gate while the driver was parked waiting for quiescence.
func (v *Virtual) Exit() {
	n := v.busy.Add(-1)
	if n < 0 {
		panic("clock: Exit without matching Enter")
	}
	if n == 0 && v.waiting.Load() {
		select {
		case v.idle <- struct{}{}:
		default:
		}
	}
}

// Busy returns the number of outstanding gate units — datagrams handed to
// reader goroutines that have not finished reacting. It is 0 whenever the
// system is quiescent; tests use it to prove Enter/Exit stay balanced.
func (v *Virtual) Busy() int { return int(v.busy.Load()) }

// Parks returns how many times the driver took the quiesce slow path —
// actually parking to wait for induced work instead of finding the gate
// already drained. A high park rate relative to events fired means the
// gate, not event processing, bounds simulation throughput; telemetry
// exposes it as the gate-park counter.
func (v *Virtual) Parks() int64 { return v.parks.Load() }

// quiesce blocks until the gate drains. Fast path: one atomic load. Slow
// path: publish the waiting flag and park on the wakeup token, rechecking
// busy after each wakeup (spurious tokens are harmless).
func (v *Virtual) quiesce() {
	if v.busy.Load() == 0 {
		return
	}
	v.parks.Add(1)
	v.waiting.Store(true)
	for v.busy.Load() != 0 {
		<-v.idle
	}
	v.waiting.Store(false)
	select { // drain a stale token left by a racing Exit
	case <-v.idle:
	default:
	}
}

// Run advances virtual time by d, firing every due timer in deterministic
// kernel order. Before each event — and before finally advancing to the
// horizon — it waits for the gate to drain, so all work induced by one
// event completes before the next fires. Callbacks run on the caller's
// goroutine. Run must not be called from inside a callback.
func (v *Virtual) Run(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("clock: negative Run duration %v", d))
	}
	v.mu.Lock()
	horizon := v.k.Now() + float64(d)
	v.mu.Unlock()
	for {
		v.quiesce()
		v.mu.Lock()
		fn := v.k.PopDue(horizon)
		v.mu.Unlock()
		if fn == nil {
			break
		}
		fn()
	}
	v.mu.Lock()
	v.k.RunUntil(horizon) // no due events remain: just advance the clock
	v.mu.Unlock()
}

// RunUntil advances virtual time until cond holds or budget elapses,
// checking every step. It reports whether cond held, and is the virtual
// replacement for sleep/poll loops in tests and demos. cond runs on the
// driver goroutine with the system quiesced.
func (v *Virtual) RunUntil(cond func() bool, step, budget time.Duration) bool {
	if step <= 0 {
		panic("clock: non-positive RunUntil step")
	}
	for spent := time.Duration(0); ; spent += step {
		if cond() {
			return true
		}
		if spent >= budget {
			return false
		}
		v.Run(step)
	}
}
