package multihop

import (
	"fmt"
	"math"

	"softstate/internal/singlehop"
)

// Metrics are the multi-hop evaluation outputs.
type Metrics struct {
	// Inconsistency is I = 1 − π(N,0) (eq. 12): the fraction of time at
	// least one hop disagrees with the sender.
	Inconsistency float64
	// PerHop[k] is the fraction of time hop k+1 is inconsistent
	// (Figure 17): hop k+1 is consistent exactly in states with i ≥ k+1.
	PerHop []float64
	// MsgRate is the mean signaling message rate summed over every link
	// of the path (eqs. 13–17).
	MsgRate float64
	// RecoveryRate is the rate of hard-state recovery episodes (entries
	// into F); zero for the soft protocols.
	RecoveryRate float64
}

// Solve computes the stationary distribution and the paper's metrics.
func (m *Model) Solve() (Metrics, error) {
	pi, err := m.chain.StationaryDistribution()
	if err != nil {
		return Metrics{}, fmt.Errorf("multihop: %v stationary analysis: %w", m.Proto, err)
	}
	p := m.Params
	n := p.Hops

	met := Metrics{
		Inconsistency: 1 - pi[m.fast[n]],
		PerHop:        make([]float64, n),
	}

	// Per-hop inconsistency: hop k (1-based) is consistent in (i,s) iff
	// i ≥ k; the recovery state F is inconsistent for every hop.
	for k := 1; k <= n; k++ {
		consistent := 0.0
		for i := k; i <= n; i++ {
			consistent += pi[m.fast[i]]
		}
		for i := k; i < n; i++ {
			consistent += pi[m.slow[i]]
		}
		met.PerHop[k-1] = 1 - consistent
	}

	// Message accounting. πfastFlight is the probability a trigger is in
	// flight (one transmission per D while it lasts); πslow is the total
	// slow-path mass (retransmissions at 1/Γ where applicable).
	var fastFlight, slowMass float64
	for i := 0; i < n; i++ {
		fastFlight += pi[m.fast[i]]
		slowMass += pi[m.slow[i]]
	}

	triggers := fastFlight / p.Delay
	refreshes := m.refreshTransmissions()
	retx := slowMass / p.Retransmit
	// Hop-by-hop reliability: one ACK per delivered transmission.
	acks := (1-p.Loss)/p.Delay*fastFlight + (1-p.Loss)/p.Retransmit*slowMass

	switch m.Proto {
	case singlehop.SS:
		met.MsgRate = triggers + refreshes
	case singlehop.SSRT:
		met.MsgRate = triggers + refreshes + retx + acks
	case singlehop.HS:
		met.MsgRate = triggers + retx + acks
		if m.hasF {
			// Each recovery episode floods the path twice: the failure
			// notification sweep to the sender and peers, then the flush
			// of orphaned state — ≈2N messages per episode (documented
			// approximation; the paper's eq. 17 recovery term is not
			// legible in the scan).
			met.RecoveryRate = float64(n) * p.FalseRemoval * (1 - pi[m.fault])
			met.MsgRate += met.RecoveryRate * 2 * float64(n)
		}
	}
	return met, nil
}

// refreshTransmissions is the refresh term of eqs. 13–16: refreshes leave
// the sender at rate 1/R and each crosses E_h links in expectation, where
// E_h = (1 − (1−pl)^N)/pl (eqs. 14–15) accounts for early loss.
func (m *Model) refreshTransmissions() float64 {
	if m.Proto == singlehop.HS {
		return 0
	}
	return m.Params.ExpectedRelayHops() / m.Params.Refresh
}

// ExpectedRelayHops returns E_h, the expected number of link transmissions
// consumed by one best-effort end-to-end message on the N-hop path:
// Σ_{k=1..N} (1−pl)^(k−1) = (1 − (1−pl)^N)/pl, degenerating to N when the
// path is lossless.
func (p Params) ExpectedRelayHops() float64 {
	if p.Loss == 0 {
		return float64(p.Hops)
	}
	return (1 - math.Pow(1-p.Loss, float64(p.Hops))) / p.Loss
}

// Analyze builds and solves the model for proto at p.
func Analyze(proto singlehop.Protocol, p Params) (Metrics, error) {
	m, err := Build(proto, p)
	if err != nil {
		return Metrics{}, err
	}
	return m.Solve()
}
