package multihop

import (
	"math"
	"testing"
	"testing/quick"

	"softstate/internal/singlehop"
)

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.Hops != 20 || p.Loss != 0.02 || p.Delay != 0.030 {
		t.Fatalf("defaults = %+v", p)
	}
	if math.Abs(1/p.UpdateRate-60) > 1e-9 {
		t.Fatalf("1/λu = %v, want 60", 1/p.UpdateRate)
	}
	if p.Refresh != 5 || p.Timeout != 15 || math.Abs(p.Retransmit-0.12) > 1e-12 {
		t.Fatalf("timers = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSupported(t *testing.T) {
	want := map[singlehop.Protocol]bool{
		singlehop.SS: true, singlehop.SSRT: true, singlehop.HS: true,
		singlehop.SSER: false, singlehop.SSRTR: false,
	}
	for proto, w := range want {
		if Supported(proto) != w {
			t.Fatalf("Supported(%v) = %v", proto, !w)
		}
	}
	if _, err := Build(singlehop.SSER, DefaultParams()); err == nil {
		t.Fatal("Build accepted an unsupported protocol")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Params{
		func() Params { p := DefaultParams(); p.Hops = 0; return p }(),
		func() Params { p := DefaultParams(); p.Delay = 0; return p }(),
		func() Params { p := DefaultParams(); p.Loss = 1; return p }(),
		func() Params { p := DefaultParams(); p.Refresh = -1; return p }(),
		func() Params { p := DefaultParams(); p.Timeout = 0; return p }(),
		func() Params { p := DefaultParams(); p.Retransmit = math.NaN(); return p }(),
		func() Params { p := DefaultParams(); p.UpdateRate = -0.1; return p }(),
		func() Params { p := DefaultParams(); p.FalseRemoval = -1; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted %+v", i, p)
		}
	}
}

func TestExpectedRelayHops(t *testing.T) {
	p := DefaultParams().WithHops(20)
	want := (1 - math.Pow(0.98, 20)) / 0.02
	if got := p.ExpectedRelayHops(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E_h = %v, want %v", got, want)
	}
	p.Loss = 0
	if got := p.ExpectedRelayHops(); got != 20 {
		t.Fatalf("lossless E_h = %v, want 20", got)
	}
}

func TestTimeoutRatesFormDistribution(t *testing.T) {
	// Σ_j timeoutRate(j)·T = P(timeout anywhere) ≤ 1, each term ≥ 0, and
	// j = 0 reproduces the single-hop λf = pl^(T/R)/T.
	p := DefaultParams()
	var sum float64
	for j := 0; j < p.Hops; j++ {
		r := p.timeoutRate(j)
		if r < 0 {
			t.Fatalf("timeoutRate(%d) = %v < 0", j, r)
		}
		sum += r * p.Timeout
	}
	if sum > 1+1e-12 {
		t.Fatalf("timeout probabilities sum to %v > 1", sum)
	}
	want := math.Pow(p.Loss, p.Timeout/p.Refresh) / p.Timeout
	if got := p.timeoutRate(0); math.Abs(got-want) > 1e-15 {
		t.Fatalf("timeoutRate(0) = %v, want single-hop λf %v", got, want)
	}
}

// losslessConsistentMass returns the exact π(N,0) of the lossless chain:
// a birth chain (i,0) → (i+1,0) at a = 1/D with restart to (0,0) at λu from
// every non-initial state. Balance gives π_i = π_0·ρ^i with ρ = a/(a+λu)
// for i < N and π_N = π_0·(a/λu)·ρ^(N−1).
func losslessConsistentMass(p Params) float64 {
	a, u := 1/p.Delay, p.UpdateRate
	rho := a / (a + u)
	n := p.Hops
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(rho, float64(i))
	}
	top := (a / u) * math.Pow(rho, float64(n-1))
	return top / (sum + top)
}

func TestLosslessStationary(t *testing.T) {
	// With pl = 0 the chain is a clean install cycle: from (0,0) the
	// trigger crosses one hop per exponential delay; updates restart it.
	p := DefaultParams().WithHops(5)
	p.Loss = 0
	for _, proto := range []singlehop.Protocol{singlehop.SS, singlehop.SSRT} {
		met, err := Analyze(proto, p)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - losslessConsistentMass(p)
		if math.Abs(met.Inconsistency-want) > 1e-9 {
			t.Fatalf("%v lossless I = %v, want %v", proto, met.Inconsistency, want)
		}
	}
}

func TestLosslessHSWithoutFaults(t *testing.T) {
	p := DefaultParams().WithHops(5)
	p.Loss = 0
	p.FalseRemoval = 0
	met, err := Analyze(singlehop.HS, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - losslessConsistentMass(p)
	if math.Abs(met.Inconsistency-want) > 1e-9 {
		t.Fatalf("HS lossless I = %v, want %v", met.Inconsistency, want)
	}
	if met.RecoveryRate != 0 {
		t.Fatalf("RecoveryRate = %v, want 0", met.RecoveryRate)
	}
}

func TestPerHopInconsistencyIncreasesWithDistance(t *testing.T) {
	// Figure 17: hops further from the sender are inconsistent more often.
	for _, proto := range []singlehop.Protocol{singlehop.SS, singlehop.SSRT, singlehop.HS} {
		met, err := Analyze(proto, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if len(met.PerHop) != 20 {
			t.Fatalf("PerHop length %d, want 20", len(met.PerHop))
		}
		for k := 1; k < len(met.PerHop); k++ {
			if met.PerHop[k] < met.PerHop[k-1]-1e-12 {
				t.Fatalf("%v: per-hop inconsistency decreased at hop %d", proto, k+1)
			}
		}
		// The last hop's inconsistency equals the end-to-end ratio.
		last := met.PerHop[len(met.PerHop)-1]
		if math.Abs(last-met.Inconsistency) > 1e-9 {
			t.Fatalf("%v: PerHop[N-1] = %v != I = %v", proto, last, met.Inconsistency)
		}
	}
}

func TestFigure17Ordering(t *testing.T) {
	// SS is worst at every hop; SS+RT is comparable to HS with HS slightly
	// better (the paper attributes HS's edge to SS+RT's residual timeouts).
	p := DefaultParams()
	ss, err := Analyze(singlehop.SS, p)
	if err != nil {
		t.Fatal(err)
	}
	ssrt, err := Analyze(singlehop.SSRT, p)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := Analyze(singlehop.HS, p)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ss.PerHop {
		if !(ss.PerHop[k] > ssrt.PerHop[k]) {
			t.Fatalf("hop %d: SS (%v) should exceed SS+RT (%v)", k+1, ss.PerHop[k], ssrt.PerHop[k])
		}
	}
	if !(hs.Inconsistency < ssrt.Inconsistency) {
		t.Fatalf("I(HS)=%v should be slightly below I(SS+RT)=%v", hs.Inconsistency, ssrt.Inconsistency)
	}
	if ssrt.Inconsistency > 3*hs.Inconsistency {
		t.Fatalf("SS+RT (%v) should be comparable to HS (%v)", ssrt.Inconsistency, hs.Inconsistency)
	}
}

func TestInconsistencyGrowsWithHops(t *testing.T) {
	// Figure 18(a).
	for _, proto := range []singlehop.Protocol{singlehop.SS, singlehop.SSRT, singlehop.HS} {
		prev := -1.0
		for _, n := range []int{1, 2, 5, 10, 20} {
			met, err := Analyze(proto, DefaultParams().WithHops(n))
			if err != nil {
				t.Fatal(err)
			}
			if met.Inconsistency <= prev {
				t.Fatalf("%v: I not increasing at N=%d", proto, n)
			}
			prev = met.Inconsistency
		}
	}
}

func TestMessageRateGrowsWithHops(t *testing.T) {
	// Figure 18(b).
	for _, proto := range []singlehop.Protocol{singlehop.SS, singlehop.SSRT, singlehop.HS} {
		prev := -1.0
		for _, n := range []int{1, 2, 5, 10, 20} {
			met, err := Analyze(proto, DefaultParams().WithHops(n))
			if err != nil {
				t.Fatal(err)
			}
			if met.MsgRate <= prev {
				t.Fatalf("%v: message rate not increasing at N=%d", proto, n)
			}
			prev = met.MsgRate
		}
	}
}

func TestFigure18Magnitudes(t *testing.T) {
	// At N = 20 the refresh traffic dominates the soft protocols: E_h/R ≈
	// 3.3 msg/s; HS sits far below (trigger traffic only, ≈0.3 msg/s).
	p := DefaultParams()
	ss, err := Analyze(singlehop.SS, p)
	if err != nil {
		t.Fatal(err)
	}
	if ss.MsgRate < 2 || ss.MsgRate > 5 {
		t.Fatalf("SS msg rate = %v, want ≈3.4", ss.MsgRate)
	}
	hs, err := Analyze(singlehop.HS, p)
	if err != nil {
		t.Fatal(err)
	}
	if hs.MsgRate > 1 {
		t.Fatalf("HS msg rate = %v, want < 1", hs.MsgRate)
	}
	ssrt, err := Analyze(singlehop.SSRT, p)
	if err != nil {
		t.Fatal(err)
	}
	// "Adding a reliable trigger ... introduces little additional
	// signaling overhead" — SS+RT within 35% of SS.
	if ssrt.MsgRate < ss.MsgRate || ssrt.MsgRate > 1.35*ss.MsgRate {
		t.Fatalf("SS+RT rate %v vs SS %v", ssrt.MsgRate, ss.MsgRate)
	}
}

func TestFigure18ConsistencyOrdering(t *testing.T) {
	// SS is the most sensitive to hop count; SS+RT stays close to HS.
	p := DefaultParams()
	ss, _ := Analyze(singlehop.SS, p)
	ssrt, _ := Analyze(singlehop.SSRT, p)
	hs, _ := Analyze(singlehop.HS, p)
	if !(ss.Inconsistency > ssrt.Inconsistency && ssrt.Inconsistency > hs.Inconsistency) {
		t.Fatalf("ordering violated: SS=%v SS+RT=%v HS=%v",
			ss.Inconsistency, ssrt.Inconsistency, hs.Inconsistency)
	}
}

func TestRefreshTimerTradeoffSS(t *testing.T) {
	// Figure 19(a): SS has an interior optimum in R — both very small and
	// very large R hurt (timeout cascades vs slow repair).
	inc := func(r float64) float64 {
		met, err := Analyze(singlehop.SS, DefaultParams().WithRefresh(r))
		if err != nil {
			t.Fatal(err)
		}
		return met.Inconsistency
	}
	mid := inc(0.7)
	if !(inc(0.05) > mid) {
		t.Fatal("tiny R should hurt SS (refresh flood cannot fix timeouts)")
	}
	if !(inc(100) > mid) {
		t.Fatal("huge R should hurt SS (slow repair)")
	}
}

func TestRefreshTimerMessageRateFalls(t *testing.T) {
	// Figure 19(b): message rate decreases with R for SS and SS+RT.
	for _, proto := range []singlehop.Protocol{singlehop.SS, singlehop.SSRT} {
		prev := math.Inf(1)
		for _, r := range []float64{0.5, 1, 5, 20, 100} {
			met, err := Analyze(proto, DefaultParams().WithRefresh(r))
			if err != nil {
				t.Fatal(err)
			}
			if met.MsgRate >= prev {
				t.Fatalf("%v: message rate not decreasing at R=%v", proto, r)
			}
			prev = met.MsgRate
		}
	}
}

func TestHSRateIndependentOfRefresh(t *testing.T) {
	a, _ := Analyze(singlehop.HS, DefaultParams().WithRefresh(0.5))
	b, _ := Analyze(singlehop.HS, DefaultParams().WithRefresh(50))
	if math.Abs(a.MsgRate-b.MsgRate) > 1e-9 || math.Abs(a.Inconsistency-b.Inconsistency) > 1e-12 {
		t.Fatal("HS metrics should not depend on R")
	}
}

func TestSolveInvariantsProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		p := Params{
			Hops:         1 + int(next()*15),
			UpdateRate:   next() * 0.2,
			Delay:        0.005 + next()*0.2,
			Loss:         next() * 0.3,
			Refresh:      0.2 + next()*20,
			FalseRemoval: next() * 0.001,
		}
		p.Timeout = p.Refresh * (1.5 + next()*4)
		p.Retransmit = p.Delay * (2 + next()*6)
		for _, proto := range []singlehop.Protocol{singlehop.SS, singlehop.SSRT, singlehop.HS} {
			met, err := Analyze(proto, p)
			if err != nil {
				return false
			}
			if met.Inconsistency < -1e-9 || met.Inconsistency > 1+1e-9 || met.MsgRate < 0 {
				return false
			}
			for _, h := range met.PerHop {
				if h < -1e-9 || h > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleHopDegenerate(t *testing.T) {
	// With N = 1 the multi-hop chain reduces to setup/update dynamics of
	// the single-hop model with infinite lifetime; sanity: I is small and
	// positive at the defaults.
	met, err := Analyze(singlehop.SS, DefaultParams().WithHops(1))
	if err != nil {
		t.Fatal(err)
	}
	if met.Inconsistency <= 0 || met.Inconsistency > 0.05 {
		t.Fatalf("N=1 I = %v", met.Inconsistency)
	}
}
