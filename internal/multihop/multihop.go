// Package multihop implements the paper's multi-hop analytic models
// (§III-B): a signaling sender installing state along a chain of N
// receivers, modeled as a CTMC over states (i,s) where i is the number of
// consistent hops and s distinguishes the fast path (a trigger in flight,
// s=0) from the slow path (a trigger lost, awaiting repair, s=1), plus a
// recovery state F for the hard-state protocol.
//
// The paper evaluates three protocols in this setting: end-to-end soft
// state (SS), soft state with hop-by-hop reliable triggers (SS+RT), and
// hard state (HS). State lifetime is infinite (μr → 0) so the process is
// stationary; the outputs are the end-to-end inconsistency ratio
// I = 1 − π(N,0) (eq. 12), the per-hop inconsistency of Figure 17, and the
// signaling message rate across all links (eqs. 13–17).
package multihop

import (
	"fmt"
	"math"

	"softstate/internal/markov"
	"softstate/internal/singlehop"
)

// Params holds the multi-hop system parameters (§III-B.2). Hops are
// homogeneous: identical loss and delay per hop, independent losses.
type Params struct {
	// Hops is N, the number of links between the sender and the final
	// receiver.
	Hops int
	// UpdateRate is λu, the sender's state-update rate.
	UpdateRate float64
	// Delay is the per-hop one-way channel delay D.
	Delay float64
	// Loss is the per-hop loss probability pl.
	Loss float64
	// Refresh is the soft-state refresh timer R.
	Refresh float64
	// Timeout is the soft-state state-timeout timer T.
	Timeout float64
	// Retransmit is the per-hop retransmission timer Γ.
	Retransmit float64
	// FalseRemoval is λf, the per-receiver false-removal rate used by the
	// hard-state protocol's external failure signal.
	FalseRemoval float64
}

// DefaultParams returns the paper's multi-hop defaults (§III-B.2): N = 20,
// pl = 0.02 and D = 30 ms per hop, 1/λu = 60 s, R = 5 s, T = 3R, Γ = 4D,
// and λf = pl^(T/R)/T (kept in the single-hop false-removal form so the
// hard-state false-signal pressure is comparable across sections; the
// scanned text is ambiguous about the 1/T factor, see DESIGN.md).
func DefaultParams() Params {
	const d = 0.030
	p := Params{
		Hops:       20,
		UpdateRate: 1.0 / 60,
		Delay:      d,
		Loss:       0.02,
		Refresh:    5,
		Timeout:    15,
		Retransmit: 4 * d,
	}
	p.FalseRemoval = math.Pow(p.Loss, p.Timeout/p.Refresh) / p.Timeout
	return p
}

// WithHops returns a copy with N set.
func (p Params) WithHops(n int) Params {
	p.Hops = n
	return p
}

// WithRefresh returns a copy with R set and T = 3R maintained.
func (p Params) WithRefresh(r float64) Params {
	p.Refresh = r
	p.Timeout = 3 * r
	return p
}

// Validate reports the first structural problem with the parameters.
func (p Params) Validate() error {
	if p.Hops <= 0 {
		return fmt.Errorf("multihop: Hops = %d must be positive", p.Hops)
	}
	pos := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("multihop: invalid %s = %v", name, v)
		}
		return nil
	}
	if err := pos("Delay (D)", p.Delay); err != nil {
		return err
	}
	if err := pos("Refresh (R)", p.Refresh); err != nil {
		return err
	}
	if err := pos("Timeout (T)", p.Timeout); err != nil {
		return err
	}
	if err := pos("Retransmit (Γ)", p.Retransmit); err != nil {
		return err
	}
	if p.Loss < 0 || p.Loss >= 1 || math.IsNaN(p.Loss) {
		return fmt.Errorf("multihop: loss probability pl = %v outside [0,1)", p.Loss)
	}
	if p.UpdateRate < 0 || math.IsNaN(p.UpdateRate) || math.IsInf(p.UpdateRate, 0) {
		return fmt.Errorf("multihop: invalid UpdateRate (λu) = %v", p.UpdateRate)
	}
	if p.FalseRemoval < 0 || math.IsNaN(p.FalseRemoval) || math.IsInf(p.FalseRemoval, 0) {
		return fmt.Errorf("multihop: invalid FalseRemoval (λf) = %v", p.FalseRemoval)
	}
	return nil
}

// Supported reports whether the paper's multi-hop analysis covers proto.
func Supported(proto singlehop.Protocol) bool {
	switch proto {
	case singlehop.SS, singlehop.SSRT, singlehop.HS:
		return true
	default:
		return false
	}
}

// Model is the solved-ready multi-hop CTMC for one protocol.
type Model struct {
	Proto  singlehop.Protocol
	Params Params

	chain *markov.Chain
	fast  []markov.StateID // fast[i] = (i,0), i ∈ [0,N]
	slow  []markov.StateID // slow[i] = (i,1), i ∈ [0,N-1]
	fault markov.StateID   // F (HS only)
	hasF  bool
}

// Build constructs the Figure 15/16 chain for proto at parameters p.
func Build(proto singlehop.Protocol, p Params) (*Model, error) {
	if !Supported(proto) {
		return nil, fmt.Errorf("multihop: protocol %v is not part of the paper's multi-hop analysis (use SS, SS+RT, or HS)", proto)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Hops
	m := &Model{Proto: proto, Params: p, chain: markov.NewChain()}
	m.fast = make([]markov.StateID, n+1)
	m.slow = make([]markov.StateID, n)
	for i := 0; i <= n; i++ {
		m.fast[i] = m.chain.State(fmt.Sprintf("(%d,0)", i))
	}
	for i := 0; i < n; i++ {
		m.slow[i] = m.chain.State(fmt.Sprintf("(%d,1)", i))
	}
	if proto == singlehop.HS {
		m.fault = m.chain.State("F")
		m.hasF = true
	}

	D, pl := p.Delay, p.Loss
	lu := p.UpdateRate

	// Fast path: the in-flight trigger either crosses hop i+1 or is lost.
	for i := 0; i < n; i++ {
		m.chain.AddTransition(m.fast[i], m.fast[i+1], (1-pl)/D)
		m.chain.AddTransition(m.fast[i], m.slow[i], pl/D)
	}

	// Slow path repair (eqs. 10–11): a refresh that survives i+1 hops
	// and/or a hop-by-hop retransmission that survives one hop moves the
	// frontier forward and resumes the fast path.
	for i := 0; i < n; i++ {
		m.chain.AddTransition(m.slow[i], m.fast[i+1], m.repairRate(i))
	}

	// Updates restart installation from scratch (from every other state).
	if lu > 0 {
		for i := 1; i <= n; i++ {
			m.chain.AddTransition(m.fast[i], m.fast[0], lu)
		}
		for i := 0; i < n; i++ {
			m.chain.AddTransition(m.slow[i], m.fast[0], lu)
		}
		if m.hasF {
			m.chain.AddTransition(m.fault, m.fast[0], lu)
		}
	}

	switch proto {
	case singlehop.SS, singlehop.SSRT:
		// Timeout cascade (eq. 9): from the fully consistent state, the
		// first receiver whose timeout expires is j+1, taking every
		// receiver beyond it down too and leaving j consistent hops.
		for j := 0; j < n; j++ {
			m.chain.AddTransition(m.fast[n], m.slow[j], p.timeoutRate(j))
		}
	case singlehop.HS:
		// False removal: any of the N receivers may see a false external
		// signal, entering the recovery state; the sender learns of it
		// after ≈N/2 hops of notification latency and re-installs.
		rate := float64(n) * p.FalseRemoval
		if rate > 0 {
			for i := 0; i <= n; i++ {
				m.chain.AddTransition(m.fast[i], m.fault, rate)
			}
			for i := 0; i < n; i++ {
				m.chain.AddTransition(m.slow[i], m.fault, rate)
			}
			m.chain.AddTransition(m.fault, m.fast[0], 2/(float64(n)*D))
		}
	}
	return m, nil
}

// repairRate returns the (i,1) → (i+1,0) rate: eq. 10 for the soft
// protocols, eq. 11 for hard state.
func (m *Model) repairRate(i int) float64 {
	p := m.Params
	refresh := math.Pow(1-p.Loss, float64(i+1)) / p.Refresh
	retx := (1 - p.Loss) / p.Retransmit
	switch m.Proto {
	case singlehop.SS:
		return refresh
	case singlehop.SSRT:
		return refresh + retx
	default: // HS
		return retx
	}
}

// timeoutRate is eq. 9: the rate at which, from full consistency, the
// first state-timeout happens at receiver j+1 (leaving j consistent hops).
// The probability that all T/R refreshes within a timeout window fail to
// reach receiver k is (1 − (1−pl)^k)^(T/R).
func (p Params) timeoutRate(j int) float64 {
	if p.Loss == 0 {
		return 0
	}
	exp := p.Timeout / p.Refresh
	reach := func(k int) float64 {
		return math.Pow(1-math.Pow(1-p.Loss, float64(k)), exp)
	}
	r := (reach(j+1) - reach(j)) / p.Timeout
	if r < 0 {
		return 0
	}
	return r
}

// Chain exposes the underlying CTMC for tests and reporting.
func (m *Model) Chain() *markov.Chain { return m.chain }
