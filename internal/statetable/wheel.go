package statetable

// The hierarchical timing wheel multiplexes every deadline of a shard onto
// one expiry scan, replacing one time.Timer (and its runtime heap entry)
// per key. Level l has wheelSlots buckets of wheelSlots^l ticks each, so
// four levels of 256 cover 2^32 ticks — 49 days at the 1 ms default tick.
// A timer is bucketed at the lowest level whose span still contains its
// delta; when the clock crosses a level boundary the matching upper bucket
// cascades down, so a timer is rehashed at most wheelLevels-1 times in its
// life and insert/cancel/expire are all O(1).
//
// All wheel methods require the owning shard's lock.

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelSpan is the horizon in ticks; farther deadlines are clamped to
	// it and simply rehash on the way in.
	wheelSpan = int64(1) << (wheelBits * wheelLevels)
)

// Timer lifecycle states.
const (
	timerIdle   uint8 = iota // not scheduled
	timerArmed               // linked into a wheel bucket
	timerQueued              // collected for firing, callback pending
)

// timerNode is one schedulable deadline, embedded in its entry so arming a
// timer never allocates. Bucket membership is kernel-hlist style: pprev
// points at the previous node's next field (or the bucket head), making
// unlink O(1) with no per-bucket sentinels. qnext is separate linkage for
// the expired chain, so a callback rescheduling a still-queued node cannot
// corrupt the chain being drained.
type timerNode[V any] struct {
	next     *timerNode[V]
	pprev    **timerNode[V]
	qnext    *timerNode[V]
	owner    *entry[V]
	deadline int64 // absolute tick
	kind     TimerKind
	state    uint8
}

// wheel is the per-shard hierarchical timing wheel.
type wheel[V any] struct {
	now   int64 // last tick advanced to
	count int   // armed timers
	slots [wheelLevels][wheelSlots]*timerNode[V]
}

// schedule (re)arms n for the given absolute tick. Past deadlines are
// pulled to the next tick so they fire on the next advance.
func (w *wheel[V]) schedule(n *timerNode[V], deadline int64) {
	w.cancel(n)
	if deadline <= w.now {
		deadline = w.now + 1
	}
	if deadline-w.now >= wheelSpan {
		deadline = w.now + wheelSpan - 1
	}
	n.deadline = deadline
	w.insert(n)
	n.state = timerArmed
	w.count++
}

// cancel disarms n: an armed node is unlinked from its bucket, a queued
// node's pending fire is suppressed.
func (w *wheel[V]) cancel(n *timerNode[V]) {
	switch n.state {
	case timerArmed:
		w.unlink(n)
		w.count--
	case timerQueued:
		// Still on the expired chain being drained; the drain loop skips
		// non-queued nodes, so flipping the state is enough.
	}
	n.state = timerIdle
}

// insert buckets n by its deadline. delta ≥ 0 relative to w.now; delta 0
// (only reachable while cascading) lands in the level-0 bucket the current
// advance step is about to expire.
func (w *wheel[V]) insert(n *timerNode[V]) {
	delta := n.deadline - w.now
	level := 0
	for level < wheelLevels-1 && delta >= int64(1)<<(wheelBits*(level+1)) {
		level++
	}
	head := &w.slots[level][(n.deadline>>(wheelBits*level))&wheelMask]
	n.next = *head
	if n.next != nil {
		n.next.pprev = &n.next
	}
	*head = n
	n.pprev = head
}

func (w *wheel[V]) unlink(n *timerNode[V]) {
	*n.pprev = n.next
	if n.next != nil {
		n.next.pprev = n.pprev
	}
	n.next = nil
	n.pprev = nil
}

// advance moves the wheel to the target tick and returns the chain (via
// qnext, in expiry order) of nodes whose deadlines passed. Returned nodes
// are in state timerQueued; the caller fires each one that is still queued
// when its turn comes. Spans that provably hold no deadline and no
// occupied cascade are crossed in one step, so catching up after a long
// sleep costs O(events), not O(ticks elapsed).
func (w *wheel[V]) advance(target int64) *timerNode[V] {
	var head, tail *timerNode[V]
	for w.now < target {
		if w.count == 0 {
			w.now = target // nothing armed: the rest of the span is empty
			break
		}
		if target-w.now >= wheelSlots {
			// Catching up over a rotation or more: jump straight to the
			// next tick holding a deadline or an occupied cascade.
			next := w.nextEventTick()
			if next > target {
				w.now = target
				break
			}
			if next-1 > w.now {
				w.now = next - 1
			}
		}
		w.now++
		// Cascade every level whose period boundary this tick crosses,
		// highest first so re-buckets settle in one pass.
		for l := wheelLevels - 1; l >= 1; l-- {
			if w.now&(int64(1)<<(wheelBits*l)-1) != 0 {
				continue
			}
			slot := &w.slots[l][(w.now>>(wheelBits*l))&wheelMask]
			n := *slot
			*slot = nil
			for n != nil {
				next := n.next
				w.insert(n)
				n = next
			}
		}
		// Expire the level-0 bucket for this tick.
		slot := &w.slots[0][w.now&wheelMask]
		for n := *slot; n != nil; {
			next := n.next
			n.next = nil
			n.pprev = nil
			n.state = timerQueued
			n.qnext = nil
			if tail == nil {
				head, tail = n, n
			} else {
				tail.qnext = n
				tail = n
			}
			w.count--
			n = next
		}
		*slot = nil
	}
	return head
}

// nextEventTick returns the next absolute tick at which advance has work:
// the first occupied level-0 bucket within the current rotation, or the
// earliest cascade that drains an occupied upper-level bucket. Boundaries
// with nothing to cascade are skipped, so a shard holding only far-future
// timers sleeps until the cascade that actually moves them instead of
// waking every rotation. Only meaningful when count > 0.
//
// The upper-level scan is exact: a level-l node's delta was below
// wheelSlots^(l+1) ticks when bucketed and only shrinks afterwards, so its
// bucket index is within one rotation of the current position and the
// first occupied bucket ahead is the one that cascades soonest, at tick
// index<<(wheelBits·l).
func (w *wheel[V]) nextEventTick() int64 {
	best := int64(0)
	for i := int64(1); i < wheelSlots; i++ {
		tick := w.now + i
		if w.slots[0][tick&wheelMask] != nil {
			best = tick
			break
		}
	}
	for l := 1; l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		cur := w.now >> shift
		if best != 0 && best <= (cur+1)<<shift {
			break // best precedes any cascade at this level or above
		}
		for i := int64(1); i <= wheelSlots; i++ {
			idx := cur + i
			if w.slots[l][idx&wheelMask] != nil {
				if t := idx << shift; best == 0 || t < best {
					best = t
				}
				break
			}
		}
	}
	if best == 0 {
		return w.now + wheelSpan // unreachable while count > 0
	}
	return best
}
