package statetable

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"softstate/internal/clock"
)

// digVal is the test payload: the digest folds (key, value, seq), which
// mirrors how internal/signal digests its sender and receiver entries.
type digVal struct {
	value []byte
	seq   uint64
	// skip models entries excluded from the digest (a sender entry whose
	// removal is in flight).
	skip bool
}

const digTestBuckets = 8

func digTestFunc(key string, v *digVal) (uint32, uint64) {
	if v.skip {
		return 0, 0
	}
	return DigestBucketOf(key, digTestBuckets), DigestKV(key, v.value, v.seq)
}

// scratchSums recomputes the digest from a full table walk — the ground
// truth the incremental maintenance must match.
func scratchSums(tbl *Table[digVal]) []uint64 {
	out := make([]uint64, digTestBuckets)
	tbl.Range(func(key string, v *digVal) bool {
		if !v.skip {
			out[DigestBucketOf(key, digTestBuckets)] ^= DigestKV(key, v.value, v.seq)
		}
		return true
	})
	return out
}

func sumsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDigestIncrementalMatchesScratch churns a digest-maintaining table
// through inserts, payload updates, skip transitions, and deletes, and
// checks after every step that the incrementally maintained sums equal a
// from-scratch recompute.
func TestDigestIncrementalMatchesScratch(t *testing.T) {
	tbl := New(Config[digVal]{
		Shards:        4,
		DigestFunc:    digTestFunc,
		DigestBuckets: digTestBuckets,
	})
	defer tbl.Close()

	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("flow/%05d", i)
	}
	for step := 0; step < 2000; step++ {
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(5) {
		case 0, 1: // install / re-install
			val := []byte(fmt.Sprintf("v%d", rng.Intn(10)))
			seq := uint64(rng.Intn(1000))
			tbl.Upsert(key, func(v *digVal, created bool, tc TimerControl[digVal]) {
				v.value, v.seq, v.skip = val, seq, false
				if !created {
					tc.MarkDigestDirty()
				}
			})
		case 2: // payload update
			tbl.Update(key, func(v *digVal, tc TimerControl[digVal]) {
				v.seq++
				tc.MarkDigestDirty()
			})
		case 3: // skip transition (removal in flight)
			tbl.Update(key, func(v *digVal, tc TimerControl[digVal]) {
				v.skip = !v.skip
				tc.MarkDigestDirty()
			})
		case 4: // delete
			tbl.Delete(key)
		}
		if step%50 == 0 {
			if got, want := tbl.DigestSums(), scratchSums(tbl); !sumsEqual(got, want) {
				t.Fatalf("step %d: incremental %v != scratch %v", step, got, want)
			}
		}
	}
	if got, want := tbl.DigestSums(), scratchSums(tbl); !sumsEqual(got, want) {
		t.Fatalf("final: incremental %v != scratch %v", got, want)
	}
}

// TestDigestUpdateNeedsDirtyMark documents the contract: a payload
// change without MarkDigestDirty leaves the cached contribution stale,
// and the next marked mutation re-derives it from the current payload.
func TestDigestUpdateNeedsDirtyMark(t *testing.T) {
	tbl := New(Config[digVal]{DigestFunc: digTestFunc, DigestBuckets: digTestBuckets})
	defer tbl.Close()
	tbl.Upsert("k", func(v *digVal, _ bool, _ TimerControl[digVal]) {
		v.value, v.seq = []byte("a"), 1
	})
	before := tbl.DigestSums()
	tbl.Update("k", func(v *digVal, _ TimerControl[digVal]) { v.seq = 2 })
	if got := tbl.DigestSums(); !sumsEqual(got, before) {
		t.Fatalf("unmarked update changed digest: %v -> %v", before, got)
	}
	tbl.Update("k", func(v *digVal, tc TimerControl[digVal]) { tc.MarkDigestDirty() })
	if got, want := tbl.DigestSums(), scratchSums(tbl); !sumsEqual(got, want) {
		t.Fatalf("marked update did not re-derive digest: %v, want %v", got, want)
	}
}

// TestDigestExpiryAndBytesPaths covers the two remaining mutation paths:
// timer expiry (drop and payload change inside OnExpire) and the
// byte-key renewal path, under the virtual clock.
func TestDigestExpiryAndBytesPaths(t *testing.T) {
	v := clock.NewVirtual()
	tbl := New(Config[digVal]{
		Shards:        2,
		Clock:         v,
		DigestFunc:    digTestFunc,
		DigestBuckets: digTestBuckets,
		OnExpire: func(key string, kind TimerKind, val *digVal, tc TimerControl[digVal]) {
			if kind == 0 {
				tc.Delete()
				return
			}
			val.seq += 100
			tc.MarkDigestDirty()
		},
	})
	defer tbl.Close()

	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%02d", i)
		tbl.Upsert(key, func(dv *digVal, _ bool, tc TimerControl[digVal]) {
			dv.value, dv.seq = []byte("x"), uint64(i)
			if i%2 == 0 {
				tc.Schedule(0, 10*time.Millisecond) // drop
			} else {
				tc.Schedule(1, 10*time.Millisecond) // payload bump
			}
		})
	}
	// Byte-key renewal with a payload change.
	tbl.UpdateBytes([]byte("k01"), func(dv *digVal, tc TimerControl[digVal]) {
		dv.seq = 999
		tc.MarkDigestDirty()
	})
	if got, want := tbl.DigestSums(), scratchSums(tbl); !sumsEqual(got, want) {
		t.Fatalf("pre-expiry: incremental %v != scratch %v", got, want)
	}
	v.Run(20 * time.Millisecond)
	if tbl.Len() != 4 {
		t.Fatalf("after expiry: %d entries, want 4", tbl.Len())
	}
	if got, want := tbl.DigestSums(), scratchSums(tbl); !sumsEqual(got, want) {
		t.Fatalf("post-expiry: incremental %v != scratch %v", got, want)
	}

	// RangeDigest lists exactly the contributing entries.
	n := 0
	tbl.RangeDigest(func(key string, dv *digVal, bucket uint32, sum uint64) bool {
		if want := DigestKV(key, dv.value, dv.seq); sum != want {
			t.Fatalf("RangeDigest %q: sum %d, want %d", key, sum, want)
		}
		if want := DigestBucketOf(key, digTestBuckets); bucket != want {
			t.Fatalf("RangeDigest %q: bucket %d, want %d", key, bucket, want)
		}
		n++
		return true
	})
	if n != 4 {
		t.Fatalf("RangeDigest visited %d entries, want 4", n)
	}
}

// TestDigestKVBoundaries: the length prefix keeps (key, value) splits
// distinct, seq participates, and 0 is never returned.
func TestDigestKVBoundaries(t *testing.T) {
	if DigestKV("ab", []byte("c"), 1) == DigestKV("a", []byte("bc"), 1) {
		t.Fatal("key/value boundary ambiguity")
	}
	if DigestKV("k", nil, 1) == DigestKV("k", nil, 2) {
		t.Fatal("seq does not participate")
	}
	if DigestKV("", nil, 0) == 0 {
		t.Fatal("digest of empty entry is 0")
	}
	if DigestBucketOf("flow/1", digTestBuckets) >= digTestBuckets {
		t.Fatal("bucket out of range")
	}
}

// BenchmarkDigestMaintenance proves digest upkeep is allocation-free on
// the renewal hot path: an Update that bumps the payload and re-derives
// the entry's contribution.
func BenchmarkDigestMaintenance(b *testing.B) {
	tbl := New(Config[digVal]{
		Shards:        4,
		DigestFunc:    digTestFunc,
		DigestBuckets: digTestBuckets,
	})
	defer tbl.Close()
	tbl.Upsert("flow/1", func(v *digVal, _ bool, _ TimerControl[digVal]) {
		v.value = []byte("10Mbps")
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Update("flow/1", func(v *digVal, tc TimerControl[digVal]) {
			v.seq++
			tc.MarkDigestDirty()
		})
	}
}
