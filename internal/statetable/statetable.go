// Package statetable is a sharded, concurrent soft-state key table with a
// hierarchical timing wheel per shard. It is the scaling substrate for
// internal/signal: where the naive runtime kept one mutex and one
// time.Timer per key per endpoint, the table hashes keys (FNV-1a) across a
// power-of-two number of shards, guards each shard with its own lock, and
// multiplexes every refresh/timeout/retransmit deadline of a shard onto a
// single goroutine driving a timing wheel — millions of keys cost millions
// of map entries, not millions of timers or goroutines.
//
// Each entry owns NumTimerKinds independently schedulable timers whose
// nodes are embedded in the entry, so arming, rearming, and expiry never
// allocate. Expiry callbacks and the closures passed to Upsert and Update
// run with the entry's shard locked; they mutate the entry and its timers
// through the TimerControl handle and must not call other Table methods
// (that would deadlock on the same shard).
package statetable

import (
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/clock"
)

// TimerKind selects one of an entry's independent timer slots.
type TimerKind uint8

// NumTimerKinds is how many timers each entry owns (kinds 0 and 1). Two
// covers every endpoint in internal/signal: a sender arms refresh and
// retransmit, a receiver arms state-timeout.
const NumTimerKinds = 2

// DefaultShards is the shard count used when Config.Shards is 0.
const DefaultShards = 16

// DefaultTick is the wheel granularity used when Config.Tick is 0: timers
// fire within about one tick of their deadline.
const DefaultTick = time.Millisecond

// DefaultDigestBuckets is the digest bucket count used when
// Config.DigestBuckets is 0 and a DigestFunc is set.
const DefaultDigestBuckets = 16

// digDropped marks an entry already removed from its shard, so a
// deferred digest refresh cannot resurrect its contribution.
const digDropped = ^uint32(0)

// ExpireFunc is called when a timer fires. It runs on the shard's wheel
// goroutine with the shard locked; use tc to reschedule, cancel, or delete,
// and do not call Table methods from inside it.
type ExpireFunc[V any] func(key string, kind TimerKind, v *V, tc TimerControl[V])

// Config parameterizes a Table.
type Config[V any] struct {
	// Shards is the shard count, rounded up to a power of two
	// (DefaultShards when 0). Each shard has one lock, one wheel, and one
	// goroutine.
	Shards int
	// Tick is the timing-wheel granularity (DefaultTick when 0).
	Tick time.Duration
	// OnExpire handles timer expiry. A Table without it still works as a
	// plain sharded map, but scheduled timers fire into nothing.
	OnExpire ExpireFunc[V]
	// Clock is the time source driving the wheels (clock.System when nil).
	// Under clock.System each shard runs its own sleep-loop goroutine;
	// under a virtual clock the shards are event-driven — each wheel
	// advance is a clock timer callback on the simulation driver, so a
	// table holds millions of deadlines with zero goroutines and zero wall
	// sleeps.
	Clock clock.Clock
	// DigestFunc, when non-nil, turns on incremental table digests — the
	// convergence auditor's substrate. It maps an entry to its digest
	// bucket and 64-bit contribution (sum 0 excludes the entry); the
	// table XOR-folds contributions into per-shard, per-bucket arrays on
	// every mutation, so reading the whole table's digest is O(shards ×
	// buckets) regardless of entry count. The function runs under the
	// shard lock and must be pure. Because the table cannot see inside V,
	// closures that change an entry's digest-relevant payload must call
	// TimerControl.MarkDigestDirty; inserts and deletes are tracked
	// automatically.
	DigestFunc func(key string, v *V) (bucket uint32, sum uint64)
	// DigestBuckets is the digest bucket count (DefaultDigestBuckets
	// when 0; capped at 1<<16). More buckets localize a divergence to
	// fewer keys at census time.
	DigestBuckets int
}

// entry is one key's slot: the caller's value plus the embedded timers
// and its cached digest contribution (bucket index and XOR-folded sum),
// which is what lets a mutation update the shard digest in O(1).
type entry[V any] struct {
	key       string
	value     V
	dig       uint64
	digBucket uint32
	timers    [NumTimerKinds]timerNode[V]
}

// shard is one lock domain: a map partition plus its timing wheel.
type shard[V any] struct {
	mu       sync.Mutex
	entries  map[string]*entry[V]
	wheel    wheel[V]
	nextWake int64 // absolute tick the wheel goroutine sleeps until
	needPoke bool  // a deadline earlier than nextWake was scheduled
	pokeTick int64 // earliest such deadline (virtual mode reschedules to it)
	wake     chan struct{}
	vtimer   clock.Timer // virtual mode: drives this shard's wheel advances
	dig      []uint64    // per-bucket XOR of entry contributions (digests on)
	digDirty bool        // the entry under mutation changed its payload
}

// Table is the sharded soft-state table. All methods are safe for
// concurrent use.
type Table[V any] struct {
	cfg     Config[V]
	clk     clock.Clock
	virtual bool
	tick    time.Duration
	start   time.Time
	shards  []shard[V]
	mask    uint32
	size    atomic.Int64
	done    chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// New creates a table and starts its shard goroutines.
func New[V any](cfg Config[V]) *Table[V] {
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = DefaultTick
	}
	if cfg.DigestFunc != nil {
		if cfg.DigestBuckets <= 0 {
			cfg.DigestBuckets = DefaultDigestBuckets
		}
		if cfg.DigestBuckets > 1<<16 {
			cfg.DigestBuckets = 1 << 16
		}
	}
	clk := clock.Or(cfg.Clock)
	t := &Table[V]{
		cfg:     cfg,
		clk:     clk,
		virtual: clk.Virtual(),
		tick:    tick,
		start:   clk.Now(),
		shards:  make([]shard[V], shards),
		mask:    uint32(shards - 1),
		done:    make(chan struct{}),
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.entries = make(map[string]*entry[V])
		sh.nextWake = int64(1)<<62 - 1
		sh.wake = make(chan struct{}, 1)
		if cfg.DigestFunc != nil {
			sh.dig = make([]uint64, cfg.DigestBuckets)
		}
		if t.virtual {
			// Event-driven: the clock calls fireShard at each due tick; no
			// goroutine, no sleeps. The timer is armed by unlockAndPoke the
			// first time a deadline is scheduled.
			sh.vtimer = clk.NewTimer(t.shardFirer(sh))
			continue
		}
		t.wg.Add(1)
		go t.runShard(sh)
	}
	return t
}

// shardFirer binds fireShard to one shard for the virtual clock.
func (t *Table[V]) shardFirer(sh *shard[V]) func() {
	return func() { t.fireShard(sh) }
}

// NumShards returns the (power-of-two) shard count.
func (t *Table[V]) NumShards() int { return len(t.shards) }

// Len returns the number of entries.
func (t *Table[V]) Len() int { return int(t.size.Load()) }

// WheelDepth returns the number of armed timers on shard i's wheel — the
// load metric telemetry exposes per shard. It takes the shard lock
// briefly; scrape-time use only.
func (t *Table[V]) WheelDepth(i int) int {
	sh := &t.shards[i]
	sh.mu.Lock()
	n := sh.wheel.count
	sh.mu.Unlock()
	return n
}

// WheelDepths returns every shard's armed-timer count, index-aligned with
// shard numbers.
func (t *Table[V]) WheelDepths() []int {
	out := make([]int, len(t.shards))
	for i := range t.shards {
		out[i] = t.WheelDepth(i)
	}
	return out
}

// Close stops the shard goroutines and waits for in-flight expiry
// callbacks to finish. Timers never fire after Close returns; the map
// contents remain readable. In virtual mode Close must run on the clock's
// driver goroutine (fireShard re-checks the closed flag under the shard
// lock for the pending-callback race).
func (t *Table[V]) Close() {
	if t.closed.Swap(true) {
		return
	}
	close(t.done)
	if t.virtual {
		for i := range t.shards {
			t.shards[i].vtimer.Stop()
		}
		return
	}
	t.wg.Wait()
}

// Hash32 is the allocation-free FNV-1a hash used to pick a shard; other
// sharded structures in the runtime (e.g. the per-destination peer table
// in internal/signal) reuse it so the repo has one string hash.
func Hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Hash32Bytes is Hash32 for a byte-slice key.
func Hash32Bytes(s []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (t *Table[V]) shardOf(key string) *shard[V] {
	return &t.shards[Hash32(key)&t.mask]
}

// tickNow converts clock progress to wheel ticks.
func (t *Table[V]) tickNow() int64 {
	return int64(t.clk.Since(t.start) / t.tick)
}

// deadlineTick converts a relative delay to an absolute tick, rounding up
// so timers never fire early.
func (t *Table[V]) deadlineTick(delay time.Duration) int64 {
	if delay < 0 {
		delay = 0
	}
	return int64((t.clk.Since(t.start) + delay + t.tick - 1) / t.tick)
}

// Upsert locks the key's shard and calls fn with the entry's value,
// creating the entry first if absent (created reports which). fn may be
// nil to just ensure presence.
func (t *Table[V]) Upsert(key string, fn func(v *V, created bool, tc TimerControl[V])) {
	sh := t.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		e = &entry[V]{key: key}
		for i := range e.timers {
			e.timers[i].owner = e
			e.timers[i].kind = TimerKind(i)
		}
		sh.entries[key] = e
		t.size.Add(1)
	}
	if fn != nil {
		fn(&e.value, !ok, TimerControl[V]{t: t, sh: sh, e: e})
	}
	if t.cfg.DigestFunc != nil && (!ok || sh.digDirty) {
		t.refreshDigestLocked(sh, e)
	}
	t.unlockAndPoke(sh)
}

// Update locks the key's shard and calls fn if the entry exists, reporting
// whether it did.
func (t *Table[V]) Update(key string, fn func(v *V, tc TimerControl[V])) bool {
	sh := t.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok && fn != nil {
		fn(&e.value, TimerControl[V]{t: t, sh: sh, e: e})
		if sh.digDirty {
			t.refreshDigestLocked(sh, e)
		}
	}
	t.unlockAndPoke(sh)
	return ok
}

// UpdateBytes is Update for a byte-slice key: the lookup converts key in
// place (no string allocation), so decode paths that renew existing
// entries straight out of a datagram buffer — a receiver absorbing
// summary refreshes — touch the table allocation-free. It never inserts.
func (t *Table[V]) UpdateBytes(key []byte, fn func(v *V, tc TimerControl[V])) bool {
	sh := &t.shards[Hash32Bytes(key)&t.mask]
	sh.mu.Lock()
	e, ok := sh.entries[string(key)]
	if ok && fn != nil {
		fn(&e.value, TimerControl[V]{t: t, sh: sh, e: e})
		if sh.digDirty {
			t.refreshDigestLocked(sh, e)
		}
	}
	t.unlockAndPoke(sh)
	return ok
}

// Get returns a copy of the value stored for key.
func (t *Table[V]) Get(key string) (V, bool) {
	sh := t.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		return e.value, true
	}
	var zero V
	return zero, false
}

// Delete removes key, cancelling its timers, and reports whether it
// existed.
func (t *Table[V]) Delete(key string) bool {
	sh := t.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return false
	}
	t.dropLocked(sh, e)
	return true
}

// Schedule arms the kind timer of key to fire after delay, reporting
// whether the key exists. Rearming an armed timer moves its deadline.
func (t *Table[V]) Schedule(key string, kind TimerKind, delay time.Duration) bool {
	return t.Update(key, func(_ *V, tc TimerControl[V]) { tc.Schedule(kind, delay) })
}

// Cancel disarms the kind timer of key, reporting whether the key exists.
// After Cancel returns, the timer's callback either already completed or
// will never run.
func (t *Table[V]) Cancel(key string, kind TimerKind) bool {
	return t.Update(key, func(_ *V, tc TimerControl[V]) { tc.Cancel(kind) })
}

// Range calls fn for every entry until fn returns false, locking one shard
// at a time. fn must not call Table methods. Entries added or removed
// concurrently in other shards may or may not be seen.
func (t *Table[V]) Range(fn func(key string, v *V) bool) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if !fn(e.key, &e.value) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// Armed reports how many kind timers are currently armed (scheduled and
// not yet fired or cancelled) across all shards. It walks every entry one
// shard lock at a time, so it is a diagnostic — tests use it to prove a
// retransmission engine left no stale timers behind after convergence —
// not a hot-path counter.
func (t *Table[V]) Armed(kind TimerKind) int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.timers[kind].state != timerIdle {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// TimersArmed counts the armed timers of every kind in a single walk —
// the same diagnostic traversal as Armed, but one pass returns the whole
// audit, which is what invariant checkers run after every adversarial
// step want.
func (t *Table[V]) TimersArmed() [NumTimerKinds]int {
	var n [NumTimerKinds]int
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			for k := range e.timers {
				if e.timers[k].state != timerIdle {
					n[k]++
				}
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// NumDigestBuckets returns the digest bucket count, or 0 when the table
// maintains no digests.
func (t *Table[V]) NumDigestBuckets() int {
	if t.cfg.DigestFunc == nil {
		return 0
	}
	return t.cfg.DigestBuckets
}

// DigestSums returns the table's per-bucket digest sums — the XOR across
// shards of every entry's contribution. O(shards × buckets), independent
// of entry count; nil when the table maintains no digests. Two tables
// using the same DigestFunc semantics hold the same state iff their sums
// match bucket for bucket (modulo XOR collisions, which a 64-bit fold
// makes negligible).
func (t *Table[V]) DigestSums() []uint64 {
	if t.cfg.DigestFunc == nil {
		return nil
	}
	out := make([]uint64, t.cfg.DigestBuckets)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for b, s := range sh.dig {
			out[b] ^= s
		}
		sh.mu.Unlock()
	}
	return out
}

// RangeDigest calls fn for every entry with a nonzero cached digest
// contribution, one shard lock at a time — the census detail round's
// walk. Like Range, fn must not call Table methods.
func (t *Table[V]) RangeDigest(fn func(key string, v *V, bucket uint32, sum uint64) bool) {
	if t.cfg.DigestFunc == nil {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.dig == 0 {
				continue
			}
			if !fn(e.key, &e.value, e.digBucket, e.dig) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// DigestKV is the runtime's canonical digest fold: FNV-1a over the key
// (length-prefixed), the value bytes, and the sequence number. Both ends
// of a signaling link digest (user key, installed value, accepted seq)
// with it, which is what makes their table digests comparable. The
// result is never 0 (0 means "entry excluded" to the digest machinery).
func DigestKV(key string, value []byte, seq uint64) uint64 {
	const (
		offset64 = 14695981039346269563
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	// Length prefix keeps (key, value) boundaries unambiguous.
	for n := uint(0); n < 64; n += 8 {
		h ^= uint64(len(key)) >> n & 0xFF
		h *= prime64
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	for i := 0; i < len(value); i++ {
		h ^= uint64(value[i])
		h *= prime64
	}
	for n := uint(0); n < 64; n += 8 {
		h ^= seq >> n & 0xFF
		h *= prime64
	}
	if h == 0 {
		return 1
	}
	return h
}

// DigestBucketOf maps a key to its digest bucket — shared by every
// digest-maintaining table so the same user key lands in the same
// bucket on both ends of a link regardless of table-internal prefixes.
func DigestBucketOf(key string, buckets int) uint32 {
	if buckets <= 0 {
		return 0
	}
	return Hash32(key) % uint32(buckets)
}

// Keys returns all keys in no particular order.
func (t *Table[V]) Keys() []string {
	out := make([]string, 0, t.Len())
	t.Range(func(key string, _ *V) bool {
		out = append(out, key)
		return true
	})
	return out
}

// dropLocked removes e from its shard; callers hold sh.mu.
func (t *Table[V]) dropLocked(sh *shard[V], e *entry[V]) {
	for i := range e.timers {
		sh.wheel.cancel(&e.timers[i])
	}
	if t.cfg.DigestFunc != nil && e.digBucket != digDropped {
		sh.dig[e.digBucket] ^= e.dig
		e.dig = 0
		e.digBucket = digDropped // a pending dirty refresh must not resurrect it
		sh.digDirty = false
	}
	delete(sh.entries, e.key)
	t.size.Add(-1)
}

// refreshDigestLocked re-derives e's digest contribution and swaps it
// into the shard's bucket array; callers hold sh.mu. XOR makes the swap
// order-free: the stale contribution cancels itself out.
func (t *Table[V]) refreshDigestLocked(sh *shard[V], e *entry[V]) {
	sh.digDirty = false
	if e.digBucket == digDropped {
		return
	}
	bucket, sum := t.cfg.DigestFunc(e.key, &e.value)
	if bucket >= uint32(len(sh.dig)) {
		bucket %= uint32(len(sh.dig))
	}
	sh.dig[e.digBucket] ^= e.dig
	sh.dig[bucket] ^= sum
	e.dig, e.digBucket = sum, bucket
}

// unlockAndPoke releases the shard and wakes its wheel driver if an
// earlier deadline was scheduled while the lock was held: in wall mode a
// channel poke to the shard goroutine, in virtual mode a timer reset to
// the new earliest tick (the clock serializes the callback against other
// events, so no goroutine is needed).
func (t *Table[V]) unlockAndPoke(sh *shard[V]) {
	if t.virtual {
		if sh.needPoke {
			sh.needPoke = false
			sh.nextWake = sh.pokeTick
			sh.vtimer.Reset(t.start.Add(time.Duration(sh.pokeTick) * t.tick).Sub(t.clk.Now()))
		}
		sh.mu.Unlock()
		return
	}
	poke := sh.needPoke
	sh.needPoke = false
	sh.mu.Unlock()
	if poke {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
}

// TimerControl mutates one entry's timers and lifetime. It is only valid
// inside the closure or expiry callback it was passed to, while the shard
// lock is held.
type TimerControl[V any] struct {
	t  *Table[V]
	sh *shard[V]
	e  *entry[V]
}

// Key returns the entry's key.
func (tc TimerControl[V]) Key() string { return tc.e.key }

// Schedule arms the kind timer to fire after delay, replacing any earlier
// deadline. A non-positive delay fires on the next wheel tick.
func (tc TimerControl[V]) Schedule(kind TimerKind, delay time.Duration) {
	n := &tc.e.timers[kind]
	if tc.sh.wheel.count == 0 {
		// An empty wheel's clock goes stale while the shard idles; re-sync
		// it here so advance never replays the whole idle gap tick by tick
		// under the shard lock. Safe because no armed timer can be skipped.
		if now := tc.t.tickNow(); now > tc.sh.wheel.now {
			tc.sh.wheel.now = now
		}
	}
	tc.sh.wheel.schedule(n, tc.t.deadlineTick(delay))
	if n.deadline < tc.sh.nextWake {
		if !tc.sh.needPoke || n.deadline < tc.sh.pokeTick {
			tc.sh.pokeTick = n.deadline
		}
		tc.sh.needPoke = true
	}
}

// Cancel disarms the kind timer and suppresses any pending fire.
func (tc TimerControl[V]) Cancel(kind TimerKind) {
	tc.sh.wheel.cancel(&tc.e.timers[kind])
}

// Delete removes the entry, cancelling all its timers.
func (tc TimerControl[V]) Delete() {
	tc.t.dropLocked(tc.sh, tc.e)
}

// MarkDigestDirty tells a digest-maintaining table that the closure (or
// expiry callback) changed the entry's digest-relevant payload, so its
// contribution is re-derived when the mutation completes. Mutations
// that only touch timers or bookkeeping skip the call and cost nothing.
// A no-op when the table has no DigestFunc.
func (tc TimerControl[V]) MarkDigestDirty() {
	if tc.t.cfg.DigestFunc != nil {
		tc.sh.digDirty = true
	}
}

// advanceLocked moves the shard's wheel to the current tick and runs the
// expiry callbacks of everything due; callers hold sh.mu. It then records
// the shard's next wake tick and returns the wall-clock wait until it (0
// when idle, reported separately).
func (t *Table[V]) advanceLocked(sh *shard[V]) (wait time.Duration, idle bool) {
	fired := sh.wheel.advance(t.tickNow())
	for fired != nil {
		n := fired
		fired = n.qnext
		n.qnext = nil
		if n.state != timerQueued {
			continue // cancelled or rescheduled while queued
		}
		n.state = timerIdle
		if t.cfg.OnExpire != nil {
			e := n.owner
			t.cfg.OnExpire(e.key, n.kind, &e.value, TimerControl[V]{t: t, sh: sh, e: e})
			if sh.digDirty {
				t.refreshDigestLocked(sh, e)
			}
		}
	}
	idle = sh.wheel.count == 0
	if idle {
		sh.nextWake = int64(1)<<62 - 1
	} else {
		next := sh.wheel.nextEventTick()
		sh.nextWake = next
		wait = t.start.Add(time.Duration(next) * t.tick).Sub(t.clk.Now())
	}
	sh.needPoke = false
	return wait, idle
}

// fireShard is the virtual-mode wheel driver: the clock calls it on the
// simulation goroutine at each due tick; it advances the wheel and arms
// the timer for the next one. An idle shard arms nothing — the next
// Schedule re-arms via unlockAndPoke.
func (t *Table[V]) fireShard(sh *shard[V]) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t.closed.Load() {
		return // Close raced a callback already popped by the driver
	}
	wait, idle := t.advanceLocked(sh)
	if !idle {
		sh.vtimer.Reset(wait)
	}
}

// runShard is the shard's wall-mode wheel goroutine: it advances the wheel
// to the current tick, fires expired timers, and sleeps until the next
// event.
func (t *Table[V]) runShard(sh *shard[V]) {
	defer t.wg.Done()
	sleep := time.NewTimer(time.Hour)
	defer sleep.Stop()
	for {
		sh.mu.Lock()
		wait, idle := t.advanceLocked(sh)
		sh.mu.Unlock()

		if idle {
			select {
			case <-sh.wake:
			case <-t.done:
				return
			}
		} else if wait > 0 {
			if !sleep.Stop() {
				select {
				case <-sleep.C:
				default:
				}
			}
			sleep.Reset(wait)
			select {
			case <-sleep.C:
			case <-sh.wake:
			case <-t.done:
				return
			}
		}
		// wait ≤ 0: the next event is already due; loop immediately.
	}
}
