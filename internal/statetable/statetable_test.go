package statetable

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestScheduleAfterIdleResyncsWheel: scheduling into a shard whose wheel
// sat empty must snap the wheel clock to the present instead of leaving
// advance to replay the whole idle gap tick by tick under the shard lock.
func TestScheduleAfterIdleResyncsWheel(t *testing.T) {
	tbl := New(Config[int]{Shards: 1, Tick: time.Microsecond})
	defer tbl.Close()
	time.Sleep(20 * time.Millisecond) // ~20k ticks of idle gap
	tbl.Upsert("k", func(_ *int, _ bool, tc TimerControl[int]) {
		tc.Schedule(0, time.Millisecond)
		if now := tc.sh.wheel.now; now < 15_000 {
			t.Errorf("wheel clock %d ticks, want resynced past the idle gap", now)
		}
	})
}

func TestTableBasics(t *testing.T) {
	tbl := New(Config[string]{Shards: 4})
	defer tbl.Close()
	tbl.Upsert("a", func(v *string, created bool, _ TimerControl[string]) {
		if !created {
			t.Fatal("first upsert not created")
		}
		*v = "1"
	})
	tbl.Upsert("a", func(v *string, created bool, _ TimerControl[string]) {
		if created {
			t.Fatal("second upsert created")
		}
		*v = "2"
	})
	if v, ok := tbl.Get("a"); !ok || v != "2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := tbl.Get("missing"); ok {
		t.Fatal("Get invented a key")
	}
	if tbl.Update("missing", nil) {
		t.Fatal("Update invented a key")
	}
	tbl.Upsert("b", func(v *string, _ bool, _ TimerControl[string]) { *v = "3" })
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	keys := tbl.Keys()
	if len(keys) != 2 {
		t.Fatalf("Keys = %v", keys)
	}
	seen := map[string]string{}
	tbl.Range(func(k string, v *string) bool {
		seen[k] = *v
		return true
	})
	if seen["a"] != "2" || seen["b"] != "3" {
		t.Fatalf("Range saw %v", seen)
	}
	if !tbl.Delete("a") || tbl.Delete("a") {
		t.Fatal("Delete bookkeeping wrong")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len after delete = %d", tbl.Len())
	}
}

func TestTableRangeEarlyStop(t *testing.T) {
	tbl := New(Config[int]{Shards: 8})
	defer tbl.Close()
	for i := 0; i < 100; i++ {
		tbl.Upsert(fmt.Sprintf("k%d", i), nil)
	}
	n := 0
	tbl.Range(func(string, *int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Range visited %d entries after early stop", n)
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {33, 64}} {
		tbl := New(Config[int]{Shards: c.in})
		if got := tbl.NumShards(); got != c.want {
			t.Fatalf("Shards %d rounded to %d, want %d", c.in, got, c.want)
		}
		tbl.Close()
	}
}

func TestExpireFires(t *testing.T) {
	var fired atomic.Int32
	tbl := New(Config[int]{
		Shards: 2,
		OnExpire: func(key string, kind TimerKind, v *int, tc TimerControl[int]) {
			if key != "k" || kind != 1 || *v != 42 {
				t.Errorf("expire key=%q kind=%d v=%d", key, kind, *v)
			}
			fired.Add(1)
		},
	})
	defer tbl.Close()
	tbl.Upsert("k", func(v *int, _ bool, tc TimerControl[int]) {
		*v = 42
		tc.Schedule(1, 20*time.Millisecond)
	})
	eventually(t, "expiry", func() bool { return fired.Load() == 1 })
	time.Sleep(50 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatalf("timer fired %d times", fired.Load())
	}
}

// TestPastDeadlineFiresImmediately: a zero or negative delay fires on the
// next tick, not never.
func TestPastDeadlineFiresImmediately(t *testing.T) {
	var fired atomic.Int32
	tbl := New(Config[int]{
		OnExpire: func(string, TimerKind, *int, TimerControl[int]) { fired.Add(1) },
	})
	defer tbl.Close()
	tbl.Upsert("zero", func(_ *int, _ bool, tc TimerControl[int]) { tc.Schedule(0, 0) })
	tbl.Upsert("negative", func(_ *int, _ bool, tc TimerControl[int]) { tc.Schedule(0, -time.Hour) })
	start := time.Now()
	eventually(t, "immediate expiry", func() bool { return fired.Load() == 2 })
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("past deadlines took %v to fire", elapsed)
	}
}

// TestRescheduleWhileFiring: the expiry callback rearming its own timer
// produces a steady periodic stream, and an external reschedule racing the
// fire is honoured (the timer keeps running on the new cadence).
func TestRescheduleWhileFiring(t *testing.T) {
	var fired atomic.Int32
	tbl := New(Config[int]{
		OnExpire: func(_ string, _ TimerKind, _ *int, tc TimerControl[int]) {
			fired.Add(1)
			tc.Schedule(0, 5*time.Millisecond)
		},
	})
	defer tbl.Close()
	tbl.Upsert("periodic", func(_ *int, _ bool, tc TimerControl[int]) {
		tc.Schedule(0, 5*time.Millisecond)
	})
	eventually(t, "five periodic fires", func() bool { return fired.Load() >= 5 })
	// Race external reschedules against in-callback reschedules.
	for i := 0; i < 100; i++ {
		tbl.Schedule("periodic", 0, time.Millisecond)
	}
	before := fired.Load()
	eventually(t, "fires continue after racing reschedules", func() bool {
		return fired.Load() >= before+5
	})
}

// TestReschedulePushesDeadlineOut: rearming with a later deadline replaces
// the earlier one; the timer must not fire at the original time.
func TestReschedulePushesDeadlineOut(t *testing.T) {
	var fired atomic.Int32
	var firedAt atomic.Int64
	tbl := New(Config[int]{
		OnExpire: func(string, TimerKind, *int, TimerControl[int]) {
			fired.Add(1)
			firedAt.Store(time.Now().UnixNano())
		},
	})
	defer tbl.Close()
	start := time.Now()
	tbl.Upsert("k", func(_ *int, _ bool, tc TimerControl[int]) { tc.Schedule(0, 30*time.Millisecond) })
	tbl.Schedule("k", 0, 150*time.Millisecond)
	eventually(t, "rescheduled expiry", func() bool { return fired.Load() == 1 })
	if elapsed := time.Duration(firedAt.Load() - start.UnixNano()); elapsed < 100*time.Millisecond {
		t.Fatalf("fired after %v despite reschedule to 150ms", elapsed)
	}
}

// TestStopVsFireRace: once Cancel returns, the callback either already ran
// or never will. Hammered to catch ordering bugs under -race.
func TestStopVsFireRace(t *testing.T) {
	var fired atomic.Int32
	tbl := New(Config[int]{
		Tick:     100 * time.Microsecond,
		OnExpire: func(string, TimerKind, *int, TimerControl[int]) { fired.Add(1) },
	})
	defer tbl.Close()
	tbl.Upsert("k", nil)
	for i := 0; i < 300; i++ {
		tbl.Schedule("k", 0, 200*time.Microsecond)
		time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
		tbl.Cancel("k", 0)
		settled := fired.Load()
		time.Sleep(time.Millisecond)
		if got := fired.Load(); got != settled {
			t.Fatalf("iteration %d: timer fired after Cancel returned (%d -> %d)", i, settled, got)
		}
	}
}

// TestCancelUnknownKindSafe: cancelling a never-scheduled timer and
// deleting entries with armed timers must not disturb the wheel.
func TestCancelAndDeleteArmed(t *testing.T) {
	var fired atomic.Int32
	tbl := New(Config[int]{
		OnExpire: func(string, TimerKind, *int, TimerControl[int]) { fired.Add(1) },
	})
	defer tbl.Close()
	tbl.Upsert("keep", func(_ *int, _ bool, tc TimerControl[int]) { tc.Schedule(0, 20*time.Millisecond) })
	tbl.Upsert("drop", func(_ *int, _ bool, tc TimerControl[int]) {
		tc.Schedule(0, 20*time.Millisecond)
		tc.Schedule(1, 20*time.Millisecond)
	})
	tbl.Cancel("keep", 1) // never armed; no-op
	tbl.Delete("drop")    // cancels both armed timers
	eventually(t, "surviving timer", func() bool { return fired.Load() == 1 })
	time.Sleep(50 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatalf("fired %d times; deleted entry's timers leaked", fired.Load())
	}
}

// TestDeleteFromCallback: tc.Delete inside OnExpire removes the entry —
// the receiver state-timeout pattern.
func TestDeleteFromCallback(t *testing.T) {
	tbl := New(Config[int]{
		OnExpire: func(_ string, _ TimerKind, _ *int, tc TimerControl[int]) { tc.Delete() },
	})
	defer tbl.Close()
	for i := 0; i < 50; i++ {
		tbl.Upsert(fmt.Sprintf("k%d", i), func(_ *int, _ bool, tc TimerControl[int]) {
			tc.Schedule(0, 10*time.Millisecond)
		})
	}
	eventually(t, "all entries expired away", func() bool { return tbl.Len() == 0 })
}

// TestMassExpiry100kOneTick: 100k keys with identical deadlines all fire,
// with goroutine count bounded by the shard count, not the key count.
func TestMassExpiry100kOneTick(t *testing.T) {
	const n = 100_000
	before := runtime.NumGoroutine()
	var fired atomic.Int32
	tbl := New(Config[int]{
		Shards:   8,
		Tick:     10 * time.Millisecond,
		OnExpire: func(_ string, _ TimerKind, _ *int, tc TimerControl[int]) { fired.Add(1) },
	})
	defer tbl.Close()
	deadline := 100 * time.Millisecond
	for i := 0; i < n; i++ {
		tbl.Upsert(fmt.Sprintf("key/%d", i), func(_ *int, _ bool, tc TimerControl[int]) {
			tc.Schedule(0, deadline)
		})
	}
	if g := runtime.NumGoroutine(); g > before+tbl.NumShards()+8 {
		t.Fatalf("goroutines grew to %d for %d keys", g, n)
	}
	eventually(t, "mass expiry", func() bool { return fired.Load() == n })
}

// TestCloseStopsFiring: no callback runs after Close returns.
func TestCloseStopsFiring(t *testing.T) {
	var fired atomic.Int32
	tbl := New(Config[int]{
		OnExpire: func(string, TimerKind, *int, TimerControl[int]) { fired.Add(1) },
	})
	for i := 0; i < 100; i++ {
		tbl.Upsert(fmt.Sprintf("k%d", i), func(_ *int, _ bool, tc TimerControl[int]) {
			tc.Schedule(0, time.Duration(i)*time.Millisecond)
		})
	}
	tbl.Close()
	settled := fired.Load()
	time.Sleep(150 * time.Millisecond)
	if got := fired.Load(); got != settled {
		t.Fatalf("timers fired after Close (%d -> %d)", settled, got)
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len after close = %d", tbl.Len())
	}
	tbl.Close() // double close is a no-op
}

// TestConcurrentChurn hammers every operation from many goroutines; run
// with -race this is the table's memory-model test.
func TestConcurrentChurn(t *testing.T) {
	tbl := New(Config[int]{
		Shards: 8,
		Tick:   time.Millisecond,
		OnExpire: func(_ string, kind TimerKind, v *int, tc TimerControl[int]) {
			*v++
			if *v%3 == 0 {
				tc.Delete()
			} else {
				tc.Schedule(kind, time.Millisecond)
			}
		},
	})
	defer tbl.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%64)
				switch i % 5 {
				case 0:
					tbl.Upsert(key, func(_ *int, _ bool, tc TimerControl[int]) {
						tc.Schedule(TimerKind(i%NumTimerKinds), time.Duration(i%4)*time.Millisecond)
					})
				case 1:
					tbl.Get(key)
				case 2:
					tbl.Schedule(key, TimerKind(i%NumTimerKinds), time.Millisecond)
				case 3:
					tbl.Cancel(key, TimerKind(i%NumTimerKinds))
				case 4:
					tbl.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}
