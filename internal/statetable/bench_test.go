package statetable

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkStateTable_1MKeys installs one million keys, each with an armed
// refresh-style timer, into one table. One op is the full 1M-key fill. It
// reports per-key memory and the goroutine count to show both stay flat:
// the wheel multiplexes a million deadlines onto NumShards goroutines
// where the old runtime would have spawned a million runtime timers.
func BenchmarkStateTable_1MKeys(b *testing.B) {
	const n = 1_000_000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("flow/%07d", i)
	}
	var fired atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		g0 := runtime.NumGoroutine()
		tbl := New(Config[uint64]{
			Shards: 64,
			OnExpire: func(_ string, _ TimerKind, _ *uint64, tc TimerControl[uint64]) {
				fired.Add(1)
				tc.Schedule(0, time.Hour)
			},
		})
		for i, k := range keys {
			v := uint64(i)
			tbl.Upsert(k, func(slot *uint64, _ bool, tc TimerControl[uint64]) {
				*slot = v
				tc.Schedule(0, time.Hour) // far deadline: lives in an upper wheel level
			})
		}
		if got := tbl.Len(); got != n {
			b.Fatalf("Len = %d, want %d", got, n)
		}
		goroutines := runtime.NumGoroutine() - g0
		if goroutines > tbl.NumShards()+4 {
			b.Fatalf("per-key goroutines: %d goroutines for %d keys", goroutines, n)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/n, "B/key")
		b.ReportMetric(float64(goroutines), "goroutines")
		b.StopTimer()
		tbl.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(n), "keys/op")
}

// BenchmarkStateTablePut measures steady-state upsert+schedule throughput
// across all CPUs.
func BenchmarkStateTablePut(b *testing.B) {
	tbl := New(Config[int]{Shards: 64})
	defer tbl.Close()
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			key := fmt.Sprintf("k%d", i&0xFFFFF)
			tbl.Upsert(key, func(_ *int, _ bool, tc TimerControl[int]) {
				tc.Schedule(0, time.Minute)
			})
		}
	})
}

// BenchmarkStateTableGet measures read throughput on a warm table.
func BenchmarkStateTableGet(b *testing.B) {
	tbl := New(Config[int]{Shards: 64})
	defer tbl.Close()
	const warm = 1 << 16
	for i := 0; i < warm; i++ {
		tbl.Upsert(fmt.Sprintf("k%d", i), nil)
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			tbl.Get(fmt.Sprintf("k%d", i&(warm-1)))
		}
	})
}

// BenchmarkWheelScheduleCancel measures the raw arm/disarm cost: two O(1)
// list operations, no allocation.
func BenchmarkWheelScheduleCancel(b *testing.B) {
	var w wheel[int]
	e := &entry[int]{key: "k"}
	n := &e.timers[0]
	n.owner = e
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.schedule(n, int64(i%100_000)+w.now+1)
		w.cancel(n)
	}
}
