package statetable

import (
	"fmt"
	"testing"
	"time"

	"softstate/internal/clock"
)

// TestVirtualExpiry: under a virtual clock no goroutines run; expirations
// fire exactly when the driver advances past the deadline.
func TestVirtualExpiry(t *testing.T) {
	v := clock.NewVirtual()
	var fired []string
	tbl := New(Config[int]{
		Shards: 4,
		Clock:  v,
		OnExpire: func(key string, kind TimerKind, val *int, tc TimerControl[int]) {
			fired = append(fired, fmt.Sprintf("%s/%d@%v", key, kind, v.Elapsed()))
			tc.Delete()
		},
	})
	defer tbl.Close()
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("k%02d", i)
		delay := time.Duration(i+1) * 10 * time.Millisecond
		tbl.Upsert(key, func(val *int, _ bool, tc TimerControl[int]) {
			*val = i
			tc.Schedule(0, delay)
		})
	}
	v.Run(5 * time.Millisecond)
	if len(fired) != 0 {
		t.Fatalf("timers fired before their deadlines: %v", fired)
	}
	v.Run(55 * time.Millisecond) // now at 60ms: keys 0..5 due
	if len(fired) != 6 {
		t.Fatalf("fired %d timers at 60ms, want 6: %v", len(fired), fired)
	}
	v.Run(time.Second)
	if len(fired) != 16 || tbl.Len() != 0 {
		t.Fatalf("fired %d timers, %d entries left", len(fired), tbl.Len())
	}
}

// TestVirtualReschedule: rearming and cancelling under virtual time follow
// the same semantics as the wall wheels.
func TestVirtualReschedule(t *testing.T) {
	v := clock.NewVirtual()
	count := 0
	tbl := New(Config[int]{
		Clock: v,
		OnExpire: func(key string, _ TimerKind, _ *int, tc TimerControl[int]) {
			count++
			if count < 3 {
				tc.Schedule(0, 10*time.Millisecond) // periodic rearm
			}
		},
	})
	defer tbl.Close()
	tbl.Upsert("k", func(_ *int, _ bool, tc TimerControl[int]) {
		tc.Schedule(0, 10*time.Millisecond)
	})
	v.Run(100 * time.Millisecond)
	if count != 3 {
		t.Fatalf("periodic expiry fired %d times, want 3", count)
	}
	tbl.Upsert("k", func(_ *int, _ bool, tc TimerControl[int]) {
		tc.Schedule(0, 10*time.Millisecond)
	})
	tbl.Cancel("k", 0)
	v.Run(100 * time.Millisecond)
	if count != 3 {
		t.Fatal("cancelled virtual timer fired")
	}
}

// TestVirtualEarlierDeadlinePokes: scheduling a deadline earlier than the
// shard's armed wake must pull the wake earlier (the virtual analogue of
// the wall-mode poke channel).
func TestVirtualEarlierDeadlinePokes(t *testing.T) {
	v := clock.NewVirtual()
	var fired []string
	tbl := New(Config[string]{
		Shards: 1, // one shard so both keys share a wake deadline
		Clock:  v,
		OnExpire: func(key string, _ TimerKind, _ *string, tc TimerControl[string]) {
			fired = append(fired, key)
		},
	})
	defer tbl.Close()
	tbl.Upsert("late", func(_ *string, _ bool, tc TimerControl[string]) {
		tc.Schedule(0, time.Hour)
	})
	tbl.Upsert("early", func(_ *string, _ bool, tc TimerControl[string]) {
		tc.Schedule(0, 10*time.Millisecond)
	})
	v.Run(time.Second)
	if len(fired) != 1 || fired[0] != "early" {
		t.Fatalf("fired = %v, want just early", fired)
	}
	v.Run(time.Hour)
	if len(fired) != 2 || fired[1] != "late" {
		t.Fatalf("fired = %v, want early then late", fired)
	}
}

// TestVirtualCloseStopsTimers: no expiry runs after Close, and the map
// stays readable.
func TestVirtualCloseStopsTimers(t *testing.T) {
	v := clock.NewVirtual()
	fired := 0
	tbl := New(Config[int]{
		Clock:    v,
		OnExpire: func(string, TimerKind, *int, TimerControl[int]) { fired++ },
	})
	tbl.Upsert("k", func(val *int, _ bool, tc TimerControl[int]) {
		*val = 7
		tc.Schedule(0, 10*time.Millisecond)
	})
	tbl.Close()
	v.Run(time.Second)
	if fired != 0 {
		t.Fatal("timer fired after Close")
	}
	if got, ok := tbl.Get("k"); !ok || got != 7 {
		t.Fatalf("closed table unreadable: %d %v", got, ok)
	}
}
