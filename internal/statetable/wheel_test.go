package statetable

import (
	"testing"
)

// newNode builds a standalone timer node the way Upsert does, without a
// table around it, so the wheel can be driven deterministically.
func newNode(key string) *timerNode[int] {
	e := &entry[int]{key: key}
	for i := range e.timers {
		e.timers[i].owner = e
		e.timers[i].kind = TimerKind(i)
	}
	return &e.timers[0]
}

// drain pops the fired chain into a slice of keys.
func drain(head *timerNode[int]) []string {
	var out []string
	for n := head; n != nil; n = n.qnext {
		if n.state == timerQueued {
			out = append(out, n.owner.key)
		}
	}
	return out
}

// TestWheelFiresAtExactTick schedules deltas that land in every level of
// the hierarchy and verifies each fires at its deadline tick, never early.
func TestWheelFiresAtExactTick(t *testing.T) {
	deltas := []int64{1, 2, 100, 255, 256, 257, 300, 511, 512,
		wheelSlots*wheelSlots - 1, wheelSlots * wheelSlots, wheelSlots*wheelSlots + 70000}
	for _, delta := range deltas {
		var w wheel[int]
		n := newNode("k")
		w.schedule(n, delta)
		if w.count != 1 {
			t.Fatalf("delta %d: count = %d", delta, w.count)
		}
		if fired := w.advance(delta - 1); fired != nil {
			t.Fatalf("delta %d: fired %v early at tick %d", delta, drain(fired), w.now)
		}
		fired := w.advance(delta)
		if got := drain(fired); len(got) != 1 || got[0] != "k" {
			t.Fatalf("delta %d: fired = %v at deadline", delta, got)
		}
		if w.count != 0 {
			t.Fatalf("delta %d: count = %d after fire", delta, w.count)
		}
	}
}

// TestWheelFiresMidRotation covers deadlines inserted mid-rotation whose
// level-0 slot index wraps past the rotation boundary.
func TestWheelFiresMidRotation(t *testing.T) {
	var w wheel[int]
	w.advance(0x80) // park the wheel mid-rotation
	n := newNode("wrap")
	w.schedule(n, 0x130) // delta 0xB0 < 256, slot 0x30 is behind now&mask
	if fired := w.advance(0x12F); fired != nil {
		t.Fatalf("fired early: %v", drain(fired))
	}
	if got := drain(w.advance(0x130)); len(got) != 1 {
		t.Fatalf("fired = %v", got)
	}
}

// TestWheelPastDeadlineFiresNextTick: a deadline at or before now is
// pulled to now+1 rather than lost.
func TestWheelPastDeadlineFiresNextTick(t *testing.T) {
	var w wheel[int]
	w.advance(50)
	for _, deadline := range []int64{0, 49, 50} {
		n := newNode("past")
		w.schedule(n, deadline)
		if got := drain(w.advance(51)); len(got) != 1 {
			t.Fatalf("deadline %d: fired = %v", deadline, got)
		}
		w.now = 50 // rewind for the next case
	}
}

// TestWheelBeyondHorizonClamps: deadlines past the wheel span still fire,
// at the clamped horizon.
func TestWheelBeyondHorizonClamps(t *testing.T) {
	var w wheel[int]
	n := newNode("far")
	w.schedule(n, wheelSpan*3)
	if n.deadline != wheelSpan-1 {
		t.Fatalf("clamped deadline = %d, want %d", n.deadline, wheelSpan-1)
	}
}

// TestWheelCancelArmed: cancelling an armed timer unlinks it and it never
// fires.
func TestWheelCancelArmed(t *testing.T) {
	var w wheel[int]
	a, b := newNode("a"), newNode("b")
	w.schedule(a, 10)
	w.schedule(b, 10) // same bucket, exercises mid-list unlink
	w.cancel(a)
	if w.count != 1 {
		t.Fatalf("count = %d after cancel", w.count)
	}
	if got := drain(w.advance(10)); len(got) != 1 || got[0] != "b" {
		t.Fatalf("fired = %v, want [b]", got)
	}
	w.cancel(b) // cancelling an idle node is a no-op
	if w.count != 0 {
		t.Fatalf("count = %d", w.count)
	}
}

// TestWheelCancelQueued: a node already collected for firing is suppressed
// by cancel — the stop-vs-fire race resolved in favour of stop.
func TestWheelCancelQueued(t *testing.T) {
	var w wheel[int]
	a, b := newNode("a"), newNode("b")
	w.schedule(a, 5)
	w.schedule(b, 5)
	fired := w.advance(5)
	// Both queued; cancel one before the drain loop reaches it.
	w.cancel(a)
	got := drain(fired)
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("fired = %v, want [b]", got)
	}
}

// TestWheelRescheduleQueued: rescheduling a queued node suppresses the
// stale fire and arms the new deadline.
func TestWheelRescheduleQueued(t *testing.T) {
	var w wheel[int]
	n := newNode("n")
	w.schedule(n, 5)
	fired := w.advance(5)
	w.schedule(n, 20) // reschedule before the drain loop fires it
	if got := drain(fired); len(got) != 0 {
		t.Fatalf("stale fire not suppressed: %v", got)
	}
	if got := drain(w.advance(20)); len(got) != 1 {
		t.Fatalf("rescheduled fire = %v", got)
	}
}

// TestWheelRescheduleMovesDeadline: rearming an armed timer replaces the
// old deadline entirely.
func TestWheelRescheduleMovesDeadline(t *testing.T) {
	var w wheel[int]
	n := newNode("n")
	w.schedule(n, 10)
	w.schedule(n, 500)
	if w.count != 1 {
		t.Fatalf("count = %d after reschedule", w.count)
	}
	if fired := w.advance(499); fired != nil {
		t.Fatalf("old deadline fired: %v", drain(fired))
	}
	if got := drain(w.advance(500)); len(got) != 1 {
		t.Fatalf("fired = %v", got)
	}
}

// TestWheelExpiryOrder: deadlines fire in tick order within one advance.
func TestWheelExpiryOrder(t *testing.T) {
	var w wheel[int]
	keys := []string{"c", "a", "b"}
	ticks := []int64{30, 10, 20}
	for i, k := range keys {
		w.schedule(newNode(k), ticks[i])
	}
	got := drain(w.advance(100))
	want := []string{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("fired = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired = %v, want %v", got, want)
		}
	}
}

// TestWheelMassExpiryOneTick: 100k timers on the same tick all fire in a
// single advance.
func TestWheelMassExpiryOneTick(t *testing.T) {
	var w wheel[int]
	const n = 100_000
	for i := 0; i < n; i++ {
		w.schedule(newNode("k"), 7)
	}
	if w.count != n {
		t.Fatalf("count = %d", w.count)
	}
	if got := drain(w.advance(7)); len(got) != n {
		t.Fatalf("fired %d of %d", len(got), n)
	}
	if w.count != 0 {
		t.Fatalf("count = %d after mass expiry", w.count)
	}
}

// TestWheelNextEventTickSkipsEmptyBoundaries: a wheel holding only a
// far-future timer sleeps straight to the cascade that moves it, not to
// every 256-tick rotation boundary in between.
func TestWheelNextEventTickSkipsEmptyBoundaries(t *testing.T) {
	var w wheel[int]
	n := newNode("far")
	w.schedule(n, 70000) // level 2: 65536 ≤ delta < 65536·256
	if got := w.nextEventTick(); got != 65536 {
		t.Fatalf("nextEventTick = %d, want 65536 (level-2 cascade)", got)
	}
	if fired := w.advance(65536); fired != nil { // cascades down to level 1
		t.Fatalf("fired early: %v", drain(fired))
	}
	if got := w.nextEventTick(); got != 69888 {
		t.Fatalf("nextEventTick = %d, want 69888 (level-1 cascade)", got)
	}
	if fired := w.advance(69888); fired != nil { // cascades down to level 0
		t.Fatalf("fired early: %v", drain(fired))
	}
	if got := w.nextEventTick(); got != 70000 {
		t.Fatalf("nextEventTick = %d, want the deadline 70000", got)
	}
}

// TestWheelNextEventTickLevelZeroAcrossBoundary: with no upper-level
// timers, a level-0 deadline past the rotation boundary is reported
// directly — the empty boundary itself is not a wakeup.
func TestWheelNextEventTickLevelZeroAcrossBoundary(t *testing.T) {
	var w wheel[int]
	w.advance(0x80)
	n := newNode("wrap")
	w.schedule(n, 0x130) // delta 0xB0 < 256, slot beyond the 0x100 boundary
	if got := w.nextEventTick(); got != 0x130 {
		t.Fatalf("nextEventTick = %d, want 0x130", got)
	}
}

// TestWheelAdvanceSkipsEmptySpans: catching up across a huge empty span
// costs O(events); without the jump this advance replays ~2^32 ticks one
// by one and the test times out.
func TestWheelAdvanceSkipsEmptySpans(t *testing.T) {
	var w wheel[int]
	n := newNode("far")
	w.schedule(n, wheelSpan*2) // clamped to wheelSpan-1, parked in level 3
	if fired := w.advance(wheelSpan - 2); fired != nil {
		t.Fatalf("fired early: %v", drain(fired))
	}
	if got := drain(w.advance(wheelSpan - 1)); len(got) != 1 {
		t.Fatalf("fired = %v at the clamped horizon", got)
	}
	if w.count != 0 {
		t.Fatalf("count = %d after fire", w.count)
	}
}

// TestWheelNextEventTickNearestWins: the earliest event across levels is
// reported, whether it is a level-0 deadline or an upper-level cascade.
func TestWheelNextEventTickNearestWins(t *testing.T) {
	var w wheel[int]
	w.schedule(newNode("far"), 70000)
	w.schedule(newNode("near"), 200)
	if got := w.nextEventTick(); got != 200 {
		t.Fatalf("nextEventTick = %d, want 200", got)
	}
}

// TestWheelCascadePreservesManyTimers: timers spread over several levels
// all fire exactly once at the right tick as cascades rehash them.
func TestWheelCascadePreservesManyTimers(t *testing.T) {
	var w wheel[int]
	type arm struct {
		node     *timerNode[int]
		deadline int64
	}
	var arms []arm
	for d := int64(1); d < 200_000; d = d*3 + 7 {
		n := newNode("k")
		w.schedule(n, d)
		arms = append(arms, arm{n, d})
	}
	firedAt := make(map[*timerNode[int]]int64)
	for now := int64(1); now <= 200_000; now += 97 {
		for n := w.advance(now); n != nil; n = n.qnext {
			if n.state != timerQueued {
				continue
			}
			if _, dup := firedAt[n]; dup {
				t.Fatal("timer fired twice")
			}
			firedAt[n] = w.now
		}
	}
	for _, a := range arms {
		at, ok := firedAt[a.node]
		if !ok {
			t.Fatalf("deadline %d never fired", a.deadline)
		}
		// advance is batched 97 ticks at a time, so the observed w.now is
		// the batch target; the node must not have outlived its batch.
		if at < a.deadline || at >= a.deadline+97 {
			t.Fatalf("deadline %d fired in batch ending %d", a.deadline, at)
		}
	}
}
