package statetable

import (
	"fmt"
	"testing"
)

func TestUpdateBytesMatchesUpdate(t *testing.T) {
	tbl := New(Config[int]{Shards: 8})
	defer tbl.Close()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("peer\x00flow/%04d", i)
		i := i
		tbl.Upsert(key, func(v *int, _ bool, _ TimerControl[int]) { *v = i })
	}
	buf := make([]byte, 0, 32)
	for i := 0; i < 200; i++ {
		buf = fmt.Appendf(buf[:0], "peer\x00flow/%04d", i)
		got := -1
		if !tbl.UpdateBytes(buf, func(v *int, _ TimerControl[int]) { got = *v }) {
			t.Fatalf("UpdateBytes missed existing key %q", buf)
		}
		if got != i {
			t.Fatalf("key %d: got %d", i, got)
		}
	}
	if tbl.UpdateBytes([]byte("absent"), func(*int, TimerControl[int]) { t.Fatal("called for absent key") }) {
		t.Fatal("UpdateBytes reported an absent key present")
	}
	if tbl.Len() != 200 {
		t.Fatalf("UpdateBytes inserted: len=%d", tbl.Len())
	}
	// The byte and string hashes must agree, or byte-key lookups would
	// probe the wrong shard.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("peer\x00flow/%04d", i)
		if Hash32(key) != Hash32Bytes([]byte(key)) {
			t.Fatalf("hash mismatch for %q", key)
		}
	}
}

func TestUpdateBytesZeroAlloc(t *testing.T) {
	tbl := New(Config[int]{Shards: 1})
	defer tbl.Close()
	tbl.Upsert("some-key", nil)
	key := []byte("some-key")
	fn := func(*int, TimerControl[int]) {}
	allocs := testing.AllocsPerRun(1000, func() {
		if !tbl.UpdateBytes(key, fn) {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("UpdateBytes allocates %.1f per op, want 0", allocs)
	}
}
