// Package report renders experiment outputs as aligned ASCII tables and
// tab-separated values (for plotting). Every figure and table regenerated
// by internal/exp flows through this package, so cmd/sigbench and the
// benchmarks share one formatting path.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rectangular result set with named columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column names.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of already formatted cells. It panics if the arity
// does not match the column count — a programming error in the generator.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// AddNumericRow formats float cells with %.6g and appends them.
func (t *Table) AddNumericRow(values ...float64) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = strconv.FormatFloat(v, 'g', 6, 64)
	}
	t.AddRow(cells...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Rows returns the formatted rows (shared backing; callers must not
// mutate).
func (t *Table) Rows() [][]string { return t.rows }

// Cell returns the raw cell at row i, column j.
func (t *Table) Cell(i, j int) string { return t.rows[i][j] }

// Float parses the cell at row i, column j as a float64.
func (t *Table) Float(i, j int) (float64, error) {
	return strconv.ParseFloat(t.rows[i][j], 64)
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// WriteTSV writes a tab-separated rendering with a header row.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WritePretty writes an aligned, human-readable rendering.
func (t *Table) WritePretty(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the pretty form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WritePretty(&b); err != nil {
		return fmt.Sprintf("report: render error: %v", err)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
