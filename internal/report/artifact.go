package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ArtifactSchema is the current figure-artifact schema version. Bump it
// when the JSON layout changes incompatibly; sigfig diff refuses to
// compare artifacts across schema versions.
const ArtifactSchema = 1

// Artifact is one regenerable paper figure or table as a versioned,
// machine-diffable record: the experiment's identity and parameters, one
// or more data frames (the analytic model's output, the live stack's
// measurement, or both), the recorded live-vs-analytic deltas, a curated
// telemetry snapshot from the live runs, and the tolerance/ordering
// policy that sigfig diff enforces against it. Artifacts are
// deterministic: the same (id, mode, seed, code) produces byte-identical
// JSON, which is what makes the committed figures/ directory a standing
// regression baseline.
type Artifact struct {
	Schema      int    `json:"schema"`
	ID          string `json:"id"`
	Title       string `json:"title"`
	Description string `json:"description,omitempty"`
	// Version records the code state (git describe) the artifact was
	// generated from. It is metadata: sigfig diff ignores it.
	Version string `json:"version,omitempty"`
	// Mode is "quick" or "full"; Seed drives every simulation-backed frame.
	Mode string `json:"mode"`
	Seed uint64 `json:"seed"`
	// Frames are the data series, conventionally named "analytic" and
	// "live".
	Frames []Frame `json:"frames"`
	// Deltas record the live-vs-analytic disagreement per shared point.
	// They are informational (the cross-frame agreement story), not gated:
	// diff tolerances compare old and new artifacts frame by frame.
	Deltas []Delta `json:"deltas,omitempty"`
	// Telemetry holds one curated instrument snapshot per live run,
	// keyed by run label (usually the protocol name).
	Telemetry map[string]TelemetrySnapshot `json:"telemetry,omitempty"`
	// Checks is the artifact's own regression policy: per-column
	// tolerances and the qualitative orderings that must always hold.
	Checks *Checks `json:"checks,omitempty"`
}

// Frame is one rectangular data series of an artifact.
type Frame struct {
	// Name distinguishes the frames of one artifact: "analytic" for
	// model output, "live" for wire-stack measurements.
	Name    string     `json:"name"`
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// FrameNames are the conventional frame names BuildArtifact and the
// delta computation look for.
const (
	FrameAnalytic = "analytic"
	FrameLive     = "live"
)

// NewFrame captures a table as an artifact frame. The rows are copied,
// so the table may be reused or mutated afterwards.
func NewFrame(name string, t *Table) Frame {
	f := Frame{Name: name, Title: t.Title, Columns: append([]string(nil), t.Columns...)}
	for _, r := range t.Rows() {
		f.Rows = append(f.Rows, append([]string(nil), r...))
	}
	return f
}

// Table reconstitutes the frame as a report.Table (for rendering).
func (f Frame) Table() *Table {
	t := New(f.Title, f.Columns...)
	for _, r := range f.Rows {
		t.AddRow(r...)
	}
	return t
}

// columnIndex returns the index of the named column, or -1.
func (f Frame) columnIndex(name string) int {
	for i, c := range f.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// FrameByName returns the named frame, or false.
func (a *Artifact) FrameByName(name string) (Frame, bool) {
	for _, f := range a.Frames {
		if f.Name == name {
			return f, true
		}
	}
	return Frame{}, false
}

// TelemetrySnapshot is a flat instrument snapshot: series identity →
// value (counters and gauges verbatim, histograms as quantile/count
// entries).
type TelemetrySnapshot map[string]float64

// Delta is one recorded live-vs-analytic comparison point: the frames'
// shared column at the row whose join key (first-column cell) matches.
type Delta struct {
	// Key is the join value — the first-column cell shared by the
	// analytic and live rows (a protocol name, a loss rate, a hop count).
	Key    string  `json:"key"`
	Column string  `json:"column"`
	Live   float64 `json:"live"`
	// Analytic is the model's prediction at matched parameters.
	Analytic float64 `json:"analytic"`
	// Abs is live − analytic; Rel is Abs normalized by |analytic| (0 when
	// the analytic value is 0).
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// ComputeDeltas joins the analytic and live frames on their first column
// and records one delta per (matched row, shared numeric column). When
// columns is non-nil only those columns are recorded; otherwise every
// column shared by both frames (beyond the join column) is. Points
// present in only one frame are skipped — the frames may sweep different
// grids.
func ComputeDeltas(analytic, live Frame, columns []string) []Delta {
	if len(analytic.Columns) == 0 || len(live.Columns) == 0 {
		return nil
	}
	if columns == nil {
		for _, c := range live.Columns[1:] {
			if analytic.columnIndex(c) > 0 {
				columns = append(columns, c)
			}
		}
	}
	anaRow := make(map[string][]string, len(analytic.Rows))
	for _, r := range analytic.Rows {
		if len(r) > 0 {
			anaRow[r[0]] = r
		}
	}
	var out []Delta
	for _, lr := range live.Rows {
		if len(lr) == 0 {
			continue
		}
		ar, ok := anaRow[lr[0]]
		if !ok {
			continue
		}
		for _, col := range columns {
			li, ai := live.columnIndex(col), analytic.columnIndex(col)
			if li <= 0 || ai <= 0 || ai >= len(ar) || li >= len(lr) {
				continue
			}
			lv, lerr := strconv.ParseFloat(lr[li], 64)
			av, aerr := strconv.ParseFloat(ar[ai], 64)
			if lerr != nil || aerr != nil {
				continue
			}
			d := Delta{Key: lr[0], Column: col, Live: lv, Analytic: av, Abs: lv - av}
			if av != 0 {
				d.Rel = d.Abs / av
			}
			out = append(out, d)
		}
	}
	return out
}

// EncodeArtifact writes the artifact as indented JSON with a trailing
// newline. encoding/json sorts map keys, so the bytes are a pure
// function of the artifact value — the determinism the golden tests and
// the CI diff gate rely on.
func EncodeArtifact(w io.Writer, a *Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// DecodeArtifact reads one artifact from JSON.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("report: decode artifact: %w", err)
	}
	return &a, nil
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", `\|`) }
	row := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = "---"
	}
	if err := row(rule); err != nil {
		return err
	}
	for _, r := range t.Rows() {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteArtifactMarkdown renders the whole artifact as a markdown
// document: metadata, every frame as a table, the recorded deltas, and
// the telemetry snapshots.
func WriteArtifactMarkdown(w io.Writer, a *Artifact) error {
	fmt.Fprintf(w, "# %s — %s\n\n", a.ID, a.Title)
	if a.Description != "" {
		fmt.Fprintf(w, "%s\n\n", a.Description)
	}
	fmt.Fprintf(w, "`schema %d` · mode **%s** · seed `%d`", a.Schema, a.Mode, a.Seed)
	if a.Version != "" {
		fmt.Fprintf(w, " · version `%s`", a.Version)
	}
	fmt.Fprint(w, "\n")
	for _, f := range a.Frames {
		fmt.Fprintf(w, "\n## %s frame", f.Name)
		if f.Title != "" {
			fmt.Fprintf(w, ": %s", f.Title)
		}
		fmt.Fprint(w, "\n\n")
		if err := f.Table().WriteMarkdown(w); err != nil {
			return err
		}
	}
	if len(a.Deltas) > 0 {
		fmt.Fprint(w, "\n## Live vs analytic deltas\n\n")
		t := New("", "key", "column", "live", "analytic", "abs", "rel")
		for _, d := range a.Deltas {
			t.AddRow(d.Key, d.Column,
				strconv.FormatFloat(d.Live, 'g', 6, 64),
				strconv.FormatFloat(d.Analytic, 'g', 6, 64),
				strconv.FormatFloat(d.Abs, 'g', 6, 64),
				strconv.FormatFloat(d.Rel, 'g', 6, 64))
		}
		if err := t.WriteMarkdown(w); err != nil {
			return err
		}
	}
	if len(a.Telemetry) > 0 {
		fmt.Fprint(w, "\n## Telemetry\n\n")
		labels := make([]string, 0, len(a.Telemetry))
		for k := range a.Telemetry {
			labels = append(labels, k)
		}
		sort.Strings(labels)
		for _, label := range labels {
			fmt.Fprintf(w, "**%s**\n\n", label)
			snap := a.Telemetry[label]
			keys := make([]string, 0, len(snap))
			for k := range snap {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			t := New("", "series", "value")
			for _, k := range keys {
				t.AddRow(k, strconv.FormatFloat(snap[k], 'g', -1, 64))
			}
			if err := t.WriteMarkdown(w); err != nil {
				return err
			}
			fmt.Fprint(w, "\n")
		}
	}
	return nil
}
