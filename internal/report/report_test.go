package report

import (
	"strings"
	"testing"
)

func TestAddRowArityPanics(t *testing.T) {
	tab := New("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity did not panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestNumericRowFormatting(t *testing.T) {
	tab := New("t", "x", "y")
	tab.AddNumericRow(1.5, 0.000123456789)
	if tab.Cell(0, 0) != "1.5" {
		t.Fatalf("cell = %q", tab.Cell(0, 0))
	}
	v, err := tab.Float(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.000123 || v > 0.000124 {
		t.Fatalf("parsed %v", v)
	}
}

func TestColumnIndex(t *testing.T) {
	tab := New("t", "x", "y")
	if tab.ColumnIndex("y") != 1 {
		t.Fatal("wrong index")
	}
	if tab.ColumnIndex("z") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestFloatParseError(t *testing.T) {
	tab := New("t", "x")
	tab.AddRow("not-a-number")
	if _, err := tab.Float(0, 0); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTSV(t *testing.T) {
	tab := New("t", "x", "y")
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")
	var sb strings.Builder
	if err := tab.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "x\ty\n1\t2\n3\t4\n"
	if sb.String() != want {
		t.Fatalf("TSV = %q, want %q", sb.String(), want)
	}
}

func TestPrettyAlignment(t *testing.T) {
	tab := New("demo", "name", "value")
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.String()
	if !strings.Contains(out, "# demo") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// The value column of both rows starts at the same offset.
	r1, r2 := lines[3], lines[4]
	if strings.Index(r2, "22") < strings.Index(r1, "1") {
		t.Fatalf("misaligned rows:\n%s\n%s", r1, r2)
	}
}

func TestPrettyNoTitle(t *testing.T) {
	tab := New("", "x")
	tab.AddRow("1")
	if strings.Contains(tab.String(), "#") {
		t.Fatal("untitled table should not render a title line")
	}
}

func TestRowsAccessor(t *testing.T) {
	tab := New("t", "x")
	tab.AddRow("1")
	if len(tab.Rows()) != 1 || tab.Len() != 1 {
		t.Fatal("accessor mismatch")
	}
}
