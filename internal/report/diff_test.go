package report

import (
	"bytes"
	"strings"
	"testing"
)

func mkArtifact() *Artifact {
	t := New("consistency", "loss", "SS", "SS+RTR")
	t.AddRow("0.1", "0.05", "0.001")
	t.AddRow("0.3", "0.12", "0.004")
	return &Artifact{
		Schema: ArtifactSchema,
		ID:     "figX",
		Title:  "test figure",
		Mode:   "quick",
		Seed:   42,
		Frames: []Frame{NewFrame(FrameAnalytic, t)},
	}
}

func clone(t *testing.T, a *Artifact) *Artifact {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDiffIdentical(t *testing.T) {
	a := mkArtifact()
	b := clone(t, a)
	if msgs := DiffArtifacts(a, b); len(msgs) != 0 {
		t.Fatalf("identical artifacts should not diff: %v", msgs)
	}
}

func TestDiffWithinTolerance(t *testing.T) {
	a := mkArtifact()
	b := clone(t, a)
	b.Checks = &Checks{RelTol: map[string]float64{"SS": 0.5}}
	b.Frames[0].Rows[0][1] = "0.06" // 20% off baseline 0.05, tol 50%
	if msgs := DiffArtifacts(a, b); len(msgs) != 0 {
		t.Fatalf("drift within tolerance should pass: %v", msgs)
	}
}

func TestDiffBeyondTolerance(t *testing.T) {
	a := mkArtifact()
	b := clone(t, a)
	b.Checks = &Checks{RelTol: map[string]float64{"SS": 0.1}}
	b.Frames[0].Rows[0][1] = "0.06" // 20% off, tol 10%
	msgs := DiffArtifacts(a, b)
	if len(msgs) != 1 || !strings.Contains(msgs[0], `column "SS"`) {
		t.Fatalf("want one SS violation, got %v", msgs)
	}
}

func TestDiffFrameQualifiedTolerance(t *testing.T) {
	a := mkArtifact()
	b := clone(t, a)
	// Frame-qualified key beats the bare-column key.
	b.Checks = &Checks{RelTol: map[string]float64{
		"analytic/SS": 0.5,
		"SS":          1e-9,
	}}
	b.Frames[0].Rows[0][1] = "0.06"
	if msgs := DiffArtifacts(a, b); len(msgs) != 0 {
		t.Fatalf("frame-qualified tolerance should win: %v", msgs)
	}
}

func TestDiffAbsoluteTolerance(t *testing.T) {
	a := mkArtifact()
	a.Frames[0].Rows[0][2] = "0"
	b := clone(t, a)
	b.Checks = &Checks{AbsTol: map[string]float64{"SS+RTR": 0.01}}
	b.Frames[0].Rows[0][2] = "0.005" // rel tol can't save a zero baseline
	if msgs := DiffArtifacts(a, b); len(msgs) != 0 {
		t.Fatalf("abs tolerance should absorb near-zero drift: %v", msgs)
	}
}

func TestDiffNonNumericExact(t *testing.T) {
	a := mkArtifact()
	a.Frames[0].Rows[0][1] = "n/a"
	b := clone(t, a)
	b.Frames[0].Rows[0][1] = "none"
	msgs := DiffArtifacts(a, b)
	if len(msgs) != 1 || !strings.Contains(msgs[0], `"none"`) {
		t.Fatalf("non-numeric cells must match exactly, got %v", msgs)
	}
}

func TestDiffStructuralMismatches(t *testing.T) {
	a := mkArtifact()

	b := clone(t, a)
	b.Schema++
	if msgs := DiffArtifacts(a, b); len(msgs) != 1 || !strings.Contains(msgs[0], "schema") {
		t.Fatalf("schema mismatch: %v", msgs)
	}

	b = clone(t, a)
	b.Frames[0].Columns[2] = "HS"
	if msgs := DiffArtifacts(a, b); len(msgs) != 1 || !strings.Contains(msgs[0], "columns") {
		t.Fatalf("column mismatch: %v", msgs)
	}

	b = clone(t, a)
	b.Frames[0].Rows = b.Frames[0].Rows[:1]
	if msgs := DiffArtifacts(a, b); len(msgs) != 1 || !strings.Contains(msgs[0], "rows") {
		t.Fatalf("row-count mismatch: %v", msgs)
	}

	b = clone(t, a)
	b.Frames = nil
	if msgs := DiffArtifacts(a, b); len(msgs) != 1 || !strings.Contains(msgs[0], "frames") {
		t.Fatalf("frame-count mismatch: %v", msgs)
	}
}

func TestDiffIgnoresVersionAndTelemetry(t *testing.T) {
	a := mkArtifact()
	a.Version = "v1.0.0"
	a.Telemetry = map[string]TelemetrySnapshot{"SS": {"x": 1}}
	b := clone(t, a)
	b.Version = "v1.0.1-5-gdeadbee"
	b.Telemetry = map[string]TelemetrySnapshot{"SS": {"x": 99}}
	if msgs := DiffArtifacts(a, b); len(msgs) != 0 {
		t.Fatalf("version/telemetry are metadata, got %v", msgs)
	}
}

func TestOrderingsColumnMode(t *testing.T) {
	a := mkArtifact()
	a.Checks = &Checks{Orderings: []OrderRule{{
		Lowest:  "SS+RTR",
		Highest: "SS",
		Among:   []string{"SS", "SS+RTR"},
	}}}
	if msgs := CheckOrderings(a); len(msgs) != 0 {
		t.Fatalf("ordering holds in fixture, got %v", msgs)
	}

	// Violate: SS dips below SS+RTR on one row.
	a.Frames[0].Rows[1][1] = "0.0001"
	msgs := CheckOrderings(a)
	if len(msgs) != 2 { // both "SS+RTR not lowest" and "SS not highest"
		t.Fatalf("want 2 ordering violations, got %v", msgs)
	}
	for _, m := range msgs {
		if !strings.Contains(m, "row 1") {
			t.Fatalf("violation should name the row: %v", msgs)
		}
	}
}

func TestOrderingsMinX(t *testing.T) {
	a := mkArtifact()
	a.Frames[0].Rows[0][1] = "0.0001" // SS below SS+RTR at loss 0.1
	minX := 0.2
	a.Checks = &Checks{Orderings: []OrderRule{{
		Highest: "SS",
		Among:   []string{"SS", "SS+RTR"},
		MinX:    &minX,
	}}}
	if msgs := CheckOrderings(a); len(msgs) != 0 {
		t.Fatalf("row below MinX must be skipped, got %v", msgs)
	}
}

func TestOrderingsRowMode(t *testing.T) {
	tab := New("five-variant", "protocol", "I")
	tab.AddRow("SS", "0.12")
	tab.AddRow("SS+RTR", "0.001")
	tab.AddRow("HS", "0.02")
	a := &Artifact{
		Schema: ArtifactSchema, ID: "live5", Mode: "quick",
		Frames: []Frame{NewFrame(FrameLive, tab)},
		Checks: &Checks{Orderings: []OrderRule{{
			Frame:       FrameLive,
			KeyColumn:   "protocol",
			ValueColumn: "I",
			LowestKey:   "SS+RTR",
			HighestKey:  "SS",
		}}},
	}
	if msgs := CheckOrderings(a); len(msgs) != 0 {
		t.Fatalf("row-mode ordering holds in fixture, got %v", msgs)
	}

	a.Frames[0].Rows[2][1] = "0.5" // HS above SS
	msgs := CheckOrderings(a)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "HS") {
		t.Fatalf("want one HS violation, got %v", msgs)
	}

	// AmongKeys excludes HS from the comparison entirely.
	a.Checks.Orderings[0].AmongKeys = []string{"SS", "SS+RTR"}
	if msgs := CheckOrderings(a); len(msgs) != 0 {
		t.Fatalf("HS outside AmongKeys must not violate, got %v", msgs)
	}
}

func TestOrderingsSkipFramesMissingColumns(t *testing.T) {
	a := mkArtifact()
	a.Checks = &Checks{Orderings: []OrderRule{{
		Lowest: "SS+RTR",
		Among:  []string{"SS+RTR", "nonexistent"},
	}}}
	if msgs := CheckOrderings(a); len(msgs) != 0 {
		t.Fatalf("rule referencing absent columns must not apply, got %v", msgs)
	}
}

func TestDiffRunsOrderingsOnNew(t *testing.T) {
	a := mkArtifact()
	b := clone(t, a)
	b.Checks = &Checks{Orderings: []OrderRule{{
		Lowest: "SS",
		Among:  []string{"SS", "SS+RTR"},
	}}}
	msgs := DiffArtifacts(a, b)
	if len(msgs) == 0 || !strings.Contains(msgs[0], "lowest") {
		t.Fatalf("diff must evaluate orderings on the new artifact: %v", msgs)
	}
}
