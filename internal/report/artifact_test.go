package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestArtifactRoundTripDeterministic(t *testing.T) {
	a := mkArtifact()
	a.Version = "v0-test"
	a.Telemetry = map[string]TelemetrySnapshot{
		"SS":     {"softstate_keys_installed": 24, "softstate_send_errors": 0},
		"SS+RTR": {"softstate_keys_installed": 24},
	}
	a.Checks = &Checks{RelTol: map[string]float64{"SS": 0.2}}

	var b1, b2 bytes.Buffer
	if err := EncodeArtifact(&b1, a); err != nil {
		t.Fatal(err)
	}
	if err := EncodeArtifact(&b2, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encoding the same artifact twice must be byte-identical")
	}
	if !bytes.HasSuffix(b1.Bytes(), []byte("\n")) {
		t.Fatal("artifact JSON must end with a newline")
	}

	got, err := DecodeArtifact(&b1)
	if err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	if err := EncodeArtifact(&b3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
		t.Fatal("decode→encode must round-trip byte-identically")
	}
}

func TestComputeDeltas(t *testing.T) {
	ana := NewFrame(FrameAnalytic, func() *Table {
		tab := New("a", "protocol", "I", "rate")
		tab.AddRow("SS", "0.10", "1.0")
		tab.AddRow("HS", "0.02", "4.0")
		return tab
	}())
	live := NewFrame(FrameLive, func() *Table {
		tab := New("l", "protocol", "I", "rate", "machinery")
		tab.AddRow("SS", "0.12", "1.1", "42")
		tab.AddRow("SS+ER", "0.05", "1.5", "50") // no analytic partner
		return tab
	}())

	ds := ComputeDeltas(ana, live, nil)
	if len(ds) != 2 {
		t.Fatalf("want deltas for SS/I and SS/rate only, got %+v", ds)
	}
	d := ds[0]
	if d.Key != "SS" || d.Column != "I" {
		t.Fatalf("first delta should be SS/I, got %+v", d)
	}
	if got := d.Live - d.Analytic; !almost(d.Abs, got) {
		t.Fatalf("abs: got %g want %g", d.Abs, got)
	}
	if !almost(d.Rel, d.Abs/d.Analytic) {
		t.Fatalf("rel: got %g want %g", d.Rel, d.Abs/d.Analytic)
	}

	// Explicit column selection.
	ds = ComputeDeltas(ana, live, []string{"rate"})
	if len(ds) != 1 || ds[0].Column != "rate" {
		t.Fatalf("explicit column selection, got %+v", ds)
	}
}

func TestComputeDeltasZeroAnalytic(t *testing.T) {
	ana := NewFrame(FrameAnalytic, func() *Table {
		tab := New("a", "k", "v")
		tab.AddRow("x", "0")
		return tab
	}())
	live := NewFrame(FrameLive, func() *Table {
		tab := New("l", "k", "v")
		tab.AddRow("x", "0.5")
		return tab
	}())
	ds := ComputeDeltas(ana, live, nil)
	if len(ds) != 1 || ds[0].Rel != 0 {
		t.Fatalf("rel must be 0 when analytic is 0, got %+v", ds)
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestWriteMarkdown(t *testing.T) {
	tab := New("t", "name", "value")
	tab.AddRow("a|b", "1")
	var buf bytes.Buffer
	if err := tab.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| name | value |") {
		t.Fatalf("header row missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("rule row missing:\n%s", out)
	}
	if !strings.Contains(out, `a\|b`) {
		t.Fatalf("pipe must be escaped:\n%s", out)
	}
}

func TestWriteArtifactMarkdown(t *testing.T) {
	a := mkArtifact()
	a.Version = "v0-test"
	a.Deltas = []Delta{{Key: "SS", Column: "I", Live: 0.12, Analytic: 0.1, Abs: 0.02, Rel: 0.2}}
	a.Telemetry = map[string]TelemetrySnapshot{"SS": {"softstate_keys_installed": 24}}
	var buf bytes.Buffer
	if err := WriteArtifactMarkdown(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# figX — test figure",
		"## analytic frame",
		"## Live vs analytic deltas",
		"## Telemetry",
		"softstate_keys_installed",
		"seed `42`",
		"version `v0-test`",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
