package report

import (
	"fmt"
	"math"
	"strconv"
)

// DefaultRelTol is the relative drift allowed on numeric cells with no
// per-column policy. Analytic frames are pure float math, so anything
// beyond ULP-scale platform noise is a real model change; live frames
// that need more headroom say so in their artifact's Checks.
const DefaultRelTol = 1e-6

// Checks is an artifact's embedded regression policy: how much each
// column may drift between two generations, and which qualitative
// orderings (the paper's claims) must hold in every generation. sigfig
// diff reads the policy from the *new* artifact, so a PR that changes an
// experiment ships its policy change in the same diff.
type Checks struct {
	// RelTol maps a column to its allowed relative drift. Keys are tried
	// most-specific first: "frame/column", then "column", then "" (the
	// artifact-wide default), then DefaultRelTol.
	RelTol map[string]float64 `json:"rel_tol,omitempty"`
	// AbsTol maps a column to an absolute drift floor (same key scheme).
	// A cell passes when |new−old| ≤ abs + rel·max(|old|,|new|), so noisy
	// near-zero live measurements need an absolute term.
	AbsTol map[string]float64 `json:"abs_tol,omitempty"`
	// Orderings are assertions evaluated on a single artifact (the new
	// one, during diff, and at generation time).
	Orderings []OrderRule `json:"orderings,omitempty"`
}

// tol resolves the (rel, abs) tolerance for a column of a frame.
func (c *Checks) tol(frame, column string) (rel, abs float64) {
	rel = DefaultRelTol
	look := func(m map[string]float64) (float64, bool) {
		if m == nil {
			return 0, false
		}
		for _, k := range []string{frame + "/" + column, column, ""} {
			if v, ok := m[k]; ok {
				return v, true
			}
		}
		return 0, false
	}
	if c != nil {
		if v, ok := look(c.RelTol); ok {
			rel = v
		}
		if v, ok := look(c.AbsTol); ok {
			abs = v
		}
	}
	return rel, abs
}

// OrderRule asserts a qualitative ordering the paper's figures claim —
// e.g. "SS+RTR has the lowest inconsistency, SS the highest". It has two
// modes:
//
//   - Column mode (wide tables, protocols as columns): Lowest/Highest
//     name a column that must be ≤/≥ every column in Among, on every row
//     (restricted to rows whose first-column value is ≥ MinX, when set —
//     orderings are often meaningless at a sweep's degenerate origin).
//   - Row mode (long tables, protocols as rows): KeyColumn/ValueColumn
//     name the label and metric columns; the row labeled LowestKey must
//     have the minimum value, HighestKey the maximum.
type OrderRule struct {
	// Frame restricts the rule to the named frame; empty applies it to
	// every frame containing the referenced columns.
	Frame string `json:"frame,omitempty"`

	// Column mode.
	Lowest  string   `json:"lowest,omitempty"`
	Highest string   `json:"highest,omitempty"`
	Among   []string `json:"among,omitempty"`
	// MinX restricts column-mode checks to rows whose first-column value
	// parses as a float ≥ MinX.
	MinX *float64 `json:"min_x,omitempty"`

	// Row mode.
	KeyColumn   string `json:"key_column,omitempty"`
	ValueColumn string `json:"value_column,omitempty"`
	LowestKey   string `json:"lowest_key,omitempty"`
	HighestKey  string `json:"highest_key,omitempty"`
	// AmongKeys, when set, restricts a row-mode rule to rows with these
	// keys — e.g. "SS+RTR lowest among the soft-state variants" leaves HS
	// out of the comparison.
	AmongKeys []string `json:"among_keys,omitempty"`
}

// CheckOrderings evaluates every ordering rule of the artifact's Checks
// and returns one message per violation.
func CheckOrderings(a *Artifact) []string {
	if a == nil || a.Checks == nil {
		return nil
	}
	var out []string
	for _, rule := range a.Checks.Orderings {
		for _, f := range a.Frames {
			if rule.Frame != "" && rule.Frame != f.Name {
				continue
			}
			out = append(out, rule.check(a.ID, f)...)
		}
	}
	return out
}

func (r OrderRule) check(id string, f Frame) []string {
	if r.KeyColumn != "" {
		return r.checkRows(id, f)
	}
	return r.checkColumns(id, f)
}

// checkColumns runs the wide-table mode.
func (r OrderRule) checkColumns(id string, f Frame) []string {
	idx := make(map[string]int, len(r.Among))
	for _, c := range r.Among {
		j := f.columnIndex(c)
		if j < 0 {
			return nil // rule doesn't apply to this frame
		}
		idx[c] = j
	}
	for _, c := range []string{r.Lowest, r.Highest} {
		if c != "" && f.columnIndex(c) < 0 {
			return nil
		}
	}
	var out []string
	for i, row := range f.Rows {
		if r.MinX != nil {
			x, err := strconv.ParseFloat(row[0], 64)
			if err != nil || x < *r.MinX {
				continue
			}
		}
		val := func(c string) (float64, bool) {
			j := idx[c]
			if j >= len(row) {
				return 0, false
			}
			v, err := strconv.ParseFloat(row[j], 64)
			return v, err == nil
		}
		if r.Lowest != "" {
			lo, ok := val(r.Lowest)
			if ok {
				for _, c := range r.Among {
					if c == r.Lowest {
						continue
					}
					if v, ok := val(c); ok && v < lo {
						out = append(out, fmt.Sprintf(
							"%s: frame %q row %d (%s): %s=%g below %s=%g, want %s lowest",
							id, f.Name, i, row[0], c, v, r.Lowest, lo, r.Lowest))
					}
				}
			}
		}
		if r.Highest != "" {
			hi, ok := val(r.Highest)
			if ok {
				for _, c := range r.Among {
					if c == r.Highest {
						continue
					}
					if v, ok := val(c); ok && v > hi {
						out = append(out, fmt.Sprintf(
							"%s: frame %q row %d (%s): %s=%g above %s=%g, want %s highest",
							id, f.Name, i, row[0], c, v, r.Highest, hi, r.Highest))
					}
				}
			}
		}
	}
	return out
}

// checkRows runs the long-table mode.
func (r OrderRule) checkRows(id string, f Frame) []string {
	kj, vj := f.columnIndex(r.KeyColumn), f.columnIndex(r.ValueColumn)
	if kj < 0 || vj < 0 {
		return nil
	}
	among := map[string]bool{}
	for _, k := range r.AmongKeys {
		among[k] = true
	}
	vals := map[string]float64{}
	for _, row := range f.Rows {
		if kj >= len(row) || vj >= len(row) {
			continue
		}
		if len(among) > 0 && !among[row[kj]] {
			continue
		}
		if v, err := strconv.ParseFloat(row[vj], 64); err == nil {
			vals[row[kj]] = v
		}
	}
	var out []string
	if r.LowestKey != "" {
		if lo, ok := vals[r.LowestKey]; ok {
			for k, v := range vals {
				if v < lo {
					out = append(out, fmt.Sprintf(
						"%s: frame %q: %s %s=%g below %s=%g, want %s lowest",
						id, f.Name, r.ValueColumn, k, v, r.LowestKey, lo, r.LowestKey))
				}
			}
		}
	}
	if r.HighestKey != "" {
		if hi, ok := vals[r.HighestKey]; ok {
			for k, v := range vals {
				if v > hi {
					out = append(out, fmt.Sprintf(
						"%s: frame %q: %s %s=%g above %s=%g, want %s highest",
						id, f.Name, r.ValueColumn, k, v, r.HighestKey, hi, r.HighestKey))
				}
			}
		}
	}
	sortStable(out)
	return out
}

// sortStable orders violation messages deterministically (map iteration
// above is not).
func sortStable(msgs []string) {
	for i := 1; i < len(msgs); i++ {
		for j := i; j > 0 && msgs[j] < msgs[j-1]; j-- {
			msgs[j], msgs[j-1] = msgs[j-1], msgs[j]
		}
	}
}

// DiffArtifacts compares a regenerated artifact (new) against a baseline
// (old) under new's embedded Checks, and returns one message per
// violation: structural mismatches (schema, frames, columns, row
// counts), numeric cells drifting beyond tolerance, non-numeric cells
// changing at all, and ordering-rule violations in the new artifact.
// Version and Telemetry are metadata — recorded, never gated.
func DiffArtifacts(old, new *Artifact) []string {
	var out []string
	fail := func(format string, args ...any) {
		out = append(out, fmt.Sprintf("%s: ", new.ID)+fmt.Sprintf(format, args...))
	}
	if old.Schema != new.Schema {
		fail("schema %d vs baseline %d — regenerate the baseline", new.Schema, old.Schema)
		return out
	}
	if len(old.Frames) != len(new.Frames) {
		fail("%d frames vs baseline %d", len(new.Frames), len(old.Frames))
		return out
	}
	for i, nf := range new.Frames {
		of := old.Frames[i]
		if of.Name != nf.Name {
			fail("frame %d named %q vs baseline %q", i, nf.Name, of.Name)
			continue
		}
		if !equalStrings(of.Columns, nf.Columns) {
			fail("frame %q columns %v vs baseline %v", nf.Name, nf.Columns, of.Columns)
			continue
		}
		if len(of.Rows) != len(nf.Rows) {
			fail("frame %q has %d rows vs baseline %d", nf.Name, len(nf.Rows), len(of.Rows))
			continue
		}
		for ri := range nf.Rows {
			orow, nrow := of.Rows[ri], nf.Rows[ri]
			if len(orow) != len(nrow) {
				fail("frame %q row %d arity %d vs baseline %d", nf.Name, ri, len(nrow), len(orow))
				continue
			}
			for ci := range nrow {
				oc, nc := orow[ci], nrow[ci]
				if oc == nc {
					continue
				}
				ov, oerr := strconv.ParseFloat(oc, 64)
				nv, nerr := strconv.ParseFloat(nc, 64)
				col := nf.Columns[ci]
				if oerr != nil || nerr != nil {
					fail("frame %q row %d (%s) column %q: %q vs baseline %q",
						nf.Name, ri, nrow[0], col, nc, oc)
					continue
				}
				rel, abs := new.Checks.tol(nf.Name, col)
				limit := abs + rel*math.Max(math.Abs(ov), math.Abs(nv))
				if d := math.Abs(nv - ov); d > limit {
					fail("frame %q row %d (%s) column %q: %g vs baseline %g (|Δ|=%.4g > %.4g)",
						nf.Name, ri, nrow[0], col, nv, ov, d, limit)
				}
			}
		}
	}
	out = append(out, CheckOrderings(new)...)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
