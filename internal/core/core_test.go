package core

import (
	"testing"
)

func TestCompareCoversAllProtocols(t *testing.T) {
	cmp, err := Compare(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp) != 5 {
		t.Fatalf("Compare returned %d entries", len(cmp))
	}
	seen := map[Protocol]bool{}
	for _, c := range cmp {
		seen[c.Protocol] = true
		if c.Metrics.Lifetime <= 0 {
			t.Fatalf("%v has nonpositive lifetime", c.Protocol)
		}
	}
	for _, p := range Protocols() {
		if !seen[p] {
			t.Fatalf("missing protocol %v", p)
		}
	}
}

func TestCompareOrderMatchesPaper(t *testing.T) {
	cmp, err := Compare(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := []Protocol{SS, SSER, SSRT, SSRTR, HS}
	for i, c := range cmp {
		if c.Protocol != want[i] {
			t.Fatalf("position %d = %v, want %v", i, c.Protocol, want[i])
		}
	}
}

func TestBestProtocolExtremes(t *testing.T) {
	// α→0: only overhead matters → HS wins at the Kazaa defaults.
	best, cost, err := BestProtocol(0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if best != HS {
		t.Fatalf("α=0 winner = %v, want HS", best)
	}
	if cost <= 0 {
		t.Fatalf("cost = %v", cost)
	}
	// Huge α: consistency dominates → a reliable-removal protocol wins.
	best, _, err = BestProtocol(1e6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if best != SSRTR && best != HS {
		t.Fatalf("huge-α winner = %v", best)
	}
}

func TestMultihopProtocols(t *testing.T) {
	mp := MultihopProtocols()
	if len(mp) != 3 || mp[0] != SS || mp[1] != SSRT || mp[2] != HS {
		t.Fatalf("MultihopProtocols = %v", mp)
	}
}

func TestFacadeDelegation(t *testing.T) {
	// Smoke-check that the facade functions reach the implementations.
	m, err := Analyze(SS, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.Inconsistency <= 0 {
		t.Fatal("Analyze returned empty metrics")
	}
	mm, err := AnalyzeMultihop(SS, DefaultMultihopParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.PerHop) != 20 {
		t.Fatal("AnalyzeMultihop returned wrong hop count")
	}
	if got := IntegratedCost(10, m); got <= m.NormalizedRate {
		t.Fatalf("IntegratedCost = %v", got)
	}
	res, err := Simulate(SimConfig{
		Protocol: SSER,
		Params:   DefaultParams().WithSessionLength(100),
		Sessions: 50,
		Seed:     1,
		Timers:   Deterministic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 50 {
		t.Fatal("Simulate did not run")
	}
	mres, err := SimulateMultihop(MultihopSimConfig{
		Protocol: SS,
		Params:   DefaultMultihopParams().WithHops(3),
		Horizon:  500,
		Runs:     1,
		Seed:     1,
		Timers:   Deterministic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mres.PerHop) != 3 {
		t.Fatal("SimulateMultihop did not run")
	}
}
