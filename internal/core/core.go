// Package core is the unified entry point to the paper's models and
// simulators: protocol descriptors, single- and multi-hop parameters,
// analytic solutions, event-level simulation, and the integrated cost
// metric. The root softstate package re-exports this API; examples and
// commands should not need to reach into the model packages directly.
package core

import (
	"fmt"

	"softstate/internal/multihop"
	"softstate/internal/rand"
	"softstate/internal/sim"
	"softstate/internal/singlehop"
)

// Protocol identifies one of the paper's five generic signaling protocols.
type Protocol = singlehop.Protocol

// The five protocols, from pure soft state to pure hard state.
const (
	SS    = singlehop.SS
	SSER  = singlehop.SSER
	SSRT  = singlehop.SSRT
	SSRTR = singlehop.SSRTR
	HS    = singlehop.HS
)

// Protocols returns all five protocols in the paper's order.
func Protocols() []Protocol { return singlehop.Protocols() }

// MultihopProtocols returns the protocols covered by the multi-hop study.
func MultihopProtocols() []Protocol { return []Protocol{SS, SSRT, HS} }

// Params are the single-hop system parameters (§III-A).
type Params = singlehop.Params

// MultihopParams are the path parameters (§III-B).
type MultihopParams = multihop.Params

// Metrics are the single-hop analytic outputs.
type Metrics = singlehop.Metrics

// MultihopMetrics are the multi-hop analytic outputs.
type MultihopMetrics = multihop.Metrics

// DefaultParams returns the paper's Kazaa-scenario single-hop defaults.
func DefaultParams() Params { return singlehop.DefaultParams() }

// DefaultMultihopParams returns the paper's bandwidth-reservation path
// defaults.
func DefaultMultihopParams() MultihopParams { return multihop.DefaultParams() }

// Analyze solves the single-hop CTMC for proto at p.
func Analyze(proto Protocol, p Params) (Metrics, error) {
	return singlehop.Analyze(proto, p)
}

// AnalyzeMultihop solves the multi-hop CTMC for proto at p.
func AnalyzeMultihop(proto Protocol, p MultihopParams) (MultihopMetrics, error) {
	return multihop.Analyze(proto, p)
}

// IntegratedCost is C = α·I + Λ (eq. 8).
func IntegratedCost(alpha float64, m Metrics) float64 {
	return singlehop.IntegratedCost(alpha, m)
}

// SimConfig parameterizes an event-level single-hop simulation.
type SimConfig = sim.Config

// SimResult is the single-hop simulation output.
type SimResult = sim.Result

// MultihopSimConfig parameterizes an event-level path simulation.
type MultihopSimConfig = sim.MultiConfig

// MultihopSimResult is the path simulation output.
type MultihopSimResult = sim.MultiResult

// TimerKind selects the timer distribution for simulations.
type TimerKind = rand.TimerKind

// Timer distribution families. Deployed protocols use Deterministic; the
// analytic model assumes Exponential (see the timer ablation for why the
// distinction matters for state-timeout timers).
const (
	Exponential   = rand.Exponential
	Deterministic = rand.Deterministic
	UniformJitter = rand.UniformJitter
)

// Simulate runs the event-level single-hop simulator.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.RunSingleHop(cfg) }

// SimulateMultihop runs the event-level path simulator.
func SimulateMultihop(cfg MultihopSimConfig) (MultihopSimResult, error) {
	return sim.RunMultiHop(cfg)
}

// Comparison pairs a protocol with its analytic metrics.
type Comparison struct {
	Protocol Protocol
	Metrics  Metrics
}

// Compare solves every protocol at the same single-hop parameter point,
// in the paper's order — the five-way comparison behind Figures 4–10.
func Compare(p Params) ([]Comparison, error) {
	out := make([]Comparison, 0, 5)
	for _, proto := range Protocols() {
		m, err := Analyze(proto, p)
		if err != nil {
			return nil, fmt.Errorf("core: comparing %v: %w", proto, err)
		}
		out = append(out, Comparison{Protocol: proto, Metrics: m})
	}
	return out, nil
}

// BestProtocol returns the protocol minimizing the integrated cost
// C = α·I + Λ at parameter point p — the decision question the paper's
// cost model is built to answer.
func BestProtocol(alpha float64, p Params) (Protocol, float64, error) {
	cmp, err := Compare(p)
	if err != nil {
		return 0, 0, err
	}
	best := cmp[0].Protocol
	bestCost := IntegratedCost(alpha, cmp[0].Metrics)
	for _, c := range cmp[1:] {
		if cost := IntegratedCost(alpha, c.Metrics); cost < bestCost {
			best, bestCost = c.Protocol, cost
		}
	}
	return best, bestCost, nil
}
