// Package transport is the kernel-socket layer of the signaling runtime:
// batched datagram I/O the node and signal layers write into instead of a
// raw net.PacketConn. A Conn moves many datagrams per syscall where the
// platform allows it, and counts what it does — syscalls, datagrams,
// batch-size distributions — so the paper's wire-cost metrics extend down
// to the kernel crossing.
//
// Three backends share the Conn interface:
//
//   - udp-batch (ListenUDPBatch on linux/amd64 and linux/arm64): real
//     sendmmsg/recvmmsg over one or more SO_REUSEPORT sockets, the
//     production path. The x/net ipv4.PacketConn batch API would provide
//     the same calls, but this repo builds hermetically with a zero-dep
//     go.mod, so the two syscalls are bound directly.
//   - plain (Wrap): any net.PacketConn — kernel UDP sockets on other
//     platforms, and the in-memory lossy pipes the virtual-time harness
//     runs on. One datagram per syscall, byte-identical WriteTo ordering,
//     which is what keeps deterministic replays deterministic.
//   - stream (NewStream): length-prefixed datagram framing over TCP for
//     the reliable variants, with reconnect-and-resume semantics.
//
// All Conn implementations are safe for concurrent use.
package transport

import (
	"net"
	"sync/atomic"
	"time"

	"softstate/internal/telemetry"
)

const (
	// DefaultBatchSize is how many datagrams one ReadBatch/WriteBatch
	// moves per syscall unless the caller sizes its rings otherwise. 32
	// amortizes the ~1 µs kernel crossing to noise without holding more
	// than half a megabyte of ring buffers per lane.
	DefaultBatchSize = 32
	// MaxDatagram bounds one datagram's encoded size. The wire codec's
	// worst case (header + MaxKeyLen + MaxValueLen + trailer) is ≈8.7 KB,
	// so 16 KB rings never truncate a legal datagram.
	MaxDatagram = 16 << 10
)

// Message is one datagram slot in a batch ring. Buf is the caller-owned
// backing storage a ReadBatch fills; Data is the filled region (aliasing
// some slot's Buf) and stays valid only until the next ReadBatch on the
// same ring. For writes the caller sets Data and Addr; Buf is ignored.
type Message struct {
	Buf  []byte
	Data []byte
	Addr net.Addr
}

// NewBatch allocates a ring of n message slots (DefaultBatchSize when
// n <= 0), each backed by MaxDatagram bytes of one contiguous block.
func NewBatch(n int) []Message {
	if n <= 0 {
		n = DefaultBatchSize
	}
	ms := make([]Message, n)
	backing := make([]byte, n*MaxDatagram)
	for i := range ms {
		ms[i].Buf = backing[i*MaxDatagram : (i+1)*MaxDatagram : (i+1)*MaxDatagram]
	}
	return ms
}

// Conn is a net.PacketConn that can additionally move whole batches per
// call. ReadBatch blocks until at least one datagram is available, fills
// up to len(ms) slots, and returns the count; WriteBatch transmits every
// message (retrying partial kernel completions) and returns how many the
// transport accepted — per-message temporary failures count as accepted,
// like a lossy link, while a hard transport error stops the batch.
type Conn interface {
	net.PacketConn
	ReadBatch(ms []Message) (int, error)
	WriteBatch(ms []Message) (int, error)
	Stats() *Stats
}

// Multi is implemented by conns that multiplex several kernel sockets
// (SO_REUSEPORT shards): each sub-conn is an independent read lane.
type Multi interface {
	Conns() []Conn
}

// Fanout returns c's independent read lanes: its sub-conns when c is a
// Multi, else c itself. Run one read loop per lane.
func Fanout(c Conn) []Conn {
	if m, ok := c.(Multi); ok {
		return m.Conns()
	}
	return []Conn{c}
}

// As returns pc itself when it is already a Conn, else Wrap(pc).
func As(pc net.PacketConn) Conn {
	if c, ok := pc.(Conn); ok {
		return c
	}
	return Wrap(pc)
}

// Stats counts a conn's kernel-boundary activity. The fields are
// value-embedded telemetry instruments, so reading them is free and a
// metrics registry can expose them without a second set of increments.
// Batch-size histograms observe datagram counts (1 unit = 1 datagram,
// stored in the histogram's duration domain).
type Stats struct {
	ReadCalls      telemetry.Counter // read syscalls (or transport reads)
	ReadDatagrams  telemetry.Counter // datagrams delivered to ReadBatch/ReadFrom
	WriteCalls     telemetry.Counter // write syscalls (or transport writes)
	WriteDatagrams telemetry.Counter // datagrams handed to the kernel
	Truncated      telemetry.Counter // oversized inbound datagrams dropped
	ReadBatchSize  telemetry.Histogram
	WriteBatchSize telemetry.Histogram
}

func (s *Stats) observeRead(dgrams int64) {
	s.ReadCalls.Add(1)
	s.ReadDatagrams.Add(dgrams)
	s.ReadBatchSize.Observe(time.Duration(dgrams))
}

func (s *Stats) observeWrite(dgrams int64) {
	s.WriteCalls.Add(1)
	s.WriteDatagrams.Add(dgrams)
	s.WriteBatchSize.Observe(time.Duration(dgrams))
}

// DatagramsPerRead returns delivered datagrams per read syscall so far
// (0 before the first read).
func (s *Stats) DatagramsPerRead() float64 {
	if c := s.ReadCalls.Value(); c > 0 {
		return float64(s.ReadDatagrams.Value()) / float64(c)
	}
	return 0
}

// DatagramsPerWrite returns transmitted datagrams per write syscall so
// far (0 before the first write).
func (s *Stats) DatagramsPerWrite() float64 {
	if c := s.WriteCalls.Value(); c > 0 {
		return float64(s.WriteDatagrams.Value()) / float64(c)
	}
	return 0
}

// Register exposes the counters and batch-size histograms on reg under
// the given constant labels. A nil registry is a no-op.
func (s *Stats) Register(reg *telemetry.Registry, labels telemetry.Labels) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(telemetry.Opts{
		Name:   "softstate_transport_read_syscalls_total",
		Help:   "Transport read syscalls (recvmmsg/recvfrom/stream reads).",
		Labels: labels,
	}, &s.ReadCalls)
	reg.RegisterCounter(telemetry.Opts{
		Name:   "softstate_transport_read_datagrams_total",
		Help:   "Datagrams delivered by the transport read path.",
		Labels: labels,
	}, &s.ReadDatagrams)
	reg.RegisterCounter(telemetry.Opts{
		Name:   "softstate_transport_write_syscalls_total",
		Help:   "Transport write syscalls (sendmmsg/sendto/stream flushes).",
		Labels: labels,
	}, &s.WriteCalls)
	reg.RegisterCounter(telemetry.Opts{
		Name:   "softstate_transport_write_datagrams_total",
		Help:   "Datagrams handed to the transport write path.",
		Labels: labels,
	}, &s.WriteDatagrams)
	reg.RegisterCounter(telemetry.Opts{
		Name:   "softstate_transport_truncated_total",
		Help:   "Oversized inbound datagrams dropped by the batch rings.",
		Labels: labels,
	}, &s.Truncated)
	reg.RegisterHistogram(telemetry.Opts{
		Name:   "softstate_transport_read_batch_datagrams",
		Help:   "Datagrams per read syscall (batch-size distribution).",
		Labels: labels,
	}, &s.ReadBatchSize)
	reg.RegisterHistogram(telemetry.Opts{
		Name:   "softstate_transport_write_batch_datagrams",
		Help:   "Datagrams per write syscall (batch-size distribution).",
		Labels: labels,
	}, &s.WriteBatchSize)
}

// writeChunks drives transmit until all n prepared messages are out:
// transmit(off) sends some suffix starting at off and returns how many it
// moved. Partial kernel completions (sendmmsg accepting fewer than asked)
// resume where they stopped; a zero count without error stops the loop.
func writeChunks(n int, transmit func(off int) (int, error)) (int, error) {
	sent := 0
	for sent < n {
		cnt, err := transmit(sent)
		if err != nil {
			return sent, err
		}
		if cnt <= 0 {
			break
		}
		sent += cnt
	}
	return sent, nil
}

// isTemporary mirrors the signal layer's lossy-link semantics: a timeout
// counts as "sent and lost", not as a transport failure.
func isTemporary(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// wrapConn adapts any net.PacketConn to Conn: one datagram per call, with
// syscall accounting. It preserves the exact WriteTo call order of the
// batch it is handed, which is what keeps virtual-time runs over lossy
// pipes byte-reproducible.
type wrapConn struct {
	net.PacketConn
	st Stats
}

// Wrap adapts pc to the batch interface (pass-through batching: each slot
// is one underlying ReadFrom/WriteTo).
func Wrap(pc net.PacketConn) Conn { return &wrapConn{PacketConn: pc} }

func (c *wrapConn) Stats() *Stats { return &c.st }

func (c *wrapConn) ReadFrom(p []byte) (int, net.Addr, error) {
	n, addr, err := c.PacketConn.ReadFrom(p)
	if err == nil {
		c.st.observeRead(1)
	}
	return n, addr, err
}

func (c *wrapConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	n, err := c.PacketConn.WriteTo(p, addr)
	if err == nil || isTemporary(err) {
		c.st.observeWrite(1)
	}
	return n, err
}

func (c *wrapConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := c.ReadFrom(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].Data = ms[0].Buf[:n]
	ms[0].Addr = addr
	return 1, nil
}

func (c *wrapConn) WriteBatch(ms []Message) (int, error) {
	for i := range ms {
		if _, err := c.WriteTo(ms[i].Data, ms[i].Addr); err != nil && !isTemporary(err) {
			return i, err
		}
	}
	return len(ms), nil
}

// multiConn is N SO_REUSEPORT sockets behind one Conn: writes round-robin
// across sockets (the kernel hashes inbound flows to sockets on its own),
// reads on the combined conn use the first socket, and Conns exposes each
// socket as its own read lane. All sockets share one Stats.
type multiConn struct {
	conns []Conn
	st    *Stats
	next  atomic.Uint32
}

func (m *multiConn) Conns() []Conn { return m.conns }
func (m *multiConn) Stats() *Stats { return m.st }

// pick rotates the write socket. Exact fairness is irrelevant; spreading
// the send-buffer pressure is the point.
func (m *multiConn) pick() Conn {
	return m.conns[int(m.next.Add(1))%len(m.conns)]
}

func (m *multiConn) ReadFrom(p []byte) (int, net.Addr, error) { return m.conns[0].ReadFrom(p) }
func (m *multiConn) ReadBatch(ms []Message) (int, error)      { return m.conns[0].ReadBatch(ms) }
func (m *multiConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	return m.pick().WriteTo(p, addr)
}
func (m *multiConn) WriteBatch(ms []Message) (int, error) { return m.pick().WriteBatch(ms) }
func (m *multiConn) LocalAddr() net.Addr                  { return m.conns[0].LocalAddr() }

func (m *multiConn) Close() error {
	var first error
	for _, c := range m.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *multiConn) SetDeadline(t time.Time) error {
	var first error
	for _, c := range m.conns {
		if err := c.SetDeadline(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *multiConn) SetReadDeadline(t time.Time) error {
	var first error
	for _, c := range m.conns {
		if err := c.SetReadDeadline(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *multiConn) SetWriteDeadline(t time.Time) error {
	var first error
	for _, c := range m.conns {
		if err := c.SetWriteDeadline(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Options configure the kernel-socket backends.
type Options struct {
	// Sockets is the SO_REUSEPORT socket count for ListenUDPBatch
	// (default 1). Each socket is an independent read lane; the kernel
	// hashes inbound flows across them.
	Sockets int
	// BatchSize caps datagrams per sendmmsg/recvmmsg (default
	// DefaultBatchSize).
	BatchSize int
	// RecvBuffer is the per-socket SO_RCVBUF request in bytes (default
	// 4 MiB): a fan-in burst of a full summary sweep must not overflow
	// the socket before the read loop drains it.
	RecvBuffer int
}

func (o Options) withDefaults() Options {
	if o.Sockets <= 0 {
		o.Sockets = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.RecvBuffer <= 0 {
		o.RecvBuffer = 4 << 20
	}
	return o
}
