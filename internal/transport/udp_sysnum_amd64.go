//go:build linux && amd64

package transport

// mmsg syscall numbers for linux/amd64. The frozen syscall package
// carries SYS_RECVMMSG but predates sendmmsg, so both are pinned here.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
