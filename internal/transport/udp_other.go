//go:build !linux || !(amd64 || arm64)

package transport

import "net"

// ListenUDPBatch on platforms without bound mmsg syscalls: one plain
// kernel socket behind the pass-through batcher — one datagram per
// syscall, same interface, honest Stats. Options.Sockets collapses to 1
// (SO_REUSEPORT sharding is bound only on linux).
func ListenUDPBatch(addr string, o Options) (Conn, error) {
	o = o.withDefaults()
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	if uc, ok := pc.(*net.UDPConn); ok {
		uc.SetReadBuffer(o.RecvBuffer)
	}
	return Wrap(pc), nil
}
