package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// Stream frame format — the length-prefixed datagram framing the TCP
// backend speaks:
//
//	offset  size  field
//	0       1     frame type (frameHello | frameData)
//	1       4     payload length, big-endian (≤ maxFramePayload)
//	5       L     payload
//
// frameHello carries the dialer's stable identity string and must be the
// first frame on every connection; frameData carries one signaling
// datagram, byte-identical to what the UDP backends would put on the
// wire.
const (
	frameHello byte = 1
	frameData  byte = 2

	frameHeaderLen = 5
	// maxFramePayload bounds one frame's payload; identical to
	// MaxDatagram so a framed stream carries exactly what a UDP socket
	// would.
	maxFramePayload = MaxDatagram
)

var (
	errFrameType   = errors.New("transport: unknown frame type")
	errFrameLength = errors.New("transport: frame length out of range")
)

// appendFrame appends one encoded frame to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeFrame decodes the first frame in b, returning its payload (an
// alias into b) and the remaining bytes. io.ErrShortBuffer means b holds
// an incomplete frame (read more); other errors mean the stream is
// corrupt and must be torn down.
func decodeFrame(b []byte) (typ byte, payload, rest []byte, err error) {
	if len(b) < frameHeaderLen {
		return 0, nil, b, io.ErrShortBuffer
	}
	typ = b[0]
	if typ != frameHello && typ != frameData {
		return 0, nil, b, errFrameType
	}
	n := binary.BigEndian.Uint32(b[1:frameHeaderLen])
	if n > maxFramePayload {
		return 0, nil, b, errFrameLength
	}
	end := frameHeaderLen + int(n)
	if len(b) < end {
		return 0, nil, b, io.ErrShortBuffer
	}
	return typ, b[frameHeaderLen:end], b[end:], nil
}

// readFrame reads one frame from br into buf (which must hold
// maxFramePayload bytes); the returned payload aliases buf.
func readFrame(br *bufio.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	if typ != frameHello && typ != frameData {
		return 0, nil, errFrameType
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if int(n) > len(buf) {
		return 0, nil, errFrameLength
	}
	if _, err := io.ReadFull(br, buf[:n]); err != nil {
		return 0, nil, err
	}
	return typ, buf[:n], nil
}
