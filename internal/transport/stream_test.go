package transport

import (
	"fmt"
	"net"
	"testing"
	"time"
)

func newListenerStream(t *testing.T, name string) *Stream {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := NewStream(name, ln, Options{})
	t.Cleanup(func() { s.Close() })
	return s
}

func readOne(t *testing.T, s *Stream) (string, net.Addr) {
	t.Helper()
	ch := make(chan Message, 1)
	go func() {
		ms := NewBatch(1)
		if n, err := s.ReadBatch(ms); err == nil && n == 1 {
			ch <- ms[0]
		}
	}()
	select {
	case m := <-ch:
		return string(m.Data), m.Addr
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for stream datagram")
		return "", nil
	}
}

// TestStreamRoundTrip covers both directions: a dial-only client sends to
// the server's TCP address, and the server replies to the client's
// StreamAddr identity over the accepted connection.
func TestStreamRoundTrip(t *testing.T) {
	srv := newListenerStream(t, "")
	cli := NewStream("client-1", nil, Options{})
	defer cli.Close()

	srvAddr, err := net.ResolveTCPAddr("tcp", srv.LocalAddr().String())
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if _, err := cli.WriteTo([]byte("ping"), srvAddr); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	data, from := readOne(t, srv)
	if data != "ping" {
		t.Fatalf("server got %q", data)
	}
	id, ok := from.(StreamAddr)
	if !ok || string(id) != "client-1" {
		t.Fatalf("source = %#v, want StreamAddr(client-1)", from)
	}

	if _, err := srv.WriteTo([]byte("pong"), from); err != nil {
		t.Fatalf("reply WriteTo: %v", err)
	}
	data, from = readOne(t, cli)
	if data != "pong" {
		t.Fatalf("client got %q", data)
	}
	if from.String() != srvAddr.String() {
		t.Fatalf("reply source = %v, want dialed addr %v", from, srvAddr)
	}
}

// TestStreamWriteBatchFlush checks WriteBatch coalesces many frames into
// one TCP write per peer (pending counted, one flush).
func TestStreamWriteBatchFlush(t *testing.T) {
	srv := newListenerStream(t, "")
	cli := NewStream("batcher", nil, Options{})
	defer cli.Close()
	srvAddr, _ := net.ResolveTCPAddr("tcp", srv.LocalAddr().String())

	const n = 10
	ms := NewBatch(n)
	for i := range ms {
		ms[i].Data = append(ms[i].Buf[:0], []byte(fmt.Sprintf("b-%02d", i))...)
		ms[i].Addr = srvAddr
	}
	if sent, err := cli.WriteBatch(ms); err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v", sent, err)
	}
	if got := cli.Stats().WriteDatagrams.Value(); got != n {
		t.Fatalf("WriteDatagrams = %d, want %d", got, n)
	}
	// One hello write + at most a couple of flushes, far fewer than n.
	if calls := cli.Stats().WriteCalls.Value(); calls >= n {
		t.Fatalf("WriteCalls = %d: stream did not coalesce %d frames", calls, n)
	}

	seen := make(map[string]bool)
	for len(seen) < n {
		data, _ := readOne(t, srv)
		seen[data] = true
	}
}

// TestStreamReconnectIdentity is the seq-resume foundation: after every
// TCP connection is severed, the next datagram from the same client must
// arrive with the same StreamAddr source, so receiver-side sessions (and
// their sequence spaces) carry over instead of restarting.
func TestStreamReconnectIdentity(t *testing.T) {
	srv := newListenerStream(t, "")
	cli := NewStream("sticky-id", nil, Options{})
	defer cli.Close()
	srvAddr, _ := net.ResolveTCPAddr("tcp", srv.LocalAddr().String())

	if _, err := cli.WriteTo([]byte("before"), srvAddr); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	_, from1 := readOne(t, srv)

	cli.DisconnectAll()
	srv.DisconnectAll()

	// The dialer redials lazily on the next write; one datagram may be
	// lost in the race with the teardown, so retry until one lands.
	got := make(chan net.Addr, 1)
	go func() {
		ms := NewBatch(1)
		for {
			n, err := srv.ReadBatch(ms)
			if err != nil {
				return
			}
			if n == 1 && string(ms[0].Data) == "after" {
				got <- ms[0].Addr
				return
			}
		}
	}()
	var from2 net.Addr
	deadline := time.After(5 * time.Second)
send:
	for {
		if _, err := cli.WriteTo([]byte("after"), srvAddr); err != nil {
			t.Fatalf("WriteTo after disconnect: %v", err)
		}
		select {
		case from2 = <-got:
			break send
		case <-deadline:
			t.Fatal("no datagram delivered after reconnect")
		case <-time.After(50 * time.Millisecond):
		}
	}

	if from1.String() != from2.String() {
		t.Fatalf("source changed across reconnect: %v -> %v", from1, from2)
	}
	if _, ok := from2.(StreamAddr); !ok {
		t.Fatalf("source = %#v, want StreamAddr", from2)
	}
}

// TestStreamUnreachablePeer checks datagram-loss semantics: writing to a
// dead TCP endpoint reports success (the datagram is "sent and lost") and
// never wedges the caller.
func TestStreamUnreachablePeer(t *testing.T) {
	cli := NewStream("lonely", nil, Options{})
	defer cli.Close()
	// Grab a port with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead, _ := net.ResolveTCPAddr("tcp", ln.Addr().String())
	ln.Close()

	if n, err := cli.WriteTo([]byte("void"), dead); err != nil || n != 4 {
		t.Fatalf("WriteTo dead peer = %d, %v; want 4, nil", n, err)
	}
}
