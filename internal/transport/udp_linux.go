//go:build linux && (amd64 || arm64)

package transport

import (
	"bytes"
	"context"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
	"unsafe"
)

// soReusePort is SO_REUSEPORT; the frozen syscall package predates the
// constant on linux.
const soReusePort = 0xf

// ListenUDPBatch binds o.Sockets SO_REUSEPORT UDP sockets on addr and
// returns a Conn whose ReadBatch/WriteBatch are real recvmmsg/sendmmsg
// calls — up to o.BatchSize datagrams per kernel crossing. With several
// sockets the kernel hashes inbound flows across them; Fanout exposes
// each as an independent read lane.
func ListenUDPBatch(addr string, o Options) (Conn, error) {
	o = o.withDefaults()
	st := &Stats{}
	lc := net.ListenConfig{
		Control: func(_, _ string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	conns := make([]Conn, 0, o.Sockets)
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	bound := addr
	for i := 0; i < o.Sockets; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", bound)
		if err != nil {
			closeAll()
			return nil, err
		}
		uc := pc.(*net.UDPConn)
		uc.SetReadBuffer(o.RecvBuffer)
		bc, err := newBatchConn(uc, o, st)
		if err != nil {
			uc.Close()
			closeAll()
			return nil, err
		}
		conns = append(conns, bc)
		// Later sockets must land on the first socket's port even when
		// addr asked the kernel for port 0.
		bound = uc.LocalAddr().String()
	}
	if len(conns) == 1 {
		return conns[0], nil
	}
	return &multiConn{conns: conns, st: st}, nil
}

// mmsghdr mirrors struct mmsghdr: one msghdr plus the kernel-written
// datagram length (padded to the msghdr alignment).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// batchConn is one kernel UDP socket driven through recvmmsg/sendmmsg on
// its raw fd, parked on the runtime netpoller between batches. The rings
// (headers, iovecs, sockaddr storage) are allocated once; a steady-state
// batch only rewrites iovec base pointers.
type batchConn struct {
	uc *net.UDPConn
	rc syscall.RawConn
	st *Stats

	rmu sync.Mutex // serializes ReadBatch and guards rr
	wmu sync.Mutex // serializes WriteBatch and guards wr
	rr  *mmsgRing
	wr  *mmsgRing
}

func newBatchConn(uc *net.UDPConn, o Options, st *Stats) (*batchConn, error) {
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &batchConn{
		uc: uc, rc: rc, st: st,
		rr: newMmsgRing(o.BatchSize),
		wr: newMmsgRing(o.BatchSize),
	}, nil
}

func (c *batchConn) Stats() *Stats { return c.st }

// ReadBatch blocks until the socket is readable, then drains up to
// len(ms) datagrams in one recvmmsg. Truncated datagrams (larger than the
// slot's Buf) are counted and dropped; the call loops until at least one
// intact datagram is delivered.
func (c *batchConn) ReadBatch(ms []Message) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	n := len(ms)
	if n > len(c.rr.hs) {
		n = len(c.rr.hs)
	}
	if n == 0 {
		return 0, nil
	}
	for {
		for i := 0; i < n; i++ {
			c.rr.prepareRead(i, ms[i].Buf)
		}
		cnt, err := c.rawRecv(c.rr.hs[:n])
		if err != nil {
			return 0, err
		}
		out := 0
		for i := 0; i < cnt; i++ {
			h := &c.rr.hs[i]
			if h.hdr.Flags&syscall.MSG_TRUNC != 0 {
				c.st.Truncated.Add(1)
				continue
			}
			addr := c.rr.cache.lookup(c.rr.sas[i][:h.hdr.Namelen])
			if addr == nil {
				continue
			}
			// Data may alias a skipped slot's Buf; it stays valid until
			// the next ReadBatch rewrites the ring, per the contract.
			ms[out].Data = ms[i].Buf[:h.n]
			ms[out].Addr = addr
			out++
		}
		if out > 0 {
			c.st.observeRead(int64(out))
			return out, nil
		}
	}
}

func (c *batchConn) rawRecv(hs []mmsghdr) (int, error) {
	for {
		var cnt int
		var errno syscall.Errno
		err := c.rc.Read(func(fd uintptr) bool {
			cnt, errno = recvmmsg(fd, hs, syscall.MSG_DONTWAIT)
			return errno != syscall.EAGAIN
		})
		if err != nil {
			return 0, err
		}
		switch errno {
		case 0:
			return cnt, nil
		case syscall.EINTR:
			continue
		default:
			return 0, os.NewSyscallError("recvmmsg", errno)
		}
	}
}

// WriteBatch transmits every message via sendmmsg, retrying partial
// kernel completions until the whole batch is out. Messages whose Addr is
// not a *net.UDPAddr fall back to one WriteTo each.
func (c *batchConn) WriteBatch(ms []Message) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	written := 0
	for written < len(ms) {
		chunk := ms[written:]
		limit := len(c.wr.hs)
		if len(chunk) < limit {
			limit = len(chunk)
		}
		prep := 0
		for prep < limit && c.wr.prepareWrite(prep, &chunk[prep]) {
			prep++
		}
		if prep == 0 {
			// Exotic addr type or empty payload: single-datagram path.
			if _, err := c.uc.WriteTo(chunk[0].Data, chunk[0].Addr); err != nil && !isTemporary(err) {
				return written, err
			}
			c.st.observeWrite(1)
			written++
			continue
		}
		sent, err := writeChunks(prep, func(off int) (int, error) {
			cnt, serr := c.rawSend(c.wr.hs[off:prep])
			if serr == nil && cnt > 0 {
				c.st.observeWrite(int64(cnt))
			}
			return cnt, serr
		})
		written += sent
		if err != nil {
			return written, err
		}
		if sent < prep {
			return written, nil // kernel made no progress; unreachable in practice
		}
	}
	return written, nil
}

func (c *batchConn) rawSend(hs []mmsghdr) (int, error) {
	for {
		var cnt int
		var errno syscall.Errno
		err := c.rc.Write(func(fd uintptr) bool {
			cnt, errno = sendmmsg(fd, hs, syscall.MSG_DONTWAIT)
			return errno != syscall.EAGAIN
		})
		if err != nil {
			return 0, err
		}
		switch errno {
		case 0:
			return cnt, nil
		case syscall.EINTR:
			continue
		default:
			return 0, os.NewSyscallError("sendmmsg", errno)
		}
	}
}

// Single-datagram net.PacketConn surface, counted like one-message
// batches so plain and batched paths share one accounting.

func (c *batchConn) ReadFrom(p []byte) (int, net.Addr, error) {
	n, addr, err := c.uc.ReadFrom(p)
	if err == nil {
		c.st.observeRead(1)
	}
	return n, addr, err
}

func (c *batchConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	n, err := c.uc.WriteTo(p, addr)
	if err == nil || isTemporary(err) {
		c.st.observeWrite(1)
	}
	return n, err
}

func (c *batchConn) Close() error                      { return c.uc.Close() }
func (c *batchConn) LocalAddr() net.Addr               { return c.uc.LocalAddr() }
func (c *batchConn) SetDeadline(t time.Time) error     { return c.uc.SetDeadline(t) }
func (c *batchConn) SetReadDeadline(t time.Time) error { return c.uc.SetReadDeadline(t) }
func (c *batchConn) SetWriteDeadline(t time.Time) error {
	return c.uc.SetWriteDeadline(t)
}

// mmsgRing is one direction's preallocated syscall scaffolding: headers,
// one iovec per slot, and sockaddr storage the kernel reads (sends) or
// writes (receives).
type mmsgRing struct {
	hs    []mmsghdr
	iovs  []syscall.Iovec
	sas   [][syscall.SizeofSockaddrAny]byte
	cache addrCache
}

func newMmsgRing(n int) *mmsgRing {
	r := &mmsgRing{
		hs:   make([]mmsghdr, n),
		iovs: make([]syscall.Iovec, n),
		sas:  make([][syscall.SizeofSockaddrAny]byte, n),
	}
	for i := range r.hs {
		r.hs[i].hdr.Iov = &r.iovs[i]
		// Iovlen is uint64 on both tagged architectures; the frozen
		// syscall package has no SetIovlen.
		r.hs[i].hdr.Iovlen = 1
		r.hs[i].hdr.Name = &r.sas[i][0]
	}
	return r
}

func (r *mmsgRing) prepareRead(i int, buf []byte) {
	r.iovs[i].Base = &buf[0]
	r.iovs[i].SetLen(len(buf))
	r.hs[i].hdr.Namelen = syscall.SizeofSockaddrAny
	r.hs[i].hdr.Flags = 0
	r.hs[i].n = 0
}

// prepareWrite points slot i at m, reporting false for addresses the raw
// path cannot encode (the caller falls back to WriteTo).
func (r *mmsgRing) prepareWrite(i int, m *Message) bool {
	ua, ok := m.Addr.(*net.UDPAddr)
	if !ok || len(m.Data) == 0 {
		return false
	}
	salen := encodeSockaddr(&r.sas[i], ua)
	if salen == 0 {
		return false
	}
	r.iovs[i].Base = &m.Data[0]
	r.iovs[i].SetLen(len(m.Data))
	r.hs[i].hdr.Namelen = salen
	r.hs[i].hdr.Flags = 0
	r.hs[i].n = 0
	return true
}

func recvmmsg(fd uintptr, hs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysRECVMMSG, fd,
		uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)), uintptr(flags), 0, 0)
	return int(n), e
}

func sendmmsg(fd uintptr, hs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)), uintptr(flags), 0, 0)
	return int(n), e
}

// addrCache remembers the last decoded source sockaddr: fan-in from one
// hot peer (a receiver's single upstream node, a burst from one sender)
// resolves to the same *net.UDPAddr without allocating per datagram.
// Handed-out addresses are never mutated, so aliasing them is safe.
type addrCache struct {
	sa   [syscall.SizeofSockaddrAny]byte
	n    int
	addr *net.UDPAddr
}

func (ac *addrCache) lookup(sa []byte) *net.UDPAddr {
	if ac.addr != nil && ac.n == len(sa) && bytes.Equal(ac.sa[:ac.n], sa) {
		return ac.addr
	}
	a := decodeSockaddr(sa)
	if a == nil {
		return nil
	}
	ac.n = copy(ac.sa[:], sa)
	ac.addr = a
	return a
}

// decodeSockaddr converts a raw kernel sockaddr to a *net.UDPAddr. The
// family field is native-endian; both tagged architectures are
// little-endian. IPv6 zone indices are dropped (link-local scoping is out
// of scope for this runtime).
func decodeSockaddr(b []byte) *net.UDPAddr {
	if len(b) < syscall.SizeofSockaddrInet4 {
		return nil
	}
	switch uint16(b[0]) | uint16(b[1])<<8 {
	case syscall.AF_INET:
		ip := make(net.IP, 4)
		copy(ip, b[4:8])
		return &net.UDPAddr{IP: ip, Port: int(b[2])<<8 | int(b[3])}
	case syscall.AF_INET6:
		if len(b) < syscall.SizeofSockaddrInet6 {
			return nil
		}
		ip := make(net.IP, 16)
		copy(ip, b[8:24])
		return &net.UDPAddr{IP: ip, Port: int(b[2])<<8 | int(b[3])}
	}
	return nil
}

// encodeSockaddr writes a's raw sockaddr into sa, returning its length
// (0 when a cannot be encoded). Ports are network byte order.
func encodeSockaddr(sa *[syscall.SizeofSockaddrAny]byte, a *net.UDPAddr) uint32 {
	if ip4 := a.IP.To4(); ip4 != nil {
		for i := 0; i < syscall.SizeofSockaddrInet4; i++ {
			sa[i] = 0
		}
		sa[0] = syscall.AF_INET
		sa[2] = byte(a.Port >> 8)
		sa[3] = byte(a.Port)
		copy(sa[4:8], ip4)
		return syscall.SizeofSockaddrInet4
	}
	ip6 := a.IP.To16()
	if ip6 == nil {
		return 0
	}
	for i := 0; i < syscall.SizeofSockaddrInet6; i++ {
		sa[i] = 0
	}
	sa[0] = syscall.AF_INET6
	sa[2] = byte(a.Port >> 8)
	sa[3] = byte(a.Port)
	copy(sa[8:24], ip6)
	return syscall.SizeofSockaddrInet6
}
