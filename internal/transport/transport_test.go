package transport

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

func listenBatch(t *testing.T, o Options) Conn {
	t.Helper()
	c, err := ListenUDPBatch("127.0.0.1:0", o)
	if err != nil {
		t.Fatalf("ListenUDPBatch: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestUDPBatchRoundTrip pushes a full batch through WriteBatch and drains
// it with ReadBatch, checking payloads, source addresses, and that the
// syscall counters actually show batching (fewer calls than datagrams).
func TestUDPBatchRoundTrip(t *testing.T) {
	rx := listenBatch(t, Options{})
	tx := listenBatch(t, Options{})
	to := rx.LocalAddr().(*net.UDPAddr)

	const n = 16
	out := NewBatch(n)
	for i := range out {
		out[i].Data = append(out[i].Buf[:0], []byte(fmt.Sprintf("datagram-%02d", i))...)
		out[i].Addr = to
	}
	if sent, err := tx.WriteBatch(out); err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, n)
	}

	in := NewBatch(n)
	got := make(map[string]bool)
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < n {
		rx.SetReadDeadline(deadline)
		cnt, err := rx.ReadBatch(in)
		if err != nil {
			t.Fatalf("ReadBatch: %v (got %d/%d)", err, len(got), n)
		}
		for i := 0; i < cnt; i++ {
			got[string(in[i].Data)] = true
			if ua, ok := in[i].Addr.(*net.UDPAddr); !ok || ua.Port != tx.LocalAddr().(*net.UDPAddr).Port {
				t.Fatalf("datagram %d from %v, want port %d", i, in[i].Addr, tx.LocalAddr().(*net.UDPAddr).Port)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !got[fmt.Sprintf("datagram-%02d", i)] {
			t.Fatalf("missing datagram %d; got %v", i, got)
		}
	}

	ts, rs := tx.Stats(), rx.Stats()
	if ts.WriteDatagrams.Value() != n {
		t.Fatalf("WriteDatagrams = %d, want %d", ts.WriteDatagrams.Value(), n)
	}
	if ts.WriteCalls.Value() >= n {
		t.Fatalf("WriteCalls = %d: sendmmsg did not batch %d datagrams", ts.WriteCalls.Value(), n)
	}
	if rs.ReadDatagrams.Value() != n {
		t.Fatalf("ReadDatagrams = %d, want %d", rs.ReadDatagrams.Value(), n)
	}
	if got := ts.DatagramsPerWrite(); got < 2 {
		t.Fatalf("DatagramsPerWrite = %v, want >= 2", got)
	}
}

// TestUDPBatchTruncated feeds the ring a datagram larger than its slot
// buffers: it must be counted, dropped, and not block delivery of the
// intact datagram behind it.
func TestUDPBatchTruncated(t *testing.T) {
	rx := listenBatch(t, Options{})
	tx, err := net.Dial("udp", rx.LocalAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tx.Close()

	big := make([]byte, 512)
	if _, err := tx.Write(big); err != nil {
		t.Fatalf("write big: %v", err)
	}
	if _, err := tx.Write([]byte("small")); err != nil {
		t.Fatalf("write small: %v", err)
	}

	// Slots too small for the 512-byte datagram.
	ms := make([]Message, 4)
	for i := range ms {
		ms[i].Buf = make([]byte, 64)
	}
	rx.SetReadDeadline(time.Now().Add(5 * time.Second))
	cnt, err := rx.ReadBatch(ms)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if cnt != 1 || string(ms[0].Data) != "small" {
		t.Fatalf("ReadBatch = %d (%q), want 1 (\"small\")", cnt, ms[0].Data)
	}
	if got := rx.Stats().Truncated.Value(); got != 1 {
		t.Fatalf("Truncated = %d, want 1", got)
	}
}

// TestUDPBatchMultiSocket checks SO_REUSEPORT sharding: every datagram
// sent at the shared port is delivered by exactly one of the fan-out
// lanes, and the lanes share one Stats.
func TestUDPBatchMultiSocket(t *testing.T) {
	rx := listenBatch(t, Options{Sockets: 4})
	lanes := Fanout(rx)
	if len(lanes) != 4 {
		t.Fatalf("Fanout lanes = %d, want 4", len(lanes))
	}
	for _, l := range lanes {
		if l.Stats() != rx.Stats() {
			t.Fatal("lanes must share the combined conn's Stats")
		}
	}

	const n = 64
	got := make(chan string, n)
	for _, l := range lanes {
		go func(c Conn) {
			ms := NewBatch(8)
			for {
				cnt, err := c.ReadBatch(ms)
				if err != nil {
					return
				}
				for i := 0; i < cnt; i++ {
					got <- string(ms[i].Data)
				}
			}
		}(l)
	}

	// Distinct source sockets so the kernel's flow hash can spread load.
	for i := 0; i < n; i++ {
		c, err := net.Dial("udp", rx.LocalAddr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if _, err := fmt.Fprintf(c, "m-%02d", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		c.Close()
	}

	seen := make(map[string]bool)
	timeout := time.After(5 * time.Second)
	for len(seen) < n {
		select {
		case s := <-got:
			seen[s] = true
		case <-timeout:
			t.Fatalf("received %d/%d datagrams", len(seen), n)
		}
	}
}

// TestUDPBatchPlainPathCounts checks the single-datagram surface shares
// the batch path's accounting.
func TestUDPBatchPlainPathCounts(t *testing.T) {
	rx := listenBatch(t, Options{})
	tx := listenBatch(t, Options{})
	if _, err := tx.WriteTo([]byte("one"), rx.LocalAddr()); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	buf := make([]byte, 64)
	rx.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, _, err := rx.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "one" {
		t.Fatalf("ReadFrom = %q, %v", buf[:n], err)
	}
	if tx.Stats().WriteCalls.Value() != 1 || tx.Stats().WriteDatagrams.Value() != 1 {
		t.Fatalf("plain WriteTo counted %d calls / %d datagrams, want 1/1",
			tx.Stats().WriteCalls.Value(), tx.Stats().WriteDatagrams.Value())
	}
	if rx.Stats().ReadCalls.Value() != 1 || rx.Stats().ReadDatagrams.Value() != 1 {
		t.Fatalf("plain ReadFrom counted %d calls / %d datagrams, want 1/1",
			rx.Stats().ReadCalls.Value(), rx.Stats().ReadDatagrams.Value())
	}
}

// TestWriteChunksPartial drives the partial-completion loop with a
// transmit stub that accepts a few messages at a time, errors mid-way, or
// stalls, checking offsets resume exactly where the kernel stopped.
func TestWriteChunksPartial(t *testing.T) {
	var offs []int
	sent, err := writeChunks(10, func(off int) (int, error) {
		offs = append(offs, off)
		if off < 7 {
			return 3, nil
		}
		return 10 - off, nil
	})
	if sent != 10 || err != nil {
		t.Fatalf("writeChunks = %d, %v; want 10, nil", sent, err)
	}
	want := []int{0, 3, 6, 9}
	if len(offs) != len(want) {
		t.Fatalf("offsets = %v, want %v", offs, want)
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offs, want)
		}
	}

	boom := errors.New("boom")
	sent, err = writeChunks(10, func(off int) (int, error) {
		if off >= 4 {
			return 0, boom
		}
		return 2, nil
	})
	if sent != 4 || !errors.Is(err, boom) {
		t.Fatalf("writeChunks = %d, %v; want 4, boom", sent, err)
	}

	// A zero count without error must stop, not spin.
	sent, err = writeChunks(5, func(off int) (int, error) { return 0, nil })
	if sent != 0 || err != nil {
		t.Fatalf("writeChunks stall = %d, %v; want 0, nil", sent, err)
	}
}

// TestWrapBatch checks the pass-through batcher: per-slot WriteTo order
// and one-datagram reads.
func TestWrapBatch(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	rx := Wrap(pc)
	defer rx.Close()
	pc2, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	tx := Wrap(pc2)
	defer tx.Close()

	out := NewBatch(3)
	for i := range out {
		out[i].Data = append(out[i].Buf[:0], byte('a'+i))
		out[i].Addr = rx.LocalAddr()
	}
	if sent, err := tx.WriteBatch(out); err != nil || sent != 3 {
		t.Fatalf("WriteBatch = %d, %v", sent, err)
	}
	if tx.Stats().WriteCalls.Value() != 3 {
		t.Fatalf("wrap WriteCalls = %d, want 3 (one per datagram)", tx.Stats().WriteCalls.Value())
	}
	in := NewBatch(3)
	rx.SetReadDeadline(time.Now().Add(5 * time.Second))
	cnt, err := rx.ReadBatch(in)
	if err != nil || cnt != 1 {
		t.Fatalf("wrap ReadBatch = %d, %v; want 1 datagram per call", cnt, err)
	}
}
