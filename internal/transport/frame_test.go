package transport

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, maxFramePayload),
	}
	var wire []byte
	wire = appendFrame(wire, frameHello, []byte("node-a"))
	for _, p := range payloads {
		wire = appendFrame(wire, frameData, p)
	}

	// decodeFrame walks the concatenation.
	typ, got, rest, err := decodeFrame(wire)
	if err != nil || typ != frameHello || string(got) != "node-a" {
		t.Fatalf("hello = %d %q %v", typ, got, err)
	}
	for i, want := range payloads {
		typ, got, rest, err = decodeFrame(rest)
		if err != nil || typ != frameData || !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %d (%d bytes) %v", i, typ, len(got), err)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}

	// readFrame sees the same sequence through a bufio.Reader.
	br := bufio.NewReader(bytes.NewReader(wire))
	buf := make([]byte, maxFramePayload)
	typ, got, err = readFrame(br, buf)
	if err != nil || typ != frameHello || string(got) != "node-a" {
		t.Fatalf("readFrame hello = %d %q %v", typ, got, err)
	}
	for i, want := range payloads {
		typ, got, err = readFrame(br, buf)
		if err != nil || typ != frameData || !bytes.Equal(got, want) {
			t.Fatalf("readFrame %d = %d (%d bytes) %v", i, typ, len(got), err)
		}
	}
	if _, _, err = readFrame(br, buf); err != io.EOF {
		t.Fatalf("readFrame at EOF = %v, want io.EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Incomplete header and incomplete payload are "need more bytes".
	if _, _, _, err := decodeFrame([]byte{frameData, 0}); err != io.ErrShortBuffer {
		t.Fatalf("short header = %v", err)
	}
	partial := appendFrame(nil, frameData, []byte("hello"))[:7]
	if _, _, _, err := decodeFrame(partial); err != io.ErrShortBuffer {
		t.Fatalf("short payload = %v", err)
	}

	// Unknown type and oversized length are corruption.
	bad := appendFrame(nil, frameData, []byte("ok"))
	bad[0] = 99
	if _, _, _, err := decodeFrame(bad); !errors.Is(err, errFrameType) {
		t.Fatalf("bad type = %v", err)
	}
	huge := []byte{frameData, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, _, err := decodeFrame(huge); !errors.Is(err, errFrameLength) {
		t.Fatalf("oversized = %v", err)
	}
	br := bufio.NewReader(bytes.NewReader(huge))
	if _, _, err := readFrame(br, make([]byte, maxFramePayload)); !errors.Is(err, errFrameLength) {
		t.Fatalf("readFrame oversized = %v", err)
	}
}

// FuzzFrame cross-checks decodeFrame against readFrame on arbitrary
// bytes: same accept/reject decision, same payload, and re-encoding an
// accepted frame reproduces the consumed input.
func FuzzFrame(f *testing.F) {
	f.Add(appendFrame(nil, frameHello, []byte("id")))
	f.Add(appendFrame(nil, frameData, bytes.Repeat([]byte("k"), 100)))
	f.Add([]byte{frameData, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, rest, err := decodeFrame(b)
		br := bufio.NewReader(bytes.NewReader(b))
		buf := make([]byte, maxFramePayload)
		rTyp, rPayload, rErr := readFrame(br, buf)
		if err != nil {
			if err == io.ErrShortBuffer {
				// Streaming sees truncation as EOF mid-frame.
				if rErr != io.EOF && rErr != io.ErrUnexpectedEOF && rErr != nil == (err == nil) {
					t.Fatalf("short: decode=%v read=%v", err, rErr)
				}
			} else if !errors.Is(rErr, err) {
				t.Fatalf("corrupt: decode=%v read=%v", err, rErr)
			}
			return
		}
		if rErr != nil || rTyp != typ || !bytes.Equal(rPayload, payload) {
			t.Fatalf("accept mismatch: decode=(%d,%d bytes) read=(%d,%d bytes,%v)",
				typ, len(payload), rTyp, len(rPayload), rErr)
		}
		consumed := len(b) - len(rest)
		if got := appendFrame(nil, typ, payload); !bytes.Equal(got, b[:consumed]) {
			t.Fatal("re-encode does not reproduce input")
		}
	})
}
