//go:build linux && arm64

package transport

// mmsg syscall numbers for linux/arm64 (asm-generic table).
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
