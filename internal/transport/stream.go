package transport

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"softstate/internal/bufpool"
)

// streamBufSize sizes the per-connection bufio reader and writer. 64 KB
// holds a whole WriteBatch of frames, so one flush is one TCP write.
const streamBufSize = 64 << 10

// streamDialTimeout bounds one (re)connect attempt.
const streamDialTimeout = 5 * time.Second

// StreamAddr is the net.Addr a Stream presents for peers identified by
// their stable stream identity (the hello-frame string) rather than a
// socket address. It is what keeps receiver-side state alive across
// reconnects: a dialer that drops and redials arrives with the same
// identity, hence the same source address, hence the same per-(source,
// key) entries and sequence space — receivers never observe a sequence
// regression.
type StreamAddr string

// Network implements net.Addr.
func (a StreamAddr) Network() string { return "softstate+stream" }

// String implements net.Addr.
func (a StreamAddr) String() string { return string(a) }

// errPeerGone marks a send to an accepted peer whose connection died:
// the stream cannot dial an identity, so the datagram is dropped like a
// lossy link would and protocol retransmission recovers.
var errPeerGone = errors.New("transport: stream peer not connected")

// inFrame is one received datagram queued for ReadBatch/ReadFrom.
type inFrame struct {
	buf  *bufpool.Buf
	from net.Addr
}

// Stream is the reliable transport backend: signaling datagrams framed
// over per-peer TCP connections behind the same Conn interface the UDP
// backends implement. A Stream with a listener accepts inbound peers
// (keyed by their hello identity) and can also dial out; a Stream without
// one is dial-only. Dialed peers reconnect transparently on write
// failure — combined with StreamAddr identities, a sender session's
// monotone sequence space survives any number of TCP reconnects.
//
// Stats semantics: ReadCalls/WriteCalls count TCP socket reads and
// writes (one flush per touched peer per WriteBatch), datagram counters
// count frames.
type Stream struct {
	name string
	ln   net.Listener
	o    Options
	st   Stats

	inbox chan inFrame
	done  chan struct{}

	mu     sync.Mutex
	peers  map[string]*streamPeer
	closed bool

	wg sync.WaitGroup
}

// NewStream creates a stream transport. ln, when non-nil, accepts
// inbound peer connections (and its address becomes the default
// identity); a nil ln makes a dial-only client. name is the stable
// identity announced in the hello frame of outbound connections — reusing
// a name across process restarts resumes the same receiver-side source
// address. An empty name defaults to the listener address, or a random
// token for dial-only streams.
func NewStream(name string, ln net.Listener, o Options) *Stream {
	o = o.withDefaults()
	if name == "" {
		if ln != nil {
			name = ln.Addr().String()
		} else {
			name = randomStreamName()
		}
	}
	s := &Stream{
		name:  name,
		ln:    ln,
		o:     o,
		inbox: make(chan inFrame, 4*o.BatchSize),
		done:  make(chan struct{}),
		peers: make(map[string]*streamPeer),
	}
	if ln != nil {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	return s
}

func randomStreamName() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("stream-%d", os.Getpid())
	}
	return "stream-" + hex.EncodeToString(b[:])
}

// Stats implements Conn.
func (s *Stream) Stats() *Stats { return &s.st }

// LocalAddr returns the listener address, or the stream identity for
// dial-only streams.
func (s *Stream) LocalAddr() net.Addr {
	if s.ln != nil {
		return s.ln.Addr()
	}
	return StreamAddr(s.name)
}

// Deadlines are not meaningful on the multiplexed stream; the methods
// exist to satisfy net.PacketConn and accept every setting.
func (s *Stream) SetDeadline(time.Time) error      { return nil }
func (s *Stream) SetReadDeadline(time.Time) error  { return nil }
func (s *Stream) SetWriteDeadline(time.Time) error { return nil }

// ReadFrom delivers the next received datagram.
func (s *Stream) ReadFrom(b []byte) (int, net.Addr, error) {
	select {
	case f := <-s.inbox:
		n := copy(b, f.buf.B)
		from := f.from
		f.buf.Free()
		s.st.observeRead(1)
		return n, from, nil
	case <-s.done:
		return 0, nil, net.ErrClosed
	}
}

// ReadBatch blocks for the first datagram, then drains whatever else is
// already queued, up to len(ms).
func (s *Stream) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	var f inFrame
	select {
	case f = <-s.inbox:
	case <-s.done:
		return 0, net.ErrClosed
	}
	n := 0
	for {
		ms[n].Data = append(ms[n].Buf[:0], f.buf.B...)
		ms[n].Addr = f.from
		f.buf.Free()
		n++
		if n == len(ms) {
			break
		}
		drained := false
		select {
		case f = <-s.inbox:
			drained = true
		default:
		}
		if !drained {
			break
		}
	}
	s.st.ReadDatagrams.Add(int64(n))
	s.st.ReadBatchSize.Observe(time.Duration(n))
	return n, nil
}

// WriteTo frames data to the peer at addr, dialing or redialing as
// needed. Per datagram semantics, an unreachable peer loses the datagram
// (protocol retransmission recovers) rather than failing the call.
func (s *Stream) WriteTo(data []byte, addr net.Addr) (int, error) {
	p, err := s.peerFor(addr)
	if err != nil {
		return 0, err
	}
	p.sendData(data, true)
	return len(data), nil
}

// WriteBatch frames every message to its peer, then flushes each touched
// peer once — many datagrams per TCP write.
func (s *Stream) WriteBatch(ms []Message) (int, error) {
	var touched []*streamPeer
	for i := range ms {
		p, err := s.peerFor(ms[i].Addr)
		if err != nil {
			s.flushPeers(touched)
			return i, err
		}
		if p.sendData(ms[i].Data, false) {
			seen := false
			for _, t := range touched {
				if t == p {
					seen = true
					break
				}
			}
			if !seen {
				touched = append(touched, p)
			}
		}
	}
	s.flushPeers(touched)
	return len(ms), nil
}

func (s *Stream) flushPeers(peers []*streamPeer) {
	for _, p := range peers {
		p.mu.Lock()
		if p.bw != nil && p.flushLocked() != nil {
			p.resetLocked()
		}
		p.mu.Unlock()
	}
}

// peerFor returns (creating if needed) the peer slot for addr. A
// StreamAddr names an accepted identity and is never dialed; any other
// addr doubles as the dial target.
func (s *Stream) peerFor(addr net.Addr) (*streamPeer, error) {
	key := addr.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, net.ErrClosed
	}
	p := s.peers[key]
	if p == nil {
		p = &streamPeer{s: s, key: key, from: addr}
		if _, isID := addr.(StreamAddr); !isID {
			p.target = key
		}
		s.peers[key] = p
	}
	return p, nil
}

// DisconnectAll closes every live peer connection without closing the
// stream: dialed peers re-establish on the next write, accepted peers
// when their dialer reconnects. An operational drain tool; the reconnect
// seq-resume tests use it to sever every TCP session mid-run.
func (s *Stream) DisconnectAll() {
	s.mu.Lock()
	peers := make([]*streamPeer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		p.resetLocked()
		p.mu.Unlock()
	}
}

// Close shuts the listener and every peer connection and waits for the
// reader goroutines. Idempotent.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	peers := make([]*streamPeer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	close(s.done)
	if s.ln != nil {
		s.ln.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		p.resetLocked()
		p.mu.Unlock()
	}
	s.wg.Wait()
	// Drain queued frames back to the pool; readers are unblocked by the
	// done channel, not by inbox closure.
	for {
		select {
		case f := <-s.inbox:
			f.buf.Free()
		default:
			return nil
		}
	}
}

func (s *Stream) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.readAccepted(&countingConn{Conn: c, st: &s.st})
	}
}

// readAccepted owns one inbound connection: identity handshake, then
// frame consumption attributed to StreamAddr(identity).
func (s *Stream) readAccepted(c net.Conn) {
	defer s.wg.Done()
	br := bufio.NewReaderSize(c, streamBufSize)
	buf := make([]byte, maxFramePayload)
	typ, payload, err := readFrame(br, buf)
	if err != nil || typ != frameHello || len(payload) == 0 {
		c.Close()
		return
	}
	p, gen := s.adoptAccepted(string(payload), c)
	if p == nil {
		c.Close()
		return
	}
	s.consume(br, buf, p.from)
	p.dropConn(c, gen)
}

// adoptAccepted registers conn as identity's live connection, replacing
// (and closing) any previous one — a reconnecting dialer resumes its
// source address, so receiver-side state and sequence spaces carry over.
func (s *Stream) adoptAccepted(id string, c net.Conn) (*streamPeer, int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0
	}
	p := s.peers[id]
	if p == nil {
		p = &streamPeer{s: s, key: id, from: StreamAddr(id)}
		s.peers[id] = p
	}
	s.mu.Unlock()
	p.mu.Lock()
	if p.c != nil {
		p.c.Close()
	}
	p.gen++
	gen := p.gen
	p.c = c
	p.bw = bufio.NewWriterSize(c, streamBufSize)
	p.pending = 0
	p.mu.Unlock()
	return p, gen
}

// consume delivers data frames from br into the inbox until the
// connection dies or the stream closes.
func (s *Stream) consume(br *bufio.Reader, buf []byte, from net.Addr) {
	for {
		typ, payload, err := readFrame(br, buf)
		if err != nil {
			return
		}
		if typ != frameData {
			continue
		}
		b := bufpool.Get()
		b.B = append(b.B[:0], payload...)
		select {
		case s.inbox <- inFrame{buf: b, from: from}:
		case <-s.done:
			b.Free()
			return
		}
	}
}

// readDialed consumes replies on a dialed connection; inbound frames are
// attributed to the address that was dialed, so the signal layer's
// per-peer lookup matches its session keys.
func (s *Stream) readDialed(c net.Conn, p *streamPeer, gen int) {
	defer s.wg.Done()
	br := bufio.NewReaderSize(c, streamBufSize)
	buf := make([]byte, maxFramePayload)
	s.consume(br, buf, p.from)
	p.dropConn(c, gen)
}

// streamPeer is one remote endpoint's connection state: the live conn
// (if any), its buffered writer, and the generation counter that stops a
// dead connection's reader from tearing down its replacement.
type streamPeer struct {
	s      *Stream
	key    string   // peers-map key
	target string   // dial target; "" for accepted identities
	from   net.Addr // source address stamped on this peer's inbound frames

	mu      sync.Mutex
	c       net.Conn
	bw      *bufio.Writer
	pending int // frames buffered since the last flush
	gen     int
}

// sendData frames data to the peer, optionally flushing immediately. A
// failed write on a dialable peer redials once; on an accepted peer the
// datagram is dropped (the dialer owns reconnection). Returns whether
// the frame was buffered on a live connection.
func (p *streamPeer) sendData(data []byte, flush bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if err := p.connectLocked(); err != nil {
			return false
		}
		if err := p.writeFrameLocked(frameData, data); err == nil {
			p.pending++
			if !flush {
				return true
			}
			if p.flushLocked() == nil {
				return true
			}
		}
		p.resetLocked()
		if p.target == "" {
			return false
		}
	}
	return false
}

// connectLocked ensures a live connection, dialing and handshaking when
// the peer is dialable. Callers hold p.mu.
func (p *streamPeer) connectLocked() error {
	if p.c != nil {
		return nil
	}
	if p.target == "" {
		return errPeerGone
	}
	raw, err := net.DialTimeout("tcp", p.target, streamDialTimeout)
	if err != nil {
		return err
	}
	c := &countingConn{Conn: raw, st: &p.s.st}
	bw := bufio.NewWriterSize(c, streamBufSize)
	var hdr [frameHeaderLen]byte
	hdr[0] = frameHello
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(p.s.name)))
	bw.Write(hdr[:])
	bw.WriteString(p.s.name)
	if err := bw.Flush(); err != nil {
		raw.Close()
		return err
	}
	// The spawn is fenced by the stream lock so a concurrent Close either
	// sees this connection in the peer table or refuses the Add.
	p.s.mu.Lock()
	if p.s.closed {
		p.s.mu.Unlock()
		raw.Close()
		return net.ErrClosed
	}
	p.s.wg.Add(1)
	p.s.mu.Unlock()
	p.gen++
	p.c = c
	p.bw = bw
	p.pending = 0
	go p.s.readDialed(c, p, p.gen)
	return nil
}

func (p *streamPeer) writeFrameLocked(typ byte, payload []byte) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := p.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := p.bw.Write(payload)
	return err
}

func (p *streamPeer) flushLocked() error {
	if p.pending == 0 {
		return nil
	}
	if err := p.bw.Flush(); err != nil {
		return err
	}
	p.s.st.WriteDatagrams.Add(int64(p.pending))
	p.s.st.WriteBatchSize.Observe(time.Duration(p.pending))
	p.pending = 0
	return nil
}

// resetLocked drops the live connection (if any); the generation bump
// tells its reader goroutine the teardown already happened.
func (p *streamPeer) resetLocked() {
	if p.c != nil {
		p.c.Close()
		p.c = nil
	}
	p.bw = nil
	p.pending = 0
	p.gen++
}

// dropConn clears the peer's connection if c is still current; a stale
// generation means a reconnect already replaced it.
func (p *streamPeer) dropConn(c net.Conn, gen int) {
	p.mu.Lock()
	if p.gen == gen {
		p.resetLocked()
	} else {
		c.Close()
	}
	p.mu.Unlock()
}

// countingConn counts TCP socket reads and writes into the stream's
// Stats, so datagrams-per-syscall is measurable on the reliable backend
// too.
type countingConn struct {
	net.Conn
	st *Stats
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.st.ReadCalls.Add(1)
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.st.WriteCalls.Add(1)
	}
	return n, err
}
