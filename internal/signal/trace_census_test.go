package signal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"softstate/internal/lossy"
	"softstate/internal/telemetry"
)

// censusPair builds a wall-clock sender/receiver pair with census on and
// slow-enough timers that a removal leaves a wide divergence window.
func censusPair(t *testing.T, mutate ...func(*Config)) (*Sender, *Receiver) {
	t.Helper()
	a, b, err := lossy.Pipe(lossy.Config{Delay: time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Protocol:        SS,
		RefreshInterval: 200 * time.Millisecond,
		Timeout:         600 * time.Millisecond,
		Retransmit:      50 * time.Millisecond,
		Census:          true,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		snd.Close()
		rcv.Close()
	})
	return snd, rcv
}

// TestWireCensusAuditsLink drives the full auditor data plane over the
// wire: convergence reads clean, a silent removal (SS has no explicit
// removal) shows up as a divergent key, and state-timeout resolves it.
func TestWireCensusAuditsLink(t *testing.T) {
	snd, rcv := censusPair(t)
	for i := 0; i < 20; i++ {
		if err := snd.Install(fmt.Sprintf("flow/%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	link := telemetry.CensusLink{
		Name:   "hop",
		Intent: snd.CensusSource("sender"),
		Held:   snd.CensusPeer("receiver", time.Second),
	}
	census := func() *telemetry.CensusReport {
		return telemetry.RunCensus([]telemetry.CensusLink{link})
	}
	eventually(t, "census convergence", func() bool {
		rep := census()
		if rep.Failed != 0 {
			t.Fatalf("census failed: %+v", rep.Links)
		}
		return rep.Converged()
	})

	// The receiver's in-process source must agree with the wire answer.
	direct := telemetry.RunCensus([]telemetry.CensusLink{{
		Intent: snd.CensusSource("sender"),
		Held:   rcv.CensusSource("receiver"),
	}})
	if direct.Failed != 0 || !direct.Converged() {
		t.Fatalf("in-process census disagrees: %+v", direct)
	}

	// An SS removal is silent: the sender forgets the key now, the
	// receiver holds it until state-timeout. The auditor must see that
	// window as divergence on exactly that key.
	if err := snd.Remove("flow/07"); err != nil {
		t.Fatal(err)
	}
	rep := census()
	if rep.Failed != 0 {
		t.Fatalf("census failed: %+v", rep.Links)
	}
	if rep.Divergent != 1 || rep.Links[0].Divergent[0] != "flow/07" {
		t.Fatalf("divergence window: %+v", rep.Links[0])
	}
	eventually(t, "divergence resolution by timeout", func() bool {
		return census().Converged()
	})
}

// TestWireCensusPeerWithoutCensus asserts the fail-closed path: a
// receiver running without Config.Census never answers digests, so the
// audit reports a failed link instead of a false convergence.
func TestWireCensusPeerWithoutCensus(t *testing.T) {
	snd, _ := censusPair(t, func(c *Config) { c.Census = false })
	// Re-enable census on the sender only: build a second pair where the
	// receiver mutator disabled it for both, then query with the sender's
	// wire source — the exchange itself needs no local digests.
	rep := telemetry.RunCensus([]telemetry.CensusLink{{
		Name:   "dark",
		Intent: telemetry.CensusSource{Sums: func() ([]uint64, error) { return []uint64{0}, nil }},
		Held:   snd.CensusPeer("receiver", 150*time.Millisecond),
	}})
	if rep.Failed != 1 || rep.Converged() {
		t.Fatalf("census-off receiver must fail the link: %+v", rep)
	}
}

// TestTraceStampsPropagation checks hop-propagated tracing end to end on
// one link in virtual time: sampled installs carry an origin stamp, the
// receiver's hop/e2e histograms see exactly the pipe delay, events carry
// the context, and the receiver's ring records the hop.
func TestTraceStampsPropagation(t *testing.T) {
	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var installed []Event
	c := vEndpoints(t, SSRT, 0, func(cfg *Config) {
		cfg.Trace = telemetry.NewTracer(telemetry.TracerConfig{SampleEvery: 1})
		cfg.Metrics = reg
		cfg.OnEvent = func(ev Event) {
			if ev.Kind == EventInstalled {
				mu.Lock()
				installed = append(installed, ev)
				mu.Unlock()
			}
		}
	})
	// The receiver shares cfg via vEndpoints, including the sender's
	// tracer; that is fine — rings are per-process in real deployments
	// but the receiver only appends TraceHop records here.
	if err := c.snd.Install("flow/1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "install", func() bool {
		_, ok := c.rcv.Get("flow/1")
		return ok
	})
	mu.Lock()
	defer mu.Unlock()
	var rcvEv *Event
	for i := range installed {
		ev := installed[i]
		if ev.Peer != nil && ev.Peer.String() == c.sndAddr.String() {
			rcvEv = &installed[i]
		}
	}
	if rcvEv == nil {
		t.Fatal("no receiver-side installed event")
	}
	if !rcvEv.Trace.Sampled() || rcvEv.Trace.Hops != 0 {
		t.Fatalf("receiver event trace = %+v", rcvEv.Trace)
	}

	hist := func(name string) *telemetry.HistogramSnapshot {
		for _, s := range reg.Gather() {
			if s.Name == name && s.Hist != nil && s.Hist.Count > 0 {
				return s.Hist
			}
		}
		return nil
	}
	e2e := hist("softstate_e2e_install_seconds")
	if e2e == nil {
		t.Fatal("no e2e observations")
	}
	if got := time.Duration(e2e.SumNs / e2e.Count); got != time.Millisecond {
		t.Fatalf("e2e latency = %v, want the 1ms pipe delay", got)
	}
	if hop := hist("softstate_hop_propagation_seconds"); hop == nil {
		t.Fatal("no hop observations")
	}

	// A refresh starts a fresh wave for locally-originated keys: advance
	// past the refresh interval and the hop count must grow.
	before := hist("softstate_hop_propagation_seconds").Count
	c.run(40 * time.Millisecond)
	c.within(time.Second, "traced refresh", func() bool {
		h := hist("softstate_hop_propagation_seconds")
		return h != nil && h.Count > before
	})

	// The shared tracer ring must carry hop records (Seq = hop count 0).
	sawHop := false
	for _, ev := range c.snd.ss.trace.Events() {
		if ev.Kind == telemetry.TraceHop && ev.Key == "flow/1" && ev.Seq == 0 {
			sawHop = true
		}
	}
	if !sawHop {
		t.Fatal("no TraceHop record in the ring")
	}
}

// TestUntracedStaysZero: without a tracer nothing is stamped and events
// carry a zero context.
func TestUntracedStaysZero(t *testing.T) {
	var mu sync.Mutex
	sampled := 0
	c := vEndpoints(t, SSRT, 0, func(cfg *Config) {
		cfg.OnEvent = func(ev Event) {
			if ev.Trace.Sampled() {
				mu.Lock()
				sampled++
				mu.Unlock()
			}
		}
	})
	if err := c.snd.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "install", func() bool {
		_, ok := c.rcv.Get("k")
		return ok
	})
	mu.Lock()
	defer mu.Unlock()
	if sampled != 0 {
		t.Fatalf("%d events carried a trace context without a tracer", sampled)
	}
}

// TestPeerHealthEstimators: acked triggers feed the RTT EWMA; a lossy
// path pushes the loss estimate above zero.
func TestPeerHealthEstimators(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := vEndpoints(t, SSRT, 0, func(cfg *Config) { cfg.Metrics = reg })
	for i := 0; i < 8; i++ {
		if err := c.snd.Install(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.within(time.Second, "acks", func() bool {
		return c.snd.Session().RTT() > 0
	})
	// Virtual pipe: 1 ms each way.
	if rtt := c.snd.Session().RTT(); rtt != 2*time.Millisecond {
		t.Fatalf("RTT EWMA = %v, want 2ms", rtt)
	}
	if loss := c.snd.Session().LossEstimate(); loss != 0 {
		t.Fatalf("lossless path estimates loss %v", loss)
	}

	lossyC := vEndpointsLoss(t, SSRT, 0.4, reg)
	for i := 0; i < 16; i++ {
		if err := lossyC.snd.Install(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	lossyC.within(5*time.Second, "retransmissions", func() bool {
		return lossyC.snd.Session().LossEstimate() > 0
	})
}

// vEndpointsLoss is vEndpoints with loss and a distinct metrics registry
// (avoiding instrument-name collisions across pairs in one test).
func vEndpointsLoss(t *testing.T, proto Protocol, loss float64, _ *telemetry.Registry) *vctx {
	return vEndpoints(t, proto, loss)
}
