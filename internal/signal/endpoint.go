package signal

import (
	"net"
	"sync"

	"softstate/internal/transport"
)

// fencedConn fences writes to a transport.Conn against its closure.
// Writers hold the read lock across WriteTo/WriteBatch and close takes
// the write lock, so a write never races or follows Close — both
// endpoints share this one implementation so the fence cannot drift
// between them.
type fencedConn struct {
	bc     transport.Conn
	mu     sync.RWMutex // write-held only to close bc
	closed bool
}

// write transmits data to to, reporting whether a live transport accepted
// it (temporary timeouts count as sent, like a lossy link). Safe under
// shard locks: the transport, not the state table, serializes writes.
func (tp *fencedConn) write(data []byte, to net.Addr) bool {
	tp.mu.RLock()
	defer tp.mu.RUnlock()
	if tp.closed {
		return false
	}
	_, err := tp.bc.WriteTo(data, to)
	return err == nil || isNetTemporary(err)
}

// writeBatch transmits every message in one transport batch (one syscall
// on batching backends) and returns how many a live transport accepted.
func (tp *fencedConn) writeBatch(ms []transport.Message) int {
	tp.mu.RLock()
	defer tp.mu.RUnlock()
	if tp.closed {
		return 0
	}
	n, _ := tp.bc.WriteBatch(ms)
	return n
}

// close fences the transport shut and closes the conn, unblocking any
// reader pending in ReadFrom/ReadBatch.
func (tp *fencedConn) close() error {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	tp.closed = true
	return tp.bc.Close()
}

// eventSink is the non-blocking observability stream, fenced so emitters
// never race the channel closing. An optional synchronous hook (fn) sees
// every event, even ones the channel would drop.
type eventSink struct {
	ch     chan Event
	fn     func(Event)  // Config.OnEvent; may be nil
	mu     sync.RWMutex // write-held only to close ch
	closed bool
}

// emit delivers ev without ever blocking the protocol, dropping it if the
// buffer is full or the sink already closed. The hook runs first so
// consumers that need lossless delivery (relays) see every event.
func (es *eventSink) emit(ev Event) {
	if es.fn != nil {
		es.fn(ev)
	}
	es.mu.RLock()
	if !es.closed {
		select {
		case es.ch <- ev:
		default:
		}
	}
	es.mu.RUnlock()
}

// close closes the stream (idempotently); callers must have stopped all
// emitters that are not fenced by emit's read lock.
func (es *eventSink) close() {
	es.mu.Lock()
	if !es.closed {
		es.closed = true
		close(es.ch)
	}
	es.mu.Unlock()
}
