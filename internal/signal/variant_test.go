package signal

import (
	"fmt"
	"testing"
	"time"

	"softstate/internal/statetable"
	"softstate/internal/variant"
)

// testAddr is a fake datagram source for direct handle-level injection.
type testAddr string

func (a testAddr) Network() string { return "test" }
func (a testAddr) String() string  { return string(a) }

// TestRetxDelayBackoffSchedule: the retransmission engine's delays grow
// geometrically from Γ and clamp at RetransmitMax.
func TestRetxDelayBackoffSchedule(t *testing.T) {
	v, snd := vSenderOnly(t, Config{
		Protocol:   SSRT,
		Retransmit: 10 * time.Millisecond,
		// defaults: backoff 2, cap 16Γ = 160 ms
	})
	_ = v
	ss := snd.ss
	want := []time.Duration{10, 20, 40, 80, 160, 160, 160}
	for n, w := range want {
		w *= time.Millisecond
		if got := ss.retxDelay(n); got != w {
			t.Fatalf("retxDelay(%d) = %v, want %v", n, got, w)
		}
	}
}

// TestRetxDelayConstantWhenBackoffDisabled: RetransmitBackoff below 1
// clamps to the paper's constant-Γ behavior.
func TestRetxDelayConstantWhenBackoffDisabled(t *testing.T) {
	_, snd := vSenderOnly(t, Config{
		Protocol:          SSRT,
		Retransmit:        10 * time.Millisecond,
		RetransmitBackoff: 0.5,
	})
	for n := 0; n < 5; n++ {
		if got := snd.ss.retxDelay(n); got != 10*time.Millisecond {
			t.Fatalf("retxDelay(%d) = %v with backoff disabled", n, got)
		}
	}
}

// TestBackoffConvergesUnderLoss is the retransmission-engine acceptance
// test: under 20% and 50% loss every reliable trigger eventually
// delivers, the matching ACKs cancel the pending retransmit timers, and
// after convergence the sender's wheel holds zero armed retransmit
// entries — no stale per-message timers survive (virtual clock, fully
// deterministic).
func TestBackoffConvergesUnderLoss(t *testing.T) {
	for _, loss := range []float64{0.2, 0.5} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(t *testing.T) {
			// Stretch refresh and timeout out of the picture so the only
			// moving part is the retransmission engine itself (otherwise
			// lost-refresh expiries keep the notify → re-trigger repair
			// churn going forever and "converged" never exists).
			c := vEndpoints(t, SSRT, loss, func(cfg *Config) {
				cfg.RefreshInterval = time.Hour
				cfg.Timeout = 3 * time.Hour
			})
			const keys = 32
			for i := 0; i < keys; i++ {
				if err := c.snd.Install(fmt.Sprintf("flow/%03d", i), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			c.within(30*time.Second, "all keys delivered", func() bool {
				return c.rcv.Len() == keys
			})
			c.within(30*time.Second, "all triggers acked", func() bool {
				return c.snd.ss.tbl.Armed(timerRetx) == 0
			})
			st := c.snd.Stats()
			if st.Sent["trigger"] <= keys {
				t.Fatalf("no retransmissions under %.0f%% loss: %d triggers for %d keys",
					loss*100, st.Sent["trigger"], keys)
			}
			// Convergence must hold: run several capped backoff periods
			// further and prove no timer ever rearms and no retransmission
			// leaks out.
			triggers := st.Sent["trigger"]
			c.run(20 * fastConfig(SSRT).Retransmit * 16)
			if got := c.snd.Stats().Sent["trigger"] - triggers; got != 0 {
				t.Fatalf("%d retransmissions after convergence", got)
			}
			if armed := c.snd.ss.tbl.Armed(timerRetx); armed != 0 {
				t.Fatalf("%d stale retransmit timers after convergence", armed)
			}
		})
	}
}

// TestRetransmittedTriggerDedup: a duplicated (retransmitted) trigger
// must be idempotent at the receiver — one install event, the ACK
// re-sent for the sender's sake — and a stale lower-sequence trigger must
// not clobber a newer value.
func TestRetransmittedTriggerDedup(t *testing.T) {
	// Loss 1 isolates the receiver: nothing real arrives, so the handle
	// calls below are the only traffic it sees.
	_, rcv := endpoints(t, SSRT, 1)
	from := testAddr("sender")
	dup := wireTrigger(5, "k", []byte("v2"))
	rcv.handle(dup, from)
	rcv.handle(dup, from)                               // retransmission of the same Seq
	rcv.handle(wireTrigger(4, "k", []byte("v1")), from) // stale retransmission
	if v, ok := rcv.GetFrom(from, "k"); !ok || string(v) != "v2" {
		t.Fatalf("value = %q, want v2 (stale or duplicate trigger clobbered it)", v)
	}
	installed, updated := 0, 0
	for done := false; !done; {
		select {
		case ev := <-rcv.Events():
			switch ev.Kind {
			case EventInstalled:
				installed++
			case EventUpdated:
				updated++
			}
		default:
			done = true
		}
	}
	if installed != 1 || updated != 0 {
		t.Fatalf("events: %d installed, %d updated; want exactly 1 installed", installed, updated)
	}
	// Every duplicate trigger still produces an ACK: the sender may be
	// retransmitting precisely because the first ACK was lost.
	if acks := rcv.Stats().Sent["ack"]; acks != 3 {
		t.Fatalf("acks sent = %d, want 3 (one per trigger datagram)", acks)
	}
}

// TestHardStateOrphanRemoval: when an HS sender dies without removing its
// state, the receiver's liveness probes go unanswered and the state is
// removed explicitly after MaxProbeMisses probe intervals — hard state's
// cleanup depends on failure detection, exactly the paper's point.
func TestHardStateOrphanRemoval(t *testing.T) {
	c := vEndpoints(t, HS, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })

	// While the sender lives, probes are answered and state survives far
	// past any soft-state horizon.
	c.run(time.Minute)
	if _, ok := c.rcv.Get("k"); !ok {
		t.Fatal("hard state vanished while its sender was alive")
	}
	st := c.snd.Stats()
	if st.Received["probe"] == 0 || st.Sent["probe-ack"] == 0 {
		t.Fatalf("no probe traffic while alive: %+v", st)
	}

	// Kill the sender without removal: probes now go unanswered.
	c.snd.Close()
	cfg := fastConfig(HS).withDefaults()
	budget := time.Duration(cfg.MaxProbeMisses+2) * cfg.ProbeInterval * 2
	c.within(budget, "orphan removal", func() bool { _, ok := c.rcv.Get("k"); return !ok })

	orphaned := false
	for done := false; !done; {
		select {
		case ev, ok := <-c.rcv.Events():
			if !ok {
				done = true
				break
			}
			orphaned = orphaned || ev.Kind == EventOrphaned
		default:
			done = true
		}
	}
	if !orphaned {
		t.Fatal("no orphaned event emitted")
	}
	// The probe slot must not linger after the orphan drop.
	if armed := c.rcv.tbl.Armed(timerProbe); armed != 0 {
		t.Fatalf("%d stale probe timers after orphan removal", armed)
	}
}

// TestOrphanNotifyRepairsLiveSender: the orphan drop carries a
// best-effort notify, so a live sender wrongly declared dead reinstalls
// its state. Simulated with a handle-level orphan against a real pair:
// the receiver orphan-drops (injected), the notify reaches the sender,
// and the re-trigger repairs.
func TestOrphanNotifyRepairsLiveSender(t *testing.T) {
	c := vEndpoints(t, HS, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	// Force the miss counter past the limit so the very next probe tick
	// orphans the entry despite the live sender.
	cfg := fastConfig(HS).withDefaults()
	forced := c.rcv.tbl.Update(rkey(c.sndAddr.String(), "k"),
		func(e *receiverEntry, _ statetable.TimerControl[receiverEntry]) {
			e.probeMisses = cfg.MaxProbeMisses
		})
	if !forced {
		t.Fatal("receiver entry not found")
	}
	// The orphan fires on the next probe tick; the notify must bring the
	// state back within one round trip plus a probe interval.
	c.within(3*cfg.ProbeInterval, "false orphan repaired", func() bool {
		_, ok := c.rcv.Get("k")
		return ok && c.snd.Stats().Received["notify"] > 0
	})
}

// TestRetiredSeqResumeAndPrune: an evicted peer's sequence bookmark keeps
// a returning peer's sequence space from regressing, and is pruned
// (bounding the retired map) after retiredTTLFactor idle periods. New
// sessions start from the time-derived incarnation base, so the space
// never restarts below any prior incarnation.
func TestRetiredSeqResumeAndPrune(t *testing.T) {
	v, snd := vSenderOnly(t, Config{
		Protocol:        SS,
		RefreshInterval: time.Hour, // no refresh traffic
		PeerIdleTimeout: 100 * time.Millisecond,
	})
	ss := snd.ss
	peer := snd.sess.Peer()

	s1 := ss.Session(peer)
	if err := s1.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Remove("k"); err != nil { // SS: entry deleted immediately
		t.Fatal(err)
	}
	seq1 := s1.seq.Load()
	v.Run(300 * time.Millisecond) // idle period + reap ticks
	if ss.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", ss.Evictions())
	}

	// Prompt return: the new session's space sits at or above the retired
	// one — the bookmark and the time-derived base both forbid regression.
	s2 := ss.Session(peer)
	if s2 == s1 {
		t.Fatal("evicted session still in the peer table")
	}
	seq2 := s2.seq.Load()
	if seq2 < seq1 {
		t.Fatalf("resumed seq = %d regressed below retired %d", seq2, seq1)
	}

	// The empty returning session is evicted again; once the bookmark
	// outlives retiredTTLFactor idle periods it is pruned, bounding the
	// retired map, and a later return starts from the incarnation base
	// alone — still above every prior sequence number.
	v.Run(300 * time.Millisecond) // second eviction
	if ss.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2", ss.Evictions())
	}
	v.Run(retiredTTLFactor*100*time.Millisecond + 200*time.Millisecond)
	sh := ss.peerShardOf(peer.String())
	sh.mu.RLock()
	_, still := sh.retired[peer.String()]
	sh.mu.RUnlock()
	if still {
		t.Fatal("retired bookmark survived past its TTL")
	}
	s3 := ss.Session(peer)
	if got := s3.seq.Load(); got < seq2 {
		t.Fatalf("post-prune seq = %d regressed below %d", got, seq2)
	}
}

// TestVariantProfileOverride: a custom profile in Config.Variant, not the
// Protocol field, decides the mechanisms — the one-knob contract.
func TestVariantProfileOverride(t *testing.T) {
	// Protocol says SS, the profile says explicit removal: the removal
	// message must be sent.
	prof := variant.Profile{Name: "SS+ER(custom)", Refresh: true, ExplicitRemoval: true}
	c := vEndpoints(t, SS, 0, func(cfg *Config) { cfg.Variant = &prof })
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	before := c.clk.Elapsed()
	if err := c.snd.Remove("k"); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "explicit removal", func() bool { _, ok := c.rcv.Get("k"); return !ok })
	if elapsed := c.clk.Elapsed() - before; elapsed > fastConfig(SS).Timeout/2 {
		t.Fatalf("removal took %v — profile override ignored, timeout removal used", elapsed)
	}
	if c.snd.Stats().Sent["removal"] == 0 {
		t.Fatal("custom profile sent no removal message")
	}
}
