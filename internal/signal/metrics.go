package signal

import (
	"strconv"

	"softstate/internal/statetable"
	"softstate/internal/telemetry"
)

// This file is the sender/receiver instrument inventory: everything an
// endpoint registers when Config.Metrics is set. Counters are the same
// value-embedded atomics the endpoint always maintained (registration
// only names them); gauges are scrape-time functions over state the
// endpoint already tracks; histograms are the only additions, and their
// Observe calls are two atomic increments guarded by the endpoint's
// measure flag.

// registerTableGauges exposes a state table's occupancy and per-shard
// wheel depth.
func registerTableGauges[V any](r *telemetry.Registry, labels telemetry.Labels, tbl *statetable.Table[V]) {
	r.GaugeFunc(telemetry.Opts{
		Name:   "softstate_table_keys",
		Help:   "Entries in the endpoint's sharded state table.",
		Labels: labels,
	}, func() float64 { return float64(tbl.Len()) })
	registerWheelDepths(r, labels, tbl.NumShards(), tbl.WheelDepth)
}

// registerWheelDepths registers one wheel-depth gauge per shard.
func registerWheelDepths(r *telemetry.Registry, labels telemetry.Labels, shards int, depth func(int) int) {
	for i := 0; i < shards; i++ {
		shard := i
		sl := make(telemetry.Labels, len(labels)+1)
		for k, v := range labels {
			sl[k] = v
		}
		sl["shard"] = strconv.Itoa(shard)
		r.GaugeFunc(telemetry.Opts{
			Name:   "softstate_wheel_depth",
			Help:   "Armed timers on one shard's hierarchical timing wheel.",
			Labels: sl,
		}, func() float64 { return float64(depth(shard)) })
	}
}

// registerSender wires the sender-side instruments onto cfg.Metrics and
// hands back the latency histograms the session paths feed.
func (ss *Sessions) registerMetrics() {
	reg := ss.cfg.Metrics
	if reg == nil {
		return
	}
	labels := metricsLabelsFor(ss.cfg, "sender")
	ss.ctrs.register(reg, labels)
	ss.histInstallAck = reg.NewHistogram(telemetry.Opts{
		Name:   "softstate_install_ack_seconds",
		Help:   "Latency from a trigger transmission to the ack completing it.",
		Labels: labels,
	})
	ss.histRemoval = reg.NewHistogram(telemetry.Opts{
		Name:   "softstate_removal_latency_seconds",
		Help:   "Latency from a reliable removal transmission to its removal-ack.",
		Labels: labels,
	})
	reg.GaugeFunc(telemetry.Opts{
		Name:   "softstate_live_keys",
		Help:   "Live (non-removing) keys across all peer sessions.",
		Labels: labels,
	}, func() float64 { return float64(ss.live.Load()) })
	reg.GaugeFunc(telemetry.Opts{
		Name:   "softstate_peer_sessions",
		Help:   "Peer sessions currently in the sender's peer table.",
		Labels: labels,
	}, func() float64 { return float64(ss.NumPeers()) })
	reg.RegisterCounter(telemetry.Opts{
		Name:   "softstate_peer_evictions_total",
		Help:   "Idle peer sessions evicted from the peer table.",
		Labels: labels,
	}, &ss.evictions)
	reg.GaugeFunc(telemetry.Opts{
		Name:   "softstate_peer_rtt_seconds",
		Help:   "Mean of the per-peer trigger→ack round-trip EWMAs (peers with at least one measured ack).",
		Labels: labels,
	}, func() float64 {
		var sum float64
		n := 0
		for _, s := range ss.Peers() {
			if v := s.rttNs.Load(); v > 0 {
				sum += float64(v) / 1e9
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	})
	reg.GaugeFunc(telemetry.Opts{
		Name:   "softstate_peer_loss_ratio",
		Help:   "Estimated loss rate across all peers: retransmits / (triggers + retransmits).",
		Labels: labels,
	}, func() float64 {
		var trigs, retxs int64
		for _, s := range ss.Peers() {
			trigs += s.trigs.Load()
			retxs += s.retxs.Load()
		}
		if trigs+retxs == 0 {
			return 0
		}
		return float64(retxs) / float64(trigs+retxs)
	})
	registerTableGauges(reg, labels, ss.tbl)
}

// registerMetrics wires the receiver-side instruments onto cfg.Metrics.
func (r *Receiver) registerMetrics() {
	reg := r.cfg.Metrics
	if reg == nil {
		return
	}
	labels := metricsLabelsFor(r.cfg, "receiver")
	r.ctrs.register(reg, labels)
	r.histJitter = reg.NewHistogram(telemetry.Opts{
		Name:   "softstate_refresh_jitter_seconds",
		Help:   "Observed interval between successive renewals of one key (refresh jitter; nominally RefreshInterval).",
		Labels: labels,
	})
	r.histHop = reg.NewHistogram(telemetry.Opts{
		Name:   "softstate_hop_propagation_seconds",
		Help:   "One-hop propagation latency of traced frames (sender hop stamp to receipt).",
		Labels: labels,
	})
	r.histE2E = reg.NewHistogram(telemetry.Opts{
		Name:   "softstate_e2e_install_seconds",
		Help:   "End-to-end install latency of traced triggers (origin stamp to receipt, across all hops).",
		Labels: labels,
	})
	registerTableGauges(reg, labels, r.tbl)
}
