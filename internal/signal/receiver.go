package signal

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"softstate/internal/statetable"
	"softstate/internal/wire"
)

// Receiver holds signaling state installed by remote Senders. One Receiver
// can serve many senders and keys; replies (ACKs, NACKs, notifications) go
// to the source address of the triggering datagram. State lives in a
// sharded state table whose timing wheels drive every state-timeout
// deadline, so one Receiver holds millions of keys with a fixed number of
// goroutines. All methods are safe for concurrent use.
type Receiver struct {
	tp  transport
	cfg Config

	tbl    *statetable.Table[receiverEntry]
	ctrs   counters
	closed atomic.Bool

	events eventSink
	wg     sync.WaitGroup
}

// receiverEntry is one installed piece of state.
type receiverEntry struct {
	value   []byte
	lastSeq uint64
	peer    net.Addr
}

// NewReceiver creates a receiver speaking cfg.Protocol on conn and starts
// its receive loop.
func NewReceiver(conn net.PacketConn, cfg Config) (*Receiver, error) {
	if conn == nil {
		return nil, errors.New("signal: nil conn")
	}
	cfg = cfg.withDefaults()
	r := &Receiver{
		tp:     transport{conn: conn},
		cfg:    cfg,
		events: eventSink{ch: make(chan Event, cfg.EventBuffer)},
	}
	r.tbl = statetable.New(statetable.Config[receiverEntry]{
		Shards:   cfg.Shards,
		OnExpire: r.onTimeout,
	})
	r.wg.Add(1)
	go r.readLoop()
	return r, nil
}

// Events exposes the observability stream; closed on Close.
func (r *Receiver) Events() <-chan Event { return r.events.ch }

// Stats returns a snapshot of message counters.
func (r *Receiver) Stats() Stats { return r.ctrs.snapshot() }

// Get returns the installed value for key.
func (r *Receiver) Get(key string) ([]byte, bool) {
	e, ok := r.tbl.Get(key)
	if !ok {
		return nil, false
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, true
}

// Len returns the number of installed keys.
func (r *Receiver) Len() int { return r.tbl.Len() }

// Keys returns the installed keys.
func (r *Receiver) Keys() []string { return r.tbl.Keys() }

// InjectFalseRemoval simulates the hard-state external failure signal
// firing falsely for key: the state is removed and the owning sender is
// notified so it can repair (paper §II, HS false notification). It reports
// whether the key existed.
func (r *Receiver) InjectFalseRemoval(key string) bool {
	if r.closed.Load() {
		return false
	}
	dropped := false
	r.tbl.Update(key, func(e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
		dropped = true
		peer := e.peer
		r.drop(key, e, tc, EventFalseRemoval)
		r.send(wire.Message{Type: wire.TypeNotify, Key: key}, peer)
	})
	return dropped
}

// Close stops all timers, closes the transport, and drains the loop.
func (r *Receiver) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.tbl.Close() // no timeout callback runs past this point
	err := r.tp.close()
	r.wg.Wait()
	r.events.close()
	return err
}

func (r *Receiver) readLoop() {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := r.tp.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		var m wire.Message
		if derr := m.UnmarshalBinary(buf[:n]); derr != nil {
			r.ctrs.decodeErrors.Add(1)
			continue
		}
		r.handle(m, from)
	}
}

func (r *Receiver) handle(m wire.Message, from net.Addr) {
	if r.closed.Load() {
		return
	}
	r.ctrs.received[m.Type].Add(1)
	switch m.Type {
	case wire.TypeTrigger, wire.TypeRefresh:
		r.tbl.Upsert(m.Key, func(e *receiverEntry, created bool, tc statetable.TimerControl[receiverEntry]) {
			if created {
				r.emit(Event{Kind: EventInstalled, Key: m.Key, Value: m.Value, Seq: m.Seq})
			} else if m.Seq >= e.lastSeq && !bytesEqual(e.value, m.Value) {
				r.emit(Event{Kind: EventUpdated, Key: m.Key, Value: m.Value, Seq: m.Seq})
			}
			// Accept only non-stale payloads: a retransmitted old trigger
			// must not clobber a newer value (sequence numbers are
			// sender-global and monotone).
			if m.Seq >= e.lastSeq || created {
				e.lastSeq = m.Seq
				e.value = m.Value
				e.peer = from
			}
			r.armTimeout(tc)
			if m.Type == wire.TypeTrigger && r.cfg.Protocol.ReliableTrigger() {
				r.send(wire.Message{Type: wire.TypeAck, Seq: m.Seq, Key: m.Key}, from)
			}
		})
	case wire.TypeRemoval:
		r.tbl.Update(m.Key, func(e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
			if m.Seq >= e.lastSeq {
				r.drop(m.Key, e, tc, EventRemoved)
			}
		})
		// ACK removals even for unknown keys: the state may have timed out
		// while the sender kept retransmitting.
		if r.cfg.Protocol.ReliableRemoval() {
			r.send(wire.Message{Type: wire.TypeRemovalAck, Seq: m.Seq, Key: m.Key}, from)
		}
	case wire.TypeSummaryRefresh:
		r.handleSummary(m, from)
	}
}

// handleSummary bulk-renews the timeouts of every key a summary refresh
// names and NACKs the ones this receiver does not hold, so the sender
// falls back to full triggers for them.
func (r *Receiver) handleSummary(m wire.Message, from net.Addr) {
	var unknown []string
	for _, key := range m.Keys {
		known := r.tbl.Update(key, func(e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
			// Same staleness guard as per-key refreshes: a delayed or
			// replayed summary (its Seq is the sender-global counter at
			// sweep time) must not rebind the peer address or renew state
			// that a newer per-key message has since superseded.
			if m.Seq < e.lastSeq {
				return
			}
			e.peer = from // track sender rebinds, like per-key refreshes do
			r.armTimeout(tc)
		})
		if !known {
			unknown = append(unknown, key)
		}
	}
	for len(unknown) > 0 {
		n := wire.SummaryFits(unknown)
		if n == 0 {
			return // unreachable: NACKed keys arrived in a datagram
		}
		r.send(wire.Message{Type: wire.TypeSummaryNack, Seq: m.Seq, Keys: unknown[:n]}, from)
		unknown = unknown[n:]
	}
}

func (r *Receiver) armTimeout(tc statetable.TimerControl[receiverEntry]) {
	if !r.cfg.Protocol.Refreshes() {
		return // hard state never times out
	}
	tc.Schedule(timerTimeout, r.cfg.Timeout)
}

// onTimeout fires when a key's state-timeout expires; it runs on a shard
// goroutine with the shard locked.
func (r *Receiver) onTimeout(key string, _ statetable.TimerKind, e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
	if r.closed.Load() {
		return
	}
	peer := e.peer
	r.drop(key, e, tc, EventExpired)
	// SS+RT and SS+RTR notify the sender of timeout removals so false
	// removals are repaired promptly.
	if r.cfg.Protocol.ReliableTrigger() && r.cfg.Protocol != HS {
		r.send(wire.Message{Type: wire.TypeNotify, Key: key}, peer)
	}
}

// drop removes an entry and emits the given event; callers hold the
// entry's shard lock via tc.
func (r *Receiver) drop(key string, e *receiverEntry, tc statetable.TimerControl[receiverEntry], kind EventKind) {
	value := e.value
	tc.Delete()
	r.emit(Event{Kind: kind, Key: key, Value: value})
}

// send encodes and transmits m to to.
func (r *Receiver) send(m wire.Message, to net.Addr) {
	if to == nil {
		return
	}
	data, err := m.Append(nil)
	if err != nil {
		return
	}
	if r.tp.write(data, to) {
		r.ctrs.sent[m.Type].Add(1)
	}
}

func (r *Receiver) emit(ev Event) { r.events.emit(ev) }

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
