package signal

import (
	"errors"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/bufpool"
	"softstate/internal/clock"
	"softstate/internal/statetable"
	"softstate/internal/telemetry"
	"softstate/internal/transport"
	"softstate/internal/variant"
	"softstate/internal/wire"
)

// Receiver holds signaling state installed by remote Senders. One Receiver
// can serve many senders concurrently: state is keyed by (source address,
// key), so two senders installing the same key hold independent entries
// with independent timeouts and sequence spaces, and replies (ACKs, NACKs,
// notifications) go to the source address of the triggering datagram.
// State lives in a sharded state table whose timing wheels drive every
// state-timeout deadline, so one Receiver holds millions of keys with a
// fixed number of goroutines. All methods are safe for concurrent use.
type Receiver struct {
	tp   fencedConn
	cfg  Config
	prof variant.Profile
	clk  clock.Clock
	det  bool      // virtual clock: order traffic deterministically
	born time.Time // clock origin for renewal stamps

	tbl    *statetable.Table[receiverEntry]
	idx    keyIndex // secondary key→entries index for any-sender lookups
	ctrs   counters
	closed atomic.Bool

	// Telemetry: trace is the lifecycle tracer (nil-safe), the histograms
	// exist only when Config.Metrics was set, and measure gates the
	// clock reads stamping renewal times. histHop and histE2E are fed by
	// inbound wire trace contexts: per-hop propagation latency on any
	// traced frame, end-to-end install latency on traced triggers.
	trace      *telemetry.Tracer
	histJitter *telemetry.Histogram
	histHop    *telemetry.Histogram
	histE2E    *telemetry.Histogram
	measure    bool

	events     eventSink
	acks       *ackBatcher  // nil unless cfg.CoalesceAcks
	ackBW      *batchWriter // flush datagram coalescer (guarded by ackMu)
	ackMu      sync.Mutex   // serializes flushAcks
	flushTimer clock.Timer  // ack flusher (virtual mode)
	done       chan struct{}
	wg         sync.WaitGroup // read loops (one per transport lane)
	flushWG    sync.WaitGroup // ack flusher; drained before the transport closes
}

// receiverEntry is one installed piece of state for one (peer, key) pair.
type receiverEntry struct {
	key     string // user key (the table key carries the peer prefix)
	value   []byte
	lastSeq uint64
	peer    net.Addr
	// probeMisses counts consecutive unanswered liveness probes (hard
	// state only); MaxProbeMisses of them orphan the entry.
	probeMisses int
	// renewedAt stamps the last accepted renewal (trigger, refresh, or
	// summary), feeding the refresh-jitter histogram; biased by +1 ns so
	// a renewal at virtual time zero still reads as stamped. Written only
	// when the receiver has metrics enabled; 0 means unstamped.
	renewedAt time.Duration
}

// rkey builds the (peer, key) table key. Address strings contain no NUL
// byte on any supported transport, so the separator is unambiguous.
func rkey(from, key string) string { return from + "\x00" + key }

// NewReceiver creates a receiver speaking cfg.Protocol on conn and starts
// its receive loop.
func NewReceiver(conn net.PacketConn, cfg Config) (*Receiver, error) {
	if conn == nil {
		return nil, errors.New("signal: nil conn")
	}
	cfg = cfg.withDefaults()
	clk := clock.Or(cfg.Clock)
	r := &Receiver{
		tp:     fencedConn{bc: transport.As(conn)},
		cfg:    cfg,
		prof:   *cfg.Variant,
		clk:    clk,
		det:    clk.Virtual(),
		born:   clk.Now(),
		events: eventSink{ch: make(chan Event, cfg.EventBuffer), fn: cfg.OnEvent},
		done:   make(chan struct{}),
		trace:  cfg.Trace,
	}
	r.measure = cfg.Metrics != nil
	r.idx.m = make(map[string]map[string]struct{})
	stcfg := statetable.Config[receiverEntry]{
		Shards:   cfg.Shards,
		Clock:    cfg.Clock,
		OnExpire: r.onTimeout,
	}
	if cfg.Census {
		// The receiver's held digest: every installed key folds (user key,
		// value, accepted seq) — the mirror of the sender's intent fold, so
		// matching sums mean the link converged. Bucketed on the user key:
		// both ends must place a key in the same bucket for the census
		// detail round to line their listings up.
		buckets := cfg.CensusBuckets
		if buckets <= 0 {
			buckets = statetable.DefaultDigestBuckets
		}
		stcfg.DigestBuckets = buckets
		stcfg.DigestFunc = func(_ string, e *receiverEntry) (uint32, uint64) {
			return statetable.DigestBucketOf(e.key, buckets), statetable.DigestKV(e.key, e.value, e.lastSeq)
		}
	}
	r.tbl = statetable.New(stcfg)
	r.registerMetrics()
	if cfg.CoalesceAcks {
		r.acks = newAckBatcher()
		r.ackBW = newBatchWriter(&r.tp, &r.ctrs)
		if r.det {
			// Virtual mode: flushes are clock callbacks armed by the first
			// ack of each batch window — no goroutine, no wall sleeps.
			r.flushTimer = clk.NewTimer(r.flushVirtual)
		} else {
			r.flushWG.Add(1)
			go r.flushLoop()
		}
	}
	// One read loop per transport lane: sharded kernel-socket backends
	// expose each SO_REUSEPORT socket as its own lane, so inbound fan-in
	// drains in parallel without a demux goroutine in between.
	lanes := transport.Fanout(r.tp.bc)
	r.wg.Add(len(lanes))
	for _, lane := range lanes {
		go r.readLoop(lane)
	}
	return r, nil
}

// Events exposes the observability stream; closed on Close.
func (r *Receiver) Events() <-chan Event { return r.events.ch }

// Stats returns a snapshot of message counters.
func (r *Receiver) Stats() Stats { return r.ctrs.snapshot() }

// SentDatagrams returns the cumulative signaling datagrams written
// (replies: acks, nacks, notifies, probes) across wire types.
func (r *Receiver) SentDatagrams() int64 { return r.ctrs.totalSent() }

// ReceivedDatagrams returns the cumulative signaling datagrams accepted.
func (r *Receiver) ReceivedDatagrams() int64 { return r.ctrs.totalReceived() }

// Get returns an installed value for key from any sender, resolved
// through the secondary key index — O(senders holding key), not a table
// scan. With a single sender it is equivalent to GetFrom; with several
// holding the same key it returns the one whose (source, key) entry sorts
// first, which keeps virtual-time runs deterministic.
func (r *Receiver) Get(key string) ([]byte, bool) {
	for _, ck := range r.idx.lookup(key) {
		if e, ok := r.tbl.Get(ck); ok {
			out := make([]byte, len(e.value))
			copy(out, e.value)
			return out, true
		}
	}
	return nil, false
}

// GetFrom returns the value installed for key by the sender at from — an
// O(1) lookup on the (peer, key) table.
func (r *Receiver) GetFrom(from net.Addr, key string) ([]byte, bool) {
	e, ok := r.tbl.Get(rkey(from.String(), key))
	if !ok {
		return nil, false
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, true
}

// Len returns the number of installed (peer, key) entries.
func (r *Receiver) Len() int { return r.tbl.Len() }

// Keys returns the installed keys. A key installed by several senders
// appears once per sender.
func (r *Receiver) Keys() []string {
	out := make([]string, 0, r.tbl.Len())
	r.tbl.Range(func(_ string, e *receiverEntry) bool {
		out = append(out, e.key)
		return true
	})
	return out
}

// matches collects the (peer, key) table keys currently holding state for
// key, across all senders — an index lookup, not a table scan.
func (r *Receiver) matches(key string) []string {
	return r.idx.lookup(key)
}

// InjectFalseRemoval simulates the hard-state external failure signal
// firing falsely for key: the state is removed (for every sender holding
// it) and each owning sender is notified so it can repair (paper §II, HS
// false notification). It reports whether any state existed.
func (r *Receiver) InjectFalseRemoval(key string) bool {
	if r.closed.Load() {
		return false
	}
	dropped := false
	for _, ck := range r.matches(key) {
		r.tbl.Update(ck, func(e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
			dropped = true
			peer := e.peer
			r.drop(e, tc, EventFalseRemoval)
			r.send(wire.Message{Type: wire.TypeNotify, Key: key}, peer)
		})
	}
	return dropped
}

// Close stops all timers, closes the transport, and drains the loops.
func (r *Receiver) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	close(r.done)
	// The closed flag stops handle() from queueing new acks; wait for the
	// flusher's final drain while the transport is still open, so pending
	// coalesced replies go out instead of being dropped by the fence —
	// matching the immediate-send behavior of the non-coalescing path.
	if r.flushTimer != nil {
		r.flushTimer.Stop()
		r.flushAcks()
	}
	r.flushWG.Wait()
	r.tbl.Close() // no timeout callback runs past this point
	err := r.tp.close()
	r.wg.Wait()
	r.events.close()
	return err
}

// readLoop drains one transport lane in ReadBatch strides — up to a full
// ring of datagrams per syscall on batching backends — and dispatches
// each through the zero-alloc summary fast path or the generic decoder.
func (r *Receiver) readLoop(c transport.Conn) {
	defer r.wg.Done()
	ms := transport.NewBatch(transport.DefaultBatchSize)
	scratch := r.newSummaryScratch()
	for {
		cnt, err := c.ReadBatch(ms)
		if err != nil {
			return
		}
		for i := 0; i < cnt; i++ {
			r.dispatch(ms[i].Data, ms[i].Addr, scratch)
		}
	}
}

// dispatch routes one raw datagram.
func (r *Receiver) dispatch(data []byte, from net.Addr, scratch *summaryScratch) {
	if wire.PeekType(data) == wire.TypeSummaryRefresh {
		// Summary refreshes are the steady-state hot path (one datagram
		// renews up to SummaryMaxKeys keys); decode them in place instead
		// of materializing a key-string slice per datagram.
		r.handleSummaryFast(data, from, scratch)
		return
	}
	var m wire.Message
	if derr := m.UnmarshalBinary(data); derr != nil {
		r.ctrs.decodeErrors.Add(1)
		return
	}
	r.handle(m, from)
}

// summaryScratch is the read loop's reusable state for in-place summary
// handling: the composite (peer, key) lookup buffer, the unknown-key list
// for NACKs, and the two hoisted closures — built once per read loop so
// the per-key path allocates nothing.
type summaryScratch struct {
	ck      []byte        // addr + NUL + key, rebuilt per key
	prefix  int           // length of the addr + NUL prefix in ck
	seq     uint64        // current datagram's sequence number
	now     time.Duration // clock offset, read once per datagram (metrics)
	unknown []string
	visit   func(seq uint64, key []byte)
	renew   func(e *receiverEntry, tc statetable.TimerControl[receiverEntry])
}

func (r *Receiver) newSummaryScratch() *summaryScratch {
	sc := &summaryScratch{}
	sc.renew = func(e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
		// Same staleness guard as per-key refreshes: a delayed or replayed
		// summary must not renew state that a newer per-key message has
		// since superseded.
		if sc.seq < e.lastSeq {
			return
		}
		if r.measure {
			if e.renewedAt > 0 {
				r.histJitter.Observe(sc.now - e.renewedAt)
			}
			e.renewedAt = sc.now
		}
		r.armTimeout(tc)
	}
	sc.visit = func(seq uint64, key []byte) {
		sc.seq = seq
		sc.ck = append(sc.ck[:sc.prefix], key...)
		if !r.tbl.UpdateBytes(sc.ck, sc.renew) {
			sc.unknown = append(sc.unknown, string(key))
		}
	}
	return sc
}

// handleSummaryFast is handleSummary without allocations: it validates
// and walks the datagram in place (wire.VisitSummaryKeys), builds each
// (peer, key) composite lookup key in a reusable buffer, and renews
// matching entries through the state table's byte-key path. Only the
// NACK fallback for unknown keys — rare by construction — copies
// anything.
func (r *Receiver) handleSummaryFast(data []byte, from net.Addr, sc *summaryScratch) {
	if r.closed.Load() {
		return
	}
	sc.ck = append(sc.ck[:0], from.String()...)
	sc.ck = append(sc.ck, 0)
	sc.prefix = len(sc.ck)
	sc.unknown = sc.unknown[:0]
	if r.measure {
		sc.now = r.clk.Since(r.born) + 1
	}
	seq, err := wire.VisitSummaryKeys(data, sc.visit)
	if err != nil {
		r.ctrs.decodeErrors.Add(1)
		return
	}
	r.ctrs.received[wire.TypeSummaryRefresh].Add(1)
	unknown := sc.unknown
	for len(unknown) > 0 {
		n := wire.SummaryFits(unknown)
		if n == 0 {
			return // unreachable: NACKed keys arrived in a datagram
		}
		r.send(wire.Message{Type: wire.TypeSummaryNack, Seq: seq, Keys: unknown[:n]}, from)
		unknown = unknown[n:]
	}
}

func (r *Receiver) handle(m wire.Message, from net.Addr) {
	if r.closed.Load() {
		return
	}
	r.ctrs.received[m.Type].Add(1)
	switch m.Type {
	case wire.TypeTrigger, wire.TypeRefresh:
		ck := rkey(from.String(), m.Key)
		var now time.Duration
		if r.measure {
			now = r.clk.Since(r.born) + 1
		}
		r.tbl.Upsert(ck, func(e *receiverEntry, created bool, tc statetable.TimerControl[receiverEntry]) {
			// Accept only non-stale payloads: a retransmitted old trigger
			// must not clobber a newer value (sequence numbers are monotone
			// within one sender session, and entries are per-sender).
			accepted := m.Seq >= e.lastSeq || created
			if created {
				e.key = m.Key
				e.peer = from
				r.idx.add(m.Key, ck)
				r.trace.Record(telemetry.TraceInstall, m.Key, m.Seq, from)
				r.emit(Event{Kind: EventInstalled, Key: m.Key, Value: m.Value, Seq: m.Seq, Peer: from, Trace: m.Trace})
			} else if accepted {
				changed := !bytesEqual(e.value, m.Value)
				if changed {
					r.emit(Event{Kind: EventUpdated, Key: m.Key, Value: m.Value, Seq: m.Seq, Peer: from, Trace: m.Trace})
				}
				if changed || e.lastSeq != m.Seq {
					tc.MarkDigestDirty() // the census fold covers value and seq
				}
			}
			if accepted {
				e.lastSeq = m.Seq
				e.value = m.Value
				if r.measure {
					if !created && e.renewedAt > 0 {
						r.histJitter.Observe(now - e.renewedAt)
					}
					e.renewedAt = now
				}
				if m.Trace.Sampled() {
					r.observeTrace(m, from)
				}
			}
			e.probeMisses = 0 // any traffic for the key proves liveness
			if accepted || r.prof.HardState {
				// Stale traffic must not renew a soft-state lifetime: if a
				// forged or mis-delivered frame ever installed a higher
				// sequence, the genuine sender's refreshes (now "stale")
				// could otherwise keep the wrong value alive forever while
				// being unable to overwrite it. Letting the entry time out
				// instead lets the next genuine refresh re-create it — the
				// soft-state repair property. Hard state keeps pushing its
				// orphan probe on any traffic, since the probe guards sender
				// liveness, not payload freshness.
				r.armTimeout(tc)
			}
			if m.Type == wire.TypeTrigger && r.prof.ReliableTrigger {
				r.ack(wire.TypeAck, m.Seq, m.Key, from)
			}
		})
	case wire.TypeRemoval:
		r.tbl.Update(rkey(from.String(), m.Key), func(e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
			if m.Seq >= e.lastSeq {
				r.drop(e, tc, EventRemoved)
			}
		})
		// ACK removals even for unknown keys: the state may have timed out
		// while the sender kept retransmitting.
		if r.prof.ReliableRemoval {
			r.ack(wire.TypeRemovalAck, m.Seq, m.Key, from)
		}
	case wire.TypeDigest:
		// A census audit asks for this receiver's digest of the
		// requester's keys.
		r.handleDigest(m, from)
	case wire.TypeProbeAck:
		// The key's sender answered a liveness probe: clear the miss
		// counter and push the next probe a full interval out.
		r.tbl.Update(rkey(from.String(), m.Key), func(e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
			e.probeMisses = 0
			if r.prof.HardState {
				tc.Schedule(timerProbe, r.cfg.ProbeInterval)
			}
		})
	}
	// wire.TypeSummaryRefresh never reaches here: the read loop routes it
	// to handleSummaryFast before the generic decode.
}

// observeTrace turns an accepted frame's hop-propagated trace context
// into latency observations: per-hop propagation (send stamp → now) on
// any traced frame, end-to-end install latency (origin stamp → now) on
// triggers — a trigger is the propagation wavefront; refreshes only
// re-measure their own hop. Clock skew can make a wall-clock delta
// negative across machines; those clamp to zero rather than vanish, so
// the histogram count still reflects every traced frame.
func (r *Receiver) observeTrace(m wire.Message, from net.Addr) {
	now := int64(r.clk.Now().Sub(seqEpoch)) + 1
	if r.measure {
		hop := now - m.Trace.HopNs
		if hop < 0 {
			hop = 0
		}
		r.histHop.Observe(time.Duration(hop))
		if m.Type == wire.TypeTrigger {
			e2e := now - m.Trace.OriginNs
			if e2e < 0 {
				e2e = 0
			}
			r.histE2E.Observe(time.Duration(e2e))
		}
	}
	r.trace.Record(telemetry.TraceHop, m.Key, uint64(m.Trace.Hops), from)
}

// handleDigest answers a census digest request with this receiver's
// digest of the requester's keys — scoped to the source address, since
// digests fold per-(peer, key) entries and the auditing sender compares
// against its own intent for that one link. A receiver running without
// Config.Census stays silent: the requester's timeout then reports the
// link as failed instead of falsely converged.
func (r *Receiver) handleDigest(m wire.Message, from net.Addr) {
	n := r.tbl.NumDigestBuckets()
	if n == 0 {
		return
	}
	req, err := wire.ParseDigestRequest(m.Value)
	if err != nil {
		r.ctrs.decodeErrors.Add(1)
		return
	}
	prefix := from.String() + "\x00"
	switch req.Kind {
	case wire.DigestSummary:
		sums := make([]uint64, n)
		r.tbl.RangeDigest(func(ck string, _ *receiverEntry, bucket uint32, sum uint64) bool {
			if strings.HasPrefix(ck, prefix) {
				sums[bucket] ^= sum
			}
			return true
		})
		val, err := (&wire.DigestReply{Kind: wire.DigestSummary, Sums: sums}).Encode()
		if err != nil {
			return
		}
		r.send(wire.Message{Type: wire.TypeDigestReply, Seq: m.Seq, Value: val}, from)
	case wire.DigestDetail:
		if int(req.Bucket) >= n {
			return
		}
		var keys []wire.DigestKeySum
		r.tbl.RangeDigest(func(ck string, e *receiverEntry, bucket uint32, sum uint64) bool {
			if bucket == uint32(req.Bucket) && strings.HasPrefix(ck, prefix) {
				keys = append(keys, wire.DigestKeySum{Key: e.key, Sum: sum})
			}
			return true
		})
		sort.Slice(keys, func(i, j int) bool { return keys[i].Key < keys[j].Key })
		// Chunk the listing to the wire budget, part count declared up
		// front so the requester knows when the answer is complete. An
		// empty bucket still answers: one empty part, so a one-sided
		// divergence (receiver holds nothing) resolves instead of
		// timing out.
		chunks := [][]wire.DigestKeySum{}
		rest := keys
		for {
			fit := wire.DigestDetailFits(rest)
			if fit <= 0 || fit >= len(rest) {
				chunks = append(chunks, rest)
				break
			}
			chunks = append(chunks, rest[:fit])
			rest = rest[fit:]
		}
		for i, c := range chunks {
			val, err := (&wire.DigestReply{
				Kind:   wire.DigestDetail,
				Bucket: req.Bucket,
				Part:   uint16(i),
				Parts:  uint16(len(chunks)),
				Keys:   c,
			}).Encode()
			if err != nil {
				return
			}
			r.send(wire.Message{Type: wire.TypeDigestReply, Seq: m.Seq, Value: val}, from)
		}
	}
}

func (r *Receiver) armTimeout(tc statetable.TimerControl[receiverEntry]) {
	if r.prof.HardState {
		// Hard state never times out; its lifetime guard is the orphan
		// probe instead.
		tc.Schedule(timerProbe, r.cfg.ProbeInterval)
		return
	}
	if !r.prof.Refresh {
		return
	}
	tc.Schedule(timerTimeout, r.cfg.Timeout)
}

// onTimeout fires when a key's state-timeout (soft state) or probe timer
// (hard state) expires; it runs on a shard goroutine with the shard
// locked.
func (r *Receiver) onTimeout(_ string, kind statetable.TimerKind, e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
	if r.closed.Load() {
		return
	}
	if kind == timerProbe {
		r.probeOrOrphan(e, tc)
		return
	}
	key, peer := e.key, e.peer
	r.drop(e, tc, EventExpired)
	// SS+RT and SS+RTR notify the sender of timeout removals so false
	// removals are repaired promptly.
	if r.prof.ReliableTrigger {
		r.send(wire.Message{Type: wire.TypeNotify, Key: key}, peer)
	}
}

// probeOrOrphan drives the hard-state orphan detector for one entry: ask
// the sender for proof of life, and after MaxProbeMisses consecutive
// silences remove the state explicitly — the paper's HS failure-cleanup
// dependence on an external removal signal, realized as liveness probing.
// The removal is announced with a best-effort notify so a live sender
// that was wrongly declared dead (every probe or ack lost) repairs
// through the usual notify → re-trigger path; a dead one stays silent,
// which is the point.
func (r *Receiver) probeOrOrphan(e *receiverEntry, tc statetable.TimerControl[receiverEntry]) {
	if e.probeMisses >= r.cfg.MaxProbeMisses {
		key, peer := e.key, e.peer
		r.drop(e, tc, EventOrphaned)
		r.send(wire.Message{Type: wire.TypeNotify, Key: key}, peer)
		return
	}
	e.probeMisses++
	r.send(wire.Message{Type: wire.TypeProbe, Seq: e.lastSeq, Key: e.key}, e.peer)
	tc.Schedule(timerProbe, r.cfg.ProbeInterval)
}

// drop removes an entry (and its index slot) and emits the given event;
// callers hold the entry's shard lock via tc.
func (r *Receiver) drop(e *receiverEntry, tc statetable.TimerControl[receiverEntry], kind EventKind) {
	key, value, peer := e.key, e.value, e.peer
	r.idx.remove(key, tc.Key())
	tc.Delete()
	if r.trace != nil {
		tk := telemetry.TraceRemoval
		switch kind {
		case EventExpired:
			tk = telemetry.TraceExpiry
		case EventOrphaned:
			tk = telemetry.TraceOrphan
		}
		r.trace.Record(tk, key, e.lastSeq, peer)
	}
	r.emit(Event{Kind: kind, Key: key, Value: value, Peer: peer})
}

// ack queues (or, without coalescing, immediately sends) one
// acknowledgement to to. In virtual mode the first ack of a batch window
// arms the flush as a clock callback instead of kicking a flusher
// goroutine.
func (r *Receiver) ack(kind wire.Type, seq uint64, key string, to net.Addr) {
	if r.acks != nil {
		if r.acks.add(to, wire.AckItem{Kind: kind, Seq: seq, Key: key}) && r.flushTimer != nil {
			r.flushTimer.Reset(r.cfg.AckFlushInterval)
		}
		return
	}
	r.send(wire.Message{Type: kind, Seq: seq, Key: key}, to)
}

// flushVirtual is the virtual-mode flush callback; the close-time drain is
// handled by Close itself.
func (r *Receiver) flushVirtual() {
	if r.closed.Load() {
		return
	}
	r.flushAcks()
}

// flushLoop drains the ack batcher one AckFlushInterval after replies
// start accumulating: one ack-batch datagram per peer per flush (more
// only if a batch overflows the wire budget), mirroring summary refresh
// on the reply path. While no acks are pending it sleeps on the kick
// channel — an idle coalescing receiver costs zero wakeups.
func (r *Receiver) flushLoop() {
	defer r.flushWG.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-r.acks.kick:
			timer.Reset(r.cfg.AckFlushInterval)
			select {
			case <-timer.C:
				r.flushAcks()
			case <-r.done:
				r.flushAcks() // final drain; Close holds the transport open
				return
			}
		case <-r.done:
			r.flushAcks()
			return
		}
	}
}

// flushAcks sends every pending coalesced acknowledgement. The per-peer
// ack-batch datagrams of one flush ride the batch writer, so a fan-in
// receiver answering many senders spends one write syscall per
// WriteBatch-ful of peers, not one per peer.
func (r *Receiver) flushAcks() {
	pending := r.acks.take()
	if len(pending) == 0 {
		return
	}
	if r.det {
		// Deterministic reply order for reproducible virtual runs.
		sort.Slice(pending, func(i, j int) bool { return pending[i].addr < pending[j].addr })
	}
	r.ackMu.Lock()
	defer r.ackMu.Unlock()
	for _, pa := range pending {
		items := pa.items
		for len(items) > 0 {
			n := wire.AckBatchFits(items)
			if n == 0 {
				break // unreachable (ACKed keys arrived in a datagram);
				// abandons only this peer's batch, never the whole flush
			}
			if r.ackBW.add(wire.Message{Type: wire.TypeAckBatch, Acks: items[:n]}, pa.to) {
				r.ctrs.coalescedAcks.Add(int64(n))
			}
			items = items[n:]
		}
	}
	r.ackBW.flush()
}

// send encodes m onto a pooled buffer and transmits it to to; the buffer
// is recycled once the transport write returns (all transports copy).
func (r *Receiver) send(m wire.Message, to net.Addr) {
	if to == nil {
		return
	}
	buf := bufpool.Get()
	data, err := m.Append(buf.B[:0])
	if err != nil {
		buf.Free()
		return
	}
	buf.B = data
	if r.tp.write(data, to) {
		r.ctrs.sent[m.Type].Add(1)
	}
	buf.Free()
}

func (r *Receiver) emit(ev Event) { r.events.emit(ev) }

// keyIndex is the receiver's secondary index: user key → set of (source,
// key) table keys holding it. It is what keeps the any-sender Get and the
// removal paths (InjectFalseRemoval) O(senders per key) instead of a full
// table scan; GetFrom never touches it. The index mutex is a leaf lock:
// add/remove run under a state-table shard lock, lookup runs lock-free of
// the table and re-checks entries against it.
type keyIndex struct {
	mu sync.Mutex
	m  map[string]map[string]struct{}
}

func (ix *keyIndex) add(key, ck string) {
	ix.mu.Lock()
	set := ix.m[key]
	if set == nil {
		set = make(map[string]struct{})
		ix.m[key] = set
	}
	set[ck] = struct{}{}
	ix.mu.Unlock()
}

func (ix *keyIndex) remove(key, ck string) {
	ix.mu.Lock()
	if set := ix.m[key]; set != nil {
		delete(set, ck)
		if len(set) == 0 {
			delete(ix.m, key)
		}
	}
	ix.mu.Unlock()
}

// lookup returns the table keys holding key, sorted so iteration order is
// deterministic.
func (ix *keyIndex) lookup(key string) []string {
	ix.mu.Lock()
	set := ix.m[key]
	out := make([]string, 0, len(set))
	for ck := range set {
		out = append(out, ck)
	}
	ix.mu.Unlock()
	sort.Strings(out)
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
