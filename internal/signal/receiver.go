package signal

import (
	"errors"
	"net"
	"sync"
	"time"

	"softstate/internal/wire"
)

// Receiver holds signaling state installed by remote Senders. One Receiver
// can serve many senders and keys; replies (ACKs, notifications) go to the
// source address of the triggering datagram. All methods are safe for
// concurrent use.
type Receiver struct {
	conn net.PacketConn
	cfg  Config

	mu      sync.Mutex
	entries map[string]*receiverEntry
	stats   Stats
	closed  bool

	events chan Event
	wg     sync.WaitGroup
}

// receiverEntry is one installed piece of state.
type receiverEntry struct {
	value   []byte
	lastSeq uint64
	peer    net.Addr
	timeout *time.Timer
}

// NewReceiver creates a receiver speaking cfg.Protocol on conn and starts
// its receive loop.
func NewReceiver(conn net.PacketConn, cfg Config) (*Receiver, error) {
	if conn == nil {
		return nil, errors.New("signal: nil conn")
	}
	cfg = cfg.withDefaults()
	r := &Receiver{
		conn:    conn,
		cfg:     cfg,
		entries: make(map[string]*receiverEntry),
		stats:   newStats(),
		events:  make(chan Event, cfg.EventBuffer),
	}
	r.wg.Add(1)
	go r.readLoop()
	return r, nil
}

// Events exposes the observability stream; closed on Close.
func (r *Receiver) Events() <-chan Event { return r.events }

// Stats returns a snapshot of message counters.
func (r *Receiver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats.clone()
}

// Get returns the installed value for key.
func (r *Receiver) Get(key string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, true
}

// Len returns the number of installed keys.
func (r *Receiver) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Keys returns the installed keys.
func (r *Receiver) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for k := range r.entries {
		out = append(out, k)
	}
	return out
}

// InjectFalseRemoval simulates the hard-state external failure signal
// firing falsely for key: the state is removed and the owning sender is
// notified so it can repair (paper §II, HS false notification). It reports
// whether the key existed.
func (r *Receiver) InjectFalseRemoval(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok || r.closed {
		return false
	}
	r.dropLocked(key, e, EventFalseRemoval)
	r.sendLocked(wire.Message{Type: wire.TypeNotify, Key: key}, e.peer)
	return true
}

// Close stops all timers, closes the transport, and drains the loop.
func (r *Receiver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for _, e := range r.entries {
		stopTimer(&e.timeout)
	}
	r.mu.Unlock()
	err := r.conn.Close()
	r.wg.Wait()
	close(r.events)
	return err
}

func (r *Receiver) readLoop() {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := r.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		var m wire.Message
		if derr := m.UnmarshalBinary(buf[:n]); derr != nil {
			r.mu.Lock()
			r.stats.DecodeErrors++
			r.mu.Unlock()
			continue
		}
		r.handle(m, from)
	}
}

func (r *Receiver) handle(m wire.Message, from net.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.stats.Received[m.Type.String()]++
	switch m.Type {
	case wire.TypeTrigger, wire.TypeRefresh:
		e, ok := r.entries[m.Key]
		if !ok {
			e = &receiverEntry{}
			r.entries[m.Key] = e
			r.emitLocked(Event{Kind: EventInstalled, Key: m.Key, Value: m.Value, Seq: m.Seq})
		} else if m.Seq >= e.lastSeq && !bytesEqual(e.value, m.Value) {
			r.emitLocked(Event{Kind: EventUpdated, Key: m.Key, Value: m.Value, Seq: m.Seq})
		}
		// Accept only non-stale payloads: a retransmitted old trigger must
		// not clobber a newer value (sequence numbers are sender-global
		// and monotone).
		if m.Seq >= e.lastSeq {
			e.lastSeq = m.Seq
			e.value = m.Value
			e.peer = from
		}
		r.armTimeoutLocked(m.Key, e)
		if m.Type == wire.TypeTrigger && r.cfg.Protocol.ReliableTrigger() {
			r.sendLocked(wire.Message{Type: wire.TypeAck, Seq: m.Seq, Key: m.Key}, from)
		}
	case wire.TypeRemoval:
		if e, ok := r.entries[m.Key]; ok && m.Seq >= e.lastSeq {
			r.dropLocked(m.Key, e, EventRemoved)
		}
		// ACK removals even for unknown keys: the state may have timed out
		// while the sender kept retransmitting.
		if r.cfg.Protocol.ReliableRemoval() {
			r.sendLocked(wire.Message{Type: wire.TypeRemovalAck, Seq: m.Seq, Key: m.Key}, from)
		}
	}
}

func (r *Receiver) armTimeoutLocked(key string, e *receiverEntry) {
	if !r.cfg.Protocol.Refreshes() {
		return // hard state never times out
	}
	stopTimer(&e.timeout)
	e.timeout = time.AfterFunc(r.cfg.Timeout, func() { r.onTimeout(key) })
}

func (r *Receiver) onTimeout(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	e, ok := r.entries[key]
	if !ok {
		return
	}
	peer := e.peer
	r.dropLocked(key, e, EventExpired)
	// SS+RT and SS+RTR notify the sender of timeout removals so false
	// removals are repaired promptly.
	if r.cfg.Protocol.ReliableTrigger() && r.cfg.Protocol != HS {
		r.sendLocked(wire.Message{Type: wire.TypeNotify, Key: key}, peer)
	}
}

// dropLocked removes an entry and emits the given event.
func (r *Receiver) dropLocked(key string, e *receiverEntry, kind EventKind) {
	stopTimer(&e.timeout)
	delete(r.entries, key)
	r.emitLocked(Event{Kind: kind, Key: key, Value: e.value})
}

func (r *Receiver) sendLocked(m wire.Message, to net.Addr) {
	if to == nil {
		return
	}
	data, err := m.Append(nil)
	if err != nil {
		return
	}
	if _, err := r.conn.WriteTo(data, to); err == nil {
		r.stats.Sent[m.Type.String()]++
	}
}

func (r *Receiver) emitLocked(ev Event) {
	select {
	case r.events <- ev:
	default:
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
