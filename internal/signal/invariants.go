package signal

import (
	"fmt"
	"net"
)

// Invariant checking: every structural promise the sender and receiver
// make about their own state, audited on demand. The chaos engine runs
// these after every adversarial step, tests call them instead of
// re-deriving ad-hoc table/counter comparisons, and `signald -debug`
// exposes them on the introspection surface. A nil return means every
// invariant holds; otherwise each string describes one violation.
//
// The checks are exact when the caller holds the system quiescent (a
// parked virtual clock, or a closed endpoint); under live concurrent
// traffic the counter comparisons are advisory, since the table walk and
// the atomic counters are read at slightly different instants.

// CheckInvariants audits the receiver's internal consistency:
//
//   - the secondary key index and the state table agree entry for entry
//     (same size, and every indexed (source, key) resolves in the table);
//   - the armed-timer census matches the profile — hard state arms
//     exactly one probe timer per entry and no timeouts, refresh
//     profiles exactly one state-timeout per entry and no probes.
func (r *Receiver) CheckInvariants() []string {
	var bad []string
	tblLen := r.tbl.Len()

	// Snapshot the index under its own lock, then verify against the
	// table lock-free of it: idx.mu is a leaf lock under the table's
	// shard locks, so holding it across tbl.Get could deadlock.
	r.idx.mu.Lock()
	idxTotal := 0
	cks := make([]string, 0, tblLen)
	for _, set := range r.idx.m {
		idxTotal += len(set)
		for ck := range set {
			cks = append(cks, ck)
		}
	}
	r.idx.mu.Unlock()
	if idxTotal != tblLen {
		bad = append(bad, fmt.Sprintf("receiver: key index holds %d entries, state table holds %d", idxTotal, tblLen))
	}
	for _, ck := range cks {
		if _, ok := r.tbl.Get(ck); !ok {
			bad = append(bad, fmt.Sprintf("receiver: key index references missing table entry %q", ck))
		}
	}

	armed := r.tbl.TimersArmed()
	switch {
	case r.prof.HardState:
		if armed[timerProbe] != tblLen {
			bad = append(bad, fmt.Sprintf("receiver: hard state armed %d probe timers for %d entries", armed[timerProbe], tblLen))
		}
		if armed[timerTimeout] != 0 {
			bad = append(bad, fmt.Sprintf("receiver: hard state armed %d state-timeout timers", armed[timerTimeout]))
		}
	case r.prof.Refresh:
		if armed[timerTimeout] != tblLen {
			bad = append(bad, fmt.Sprintf("receiver: soft state armed %d state-timeout timers for %d entries", armed[timerTimeout], tblLen))
		}
		if armed[timerProbe] != 0 {
			bad = append(bad, fmt.Sprintf("receiver: soft state armed %d probe timers", armed[timerProbe]))
		}
	default:
		if armed[timerTimeout]+armed[timerProbe] != 0 {
			bad = append(bad, fmt.Sprintf("receiver: timerless profile armed %d timers", armed[timerTimeout]+armed[timerProbe]))
		}
	}
	return bad
}

// RKey returns the composite (source, key) identifier SeqSnapshot keys
// its map with, so external auditors (the chaos engine) can correlate
// lifecycle events with snapshot entries.
func RKey(from net.Addr, key string) string { return rkey(from.String(), key) }

// SeqSnapshot returns the per-(source, key) sequence high-water marks,
// keyed by the composite table key. The chaos engine diffs successive
// snapshots to prove no accepted message ever moved a source's sequence
// space backward.
func (r *Receiver) SeqSnapshot() map[string]uint64 {
	out := make(map[string]uint64, r.tbl.Len())
	r.tbl.Range(func(ck string, e *receiverEntry) bool {
		out[ck] = e.lastSeq
		return true
	})
	return out
}

// CheckInvariants audits the sender core's internal consistency:
//
//   - the live-key gauge equals the table's census of non-removing
//     entries, globally and per session (and per-session tabled counts —
//     the idle-eviction guard — match the table exactly);
//   - every entry's owning session is either registered in the peer
//     table or marked evicted;
//   - the armed-timer census matches the mechanisms: per-key refresh
//     mode arms exactly one refresh timer per live key, summary mode
//     arms none, and profiles without reliable delivery arm no
//     retransmit timers.
func (ss *Sessions) CheckInvariants() []string {
	var bad []string
	type tally struct{ tabled, live int64 }
	counts := make(map[*Session]*tally)
	var totalLive int64
	tblLen := 0
	ss.tbl.Range(func(_ string, e *senderEntry) bool {
		tblLen++
		c := counts[e.sess]
		if c == nil {
			c = &tally{}
			counts[e.sess] = c
		}
		c.tabled++
		if !e.removing {
			c.live++
			totalLive++
		}
		return true
	})
	if got := ss.live.Load(); got != totalLive {
		bad = append(bad, fmt.Sprintf("sender: live gauge %d, table holds %d non-removing entries", got, totalLive))
	}
	for _, s := range ss.Peers() {
		c := counts[s]
		if c == nil {
			c = &tally{}
		}
		if got := s.tabled.Load(); got != c.tabled {
			bad = append(bad, fmt.Sprintf("sender: session %d tabled counter %d, table holds %d of its entries", s.id, got, c.tabled))
		}
		if got := s.live.Load(); got != c.live {
			bad = append(bad, fmt.Sprintf("sender: session %d live counter %d, table holds %d of its live keys", s.id, got, c.live))
		}
		delete(counts, s)
	}
	for s, c := range counts {
		if !s.gone.Load() {
			bad = append(bad, fmt.Sprintf("sender: session %d owns %d entries but is missing from the peer table", s.id, c.tabled))
		}
	}

	armed := ss.tbl.TimersArmed()
	if ss.prof.Refresh && !ss.summaryMode() {
		if int64(armed[timerRefresh]) != totalLive {
			bad = append(bad, fmt.Sprintf("sender: %d refresh timers armed for %d live keys", armed[timerRefresh], totalLive))
		}
	} else if armed[timerRefresh] != 0 {
		bad = append(bad, fmt.Sprintf("sender: %d refresh timers armed outside per-key refresh mode", armed[timerRefresh]))
	}
	if !ss.prof.ReliableTrigger && !ss.prof.ReliableRemoval && armed[timerRetx] != 0 {
		bad = append(bad, fmt.Sprintf("sender: %d retransmit timers armed without reliable delivery", armed[timerRetx]))
	}
	if armed[timerRetx] > tblLen {
		bad = append(bad, fmt.Sprintf("sender: %d retransmit timers armed for %d entries", armed[timerRetx], tblLen))
	}
	return bad
}

// CheckInvariants audits the sender's session core; see
// Sessions.CheckInvariants.
func (s *Sender) CheckInvariants() []string { return s.ss.CheckInvariants() }
