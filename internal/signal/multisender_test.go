package signal

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
)

// udpConn opens a loopback UDP socket or skips the test.
func udpConn(t *testing.T) net.PacketConn {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	return c
}

// TestReceiverKeysStatePerSender is the peer-rebinding regression: two
// concurrent senders install the *same* key at one receiver, and each
// must get its own entry, value, sequence space, and timeout — a refresh
// from one sender must not keep the other's state alive, and one sender
// dying must not take the other's state down.
func TestReceiverKeysStatePerSender(t *testing.T) {
	rc := udpConn(t)
	ca, cb := udpConn(t), udpConn(t)
	cfg := fastConfig(SS)
	rcv, err := NewReceiver(rc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	sndA, err := NewSender(ca, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sndA.Close()
	sndB, err := NewSender(cb, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sndB.Close()

	if err := sndA.Install("shared/key", []byte("from-A")); err != nil {
		t.Fatal(err)
	}
	if err := sndB.Install("shared/key", []byte("from-B")); err != nil {
		t.Fatal(err)
	}
	// Both entries coexist: one per source address.
	eventually(t, "both installs", func() bool { return rcv.Len() == 2 })
	va, okA := rcv.GetFrom(ca.LocalAddr(), "shared/key")
	vb, okB := rcv.GetFrom(cb.LocalAddr(), "shared/key")
	if !okA || !bytes.Equal(va, []byte("from-A")) {
		t.Fatalf("sender A's entry = %q, %v", va, okA)
	}
	if !okB || !bytes.Equal(vb, []byte("from-B")) {
		t.Fatalf("sender B's entry = %q, %v", vb, okB)
	}

	// Kill sender A without removing state: only A's entry may expire.
	// B keeps refreshing, so its entry must survive A's timeout — before
	// per-source keying, B's refreshes (with an unrelated sequence space)
	// were compared against A's and could rebind or starve A's entry.
	sndA.Close()
	eventually(t, "A's entry expires", func() bool {
		_, ok := rcv.GetFrom(ca.LocalAddr(), "shared/key")
		return !ok
	})
	if _, ok := rcv.GetFrom(cb.LocalAddr(), "shared/key"); !ok {
		t.Fatal("sender B's state expired with A's")
	}
	if rcv.Len() != 1 {
		t.Fatalf("receiver holds %d entries, want 1", rcv.Len())
	}
}

// TestReceiverIndependentSeqSpaces: sequence numbers are compared only
// within one sender's session, so a low-seq trigger from a new sender is
// not treated as stale replay of another sender's high-seq state.
func TestReceiverIndependentSeqSpaces(t *testing.T) {
	rc := udpConn(t)
	ca, cb := udpConn(t), udpConn(t)
	defer ca.Close()
	defer cb.Close()
	cfg := fastConfig(SS)
	rcv, err := NewReceiver(rc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()

	// Sender A's session is far along: seq 1000.
	high := mustEncode(t, 1000, "k", []byte("old-high"))
	if _, err := ca.WriteTo(high, rc.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	eventually(t, "A installs", func() bool { _, ok := rcv.GetFrom(ca.LocalAddr(), "k"); return ok })
	// Sender B's fresh session starts at seq 1 — it must install, not be
	// dropped as a stale duplicate of A's seq 1000.
	low := mustEncode(t, 1, "k", []byte("new-low"))
	if _, err := cb.WriteTo(low, rc.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	eventually(t, "B installs despite lower seq", func() bool {
		v, ok := rcv.GetFrom(cb.LocalAddr(), "k")
		return ok && bytes.Equal(v, []byte("new-low"))
	})
}

// TestKeyIndexTracksManySenders covers the secondary key→entries index:
// with many senders holding the same key, the any-sender Get and the
// removal paths resolve through the index (no table scan), stay correct
// as senders come and go, and GetFrom remains the per-sender O(1) path.
func TestKeyIndexTracksManySenders(t *testing.T) {
	const senders = 8
	v := clock.NewVirtual()
	nw, err := lossy.NewNetwork(lossy.Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(SS)
	cfg.Clock = v
	rconn := nw.Endpoint("rcv")
	rcv, err := NewReceiver(rconn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	snds := make([]*Sender, senders)
	addrs := make([]net.Addr, senders)
	for i := range snds {
		conn := nw.Endpoint(fmt.Sprintf("snd%02d", i))
		addrs[i] = conn.LocalAddr()
		s, err := NewSender(conn, rconn.LocalAddr(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		snds[i] = s
		defer s.Close()
	}
	for i, s := range snds {
		if err := s.Install("shared", []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
		if err := s.Install(fmt.Sprintf("own/%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if !v.RunUntil(func() bool { return rcv.Len() == 2*senders }, time.Millisecond, time.Second) {
		t.Fatalf("receiver holds %d entries, want %d", rcv.Len(), 2*senders)
	}
	if got := len(rcv.matches("shared")); got != senders {
		t.Fatalf("index holds %d entries for the shared key, want %d", got, senders)
	}
	// Get resolves through the index; the sorted order makes it the entry
	// whose (source, key) table key is smallest — snd00's.
	if got, ok := rcv.Get("shared"); !ok || !bytes.Equal(got, []byte("v00")) {
		t.Fatalf("Get(shared) = %q, %v", got, ok)
	}
	for i := range snds {
		want := []byte(fmt.Sprintf("v%02d", i))
		if got, ok := rcv.GetFrom(addrs[i], "shared"); !ok || !bytes.Equal(got, want) {
			t.Fatalf("GetFrom(sender %d) = %q, %v", i, got, ok)
		}
	}
	// Kill half the senders; their entries expire and leave the index.
	for i := 0; i < senders/2; i++ {
		snds[i].Close()
	}
	if !v.RunUntil(func() bool { return len(rcv.matches("shared")) == senders/2 },
		time.Millisecond, time.Second) {
		t.Fatalf("index holds %d shared entries after expiry, want %d",
			len(rcv.matches("shared")), senders/2)
	}
	// The surviving smallest sender is now snd04.
	if got, ok := rcv.Get("shared"); !ok || !bytes.Equal(got, []byte(fmt.Sprintf("v%02d", senders/2))) {
		t.Fatalf("Get(shared) after expiry = %q, %v", got, ok)
	}
	// A false removal hits exactly the indexed survivors, and the index
	// ends empty for that key once they are gone.
	if !rcv.InjectFalseRemoval("shared") {
		t.Fatal("InjectFalseRemoval found no state")
	}
	if got := len(rcv.matches("shared")); got != 0 {
		t.Fatalf("index still holds %d entries after false removal", got)
	}
	// Unrelated keys never left the index.
	for i := senders / 2; i < senders; i++ {
		if _, ok := rcv.Get(fmt.Sprintf("own/%02d", i)); !ok {
			t.Fatalf("own/%02d lost from index", i)
		}
	}
}

// TestInjectFalseRemovalHitsAllSenders: a false external removal for a key
// held by two senders drops and notifies both.
func TestInjectFalseRemovalHitsAllSenders(t *testing.T) {
	rc := udpConn(t)
	ca, cb := udpConn(t), udpConn(t)
	cfg := fastConfig(SSRT)
	rcv, err := NewReceiver(rc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	sndA, err := NewSender(ca, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sndA.Close()
	sndB, err := NewSender(cb, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sndB.Close()
	sndA.Install("k", []byte("a"))
	sndB.Install("k", []byte("b"))
	eventually(t, "both installs", func() bool { return rcv.Len() == 2 })
	if !rcv.InjectFalseRemoval("k") {
		t.Fatal("InjectFalseRemoval found no state")
	}
	// Both senders are notified and repair their own entries.
	eventually(t, "both repaired", func() bool { return rcv.Len() == 2 })
}
