package signal

import (
	"bytes"
	"net"
	"testing"
)

// udpConn opens a loopback UDP socket or skips the test.
func udpConn(t *testing.T) net.PacketConn {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	return c
}

// TestReceiverKeysStatePerSender is the peer-rebinding regression: two
// concurrent senders install the *same* key at one receiver, and each
// must get its own entry, value, sequence space, and timeout — a refresh
// from one sender must not keep the other's state alive, and one sender
// dying must not take the other's state down.
func TestReceiverKeysStatePerSender(t *testing.T) {
	rc := udpConn(t)
	ca, cb := udpConn(t), udpConn(t)
	cfg := fastConfig(SS)
	rcv, err := NewReceiver(rc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	sndA, err := NewSender(ca, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sndA.Close()
	sndB, err := NewSender(cb, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sndB.Close()

	if err := sndA.Install("shared/key", []byte("from-A")); err != nil {
		t.Fatal(err)
	}
	if err := sndB.Install("shared/key", []byte("from-B")); err != nil {
		t.Fatal(err)
	}
	// Both entries coexist: one per source address.
	eventually(t, "both installs", func() bool { return rcv.Len() == 2 })
	va, okA := rcv.GetFrom(ca.LocalAddr(), "shared/key")
	vb, okB := rcv.GetFrom(cb.LocalAddr(), "shared/key")
	if !okA || !bytes.Equal(va, []byte("from-A")) {
		t.Fatalf("sender A's entry = %q, %v", va, okA)
	}
	if !okB || !bytes.Equal(vb, []byte("from-B")) {
		t.Fatalf("sender B's entry = %q, %v", vb, okB)
	}

	// Kill sender A without removing state: only A's entry may expire.
	// B keeps refreshing, so its entry must survive A's timeout — before
	// per-source keying, B's refreshes (with an unrelated sequence space)
	// were compared against A's and could rebind or starve A's entry.
	sndA.Close()
	eventually(t, "A's entry expires", func() bool {
		_, ok := rcv.GetFrom(ca.LocalAddr(), "shared/key")
		return !ok
	})
	if _, ok := rcv.GetFrom(cb.LocalAddr(), "shared/key"); !ok {
		t.Fatal("sender B's state expired with A's")
	}
	if rcv.Len() != 1 {
		t.Fatalf("receiver holds %d entries, want 1", rcv.Len())
	}
}

// TestReceiverIndependentSeqSpaces: sequence numbers are compared only
// within one sender's session, so a low-seq trigger from a new sender is
// not treated as stale replay of another sender's high-seq state.
func TestReceiverIndependentSeqSpaces(t *testing.T) {
	rc := udpConn(t)
	ca, cb := udpConn(t), udpConn(t)
	defer ca.Close()
	defer cb.Close()
	cfg := fastConfig(SS)
	rcv, err := NewReceiver(rc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()

	// Sender A's session is far along: seq 1000.
	high := mustEncode(t, 1000, "k", []byte("old-high"))
	if _, err := ca.WriteTo(high, rc.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	eventually(t, "A installs", func() bool { _, ok := rcv.GetFrom(ca.LocalAddr(), "k"); return ok })
	// Sender B's fresh session starts at seq 1 — it must install, not be
	// dropped as a stale duplicate of A's seq 1000.
	low := mustEncode(t, 1, "k", []byte("new-low"))
	if _, err := cb.WriteTo(low, rc.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	eventually(t, "B installs despite lower seq", func() bool {
		v, ok := rcv.GetFrom(cb.LocalAddr(), "k")
		return ok && bytes.Equal(v, []byte("new-low"))
	})
}

// TestInjectFalseRemovalHitsAllSenders: a false external removal for a key
// held by two senders drops and notifies both.
func TestInjectFalseRemovalHitsAllSenders(t *testing.T) {
	rc := udpConn(t)
	ca, cb := udpConn(t), udpConn(t)
	cfg := fastConfig(SSRT)
	rcv, err := NewReceiver(rc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	sndA, err := NewSender(ca, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sndA.Close()
	sndB, err := NewSender(cb, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sndB.Close()
	sndA.Install("k", []byte("a"))
	sndB.Install("k", []byte("b"))
	eventually(t, "both installs", func() bool { return rcv.Len() == 2 })
	if !rcv.InjectFalseRemoval("k") {
		t.Fatal("InjectFalseRemoval found no state")
	}
	// Both senders are notified and repair their own entries.
	eventually(t, "both repaired", func() bool { return rcv.Len() == 2 })
}
