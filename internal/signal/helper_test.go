package signal

import "softstate/internal/wire"

// wireTrigger builds a raw trigger message for replay tests.
func wireTrigger(seq uint64, key string, value []byte) wire.Message {
	return wire.Message{Type: wire.TypeTrigger, Seq: seq, Key: key, Value: value}
}
