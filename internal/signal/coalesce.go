package signal

import (
	"net"
	"sync"

	"softstate/internal/wire"
)

// ackBatcher accumulates acknowledgements between flush ticks, grouped by
// destination peer so each tick emits one ack-batch datagram per peer.
// The kick channel fires on the empty→non-empty transition, so the
// flusher sleeps indefinitely while no replies are pending instead of
// polling every interval (the same idle-wakeup discipline as the timing
// wheel).
type ackBatcher struct {
	mu      sync.Mutex
	pending map[string]*peerAcks
	kick    chan struct{}
}

// peerAcks is one peer's accumulated acknowledgements.
type peerAcks struct {
	to    net.Addr
	addr  string // to.String(), for deterministic flush ordering
	items []wire.AckItem
}

func newAckBatcher() *ackBatcher {
	return &ackBatcher{
		pending: make(map[string]*peerAcks),
		kick:    make(chan struct{}, 1),
	}
}

// add queues one acknowledgement for to, waking the flusher if the
// batcher was empty, and reports that empty→non-empty transition (the
// virtual-mode flush path arms its clock timer on it).
func (b *ackBatcher) add(to net.Addr, item wire.AckItem) bool {
	addr := to.String()
	b.mu.Lock()
	wasEmpty := len(b.pending) == 0
	pa := b.pending[addr]
	if pa == nil {
		pa = &peerAcks{to: to, addr: addr}
		b.pending[addr] = pa
	}
	pa.items = append(pa.items, item)
	b.mu.Unlock()
	if wasEmpty {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
	return wasEmpty
}

// take removes and returns everything queued so far.
func (b *ackBatcher) take() []*peerAcks {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) == 0 {
		return nil
	}
	out := make([]*peerAcks, 0, len(b.pending))
	for _, pa := range b.pending {
		out = append(out, pa)
	}
	b.pending = make(map[string]*peerAcks)
	return out
}
