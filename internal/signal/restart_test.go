package signal

import (
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/wire"
)

// TestSenderRestartNewIncarnation is the UDP crash/restart regression
// test: a sender dies without removing its state and comes back on the
// same address as a fresh process. Datagram transports carry no
// handshake (unlike the framed TCP stream, which resumes sequence spaces
// on reconnect), so the receiver still holds the first incarnation's
// entry and its sequence high-water mark — if the restarted sender's
// sequence space began at zero, every trigger it sent would be discarded
// as a stale retransmission and the key would wedge on the old value
// until timeout (or forever, under hard state). The time-derived
// incarnation base makes the second life numerically newer, so the
// reinstall must land, refreshes must renew it, and — under hard state —
// the restarted sender must answer liveness probes for the re-owned key.
func TestSenderRestartNewIncarnation(t *testing.T) {
	for _, proto := range []Protocol{SS, SSER, SSRT, SSRTR, HS} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			v := clock.NewVirtual()
			nw, err := lossy.NewNetwork(lossy.Config{Delay: time.Millisecond, Seed: 7, Clock: v})
			if err != nil {
				t.Fatal(err)
			}
			a := nw.Endpoint("snd")
			b := nw.Endpoint("rcv")
			cfg := fastConfig(proto)
			cfg.Clock = v
			snd, err := NewSender(a, b.LocalAddr(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			rcv, err := NewReceiver(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { rcv.Close() })

			if err := snd.Install("k", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if !v.RunUntil(func() bool {
				val, ok := rcv.GetFrom(a.LocalAddr(), "k")
				return ok && string(val) == "v1"
			}, time.Millisecond, time.Second) {
				t.Fatal("first incarnation's install never converged")
			}

			// Crash: no removal, no goodbye. The receiver's entry (and its
			// lastSeq) survives; the gap is shorter than the state timeout,
			// so the restarted sender faces live stale-seq state.
			snd.Close()
			v.Run(50 * time.Millisecond)

			a2 := nw.Restart("snd")
			snd2, err := NewSender(a2, b.LocalAddr(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { snd2.Close() })
			if err := snd2.Install("k", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if !v.RunUntil(func() bool {
				val, ok := rcv.GetFrom(a2.LocalAddr(), "k")
				return ok && string(val) == "v2"
			}, time.Millisecond, time.Second) {
				val, _ := rcv.GetFrom(a2.LocalAddr(), "k")
				t.Fatalf("restarted sender's install never accepted; receiver holds %q", val)
			}

			// The new incarnation must keep the state alive past several
			// timeout horizons: refreshes renew it (soft state) and probes
			// are answered (hard state) — the restart did not wedge
			// liveness in either direction.
			v.Run(4 * cfg.Timeout)
			if val, ok := rcv.GetFrom(a2.LocalAddr(), "k"); !ok || string(val) != "v2" {
				t.Fatalf("state did not survive after restart: ok=%v val=%q", ok, val)
			}
			if fastConfig(proto).withDefaults().Variant.HardState {
				if acks := snd2.Stats().Sent["probe-ack"]; acks == 0 {
					t.Fatal("restarted hard-state sender answered no liveness probes")
				}
			}
			if bad := rcv.CheckInvariants(); len(bad) != 0 {
				t.Fatalf("receiver invariants violated after restart: %v", bad)
			}
			if bad := snd2.CheckInvariants(); len(bad) != 0 {
				t.Fatalf("restarted sender invariants violated: %v", bad)
			}
		})
	}
}

// TestForgedStateRepairedBySoftState: a forged (or grossly mis-delivered)
// datagram installs a higher-sequence value under a live soft-state key.
// The genuine sender's refreshes are now numerically stale — they must
// not renew the forged entry's lifetime (or it would hold the wrong value
// forever while being unable to overwrite it). Instead the entry times
// out and the next genuine refresh re-creates it: the soft-state repair
// property, exercised here end to end. Found by the chaos engine's
// differential fuzzer (corpus entry FuzzDifferential/11f1ffef6a83f4ed).
func TestForgedStateRepairedBySoftState(t *testing.T) {
	v := clock.NewVirtual()
	nw, err := lossy.NewNetwork(lossy.Config{Delay: time.Millisecond, Seed: 3, Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	a := nw.Endpoint("snd")
	b := nw.Endpoint("rcv")
	cfg := fastConfig(SS)
	cfg.Clock = v
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snd.Close() })
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcv.Close() })

	if err := snd.Install("k", []byte("true")); err != nil {
		t.Fatal(err)
	}
	if !v.RunUntil(func() bool {
		val, ok := rcv.GetFrom(a.LocalAddr(), "k")
		return ok && string(val) == "true"
	}, time.Millisecond, time.Second) {
		t.Fatal("install never converged")
	}

	// Forge a far-future sequence number from the sender's own address.
	forged := wire.Message{Type: wire.TypeTrigger, Seq: 1 << 62, Key: "k", Value: []byte("forged")}
	raw, err := forged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo(raw, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if !v.RunUntil(func() bool {
		val, _ := rcv.GetFrom(a.LocalAddr(), "k")
		return string(val) == "forged"
	}, time.Millisecond, time.Second) {
		t.Fatal("forged datagram never landed")
	}

	// The genuine refreshes are stale against seq 1<<62: they must not
	// keep the forged entry alive. Within a few timeout horizons the entry
	// expires and the true value is re-installed by refresh.
	if !v.RunUntil(func() bool {
		val, ok := rcv.GetFrom(a.LocalAddr(), "k")
		return ok && string(val) == "true"
	}, time.Millisecond, 5*cfg.Timeout) {
		val, ok := rcv.GetFrom(a.LocalAddr(), "k")
		t.Fatalf("forged state never repaired: ok=%v val=%q", ok, val)
	}
	if bad := rcv.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("invariants after repair: %v", bad)
	}
}
