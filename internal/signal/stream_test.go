package signal

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"softstate/internal/transport"
)

// streamEndpoints builds a sender/receiver pair over the TCP stream
// backend: the receiver listens, the sender dials with a stable identity.
// Wall-clock with fast timers — the stream backend has no virtual-time
// form (reliable transport is exactly what the lossy virtual pipes are
// not).
func streamEndpoints(t *testing.T, proto Protocol) (*Sender, *Receiver, *transport.Stream, *transport.Stream) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := transport.NewStream("", ln, transport.Options{})
	ss := transport.NewStream("stream-test-sender", nil, transport.Options{})
	raddr, err := net.ResolveTCPAddr("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(proto)
	snd, err := NewSender(ss, raddr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		snd.Close()
		rcv.Close()
	})
	return snd, rcv, ss, rs
}

// TestStreamSSRTRConverges runs the fully reliable soft-state variant
// over the framed TCP backend: installs converge, are acked, and an
// explicit reliable removal clears the state.
func TestStreamSSRTRConverges(t *testing.T) {
	snd, rcv, _, _ := streamEndpoints(t, SSRTR)
	const n = 20
	for i := 0; i < n; i++ {
		if err := snd.Install(fmt.Sprintf("flow/%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "all keys held", func() bool { return rcv.Len() == n })
	eventually(t, "all installs acked", func() bool {
		return snd.Stats().Received["ack"] > 0 || snd.Stats().Received["ack-batch"] > 0
	})
	if err := snd.Remove("flow/0"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "reliable removal", func() bool { return rcv.Len() == n-1 })
}

// TestStreamReconnectSeqResume is the regression test for the stream
// backend's identity handshake: severing every TCP connection mid-session
// must not reset the receiver-observed source address or sequence space —
// an update sent after the reconnect carries a higher seq on the same
// (source, key) entry and must be accepted, not discarded as a stale
// retransmission.
func TestStreamReconnectSeqResume(t *testing.T) {
	snd, rcv, ss, rs := streamEndpoints(t, SSRTR)
	if err := snd.Install("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "install", func() bool { _, ok := rcv.Get("k"); return ok })

	// Sever every TCP connection on both sides; state and sessions stay.
	ss.DisconnectAll()
	rs.DisconnectAll()

	if err := snd.Update("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "post-reconnect update accepted", func() bool {
		v, ok := rcv.Get("k")
		return ok && bytes.Equal(v, []byte("v2"))
	})
	// Exactly one (source, key) entry: the reconnect did not register a
	// second source address for the same sender.
	if got := rcv.Len(); got != 1 {
		t.Fatalf("receiver holds %d entries after reconnect, want 1", got)
	}
	// Refreshes over the resumed connection keep the state alive.
	time.Sleep(4 * fastConfig(SSRTR).Timeout)
	if v, ok := rcv.Get("k"); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatal("state did not survive refreshes after reconnect")
	}
}

// TestStreamHSOrphanRemoval runs the hard-state orphan detector over the
// stream backend: a sender that dies without removing its state stops
// answering probes and the receiver cleans up.
func TestStreamHSOrphanRemoval(t *testing.T) {
	snd, rcv, _, _ := streamEndpoints(t, HS)
	if err := snd.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "install", func() bool { _, ok := rcv.Get("k"); return ok })

	snd.Close()
	cfg := fastConfig(HS).withDefaults()
	budget := time.Duration(cfg.MaxProbeMisses+2) * cfg.ProbeInterval * 4
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if _, ok := rcv.Get("k"); !ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("orphaned hard state never removed over stream backend")
}
