package signal

import (
	"fmt"
	"testing"
	"time"
)

// TestCheckInvariantsCleanAcrossVariants: a converged sender/receiver
// pair violates no invariant under any of the five protocols, through
// install, steady state, and partial removal.
func TestCheckInvariantsCleanAcrossVariants(t *testing.T) {
	for _, proto := range []Protocol{SS, SSER, SSRT, SSRTR, HS} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			c := vEndpoints(t, proto, 0)
			for i := 0; i < 8; i++ {
				if err := c.snd.Install(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			c.within(time.Second, "installs", func() bool { return c.rcv.Len() == 8 })
			audit := func(when string) {
				c.t.Helper()
				if bad := c.snd.CheckInvariants(); len(bad) != 0 {
					t.Fatalf("sender invariants %s: %v", when, bad)
				}
				if bad := c.rcv.CheckInvariants(); len(bad) != 0 {
					t.Fatalf("receiver invariants %s: %v", when, bad)
				}
			}
			audit("after install")
			c.run(200 * time.Millisecond) // refresh / probe steady state
			audit("in steady state")
			for i := 0; i < 4; i++ {
				if err := c.snd.Remove(fmt.Sprintf("k%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			c.within(time.Second, "removals", func() bool { return c.rcv.Len() == 4 })
			c.run(200 * time.Millisecond) // drain removal acks / retransmits
			audit("after removal")
		})
	}
}

// TestCheckInvariantsDetectsCorruption: hand-broken internal state is
// reported, proving the checks bite.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	c := vEndpoints(t, SSRTR, 0)
	if err := c.snd.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "install", func() bool { return c.rcv.Len() == 1 })

	// Receiver: un-index the entry — table and index now disagree.
	c.rcv.idx.remove("k", rkey(c.sndAddr.String(), "k"))
	if bad := c.rcv.CheckInvariants(); len(bad) == 0 {
		t.Fatal("receiver index/table mismatch not detected")
	}
	c.rcv.idx.add("k", rkey(c.sndAddr.String(), "k")) // repair

	// Receiver: index a phantom entry — a dangling reference.
	c.rcv.idx.add("ghost", rkey(c.sndAddr.String(), "ghost"))
	if bad := c.rcv.CheckInvariants(); len(bad) == 0 {
		t.Fatal("receiver dangling index entry not detected")
	}
	c.rcv.idx.remove("ghost", rkey(c.sndAddr.String(), "ghost"))

	// Sender: skew the live gauge against the table census.
	c.snd.ss.live.Add(1)
	if bad := c.snd.CheckInvariants(); len(bad) == 0 {
		t.Fatal("sender live-gauge skew not detected")
	}
	c.snd.ss.live.Add(-1)

	// Sender: skew one session's tabled counter (the eviction guard).
	c.snd.sess.tabled.Add(1)
	if bad := c.snd.CheckInvariants(); len(bad) == 0 {
		t.Fatal("sender per-session tabled skew not detected")
	}
	c.snd.sess.tabled.Add(-1)

	// All repaired: clean again.
	if bad := append(c.snd.CheckInvariants(), c.rcv.CheckInvariants()...); len(bad) != 0 {
		t.Fatalf("repaired state still reports: %v", bad)
	}
}
