package signal

import (
	"fmt"
	"net"
	"testing"
	"time"

	"softstate/internal/wire"
)

// discardConn is a PacketConn that swallows writes and blocks reads, so
// benchmarks measure the sender, not a transport.
type discardConn struct {
	done chan struct{}
}

func newDiscardConn() *discardConn { return &discardConn{done: make(chan struct{})} }

func (c *discardConn) WriteTo(p []byte, _ net.Addr) (int, error) { return len(p), nil }

func (c *discardConn) ReadFrom(p []byte) (int, net.Addr, error) {
	<-c.done
	return 0, nil, net.ErrClosed
}

func (c *discardConn) Close() error {
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	return nil
}

func (c *discardConn) LocalAddr() net.Addr              { return discardAddr{} }
func (c *discardConn) SetDeadline(time.Time) error      { return nil }
func (c *discardConn) SetReadDeadline(time.Time) error  { return nil }
func (c *discardConn) SetWriteDeadline(time.Time) error { return nil }

type discardAddr struct{}

func (discardAddr) Network() string { return "discard" }
func (discardAddr) String() string  { return "discard" }

// benchSender builds a sender over a discarding transport with nKeys
// installed and background refreshing disabled (long interval), so the
// benchmark drives refresh rounds explicitly.
func benchSender(b *testing.B, nKeys int, summary bool) *Sender {
	b.Helper()
	cfg := Config{
		Protocol:        SS,
		RefreshInterval: time.Hour, // rounds driven by hand below
		Timeout:         3 * time.Hour,
		SummaryRefresh:  summary,
		SummaryMaxKeys:  64,
		Shards:          64,
	}
	snd, err := NewSender(newDiscardConn(), discardAddr{}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { snd.Close() })
	for i := 0; i < nKeys; i++ {
		if err := snd.Install(fmt.Sprintf("flow/%06d", i), []byte("10Mbps")); err != nil {
			b.Fatal(err)
		}
	}
	return snd
}

// refreshRound emulates one full per-key refresh cycle: every live key
// emits one refresh datagram, exactly what the wheel does per interval.
func refreshRound(s *Sender) int {
	sent := 0
	s.ss.tbl.Range(func(ck string, e *senderEntry) bool {
		if e.removing {
			return true
		}
		s.ss.send(wire.Message{Type: wire.TypeRefresh, Seq: e.seq, Key: userKey(ck), Value: e.value}, e.sess.peer)
		sent++
		return true
	})
	return sent
}

// BenchmarkSenderRefreshPerKey measures one refresh round with per-key
// datagrams: the paper's plain soft-state refresh cost at 4096 keys.
func BenchmarkSenderRefreshPerKey(b *testing.B) {
	const keys = 4096
	snd := benchSender(b, keys, false)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += refreshRound(snd)
	}
	b.ReportMetric(float64(total)/float64(b.N), "datagrams/round")
	b.ReportMetric(float64(b.N)*keys/b.Elapsed().Seconds(), "keys-refreshed/s")
}

// BenchmarkSenderRefreshSummary measures the same renewal work as one
// summary sweep (RFC 2961-style): 64 keys per datagram, ≥10× fewer
// datagrams for the identical key set.
func BenchmarkSenderRefreshSummary(b *testing.B) {
	const keys = 4096
	snd := benchSender(b, keys, true)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += snd.summarySweep()
	}
	b.ReportMetric(float64(total)/float64(b.N), "datagrams/round")
	b.ReportMetric(float64(b.N)*keys/b.Elapsed().Seconds(), "keys-refreshed/s")
}

// BenchmarkSenderInstall measures trigger throughput into the sharded
// table across CPUs.
func BenchmarkSenderInstall(b *testing.B) {
	snd := benchSender(b, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_ = snd.Install(fmt.Sprintf("k/%d", i), []byte("v"))
			i++
		}
	})
}

// BenchmarkReceiverInstallExpire measures the receiver's full state
// lifecycle — install, timeout scheduling, expiry — through the wheel.
func BenchmarkReceiverInstallExpire(b *testing.B) {
	cfg := Config{
		Protocol:        SS,
		RefreshInterval: time.Hour,
		Timeout:         time.Millisecond,
		Shards:          64,
	}
	rcv, err := NewReceiver(newDiscardConn(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rcv.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rcv.handle(wire.Message{Type: wire.TypeTrigger, Seq: uint64(i), Key: fmt.Sprintf("k/%d", i%100_000), Value: []byte("v")}, discardAddr{})
	}
	b.StopTimer()
	// Drain scheduled expiries so Close is not fighting 100k timers.
	deadline := time.Now().Add(5 * time.Second)
	for rcv.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkSummaryHandleReceiver measures receiver-side bulk renewal: one
// summary datagram renewing 64 installed keys.
func BenchmarkSummaryHandleReceiver(b *testing.B) {
	cfg := Config{
		Protocol:        SS,
		RefreshInterval: time.Hour,
		Timeout:         time.Hour,
		Shards:          64,
	}
	rcv, err := NewReceiver(newDiscardConn(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rcv.Close() })
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("k/%d", i)
		rcv.handle(wire.Message{Type: wire.TypeTrigger, Seq: 1, Key: keys[i], Value: []byte("v")}, discardAddr{})
	}
	m := wire.Message{Type: wire.TypeSummaryRefresh, Seq: 2, Keys: keys}
	data, err := m.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	sc := rcv.newSummaryScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The path the read loop actually takes: validate and renew in
		// place off the encoded datagram.
		rcv.handleSummaryFast(data, discardAddr{}, sc)
	}
}
