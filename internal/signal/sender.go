package signal

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"softstate/internal/wire"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("signal: endpoint closed")

// Sender installs and maintains keyed state at a remote Receiver.
// All methods are safe for concurrent use.
type Sender struct {
	conn net.PacketConn
	peer net.Addr
	cfg  Config

	mu      sync.Mutex
	entries map[string]*senderEntry
	seq     uint64
	stats   Stats
	closed  bool

	events chan Event
	wg     sync.WaitGroup
}

// senderEntry tracks one key's signaling state at the sender.
type senderEntry struct {
	value    []byte
	seq      uint64 // latest trigger sequence
	ackedSeq uint64
	retries  int

	removing   bool // removal sent, awaiting removal-ack
	removalSeq uint64

	refresh *time.Timer
	retx    *time.Timer
}

// NewSender creates a sender speaking cfg.Protocol to peer over conn and
// starts its receive loop (for ACKs and notifications).
func NewSender(conn net.PacketConn, peer net.Addr, cfg Config) (*Sender, error) {
	if conn == nil || peer == nil {
		return nil, errors.New("signal: nil conn or peer")
	}
	cfg = cfg.withDefaults()
	s := &Sender{
		conn:    conn,
		peer:    peer,
		cfg:     cfg,
		entries: make(map[string]*senderEntry),
		stats:   newStats(),
		events:  make(chan Event, cfg.EventBuffer),
	}
	s.wg.Add(1)
	go s.readLoop()
	return s, nil
}

// Events exposes the observability stream. The channel closes when the
// sender is closed.
func (s *Sender) Events() <-chan Event { return s.events }

// Stats returns a snapshot of message counters.
func (s *Sender) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.clone()
}

// Install installs (or reinstalls) state for key at the receiver.
func (s *Sender) Install(key string, value []byte) error {
	return s.put(key, value, EventInstalled)
}

// Update changes the state value for key; it is an error to update a key
// that was never installed or is being removed.
func (s *Sender) Update(key string, value []byte) error {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && e.removing {
		ok = false
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("signal: update of unknown key %q", key)
	}
	return s.put(key, value, EventUpdated)
}

func (s *Sender) put(key string, value []byte, kind EventKind) error {
	if len(key) > wire.MaxKeyLen || len(value) > wire.MaxValueLen {
		return wire.ErrTooLarge
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	e, ok := s.entries[key]
	if !ok || e.removing {
		e = &senderEntry{}
		s.entries[key] = e
	}
	v := make([]byte, len(value))
	copy(v, value)
	e.value = v
	e.removing = false
	e.retries = 0
	s.seq++
	e.seq = s.seq
	s.sendLocked(wire.Message{Type: wire.TypeTrigger, Seq: e.seq, Key: key, Value: e.value})
	s.armTriggerRetxLocked(key, e)
	s.armRefreshLocked(key, e)
	s.emitLocked(Event{Kind: kind, Key: key, Value: e.value, Seq: e.seq})
	s.mu.Unlock()
	return nil
}

// Remove withdraws the state for key. With explicit-removal protocols a
// removal message is sent (reliably for SS+RTR and HS); otherwise the
// receiver is left to time the state out.
func (s *Sender) Remove(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.entries[key]
	if !ok || e.removing {
		return fmt.Errorf("signal: remove of unknown key %q", key)
	}
	stopTimer(&e.refresh)
	stopTimer(&e.retx)
	if !s.cfg.Protocol.ExplicitRemoval() {
		delete(s.entries, key)
		s.emitLocked(Event{Kind: EventRemoved, Key: key})
		return nil
	}
	s.seq++
	e.removing = true
	e.removalSeq = s.seq
	e.retries = 0
	e.value = nil
	s.sendLocked(wire.Message{Type: wire.TypeRemoval, Seq: e.removalSeq, Key: key})
	if s.cfg.Protocol.ReliableRemoval() {
		s.armRemovalRetxLocked(key, e)
	} else {
		delete(s.entries, key)
		s.emitLocked(Event{Kind: EventRemoved, Key: key})
	}
	return nil
}

// Keys returns the keys with live (non-removing) state.
func (s *Sender) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k, e := range s.entries {
		if !e.removing {
			out = append(out, k)
		}
	}
	return out
}

// Close stops all timers, closes the transport, and waits for the receive
// loop to drain. The events channel is closed afterwards.
func (s *Sender) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, e := range s.entries {
		stopTimer(&e.refresh)
		stopTimer(&e.retx)
	}
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	close(s.events)
	return err
}

// --- timers (all rearmed under s.mu) ---

func stopTimer(t **time.Timer) {
	if *t != nil {
		(*t).Stop()
		*t = nil
	}
}

func (s *Sender) armRefreshLocked(key string, e *senderEntry) {
	if !s.cfg.Protocol.Refreshes() {
		return
	}
	stopTimer(&e.refresh)
	e.refresh = time.AfterFunc(s.refreshIntervalLocked(), func() { s.onRefresh(key) })
}

// refreshIntervalLocked returns the per-key refresh interval, stretched
// when an aggregate rate bound is configured (scalable timers): with n
// live keys the aggregate rate is n/interval, so the interval grows to
// n/MaxRefreshRate once n exceeds MaxRefreshRate·R.
func (s *Sender) refreshIntervalLocked() time.Duration {
	interval := s.cfg.RefreshInterval
	if s.cfg.MaxRefreshRate <= 0 {
		return interval
	}
	live := 0
	for _, e := range s.entries {
		if !e.removing {
			live++
		}
	}
	if min := time.Duration(float64(live) / s.cfg.MaxRefreshRate * float64(time.Second)); min > interval {
		interval = min
	}
	return interval
}

func (s *Sender) onRefresh(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	e, ok := s.entries[key]
	if !ok || e.removing {
		return
	}
	s.sendLocked(wire.Message{Type: wire.TypeRefresh, Seq: e.seq, Key: key, Value: e.value})
	s.armRefreshLocked(key, e)
}

func (s *Sender) armTriggerRetxLocked(key string, e *senderEntry) {
	if !s.cfg.Protocol.ReliableTrigger() {
		return
	}
	stopTimer(&e.retx)
	e.retx = time.AfterFunc(s.cfg.Retransmit, func() { s.onTriggerRetx(key) })
}

func (s *Sender) onTriggerRetx(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	e, ok := s.entries[key]
	if !ok || e.removing || e.ackedSeq >= e.seq {
		return
	}
	if s.cfg.MaxRetransmits > 0 && e.retries >= s.cfg.MaxRetransmits {
		s.emitLocked(Event{Kind: EventGaveUp, Key: key, Seq: e.seq})
		return
	}
	e.retries++
	s.sendLocked(wire.Message{Type: wire.TypeTrigger, Seq: e.seq, Key: key, Value: e.value})
	s.armTriggerRetxLocked(key, e)
}

func (s *Sender) armRemovalRetxLocked(key string, e *senderEntry) {
	stopTimer(&e.retx)
	e.retx = time.AfterFunc(s.cfg.Retransmit, func() { s.onRemovalRetx(key) })
}

func (s *Sender) onRemovalRetx(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	e, ok := s.entries[key]
	if !ok || !e.removing {
		return
	}
	if s.cfg.MaxRetransmits > 0 && e.retries >= s.cfg.MaxRetransmits {
		delete(s.entries, key)
		s.emitLocked(Event{Kind: EventGaveUp, Key: key, Seq: e.removalSeq})
		return
	}
	e.retries++
	s.sendLocked(wire.Message{Type: wire.TypeRemoval, Seq: e.removalSeq, Key: key})
	s.armRemovalRetxLocked(key, e)
}

// --- inbound ---

func (s *Sender) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := s.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		var m wire.Message
		if derr := m.UnmarshalBinary(buf[:n]); derr != nil {
			s.mu.Lock()
			s.stats.DecodeErrors++
			s.mu.Unlock()
			continue
		}
		s.handle(m)
	}
}

func (s *Sender) handle(m wire.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.stats.Received[m.Type.String()]++
	e, ok := s.entries[m.Key]
	switch m.Type {
	case wire.TypeAck:
		if !ok || e.removing {
			return
		}
		if m.Seq > e.ackedSeq {
			e.ackedSeq = m.Seq
		}
		if e.ackedSeq >= e.seq {
			stopTimer(&e.retx)
			e.retries = 0
			s.emitLocked(Event{Kind: EventAcked, Key: m.Key, Seq: e.seq})
		}
	case wire.TypeRemovalAck:
		if !ok || !e.removing || m.Seq < e.removalSeq {
			return
		}
		stopTimer(&e.retx)
		delete(s.entries, m.Key)
		s.emitLocked(Event{Kind: EventRemoved, Key: m.Key})
	case wire.TypeNotify:
		// The receiver dropped our state (timeout or false signal);
		// repair by re-triggering if we still own the key.
		if !ok || e.removing {
			return
		}
		s.seq++
		e.seq = s.seq
		e.retries = 0
		s.sendLocked(wire.Message{Type: wire.TypeTrigger, Seq: e.seq, Key: m.Key, Value: e.value})
		s.armTriggerRetxLocked(m.Key, e)
		s.armRefreshLocked(m.Key, e)
		s.emitLocked(Event{Kind: EventRepaired, Key: m.Key, Seq: e.seq})
	}
}

// sendLocked encodes and transmits m; callers hold s.mu.
func (s *Sender) sendLocked(m wire.Message) {
	data, err := m.Append(nil)
	if err != nil {
		return
	}
	if _, err := s.conn.WriteTo(data, s.peer); err == nil || isNetTemporary(err) {
		s.stats.Sent[m.Type.String()]++
	}
}

// emitLocked delivers an event without ever blocking the protocol.
func (s *Sender) emitLocked(ev Event) {
	select {
	case s.events <- ev:
	default:
	}
}

func isNetTemporary(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
