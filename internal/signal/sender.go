package signal

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/statetable"
	"softstate/internal/wire"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("signal: endpoint closed")

// Timer slots in the state table: senders arm refresh and retransmit,
// receivers arm state-timeout.
const (
	timerRefresh statetable.TimerKind = 0
	timerRetx    statetable.TimerKind = 1
	timerTimeout statetable.TimerKind = 0
)

// Sender installs and maintains keyed state at a remote Receiver. Keys
// live in a sharded state table whose timing wheels drive every refresh
// and retransmission deadline — no per-key timers or goroutines, so one
// Sender scales to millions of keys. All methods are safe for concurrent
// use.
type Sender struct {
	tp   transport
	peer net.Addr
	cfg  Config

	tbl    *statetable.Table[senderEntry]
	seq    atomic.Uint64
	live   atomic.Int64 // keys installed and not being removed
	ctrs   counters
	closed atomic.Bool

	events eventSink
	done   chan struct{}
	wg     sync.WaitGroup
}

// senderEntry tracks one key's signaling state at the sender.
type senderEntry struct {
	value    []byte
	seq      uint64 // latest trigger sequence
	ackedSeq uint64
	retries  int

	removing   bool // removal sent, awaiting removal-ack
	removalSeq uint64
}

// NewSender creates a sender speaking cfg.Protocol to peer over conn and
// starts its receive loop (for ACKs and notifications).
func NewSender(conn net.PacketConn, peer net.Addr, cfg Config) (*Sender, error) {
	if conn == nil || peer == nil {
		return nil, errors.New("signal: nil conn or peer")
	}
	cfg = cfg.withDefaults()
	s := &Sender{
		tp:     transport{conn: conn},
		peer:   peer,
		cfg:    cfg,
		events: eventSink{ch: make(chan Event, cfg.EventBuffer)},
		done:   make(chan struct{}),
	}
	s.tbl = statetable.New(statetable.Config[senderEntry]{
		Shards:   cfg.Shards,
		OnExpire: s.onExpire,
	})
	s.wg.Add(1)
	go s.readLoop()
	if s.summaryMode() {
		s.wg.Add(1)
		go s.summaryLoop()
	}
	return s, nil
}

// summaryMode reports whether refreshes are batched into summaries.
func (s *Sender) summaryMode() bool {
	return s.cfg.SummaryRefresh && s.cfg.Protocol.Refreshes()
}

// Events exposes the observability stream. The channel closes when the
// sender is closed.
func (s *Sender) Events() <-chan Event { return s.events.ch }

// Stats returns a snapshot of message counters.
func (s *Sender) Stats() Stats { return s.ctrs.snapshot() }

// Install installs (or reinstalls) state for key at the receiver.
func (s *Sender) Install(key string, value []byte) error {
	return s.put(key, value, EventInstalled)
}

// Update changes the state value for key; it is an error to update a key
// that was never installed or is being removed.
func (s *Sender) Update(key string, value []byte) error {
	known := false
	s.tbl.Update(key, func(e *senderEntry, _ statetable.TimerControl[senderEntry]) {
		known = !e.removing
	})
	if !known {
		return fmt.Errorf("signal: update of unknown key %q", key)
	}
	return s.put(key, value, EventUpdated)
}

func (s *Sender) put(key string, value []byte, kind EventKind) error {
	if len(key) > wire.MaxKeyLen || len(value) > wire.MaxValueLen {
		return wire.ErrTooLarge
	}
	if s.closed.Load() {
		return ErrClosed
	}
	v := make([]byte, len(value))
	copy(v, value)
	err := error(nil)
	s.tbl.Upsert(key, func(e *senderEntry, created bool, tc statetable.TimerControl[senderEntry]) {
		// Re-check under the shard lock: Close may have completed since
		// the fast-path check above, and a success return here would claim
		// an install that no timer will ever maintain. A just-created entry
		// is deleted again so the table and the live counter stay in step.
		if s.closed.Load() {
			if created {
				tc.Delete()
			}
			err = ErrClosed
			return
		}
		if created || e.removing {
			s.live.Add(1)
		}
		e.value = v
		e.removing = false
		e.retries = 0
		e.seq = s.seq.Add(1)
		s.send(wire.Message{Type: wire.TypeTrigger, Seq: e.seq, Key: key, Value: e.value})
		s.armTriggerRetx(tc)
		s.armRefresh(tc)
		s.emit(Event{Kind: kind, Key: key, Value: e.value, Seq: e.seq})
	})
	return err
}

// Remove withdraws the state for key. With explicit-removal protocols a
// removal message is sent (reliably for SS+RTR and HS); otherwise the
// receiver is left to time the state out.
func (s *Sender) Remove(key string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	known := false
	err := error(nil)
	s.tbl.Update(key, func(e *senderEntry, tc statetable.TimerControl[senderEntry]) {
		if e.removing {
			return
		}
		known = true
		if s.closed.Load() { // Close completed since the fast-path check
			err = ErrClosed
			return
		}
		s.live.Add(-1)
		tc.Cancel(timerRefresh)
		tc.Cancel(timerRetx)
		if !s.cfg.Protocol.ExplicitRemoval() {
			tc.Delete()
			s.emit(Event{Kind: EventRemoved, Key: key})
			return
		}
		e.removing = true
		e.removalSeq = s.seq.Add(1)
		e.retries = 0
		e.value = nil
		s.send(wire.Message{Type: wire.TypeRemoval, Seq: e.removalSeq, Key: key})
		if s.cfg.Protocol.ReliableRemoval() {
			tc.Schedule(timerRetx, s.cfg.Retransmit)
		} else {
			tc.Delete()
			s.emit(Event{Kind: EventRemoved, Key: key})
		}
	})
	if !known {
		return fmt.Errorf("signal: remove of unknown key %q", key)
	}
	return err
}

// Keys returns the keys with live (non-removing) state.
func (s *Sender) Keys() []string {
	out := make([]string, 0, s.live.Load())
	s.tbl.Range(func(key string, e *senderEntry) bool {
		if !e.removing {
			out = append(out, key)
		}
		return true
	})
	return out
}

// Close stops all timers, closes the transport, and waits for the receive
// loop to drain. The events channel is closed afterwards.
func (s *Sender) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.done)
	s.tbl.Close() // no expiry callback runs past this point
	err := s.tp.close()
	s.wg.Wait()
	s.events.close()
	return err
}

// --- timers (fired by the state table's wheel goroutines) ---

// armRefresh schedules the next per-key refresh; in summary mode the
// summary loop carries refreshes instead, so no per-key deadline exists.
func (s *Sender) armRefresh(tc statetable.TimerControl[senderEntry]) {
	if !s.cfg.Protocol.Refreshes() || s.summaryMode() {
		return
	}
	tc.Schedule(timerRefresh, s.refreshInterval())
}

func (s *Sender) armTriggerRetx(tc statetable.TimerControl[senderEntry]) {
	if !s.cfg.Protocol.ReliableTrigger() {
		tc.Cancel(timerRetx) // a reinstall may race a pending removal retx
		return
	}
	tc.Schedule(timerRetx, s.cfg.Retransmit)
}

// refreshInterval returns the per-key refresh interval, stretched when an
// aggregate rate bound is configured (scalable timers): with n live keys
// the aggregate rate is n/interval, so the interval grows to
// n/MaxRefreshRate once n exceeds MaxRefreshRate·R. The live count is a
// single atomic read, not a table scan.
func (s *Sender) refreshInterval() time.Duration {
	interval := s.cfg.RefreshInterval
	if s.cfg.MaxRefreshRate <= 0 {
		return interval
	}
	if min := time.Duration(float64(s.live.Load()) / s.cfg.MaxRefreshRate * float64(time.Second)); min > interval {
		interval = min
	}
	return interval
}

// onExpire dispatches wheel deadlines; it runs on a shard goroutine with
// the shard locked.
func (s *Sender) onExpire(key string, kind statetable.TimerKind, e *senderEntry, tc statetable.TimerControl[senderEntry]) {
	if s.closed.Load() {
		return
	}
	switch kind {
	case timerRefresh:
		if e.removing {
			return
		}
		s.send(wire.Message{Type: wire.TypeRefresh, Seq: e.seq, Key: key, Value: e.value})
		s.armRefresh(tc)
	case timerRetx:
		if e.removing {
			s.removalRetx(key, e, tc)
		} else {
			s.triggerRetx(key, e, tc)
		}
	}
}

func (s *Sender) triggerRetx(key string, e *senderEntry, tc statetable.TimerControl[senderEntry]) {
	if e.ackedSeq >= e.seq {
		return
	}
	if s.cfg.MaxRetransmits > 0 && e.retries >= s.cfg.MaxRetransmits {
		s.emit(Event{Kind: EventGaveUp, Key: key, Seq: e.seq})
		return
	}
	e.retries++
	s.send(wire.Message{Type: wire.TypeTrigger, Seq: e.seq, Key: key, Value: e.value})
	tc.Schedule(timerRetx, s.cfg.Retransmit)
}

func (s *Sender) removalRetx(key string, e *senderEntry, tc statetable.TimerControl[senderEntry]) {
	if s.cfg.MaxRetransmits > 0 && e.retries >= s.cfg.MaxRetransmits {
		seq := e.removalSeq
		tc.Delete()
		s.emit(Event{Kind: EventGaveUp, Key: key, Seq: seq})
		return
	}
	e.retries++
	s.send(wire.Message{Type: wire.TypeRemoval, Seq: e.removalSeq, Key: key})
	tc.Schedule(timerRetx, s.cfg.Retransmit)
}

// --- summary refresh (RFC 2961-style refresh reduction) ---

// summaryLoop periodically renews every live key with batched summary
// datagrams instead of one refresh per key.
func (s *Sender) summaryLoop() {
	defer s.wg.Done()
	timer := time.NewTimer(s.summaryInterval())
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			s.summarySweep()
			timer.Reset(s.summaryInterval())
		case <-s.done:
			return
		}
	}
}

// summaryInterval is the sweep period: the refresh interval R, stretched
// so the aggregate summary-datagram rate (⌈n/SummaryMaxKeys⌉ per sweep)
// stays under MaxRefreshRate when one is configured.
func (s *Sender) summaryInterval() time.Duration {
	interval := s.cfg.RefreshInterval
	if s.cfg.MaxRefreshRate <= 0 {
		return interval
	}
	datagrams := (float64(s.live.Load()) + float64(s.cfg.SummaryMaxKeys) - 1) / float64(s.cfg.SummaryMaxKeys)
	if min := time.Duration(datagrams / s.cfg.MaxRefreshRate * float64(time.Second)); min > interval {
		interval = min
	}
	return interval
}

// summarySweep sends one round of summary refreshes covering every live
// key and returns the number of datagrams it took.
func (s *Sender) summarySweep() int {
	keys := make([]string, 0, s.live.Load())
	s.tbl.Range(func(key string, e *senderEntry) bool {
		if !e.removing {
			keys = append(keys, key)
		}
		return true
	})
	sent := 0
	for len(keys) > 0 {
		n := wire.SummaryFits(keys)
		if n > s.cfg.SummaryMaxKeys {
			n = s.cfg.SummaryMaxKeys
		}
		if n == 0 {
			break // unreachable: every installed key fits a datagram
		}
		s.send(wire.Message{Type: wire.TypeSummaryRefresh, Seq: s.seq.Load(), Keys: keys[:n]})
		keys = keys[n:]
		sent++
	}
	return sent
}

// --- inbound ---

func (s *Sender) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := s.tp.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		var m wire.Message
		if derr := m.UnmarshalBinary(buf[:n]); derr != nil {
			s.ctrs.decodeErrors.Add(1)
			continue
		}
		s.handle(m)
	}
}

func (s *Sender) handle(m wire.Message) {
	if s.closed.Load() {
		return
	}
	s.ctrs.received[m.Type].Add(1)
	switch m.Type {
	case wire.TypeAck:
		s.tbl.Update(m.Key, func(e *senderEntry, tc statetable.TimerControl[senderEntry]) {
			if e.removing {
				return
			}
			if m.Seq > e.ackedSeq {
				e.ackedSeq = m.Seq
			}
			if e.ackedSeq >= e.seq {
				tc.Cancel(timerRetx)
				e.retries = 0
				s.emit(Event{Kind: EventAcked, Key: m.Key, Seq: e.seq})
			}
		})
	case wire.TypeRemovalAck:
		s.tbl.Update(m.Key, func(e *senderEntry, tc statetable.TimerControl[senderEntry]) {
			if !e.removing || m.Seq < e.removalSeq {
				return
			}
			tc.Cancel(timerRetx)
			tc.Delete()
			s.emit(Event{Kind: EventRemoved, Key: m.Key})
		})
	case wire.TypeNotify:
		// The receiver dropped our state (timeout or false signal);
		// repair by re-triggering if we still own the key.
		s.retrigger(m.Key)
	case wire.TypeSummaryNack:
		// The receiver does not hold these keys: fall back from summary
		// refresh to full triggers for each.
		for _, key := range m.Keys {
			s.retrigger(key)
		}
	}
}

// retrigger re-installs key at the receiver with a fresh sequence number.
func (s *Sender) retrigger(key string) {
	s.tbl.Update(key, func(e *senderEntry, tc statetable.TimerControl[senderEntry]) {
		if e.removing {
			return
		}
		e.seq = s.seq.Add(1)
		e.retries = 0
		s.send(wire.Message{Type: wire.TypeTrigger, Seq: e.seq, Key: key, Value: e.value})
		s.armTriggerRetx(tc)
		s.armRefresh(tc)
		s.emit(Event{Kind: EventRepaired, Key: key, Seq: e.seq})
	})
}

// send encodes and transmits m to the peer.
func (s *Sender) send(m wire.Message) {
	data, err := m.Append(nil)
	if err != nil {
		return
	}
	if s.tp.write(data, s.peer) {
		s.ctrs.sent[m.Type].Add(1)
	}
}

func (s *Sender) emit(ev Event) { s.events.emit(ev) }

func isNetTemporary(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
