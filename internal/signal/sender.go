package signal

import (
	"errors"
	"net"
	"sync"
	"time"

	"softstate/internal/statetable"
	"softstate/internal/telemetry"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("signal: endpoint closed")

// Timer slots in the state table: senders arm refresh and retransmit,
// receivers arm state-timeout (soft state) or the orphan probe (hard
// state) — each role uses both slots at most once, so the table's two
// embedded timer nodes cover every variant.
const (
	timerRefresh statetable.TimerKind = 0
	timerRetx    statetable.TimerKind = 1
	timerTimeout statetable.TimerKind = 0
	timerProbe   statetable.TimerKind = 1
)

// Sender installs and maintains keyed state at a single remote Receiver:
// a one-peer instance of the multi-peer Sessions core (internal/node.Node
// is the many-peer instance). Keys live in a sharded state table whose
// timing wheels drive every refresh and retransmission deadline — no
// per-key timers or goroutines, so one Sender scales to millions of keys.
// All methods are safe for concurrent use.
type Sender struct {
	ss   *Sessions
	sess *Session
	wg   sync.WaitGroup
}

// NewSender creates a sender speaking cfg.Protocol to peer over conn and
// starts its receive loop (for ACKs and notifications).
func NewSender(conn net.PacketConn, peer net.Addr, cfg Config) (*Sender, error) {
	if conn == nil || peer == nil {
		return nil, errors.New("signal: nil conn or peer")
	}
	s := &Sender{ss: NewSessions(conn, cfg)}
	s.sess = s.ss.Session(peer)
	s.wg.Add(1)
	go s.readLoop()
	return s, nil
}

// Events exposes the observability stream. The channel closes when the
// sender is closed.
func (s *Sender) Events() <-chan Event { return s.ss.Events() }

// Stats returns a snapshot of message counters.
func (s *Sender) Stats() Stats { return s.ss.Stats() }

// SentDatagrams returns the cumulative signaling datagrams written.
func (s *Sender) SentDatagrams() int64 { return s.ss.SentDatagrams() }

// ReceivedDatagrams returns the cumulative signaling datagrams accepted.
func (s *Sender) ReceivedDatagrams() int64 { return s.ss.ReceivedDatagrams() }

// Install installs (or reinstalls) state for key at the receiver.
func (s *Sender) Install(key string, value []byte) error {
	return s.sess.Install(key, value)
}

// Update changes the state value for key; it is an error to update a key
// that was never installed or is being removed.
func (s *Sender) Update(key string, value []byte) error {
	return s.sess.Update(key, value)
}

// Remove withdraws the state for key. With explicit-removal protocols a
// removal message is sent (reliably for SS+RTR and HS); otherwise the
// receiver is left to time the state out.
func (s *Sender) Remove(key string) error { return s.sess.Remove(key) }

// Session returns the sender's single peer session — the handle for
// per-peer health estimates (RTT, LossEstimate) and link-scoped census
// sources.
func (s *Sender) Session() *Session { return s.sess }

// CensusSource exposes the sender's intent digest as an auditor source
// (requires Config.Census).
func (s *Sender) CensusSource(name string) telemetry.CensusSource {
	return s.ss.CensusSource(name)
}

// CensusPeer builds an auditor source that audits the remote receiver
// over the wire digest protocol; see Sessions.CensusPeer.
func (s *Sender) CensusPeer(name string, timeout time.Duration) telemetry.CensusSource {
	return s.ss.CensusPeer(name, s.sess.Peer(), timeout)
}

// Keys returns the keys with live (non-removing) state.
func (s *Sender) Keys() []string { return s.sess.Keys() }

// Close stops all timers, closes the transport, and waits for the receive
// loop to drain. The events channel is closed afterwards.
func (s *Sender) Close() error {
	err := s.ss.Shutdown()
	s.wg.Wait()
	s.ss.CloseEvents()
	return err
}

// readLoop drains inbound replies. A single-peer sender keeps the
// original endpoint behavior and routes every datagram to its one
// session, whatever the source address claims.
func (s *Sender) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		m, _, ok := s.ss.Recv(buf)
		if !ok {
			return
		}
		s.sess.Handle(m)
	}
}

// summarySweep and summaryInterval are exercised directly by tests and
// benchmarks.
func (s *Sender) summarySweep() int              { return s.ss.summarySweep() }
func (s *Sender) summaryInterval() time.Duration { return s.ss.summaryInterval() }

func isNetTemporary(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
