package signal

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"softstate/internal/lossy"
)

// fastConfig uses millisecond timers so tests complete quickly while
// preserving the paper's R:T:Γ proportions.
func fastConfig(proto Protocol) Config {
	return Config{
		Protocol:        proto,
		RefreshInterval: 30 * time.Millisecond,
		Timeout:         90 * time.Millisecond,
		Retransmit:      10 * time.Millisecond,
	}
}

// endpoints builds a connected sender/receiver pair over a lossy pipe.
func endpoints(t *testing.T, proto Protocol, loss float64) (*Sender, *Receiver) {
	t.Helper()
	a, b, err := lossy.Pipe(lossy.Config{Loss: loss, Delay: time.Millisecond, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(proto)
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		snd.Close()
		rcv.Close()
	})
	return snd, rcv
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestInstallPropagates(t *testing.T) {
	c := vEndpoints(t, SS, 0)
	if err := c.snd.Install("flow/1", []byte("10Mbps")); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "install", func() bool {
		v, ok := c.rcv.Get("flow/1")
		return ok && bytes.Equal(v, []byte("10Mbps"))
	})
	if got := c.snd.Keys(); len(got) != 1 || got[0] != "flow/1" {
		t.Fatalf("sender keys = %v", got)
	}
}

func TestUpdatePropagates(t *testing.T) {
	c := vEndpoints(t, SS, 0)
	if err := c.snd.Install("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	if err := c.snd.Update("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "update", func() bool {
		v, _ := c.rcv.Get("k")
		return bytes.Equal(v, []byte("v2"))
	})
}

func TestUpdateUnknownKeyFails(t *testing.T) {
	snd, _ := endpoints(t, SS, 0)
	if err := snd.Update("missing", []byte("v")); err == nil {
		t.Fatal("update of unknown key succeeded")
	}
}

func TestRefreshKeepsStateAlive(t *testing.T) {
	c := vEndpoints(t, SS, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	// Hold well past several timeout intervals; refreshes must keep it.
	c.run(4 * fastConfig(SS).Timeout)
	if _, ok := c.rcv.Get("k"); !ok {
		t.Fatal("state expired despite refreshes")
	}
}

func TestStateExpiresWhenSenderDies(t *testing.T) {
	c := vEndpoints(t, SS, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	// Simulate a crash: close the sender without removing state.
	c.snd.Close()
	c.within(time.Second, "expiry", func() bool { _, ok := c.rcv.Get("k"); return !ok })
}

func TestSSRemovalIsSilent(t *testing.T) {
	c := vEndpoints(t, SS, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	before := c.clk.Elapsed()
	if err := c.snd.Remove("k"); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "timeout removal", func() bool { _, ok := c.rcv.Get("k"); return !ok })
	// Pure SS has no removal message: cleanup waits for the timeout —
	// measured exactly, in virtual time.
	if elapsed := c.clk.Elapsed() - before; elapsed < fastConfig(SS).Timeout/2 {
		t.Fatalf("SS state removed after only %v — removal message leaked?", elapsed)
	}
	if c.snd.Stats().Sent["removal"] != 0 {
		t.Fatal("SS sent a removal message")
	}
}

func TestExplicitRemovalIsPrompt(t *testing.T) {
	c := vEndpoints(t, SSER, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	before := c.clk.Elapsed()
	if err := c.snd.Remove("k"); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "explicit removal", func() bool { _, ok := c.rcv.Get("k"); return !ok })
	if elapsed := c.clk.Elapsed() - before; elapsed > fastConfig(SSER).Timeout/2 {
		t.Fatalf("explicit removal took %v, should beat the timeout", elapsed)
	}
	if c.snd.Stats().Sent["removal"] == 0 {
		t.Fatal("SS+ER did not send a removal message")
	}
}

func TestRemoveUnknownKeyFails(t *testing.T) {
	snd, _ := endpoints(t, SSER, 0)
	if err := snd.Remove("missing"); err == nil {
		t.Fatal("remove of unknown key succeeded")
	}
}

func TestReliableTriggerSurvivesLoss(t *testing.T) {
	c := vEndpoints(t, SSRT, 0.5)
	c.snd.Install("k", []byte("v"))
	c.within(3*time.Second, "install under 50% loss", func() bool { _, ok := c.rcv.Get("k"); return ok })
	// The sender must eventually see the ACK and stop retransmitting.
	c.within(3*time.Second, "ack", func() bool {
		st := c.snd.Stats()
		return st.Received["ack"] > 0
	})
	if c.snd.Stats().Sent["trigger"] < 1 {
		t.Fatal("no triggers sent")
	}
}

func TestReliableRemovalSurvivesLoss(t *testing.T) {
	c := vEndpoints(t, SSRTR, 0.5)
	c.snd.Install("k", []byte("v"))
	c.within(3*time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	if err := c.snd.Remove("k"); err != nil {
		t.Fatal(err)
	}
	c.within(3*time.Second, "reliable removal", func() bool { _, ok := c.rcv.Get("k"); return !ok })
	// The sender's entry must be cleaned once the removal is ACKed.
	c.within(3*time.Second, "removal ack", func() bool {
		return len(c.snd.Keys()) == 0 && c.snd.Stats().Received["removal-ack"] > 0
	})
}

func TestHardStateNeverExpires(t *testing.T) {
	c := vEndpoints(t, HS, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	// No refreshes and no timeout: the state must survive arbitrarily —
	// a simulated hour costs nothing in virtual time.
	c.run(time.Hour)
	if _, ok := c.rcv.Get("k"); !ok {
		t.Fatal("hard state expired")
	}
	if c.snd.Stats().Sent["refresh"] != 0 {
		t.Fatal("HS sent refreshes")
	}
}

func TestHardStateFalseRemovalRepair(t *testing.T) {
	c := vEndpoints(t, HS, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	if !c.rcv.InjectFalseRemoval("k") {
		t.Fatal("InjectFalseRemoval found no state")
	}
	// The notify must reach the sender, which re-triggers, reinstalling.
	c.within(time.Second, "repair", func() bool { _, ok := c.rcv.Get("k"); return ok })
	if c.rcv.InjectFalseRemoval("absent") {
		t.Fatal("InjectFalseRemoval invented state")
	}
}

func TestTimeoutNotificationRepair(t *testing.T) {
	// SS+RT: force a false removal by dropping everything long enough for
	// the timeout to fire... simplest deterministic path: inject it.
	c := vEndpoints(t, SSRT, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	c.rcv.InjectFalseRemoval("k")
	c.within(time.Second, "repair after notify", func() bool { _, ok := c.rcv.Get("k"); return ok })
}

func TestGiveUpAfterMaxRetransmits(t *testing.T) {
	c := vEndpoints(t, SSRT, 1, func(cfg *Config) { cfg.MaxRetransmits = 3 })
	c.snd.Install("k", []byte("v"))
	c.within(3*time.Second, "give-up", func() bool {
		return c.snd.Stats().Sent["trigger"] == 4 // initial + 3 retries
	})
	c.run(10 * fastConfig(SSRT).Retransmit) // no further retransmissions
	if got := c.snd.Stats().Sent["trigger"]; got != 4 {
		t.Fatalf("triggers sent = %d, want 4", got)
	}
	gaveUp := false
	for done := false; !done; {
		select {
		case ev := <-c.snd.Events():
			gaveUp = gaveUp || ev.Kind == EventGaveUp
		default:
			done = true
		}
	}
	if !gaveUp {
		t.Fatal("no give-up event emitted")
	}
}

func TestEventsStream(t *testing.T) {
	c := vEndpoints(t, SSER, 0)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install", func() bool { return c.rcv.Len() == 1 })
	select {
	case ev := <-c.rcv.Events():
		if ev.Kind != EventInstalled {
			t.Fatalf("first receiver event = %v", ev.Kind)
		}
	default:
		t.Fatal("no receiver events")
	}
}

func TestMultipleKeys(t *testing.T) {
	c := vEndpoints(t, SSER, 0)
	keys := []string{"a", "b", "c", "d"}
	for i, k := range keys {
		if err := c.snd.Install(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.within(time.Second, "all installs", func() bool { return c.rcv.Len() == len(keys) })
	if err := c.snd.Remove("b"); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "selective removal", func() bool { return c.rcv.Len() == len(keys)-1 })
	if _, ok := c.rcv.Get("b"); ok {
		t.Fatal("removed key still present")
	}
	if _, ok := c.rcv.Get("c"); !ok {
		t.Fatal("unrelated key lost")
	}
}

func TestClosedEndpointRejects(t *testing.T) {
	snd, _ := endpoints(t, SS, 0)
	snd.Close()
	if err := snd.Install("k", []byte("v")); err != ErrClosed {
		t.Fatalf("Install after close: %v", err)
	}
	if err := snd.Remove("k"); err != ErrClosed {
		t.Fatalf("Remove after close: %v", err)
	}
	if err := snd.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestCloseRacesActiveSends: closing a sender while summary sweeps and
// installs are mid-write must not race the transport shutdown, and a put
// that loses the race to Close must leave no residue in the table.
func TestCloseRacesActiveSends(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b, err := lossy.Pipe(lossy.Config{Delay: time.Millisecond, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(SS)
		cfg.RefreshInterval = time.Millisecond // sweep as often as possible
		cfg.SummaryRefresh = true
		cfg.SummaryMaxKeys = 8
		snd, err := NewSender(a, b.LocalAddr(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < 50; k++ {
					if err := snd.Install(fmt.Sprintf("g%d/k%02d", g, k), []byte("v")); err == ErrClosed {
						return
					}
				}
			}(g)
		}
		time.Sleep(time.Duration(i%5) * time.Millisecond)
		snd.Close()
		wg.Wait()
		liveKeys := 0
		snd.ss.tbl.Range(func(_ string, e *senderEntry) bool {
			if !e.removing {
				liveKeys++
			}
			return true
		})
		if got := snd.ss.live.Load(); int(got) != liveKeys {
			t.Fatalf("live counter %d != %d non-removing table entries after close race", got, liveKeys)
		}
		b.Close()
	}
}

// TestReceiverCloseRacesReplies: closing a receiver while it is still
// ACKing inbound triggers must not race the transport shutdown.
func TestReceiverCloseRacesReplies(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b, err := lossy.Pipe(lossy.Config{Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(SSRT)
		snd, err := NewSender(a, b.LocalAddr(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rcv, err := NewReceiver(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for k := 0; ; k++ {
				if err := snd.Install(fmt.Sprintf("k%04d", k), []byte("v")); err != nil {
					return
				}
			}
		}()
		time.Sleep(time.Duration(i%4) * time.Millisecond)
		rcv.Close()
		snd.Close()
		<-done
	}
}

func TestDecodeErrorsCounted(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(b, fastConfig(SS))
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	defer a.Close()
	a.WriteTo([]byte("garbage-not-a-message"), nil)
	eventually(t, "decode error", func() bool { return rcv.Stats().DecodeErrors > 0 })
}

func TestStaleTriggerDoesNotClobber(t *testing.T) {
	// Deliver a current trigger, then replay an older datagram; the newer
	// value must survive.
	c := vEndpoints(t, SS, 0)
	c.snd.Install("k", []byte("v1"))
	c.within(time.Second, "v1", func() bool { _, ok := c.rcv.Get("k"); return ok })
	c.snd.Update("k", []byte("v2"))
	c.within(time.Second, "v2", func() bool {
		v, _ := c.rcv.Get("k")
		return bytes.Equal(v, []byte("v2"))
	})
	// Replay a hand-crafted stale trigger (seq 1 carried v1).
	stale := mustEncode(t, 1, "k", []byte("v1"))
	c.sndConn.WriteTo(stale, nil)
	c.run(30 * time.Millisecond)
	v, _ := c.rcv.Get("k")
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("stale replay clobbered value: %q", v)
	}
}

func TestUDPLoopback(t *testing.T) {
	sc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	rc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		sc.Close()
		t.Skipf("no UDP loopback: %v", err)
	}
	cfg := fastConfig(SSRTR)
	snd, err := NewSender(sc, rc.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	rcv, err := NewReceiver(rc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	if err := snd.Install("udp-key", []byte("over-the-loopback")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "UDP install", func() bool {
		v, ok := rcv.Get("udp-key")
		return ok && bytes.Equal(v, []byte("over-the-loopback"))
	})
	if err := snd.Remove("udp-key"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "UDP removal", func() bool { _, ok := rcv.Get("udp-key"); return !ok })
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Protocol: SS}.withDefaults()
	if c.RefreshInterval != 5*time.Second || c.Timeout != 15*time.Second {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{Protocol: SS, RefreshInterval: time.Second}.withDefaults()
	if c.Timeout != 3*time.Second {
		t.Fatalf("T should default to 3R, got %v", c.Timeout)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventInstalled, EventUpdated, EventRemoved, EventExpired,
		EventFalseRemoval, EventRepaired, EventAcked, EventGaveUp,
	}
	for _, k := range kinds {
		if k.String() == "unknown" {
			t.Fatalf("missing name for kind %d", k)
		}
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("unexpected name for invalid kind")
	}
}

func TestStatsTotals(t *testing.T) {
	snd, rcv := endpoints(t, SSER, 0)
	snd.Install("k", []byte("v"))
	eventually(t, "install", func() bool { _, ok := rcv.Get("k"); return ok })
	if snd.Stats().TotalSent() == 0 {
		t.Fatal("no sent messages recorded")
	}
}

// mustEncode builds a trigger datagram for replay tests.
func mustEncode(t *testing.T, seq uint64, key string, value []byte) []byte {
	t.Helper()
	m := wireTrigger(seq, key, value)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
