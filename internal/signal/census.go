package signal

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"softstate/internal/telemetry"
	"softstate/internal/wire"
)

// Census sources — the signal layer's side of the convergence auditor.
//
// An audited link pairs an intent source (what a sender believes it has
// installed at a peer) with a held source (what that peer's receiver
// actually holds). Both fold the same (key, value, seq) tuples with
// statetable.DigestKV, so equal sums mean the link converged. In-process
// sources read the local table directly; CensusPeer speaks the wire
// digest protocol (TypeDigest / TypeDigestReply) to audit a remote
// receiver the auditor cannot touch.

// ErrNoCensus reports a census read against an endpoint configured
// without Config.Census: no digests are maintained, so there is nothing
// to compare.
var ErrNoCensus = errors.New("signal: census disabled (Config.Census false)")

// censusReplyBuffer bounds a pending exchange's reply channel; replies
// beyond it (impossible in practice — detail parts are counted) drop
// rather than stall the read loop.
const censusReplyBuffer = 64

// DigestSums returns the endpoint's per-bucket digest sums, nil when
// census is off. O(shards × buckets), independent of key count.
func (ss *Sessions) DigestSums() []uint64 { return ss.tbl.DigestSums() }

// CensusSource exposes the whole sender table as an auditor intent
// source: the summary round reads the incremental sums in O(shards ×
// buckets), the detail round walks the table once. Keys are user keys
// (session prefixes stripped), so use this on single-peer cores — a
// Sender or a chain node — where the key space is one peer's; a
// multi-peer node audits per link with Session.CensusSource instead.
func (ss *Sessions) CensusSource(name string) telemetry.CensusSource {
	return telemetry.CensusSource{
		Name: name,
		Sums: func() ([]uint64, error) {
			sums := ss.tbl.DigestSums()
			if sums == nil {
				return nil, ErrNoCensus
			}
			return sums, nil
		},
		Bucket: func(b int) ([]telemetry.KeyDigest, error) {
			if ss.tbl.NumDigestBuckets() == 0 {
				return nil, ErrNoCensus
			}
			var out []telemetry.KeyDigest
			ss.tbl.RangeDigest(func(ck string, _ *senderEntry, bucket uint32, sum uint64) bool {
				if int(bucket) == b {
					out = append(out, telemetry.KeyDigest{Key: userKey(ck), Sum: sum})
				}
				return true
			})
			sortKeyDigests(out)
			return out, nil
		},
	}
}

// CensusSource exposes one session's slice of the shared table as an
// auditor intent source: exactly the keys this peer should hold. Both
// rounds walk the table filtered to this session — O(total keys), fine
// for audit cadence, not for hot paths.
func (s *Session) CensusSource(name string) telemetry.CensusSource {
	ss := s.ss
	return telemetry.CensusSource{
		Name: name,
		Sums: func() ([]uint64, error) {
			n := ss.tbl.NumDigestBuckets()
			if n == 0 {
				return nil, ErrNoCensus
			}
			sums := make([]uint64, n)
			ss.tbl.RangeDigest(func(_ string, e *senderEntry, bucket uint32, sum uint64) bool {
				if e.sess == s {
					sums[bucket] ^= sum
				}
				return true
			})
			return sums, nil
		},
		Bucket: func(b int) ([]telemetry.KeyDigest, error) {
			if ss.tbl.NumDigestBuckets() == 0 {
				return nil, ErrNoCensus
			}
			var out []telemetry.KeyDigest
			ss.tbl.RangeDigest(func(ck string, e *senderEntry, bucket uint32, sum uint64) bool {
				if e.sess == s && int(bucket) == b {
					out = append(out, telemetry.KeyDigest{Key: userKey(ck), Sum: sum})
				}
				return true
			})
			sortKeyDigests(out)
			return out, nil
		},
	}
}

// CensusPeer builds an auditor held source that audits a remote receiver
// over the wire: each read sends a TypeDigest request to peer and waits
// (wall-clock, up to timeout) for the TypeDigestReply stream the read
// loop routes back via deliverCensusReply. A peer with census off never
// answers, so the read times out and the auditor reports the link
// failed rather than converged. The timeout is real time even under a
// virtual clock — wire audits are for live deployments; virtual-time
// experiments audit in process with the direct sources above.
func (ss *Sessions) CensusPeer(name string, peer net.Addr, timeout time.Duration) telemetry.CensusSource {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return telemetry.CensusSource{
		Name: name,
		Sums: func() ([]uint64, error) {
			parts, err := ss.censusExchange(peer, wire.DigestRequest{Kind: wire.DigestSummary}, timeout)
			if err != nil {
				return nil, err
			}
			return parts[0].Sums, nil
		},
		Bucket: func(b int) ([]telemetry.KeyDigest, error) {
			if b < 0 || b > int(^uint16(0)) {
				return nil, fmt.Errorf("signal: census bucket %d out of wire range", b)
			}
			parts, err := ss.censusExchange(peer, wire.DigestRequest{Kind: wire.DigestDetail, Bucket: uint16(b)}, timeout)
			if err != nil {
				return nil, err
			}
			var out []telemetry.KeyDigest
			for _, p := range parts {
				for _, k := range p.Keys {
					out = append(out, telemetry.KeyDigest{Key: k.Key, Sum: k.Sum})
				}
			}
			sortKeyDigests(out)
			return out, nil
		},
	}
}

// censusExchange runs one request/reply round against peer: it parks a
// reply channel under a fresh nonce, sends the request, and collects
// every part of the answer (summaries are one datagram; detail replies
// declare their part count). Lost datagrams are not retransmitted — a
// census is periodic, so the next round retries naturally.
func (ss *Sessions) censusExchange(peer net.Addr, req wire.DigestRequest, timeout time.Duration) ([]*wire.DigestReply, error) {
	if ss.closed.Load() {
		return nil, ErrClosed
	}
	nonce := ss.censusNonce.Add(1)
	ch := make(chan *wire.DigestReply, censusReplyBuffer)
	ss.censusMu.Lock()
	if ss.censusCh == nil {
		ss.censusCh = make(map[uint64]chan *wire.DigestReply)
	}
	ss.censusCh[nonce] = ch
	ss.censusMu.Unlock()
	defer func() {
		ss.censusMu.Lock()
		delete(ss.censusCh, nonce)
		ss.censusMu.Unlock()
	}()
	ss.send(wire.Message{Type: wire.TypeDigest, Seq: nonce, Value: req.Encode()}, peer)
	deadline := time.After(timeout)
	var parts []*wire.DigestReply
	seen := make(map[uint16]bool)
	want := 1
	for len(parts) < want {
		select {
		case r := <-ch:
			if r.Kind != req.Kind {
				continue
			}
			if req.Kind == wire.DigestDetail {
				if r.Bucket != req.Bucket || seen[r.Part] {
					continue
				}
				seen[r.Part] = true
				if n := int(r.Parts); n > want {
					want = n
				}
			}
			parts = append(parts, r)
		case <-deadline:
			return nil, fmt.Errorf("signal: census timeout after %v awaiting %v (got %d/%d parts)",
				timeout, peer, len(parts), want)
		}
	}
	return parts, nil
}

// deliverCensusReply routes an inbound digest reply to the exchange
// waiting on its nonce. Unsolicited or late replies are dropped; the
// send never blocks the read loop.
func (ss *Sessions) deliverCensusReply(m wire.Message) {
	r, err := wire.ParseDigestReply(m.Value)
	if err != nil {
		ss.ctrs.decodeErrors.Add(1)
		return
	}
	ss.censusMu.Lock()
	ch := ss.censusCh[m.Seq]
	ss.censusMu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- r:
	default:
	}
}

// CensusSource exposes the receiver's whole table as an auditor held
// source: the summary round reads the incremental sums in O(shards ×
// buckets), the detail round walks the table once. Keys are user keys;
// with several upstream senders holding the same key their
// contributions XOR together, so pair this with a matching aggregate
// intent source (chains have exactly one upstream, where it is exact).
func (r *Receiver) CensusSource(name string) telemetry.CensusSource {
	return telemetry.CensusSource{
		Name: name,
		Sums: func() ([]uint64, error) {
			sums := r.tbl.DigestSums()
			if sums == nil {
				return nil, ErrNoCensus
			}
			return sums, nil
		},
		Bucket: func(b int) ([]telemetry.KeyDigest, error) {
			if r.tbl.NumDigestBuckets() == 0 {
				return nil, ErrNoCensus
			}
			var out []telemetry.KeyDigest
			r.tbl.RangeDigest(func(_ string, e *receiverEntry, bucket uint32, sum uint64) bool {
				if int(bucket) == b {
					out = append(out, telemetry.KeyDigest{Key: e.key, Sum: sum})
				}
				return true
			})
			sortKeyDigests(out)
			return out, nil
		},
	}
}

// sortKeyDigests orders a detail listing by key — deterministic output
// for the auditor's diff and for virtual-clock byte-determinism.
func sortKeyDigests(out []telemetry.KeyDigest) {
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
}

// --- per-peer health ---

// RTT returns the gain-1/8 EWMA of this peer's trigger→ack round trip,
// 0 until the first measured acknowledgement (RTT sampling needs
// Config.Metrics, which enables the send stamps).
func (s *Session) RTT() time.Duration { return time.Duration(s.rttNs.Load()) }

// LossEstimate estimates the loss rate toward this peer as
// retransmits / (triggers + retransmits) — 0 until anything was sent.
// Removal retransmits count too: they signal the same path loss.
func (s *Session) LossEstimate() float64 {
	t, r := s.trigs.Load(), s.retxs.Load()
	if t+r == 0 {
		return 0
	}
	return float64(r) / float64(t+r)
}
