package signal

import (
	"net"

	"softstate/internal/bufpool"
	"softstate/internal/transport"
	"softstate/internal/wire"
)

// batchWriter coalesces outbound datagrams into transport WriteBatch
// calls: each add encodes onto a pooled buffer and queues; a full ring or
// an explicit flush moves the whole batch in one syscall on batching
// backends. It preserves add order, so deterministic virtual runs see the
// same wire order the unbatched path produced. Not safe for concurrent
// use — each call site owns one writer under its own serialization
// (summary sweeps under sweepMu, ack flushes under ackMu).
type batchWriter struct {
	tp    *fencedConn
	ctrs  *counters
	ms    []transport.Message
	bufs  []*bufpool.Buf
	types []wire.Type
	n     int
}

func newBatchWriter(tp *fencedConn, ctrs *counters) *batchWriter {
	size := transport.DefaultBatchSize
	return &batchWriter{
		tp:    tp,
		ctrs:  ctrs,
		ms:    make([]transport.Message, size),
		bufs:  make([]*bufpool.Buf, size),
		types: make([]wire.Type, size),
	}
}

// add encodes m for to and queues it, flushing when the ring fills.
// Reports whether the message was queued (encode failures are dropped,
// matching the unbatched send path).
func (w *batchWriter) add(m wire.Message, to net.Addr) bool {
	buf := bufpool.Get()
	data, err := m.Append(buf.B[:0])
	if err != nil {
		buf.Free()
		return false
	}
	buf.B = data
	w.bufs[w.n] = buf
	w.types[w.n] = m.Type
	w.ms[w.n].Data = data
	w.ms[w.n].Addr = to
	w.n++
	if w.n == len(w.ms) {
		w.flush()
	}
	return true
}

// flush writes every queued datagram in one transport batch, counts the
// accepted ones per wire type, and recycles the encode buffers.
func (w *batchWriter) flush() {
	if w.n == 0 {
		return
	}
	sent := w.tp.writeBatch(w.ms[:w.n])
	for i := 0; i < sent; i++ {
		w.ctrs.sent[w.types[i]].Add(1)
	}
	for i := 0; i < w.n; i++ {
		w.bufs[i].Free()
		w.bufs[i] = nil
		w.ms[i].Data = nil
		w.ms[i].Addr = nil
	}
	w.n = 0
}
