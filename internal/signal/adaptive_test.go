package signal

import (
	"fmt"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
)

// vSenderOnly builds a virtual-time sender whose peer end is drained by a
// bare read loop (no Receiver), for tests that only inspect sender-side
// traffic counters.
func vSenderOnly(t *testing.T, cfg Config) (*clock.Virtual, *Sender) {
	t.Helper()
	v := clock.NewVirtual()
	cfg.Clock = v
	a, b, err := lossy.Pipe(lossy.Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() { // drain so the gate never stalls on unread datagrams
		buf := make([]byte, 64*1024)
		for {
			if _, _, err := b.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() {
		snd.Close()
		b.Close()
	})
	return v, snd
}

// TestAdaptiveRefreshBoundsAggregateRate: with many keys and a rate bound,
// the stretched per-key interval keeps total refresh traffic near the cap
// (Sharma et al. scalable timers). The window is exact virtual time, so
// the bounds are much tighter than the old wall-clock sleep allowed.
func TestAdaptiveRefreshBoundsAggregateRate(t *testing.T) {
	v, snd := vSenderOnly(t, Config{
		Protocol:        SS,
		RefreshInterval: 5 * time.Millisecond, // would be 2000 refreshes/s with 10 keys
		Timeout:         10 * time.Second,     // keep receiver-side out of the picture
		MaxRefreshRate:  100,                  // cap: 100 refreshes/s aggregate
	})
	const keys = 10
	for i := 0; i < keys; i++ {
		if err := snd.Install(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	const window = 500 * time.Millisecond
	v.Run(window)
	sent := snd.Stats().Sent["refresh"]
	// Expected ≈ cap·window = 50; unbounded would be ≈1000. Allow slack.
	if sent > 120 {
		t.Fatalf("refresh cap violated: %d refreshes in %v (cap 100/s)", sent, window)
	}
	if sent < 10 {
		t.Fatalf("refreshes nearly stopped: %d in %v", sent, window)
	}
}

// TestAdaptiveRefreshInactiveBelowThreshold: with few keys the configured
// interval applies unchanged.
func TestAdaptiveRefreshInactiveBelowThreshold(t *testing.T) {
	v, snd := vSenderOnly(t, Config{
		Protocol:        SS,
		RefreshInterval: 20 * time.Millisecond,
		Timeout:         10 * time.Second,
		MaxRefreshRate:  1000, // threshold = 1000·0.02 = 20 keys; we use 1
	})
	if err := snd.Install("solo", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v.Run(300 * time.Millisecond)
	sent := snd.Stats().Sent["refresh"]
	// ≈15 expected at 50/s; the stretch must not have kicked in.
	if sent < 8 {
		t.Fatalf("refresh interval stretched without cause: %d refreshes", sent)
	}
}
