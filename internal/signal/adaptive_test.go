package signal

import (
	"fmt"
	"testing"
	"time"

	"softstate/internal/lossy"
)

// TestAdaptiveRefreshBoundsAggregateRate: with many keys and a rate bound,
// the stretched per-key interval keeps total refresh traffic near the cap
// (Sharma et al. scalable timers).
func TestAdaptiveRefreshBoundsAggregateRate(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{
		Protocol:        SS,
		RefreshInterval: 5 * time.Millisecond, // would be 2000 refreshes/s with 10 keys
		Timeout:         10 * time.Second,     // keep receiver-side out of the picture
		MaxRefreshRate:  100,                  // cap: 100 refreshes/s aggregate
	}
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	const keys = 10
	for i := 0; i < keys; i++ {
		if err := snd.Install(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	const window = 500 * time.Millisecond
	time.Sleep(window)
	sent := snd.Stats().Sent["refresh"]
	// Expected ≈ cap·window = 50; unbounded would be ≈1000. Allow slack.
	if sent > 120 {
		t.Fatalf("refresh cap violated: %d refreshes in %v (cap 100/s)", sent, window)
	}
	if sent < 10 {
		t.Fatalf("refreshes nearly stopped: %d in %v", sent, window)
	}
}

// TestAdaptiveRefreshInactiveBelowThreshold: with few keys the configured
// interval applies unchanged.
func TestAdaptiveRefreshInactiveBelowThreshold(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{
		Protocol:        SS,
		RefreshInterval: 20 * time.Millisecond,
		Timeout:         10 * time.Second,
		MaxRefreshRate:  1000, // threshold = 1000·0.02 = 20 keys; we use 1
	}
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	if err := snd.Install("solo", []byte("v")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	sent := snd.Stats().Sent["refresh"]
	// ≈15 expected at 50/s; the stretch must not have kicked in.
	if sent < 8 {
		t.Fatalf("refresh interval stretched without cause: %d refreshes", sent)
	}
}
