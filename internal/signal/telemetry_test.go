package signal

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/telemetry"
)

// traceRun drives one churned SS+RTR session — installs, loss-forced
// retransmits, acks, refreshes, reliable removals — under a virtual clock
// with the lifecycle tracer on the sender, and returns the recorded
// trace.
func traceRun(t *testing.T) []telemetry.TraceEvent {
	t.Helper()
	v := clock.NewVirtual()
	a, b, err := lossy.Pipe(lossy.Config{Loss: 0.2, Delay: time.Millisecond, Seed: 1234, Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(telemetry.TracerConfig{Capacity: 1 << 14, Clock: v})
	scfg := fastConfig(SSRTR)
	scfg.Clock = v
	scfg.Trace = tr
	scfg.Shards = 1 // one timer wheel: expiry callbacks fire in one stream
	rcfg := fastConfig(SSRTR)
	rcfg.Clock = v
	rcfg.Shards = 1
	snd, err := NewSender(a, b.LocalAddr(), scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	rcv, err := NewReceiver(b, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()

	for i := 0; i < 24; i++ {
		if err := snd.Install(fmt.Sprintf("key/%02d", i), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	v.Run(120 * time.Millisecond)
	for i := 0; i < 8; i++ {
		if err := snd.Update(fmt.Sprintf("key/%02d", i), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	v.Run(60 * time.Millisecond)
	for i := 0; i < 12; i++ {
		if err := snd.Remove(fmt.Sprintf("key/%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	v.Run(120 * time.Millisecond)
	return tr.Events()
}

// TestTraceDeterministicAcrossVirtualRuns is the tracing half of the
// virtual-time determinism guarantee: the same seed under the virtual
// clock must reproduce the lifecycle trace exactly — every event, every
// virtual timestamp, in the same order.
func TestTraceDeterministicAcrossVirtualRuns(t *testing.T) {
	first := traceRun(t)
	second := traceRun(t)
	if len(first) == 0 {
		t.Fatal("trace recorded no events")
	}
	if !reflect.DeepEqual(first, second) {
		n := len(first)
		if len(second) < n {
			n = len(second)
		}
		for i := 0; i < n; i++ {
			if first[i] != second[i] {
				t.Fatalf("traces diverge at event %d:\n  run1: %v\n  run2: %v", i, first[i], second[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d", len(first), len(second))
	}
	// The trace must cover the whole lifecycle this workload exercises.
	counts := map[telemetry.TraceKind]int{}
	for _, ev := range first {
		counts[ev.Kind]++
	}
	for _, k := range []telemetry.TraceKind{
		telemetry.TraceTrigger, telemetry.TraceRetransmit,
		telemetry.TraceAck, telemetry.TraceRemoval,
	} {
		if counts[k] == 0 {
			t.Errorf("no %v events in a lossy reliable-removal run", k)
		}
	}
}

// TestStatsSnapshotConcurrentWithSends hammers Stats() — the sorted-key
// counter snapshot — from several goroutines while the endpoints are
// sending; the race detector checks snapshot-vs-increment.
func TestStatsSnapshotConcurrentWithSends(t *testing.T) {
	c := vEndpoints(t, SSRT, 0)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if c.snd.Stats().TotalSent() < 0 {
					t.Error("negative send count")
					return
				}
				_ = c.rcv.Stats()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := c.snd.Install(fmt.Sprintf("key/%03d", i), nil); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			c.run(time.Millisecond)
		}
	}
	c.run(50 * time.Millisecond)
	close(done)
	wg.Wait()
	st := c.snd.Stats()
	if st.TotalSent() == 0 {
		t.Fatal("no datagrams counted")
	}
}
