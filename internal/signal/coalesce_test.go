package signal

import (
	"fmt"
	"testing"
	"time"

	"softstate/internal/lossy"
)

// coalesceEndpoints builds a connected pair with reply coalescing enabled
// on the receiver.
func coalesceEndpoints(t *testing.T, proto Protocol) (*Sender, *Receiver) {
	t.Helper()
	a, b, err := lossy.Pipe(lossy.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(proto)
	cfg.CoalesceAcks = true
	cfg.AckFlushInterval = time.Millisecond
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		snd.Close()
		rcv.Close()
	})
	return snd, rcv
}

// TestCoalescedAcksStopRetransmits: batched acks must satisfy the sender's
// reliable-trigger machinery exactly like singleton acks — every installed
// key ends up acknowledged, with no singleton ack datagrams on the wire.
func TestCoalescedAcksStopRetransmits(t *testing.T) {
	snd, rcv := coalesceEndpoints(t, SSRT)
	const keys = 100
	for i := 0; i < keys; i++ {
		if err := snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "all installs", func() bool { return rcv.Len() == keys })
	eventually(t, "all keys acked", func() bool {
		acked := 0
		snd.ss.tbl.Range(func(_ string, e *senderEntry) bool {
			if e.ackedSeq >= e.seq {
				acked++
			}
			return true
		})
		return acked == keys
	})
	rs := rcv.Stats()
	if rs.Sent["ack"] != 0 {
		t.Fatalf("coalescing receiver sent %d singleton acks", rs.Sent["ack"])
	}
	if rs.CoalescedAcks < keys {
		t.Fatalf("receiver coalesced %d acks, want ≥ %d", rs.CoalescedAcks, keys)
	}
	if snd.Stats().Received["ack-batch"] == 0 {
		t.Fatal("sender saw no ack batches")
	}
}

// TestCoalescedAcksReduceDatagrams is the satellite's counter proof: a
// burst of reliable triggers produces far fewer reply datagrams than
// acknowledgements, mirroring summary refresh on the reply path.
func TestCoalescedAcksReduceDatagrams(t *testing.T) {
	snd, rcv := coalesceEndpoints(t, SSRT)
	const keys = 400
	for i := 0; i < keys; i++ {
		if err := snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "all installs", func() bool { return rcv.Len() == keys })
	eventually(t, "all acks flushed", func() bool { return rcv.Stats().CoalescedAcks >= keys })
	rs := rcv.Stats()
	datagrams := rs.Sent["ack-batch"]
	if datagrams == 0 {
		t.Fatal("no ack batches sent")
	}
	if ratio := float64(rs.CoalescedAcks) / float64(datagrams); ratio < 4 {
		t.Fatalf("ack coalescing reduced reply datagrams only %.1f× (%d acks in %d datagrams), want ≥4×",
			ratio, rs.CoalescedAcks, datagrams)
	}
}

// TestCoalescedRemovalAcks: removal-acks ride the same batches and still
// complete reliable removal for every key.
func TestCoalescedRemovalAcks(t *testing.T) {
	snd, rcv := coalesceEndpoints(t, SSRTR)
	const keys = 60
	for i := 0; i < keys; i++ {
		if err := snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "all installs", func() bool { return rcv.Len() == keys })
	for i := 0; i < keys; i++ {
		if err := snd.Remove(fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "all removals acked", func() bool {
		return rcv.Len() == 0 && len(snd.Keys()) == 0 && snd.ss.tbl.Len() == 0
	})
	if rcv.Stats().Sent["removal-ack"] != 0 {
		t.Fatal("coalescing receiver sent singleton removal-acks")
	}
	if snd.Stats().Received["ack-batch"] == 0 {
		t.Fatal("sender saw no ack batches")
	}
}

// TestCoalescedAcksFlushOnClose: acks queued between flush ticks must go
// out during Close, while the transport is still open — a sender whose
// removal was acknowledged into a pending batch must not be left
// retransmitting against a dead receiver.
func TestCoalescedAcksFlushOnClose(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{Delay: time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(SSRTR)
	cfg.CoalesceAcks = true
	cfg.AckFlushInterval = time.Hour // only the close-time drain can flush
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := snd.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "install", func() bool { return rcv.Len() == 1 })
	if err := snd.Remove("k"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "removal processed", func() bool { return rcv.Len() == 0 })
	rcv.Close() // must drain the pending trigger-ack + removal-ack batch
	eventually(t, "removal acked from the close-time drain", func() bool {
		return snd.ss.tbl.Len() == 0
	})
	if snd.Stats().Received["ack-batch"] == 0 {
		t.Fatal("sender saw no ack batch from the closing receiver")
	}
}

// TestCoalescingOffByDefault: without the knob, replies stay singletons
// (wire compatibility with pre-batch receivers).
func TestCoalescingOffByDefault(t *testing.T) {
	snd, rcv := endpoints(t, SSRT, 0)
	if err := snd.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "ack", func() bool { return snd.Stats().Received["ack"] > 0 })
	if rcv.Stats().Sent["ack-batch"] != 0 {
		t.Fatal("ack batches sent without CoalesceAcks")
	}
}
