package signal

import (
	"fmt"
	"testing"
	"time"

	"softstate/internal/lossy"
	"softstate/internal/wire"
)

// summaryEndpoints builds a connected pair with summary refresh enabled on
// the sender.
func summaryEndpoints(t *testing.T, proto Protocol, maxKeys int) (*Sender, *Receiver) {
	t.Helper()
	a, b, err := lossy.Pipe(lossy.Config{Delay: time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(proto)
	cfg.SummaryRefresh = true
	cfg.SummaryMaxKeys = maxKeys
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		snd.Close()
		rcv.Close()
	})
	return snd, rcv
}

// TestSummaryRefreshKeepsStateAlive: with summary refresh on, no per-key
// refresh datagrams flow, yet state survives well past the timeout.
func TestSummaryRefreshKeepsStateAlive(t *testing.T) {
	snd, rcv := summaryEndpoints(t, SS, 64)
	const keys = 100
	for i := 0; i < keys; i++ {
		if err := snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "all installs", func() bool { return rcv.Len() == keys })
	time.Sleep(4 * fastConfig(SS).Timeout)
	if got := rcv.Len(); got != keys {
		t.Fatalf("receiver holds %d of %d keys after summary-refresh window", got, keys)
	}
	st := snd.Stats()
	if st.Sent["refresh"] != 0 {
		t.Fatalf("summary mode sent %d per-key refreshes", st.Sent["refresh"])
	}
	if st.Sent["summary-refresh"] == 0 {
		t.Fatal("no summary refreshes sent")
	}
	if rcv.Stats().Received["summary-refresh"] == 0 {
		t.Fatal("receiver saw no summary refreshes")
	}
}

// TestSummaryRefreshReducesDatagrams is the paper-facing claim (and the
// acceptance bar): at 64 keys per summary, refresh traffic drops at least
// 10× against per-key refreshes for the same key count and interval.
func TestSummaryRefreshReducesDatagrams(t *testing.T) {
	const keys = 256
	window := 10 * fastConfig(SS).RefreshInterval

	countRefreshes := func(summary bool) int {
		a, b, err := lossy.Pipe(lossy.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig(SS)
		cfg.Timeout = time.Minute // isolate refresh traffic from expiry
		cfg.SummaryRefresh = summary
		cfg.SummaryMaxKeys = 64
		snd, err := NewSender(a, b.LocalAddr(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer snd.Close()
		defer b.Close()
		for i := 0; i < keys; i++ {
			if err := snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(window)
		st := snd.Stats()
		if summary {
			return st.Sent["summary-refresh"]
		}
		return st.Sent["refresh"]
	}

	perKey := countRefreshes(false)
	summaries := countRefreshes(true)
	if perKey == 0 || summaries == 0 {
		t.Fatalf("no refresh traffic: per-key %d, summaries %d", perKey, summaries)
	}
	if ratio := float64(perKey) / float64(summaries); ratio < 10 {
		t.Fatalf("summary refresh reduced datagrams only %.1f× (%d → %d), want ≥10×",
			ratio, perKey, summaries)
	}
}

// TestSummaryNackRepairsUnknownKey: a receiver that does not hold a
// summarized key NACKs it and the sender re-triggers, reinstalling the
// state end to end.
func TestSummaryNackRepairsUnknownKey(t *testing.T) {
	snd, rcv := summaryEndpoints(t, SS, 64)
	if err := snd.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "install", func() bool { _, ok := rcv.Get("k"); return ok })
	// Tear the state down at the receiver only: expiry is silent for SS
	// (no notify), so only the summary NACK path can repair it.
	for _, ck := range rcv.matches("k") {
		rcv.tbl.Delete(ck)
	}
	if _, ok := rcv.Get("k"); ok {
		t.Fatal("test setup: key still installed")
	}
	eventually(t, "NACK-driven reinstall", func() bool { _, ok := rcv.Get("k"); return ok })
	if snd.Stats().Received["summary-nack"] == 0 {
		t.Fatal("sender saw no summary NACK")
	}
	if rcv.Stats().Sent["summary-nack"] == 0 {
		t.Fatal("receiver sent no summary NACK")
	}
}

// TestSummaryChunking: more keys than SummaryMaxKeys are spread across
// several datagrams per sweep, all of which renew state.
func TestSummaryChunking(t *testing.T) {
	snd, rcv := summaryEndpoints(t, SS, 8)
	const keys = 50 // ⌈50/8⌉ = 7 datagrams per sweep
	for i := 0; i < keys; i++ {
		if err := snd.Install(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "all installs", func() bool { return rcv.Len() == keys })
	sent := snd.summarySweep()
	if want := (keys + 7) / 8; sent != want {
		t.Fatalf("sweep sent %d datagrams, want %d", sent, want)
	}
	time.Sleep(4 * fastConfig(SS).Timeout)
	if got := rcv.Len(); got != keys {
		t.Fatalf("receiver holds %d of %d keys", got, keys)
	}
}

// TestSummaryRemovedKeyNotRenewed: a key being removed must not ride
// along in summary sweeps and spuriously survive at the receiver.
func TestSummaryRemovedKeyNotRenewed(t *testing.T) {
	snd, rcv := summaryEndpoints(t, SS, 64)
	snd.Install("stay", []byte("v"))
	snd.Install("go", []byte("v"))
	eventually(t, "installs", func() bool { return rcv.Len() == 2 })
	if err := snd.Remove("go"); err != nil {
		t.Fatal(err)
	}
	// SS removal is silent: the receiver must time "go" out even while
	// summaries keep renewing "stay".
	eventually(t, "timeout of removed key", func() bool { _, ok := rcv.Get("go"); return !ok })
	if _, ok := rcv.Get("stay"); !ok {
		t.Fatal("summary stopped renewing the surviving key")
	}
}

// TestStaleSummaryDoesNotRenew: a replayed or delayed summary whose Seq
// predates the state's latest per-key message must not renew the timeout
// (mirroring the stale-trigger guard), so state whose owner stopped
// refreshing still expires under a stream of stale summaries.
func TestStaleSummaryDoesNotRenew(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfg := fastConfig(SS)
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	a.WriteTo(mustEncode(t, 5, "k", []byte("v")), nil)
	eventually(t, "install", func() bool { _, ok := rcv.Get("k"); return ok })
	staleMsg := wire.Message{Type: wire.TypeSummaryRefresh, Seq: 4, Keys: []string{"k"}}
	stale, err := staleMsg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Keep replaying the stale summary; the state must still time out.
	eventually(t, "expiry despite stale summaries", func() bool {
		a.WriteTo(stale, nil)
		_, ok := rcv.Get("k")
		return !ok
	})
	if rcv.Stats().Received["summary-refresh"] == 0 {
		t.Fatal("test delivered no summaries")
	}
}

// TestSummaryRefreshCrossesProtocols: summary refresh composes with
// reliable-trigger protocols (acks still flow for triggers).
func TestSummaryRefreshCrossesProtocols(t *testing.T) {
	snd, rcv := summaryEndpoints(t, SSRT, 64)
	snd.Install("k", []byte("v"))
	eventually(t, "install+ack", func() bool {
		return snd.Stats().Received["ack"] > 0 && rcv.Len() == 1
	})
	time.Sleep(4 * fastConfig(SSRT).Timeout)
	if rcv.Len() != 1 {
		t.Fatal("state expired under SSRT summary refresh")
	}
}

// TestSummaryIntervalStretch: MaxRefreshRate stretches the sweep period
// based on datagram count, not key count.
func TestSummaryIntervalStretch(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{
		Protocol:        SS,
		RefreshInterval: 10 * time.Millisecond,
		Timeout:         time.Minute,
		SummaryRefresh:  true,
		SummaryMaxKeys:  64,
		MaxRefreshRate:  4, // 4 datagrams/s aggregate
	}
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	// 128 keys → 2 datagrams per sweep → stretched period = 2/4 = 500ms,
	// far above the configured 10ms.
	for i := 0; i < 128; i++ {
		if err := snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := snd.summaryInterval(); got < 400*time.Millisecond {
		t.Fatalf("summary interval = %v, want ≥ 400ms under rate cap", got)
	}
}

// TestSummaryWireLimitRespected: sweeps never construct a datagram the
// codec rejects, even with maximum-length keys.
func TestSummaryWireLimitRespected(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := fastConfig(SS)
	cfg.SummaryRefresh = true
	cfg.SummaryMaxKeys = wire.MaxSummaryKeys // byte budget, not count, binds
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	long := make([]byte, wire.MaxKeyLen)
	for i := range long {
		long[i] = 'x'
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("%s/%04d", long[:wire.MaxKeyLen-5], i)
		if err := snd.Install(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if sent := snd.summarySweep(); sent < 2 {
		t.Fatalf("oversized key set fit %d datagrams, expected chunking", sent)
	}
}
