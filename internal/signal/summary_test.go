package signal

import (
	"fmt"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/wire"
)

// vSummaryEndpoints builds a virtual-time connected pair with summary
// refresh enabled on the sender.
func vSummaryEndpoints(t *testing.T, proto Protocol, maxKeys int) *vctx {
	t.Helper()
	return vEndpoints(t, proto, 0, func(cfg *Config) {
		cfg.SummaryRefresh = true
		cfg.SummaryMaxKeys = maxKeys
	})
}

// TestSummaryRefreshKeepsStateAlive: with summary refresh on, no per-key
// refresh datagrams flow, yet state survives well past the timeout.
func TestSummaryRefreshKeepsStateAlive(t *testing.T) {
	c := vSummaryEndpoints(t, SS, 64)
	const keys = 100
	for i := 0; i < keys; i++ {
		if err := c.snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.within(time.Second, "all installs", func() bool { return c.rcv.Len() == keys })
	c.run(4 * fastConfig(SS).Timeout)
	if got := c.rcv.Len(); got != keys {
		t.Fatalf("receiver holds %d of %d keys after summary-refresh window", got, keys)
	}
	st := c.snd.Stats()
	if st.Sent["refresh"] != 0 {
		t.Fatalf("summary mode sent %d per-key refreshes", st.Sent["refresh"])
	}
	if st.Sent["summary-refresh"] == 0 {
		t.Fatal("no summary refreshes sent")
	}
	if c.rcv.Stats().Received["summary-refresh"] == 0 {
		t.Fatal("receiver saw no summary refreshes")
	}
}

// TestSummaryRefreshReducesDatagrams is the paper-facing claim (and the
// acceptance bar): at 64 keys per summary, refresh traffic drops at least
// 10× against per-key refreshes for the same key count and interval. In
// virtual time the ten-interval window is measured exactly, not slept.
func TestSummaryRefreshReducesDatagrams(t *testing.T) {
	const keys = 256
	window := 10 * fastConfig(SS).RefreshInterval

	countRefreshes := func(summary bool) int {
		c := vEndpoints(t, SS, 0, func(cfg *Config) {
			cfg.Timeout = time.Minute // isolate refresh traffic from expiry
			cfg.SummaryRefresh = summary
			cfg.SummaryMaxKeys = 64
		})
		for i := 0; i < keys; i++ {
			if err := c.snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		c.run(window)
		st := c.snd.Stats()
		if summary {
			return st.Sent["summary-refresh"]
		}
		return st.Sent["refresh"]
	}

	perKey := countRefreshes(false)
	summaries := countRefreshes(true)
	if perKey == 0 || summaries == 0 {
		t.Fatalf("no refresh traffic: per-key %d, summaries %d", perKey, summaries)
	}
	if ratio := float64(perKey) / float64(summaries); ratio < 10 {
		t.Fatalf("summary refresh reduced datagrams only %.1f× (%d → %d), want ≥10×",
			ratio, perKey, summaries)
	}
}

// TestSummaryNackRepairsUnknownKey: a receiver that does not hold a
// summarized key NACKs it and the sender re-triggers, reinstalling the
// state end to end.
func TestSummaryNackRepairsUnknownKey(t *testing.T) {
	c := vSummaryEndpoints(t, SS, 64)
	if err := c.snd.Install("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.within(time.Second, "install", func() bool { _, ok := c.rcv.Get("k"); return ok })
	// Tear the state down at the receiver only: expiry is silent for SS
	// (no notify), so only the summary NACK path can repair it.
	for _, ck := range c.rcv.matches("k") {
		c.rcv.idx.remove("k", ck)
		c.rcv.tbl.Delete(ck)
	}
	if _, ok := c.rcv.Get("k"); ok {
		t.Fatal("test setup: key still installed")
	}
	c.within(time.Second, "NACK-driven reinstall", func() bool { _, ok := c.rcv.Get("k"); return ok })
	if c.snd.Stats().Received["summary-nack"] == 0 {
		t.Fatal("sender saw no summary NACK")
	}
	if c.rcv.Stats().Sent["summary-nack"] == 0 {
		t.Fatal("receiver sent no summary NACK")
	}
}

// TestSummaryChunking: more keys than SummaryMaxKeys are spread across
// several datagrams per sweep, all of which renew state.
func TestSummaryChunking(t *testing.T) {
	c := vSummaryEndpoints(t, SS, 8)
	const keys = 50 // ⌈50/8⌉ = 7 datagrams per sweep
	for i := 0; i < keys; i++ {
		if err := c.snd.Install(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.within(time.Second, "all installs", func() bool { return c.rcv.Len() == keys })
	sent := c.snd.summarySweep()
	if want := (keys + 7) / 8; sent != want {
		t.Fatalf("sweep sent %d datagrams, want %d", sent, want)
	}
	c.run(4 * fastConfig(SS).Timeout)
	if got := c.rcv.Len(); got != keys {
		t.Fatalf("receiver holds %d of %d keys", got, keys)
	}
}

// TestSummaryRemovedKeyNotRenewed: a key being removed must not ride
// along in summary sweeps and spuriously survive at the receiver.
func TestSummaryRemovedKeyNotRenewed(t *testing.T) {
	c := vSummaryEndpoints(t, SS, 64)
	c.snd.Install("stay", []byte("v"))
	c.snd.Install("go", []byte("v"))
	c.within(time.Second, "installs", func() bool { return c.rcv.Len() == 2 })
	if err := c.snd.Remove("go"); err != nil {
		t.Fatal(err)
	}
	// SS removal is silent: the receiver must time "go" out even while
	// summaries keep renewing "stay".
	c.within(time.Second, "timeout of removed key", func() bool { _, ok := c.rcv.Get("go"); return !ok })
	if _, ok := c.rcv.Get("stay"); !ok {
		t.Fatal("summary stopped renewing the surviving key")
	}
}

// TestStaleSummaryDoesNotRenew: a replayed or delayed summary whose Seq
// predates the state's latest per-key message must not renew the timeout
// (mirroring the stale-trigger guard), so state whose owner stopped
// refreshing still expires under a stream of stale summaries.
func TestStaleSummaryDoesNotRenew(t *testing.T) {
	v := clock.NewVirtual() // receiver-only: this test writes raw datagrams
	a, b, err := lossy.Pipe(lossy.Config{Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfg := fastConfig(SS)
	cfg.Clock = v
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Close()
	a.WriteTo(mustEncode(t, 5, "k", []byte("v")), nil)
	if !v.RunUntil(func() bool { _, ok := rcv.Get("k"); return ok }, time.Millisecond, time.Second) {
		t.Fatal("install never landed")
	}
	staleMsg := wire.Message{Type: wire.TypeSummaryRefresh, Seq: 4, Keys: []string{"k"}}
	stale, err := staleMsg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Keep replaying the stale summary; the state must still time out.
	ok := v.RunUntil(func() bool {
		a.WriteTo(stale, nil)
		_, held := rcv.Get("k")
		return !held
	}, time.Millisecond, time.Second)
	if !ok {
		t.Fatal("state survived on stale summaries alone")
	}
	if rcv.Stats().Received["summary-refresh"] == 0 {
		t.Fatal("test delivered no summaries")
	}
}

// TestSummaryRefreshCrossesProtocols: summary refresh composes with
// reliable-trigger protocols (acks still flow for triggers).
func TestSummaryRefreshCrossesProtocols(t *testing.T) {
	c := vSummaryEndpoints(t, SSRT, 64)
	c.snd.Install("k", []byte("v"))
	c.within(time.Second, "install+ack", func() bool {
		return c.snd.Stats().Received["ack"] > 0 && c.rcv.Len() == 1
	})
	c.run(4 * fastConfig(SSRT).Timeout)
	if c.rcv.Len() != 1 {
		t.Fatal("state expired under SSRT summary refresh")
	}
}

// TestSummaryIntervalStretch: MaxRefreshRate stretches the sweep period
// based on datagram count, not key count.
func TestSummaryIntervalStretch(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := Config{
		Protocol:        SS,
		RefreshInterval: 10 * time.Millisecond,
		Timeout:         time.Minute,
		SummaryRefresh:  true,
		SummaryMaxKeys:  64,
		MaxRefreshRate:  4, // 4 datagrams/s aggregate
	}
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	// 128 keys → 2 datagrams per sweep → stretched period = 2/4 = 500ms,
	// far above the configured 10ms.
	for i := 0; i < 128; i++ {
		if err := snd.Install(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := snd.summaryInterval(); got < 400*time.Millisecond {
		t.Fatalf("summary interval = %v, want ≥ 400ms under rate cap", got)
	}
}

// TestSummaryWireLimitRespected: sweeps never construct a datagram the
// codec rejects, even with maximum-length keys.
func TestSummaryWireLimitRespected(t *testing.T) {
	a, b, err := lossy.Pipe(lossy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg := fastConfig(SS)
	cfg.SummaryRefresh = true
	cfg.SummaryMaxKeys = wire.MaxSummaryKeys // byte budget, not count, binds
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	long := make([]byte, wire.MaxKeyLen)
	for i := range long {
		long[i] = 'x'
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("%s/%04d", long[:wire.MaxKeyLen-5], i)
		if err := snd.Install(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if sent := snd.summarySweep(); sent < 2 {
		t.Fatalf("oversized key set fit %d datagrams, expected chunking", sent)
	}
}
