package signal

import (
	"net"
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
)

// vctx is a virtual-time test harness: one clock driving a connected
// sender/receiver pair over a lossy pipe. The ported sleep/poll tests run
// the identical protocol code paths as the old wall-clock versions, but
// deterministically and in microseconds of wall time: waits advance the
// virtual clock instead of sleeping.
type vctx struct {
	t       *testing.T
	clk     *clock.Virtual
	snd     *Sender
	rcv     *Receiver
	sndAddr net.Addr // source address the receiver sees for the sender
	sndConn net.PacketConn
}

// vEndpoints builds a virtual-time sender/receiver pair; cfg mutators run
// before the endpoints are created.
func vEndpoints(t *testing.T, proto Protocol, loss float64, mutate ...func(*Config)) *vctx {
	t.Helper()
	v := clock.NewVirtual()
	a, b, err := lossy.Pipe(lossy.Config{Loss: loss, Delay: time.Millisecond, Seed: 99, Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(proto)
	cfg.Clock = v
	for _, m := range mutate {
		m(&cfg)
	}
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &vctx{t: t, clk: v, snd: snd, rcv: rcv, sndAddr: a.LocalAddr(), sndConn: a}
	t.Cleanup(func() {
		snd.Close()
		rcv.Close()
	})
	return c
}

// within advances virtual time (in millisecond steps) until cond holds,
// failing the test once budget virtual time has elapsed.
func (c *vctx) within(budget time.Duration, what string, cond func() bool) {
	c.t.Helper()
	if !c.clk.RunUntil(cond, time.Millisecond, budget) {
		c.t.Fatalf("virtual time ran out waiting for %s", what)
	}
}

// run advances virtual time by d.
func (c *vctx) run(d time.Duration) { c.clk.Run(d) }
