package signal

import (
	"testing"
	"time"

	"softstate/internal/clock"
	"softstate/internal/lossy"
	"softstate/internal/wire"
)

// Adversarial delivery tests: duplicated, reordered, and stray control
// messages (ack batches, probe acks) injected as raw datagrams against
// live endpoints. These are the deterministic companions to the chaos
// engine's fuzzed mutation streams — each pins one delivery pathology
// the wire admits but a correct endpoint must shrug off.

// TestStaleAndDuplicateAckBatch replays a coalesced ack batch at the
// sender out of order and several times over: stale acks (sequence zero,
// far below the incarnation base), acks for a key the sender never owned,
// and a removal-ack for a key that is not being removed — then the same
// batch again after the key really is gone. None of it may cancel live
// retransmission state for the wrong reason, resurrect removed state, or
// trip the session invariants.
func TestStaleAndDuplicateAckBatch(t *testing.T) {
	v := clock.NewVirtual()
	nw, err := lossy.NewNetwork(lossy.Config{Delay: time.Millisecond, Seed: 11, Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	a := nw.Endpoint("snd")
	b := nw.Endpoint("rcv")
	cfg := fastConfig(SSRTR)
	cfg.Clock = v
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snd.Close() })
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcv.Close() })

	if err := snd.Install("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if !v.RunUntil(func() bool {
		val, ok := rcv.GetFrom(a.LocalAddr(), "k")
		return ok && string(val) == "v1"
	}, time.Millisecond, time.Second) {
		t.Fatal("install never converged")
	}

	// The batch mixes every stray shape at once, item order scrambled
	// relative to anything the receiver would generate.
	batch := wire.Message{Type: wire.TypeAckBatch, Acks: []wire.AckItem{
		{Kind: wire.TypeRemovalAck, Seq: 0, Key: "k"},     // not removing
		{Kind: wire.TypeAck, Seq: 0, Key: "ghost"},        // never owned
		{Kind: wire.TypeAck, Seq: 0, Key: "k"},            // stale seq
		{Kind: wire.TypeRemovalAck, Seq: 0, Key: "ghost"}, // both wrong
	}}
	for i := 0; i < 3; i++ { // duplicates
		raw, err := batch.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.WriteTo(raw, a.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	v.Run(4 * cfg.Timeout)

	// The stray removal-ack must not have torn down the live key, and
	// refreshes must still be renewing it.
	if val, ok := rcv.GetFrom(a.LocalAddr(), "k"); !ok || string(val) != "v1" {
		t.Fatalf("live key damaged by stray ack batch: ok=%v val=%q", ok, val)
	}
	if bad := snd.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("sender invariants after stray batch: %v", bad)
	}

	// Now remove for real, let it complete, and replay the batch again:
	// acks for an already-removed (expired) key must be no-ops.
	if err := snd.Remove("k"); err != nil {
		t.Fatal(err)
	}
	if !v.RunUntil(func() bool { return rcv.Len() == 0 }, time.Millisecond, time.Second) {
		t.Fatal("removal never converged")
	}
	for i := 0; i < 3; i++ {
		raw, err := batch.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.WriteTo(raw, a.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	v.Run(4 * cfg.Timeout)
	if rcv.Len() != 0 {
		t.Fatalf("acks for a removed key resurrected state: %d keys held", rcv.Len())
	}
	if bad := snd.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("sender invariants after post-removal batch: %v", bad)
	}
	if bad := rcv.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("receiver invariants after post-removal batch: %v", bad)
	}
}

// TestForgedFutureAckDoesNotWedge forges an ack acknowledging a sequence
// number far beyond anything sent. The monotone ack watermark will jump —
// that is permitted — but the session must not wedge: a subsequent update
// still reaches the receiver (via its immediate trigger or the refresh
// stream) and keeps being renewed.
func TestForgedFutureAckDoesNotWedge(t *testing.T) {
	v := clock.NewVirtual()
	nw, err := lossy.NewNetwork(lossy.Config{Delay: time.Millisecond, Seed: 12, Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	a := nw.Endpoint("snd")
	b := nw.Endpoint("rcv")
	cfg := fastConfig(SSRTR)
	cfg.Clock = v
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snd.Close() })
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcv.Close() })

	if err := snd.Install("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if !v.RunUntil(func() bool {
		val, ok := rcv.GetFrom(a.LocalAddr(), "k")
		return ok && string(val) == "v1"
	}, time.Millisecond, time.Second) {
		t.Fatal("install never converged")
	}

	forged := wire.Message{Type: wire.TypeAck, Seq: 1 << 62, Key: "k"}
	raw, err := forged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(raw, a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	v.Run(10 * time.Millisecond)

	if err := snd.Update("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if !v.RunUntil(func() bool {
		val, ok := rcv.GetFrom(a.LocalAddr(), "k")
		return ok && string(val) == "v2"
	}, time.Millisecond, time.Second) {
		val, _ := rcv.GetFrom(a.LocalAddr(), "k")
		t.Fatalf("update wedged by forged future ack; receiver holds %q", val)
	}
	v.Run(4 * cfg.Timeout)
	if val, ok := rcv.GetFrom(a.LocalAddr(), "k"); !ok || string(val) != "v2" {
		t.Fatalf("state not renewed after forged ack: ok=%v val=%q", ok, val)
	}
	if bad := snd.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("sender invariants: %v", bad)
	}
}

// TestStrayProbeAcks fires hard-state probe answers that correspond to no
// outstanding probe: duplicated, from a peer the receiver has never
// installed state for, for a key it does not hold, and — after the key is
// removed — for the evicted entry itself. A probe-ack must only ever
// clear the miss counter of a live entry; it must never create one,
// resurrect one, or arm timers on a ghost.
func TestStrayProbeAcks(t *testing.T) {
	v := clock.NewVirtual()
	nw, err := lossy.NewNetwork(lossy.Config{Delay: time.Millisecond, Seed: 13, Clock: v})
	if err != nil {
		t.Fatal(err)
	}
	a := nw.Endpoint("snd")
	b := nw.Endpoint("rcv")
	c := nw.Endpoint("stranger")
	cfg := fastConfig(HS)
	cfg.Clock = v
	snd, err := NewSender(a, b.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snd.Close() })
	rcv, err := NewReceiver(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcv.Close() })

	if err := snd.Install("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if !v.RunUntil(func() bool {
		val, ok := rcv.GetFrom(a.LocalAddr(), "k")
		return ok && string(val) == "v1"
	}, time.Millisecond, time.Second) {
		t.Fatal("install never converged")
	}

	spray := func() {
		for i := 0; i < 3; i++ {
			for _, m := range []wire.Message{
				{Type: wire.TypeProbeAck, Seq: ^uint64(0), Key: "ghost"}, // key never held
				{Type: wire.TypeProbeAck, Seq: 1, Key: "k"},              // dup/stale for live key
			} {
				raw, err := m.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := a.WriteTo(raw, b.LocalAddr()); err != nil {
					t.Fatal(err)
				}
				// The same answers again from a peer with no state at all.
				if _, err := c.WriteTo(raw, b.LocalAddr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	spray()
	v.Run(50 * time.Millisecond)

	if rcv.Len() != 1 {
		t.Fatalf("stray probe-acks changed the table: %d keys held", rcv.Len())
	}
	if _, ok := rcv.GetFrom(c.LocalAddr(), "k"); ok {
		t.Fatal("stranger's probe-ack created a ghost entry")
	}
	if _, ok := rcv.GetFrom(a.LocalAddr(), "ghost"); ok {
		t.Fatal("probe-ack for an unknown key created a ghost entry")
	}
	if bad := rcv.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("receiver invariants after stray probe-acks: %v", bad)
	}

	// Hard-state state must still be guarded: the genuine sender keeps
	// answering real probes, so the entry survives the orphan horizon.
	v.Run(time.Duration(cfg.withDefaults().MaxProbeMisses+1) * cfg.withDefaults().ProbeInterval)
	if _, ok := rcv.GetFrom(a.LocalAddr(), "k"); !ok {
		t.Fatal("live hard state lost despite an answering sender")
	}

	// Evict the key for real, then answer probes for the dead entry.
	if err := snd.Remove("k"); err != nil {
		t.Fatal(err)
	}
	if !v.RunUntil(func() bool { return rcv.Len() == 0 }, time.Millisecond, time.Second) {
		t.Fatal("removal never converged")
	}
	spray()
	v.Run(4 * cfg.withDefaults().ProbeInterval)
	if rcv.Len() != 0 {
		t.Fatalf("probe-acks for an evicted key resurrected state: %d keys held", rcv.Len())
	}
	if bad := rcv.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("receiver invariants after evicted-key probe-acks: %v", bad)
	}
}
